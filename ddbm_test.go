package ddbm_test

import (
	"testing"

	"ddbm"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.WoundWait
	cfg.NumProcNodes = 2
	cfg.NumTerminals = 8
	cfg.ThinkTimeMs = 500
	cfg.SimTimeMs = 20_000
	cfg.WarmupMs = 2_000
	res, err := ddbm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits through the public API")
	}
	if res.Config.Algorithm != ddbm.WoundWait {
		t.Error("result does not echo its config")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"2PL", "WW", "BTO", "OPT", "NO_DC"} {
		a, err := ddbm.ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ddbm.ParseAlgorithm("2pl"); err == nil {
		t.Error("lowercase accepted (names are exact)")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algos := ddbm.Algorithms()
	if len(algos) != 5 {
		t.Fatalf("Algorithms() returned %d entries", len(algos))
	}
	seen := map[ddbm.Algorithm]bool{}
	for _, a := range algos {
		seen[a] = true
	}
	for _, want := range []ddbm.Algorithm{ddbm.TwoPL, ddbm.WoundWait, ddbm.BTO, ddbm.OPT, ddbm.NoDC} {
		if !seen[want] {
			t.Errorf("Algorithms() missing %v", want)
		}
	}
}

func TestExecPatternConstants(t *testing.T) {
	if ddbm.Parallel.String() != "parallel" || ddbm.Sequential.String() != "sequential" {
		t.Error("exec pattern constants broken")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := ddbm.DefaultConfig()
	cfg.NumProcNodes = -1
	if _, err := ddbm.Run(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}
