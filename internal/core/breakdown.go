package core

import (
	"ddbm/internal/cc"
	"ddbm/internal/obs"
	"ddbm/internal/stats"
)

// breakdown is the machine's time-breakdown accounting state (nil unless
// Config.Breakdown): one ledger per terminal (a terminal runs one
// transaction at a time, so the ledger free-lists itself by reuse), the
// terminal→class map, per-class × per-phase histograms of committed
// transactions' phase totals, and per-node × per-cause counters of
// aborted attempts. Everything is allocated once at machine construction;
// steady-state recording is pure arithmetic on fixed arrays.
type breakdown struct {
	ledgers []obs.Ledger
	classOf []int
	// hists is indexed [class*NumPhases + phase]; counts are windowed to
	// the measurement interval like Commits/Aborts.
	hists []stats.LogHist
	// causes is indexed [node*NumCauses + cause] with the host as the
	// last node row; windowed to the measurement interval so the counter
	// total reconciles with Result.Aborts.
	causes   []int64
	numNodes int // processing nodes + host
}

// newBreakdown sizes the accounting state for the machine's dimensions.
func newBreakdown(numClasses, numNodes, numTerminals int) *breakdown {
	return &breakdown{
		ledgers:  make([]obs.Ledger, numTerminals),
		classOf:  make([]int, numTerminals),
		hists:    make([]stats.LogHist, numClasses*int(obs.NumPhases)),
		causes:   make([]int64, numNodes*int(cc.NumCauses)),
		numNodes: numNodes,
	}
}

// ledger returns terminal termID's ledger, or nil when accounting is off
// (every obs.Ledger method is nil-receiver-safe).
func (b *breakdown) ledger(termID int) *obs.Ledger {
	if b == nil {
		return nil
	}
	return &b.ledgers[termID]
}

// class returns terminal termID's class index (0 when accounting is off).
func (b *breakdown) class(termID int) int {
	if b == nil {
		return 0
	}
	return b.classOf[termID]
}

// noteCommit records a committed transaction's phase totals into its
// class's histograms. Windowed to the measurement interval alongside
// statsCollector.txnCommitted (same call site, same instant).
//
//ddbmlint:hotpath per-commit breakdown recording pinned by TestTxnPathAllocFree
func (b *breakdown) noteCommit(class int, ld *obs.Ledger, measuring bool) {
	if b == nil || !measuring {
		return
	}
	base := class * int(obs.NumPhases)
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		b.hists[base+int(p)].Add(ld.Spent(p))
	}
}

// noteAbort counts one aborted attempt under its recorded cause and
// attributing node. Runs inside abortAttempt, the single funnel every
// abort resolves through, at the same instant statsCollector.txnAborted
// tallies the attempt — so summed cause counts equal Result.Aborts.
//
//ddbmlint:hotpath per-abort cause recording pinned by TestTxnPathAllocFree
func (b *breakdown) noteAbort(meta *cc.TxnMeta, measuring bool) {
	if b == nil || !measuring {
		return
	}
	node := meta.AbortNode
	if node < 0 || node >= b.numNodes {
		node = b.numNodes - 1 // clamp to the host row
	}
	b.causes[node*int(cc.NumCauses)+int(meta.AbortCause)]++
}

// histAt returns the (class, phase) histogram.
func (b *breakdown) histAt(class int, p obs.Phase) *stats.LogHist {
	return &b.hists[class*int(obs.NumPhases)+int(p)]
}

// numClasses returns how many classes the histograms cover.
func (b *breakdown) numClasses() int { return len(b.hists) / int(obs.NumPhases) }

// snapshot renders the accounting state as the obs-layer snapshot rows,
// in fixed (class, phase) / (node, cause) order. Zero-count cause rows
// are omitted; phase rows are always emitted so decompositions have a
// complete, rectangular table.
func (b *breakdown) snapshot() *obs.BreakdownSnapshot {
	if b == nil {
		return nil
	}
	snap := &obs.BreakdownSnapshot{}
	for class := 0; class < b.numClasses(); class++ {
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			h := b.histAt(class, p)
			snap.Phases = append(snap.Phases, obs.BreakdownPhaseRow{
				Class:   class,
				Phase:   p.String(),
				Count:   h.Count(),
				MeanMs:  h.Mean(),
				P50Ms:   h.Quantile(0.50),
				P99Ms:   h.Quantile(0.99),
				TotalMs: h.Sum(),
			})
		}
	}
	for node := 0; node < b.numNodes; node++ {
		for c := cc.Cause(0); c < cc.NumCauses; c++ {
			if n := b.causes[node*int(cc.NumCauses)+int(c)]; n > 0 {
				snap.Causes = append(snap.Causes, obs.BreakdownCauseRow{
					Node: node, Cause: c.String(), Count: n,
				})
			}
		}
	}
	return snap
}

// resultFields fills the Result's breakdown maps: per-phase mean and p99
// merged across classes, and abort counts summed across nodes by cause.
// The maps stay nil when accounting is off, keeping golden results
// bit-identical.
func (b *breakdown) resultFields(r *Result) {
	if b == nil {
		return
	}
	r.PhaseMeanMs = make(map[string]float64, int(obs.NumPhases))
	r.PhaseP99Ms = make(map[string]float64, int(obs.NumPhases))
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		var merged stats.LogHist
		for class := 0; class < b.numClasses(); class++ {
			merged.Merge(b.histAt(class, p))
		}
		r.PhaseMeanMs[p.String()] = merged.Mean()
		r.PhaseP99Ms[p.String()] = merged.Quantile(0.99)
	}
	r.AbortsByCause = make(map[string]int64)
	for node := 0; node < b.numNodes; node++ {
		for c := cc.Cause(0); c < cc.NumCauses; c++ {
			if n := b.causes[node*int(cc.NumCauses)+int(c)]; n > 0 {
				r.AbortsByCause[c.String()] += n
			}
		}
	}
}
