package core

import (
	"fmt"

	"ddbm/internal/cc"
	"ddbm/internal/fault"
	"ddbm/internal/obs"
	"ddbm/internal/recovery"
	"ddbm/internal/sim"
)

// faultState wires the fault injector (internal/fault) and the recovery
// model (internal/recovery) into the machine. It exists only when
// Config.Faults.Enabled; the nil state keeps every fault-free fast path
// and bit-identical runs.
//
// The crash story, end to end:
//
//   - Crash instant (CrashNode): the injector has marked the node down, so
//     every message touching it already drops. The node's CPU and disks
//     wipe their queues, every live attempt's cohort at the node is marked
//     dead (releasing coordinators stuck waiting for abort acks via
//     synthetic acks), and the node's cohort registry is swept: in-doubt
//     cohorts become residents — their locks survive, their attempt state
//     is pinned — while everything else is killed and its locks released.
//   - Detection (DetectMs later): the coordinator's timeout/termination
//     protocol aborts every live attempt that touches the dead node.
//   - Repair (MTTRMs after the crash): the node accepts messages again and
//     its recovery process runs — replay the forced log as pure delay,
//     resolve each resident per the protocol's rule (2PC inquires at the
//     coordinator; presumed abort/commit resolve locally), then rejoin,
//     which restarts the injector's failure clock for the node.
//
// A host crash is modeled as instantaneous failover: every live attempt
// aborts with the coordinator-crash cause and new transactions hold until
// the host recovers, but the host stays up for messaging (the failover
// host answers inquiries), so no cohort state is ever lost with it.
type faultState struct {
	m   *Machine
	inj *fault.Injector
	wal *recovery.WAL
	// reg is the coordinator-side decision registry that 2PC recovery
	// inquiries consult; nil under the presumed protocols, which resolve
	// residents locally.
	reg *recovery.DecisionRegistry
	res recovery.Resolution

	// nodeRuns registers, per node, every cohort between load delivery
	// and resolution — the population a crash sweep must visit. Slots are
	// swap-removed (cohortRun.regIdx tracks position), so registration
	// and removal are O(1) and allocation-free in steady state.
	nodeRuns [][]*cohortRun
	// liveAttempts registers every attempt between acquire and recycle,
	// for the detection sweep and crash-instant dead-marking.
	liveAttempts []*attemptState
	// hostWaiters parks terminal processes while the host is mid-failover.
	hostWaiters []*sim.Proc

	detectFns []func()   // pre-bound per-node detection sweeps
	recNames  []string   // per-node recovery process names
	downSince []sim.Time // crash instant per node, for the down trace span

	// Accounting for the Result fields (see metrics.go). In-doubt and
	// blocked-in-doubt totals are windowed to the measurement interval;
	// recovery time accumulates over the whole run like LogForces.
	inDoubtMs        float64
	inDoubtWindows   int64
	blockedInDoubtMs float64
	recoveryMs       float64
}

func newFaultState(m *Machine) *faultState {
	nodes := m.cfg.NumProcNodes
	f := &faultState{
		m:         m,
		inj:       fault.New(m.sim, m.cfg.Faults, nodes),
		wal:       recovery.NewWAL(nodes),
		res:       recovery.ResolutionFor(m.cfg.CommitProtocol),
		nodeRuns:  make([][]*cohortRun, nodes),
		downSince: make([]sim.Time, nodes),
	}
	if f.res == recovery.Inquire {
		f.reg = recovery.NewDecisionRegistry()
	}
	for i := 0; i < nodes; i++ {
		i := i
		f.detectFns = append(f.detectFns, func() { f.detect(i) })
		f.recNames = append(f.recNames, fmt.Sprintf("recovery@%d", i))
	}
	f.inj.SetTarget(f)
	m.net.SetFaultModel(f.inj)
	for _, mgr := range m.mgrs {
		// The lock-based managers attribute lock waits to in-doubt
		// holders so the blocked-in-doubt metric can be collected.
		if g, ok := mgr.(interface{ LockTable() *cc.LockTable }); ok {
			g.LockTable().TrackInDoubt = true
		}
	}
	return f
}

// attemptLive and attemptGone maintain the live-attempt registry
// (swap-removal keyed by attemptState.liveIdx). attemptGone also retires
// the attempt's decision-registry entry: residents pin their attempt, so
// an entry is never dropped while an inquiry can still need it.
//
//ddbmlint:hotpath attempt registration on every acquire/recycle
func (f *faultState) attemptLive(a *attemptState) {
	a.liveIdx = len(f.liveAttempts)
	f.liveAttempts = append(f.liveAttempts, a) //ddbmlint:allow hotpath-alloc registry growth chases the concurrent-attempt high-water mark
}

//ddbmlint:hotpath attempt registration on every acquire/recycle
func (f *faultState) attemptGone(a *attemptState) {
	last := len(f.liveAttempts) - 1
	i := a.liveIdx
	f.liveAttempts[i] = f.liveAttempts[last]
	f.liveAttempts[i].liveIdx = i
	f.liveAttempts[last] = nil
	f.liveAttempts = f.liveAttempts[:last]
	if f.reg != nil {
		f.reg.Forget(a.meta.AttemptTS)
	}
}

// register adds a cohort to its node's crash registry at load delivery.
//
//ddbmlint:hotpath cohort registration on every load
func (f *faultState) register(c *cohortRun) {
	n := c.meta.Node
	c.phase = phaseLoaded
	c.regIdx = len(f.nodeRuns[n])
	f.nodeRuns[n] = append(f.nodeRuns[n], c) //ddbmlint:allow hotpath-alloc registry growth chases the per-node cohort high-water mark
}

// deregister swap-removes a cohort from its node's registry. Safe to call
// for cohorts that never registered (their load was dropped at a down
// node): phaseIdle is a no-op.
//
//ddbmlint:hotpath cohort removal on every resolution
func (f *faultState) deregister(c *cohortRun) {
	if c.phase == phaseIdle || c.phase == phaseGone {
		return
	}
	n := c.meta.Node
	runs := f.nodeRuns[n]
	last := len(runs) - 1
	i := c.regIdx
	runs[i] = runs[last]
	runs[i].regIdx = i
	runs[last] = nil
	f.nodeRuns[n] = runs[:last]
	c.phase = phaseGone
}

// openInDoubt starts a cohort's in-doubt window at vote time: the yes-vote
// (and its forced prepare record, counted in the simulated WAL) is about
// to leave the node, and until the decision arrives a crash strands the
// cohort's locks.
//
//ddbmlint:hotpath vote-time hook on every non-read-only yes vote
func (f *faultState) openInDoubt(c *cohortRun) {
	c.meta.InDoubt = true
	c.inDoubtAt = f.m.sim.Now()
	f.wal.Append(c.meta.Node)
}

// resolveRun closes a cohort's in-doubt window (when one is open), retires
// its WAL record, and removes it from the crash registry.
//
//ddbmlint:hotpath resolution hook on every cohort outcome
func (f *faultState) resolveRun(c *cohortRun) {
	if c.meta.InDoubt {
		c.meta.InDoubt = false
		f.wal.Resolve(c.meta.Node)
		if f.m.stats.measuring {
			f.inDoubtMs += float64(f.m.sim.Now() - c.inDoubtAt)
			f.inDoubtWindows++
		}
		f.m.tracer.Complete(obs.KindFault, "in-doubt", c.meta.Node, c.meta.Txn.ID, c.attempt, c.inDoubtAt)
	}
	f.deregister(c)
}

// noteInDoubtBlock accounts one blocking episode attributed to an
// in-doubt holder (see Machine.onBlocked).
func (f *faultState) noteInDoubtBlock(d sim.Time) {
	if f.m.stats.measuring && d > 0 {
		f.blockedInDoubtMs += float64(d)
	}
}

// noteDecision records the attempt's outcome for 2PC recovery inquiries,
// but only once a resident exists to ask about: the registry stays
// bounded by the number of stranded cohorts instead of every in-flight
// attempt.
//
//ddbmlint:hotpath decision hook on every commit/abort decision
func (f *faultState) noteDecision(runs []*cohortRun, committed bool) {
	if f.reg == nil {
		return
	}
	for _, c := range runs {
		if c.phase == phaseResident {
			f.reg.Record(c.meta.Txn.AttemptTS, committed)
			return
		}
	}
}

// markCrashAbort stamps an attempt aborted because a cohort node is known
// dead (the coordinator's fail-fast check before loading).
func (f *faultState) markCrashAbort(meta *cc.TxnMeta) {
	meta.AbortRequested = true
	if meta.AbortReason == "" {
		meta.AbortReason = "node crash"
	}
	meta.NoteCause(f.m.hostID, cc.CauseNodeCrash)
}

// anyPlanNodeDown reports whether any of the attempt's cohort nodes is
// currently crashed.
func (f *faultState) anyPlanNodeDown(a *attemptState) bool {
	for _, c := range a.runs {
		if f.inj.Down(c.meta.Node) {
			return true
		}
	}
	return false
}

// holdForHost parks a terminal while the coordinator host is mid-failover;
// RecoverHost releases the queue. The loop re-checks: a terminal released
// at one recovery could, in principle, find the host down again by the
// time it runs.
func (f *faultState) holdForHost(p *sim.Proc) {
	for f.inj.HostDown() {
		f.hostWaiters = append(f.hostWaiters, p) //ddbmlint:allow hotpath-alloc waiter-queue growth chases the terminal count; reached only mid-failover
		p.Suspend()
	}
}

// CrashNode implements fault.Target: the crash-stop of one processing
// node, run at the crash instant with the node already marked down.
func (f *faultState) CrashNode(n int) {
	m := f.m
	f.downSince[n] = m.sim.Now()
	m.tracer.Instant("crash", n, 0, 0, "")
	m.cpus[n].Crash()
	m.disks[n].Crash()
	// Dead-mark every live attempt's cohort at this node first: a
	// coordinator waiting on abort acknowledgements from the node would
	// otherwise wait forever (MarkDead delivers a synthetic ack exactly
	// when a real one can no longer arrive). Idempotent with the
	// registry sweep below.
	for _, a := range f.liveAttempts {
		for _, c := range a.runs {
			if c.meta.Node == n {
				c.proto.MarkDead()
			}
		}
	}
	// Sweep the node's cohort registry. Removal swap-fills from the
	// tail, so iterate high-to-low: each original entry is visited
	// exactly once whether it stays (resident) or goes.
	for i := len(f.nodeRuns[n]) - 1; i >= 0; i-- {
		f.sweepRun(f.nodeRuns[n][i])
	}
	m.sim.After(m.cfg.Faults.DetectMs, f.detectFns[n])
}

// sweepRun handles one registered cohort of a crashing node. In-doubt
// cohorts become residents: their locks survive (the lock manager is not
// told anything), their attempt state is pinned until recovery resolves
// them, and — under 2PC — any already-made decision is recorded for the
// restart inquiry. Everything else loses its state: a pending startup job
// died with the CPU queue, a running process is killed, and in every case
// the cohort's locks and queued requests are released.
func (f *faultState) sweepRun(c *cohortRun) {
	m := f.m
	if c.meta.InDoubt {
		c.a.retain() // resident pin, released when recovery resolves the cohort
		c.phase = phaseResident
		if f.reg != nil {
			if c.meta.Txn.AbortRequested {
				f.reg.Record(c.meta.Txn.AttemptTS, false)
			} else if c.meta.Txn.State >= cc.Committing {
				f.reg.Record(c.meta.Txn.AttemptTS, true)
			}
		}
		return
	}
	switch c.phase {
	case phaseLoaded:
		// The startup job was wiped with the CPU queue: the cohort never
		// starts, so the load reference dies here.
		c.a.release()
	case phaseRunning:
		m.sim.Kill(c.meta.Proc)
		if m.activeCohorts != nil {
			m.activeCohorts[c.meta.Node]--
		}
		c.a.release()
	}
	c.meta.CrashReset()
	m.mgrs[c.meta.Node].Abort(&c.meta)
	f.deregister(c)
}

// detect is the coordinator-side failure detector for one node, running
// DetectMs after its crash: every live attempt touching the dead node is
// aborted (2PC's termination protocol for dead participants). The crash
// notice is sent unconditionally — marking the abort is not enough, since
// a coordinator parked on mail from the dead node has no other way to
// learn anything (the cohort that would normally wake it died with the
// node). A stale notice is harmless: the ack wait ignores foreign
// messages and the mailbox resets with the attempt.
func (f *faultState) detect(n int) {
	m := f.m
	for i := len(f.liveAttempts) - 1; i >= 0; i-- {
		a := f.liveAttempts[i]
		if !touchesNode(a, n) {
			continue
		}
		a.meta.RequestAbort(m.hostID, "node crash", cc.CauseNodeCrash)
		a.sendCrashNotice()
	}
}

// touchesNode reports whether the attempt lost a cohort to this crash:
// any run at the node that the crash-instant scan marked dead. The mark is
// the coordinator-side witness — the node-side registry phase is useless
// here because the sweep itself retires entries (phaseGone) while the
// coordinator is still waiting on them. Dead marks from this crash cover
// every run the attempt had at the node at the crash instant, including
// never-started cohorts whose load died in flight; attempts that planned
// the node only after the crash never sent anything (the fail-fast load
// checks) and carry no mark.
func touchesNode(a *attemptState, n int) bool {
	for _, c := range a.runs {
		if c.meta.Node == n && c.proto.Dead() {
			return true
		}
	}
	return false
}

// RecoverNode implements fault.Target, run at the repair instant with the
// node already accepting messages again. The recovery process replays the
// node's forced log as pure delay (the simulated WAL knows how many live
// prepare records the crash stranded; no disk resources and no randomness
// are touched, so recovery perturbs neither stream), resolves each
// resident per the protocol's rule, and only then rejoins the machine.
func (f *faultState) RecoverNode(n int) {
	m := f.m
	repairAt := m.sim.Now()
	m.tracer.Complete(obs.KindFault, "down", n, 0, 0, f.downSince[n])
	m.sim.Spawn(f.recNames[n], func(p *sim.Proc) {
		p.Delay(recovery.ReplayMs(f.wal.LiveCount(n), m.cfg.MinDiskMs, m.cfg.MinDiskMs))
		for {
			c := f.nextResident(n)
			if c == nil {
				break
			}
			f.resolveResident(p, c)
		}
		f.recoveryMs += float64(m.sim.Now() - repairAt)
		m.tracer.Complete(obs.KindFault, "recovery", n, 0, 0, repairAt)
		f.inj.NodeUp(n)
	})
}

// nextResident finds the node's next unresolved resident (registration
// order). Cohorts loading at the node during recovery are in other phases
// and are skipped.
func (f *faultState) nextResident(n int) *cohortRun {
	for _, c := range f.nodeRuns[n] {
		if c.phase == phaseResident {
			return c
		}
	}
	return nil
}

// resolveResident applies the protocol's in-doubt resolution rule to one
// resident: 2PC pays a full inquiry round-trip to the coordinator before
// the cohort can release anything — the recovery-time blocking penalty the
// presumed variants avoid by resolving locally. Presumed commit's local
// rule installs the cohort's updates even when the transaction actually
// aborted after the crash (the documented PC anomaly: the abort record
// that would prevent it was never forced at the dead node).
func (f *faultState) resolveResident(p *sim.Proc, c *cohortRun) {
	m := f.m
	committed := false
	switch f.res {
	case recovery.PresumeCommit:
		committed = true
	case recovery.Inquire:
		c.recWait = p
		c.a.retain()
		m.net.Send(c.meta.Node, m.hostID, c, tagCohortInquiry)
		p.Suspend()
		committed = c.inqCommit
	}
	if committed {
		m.mgrs[c.meta.Node].Commit(&c.meta)
		c.a.env.InstallCommit(&c.proto)
	} else {
		m.mgrs[c.meta.Node].Abort(&c.meta)
	}
	f.resolveRun(c)
	c.a.release() // the resident pin from the crash sweep
}

// CrashHost implements fault.Target: coordinator failover. Every live
// attempt aborts with the coordinator-crash cause (the failover host has
// no volatile state for them); terminals hold in holdForHost until
// recovery. No cohort state is lost — the host stays up for messaging.
func (f *faultState) CrashHost() {
	m := f.m
	m.tracer.Instant("host-crash", m.hostID, 0, 0, "")
	for i := len(f.liveAttempts) - 1; i >= 0; i-- {
		a := f.liveAttempts[i]
		a.meta.RequestAbort(m.hostID, "coordinator crash", cc.CauseCoordinatorCrash)
		a.sendCrashNotice()
	}
}

// RecoverHost implements fault.Target: release the held terminals.
func (f *faultState) RecoverHost() {
	ws := f.hostWaiters
	f.hostWaiters = f.hostWaiters[:0]
	for _, p := range ws {
		p.Resume()
	}
}
