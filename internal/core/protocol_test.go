package core

import (
	"testing"

	"ddbm/internal/cc"
)

// TestMessageCountPerCommit pins the exact message complexity of the
// transaction protocol: an uncontested parallel transaction with cohorts
// on N nodes exchanges 6N messages — N loads, N done reports, N prepares,
// N votes, N commits and N acks (paper §2.1's coordinator/cohort structure
// with centralized 2PC).
func TestMessageCountPerCommit(t *testing.T) {
	for _, pattern := range []ExecPattern{Parallel, Sequential} {
		for _, ways := range []int{1, 2, 4, 8} {
			cfg := DefaultConfig()
			cfg.Algorithm = cc.NoDC
			cfg.PartitionWays = ways
			cfg.NumTerminals = 1
			cfg.ThinkTimeMs = 100
			cfg.ExecPattern = pattern
			cfg.SimTimeMs = 120_000
			cfg.WarmupMs = 0
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits < 20 {
				t.Fatalf("ways=%d: only %d commits", ways, res.Commits)
			}
			perCommit := float64(res.MessagesSent) / float64(res.Commits)
			want := float64(6 * ways)
			// The transaction in flight at the cutoff contributes partial
			// messages; allow a fraction of one transaction's worth.
			if perCommit < want || perCommit > want+want/float64(res.Commits)+0.5 {
				t.Errorf("%v ways=%d: %.3f messages/commit, want %v", pattern, ways, perCommit, want)
			}
		}
	}
}

// TestSequentialAbortMidChain forces an abort while later cohorts of a
// sequential transaction have not been loaded: the machine must stay
// consistent and keep committing afterwards.
func TestSequentialAbortMidChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = cc.BTO // access-time rejections abort mid-chain
	cfg.ExecPattern = Sequential
	cfg.PartitionWays = 8
	cfg.NumProcNodes = 8
	cfg.NumTerminals = 32
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.SimTimeMs = 90_000
	cfg.WarmupMs = 15_000
	cfg.Audit = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Fatal("no aborts: the mid-chain path was not exercised")
	}
	if res.Commits == 0 {
		t.Fatal("sequential machine wedged after aborts")
	}
	if len(res.AuditViolations) != 0 {
		t.Fatalf("anomalies: %s", res.AuditViolations[0])
	}
}

// TestBlockingMeasuredViaCCRequests verifies the blocking-time metric
// reflects only concurrency control waits, not CPU or disk queueing: the
// NO_DC baseline must record zero blocking even under heavy load.
func TestBlockingMeasuredViaCCRequests(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockCount != 0 {
		t.Errorf("NO_DC recorded %d blocking episodes", res.BlockCount)
	}
}

// TestActiveTxnsTracksTerminals checks the time-average active-transaction
// count: at think 0 every terminal always has a transaction in flight.
func TestActiveTxnsTracksTerminals(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgActiveTxns < float64(cfg.NumTerminals)-1 {
		t.Errorf("active transactions %.2f, want ~%d at think 0", res.AvgActiveTxns, cfg.NumTerminals)
	}
}

// TestRestartDelayAdapts confirms the restart delay follows the running
// average response time: with a tiny initial delay and substantial real
// response times, aborted transactions must not retry in a tight loop.
func TestRestartDelayAdapts(t *testing.T) {
	cfg := testConfig(cc.OPT)
	cfg.PagesPerFile = 30
	cfg.ThinkTimeMs = 0
	cfg.InitialRestartDelayMs = 1 // pathological initial value
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	// If the delay never adapted, the abort count would explode (every
	// abort retried within ~1 ms against the same conflicts).
	if res.AbortRatio > 50 {
		t.Errorf("abort ratio %.1f suggests restart delay never adapted", res.AbortRatio)
	}
}

// TestMeasuredStatsOnlyAfterWarmup verifies warmup exclusion: with the
// warmup covering the whole interesting period, measured commits must be
// far fewer than in an unwarmed run.
func TestMeasuredStatsOnlyAfterWarmup(t *testing.T) {
	base := testConfig(cc.NoDC)
	base.SimTimeMs = 40_000
	base.WarmupMs = 0
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	late := base
	late.WarmupMs = 36_000
	tail, err := Run(late)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Commits >= full.Commits {
		t.Errorf("warmup did not exclude commits: %d vs %d", tail.Commits, full.Commits)
	}
	if tail.MeasuredMs >= full.MeasuredMs {
		t.Error("measured window not shortened by warmup")
	}
}
