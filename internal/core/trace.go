package core

import (
	"fmt"
	"io"

	"ddbm/internal/sim"
)

// TxnEventKind labels a transaction life-cycle event.
type TxnEventKind int

const (
	// TxnSubmitted: a terminal submitted a new transaction.
	TxnSubmitted TxnEventKind = iota
	// TxnAttemptStarted: an execution attempt began (first or restart).
	TxnAttemptStarted
	// TxnAttemptAborted: the attempt aborted; Detail holds the reason.
	TxnAttemptAborted
	// TxnCommitted: the commit decision was made (response complete).
	TxnCommitted
	// TxnPrepared: every cohort voted yes in the first phase of the commit
	// protocol (before the decision is logged).
	TxnPrepared
	// TxnDecided: the commit protocol resolved the attempt; Detail is
	// "commit" or "abort". Emitted for every attempt — together with
	// TxnPrepared it makes per-phase commit timing observable.
	TxnDecided
)

func (k TxnEventKind) String() string {
	switch k {
	case TxnSubmitted:
		return "submitted"
	case TxnAttemptStarted:
		return "attempt"
	case TxnAttemptAborted:
		return "aborted"
	case TxnCommitted:
		return "committed"
	case TxnPrepared:
		return "prepared"
	case TxnDecided:
		return "decided"
	default:
		return fmt.Sprintf("TxnEventKind(%d)", int(k))
	}
}

// TxnEvent is one observation of a transaction's life cycle.
type TxnEvent struct {
	// Time is the simulated time in milliseconds.
	Time sim.Time
	// Txn is the transaction identifier; Attempt counts executions (1 =
	// first run).
	Txn     int64
	Attempt int
	Kind    TxnEventKind
	// Detail carries the abort reason for TxnAttemptAborted.
	Detail string
}

func (e TxnEvent) String() string {
	s := fmt.Sprintf("%10.1fms txn %-6d #%d %s", e.Time, e.Txn, e.Attempt, e.Kind)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// ObserveTxns registers a transaction life-cycle observer. It must be
// called before Start/Run; passing nil removes the observer. Observation
// has no effect on simulated behaviour.
func (m *Machine) ObserveTxns(fn func(TxnEvent)) { m.observer = fn }

// TraceTxns writes every transaction event to w (a convenience wrapper
// around ObserveTxns).
func (m *Machine) TraceTxns(w io.Writer) {
	m.ObserveTxns(func(e TxnEvent) { fmt.Fprintln(w, e) })
}

func (m *Machine) emit(e TxnEvent) {
	if m.observer != nil {
		e.Time = m.sim.Now()
		m.observer(e)
	}
}
