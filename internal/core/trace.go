package core

import (
	"fmt"
	"io"

	"ddbm/internal/sim"
)

// TxnEventKind labels a transaction life-cycle event.
type TxnEventKind int

const (
	// TxnSubmitted: a terminal submitted a new transaction.
	TxnSubmitted TxnEventKind = iota
	// TxnAttemptStarted: an execution attempt began (first or restart).
	TxnAttemptStarted
	// TxnAttemptAborted: the attempt aborted; Detail holds the reason.
	TxnAttemptAborted
	// TxnCommitted: the commit decision was made (response complete).
	TxnCommitted
	// TxnPrepared: every cohort voted yes in the first phase of the commit
	// protocol (before the decision is logged).
	TxnPrepared
	// TxnDecided: the commit protocol resolved the attempt; Detail is
	// "commit" or "abort". Emitted for every attempt — together with
	// TxnPrepared it makes per-phase commit timing observable.
	TxnDecided
)

// txnEventNames is the single name table for life-cycle events: TxnEvent
// printing and the obs tracer's instant names both draw from it, so the
// two observation paths cannot drift apart.
var txnEventNames = [...]string{
	TxnSubmitted:      "submitted",
	TxnAttemptStarted: "attempt",
	TxnAttemptAborted: "aborted",
	TxnCommitted:      "committed",
	TxnPrepared:       "prepared",
	TxnDecided:        "decided",
}

// String names the kind; out-of-range values (on either side — the kind is
// a signed int) fall back to a TxnEventKind(n) form rather than indexing
// the name table out of bounds.
func (k TxnEventKind) String() string {
	if k >= 0 && int(k) < len(txnEventNames) {
		return txnEventNames[k]
	}
	return fmt.Sprintf("TxnEventKind(%d)", int(k)) //ddbmlint:allow hotpath-alloc out-of-range fallback; every real kind hits the name table
}

// TxnEvent is one observation of a transaction's life cycle.
type TxnEvent struct {
	// Time is the simulated time in milliseconds.
	Time sim.Time
	// Txn is the transaction identifier; Attempt counts executions (1 =
	// first run).
	Txn     int64
	Attempt int
	Kind    TxnEventKind
	// Detail carries the abort reason for TxnAttemptAborted.
	Detail string
}

func (e TxnEvent) String() string {
	s := fmt.Sprintf("%10.1fms txn %-6d #%d %s", e.Time, e.Txn, e.Attempt, e.Kind)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// ObserveTxns registers a transaction life-cycle observer. It must be
// called before Start/Run; passing nil removes the observer. Observation
// has no effect on simulated behaviour. Since the obs layer landed, the
// observer is a thin adapter over the same emission path (lifecycle) that
// feeds the tracer's instant events; the TxnEvent API is kept for callers
// that want a callback instead of a recorded trace.
func (m *Machine) ObserveTxns(fn func(TxnEvent)) { m.observer = fn }

// TraceTxns writes every transaction event to w (a convenience wrapper
// around ObserveTxns).
func (m *Machine) TraceTxns(w io.Writer) {
	m.ObserveTxns(func(e TxnEvent) { fmt.Fprintln(w, e) })
}

// lifecycle is the single life-cycle emission path: one call records the
// event as an obs instant (at the host node, where the coordinator runs)
// and adapts it to the legacy TxnEvent observer. Both sinks disabled —
// the common case — costs two nil tests.
func (m *Machine) lifecycle(kind TxnEventKind, txn int64, attempt int, detail string) {
	if m.tracer == nil && m.observer == nil {
		return
	}
	m.tracer.Instant(kind.String(), m.hostID, txn, attempt, detail)
	if m.observer != nil {
		m.observer(TxnEvent{Time: m.sim.Now(), Txn: txn, Attempt: attempt, Kind: kind, Detail: detail}) //ddbmlint:allow hotpath-alloc observer hook; nil on the measured path, enabled only by tests and the CLI
	}
}
