package core

import (
	"fmt"
	"slices"

	"ddbm/internal/audit"
	"ddbm/internal/cc"
	"ddbm/internal/cc/bto"
	"ddbm/internal/cc/nodc"
	"ddbm/internal/cc/opt"
	"ddbm/internal/cc/twopl"
	"ddbm/internal/cc/ww"
	"ddbm/internal/commit"
	"ddbm/internal/db"
	"ddbm/internal/network"
	"ddbm/internal/obs"
	"ddbm/internal/resource"
	"ddbm/internal/sim"
	"ddbm/internal/workload"
)

// Machine is one assembled database machine: the host node, the processing
// nodes with their resources and concurrency control managers, the network,
// the workload source, and the metrics collector.
type Machine struct {
	cfg       Config
	sim       *sim.Sim
	cat       *db.Catalog
	cpus      []*resource.CPU       // index 0..P-1: processing nodes; index P: host
	disks     []*resource.DiskArray // processing nodes only
	hostDisks *resource.DiskArray   // host node (commit-record forces)
	net       *network.Network
	mgrs      []cc.Manager
	algo      cc.Algorithm
	proto     commit.Protocol
	gen       *workload.Generator
	stats     *statsCollector
	rec       *audit.Recorder // non-nil when cfg.Audit
	observer  func(TxnEvent)

	// Observability (all nil/zero unless explicitly enabled; the disabled
	// state is the existing fast path). activeCohorts is allocated — and
	// maintained by runCohort — only while probing is on.
	tracer        *obs.Tracer
	probes        *obs.TimeSeries
	probeEveryMs  float64
	activeCohorts []int     // per processing node
	prevCPUBusy   []float64 // sampler window state: last BusyTime() per CPU
	prevDiskBusy  []float64 // ... per disk array (proc nodes, then host)
	// bd is the time-breakdown accounting state (nil unless
	// cfg.Breakdown); bdCheck is a test seam invoked at every commit with
	// the transaction's ledger and measured response time (reconciliation
	// property tests).
	bd      *breakdown
	bdCheck func(ld *obs.Ledger, respMs float64)

	hostID     int
	tsCounter  int64
	txnCounter int64

	// Transaction-path pools and pre-bound hooks (see txn.go): recycled
	// attempt states, the untraced OnBlocked method value, the per-node
	// static cohort process names, and the per-node phase-two write-back
	// continuations. All bound once at machine construction so the
	// steady-state transaction path allocates nothing.
	attemptFree  []*attemptState
	blockedFn    func(co *cc.CohortMeta, d sim.Time)
	cohortNames  []string
	writeBackFns []func()

	// ft is the fault/recovery state (nil unless cfg.Faults.Enabled; the
	// nil state is the existing fault-free fast path).
	ft *faultState

	// logForces counts modeled log forces over the whole run;
	// abortLogForces is the subset attributed to abort handling.
	logForces      int64
	abortLogForces int64
}

// NewMachine builds (but does not run) a machine from the configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var cat *db.Catalog
	var err error
	if cfg.PartitionWays == 0 {
		cat, err = db.PlaceScaled(cfg.NumRelations, cfg.PartsPerRelation, cfg.PagesPerFile, cfg.NumProcNodes)
	} else {
		cat, err = db.PlacePartitioned(cfg.NumRelations, cfg.PartsPerRelation, cfg.PagesPerFile,
			cfg.NumProcNodes, cfg.PartitionWays)
	}
	if err != nil {
		return nil, err
	}
	if cfg.ReplicaCount > 1 {
		if err := cat.Replicate(cfg.ReplicaCount, cfg.NumProcNodes); err != nil {
			return nil, err
		}
	}
	if err := cat.Validate(cfg.NumProcNodes); err != nil {
		return nil, err
	}

	proto, err := commit.New(cfg.CommitProtocol)
	if err != nil {
		return nil, err
	}

	s := sim.New(cfg.Seed)
	m := &Machine{
		cfg:    cfg,
		sim:    s,
		cat:    cat,
		proto:  proto,
		hostID: cfg.NumProcNodes,
		stats:  newStatsCollector(expectedCommits(&cfg)),
	}
	if cfg.Audit {
		m.rec = audit.NewRecorder()
	}
	m.blockedFn = m.onBlocked
	for i := 0; i < cfg.NumProcNodes; i++ {
		m.cpus = append(m.cpus, resource.NewCPU(s, cfg.ProcMIPS))
		d := resource.NewDiskArray(s, cfg.NumDisks, cfg.MinDiskMs, cfg.MaxDiskMs)
		m.disks = append(m.disks, d)
		m.cohortNames = append(m.cohortNames, fmt.Sprintf("cohort@%d", i))
		m.writeBackFns = append(m.writeBackFns, func() { d.WriteAsync(nil) })
	}
	m.cpus = append(m.cpus, resource.NewCPU(s, cfg.HostMIPS)) // host
	m.hostDisks = resource.NewDiskArray(s, cfg.NumDisks, cfg.MinDiskMs, cfg.MaxDiskMs)
	m.net = network.New(s, m.cpus, cfg.InstPerMsg)

	spread := workload.SpreadHalfToThreeHalves
	if cfg.SpreadHalfToTwice {
		spread = workload.SpreadHalfToTwice
	}
	m.gen = &workload.Generator{
		Catalog:     cat,
		AvgPages:    cfg.AvgPagesPerPartition,
		WriteProb:   cfg.WriteProb,
		InstPerPage: cfg.InstPerPage,
		Spread:      spread,
	}
	for _, cl := range cfg.Classes {
		m.gen.Classes = append(m.gen.Classes, workload.Class{
			Frac:        cl.Frac,
			Sequential:  cl.Sequential,
			FileCount:   cl.FileCount,
			AvgPages:    cl.AvgPagesPerPartition,
			WriteProb:   cl.WriteProb,
			InstPerPage: cl.InstPerPage,
		})
	}
	if err := m.gen.Validate(); err != nil {
		return nil, err
	}
	if cfg.Breakdown {
		// Per-terminal ledgers, per-class × per-phase histograms and
		// per-node abort-cause counters, all fixed-size: the steady-state
		// accounting allocates nothing. The host gets the last cause row.
		m.bd = newBreakdown(m.gen.NumClasses(), cfg.NumProcNodes+1, cfg.NumTerminals)
		for t := 0; t < cfg.NumTerminals; t++ {
			m.bd.classOf[t] = m.gen.ClassIndexOfTerminal(t, cfg.NumTerminals)
		}
	}

	// Pre-size the transaction path from the machine's concurrency bounds
	// so steady state is allocation-free outright rather than after every
	// pool's high-water record has been set (records thin out as 1/t, so a
	// warmup can shrink but never deterministically retire them). None of
	// the Reserve calls draws randomness or schedules events: runs are
	// bit-identical with or without them.
	//
	// At most NumTerminals transaction attempts exist at once; a restarting
	// terminal can briefly pin a second plan through in-flight messages.
	// The CPU job and disk backlog bounds are generous multiples rather
	// than hard invariants — queues are open, bounded only by service-rate
	// stability — chosen far above any backlog a saturated configuration
	// reaches.
	m.gen.Reserve(2 * cfg.NumTerminals)
	m.net.Reserve(8 * cfg.NumTerminals)
	for _, c := range m.cpus {
		c.Reserve(8 * cfg.NumTerminals)
	}
	for _, d := range m.disks {
		d.Reserve(16 * cfg.NumTerminals)
	}
	m.hostDisks.Reserve(16 * cfg.NumTerminals)

	switch cfg.Algorithm {
	case cc.TwoPL:
		if cfg.LockWaitTimeoutMs > 0 {
			m.algo = twopl.NewWithTimeout(cfg.LockWaitTimeoutMs)
		} else {
			m.algo = twopl.New(cfg.DetectionIntervalMs)
		}
	case cc.O2PL:
		if cfg.LockWaitTimeoutMs > 0 {
			a := twopl.NewWithTimeout(cfg.LockWaitTimeoutMs)
			a.Optimistic = true
			m.algo = a
		} else {
			m.algo = twopl.NewO2PL(cfg.DetectionIntervalMs)
		}
	case cc.WoundWait:
		m.algo = ww.New()
	case cc.BTO:
		m.algo = bto.New()
	case cc.OPT:
		m.algo = &opt.Algorithm{Strict: cfg.StrictOPT}
	case cc.NoDC:
		m.algo = nodc.New()
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}
	if a, ok := m.algo.(*twopl.Algorithm); ok {
		a.MaxTxns = cfg.NumTerminals
		a.MaxLocksPerCohort = m.gen.MaxAccessesPerCohort()
	}
	for i := 0; i < cfg.NumProcNodes; i++ {
		m.mgrs = append(m.mgrs, m.algo.NewManager(cc.Env{Sim: s, Node: i}))
	}
	if cfg.Faults.Enabled {
		m.ft = newFaultState(m)
	}
	return m, nil
}

// onBlocked is the pre-bound cc.CohortMeta.OnBlocked hook: the stats tally
// for every blocking episode, plus — when the fault layer is active and
// the lock table attributed the wait to an in-doubt cohort of a crashed
// node — the blocked-in-doubt account.
//
//ddbmlint:hotpath blocking-episode tally on every lock wait
func (m *Machine) onBlocked(co *cc.CohortMeta, d sim.Time) {
	m.stats.blocked(d)
	if m.ft != nil && co.BlockedInDoubt {
		co.BlockedInDoubt = false
		m.ft.noteInDoubtBlock(d)
	}
}

// Sim exposes the simulator (tests and extensions).
func (m *Machine) Sim() *sim.Sim { return m.sim }

// Catalog exposes the database catalog.
func (m *Machine) Catalog() *db.Catalog { return m.cat }

// Manager returns the concurrency control manager of a processing node.
func (m *Machine) Manager(node int) cc.Manager { return m.mgrs[node] }

// EnableTracing attaches an observability tracer to every layer of the
// machine (transaction life cycle, cohorts, CC waits, commit phases,
// messages, CPU and disk service) and returns it. Must be called before
// Start/Run; idempotent. Tracing is observation only: the traced run is
// bit-identical to the untraced run.
func (m *Machine) EnableTracing() *obs.Tracer {
	if m.tracer == nil {
		tr := obs.NewTracer(m.sim)
		m.tracer = tr
		m.net.SetTracer(tr)
		for i, c := range m.cpus {
			c.SetTrace(tr, i)
		}
		for i, d := range m.disks {
			d.SetTrace(tr, i)
		}
		m.hostDisks.SetTrace(tr, m.hostID)
	}
	return m.tracer
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// EnableProbes installs the periodic gauge sampler, snapshotting per-node
// gauges every intervalMs of simulated time into the returned TimeSeries.
// Must be called before Start/Run. The sampler is a deterministic sim
// process that only reads state (see obs.TimeSeries), so probed runs stay
// bit-identical to unprobed ones.
func (m *Machine) EnableProbes(intervalMs float64) *obs.TimeSeries {
	if intervalMs <= 0 {
		panic("core: probe interval must be positive")
	}
	nodes := m.cfg.NumProcNodes + 1
	m.probes = obs.NewTimeSeries(intervalMs, nodes, int(m.cfg.SimTimeMs/intervalMs)+1)
	m.probeEveryMs = intervalMs
	m.activeCohorts = make([]int, m.cfg.NumProcNodes)
	m.prevCPUBusy = make([]float64, len(m.cpus))
	m.prevDiskBusy = make([]float64, nodes)
	return m.probes
}

// TimeSeries returns the probe samples, or nil when probing is disabled.
func (m *Machine) TimeSeries() *obs.TimeSeries { return m.probes }

// Breakdown returns the run's aggregated time-breakdown snapshot
// (per-class phase distributions and per-node abort-cause counts), or
// nil when Config.Breakdown is off. Call after Run.
func (m *Machine) Breakdown() *obs.BreakdownSnapshot { return m.bd.snapshot() }

// ccGauges is the optional interface a CC manager implements to expose its
// table size and blocked-cohort count to the probe sampler; managers
// without local state (no-DC) simply report zeros.
type ccGauges interface {
	TableSize() int
	BlockedCount() int
}

// sample takes one probe snapshot. Pure reads only: BusyTime() on the
// resources is side-effect-free, and the gauges are queue/map lengths.
func (m *Machine) sample() {
	ts := m.probes
	ts.Times = append(ts.Times, m.sim.Now())
	for i := 0; i <= m.cfg.NumProcNodes; i++ {
		ns := &ts.Nodes[i]
		da := m.hostDisks
		if i < m.cfg.NumProcNodes {
			da = m.disks[i]
		}
		cpuBusy := m.cpus[i].BusyTime()
		diskBusy := da.BusyTime()
		ns.CPUUtil = append(ns.CPUUtil, (cpuBusy-m.prevCPUBusy[i])/m.probeEveryMs)
		ns.DiskUtil = append(ns.DiskUtil, (diskBusy-m.prevDiskBusy[i])/(m.probeEveryMs*float64(da.NumDisks())))
		m.prevCPUBusy[i] = cpuBusy
		m.prevDiskBusy[i] = diskBusy
		ns.ReadyQueue = append(ns.ReadyQueue, m.cpus[i].QueueLen())
		var active, tableSize, blocked int
		if i < m.cfg.NumProcNodes {
			active = m.activeCohorts[i]
			if g, ok := m.mgrs[i].(ccGauges); ok {
				tableSize = g.TableSize()
				blocked = g.BlockedCount()
			}
		}
		ns.ActiveCohorts = append(ns.ActiveCohorts, active)
		ns.LockTableSize = append(ns.LockTableSize, tableSize)
		ns.BlockedTxns = append(ns.BlockedTxns, blocked)
		down := 0
		if m.ft != nil && i < m.cfg.NumProcNodes && m.ft.inj.Down(i) {
			down = 1
		}
		ns.Down = append(ns.Down, down)
	}
}

// expectedCommits estimates how many transactions will commit inside the
// measurement window, for preallocating the per-response sample buffer:
// each terminal cycles through one think time plus roughly one response
// (taken as the restart delay plus a small floor to avoid dividing by
// near-zero for no-think workloads).
func expectedCommits(cfg *Config) int {
	cycleMs := cfg.ThinkTimeMs + cfg.InitialRestartDelayMs + 100
	window := cfg.SimTimeMs - cfg.WarmupMs
	return int(float64(cfg.NumTerminals) * window / cycleMs)
}

// nextTS returns the next globally unique, monotone timestamp.
func (m *Machine) nextTS() int64 {
	m.tsCounter++
	return m.tsCounter
}

func (m *Machine) nextTxnID() int64 {
	m.txnCounter++
	return m.txnCounter
}

// globalEnv adapts the machine to cc.GlobalEnv for algorithm-global
// machinery (the 2PL Snoop).
type globalEnv struct{ m *Machine }

func (g globalEnv) Sim() *sim.Sim                            { return g.m.sim }
func (g globalEnv) NumProcNodes() int                        { return g.m.cfg.NumProcNodes }
func (g globalEnv) ManagerAt(node int) cc.Manager            { return g.m.mgrs[node] }
func (g globalEnv) SendControl(from, to int, deliver func()) { g.m.net.SendFunc(from, to, deliver) }

// Start launches the workload (terminals) and algorithm-global processes,
// and schedules the warmup boundary. Exposed separately from Run for tests
// that drive the simulator manually.
func (m *Machine) Start() {
	m.algo.StartGlobal(globalEnv{m})
	for t := 0; t < m.cfg.NumTerminals; t++ {
		t := t
		m.sim.Spawn(fmt.Sprintf("terminal-%d", t), func(p *sim.Proc) {
			m.terminal(p, t)
		})
	}
	m.sim.Schedule(m.cfg.WarmupMs, func() {
		m.stats.startMeasuring(m.sim.Now())
		for _, c := range m.cpus {
			c.MarkWarmup()
		}
		for _, d := range m.disks {
			d.MarkWarmup()
		}
	})
	if m.probes != nil {
		m.sim.Spawn("probe-sampler", func(p *sim.Proc) {
			for {
				p.Delay(m.probeEveryMs)
				m.sample()
			}
		})
	}
	if m.ft != nil {
		m.ft.inj.Start()
	}
}

// Run executes the configured simulation and returns its metrics.
func (m *Machine) Run() Result {
	m.Start()
	m.sim.Run(m.cfg.SimTimeMs)
	return m.result()
}

// Run builds a machine from cfg, runs it, and returns the result.
func Run(cfg Config) (Result, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(), nil
}

// result gathers the metrics after the run.
func (m *Machine) result() Result {
	cfg := m.cfg
	measured := m.sim.Now() - cfg.WarmupMs
	r := Result{
		Config:     cfg,
		MeasuredMs: measured,
		Commits:    m.stats.commits,
		Aborts:     m.stats.aborts,
	}
	if measured > 0 {
		r.ThroughputTPS = float64(m.stats.commits) / (measured / 1000)
	}
	r.MeanResponseMs = m.stats.resp.Mean()
	r.RespHalfWidth95 = m.stats.respBatch.HalfWidth95()
	r.RespStdDev = m.stats.resp.StdDev()
	r.MaxResponseMs = m.stats.resp.Max()
	if n := len(m.stats.respAll); n > 0 {
		sorted := make([]float64, n)
		copy(sorted, m.stats.respAll)
		slices.Sort(sorted)
		pct := func(p float64) float64 {
			i := int(p * float64(n-1))
			return sorted[i]
		}
		r.RespP50Ms = pct(0.50)
		r.RespP90Ms = pct(0.90)
		r.RespP99Ms = pct(0.99)
	}
	if m.stats.commits > 0 {
		r.AbortRatio = float64(m.stats.aborts) / float64(m.stats.commits)
	} else if m.stats.aborts > 0 {
		r.AbortRatio = float64(m.stats.aborts)
	}
	r.MeanRestarts = m.stats.restarts.Mean()
	r.MeanBlockMs = m.stats.block.Mean()
	r.BlockCount = m.stats.block.Count()
	for i := 0; i < cfg.NumProcNodes; i++ {
		cu := m.cpus[i].Utilization()
		du := m.disks[i].Utilization()
		r.PerNodeCPUUtil = append(r.PerNodeCPUUtil, cu)
		r.PerNodeDiskUtil = append(r.PerNodeDiskUtil, du)
		r.ProcCPUUtil += cu
		r.ProcDiskUtil += du
	}
	r.ProcCPUUtil /= float64(cfg.NumProcNodes)
	r.ProcDiskUtil /= float64(cfg.NumProcNodes)
	r.HostCPUUtil = m.cpus[m.hostID].Utilization()
	r.MessagesSent = m.net.Sent()
	r.LogForces = m.logForces
	r.AbortPathLogForces = m.abortLogForces
	r.AvgActiveTxns = m.stats.active.Mean(m.sim.Now())
	if ft := m.ft; ft != nil {
		r.Crashes = ft.inj.Crashes()
		r.MessagesLost = m.net.Lost()
		r.InDoubtTimeMs = ft.inDoubtMs
		r.InDoubtWindows = ft.inDoubtWindows
		r.BlockedInDoubtMs = ft.blockedInDoubtMs
		r.RecoveryTimeMs = ft.recoveryMs
		var downMs float64
		for i := 0; i < cfg.NumProcNodes; i++ {
			downMs += ft.inj.DownMs(i, m.sim.Now())
		}
		if total := float64(m.sim.Now()) * float64(cfg.NumProcNodes); total > 0 {
			r.Availability = 1 - downMs/total
		}
		if r.Availability > 0 {
			r.GoodputPerSec = r.ThroughputTPS / r.Availability
		}
	}
	if m.rec != nil {
		r.AuditedTxns = int64(len(m.rec.Records()))
		for _, v := range m.rec.Check() {
			r.AuditViolations = append(r.AuditViolations, v.String())
		}
	}
	m.bd.resultFields(&r)
	return r
}
