package core

import (
	"ddbm/internal/audit"
	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/db"
	"ddbm/internal/network"
	"ddbm/internal/obs"
	"ddbm/internal/sim"
	"ddbm/internal/workload"
)

// The coordinator's abort-demanding mailbox messages satisfy
// commit.AbortSignal so the protocol layer's vote collection treats them as
// a failed prepare phase. Pointer receivers: the messages travel by
// pointer out of the free-listed attempt state.
func (*msgSelfAbort) CommitAbortSignal()   {}
func (*msgAbortNotice) CommitAbortSignal() {}

// protocolEnv adapts one transaction attempt's view of the machine to
// commit.Env: it is the narrow facade through which a commit protocol
// drives the network, the per-node managers, the log disks, and the
// timestamp source. It is embedded in the attempt state, reset per
// attempt, and its Retain/Release route the protocol's in-flight
// references into the attempt's quiescence count.
type protocolEnv struct {
	m *Machine
	a *attemptState // owning attempt, set once at pool growth
	// txn and attempt identify the attempt for the life-cycle observer.
	txn     int64
	attempt int
	// runs carries the core-side cohort state (plans, audit reads) in the
	// same order as the protocol-side commit.Txn.Cohorts.
	runs []*cohortRun
	// phaseAt is the running commit-phase boundary for the tracer's
	// prepare/decide/resolve spans: the attempt sets it on entering the
	// protocol, Prepared and Decided advance it. Observation only.
	phaseAt sim.Time
	// prepared records whether Prepared fired this attempt, so Decided can
	// attribute ledger time to the decide phase when it did and to the
	// prepare phase when the protocol decided without a separate vote
	// round (e.g. an abort before all votes arrived). Reset per attempt.
	prepared bool
}

func (e *protocolEnv) Host() int { return e.m.hostID }

//ddbmlint:hotpath protocol message send pinned by TestTxnPathAllocFree
func (e *protocolEnv) Send(from, to int, h network.Handler, tag int) {
	e.m.net.Send(from, to, h, tag)
}

//ddbmlint:hotpath protocol reference counting pinned by TestTxnPathAllocFree
func (e *protocolEnv) Retain() { e.a.retain() }

//ddbmlint:hotpath protocol reference counting pinned by TestTxnPathAllocFree
func (e *protocolEnv) Release() { e.a.release() }

func (e *protocolEnv) Manager(node int) cc.Manager { return e.m.mgrs[node] }
func (e *protocolEnv) NextTS() int64               { return e.m.nextTS() }
func (e *protocolEnv) Logging() bool               { return e.m.cfg.ModelLogging }

// ForceLog forces a log record at the coordinator's node: a synchronous
// priority write on the host's disks, blocking the calling process.
//
//ddbmlint:hotpath coordinator log force pinned by TestTxnPathAllocFree
func (e *protocolEnv) ForceLog(p *sim.Proc, abortPath bool) {
	e.m.countLogForce(abortPath)
	e.m.hostDisks.Write(p)
}

// ForceLogAsync forces a log record at a cohort node's disks, running done
// when the write completes.
//
//ddbmlint:hotpath cohort log force pinned by TestTxnPathAllocFree
func (e *protocolEnv) ForceLogAsync(node int, abortPath bool, done func()) {
	e.m.countLogForce(abortPath)
	e.m.disks[node].WriteAsync(done)
}

// InstallCommit applies a committed cohort's buffered updates at its node:
// audit installs, then one InstPerUpdate CPU burst per updated page to
// initiate the deferred disk write (through the node's pre-bound
// write-back continuation).
//
//ddbmlint:hotpath phase-two update install pinned by TestTxnPathAllocFree
func (e *protocolEnv) InstallCommit(c *commit.Cohort) {
	m := e.m
	run := e.runs[c.Idx]
	node := c.Meta.Node
	if m.rec != nil {
		stamp := m.serializationStamp(c.Meta.Txn)
		for i := range run.plan.Accesses {
			if run.plan.Accesses[i].Write {
				m.rec.Install(run.plan.Accesses[i].Page, node, stamp)
			}
		}
	}
	writes := run.plan.NumWrites()
	wb := m.writeBackFns[node]
	for w := 0; w < writes; w++ {
		m.cpus[node].UseAsync(m.cfg.InstPerUpdate, wb)
	}
}

// RecordCommit registers the committed transaction with the
// serializability auditor (a no-op unless Config.Audit). Deliberately not
// hotpath-annotated: auditing is off in measured runs, and audited runs
// trade per-commit record allocation for the serializability check.
func (e *protocolEnv) RecordCommit() {
	m := e.m
	if m.rec == nil {
		return
	}
	meta := e.runs[0].meta.Txn
	stamp := m.serializationStamp(meta)
	rec := audit.TxnRecord{ID: meta.ID, Stamp: stamp}
	for _, c := range e.runs {
		rec.Reads = append(rec.Reads, c.reads...)
		for i := range c.plan.Accesses {
			if c.plan.Accesses[i].Write {
				rec.Writes = append(rec.Writes, c.plan.Accesses[i].Page)
			}
		}
	}
	m.rec.Commit(rec)
}

// Prepared and Decided surface protocol phase transitions as life-cycle
// events and close the corresponding commit-phase spans ("prepare" runs
// from protocol entry to all-votes-collected, "decide" from there to the
// logged decision). Observation only: no effect on simulated behaviour.
//
//ddbmlint:hotpath prepare-phase hook pinned by TestTxnPathAllocFree
func (e *protocolEnv) Prepared() {
	e.a.bd.Spend(e.m.sim.Now(), obs.PhasePrepare)
	e.prepared = true
	e.m.lifecycle(TxnPrepared, e.txn, e.attempt, "")
	if tr := e.m.tracer; tr != nil {
		tr.Complete(obs.KindCommitPhase, "prepare", e.m.hostID, e.txn, e.attempt, e.phaseAt)
		e.phaseAt = e.m.sim.Now()
	}
}

//ddbmlint:hotpath decision hook pinned by TestTxnPathAllocFree
func (e *protocolEnv) Decided(committed bool) {
	ph := obs.PhasePrepare
	if e.prepared {
		ph = obs.PhaseDecide
	}
	e.a.bd.Spend(e.m.sim.Now(), ph)
	detail := "commit"
	if !committed {
		detail = "abort"
	}
	e.m.lifecycle(TxnDecided, e.txn, e.attempt, detail)
	if e.m.ft != nil {
		e.m.ft.noteDecision(e.runs, committed)
	}
	if tr := e.m.tracer; tr != nil {
		tr.Complete(obs.KindCommitPhase, "decide", e.m.hostID, e.txn, e.attempt, e.phaseAt)
		e.phaseAt = e.m.sim.Now()
	}
}

// CohortInDoubt opens a cohort's in-doubt window: from here (its yes-vote
// is forced and about to be sent) until it learns the global outcome, a
// crash at its node strands its locks behind the commit protocol. No-op
// without the fault layer.
//
//ddbmlint:hotpath vote-send hook pinned by TestTxnPathAllocFree
func (e *protocolEnv) CohortInDoubt(c *commit.Cohort) {
	if e.m.ft == nil {
		return
	}
	e.m.ft.openInDoubt(e.runs[c.Idx])
}

// CohortResolved closes a cohort's in-doubt window (if one was open) and
// retires its crash-registry entry: the cohort has learned the outcome (or
// was released read-only before any window opened). No-op without the
// fault layer.
//
//ddbmlint:hotpath outcome-learned hook pinned by TestTxnPathAllocFree
func (e *protocolEnv) CohortResolved(c *commit.Cohort, committed bool) {
	if e.m.ft == nil {
		return
	}
	e.m.ft.resolveRun(e.runs[c.Idx])
}

// Down reports whether a cohort's node is currently crashed, so the
// protocol's fan-outs skip dead destinations. Always false without the
// fault layer.
//
//ddbmlint:hotpath fan-out guard pinned by TestTxnPathAllocFree
func (e *protocolEnv) Down(node int) bool {
	return e.m.ft != nil && e.m.ft.inj.Down(node)
}

// countLogForce tallies modeled log forces over the whole run (like
// MessagesSent, not windowed to the measurement interval).
//
//ddbmlint:hotpath log force accounting
func (m *Machine) countLogForce(abortPath bool) {
	m.logForces++
	if abortPath {
		m.abortLogForces++
	}
}

// appendDeferred collects the cohort's write permissions that move to the
// first phase of the commit protocol: every write under O2PL, the
// remote-copy writes under DeferRemoteWriteLocks ([Care89]). The
// destination is the pooled cohort's Deferred buffer, resliced to empty by
// Txn.Attach, so steady-state collection reuses its backing array.
//
//ddbmlint:hotpath deferred-permission collection pinned by TestTxnPathAllocFree
func (m *Machine) appendDeferred(dst *[]db.PageID, cp *workload.CohortPlan) {
	for i := range cp.Accesses {
		a := &cp.Accesses[i]
		if (m.cfg.Algorithm == cc.O2PL && a.Write) ||
			(m.cfg.DeferRemoteWriteLocks && a.Remote) {
			*dst = append(*dst, a.Page) //ddbmlint:allow hotpath-alloc high-water growth; the buffer survives recycling
		}
	}
}

// abortAttempt resolves a failed attempt: it marks the attempt aborted
// (with a default reason when no party recorded one) and runs the commit
// protocol's abort path across the loaded cohorts.
//
//ddbmlint:hotpath abort resolution pinned by TestTxnPathAllocFree
func (m *Machine) abortAttempt(p *sim.Proc, env *protocolEnv, t *commit.Txn, loaded int) {
	t.Meta.AbortRequested = true
	if t.Meta.AbortReason == "" {
		t.Meta.AbortReason = "aborted by coordinator"
	}
	// Cause attribution mirrors the reason default: a no-op when any party
	// already recorded a cause (first cause wins).
	t.Meta.NoteCause(m.hostID, cc.CauseCoordinator)
	env.phaseAt = m.sim.Now()
	m.proto.Abort(p, env, t, loaded) //ddbmlint:allow hotpath-alloc Protocol dispatch; the twoPC implementation carries its own hotpath pins
	// Abort resolution: from the abort decision (Decided(false) fires at
	// the top of the protocol's abort path, advancing phaseAt) to the
	// protocol's return — the ack-collection wait under the ack-requiring
	// variants. Nil-safe no-ops when untraced/disabled.
	env.a.bd.Spend(m.sim.Now(), obs.PhaseResolve)
	m.tracer.Complete(obs.KindCommitPhase, "resolve", m.hostID, env.txn, env.attempt, env.phaseAt)
	// The cause tally runs here, after the abort protocol resolved: no
	// simulated time passes between this point and the caller's
	// txnAborted tally, so the windowed counters agree exactly.
	m.bd.noteAbort(t.Meta, m.stats.measuring)
}
