package core

import (
	"strings"
	"testing"

	"ddbm/internal/cc"
)

func TestTxnObserverLifecycle(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []TxnEvent
	m.ObserveTxns(func(e TxnEvent) { events = append(events, e) })
	res := m.Run()
	if res.Commits == 0 {
		t.Fatal("no commits")
	}

	// Per transaction: submitted first, attempts numbered from 1,
	// aborts precede the next attempt, committed last (when present).
	perTxn := map[int64][]TxnEvent{}
	for _, e := range events {
		if e.Time < 0 {
			t.Fatal("negative event time")
		}
		perTxn[e.Txn] = append(perTxn[e.Txn], e)
	}
	committed := 0
	aborted := 0
	for id, evs := range perTxn {
		if evs[0].Kind != TxnSubmitted {
			t.Fatalf("txn %d first event %v, want submitted", id, evs[0].Kind)
		}
		attempt := 0
		for _, e := range evs[1:] {
			switch e.Kind {
			case TxnAttemptStarted:
				attempt++
				if e.Attempt != attempt {
					t.Fatalf("txn %d attempt numbering %d, want %d", id, e.Attempt, attempt)
				}
			case TxnAttemptAborted:
				aborted++
				if e.Detail == "" {
					t.Fatalf("txn %d abort without a reason", id)
				}
			case TxnCommitted:
				committed++
			case TxnSubmitted:
				t.Fatalf("txn %d submitted twice", id)
			}
		}
	}
	if committed == 0 {
		t.Fatal("observer saw no commits")
	}
	if aborted == 0 {
		t.Fatal("observer saw no aborts under heavy contention")
	}
}

func TestTraceTxnsWrites(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	cfg.NumTerminals = 1
	cfg.SimTimeMs = 5000
	cfg.WarmupMs = 500
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.TraceTxns(&sb)
	m.Run()
	out := sb.String()
	for _, want := range []string{"submitted", "attempt", "committed", "txn"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%.300s", want, out)
		}
	}
}

func TestObserverNilSafe(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	cfg.NumTerminals = 1
	cfg.SimTimeMs = 3000
	cfg.WarmupMs = 300
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveTxns(func(TxnEvent) {})
	m.ObserveTxns(nil) // removal
	m.Run()
}

func TestTxnEventStrings(t *testing.T) {
	e := TxnEvent{Time: 1234.5, Txn: 7, Attempt: 2, Kind: TxnAttemptAborted, Detail: "wounded"}
	s := e.String()
	for _, want := range []string{"txn 7", "#2", "aborted", "wounded"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if TxnEventKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// The String fallback must hold on both sides of the name table — a
// negative kind must not panic the table lookup, and the fallback must
// flow through TxnEvent.String too.
func TestTxnEventKindStringFallback(t *testing.T) {
	if got := TxnEventKind(99).String(); got != "TxnEventKind(99)" {
		t.Errorf("out-of-range kind = %q, want TxnEventKind(99)", got)
	}
	if got := TxnEventKind(-3).String(); got != "TxnEventKind(-3)" {
		t.Errorf("negative kind = %q, want TxnEventKind(-3)", got)
	}
	s := TxnEvent{Time: 1, Txn: 2, Attempt: 1, Kind: TxnEventKind(42)}.String()
	if !strings.Contains(s, "TxnEventKind(42)") {
		t.Errorf("event string %q does not surface the fallback kind", s)
	}
	for k := TxnSubmitted; k <= TxnDecided; k++ {
		if strings.HasPrefix(k.String(), "TxnEventKind(") {
			t.Errorf("in-range kind %d missing from the name table", int(k))
		}
	}
}
