package core

import (
	"ddbm/internal/sim"
	"ddbm/internal/stats"
)

// statsCollector accumulates the paper's performance metrics. Counting
// starts only after the warmup boundary; the running average response time
// (used for restart delays) covers the whole run.
type statsCollector struct {
	measuring  bool
	measureAt  sim.Time
	commits    int64
	aborts     int64
	resp       stats.Welford
	respAll    []float64 // every post-warmup response, for percentiles
	respBatch  *stats.BatchMeans
	restarts   stats.Welford
	block      stats.Welford
	active     stats.TimeWeighted
	runningAvg stats.Welford // all commits, incl. warmup (restart delay)
}

// maxRespSamples caps the per-response sample buffer backing the
// percentile metrics: a marathon run stops collecting individual samples
// past this point (the percentiles then describe the first maxRespSamples
// post-warmup commits) instead of holding every response in an
// ever-reallocating slice. At 8 bytes a sample the cap bounds the buffer
// at 8 MiB.
const maxRespSamples = 1 << 20

// newStatsCollector sizes the sample buffer from the expected number of
// post-warmup commits so steady-state runs never reallocate it.
func newStatsCollector(expectedCommits int) *statsCollector {
	hint := expectedCommits
	if hint < 256 {
		hint = 256
	}
	if hint > maxRespSamples {
		hint = maxRespSamples
	}
	return &statsCollector{
		respAll:   make([]float64, 0, hint),
		respBatch: stats.NewBatchMeans(50),
	}
}

// startMeasuring marks the warmup boundary.
func (s *statsCollector) startMeasuring(now sim.Time) {
	s.measuring = true
	s.measureAt = now
	s.active.ResetAt(now)
}

func (s *statsCollector) txnStarted(now sim.Time) {
	s.active.Set(now, s.active.Value()+1)
}

func (s *statsCollector) txnCommitted(now sim.Time, responseMs float64, restarts int) {
	s.active.Set(now, s.active.Value()-1)
	s.runningAvg.Add(responseMs)
	if !s.measuring {
		return
	}
	s.commits++
	s.resp.Add(responseMs)
	if len(s.respAll) < maxRespSamples {
		s.respAll = append(s.respAll, responseMs) //ddbmlint:allow hotpath-alloc sample buffer preallocated to the expected commit count; growth past the estimate is amortized and capped
	}
	s.respBatch.Add(responseMs)
	s.restarts.Add(float64(restarts))
}

func (s *statsCollector) txnAborted() {
	if s.measuring {
		s.aborts++
	}
}

func (s *statsCollector) blocked(d sim.Time) {
	if s.measuring && d > 0 {
		s.block.Add(d)
	}
}

// avgResponse is the restart delay: the running average response time
// observed at the coordinator node, or def before the first commit.
func (s *statsCollector) avgResponse(def float64) float64 {
	if s.runningAvg.Count() == 0 {
		return def
	}
	return s.runningAvg.Mean()
}

// Result reports the outcome of one simulation run.
type Result struct {
	// Config echoes the run's configuration.
	Config Config

	// MeasuredMs is the length of the measurement window (after warmup).
	MeasuredMs float64
	// Commits and Aborts count transaction commits and aborted execution
	// attempts inside the measurement window.
	Commits int64
	Aborts  int64
	// ThroughputTPS is commits per second of simulated time.
	ThroughputTPS float64
	// MeanResponseMs is the mean transaction response time (origination to
	// successful completion, including restarts); RespHalfWidth95 is the
	// batch-means 95% confidence half-width, RespStdDev and MaxResponseMs
	// describe the distribution.
	MeanResponseMs  float64
	RespHalfWidth95 float64
	RespStdDev      float64
	MaxResponseMs   float64
	// RespP50Ms, RespP90Ms and RespP99Ms are response-time percentiles
	// (0 when nothing committed in the measurement window; computed over
	// at most the first maxRespSamples post-warmup commits).
	RespP50Ms float64
	RespP90Ms float64
	RespP99Ms float64
	// AbortRatio is aborts per commit (the paper's abort ratio).
	AbortRatio float64
	// MeanRestarts is the average number of restarts per committed
	// transaction.
	MeanRestarts float64
	// MeanBlockMs is the average duration of one blocking episode in the
	// concurrency control manager (the paper's 2PL blocking-time metric);
	// BlockCount is how many episodes occurred.
	MeanBlockMs float64
	BlockCount  int64
	// ProcCPUUtil / ProcDiskUtil average utilization across processing
	// nodes; HostCPUUtil is the host's CPU utilization.
	ProcCPUUtil  float64
	ProcDiskUtil float64
	HostCPUUtil  float64
	// PerNodeCPUUtil and PerNodeDiskUtil give the per-processing-node
	// detail.
	PerNodeCPUUtil  []float64
	PerNodeDiskUtil []float64
	// MessagesSent counts inter-node messages over the whole run.
	MessagesSent int64
	// LogForces counts modeled forced log writes over the whole run (0
	// unless Config.ModelLogging); AbortPathLogForces is the subset forced
	// while aborting attempts (presumed commit's abort-record forces —
	// zero for centralized 2PC and presumed abort).
	LogForces          int64
	AbortPathLogForces int64
	// AvgActiveTxns is the time-average number of in-flight transactions.
	AvgActiveTxns float64

	// Fault/recovery metrics, all zero unless Config.Faults.Enabled.
	// Crashes counts node and host crashes over the whole run;
	// MessagesLost counts handler messages discarded at down nodes.
	// Availability is the fraction of node-milliseconds the processing
	// nodes were up; GoodputPerSec normalizes throughput by it (commits
	// per second of available machine time). InDoubtTimeMs totals the
	// in-doubt windows (a cohort's vote to its learned outcome) closed
	// inside the measurement window, InDoubtWindows counts them, and
	// BlockedInDoubtMs totals blocking time spent waiting on locks held
	// by in-doubt cohorts of crashed nodes — the 2PC blocking penalty
	// that presumed-abort resolution avoids. RecoveryTimeMs totals
	// repair-to-rejoin time (log replay plus in-doubt resolution) over
	// the whole run.
	Crashes          int64
	MessagesLost     int64
	Availability     float64
	GoodputPerSec    float64
	InDoubtTimeMs    float64
	InDoubtWindows   int64
	BlockedInDoubtMs float64
	RecoveryTimeMs   float64

	// PhaseMeanMs and PhaseP99Ms report the time-breakdown accounting
	// (nil unless Config.Breakdown): per-phase mean and p99 milliseconds
	// per committed transaction, keyed by phase name (see obs.Phase),
	// merged across classes. The phase means sum to MeanResponseMs (the
	// reconciliation invariant); p99 values are deterministic log2-bucket
	// upper bounds. AbortsByCause counts aborted attempts by cause name
	// (see cc.Cause), summing to Aborts; zero-count causes are omitted.
	PhaseMeanMs   map[string]float64
	PhaseP99Ms    map[string]float64
	AbortsByCause map[string]int64

	// AuditedTxns counts the committed transactions checked by the
	// serializability auditor (0 when Config.Audit is off) and
	// AuditViolations lists any anomalies it found, rendered as strings.
	// For the strict locking algorithms and BTO this must be empty; the
	// paper-faithful OPT certification has a known certify/commit window
	// that the auditor can expose (closed by Config.StrictOPT).
	AuditedTxns     int64
	AuditViolations []string
}
