package core

import (
	"testing"

	"ddbm/internal/cc"
)

func TestO2PLEndToEnd(t *testing.T) {
	cfg := testConfig(cc.O2PL)
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.Audit = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits < 50 {
		t.Fatalf("O2PL made no progress: %d commits", res.Commits)
	}
	if res.Aborts == 0 {
		t.Error("O2PL under contention should abort sometimes (deadlocks at prepare)")
	}
	if len(res.AuditViolations) != 0 {
		t.Fatalf("O2PL anomalies: %s", res.AuditViolations[0])
	}
}

func TestO2PLWithReplication(t *testing.T) {
	cfg := replConfig(cc.O2PL, 2)
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.Audit = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits < 50 {
		t.Fatalf("O2PL+replication: %d commits", res.Commits)
	}
	if len(res.AuditViolations) != 0 {
		t.Fatalf("O2PL+replication anomalies: %s", res.AuditViolations[0])
	}
}

func TestO2PLHoldsWriteLocksShorter(t *testing.T) {
	// O2PL's point: write locks exist only between prepare and commit, so
	// under write contention readers block far less than under 2PL with
	// immediate exclusive locks. Compare blocking totals.
	base := testConfig(cc.TwoPL)
	base.PagesPerFile = 40
	base.ThinkTimeMs = 0
	base.WriteProb = 0.5
	r2pl, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Algorithm = cc.O2PL
	ro2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	total2pl := r2pl.MeanBlockMs * float64(r2pl.BlockCount) / float64(r2pl.Commits)
	totalO2 := ro2.MeanBlockMs * float64(ro2.BlockCount) / float64(ro2.Commits)
	if totalO2 >= total2pl {
		t.Errorf("O2PL blocking per commit (%.0f ms) not below 2PL's (%.0f ms)", totalO2, total2pl)
	}
	t.Logf("2PL: %.2f tps, %.0f ms blocked/commit, %.3f aborts; O2PL: %.2f tps, %.0f ms blocked/commit, %.3f aborts",
		r2pl.ThroughputTPS, total2pl, r2pl.AbortRatio, ro2.ThroughputTPS, totalO2, ro2.AbortRatio)
}

func TestO2PLTimeoutModeRuns(t *testing.T) {
	cfg := testConfig(cc.O2PL)
	cfg.DetectionIntervalMs = 0
	cfg.LockWaitTimeoutMs = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("O2PL timeout mode wedged")
	}
}

func TestO2PLValidation(t *testing.T) {
	cfg := testConfig(cc.O2PL)
	cfg.DetectionIntervalMs = 0
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("O2PL without detection interval or timeout accepted")
	}
}

func TestO2PLKindWiring(t *testing.T) {
	m, err := NewMachine(testConfig(cc.O2PL))
	if err != nil {
		t.Fatal(err)
	}
	if m.Manager(0).Kind() != cc.O2PL {
		t.Fatalf("manager kind %v, want O2PL", m.Manager(0).Kind())
	}
}
