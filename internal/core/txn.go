package core

import (
	"fmt"

	"ddbm/internal/audit"
	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
	"ddbm/internal/workload"
)

// Coordinator mailbox messages. Every message a cohort node sends to the
// coordinator travels through the network with full CPU costs.
type (
	msgCohortDone struct{ idx int }
	msgSelfAbort  struct {
		idx    int
		reason string
	}
	msgAbortNotice struct{ reason string }
	msgVote        struct {
		idx int
		yes bool
	}
	msgAbortAck struct{ idx int }
)

// cohortRun is the coordinator's handle on one cohort of one attempt.
type cohortRun struct {
	idx  int
	plan *workload.CohortPlan
	meta *cc.CohortMeta
	// reads records audit observations (only when auditing is enabled).
	reads []audit.ReadObs
}

// serializationStamp is the stamp the algorithm promises equivalence to:
// the attempt timestamp for BTO, the certification timestamp for OPT, and
// the commit-decision order for the strict locking algorithms (whose
// prepare phase may block under deferred write locks, reordering decisions
// relative to CommitTS).
func (m *Machine) serializationStamp(meta *cc.TxnMeta) int64 {
	switch m.cfg.Algorithm {
	case cc.BTO:
		return meta.AttemptTS
	case cc.OPT:
		return meta.CommitTS
	default:
		return meta.DecisionTS
	}
}

// terminal models one terminal: think, submit a transaction, wait for it to
// complete successfully, repeat (paper §3.2).
func (m *Machine) terminal(p *sim.Proc, termID int) {
	rel := termID % m.cfg.NumRelations
	class := m.gen.ClassOfTerminal(termID, m.cfg.NumTerminals)
	rng := m.sim.Rand()
	for {
		p.Delay(sim.Exponential(rng, m.cfg.ThinkTimeMs))
		plan := m.gen.NewClassPlan(rng, rel, class)
		m.runTransaction(p, &plan)
	}
}

// runTransaction drives a transaction to successful commit, rerunning after
// each abort with a delay of one average response time (paper §3.3,
// [Agra87a]). The terminal process acts as the coordinator, which runs at
// the host node.
func (m *Machine) runTransaction(p *sim.Proc, plan *workload.TxnPlan) {
	id := m.nextTxnID()
	origTS := m.nextTS() // original startup timestamp, kept across restarts
	origin := m.sim.Now()
	m.stats.txnStarted(origin)
	m.emit(TxnEvent{Txn: id, Attempt: 1, Kind: TxnSubmitted})
	restarts := 0
	for {
		m.emit(TxnEvent{Txn: id, Attempt: restarts + 1, Kind: TxnAttemptStarted})
		committed, reason := m.attempt(p, id, origTS, plan)
		if committed {
			break
		}
		m.emit(TxnEvent{Txn: id, Attempt: restarts + 1, Kind: TxnAttemptAborted, Detail: reason})
		m.stats.txnAborted()
		restarts++
		p.Delay(m.stats.avgResponse(m.cfg.InitialRestartDelayMs))
	}
	m.emit(TxnEvent{Txn: id, Attempt: restarts + 1, Kind: TxnCommitted})
	m.stats.txnCommitted(m.sim.Now(), m.sim.Now()-origin, restarts)
}

// attempt executes one try of the transaction: load cohorts (sequentially
// or in parallel), wait for their work phases, then run centralized
// two-phase commit. It reports whether the attempt committed and, if not,
// why it aborted.
func (m *Machine) attempt(p *sim.Proc, id, origTS int64, plan *workload.TxnPlan) (bool, string) {
	cfg := &m.cfg
	meta := &cc.TxnMeta{ID: id, TS: origTS, AttemptTS: m.nextTS()}
	mail := m.sim.NewMailbox()
	meta.OnAbort = func(fromNode int, reason string) {
		m.net.Send(fromNode, m.hostID, func() { mail.Send(msgAbortNotice{reason: reason}) })
	}

	// Coordinator process startup at the host.
	m.cpus[m.hostID].Use(p, cfg.InstPerStartup)

	cohorts := make([]*cohortRun, len(plan.Cohorts))
	for i := range plan.Cohorts {
		cohorts[i] = &cohortRun{
			idx:  i,
			plan: &plan.Cohorts[i],
			meta: &cc.CohortMeta{
				Txn:       meta,
				Node:      plan.Cohorts[i].Node,
				OnBlocked: m.stats.blocked,
			},
		}
	}

	loaded := 0
	if cfg.ExecPattern == Sequential || plan.Sequential {
		for _, c := range cohorts {
			m.loadCohort(c, mail)
			loaded++
			if !m.awaitDone(p, mail, 1) {
				m.abortProtocol(p, meta, cohorts[:loaded], mail)
				return false, meta.AbortReason
			}
		}
	} else {
		for _, c := range cohorts {
			m.loadCohort(c, mail)
			loaded++
		}
		if !m.awaitDone(p, mail, loaded) {
			m.abortProtocol(p, meta, cohorts[:loaded], mail)
			return false, meta.AbortReason
		}
	}
	if meta.AbortRequested {
		m.abortProtocol(p, meta, cohorts, mail)
		return false, meta.AbortReason
	}

	// Two-phase commit, phase one: the commit timestamp travels to every
	// cohort in the "prepare to commit" message (OPT certifies against it).
	meta.State = cc.Preparing
	meta.CommitTS = m.nextTS()
	for _, c := range cohorts {
		c := c
		var deferred []db.PageID
		for i := range c.plan.Accesses {
			a := &c.plan.Accesses[i]
			// O2PL defers every write lock to the prepare phase; the
			// [Care89] 2PL variant defers only the remote-copy ones.
			if (cfg.Algorithm == cc.O2PL && a.Write) ||
				(cfg.DeferRemoteWriteLocks && a.Remote) {
				deferred = append(deferred, a.Page)
			}
		}
		m.net.Send(m.hostID, c.meta.Node, func() {
			mgr := m.mgrs[c.meta.Node]
			reply := func(yes bool) {
				if yes && cfg.ModelLogging {
					// Force the cohort's prepare record before voting yes
					// (footnote 5: only log pages are forced pre-commit).
					m.disks[c.meta.Node].WriteAsync(func() {
						m.net.Send(c.meta.Node, m.hostID, func() { mail.Send(msgVote{idx: c.idx, yes: true}) })
					})
					return
				}
				m.net.Send(c.meta.Node, m.hostID, func() { mail.Send(msgVote{idx: c.idx, yes: yes}) })
			}
			if len(deferred) > 0 {
				// [Care89]: remote-copy write locks are requested only now,
				// in the first phase of the commit protocol; the node may
				// block before it can vote.
				mgr.(cc.DeferredWriter).PrepareDeferred(c.meta, deferred, func(ok bool) {
					reply(ok && mgr.Prepare(c.meta))
				})
				return
			}
			reply(mgr.Prepare(c.meta))
		})
	}
	for votes := 0; votes < len(cohorts); {
		switch v := mail.Recv(p).(type) {
		case msgVote:
			if !v.yes {
				m.abortProtocol(p, meta, cohorts, mail)
				return false, meta.AbortReason
			}
			votes++
		case msgAbortNotice, msgSelfAbort:
			m.abortProtocol(p, meta, cohorts, mail)
			return false, meta.AbortReason
		}
	}
	if meta.AbortRequested {
		// A wound or deadlock abort raced in behind the last vote: the
		// coordinator learns of it before deciding, so the abort wins.
		m.abortProtocol(p, meta, cohorts, mail)
		return false, meta.AbortReason
	}

	if cfg.ModelLogging {
		// Force the commit record at the coordinator's node before the
		// decision becomes durable (and before the response completes).
		m.hostDisks.Write(p)
		if meta.AbortRequested {
			// An abort raced in while the force was on disk.
			m.abortProtocol(p, meta, cohorts, mail)
			return false, meta.AbortReason
		}
	}

	// Commit decision: from here the transaction can no longer abort and
	// the response is complete. Phase two runs asynchronously: COMMIT
	// messages release locks and install updates at each node, deferred
	// disk writes are initiated (InstPerUpdate CPU each), and cohorts
	// acknowledge (CPU load only).
	meta.State = cc.Committing
	meta.DecisionTS = m.nextTS()
	if m.rec != nil {
		stamp := m.serializationStamp(meta)
		rec := audit.TxnRecord{ID: meta.ID, Stamp: stamp}
		for _, c := range cohorts {
			rec.Reads = append(rec.Reads, c.reads...)
			for i := range c.plan.Accesses {
				if c.plan.Accesses[i].Write {
					rec.Writes = append(rec.Writes, c.plan.Accesses[i].Page)
				}
			}
		}
		m.rec.Commit(rec)
	}
	for _, c := range cohorts {
		c := c
		writes := c.plan.NumWrites()
		m.net.Send(m.hostID, c.meta.Node, func() {
			node := c.meta.Node
			m.mgrs[node].Commit(c.meta)
			if m.rec != nil {
				stamp := m.serializationStamp(c.meta.Txn)
				for i := range c.plan.Accesses {
					if c.plan.Accesses[i].Write {
						m.rec.Install(c.plan.Accesses[i].Page, node, stamp)
					}
				}
			}
			for w := 0; w < writes; w++ {
				m.cpus[node].UseAsync(cfg.InstPerUpdate, func() {
					m.disks[node].WriteAsync(nil)
				})
			}
			m.net.Send(node, m.hostID, func() {})
		})
	}
	return true, ""
}

// awaitDone consumes coordinator mail until n cohorts report work-phase
// completion; it returns false as soon as any abort signal arrives.
func (m *Machine) awaitDone(p *sim.Proc, mail *sim.Mailbox, n int) bool {
	for done := 0; done < n; {
		switch mail.Recv(p).(type) {
		case msgCohortDone:
			done++
		case msgAbortNotice, msgSelfAbort:
			return false
		}
	}
	return true
}

// abortProtocol tells every loaded cohort node to abort and waits for all
// acknowledgements ("once the transaction manager has finished aborting the
// transaction", §3.3). Stale messages from the doomed attempt are drained
// and ignored.
func (m *Machine) abortProtocol(p *sim.Proc, meta *cc.TxnMeta, cohorts []*cohortRun, mail *sim.Mailbox) {
	meta.AbortRequested = true
	if meta.AbortReason == "" {
		meta.AbortReason = "aborted by coordinator"
	}
	for _, c := range cohorts {
		c := c
		m.net.Send(m.hostID, c.meta.Node, func() {
			m.mgrs[c.meta.Node].Abort(c.meta)
			m.net.Send(c.meta.Node, m.hostID, func() { mail.Send(msgAbortAck{idx: c.idx}) })
		})
	}
	for acks := 0; acks < len(cohorts); {
		if _, ok := mail.Recv(p).(msgAbortAck); ok {
			acks++
		}
	}
	meta.State = cc.Finished
}

// loadCohort sends the "load cohort" message; at the destination the
// process-startup CPU cost is paid and the cohort process begins.
func (m *Machine) loadCohort(c *cohortRun, mail *sim.Mailbox) {
	node := c.meta.Node
	m.net.Send(m.hostID, node, func() {
		m.cpus[node].UseAsync(m.cfg.InstPerStartup, func() {
			m.sim.Spawn(fmt.Sprintf("cohort-%d@%d", c.meta.Txn.ID, node), func(cp *sim.Proc) {
				c.meta.Proc = cp
				m.runCohort(cp, c, mail)
			})
		})
	})
}

// runCohort executes a cohort's work phase: for each access, a concurrency
// control request, a synchronous disk read, and page-processing CPU; for
// updates, a second (write) concurrency control request — the update itself
// is buffered until commit. The cohort stops silently if its transaction is
// already being aborted (the abort protocol handles cleanup), and reports
// conflicts it loses to the coordinator.
func (m *Machine) runCohort(cp *sim.Proc, c *cohortRun, mail *sim.Mailbox) {
	cfg := &m.cfg
	node := c.meta.Node
	mgr := m.mgrs[node]
	cpu := m.cpus[node]
	disks := m.disks[node]
	deferAllWrites := cfg.Algorithm == cc.O2PL
	for i := range c.plan.Accesses {
		a := &c.plan.Accesses[i]
		if c.meta.Txn.AbortRequested {
			return
		}
		if a.Remote {
			// Write to a non-primary copy: a write permission request only
			// (read-one/write-all); the copy is installed at commit. In
			// deferred mode the lock request moves to the prepare phase.
			if cfg.DeferRemoteWriteLocks || deferAllWrites {
				continue
			}
			cpu.Use(cp, cfg.InstPerCCReq)
			if mgr.Access(c.meta, a.Page, true) == cc.Aborted {
				m.reportSelfAbort(c, mail)
				return
			}
			continue
		}
		// For pages the transaction will update, the locking algorithms can
		// claim write permission up front (the update set is known) or
		// read-then-convert (§2.2 literally); timestamp algorithms always
		// see the read first so their read rules apply.
		firstAccessIsWrite := a.Write && !cfg.UpgradeWriteLocks && locksUpFront(cfg.Algorithm)
		cpu.Use(cp, cfg.InstPerCCReq)
		if mgr.Access(c.meta, a.Page, firstAccessIsWrite) == cc.Aborted {
			m.reportSelfAbort(c, mail)
			return
		}
		if m.rec != nil {
			c.reads = append(c.reads, audit.ReadObs{Page: a.Page, Saw: m.rec.ObserveRead(a.Page, node)})
		}
		disks.Read(cp)
		cpu.Use(cp, a.Inst)
		if a.Write {
			if c.meta.Txn.AbortRequested {
				return
			}
			if !firstAccessIsWrite && !deferAllWrites {
				cpu.Use(cp, cfg.InstPerCCReq)
				if mgr.Access(c.meta, a.Page, true) == cc.Aborted {
					m.reportSelfAbort(c, mail)
					return
				}
			}
			// Processing the page "when writing it" (Table 2); the update
			// itself stays buffered until commit.
			cpu.Use(cp, a.WriteInst)
		}
	}
	m.net.Send(node, m.hostID, func() { mail.Send(msgCohortDone{idx: c.idx}) })
}

// locksUpFront reports whether the algorithm can usefully claim write
// permission at first access: only the locking algorithms distinguish the
// request modes before commit. BTO must see the read first (its read rule
// orders the read against pending writes), and OPT/NO_DC grant everything
// anyway, so they always use the read-then-write sequence.
func locksUpFront(k cc.Kind) bool { return k == cc.TwoPL || k == cc.WoundWait }

// reportSelfAbort tells the coordinator this cohort's access was rejected
// by concurrency control. If the attempt is already being aborted the
// coordinator knows, so nothing is sent.
func (m *Machine) reportSelfAbort(c *cohortRun, mail *sim.Mailbox) {
	if c.meta.Txn.AbortRequested {
		return
	}
	node := c.meta.Node
	idx := c.idx
	m.net.Send(node, m.hostID, func() { mail.Send(msgSelfAbort{idx: idx, reason: "access rejected"}) })
}
