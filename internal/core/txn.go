package core

import (
	"ddbm/internal/audit"
	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/obs"
	"ddbm/internal/sim"
	"ddbm/internal/workload"
)

// Coordinator mailbox messages for the work phase. Every message a cohort
// node sends to the coordinator travels through the network with full CPU
// costs. The messages are embedded in the free-listed attempt state and
// travel by pointer, so sending one allocates nothing. The commit
// protocol's own messages (votes, acks) are defined in internal/commit;
// the abort-demanding messages here implement commit.AbortSignal (see
// protocol.go).
type (
	msgCohortDone struct{ idx int }
	msgSelfAbort  struct {
		idx    int
		reason string
	}
	msgAbortNotice struct{ reason string }
)

// Message tags for the typed network envelopes of the work phase. Tag
// namespaces are per-handler: cohortRun handles the cohort tags,
// attemptState handles the notice tags.
const (
	tagCohortLoad      = iota // host → node: pay startup CPU, spawn the cohort process
	tagCohortDone             // node → host: deliver &c.doneMsg to the coordinator
	tagCohortSelfAbort        // node → host: deliver &c.selfAbortMsg to the coordinator
	tagAbortNotice            // node → host: deliver &a.abortNotice to the coordinator
	tagCrashNotice            // host → host: deliver &a.crashNotice (failure detection)
	tagCohortInquiry          // node → host: recovery asks the coordinator for the outcome
	tagCohortDecision         // host → node: the coordinator's answer to an inquiry
)

// Cohort life-cycle phases tracked by the fault layer (cohortRun.phase;
// maintained only while fault injection is on). A crash sweep uses the
// phase to decide what a cohort left behind: a pending startup job
// (loaded), a live process to kill (running), released resources
// (exited), or — when in doubt — locks that must survive until recovery
// resolves them (resident).
const (
	phaseIdle uint8 = iota
	phaseLoaded
	phaseRunning
	phaseExited
	phaseResident
	phaseGone
)

// attemptState is the complete per-attempt transaction state: the shared
// metadata, the coordinator's mailbox, the protocol-layer Txn and Env, and
// the cohort runs. Attempt states are free-listed on the Machine and
// recycled by quiescence: every in-flight reference to the attempt — a
// message envelope, a log-force continuation, a running cohort process —
// holds one count, and the state returns to the pool only when the count
// drains to zero, so stragglers (late votes after an early abort return,
// phase-two deliveries after Commit returns, cohorts still winding down
// after an abort) never touch recycled memory.
type attemptState struct {
	m    *Machine
	meta cc.TxnMeta
	mail *sim.Mailbox
	env  protocolEnv
	txn  commit.Txn
	runs []*cohortRun
	// plan is the attempt's share of the transaction plan; the generator
	// reference is released when the attempt recycles, so the plan's
	// buffers outlive every straggler that reads them (InstallCommit).
	plan *workload.TxnPlan
	refs int
	// bd is the owning terminal's breakdown ledger (nil when accounting
	// is off): the coordinator-timeline account this attempt spends into.
	bd *obs.Ledger

	abortNotice msgAbortNotice
	onAbortFn   func(fromNode int, reason string) // a.onAbort, bound once

	// crashNotice is the failure detector's abort demand (distinct from
	// abortNotice so the two cannot alias when a manager-demanded abort
	// and a crash detection race); liveIdx is the attempt's slot in the
	// fault layer's live-attempt registry. Maintained only when faults
	// are on.
	crashNotice msgAbortNotice
	liveIdx     int
}

// cohortRun is the coordinator's handle on one cohort of one attempt: the
// core-side work-phase state plus the embedded protocol-layer Cohort. Its
// network messages and process entry points are pre-bound, so loading and
// running a cohort allocates nothing in steady state.
type cohortRun struct {
	idx     int
	attempt int // attempt number, tagging this cohort's trace spans
	plan    *workload.CohortPlan
	meta    cc.CohortMeta
	proto   commit.Cohort
	// reads records audit observations (only when auditing is enabled).
	reads []audit.ReadObs

	a *attemptState
	m *Machine

	doneMsg      msgCohortDone
	selfAbortMsg msgSelfAbort

	spawnFn func()            // c.spawn, bound once
	runFn   func(p *sim.Proc) // c.run, bound once

	// Fault-layer state (zero/idle unless fault injection is on): the
	// life-cycle phase and the cohort's slot in its node's crash
	// registry; inDoubtAt stamps the open in-doubt window; recWait parks
	// the recovery process across a 2PC inquiry round-trip and inqCommit
	// carries the answer back.
	phase     uint8
	regIdx    int
	inDoubtAt sim.Time
	recWait   *sim.Proc
	inqCommit bool

	// bd points at bdStore while breakdown accounting is on (nil
	// otherwise): the cohort's mini-ledger, tiling load-send to
	// done-delivery on the cohort's own timeline. The coordinator folds
	// the critical cohort's account into the attempt ledger. diskSvc is
	// the ReadMeasured scratch slot for the service/queue split.
	bd      *obs.Ledger
	bdStore obs.Ledger
	diskSvc float64
}

// acquireAttempt takes an attempt state from the free list (or grows the
// pool) and resets it for one attempt: fresh metadata with a new attempt
// timestamp, an empty mailbox and cohort list, and one reference held by
// the coordinator.
//
//ddbmlint:hotpath per-attempt state acquisition pinned by TestTxnPathAllocFree
func (m *Machine) acquireAttempt(id, origTS int64, attemptNo int, plan *workload.TxnPlan, ld *obs.Ledger) *attemptState {
	var a *attemptState
	if k := len(m.attemptFree); k > 0 {
		a = m.attemptFree[k-1]
		m.attemptFree[k-1] = nil
		m.attemptFree = m.attemptFree[:k-1]
	} else {
		a = &attemptState{m: m} //ddbmlint:allow hotpath-alloc pool growth: one state per high-water concurrent attempt
		a.mail = m.sim.NewMailbox()
		a.onAbortFn = a.onAbort
		a.env.m = m
		a.env.a = a
	}
	a.meta = cc.TxnMeta{ID: id, TS: origTS, AttemptTS: m.nextTS(), OnAbort: a.onAbortFn}
	a.plan = plan
	a.bd = ld
	m.gen.Retain(plan)
	a.refs = 1
	if m.ft != nil {
		a.crashNotice.reason = "node crash"
		m.ft.attemptLive(a)
	}
	a.env.txn, a.env.attempt, a.env.phaseAt = id, attemptNo, 0
	a.env.prepared = false
	a.env.runs = nil
	a.txn.Reset(&a.meta, a.mail)
	a.runs = a.runs[:0]
	return a
}

// retain adds one in-flight reference to the attempt.
//
//ddbmlint:hotpath reference count on every attempt message
func (a *attemptState) retain() { a.refs++ }

// release drops one reference; at zero the attempt has quiesced — no
// envelope, continuation or process can reach it — so its mailbox is
// cleared, its plan reference returned to the generator, and the state
// pushed back on the machine's free list.
//
//ddbmlint:hotpath reference count on every attempt message
func (a *attemptState) release() {
	a.refs--
	if a.refs > 0 {
		return
	}
	if a.refs < 0 {
		panic("core: attempt reference count underflow")
	}
	a.mail.Reset()
	a.m.gen.Release(a.plan)
	a.plan = nil
	if a.m.ft != nil {
		a.m.ft.attemptGone(a)
	}
	a.m.attemptFree = append(a.m.attemptFree, a) //ddbmlint:allow hotpath-alloc free-list push; capacity reaches the concurrent-attempt high-water mark
}

// onAbort is the pre-bound cc.TxnMeta.OnAbort hook: a manager at fromNode
// demands the attempt abort, and the notice travels to the coordinator
// with full message costs. RequestAbort fires it at most once per attempt,
// so the embedded notice cannot alias itself.
//
//ddbmlint:hotpath wound/deadlock abort notification
func (a *attemptState) onAbort(fromNode int, reason string) {
	a.abortNotice.reason = reason
	a.retain()
	a.m.net.Send(fromNode, a.m.hostID, a, tagAbortNotice)
}

// HandleMsg delivers the attempt's abort or crash notice into the
// coordinator's mailbox.
//
//ddbmlint:hotpath abort-notice delivery
func (a *attemptState) HandleMsg(tag int) {
	if tag == tagCrashNotice {
		a.mail.Send(&a.crashNotice)
	} else {
		a.mail.Send(&a.abortNotice)
	}
	a.release()
}

// MsgDropped releases the reference an attempt-level notice held when the
// fault layer discards it (its sender node crashed mid-flight); the
// coordinator learns of the crash from failure detection instead.
func (a *attemptState) MsgDropped(int) { a.release() }

// sendCrashNotice wakes a coordinator whose attempt can no longer be
// aborted through RequestAbort (the manager-side abort was already spent
// or refused) but which may be parked waiting on a dead node: the notice
// is a host-local self-send, exempt from fault handling.
func (a *attemptState) sendCrashNotice() {
	a.retain()
	a.m.net.Send(a.m.hostID, a.m.hostID, a, tagCrashNotice)
}

// addCohort appends one cohort run to the attempt, reusing the pooled
// cohortRun (and its embedded protocol Cohort) at that position.
//
//ddbmlint:hotpath per-attempt cohort setup pinned by TestTxnPathAllocFree
func (a *attemptState) addCohort(cp *workload.CohortPlan, attemptNo int) *cohortRun {
	n := len(a.runs)
	if n < cap(a.runs) {
		a.runs = a.runs[:n+1]
		if a.runs[n] == nil {
			a.runs[n] = newCohortRun(a)
		}
	} else {
		a.runs = append(a.runs, newCohortRun(a)) //ddbmlint:allow hotpath-alloc pool growth: one run per high-water cohort slot
	}
	c := a.runs[n]
	c.idx, c.attempt, c.plan = n, attemptNo, cp
	c.doneMsg = msgCohortDone{idx: n}
	c.selfAbortMsg = msgSelfAbort{idx: n, reason: "access rejected"}
	c.reads = c.reads[:0]
	c.bd = nil
	if a.bd != nil {
		c.bd = &c.bdStore
	}
	c.phase, c.regIdx = phaseIdle, 0
	c.inDoubtAt, c.recWait, c.inqCommit = 0, nil, false
	c.meta = cc.CohortMeta{Txn: &a.meta, Node: cp.Node, OnBlocked: a.m.blockedFn}
	if tr := a.m.tracer; tr != nil {
		// Record each blocking episode as a cc-wait span before the stats
		// tally. The closure exists only on the traced path, so the
		// disabled path keeps the allocation-free pre-bound method value
		// above.
		m, node, id, attempt := a.m, cp.Node, a.meta.ID, attemptNo
		c.meta.OnBlocked = func(co *cc.CohortMeta, d sim.Time) { //ddbmlint:allow hotpath-alloc traced path only; the untraced path uses the pre-bound blockedFn
			if d > 0 {
				tr.Complete(obs.KindCCWait, "cc-wait", node, id, attempt, m.sim.Now()-d)
			}
			m.onBlocked(co, d)
		}
	}
	c.proto.Meta = &c.meta
	a.txn.Attach(&c.proto)
	c.proto.ReadOnly = cp.NumWrites() == 0
	a.m.appendDeferred(&c.proto.Deferred, cp)
	return c
}

// newCohortRun makes a pooled cohort run with its entry points bound.
func newCohortRun(a *attemptState) *cohortRun {
	c := &cohortRun{a: a, m: a.m} //ddbmlint:allow hotpath-alloc pool growth: one run per high-water cohort slot
	c.spawnFn = c.spawn
	c.runFn = c.run
	return c
}

// serializationStamp is the stamp the algorithm promises equivalence to:
// the attempt timestamp for BTO, the certification timestamp for OPT, and
// the commit-decision order for the strict locking algorithms (whose
// prepare phase may block under deferred write locks, reordering decisions
// relative to CommitTS).
func (m *Machine) serializationStamp(meta *cc.TxnMeta) int64 {
	switch m.cfg.Algorithm {
	case cc.BTO:
		return meta.AttemptTS
	case cc.OPT:
		return meta.CommitTS
	default:
		return meta.DecisionTS
	}
}

// terminal models one terminal: think, submit a transaction, wait for it to
// complete successfully, repeat (paper §3.2). The transaction plan is
// acquired from the generator's free list and released when the
// transaction commits (the attempts' own references keep it alive past
// any stragglers).
func (m *Machine) terminal(p *sim.Proc, termID int) {
	rel := termID % m.cfg.NumRelations
	class := m.gen.ClassOfTerminal(termID, m.cfg.NumTerminals)
	ld := m.bd.ledger(termID)      // nil when breakdown accounting is off
	classIdx := m.bd.class(termID) // histogram row for this terminal
	rng := m.sim.Rand()
	for {
		p.Delay(sim.Exponential(rng, m.cfg.ThinkTimeMs))
		plan := m.gen.AcquireClassPlan(rng, rel, class)
		m.runTransaction(p, plan, ld, classIdx)
		m.gen.Release(plan)
	}
}

// runTransaction drives a transaction to successful commit, rerunning after
// each abort with a delay of one average response time (paper §3.3,
// [Agra87a]). The terminal process acts as the coordinator, which runs at
// the host node.
//
//ddbmlint:hotpath transaction driver pinned by TestTxnPathAllocFree
func (m *Machine) runTransaction(p *sim.Proc, plan *workload.TxnPlan, ld *obs.Ledger, class int) {
	id := m.nextTxnID()
	origTS := m.nextTS() // original startup timestamp, kept across restarts
	origin := m.sim.Now()
	ld.StartAt(origin)
	m.stats.txnStarted(origin)
	m.lifecycle(TxnSubmitted, id, 1, "")
	restarts := 0
	for {
		if m.ft != nil {
			m.ft.holdForHost(p)
		}
		attemptNo := restarts + 1
		m.lifecycle(TxnAttemptStarted, id, attemptNo, "")
		// The attempt span is ended explicitly, never deferred: terminals
		// killed at simulation shutdown must not record a half-finished
		// attempt (see obs.Span.End).
		sp := m.tracer.Begin(obs.KindTxn, "attempt", m.hostID, id, attemptNo)
		committed, reason := m.attempt(p, id, origTS, attemptNo, plan, ld)
		sp.End()
		if committed {
			break
		}
		m.lifecycle(TxnAttemptAborted, id, attemptNo, reason)
		m.stats.txnAborted()
		restarts++
		p.Delay(m.stats.avgResponse(m.cfg.InitialRestartDelayMs))
		ld.Spend(m.sim.Now(), obs.PhaseRestart)
	}
	m.lifecycle(TxnCommitted, id, restarts+1, "")
	resp := m.sim.Now() - origin
	m.stats.txnCommitted(m.sim.Now(), resp, restarts)
	m.bd.noteCommit(class, ld, m.stats.measuring)
	if m.bdCheck != nil && ld != nil {
		m.bdCheck(ld, resp) //ddbmlint:allow hotpath-alloc reconciliation test seam; nil outside tests
	}
}

// attempt executes one try of the transaction: load cohorts (sequentially
// or in parallel), wait for their work phases, then hand the attempt to
// the configured commit protocol (centralized 2PC by default). It reports
// whether the attempt committed and, if not, why it aborted. The abort
// reason is captured before the coordinator's reference is released: an
// attempt with no stragglers recycles inside release.
//
//ddbmlint:hotpath attempt execution pinned by TestTxnPathAllocFree
func (m *Machine) attempt(p *sim.Proc, id, origTS int64, attemptNo int, plan *workload.TxnPlan, ld *obs.Ledger) (bool, string) {
	cfg := &m.cfg
	a := m.acquireAttempt(id, origTS, attemptNo, plan, ld)

	// Coordinator process startup at the host.
	m.cpus[m.hostID].Use(p, cfg.InstPerStartup)
	a.bd.SpendSplit(m.sim.Now(), cfg.InstPerStartup/m.cpus[m.hostID].Rate(),
		obs.PhaseCPUService, obs.PhaseCPUQueue)

	for i := range plan.Cohorts {
		a.addCohort(&plan.Cohorts[i], attemptNo)
	}
	a.env.runs = a.runs
	t, env := &a.txn, &a.env

	loaded := 0
	if cfg.ExecPattern == Sequential || plan.Sequential {
		for _, c := range a.runs {
			if m.ft != nil && m.ft.inj.Down(c.meta.Node) {
				// Fail fast: a cohort's node is known dead, so the attempt
				// aborts instead of loading into the void. Re-checked per
				// load — a node can crash while an earlier cohort runs.
				m.ft.markCrashAbort(&a.meta)
				m.abortAttempt(p, env, t, loaded)
				reason := a.meta.AbortReason
				a.release()
				return false, reason
			}
			m.loadCohort(c)
			loaded++
			ok, crit := m.awaitDone(p, a.mail, 1)
			a.foldWork(crit)
			if !ok {
				m.abortAttempt(p, env, t, loaded)
				reason := a.meta.AbortReason
				a.release()
				return false, reason
			}
		}
	} else {
		// One down check covers the whole parallel fan-out: no simulated
		// time passes between the loads, so a node up here is up for every
		// send below.
		if m.ft != nil && m.ft.anyPlanNodeDown(a) {
			m.ft.markCrashAbort(&a.meta)
			m.abortAttempt(p, env, t, 0)
			reason := a.meta.AbortReason
			a.release()
			return false, reason
		}
		for _, c := range a.runs {
			m.loadCohort(c)
			loaded++
		}
		ok, crit := m.awaitDone(p, a.mail, loaded)
		a.foldWork(crit)
		if !ok {
			m.abortAttempt(p, env, t, loaded)
			reason := a.meta.AbortReason
			a.release()
			return false, reason
		}
	}
	if a.meta.AbortRequested {
		m.abortAttempt(p, env, t, len(a.runs))
		reason := a.meta.AbortReason
		a.release()
		return false, reason
	}

	env.phaseAt = m.sim.Now()
	if !m.proto.Commit(p, env, t) { //ddbmlint:allow hotpath-alloc Protocol dispatch; the twoPC implementation carries its own hotpath pins
		m.abortAttempt(p, env, t, len(a.runs))
		reason := a.meta.AbortReason
		a.release()
		return false, reason
	}
	// Commit resolution: from the logged decision (Decided advanced the
	// ledger cursor and phaseAt) to the protocol's return — zero for the
	// asynchronous phase-two fan-out. Nil-safe no-ops when disabled.
	a.bd.Spend(m.sim.Now(), obs.PhaseResolve)
	m.tracer.Complete(obs.KindCommitPhase, "resolve", m.hostID, id, attemptNo, env.phaseAt)
	a.release()
	return true, ""
}

// awaitDone consumes coordinator mail until n cohorts report work-phase
// completion; ok turns false as soon as any abort signal arrives. crit
// identifies the cohort whose message ended the wait — the last done
// report (the critical cohort: the mailbox is FIFO in delivery order, so
// the n-th consumed done is the latest delivered) or the self-aborting
// cohort — or -1 when an attempt-level abort notice ended it.
//
//ddbmlint:hotpath coordinator mail loop pinned by TestTxnPathAllocFree
func (m *Machine) awaitDone(p *sim.Proc, mail *sim.Mailbox, n int) (ok bool, crit int) {
	crit = -1
	for done := 0; done < n; {
		switch msg := mail.Recv(p).(type) {
		case *msgCohortDone:
			done++
			crit = msg.idx
		case *msgSelfAbort:
			return false, msg.idx
		case *msgAbortNotice:
			return false, -1
		}
	}
	return true, crit
}

// foldWork merges the reporting cohort's breakdown mini-ledger into the
// attempt ledger at the coordinator, attributing the wait since the
// cohorts were loaded. The critical cohort's account tiles the interval
// exactly (its last entry is the done-report transit, ending at this
// delivery); a fold with no reporting cohort (crit < 0, an abort notice)
// sweeps the interval into the residue phase.
//
//ddbmlint:hotpath work-phase breakdown fold pinned by TestTxnPathAllocFree
func (a *attemptState) foldWork(crit int) {
	if a.bd == nil {
		return
	}
	var from *obs.Ledger
	if crit >= 0 {
		from = a.runs[crit].bd
	}
	a.bd.Fold(a.m.sim.Now(), from, obs.PhaseResidue)
}

// loadCohort sends the "load cohort" message; at the destination the
// process-startup CPU cost is paid and the cohort process begins. The
// reference taken here is held until the cohort process exits, so an
// attempt never recycles under a cohort that is still winding down.
//
//ddbmlint:hotpath cohort load pinned by TestTxnPathAllocFree
func (m *Machine) loadCohort(c *cohortRun) {
	c.a.retain()
	c.bd.StartAt(m.sim.Now())
	m.net.Send(m.hostID, c.meta.Node, c, tagCohortLoad)
}

// HandleMsg dispatches one delivered work-phase envelope for this cohort:
// the load step at its node, or its completion/self-abort report into the
// coordinator's mailbox at the host. Host-bound deliveries release the
// reference their envelope held; the load step passes its reference to the
// cohort process.
//
//ddbmlint:hotpath work-phase message dispatch pinned by TestTxnPathAllocFree
func (c *cohortRun) HandleMsg(tag int) {
	switch tag {
	case tagCohortLoad:
		c.bd.Spend(c.m.sim.Now(), obs.PhaseNetTransit)
		if c.m.ft != nil {
			c.m.ft.register(c)
		}
		c.m.cpus[c.meta.Node].UseAsync(c.m.cfg.InstPerStartup, c.spawnFn)
	case tagCohortDone:
		c.bd.Spend(c.m.sim.Now(), obs.PhaseNetTransit)
		c.a.mail.Send(&c.doneMsg)
		c.a.release()
	case tagCohortSelfAbort:
		c.bd.Spend(c.m.sim.Now(), obs.PhaseNetTransit)
		c.a.mail.Send(&c.selfAbortMsg)
		c.a.release()
	case tagCohortInquiry:
		// At the host: a restarted node asks for this in-doubt cohort's
		// outcome; answer from the decision registry (no record ⇒ abort).
		// Answering abort binds the coordinator: no record means the
		// transaction has not reached its commit point (the decision and
		// its registry record land in one synchronous stretch), so a
		// still-undecided coordinator is aborted here rather than left
		// able to commit a transaction whose cohort just rolled back.
		committed := c.m.ft.reg.Lookup(c.meta.Txn.AttemptTS)
		if !committed {
			c.meta.Txn.RequestAbort(c.m.hostID, "node crash", cc.CauseNodeCrash)
		}
		c.inqCommit = committed
		c.a.retain()
		c.m.net.Send(c.m.hostID, c.meta.Node, c, tagCohortDecision)
		c.a.release()
	case tagCohortDecision:
		// Back at the node: wake the parked recovery process.
		p := c.recWait
		c.recWait = nil
		p.Resume()
		c.a.release()
	}
}

// MsgDropped releases the reference a work-phase envelope held when the
// fault layer discards it at a crashed node. A dropped load means the
// cohort never starts (the coordinator aborts via failure detection); a
// dropped report means its news died with the node.
func (c *cohortRun) MsgDropped(int) { c.a.release() }

// spawn starts the cohort process once the startup CPU cost is paid. The
// process name is the node's static cohort name: spawn names are
// debug-only, and formatting one per load would allocate.
//
//ddbmlint:hotpath cohort process start pinned by TestTxnPathAllocFree
func (c *cohortRun) spawn() {
	c.bd.SpendSplit(c.m.sim.Now(), c.m.cfg.InstPerStartup/c.m.cpus[c.meta.Node].Rate(),
		obs.PhaseCPUService, obs.PhaseCPUQueue)
	p := c.m.sim.Spawn(c.m.cohortNames[c.meta.Node], c.runFn)
	if c.m.ft != nil {
		// Record the process (and the running phase) here, not in run: a
		// crash landing between the spawn and the process's first step
		// must still find something to kill.
		c.meta.Proc = p
		c.phase = phaseRunning
	}
}

// run is the cohort process body.
//
//ddbmlint:hotpath cohort process body pinned by TestTxnPathAllocFree
func (c *cohortRun) run(cp *sim.Proc) {
	c.meta.Proc = cp
	c.m.runCohort(cp, c)
}

// runCohort executes a cohort's work phase: for each access, a concurrency
// control request, a synchronous disk read, and page-processing CPU; for
// updates, a second (write) concurrency control request — the update itself
// is buffered until commit. The cohort stops silently if its transaction is
// already being aborted (the abort protocol handles cleanup), and reports
// conflicts it loses to the coordinator. Every exit path releases the
// reference loadCohort took.
//
//ddbmlint:hotpath cohort work phase pinned by TestTxnPathAllocFree
func (m *Machine) runCohort(cp *sim.Proc, c *cohortRun) {
	cfg := &m.cfg
	node := c.meta.Node
	mgr := m.mgrs[node]
	cpu := m.cpus[node]
	disks := m.disks[node]
	if m.activeCohorts != nil {
		m.activeCohorts[node]++
	}
	sp := m.tracer.Begin(obs.KindCohort, "cohort", node, c.meta.Txn.ID, c.attempt)
	deferAllWrites := cfg.Algorithm == cc.O2PL
	for i := range c.plan.Accesses {
		a := &c.plan.Accesses[i]
		if c.meta.Txn.AbortRequested {
			m.cohortDone(c, sp)
			c.a.release()
			return
		}
		if a.Remote {
			// Write to a non-primary copy: a write permission request only
			// (read-one/write-all); the copy is installed at commit. In
			// deferred mode the lock request moves to the prepare phase.
			if cfg.DeferRemoteWriteLocks || deferAllWrites {
				continue
			}
			cpu.Use(cp, cfg.InstPerCCReq)
			c.bd.SpendSplit(m.sim.Now(), cfg.InstPerCCReq/cpu.Rate(), obs.PhaseCPUService, obs.PhaseCPUQueue)
			out := mgr.Access(&c.meta, a.Page, true) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; managers are audited by their own alloc pins
			c.bd.Spend(m.sim.Now(), obs.PhaseLockBlocked)
			if out == cc.Aborted {
				m.reportSelfAbort(c)
				m.cohortDone(c, sp)
				c.a.release()
				return
			}
			continue
		}
		// For pages the transaction will update, the locking algorithms can
		// claim write permission up front (the update set is known) or
		// read-then-convert (§2.2 literally); timestamp algorithms always
		// see the read first so their read rules apply.
		firstAccessIsWrite := a.Write && !cfg.UpgradeWriteLocks && locksUpFront(cfg.Algorithm)
		cpu.Use(cp, cfg.InstPerCCReq)
		c.bd.SpendSplit(m.sim.Now(), cfg.InstPerCCReq/cpu.Rate(), obs.PhaseCPUService, obs.PhaseCPUQueue)
		out := mgr.Access(&c.meta, a.Page, firstAccessIsWrite) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; see above
		c.bd.Spend(m.sim.Now(), obs.PhaseLockBlocked)
		if out == cc.Aborted {
			m.reportSelfAbort(c)
			m.cohortDone(c, sp)
			c.a.release()
			return
		}
		if m.rec != nil {
			c.reads = append(c.reads, audit.ReadObs{Page: a.Page, Saw: m.rec.ObserveRead(a.Page, node)}) //ddbmlint:allow hotpath-alloc audit-only path; auditing is off in measured runs
		}
		disks.ReadMeasured(cp, &c.diskSvc)
		c.bd.SpendSplit(m.sim.Now(), c.diskSvc, obs.PhaseDiskService, obs.PhaseDiskQueue)
		cpu.Use(cp, a.Inst)
		c.bd.SpendSplit(m.sim.Now(), a.Inst/cpu.Rate(), obs.PhaseCPUService, obs.PhaseCPUQueue)
		if a.Write {
			if c.meta.Txn.AbortRequested {
				m.cohortDone(c, sp)
				c.a.release()
				return
			}
			if !firstAccessIsWrite && !deferAllWrites {
				cpu.Use(cp, cfg.InstPerCCReq)
				c.bd.SpendSplit(m.sim.Now(), cfg.InstPerCCReq/cpu.Rate(), obs.PhaseCPUService, obs.PhaseCPUQueue)
				out := mgr.Access(&c.meta, a.Page, true) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; see above
				c.bd.Spend(m.sim.Now(), obs.PhaseLockBlocked)
				if out == cc.Aborted {
					m.reportSelfAbort(c)
					m.cohortDone(c, sp)
					c.a.release()
					return
				}
			}
			// Processing the page "when writing it" (Table 2); the update
			// itself stays buffered until commit.
			cpu.Use(cp, a.WriteInst)
			c.bd.SpendSplit(m.sim.Now(), a.WriteInst/cpu.Rate(), obs.PhaseCPUService, obs.PhaseCPUQueue)
		}
	}
	m.cohortDone(c, sp)
	c.a.retain()
	m.net.Send(node, m.hostID, c, tagCohortDone)
	c.a.release()
}

// cohortDone closes a cohort's observability state. Deliberately called
// explicitly on every work-phase exit path rather than deferred: a cohort
// killed at simulation shutdown must not record its span (its
// coordinator's attempt span never records either), and the gauge is only
// read by the sampler, which has no events left by then.
//
//ddbmlint:hotpath cohort exit pinned by TestTxnPathAllocFree
func (m *Machine) cohortDone(c *cohortRun, sp *obs.Span) {
	if m.activeCohorts != nil {
		m.activeCohorts[c.meta.Node]--
	}
	if m.ft != nil {
		c.phase = phaseExited
	}
	sp.End()
}

// locksUpFront reports whether the algorithm can usefully claim write
// permission at first access: only the locking algorithms distinguish the
// request modes before commit. BTO must see the read first (its read rule
// orders the read against pending writes), and OPT/NO_DC grant everything
// anyway, so they always use the read-then-write sequence.
func locksUpFront(k cc.Kind) bool { return k == cc.TwoPL || k == cc.WoundWait }

// reportSelfAbort tells the coordinator this cohort's access was rejected
// by concurrency control. If the attempt is already being aborted the
// coordinator knows, so nothing is sent.
//
//ddbmlint:hotpath cc-reject report pinned by TestTxnPathAllocFree
func (m *Machine) reportSelfAbort(c *cohortRun) {
	m.tracer.Instant("cc-reject", c.meta.Node, c.meta.Txn.ID, c.attempt, "")
	if c.meta.Txn.AbortRequested {
		return
	}
	c.a.retain()
	m.net.Send(c.meta.Node, m.hostID, c, tagCohortSelfAbort)
}
