package core

import (
	"fmt"

	"ddbm/internal/audit"
	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/obs"
	"ddbm/internal/sim"
	"ddbm/internal/workload"
)

// Coordinator mailbox messages for the work phase. Every message a cohort
// node sends to the coordinator travels through the network with full CPU
// costs. The commit protocol's own messages (votes, acks) are defined in
// internal/commit; the abort-demanding messages here implement
// commit.AbortSignal (see protocol.go).
type (
	msgCohortDone struct{ idx int }
	msgSelfAbort  struct {
		idx    int
		reason string
	}
	msgAbortNotice struct{ reason string }
)

// cohortRun is the coordinator's handle on one cohort of one attempt.
type cohortRun struct {
	idx     int
	attempt int // attempt number, tagging this cohort's trace spans
	plan    *workload.CohortPlan
	meta    *cc.CohortMeta
	// reads records audit observations (only when auditing is enabled).
	reads []audit.ReadObs
}

// serializationStamp is the stamp the algorithm promises equivalence to:
// the attempt timestamp for BTO, the certification timestamp for OPT, and
// the commit-decision order for the strict locking algorithms (whose
// prepare phase may block under deferred write locks, reordering decisions
// relative to CommitTS).
func (m *Machine) serializationStamp(meta *cc.TxnMeta) int64 {
	switch m.cfg.Algorithm {
	case cc.BTO:
		return meta.AttemptTS
	case cc.OPT:
		return meta.CommitTS
	default:
		return meta.DecisionTS
	}
}

// terminal models one terminal: think, submit a transaction, wait for it to
// complete successfully, repeat (paper §3.2).
func (m *Machine) terminal(p *sim.Proc, termID int) {
	rel := termID % m.cfg.NumRelations
	class := m.gen.ClassOfTerminal(termID, m.cfg.NumTerminals)
	rng := m.sim.Rand()
	for {
		p.Delay(sim.Exponential(rng, m.cfg.ThinkTimeMs))
		plan := m.gen.NewClassPlan(rng, rel, class)
		m.runTransaction(p, &plan)
	}
}

// runTransaction drives a transaction to successful commit, rerunning after
// each abort with a delay of one average response time (paper §3.3,
// [Agra87a]). The terminal process acts as the coordinator, which runs at
// the host node.
func (m *Machine) runTransaction(p *sim.Proc, plan *workload.TxnPlan) {
	id := m.nextTxnID()
	origTS := m.nextTS() // original startup timestamp, kept across restarts
	origin := m.sim.Now()
	m.stats.txnStarted(origin)
	m.lifecycle(TxnSubmitted, id, 1, "")
	restarts := 0
	for {
		attemptNo := restarts + 1
		m.lifecycle(TxnAttemptStarted, id, attemptNo, "")
		// The attempt span is ended explicitly, never deferred: terminals
		// killed at simulation shutdown must not record a half-finished
		// attempt (see obs.Span.End).
		sp := m.tracer.Begin(obs.KindTxn, "attempt", m.hostID, id, attemptNo)
		committed, reason := m.attempt(p, id, origTS, attemptNo, plan)
		sp.End()
		if committed {
			break
		}
		m.lifecycle(TxnAttemptAborted, id, attemptNo, reason)
		m.stats.txnAborted()
		restarts++
		p.Delay(m.stats.avgResponse(m.cfg.InitialRestartDelayMs))
	}
	m.lifecycle(TxnCommitted, id, restarts+1, "")
	m.stats.txnCommitted(m.sim.Now(), m.sim.Now()-origin, restarts)
}

// attempt executes one try of the transaction: load cohorts (sequentially
// or in parallel), wait for their work phases, then hand the attempt to
// the configured commit protocol (centralized 2PC by default). It reports
// whether the attempt committed and, if not, why it aborted.
func (m *Machine) attempt(p *sim.Proc, id, origTS int64, attemptNo int, plan *workload.TxnPlan) (bool, string) {
	cfg := &m.cfg
	meta := &cc.TxnMeta{ID: id, TS: origTS, AttemptTS: m.nextTS()}
	mail := m.sim.NewMailbox()
	meta.OnAbort = func(fromNode int, reason string) {
		m.net.Send(fromNode, m.hostID, func() { mail.Send(msgAbortNotice{reason: reason}) })
	}

	// Coordinator process startup at the host.
	m.cpus[m.hostID].Use(p, cfg.InstPerStartup)

	cohorts := make([]*cohortRun, len(plan.Cohorts))
	protoCohorts := make([]*commit.Cohort, len(plan.Cohorts))
	for i := range plan.Cohorts {
		cp := &plan.Cohorts[i]
		cm := &cc.CohortMeta{
			Txn:       meta,
			Node:      cp.Node,
			OnBlocked: m.stats.blocked,
		}
		if tr := m.tracer; tr != nil {
			// Record each blocking episode as a cc-wait span before the
			// stats tally. The closure exists only on the traced path, so
			// the disabled path keeps the allocation-free direct method
			// value above.
			node := cp.Node
			cm.OnBlocked = func(d sim.Time) {
				if d > 0 {
					tr.Complete(obs.KindCCWait, "cc-wait", node, id, attemptNo, m.sim.Now()-d)
				}
				m.stats.blocked(d)
			}
		}
		cohorts[i] = &cohortRun{idx: i, attempt: attemptNo, plan: cp, meta: cm}
		protoCohorts[i] = &commit.Cohort{
			Idx:      i,
			Meta:     cohorts[i].meta,
			ReadOnly: cp.NumWrites() == 0,
			Deferred: m.deferredPages(cp),
		}
	}
	t := &commit.Txn{Meta: meta, Mail: mail, Cohorts: protoCohorts}
	env := &protocolEnv{m: m, txn: id, attempt: attemptNo, runs: cohorts}

	loaded := 0
	if cfg.ExecPattern == Sequential || plan.Sequential {
		for _, c := range cohorts {
			m.loadCohort(c, mail)
			loaded++
			if !m.awaitDone(p, mail, 1) {
				m.abortAttempt(p, env, t, loaded)
				return false, meta.AbortReason
			}
		}
	} else {
		for _, c := range cohorts {
			m.loadCohort(c, mail)
			loaded++
		}
		if !m.awaitDone(p, mail, loaded) {
			m.abortAttempt(p, env, t, loaded)
			return false, meta.AbortReason
		}
	}
	if meta.AbortRequested {
		m.abortAttempt(p, env, t, len(cohorts))
		return false, meta.AbortReason
	}

	env.phaseAt = m.sim.Now()
	if !m.proto.Commit(p, env, t) {
		m.abortAttempt(p, env, t, len(cohorts))
		return false, meta.AbortReason
	}
	// Commit resolution: from the logged decision (phaseAt was advanced by
	// Decided) to the protocol's return. Nil-safe no-op when untraced.
	m.tracer.Complete(obs.KindCommitPhase, "resolve", m.hostID, id, attemptNo, env.phaseAt)
	return true, ""
}

// awaitDone consumes coordinator mail until n cohorts report work-phase
// completion; it returns false as soon as any abort signal arrives.
func (m *Machine) awaitDone(p *sim.Proc, mail *sim.Mailbox, n int) bool {
	for done := 0; done < n; {
		switch mail.Recv(p).(type) {
		case msgCohortDone:
			done++
		case msgAbortNotice, msgSelfAbort:
			return false
		}
	}
	return true
}

// loadCohort sends the "load cohort" message; at the destination the
// process-startup CPU cost is paid and the cohort process begins.
func (m *Machine) loadCohort(c *cohortRun, mail *sim.Mailbox) {
	node := c.meta.Node
	m.net.Send(m.hostID, node, func() {
		m.cpus[node].UseAsync(m.cfg.InstPerStartup, func() {
			m.sim.Spawn(fmt.Sprintf("cohort-%d@%d", c.meta.Txn.ID, node), func(cp *sim.Proc) {
				c.meta.Proc = cp
				m.runCohort(cp, c, mail)
			})
		})
	})
}

// runCohort executes a cohort's work phase: for each access, a concurrency
// control request, a synchronous disk read, and page-processing CPU; for
// updates, a second (write) concurrency control request — the update itself
// is buffered until commit. The cohort stops silently if its transaction is
// already being aborted (the abort protocol handles cleanup), and reports
// conflicts it loses to the coordinator.
func (m *Machine) runCohort(cp *sim.Proc, c *cohortRun, mail *sim.Mailbox) {
	cfg := &m.cfg
	node := c.meta.Node
	mgr := m.mgrs[node]
	cpu := m.cpus[node]
	disks := m.disks[node]
	if m.activeCohorts != nil {
		m.activeCohorts[node]++
	}
	sp := m.tracer.Begin(obs.KindCohort, "cohort", node, c.meta.Txn.ID, c.attempt)
	deferAllWrites := cfg.Algorithm == cc.O2PL
	for i := range c.plan.Accesses {
		a := &c.plan.Accesses[i]
		if c.meta.Txn.AbortRequested {
			m.cohortDone(c, sp)
			return
		}
		if a.Remote {
			// Write to a non-primary copy: a write permission request only
			// (read-one/write-all); the copy is installed at commit. In
			// deferred mode the lock request moves to the prepare phase.
			if cfg.DeferRemoteWriteLocks || deferAllWrites {
				continue
			}
			cpu.Use(cp, cfg.InstPerCCReq)
			if mgr.Access(c.meta, a.Page, true) == cc.Aborted {
				m.reportSelfAbort(c, mail)
				m.cohortDone(c, sp)
				return
			}
			continue
		}
		// For pages the transaction will update, the locking algorithms can
		// claim write permission up front (the update set is known) or
		// read-then-convert (§2.2 literally); timestamp algorithms always
		// see the read first so their read rules apply.
		firstAccessIsWrite := a.Write && !cfg.UpgradeWriteLocks && locksUpFront(cfg.Algorithm)
		cpu.Use(cp, cfg.InstPerCCReq)
		if mgr.Access(c.meta, a.Page, firstAccessIsWrite) == cc.Aborted {
			m.reportSelfAbort(c, mail)
			m.cohortDone(c, sp)
			return
		}
		if m.rec != nil {
			c.reads = append(c.reads, audit.ReadObs{Page: a.Page, Saw: m.rec.ObserveRead(a.Page, node)})
		}
		disks.Read(cp)
		cpu.Use(cp, a.Inst)
		if a.Write {
			if c.meta.Txn.AbortRequested {
				m.cohortDone(c, sp)
				return
			}
			if !firstAccessIsWrite && !deferAllWrites {
				cpu.Use(cp, cfg.InstPerCCReq)
				if mgr.Access(c.meta, a.Page, true) == cc.Aborted {
					m.reportSelfAbort(c, mail)
					m.cohortDone(c, sp)
					return
				}
			}
			// Processing the page "when writing it" (Table 2); the update
			// itself stays buffered until commit.
			cpu.Use(cp, a.WriteInst)
		}
	}
	m.cohortDone(c, sp)
	m.net.Send(node, m.hostID, func() { mail.Send(msgCohortDone{idx: c.idx}) })
}

// cohortDone closes a cohort's observability state. Deliberately called
// explicitly on every work-phase exit path rather than deferred: a cohort
// killed at simulation shutdown must not record its span (its
// coordinator's attempt span never records either), and the gauge is only
// read by the sampler, which has no events left by then.
func (m *Machine) cohortDone(c *cohortRun, sp *obs.Span) {
	if m.activeCohorts != nil {
		m.activeCohorts[c.meta.Node]--
	}
	sp.End()
}

// locksUpFront reports whether the algorithm can usefully claim write
// permission at first access: only the locking algorithms distinguish the
// request modes before commit. BTO must see the read first (its read rule
// orders the read against pending writes), and OPT/NO_DC grant everything
// anyway, so they always use the read-then-write sequence.
func locksUpFront(k cc.Kind) bool { return k == cc.TwoPL || k == cc.WoundWait }

// reportSelfAbort tells the coordinator this cohort's access was rejected
// by concurrency control. If the attempt is already being aborted the
// coordinator knows, so nothing is sent.
func (m *Machine) reportSelfAbort(c *cohortRun, mail *sim.Mailbox) {
	m.tracer.Instant("cc-reject", c.meta.Node, c.meta.Txn.ID, c.attempt, "")
	if c.meta.Txn.AbortRequested {
		return
	}
	node := c.meta.Node
	idx := c.idx
	m.net.Send(node, m.hostID, func() { mail.Send(msgSelfAbort{idx: idx, reason: "access rejected"}) })
}
