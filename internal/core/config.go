// Package core assembles the complete distributed database machine model
// of paper §3 — host and processing nodes, transaction manager with
// coordinator/cohort structure and centralized two-phase commit, resource
// and network managers, workload source, and a pluggable concurrency
// control manager — and runs it to produce the paper's performance metrics.
package core

import (
	"fmt"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/fault"
)

// ExecPattern selects how a transaction's cohorts execute (paper §3.3).
type ExecPattern int

const (
	// Parallel starts all cohorts together, Gamma/Teradata/Bubba style.
	Parallel ExecPattern = iota
	// Sequential runs cohorts one after another, Non-Stop-SQL RPC style.
	Sequential
)

func (e ExecPattern) String() string {
	if e == Sequential {
		return "sequential"
	}
	return "parallel"
}

// TxnClass describes one transaction class of a multi-class workload
// (paper Table 2). Terminals are assigned classes by their fractions.
type TxnClass struct {
	// Frac is the fraction of terminals generating this class (ClassFrac).
	Frac float64
	// Sequential runs this class's cohorts sequentially (ExecPattern).
	Sequential bool
	// FileCount is how many distinct partitions of the terminal's relation
	// a transaction touches (0 = all of them, as in the paper).
	FileCount int
	// AvgPagesPerPartition, WriteProb and InstPerPage override the
	// machine-wide defaults for this class.
	AvgPagesPerPartition int
	WriteProb            float64
	InstPerPage          float64
}

// Config collects every model parameter (paper Tables 1-4). The zero value
// is not runnable; start from DefaultConfig.
type Config struct {
	// Algorithm selects the concurrency control algorithm.
	Algorithm cc.Kind
	// StrictOPT enables the conservative OPT read-certification guard.
	StrictOPT bool
	// CommitProtocol selects the two-phase commit variant. The zero value,
	// CentralizedTwoPC, is the paper-faithful default; PresumedAbort and
	// PresumedCommit are the R* variants that trade acknowledgement
	// messages and forced log writes on the read-only and abort paths (see
	// internal/commit). Note that the presumed variants release read-only
	// cohorts at vote time, before the global decision — for OPT this
	// widens the known certify/commit anomaly window beyond what
	// StrictOPT closes.
	CommitProtocol commit.Kind

	// NumProcNodes is the number of processing nodes (the host is extra).
	NumProcNodes int
	// PartitionWays controls data placement: 0 uses the machine-size
	// scaling placement of §4.2 (every relation spread over all nodes);
	// k >= 1 uses the k-way declustering of §4.3/§4.4.
	PartitionWays int

	// NumRelations and PartsPerRelation shape the database (8 x 8 = 64
	// files in the paper); PagesPerFile is the partition size (300 small,
	// 1200 large).
	NumRelations     int
	PartsPerRelation int
	PagesPerFile     int
	// ReplicaCount places this many copies of every file on distinct nodes
	// (read-one/write-all, the [Care88] replicated-data model this paper's
	// §3 model descends from). 1 (default) means no replication. Reads use
	// the primary copy; every update also makes write requests at the
	// other copies and installs there at commit.
	ReplicaCount int
	// UpgradeWriteLocks controls when the locking algorithms (2PL, WW)
	// claim write permission for a page the transaction will update:
	// false (default) requests the exclusive lock at access time (the
	// update set is part of the transaction's definition, so "read with
	// intent to update" is known up front); true models the literal
	// read-lock-then-convert sequence of §2.2, which admits classic
	// conversion deadlocks when two readers of a page both upgrade.
	UpgradeWriteLocks bool
	// DeferRemoteWriteLocks (2PL only, requires replication) defers the
	// write-lock requests on remote copies until the first phase of the
	// commit protocol — the [Care89] variant of footnote 13 that lets 2PL
	// dominate OPT even with expensive messages and replicated data.
	DeferRemoteWriteLocks bool

	// NumTerminals terminals attach to the host; ThinkTimeMs is the mean of
	// their exponential think time.
	NumTerminals int
	ThinkTimeMs  float64

	// AvgPagesPerPartition pages are read from each partition of the
	// accessed relation (NumPages), each updated with probability
	// WriteProb; processing a page costs InstPerPage instructions on
	// average (exponential).
	AvgPagesPerPartition int
	WriteProb            float64
	InstPerPage          float64
	// Classes optionally defines a multi-class workload (Table 2:
	// NumClasses/ClassFrac and the per-class parameters). When empty, a
	// single class built from the three fields above is used — the paper's
	// configuration. Fractions must sum to 1.
	Classes []TxnClass
	// SpreadHalfToTwice switches the per-partition page count to the
	// [avg/2, 2·avg] variant (see workload.Spread).
	SpreadHalfToTwice bool

	// HostMIPS and ProcMIPS are CPU speeds (10 and 1 in the paper).
	HostMIPS float64
	ProcMIPS float64
	// NumDisks disks per node, with uniform access times on
	// [MinDiskMs, MaxDiskMs].
	NumDisks  int
	MinDiskMs float64
	MaxDiskMs float64

	// CPU overheads (instruction counts).
	InstPerUpdate  float64 // initiating one deferred page write
	InstPerStartup float64 // starting a coordinator or cohort process
	InstPerMsg     float64 // sending or receiving one message (each end)
	InstPerCCReq   float64 // processing one concurrency control request

	// DetectionIntervalMs is the 2PL Snoop dwell time per node.
	DetectionIntervalMs float64
	// LockWaitTimeoutMs, when positive, replaces 2PL's deadlock detection
	// (local + Snoop) with the timeout scheme of the paper's footnote 2:
	// a lock wait longer than this aborts the waiting transaction.
	LockWaitTimeoutMs float64

	// ExecPattern selects parallel or sequential cohort execution.
	ExecPattern ExecPattern

	// SimTimeMs is the simulated duration; statistics are collected after
	// WarmupMs. Seed drives all randomness.
	SimTimeMs float64
	WarmupMs  float64
	Seed      int64

	// InitialRestartDelayMs is the restart delay used before any
	// transaction has committed (afterwards the running average response
	// time observed at the coordinator node is used, per [Agra87a]).
	InitialRestartDelayMs float64

	// ModelLogging enables the log-based recovery costs the paper's
	// footnote 5 assumes but does not model: each cohort forces one log
	// page (a synchronous priority disk write) before voting yes in the
	// first commit phase, and the coordinator forces a commit record at
	// the host before the commit decision. Off by default, matching the
	// paper ("we do not model logging, as we assume it is not the
	// bottleneck").
	ModelLogging bool

	// Breakdown enables per-transaction time-breakdown accounting and
	// abort-cause attribution: every simulated microsecond of a
	// transaction's life is attributed to one phase of a closed set (CPU
	// service/queue, disk service/queue, lock-blocked, network transit,
	// commit prepare/decide/resolve, restart backoff, residue), and every
	// aborted attempt is counted by cause and attributing node. Results
	// surface as Result.PhaseMeanMs / PhaseP99Ms / AbortsByCause and via
	// Machine.Breakdown(). Observation only: the accounting is pure
	// arithmetic on the simulated clock (no randomness, no scheduling),
	// so runs are bit-identical with it on or off, and the pinned
	// transaction path stays allocation-free.
	Breakdown bool

	// Audit enables the serializability auditor: the run records every
	// committed transaction's reads and writes and Result carries any
	// anomalies found by replaying the history in serialization-stamp
	// order (see internal/audit). Costs memory proportional to the number
	// of commits; off by default.
	Audit bool

	// Faults declares the deterministic fault schedule (see internal/fault):
	// crash-stop node failures, coordinator failover, and message
	// loss/duplication, all drawn from dedicated seed substreams so the
	// workload stream is untouched. The zero value (Enabled false) keeps
	// every fault-free fast path: no injector is built and runs are
	// bit-identical to a build without the subsystem. Requires
	// ModelLogging (crash recovery replays the forced log) and excludes
	// O2PL, DeferRemoteWriteLocks and Audit (see Validate).
	Faults fault.Config
}

// DefaultConfig returns the paper's baseline settings (Table 4): one 10-MIPS
// host plus eight 1-MIPS processing nodes, 64 files of 300 pages, 128
// terminals, 8 pages read per partition with write probability 1/4, 8K
// instructions per page, two 10-30 ms disks per node, 2K-instruction
// process startup, 1K-instruction messages, free CC requests, and a
// 1-second Snoop interval. Simulated time defaults to 400 seconds with a
// 40-second warmup; callers doing publication-quality sweeps should raise
// it.
func DefaultConfig() Config {
	return Config{
		Algorithm:             cc.TwoPL,
		ReplicaCount:          1,
		NumProcNodes:          8,
		PartitionWays:         0,
		NumRelations:          8,
		PartsPerRelation:      8,
		PagesPerFile:          300,
		NumTerminals:          128,
		ThinkTimeMs:           0,
		AvgPagesPerPartition:  8,
		WriteProb:             0.25,
		InstPerPage:           8000,
		HostMIPS:              10,
		ProcMIPS:              1,
		NumDisks:              2,
		MinDiskMs:             10,
		MaxDiskMs:             30,
		InstPerUpdate:         2000,
		InstPerStartup:        2000,
		InstPerMsg:            1000,
		InstPerCCReq:          0,
		DetectionIntervalMs:   1000,
		ExecPattern:           Parallel,
		SimTimeMs:             400_000,
		WarmupMs:              40_000,
		Seed:                  1,
		InitialRestartDelayMs: 1000,
	}
}

func validCommitProtocol(k commit.Kind) bool {
	for _, v := range commit.Kinds() {
		if k == v {
			return true
		}
	}
	return false
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.NumProcNodes < 1:
		return fmt.Errorf("core: NumProcNodes must be >= 1, got %d", c.NumProcNodes)
	case c.NumRelations < 1 || c.PartsPerRelation < 1 || c.PagesPerFile < 1:
		return fmt.Errorf("core: database dimensions must be positive")
	case c.NumTerminals < 1:
		return fmt.Errorf("core: NumTerminals must be >= 1, got %d", c.NumTerminals)
	case c.ThinkTimeMs < 0:
		return fmt.Errorf("core: negative ThinkTimeMs")
	case c.AvgPagesPerPartition < 1:
		return fmt.Errorf("core: AvgPagesPerPartition must be >= 1")
	case c.WriteProb < 0 || c.WriteProb > 1:
		return fmt.Errorf("core: WriteProb %v out of [0,1]", c.WriteProb)
	case c.HostMIPS <= 0 || c.ProcMIPS <= 0:
		return fmt.Errorf("core: CPU speeds must be positive")
	case c.NumDisks < 1:
		return fmt.Errorf("core: NumDisks must be >= 1")
	case c.MinDiskMs < 0 || c.MaxDiskMs < c.MinDiskMs:
		return fmt.Errorf("core: disk time range [%v,%v] invalid", c.MinDiskMs, c.MaxDiskMs)
	case c.InstPerUpdate < 0 || c.InstPerStartup < 0 || c.InstPerMsg < 0 || c.InstPerCCReq < 0:
		return fmt.Errorf("core: CPU overheads must be non-negative")
	case c.SimTimeMs <= 0:
		return fmt.Errorf("core: SimTimeMs must be positive")
	case c.WarmupMs < 0 || c.WarmupMs >= c.SimTimeMs:
		return fmt.Errorf("core: WarmupMs %v must lie in [0, SimTimeMs)", c.WarmupMs)
	case c.LockWaitTimeoutMs < 0:
		return fmt.Errorf("core: negative LockWaitTimeoutMs")
	case c.ReplicaCount < 0 || c.ReplicaCount > c.NumProcNodes:
		return fmt.Errorf("core: ReplicaCount %d out of range for %d nodes", c.ReplicaCount, c.NumProcNodes)
	case c.DeferRemoteWriteLocks && c.Algorithm != cc.TwoPL:
		return fmt.Errorf("core: DeferRemoteWriteLocks applies to 2PL only")
	case c.DeferRemoteWriteLocks && c.ReplicaCount < 2:
		return fmt.Errorf("core: DeferRemoteWriteLocks requires ReplicaCount >= 2")
	case !validCommitProtocol(c.CommitProtocol):
		return fmt.Errorf("core: unknown commit protocol %v", c.CommitProtocol)
	case c.DeferRemoteWriteLocks && c.CommitProtocol != commit.CentralizedTwoPC:
		return fmt.Errorf("core: DeferRemoteWriteLocks is only supported with the CentralizedTwoPC commit protocol")
	case c.StrictOPT && c.Algorithm != cc.OPT:
		return fmt.Errorf("core: StrictOPT applies to OPT only")
	case c.UpgradeWriteLocks && c.Algorithm != cc.TwoPL && c.Algorithm != cc.WoundWait:
		return fmt.Errorf("core: UpgradeWriteLocks applies to the locking algorithms (2PL, WW) only")
	case c.LockWaitTimeoutMs > 0 && c.Algorithm != cc.TwoPL && c.Algorithm != cc.O2PL:
		return fmt.Errorf("core: LockWaitTimeoutMs applies to 2PL and O2PL only")
	case (c.Algorithm == cc.TwoPL || c.Algorithm == cc.O2PL) && c.DetectionIntervalMs <= 0 && c.LockWaitTimeoutMs <= 0:
		return fmt.Errorf("core: %v needs a positive DetectionIntervalMs (or a LockWaitTimeoutMs)", c.Algorithm)
	}
	if f := &c.Faults; f.Enabled {
		switch {
		case !c.ModelLogging:
			return fmt.Errorf("core: Faults requires ModelLogging (recovery replays the forced log)")
		case c.Algorithm == cc.O2PL:
			return fmt.Errorf("core: Faults does not support O2PL (deferred-lock processes have no crash story)")
		case c.DeferRemoteWriteLocks:
			return fmt.Errorf("core: Faults does not support DeferRemoteWriteLocks")
		case c.Audit:
			return fmt.Errorf("core: Faults does not support Audit (presumed-commit recovery can install anomalous writes by design)")
		case f.NodeMTTFMs <= 0 && f.HostMTTFMs <= 0 && f.DropProb <= 0 && f.DupProb <= 0:
			return fmt.Errorf("core: Faults enabled but schedules nothing (set NodeMTTFMs, HostMTTFMs, DropProb or DupProb)")
		case f.NodeMTTFMs < 0 || f.HostMTTFMs < 0:
			return fmt.Errorf("core: negative MTTF")
		case f.NodeMTTFMs > 0 && (f.MTTRMs <= 0 || f.MTTRMs >= c.SimTimeMs):
			return fmt.Errorf("core: Faults.MTTRMs %v must lie in (0, SimTimeMs)", f.MTTRMs)
		case f.NodeMTTFMs > 0 && (f.DetectMs < 0 || f.DetectMs > f.MTTRMs):
			return fmt.Errorf("core: Faults.DetectMs %v must lie in [0, MTTRMs]", f.DetectMs)
		case f.HostMTTFMs > 0 && (f.HostMTTRMs <= 0 || f.HostMTTRMs >= c.SimTimeMs):
			return fmt.Errorf("core: Faults.HostMTTRMs %v must lie in (0, SimTimeMs)", f.HostMTTRMs)
		case f.DropProb < 0 || f.DropProb >= 1 || f.DupProb < 0 || f.DupProb >= 1:
			return fmt.Errorf("core: message fault probabilities must lie in [0,1)")
		case f.DropProb > 0 && f.RetransmitDelayMs <= 0:
			return fmt.Errorf("core: Faults.DropProb needs a positive RetransmitDelayMs")
		}
	}
	if c.PartitionWays == 0 {
		if c.PartsPerRelation%c.NumProcNodes != 0 {
			return fmt.Errorf("core: scaled placement needs NumProcNodes (%d) to divide PartsPerRelation (%d)",
				c.NumProcNodes, c.PartsPerRelation)
		}
	} else {
		if c.PartitionWays < 0 || c.PartitionWays > c.NumProcNodes {
			return fmt.Errorf("core: PartitionWays %d out of range for %d nodes", c.PartitionWays, c.NumProcNodes)
		}
		if c.PartsPerRelation%c.PartitionWays != 0 {
			return fmt.Errorf("core: PartitionWays %d must divide PartsPerRelation %d", c.PartitionWays, c.PartsPerRelation)
		}
	}
	return nil
}
