package core

import (
	"testing"

	"ddbm/internal/cc"
)

func TestCCRequestCPUCharged(t *testing.T) {
	// InstPerCCReq is 0 in the paper, but the knob must work: a huge CC
	// request cost visibly inflates response time.
	cheap := testConfig(cc.NoDC)
	cheap.NumTerminals = 1
	expensive := cheap
	expensive.InstPerCCReq = 20000 // 20 ms per request at 1 MIPS
	rc, err := Run(cheap)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(expensive)
	if err != nil {
		t.Fatal(err)
	}
	if re.MeanResponseMs < rc.MeanResponseMs*1.5 {
		t.Errorf("CC request cost not charged: %v vs %v ms", rc.MeanResponseMs, re.MeanResponseMs)
	}
}

func TestMessageCostSlowsDistributedTxns(t *testing.T) {
	free := testConfig(cc.NoDC)
	free.NumTerminals = 1
	free.InstPerMsg = 0
	costly := free
	costly.InstPerMsg = 50000 // 50 ms per message end at 1 MIPS
	rf, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(costly)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MeanResponseMs <= rf.MeanResponseMs {
		t.Errorf("message cost had no effect: %v vs %v ms", rf.MeanResponseMs, rc.MeanResponseMs)
	}
}

func TestStartupCostSlowsTxns(t *testing.T) {
	free := testConfig(cc.NoDC)
	free.NumTerminals = 1
	free.InstPerStartup = 0
	costly := free
	costly.InstPerStartup = 100000 // 100 ms per cohort startup at 1 MIPS
	rf, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(costly)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MeanResponseMs <= rf.MeanResponseMs+50 {
		t.Errorf("startup cost had no effect: %v vs %v ms", rf.MeanResponseMs, rc.MeanResponseMs)
	}
}

func TestSpreadVariantRuns(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.SpreadHalfToTwice = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("half-to-twice spread produced no commits")
	}
}

func TestSequentialPatternAllAlgorithms(t *testing.T) {
	for _, alg := range cc.Kinds() {
		cfg := testConfig(alg)
		cfg.ExecPattern = Sequential
		cfg.PagesPerFile = 40 // force aborts mid-chain too
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits == 0 {
			t.Errorf("%v sequential: no commits", alg)
		}
	}
}

func TestEightWayHeavyContentionNoWedge(t *testing.T) {
	// Cross-node deadlocks under 2PL 8-way must be broken by the Snoop;
	// the run may thrash but can never wedge. We check that commits keep
	// happening in the second half of the run.
	cfg := DefaultConfig()
	cfg.Algorithm = cc.TwoPL
	cfg.PartitionWays = 8
	cfg.NumTerminals = 48
	cfg.PagesPerFile = 30
	cfg.ThinkTimeMs = 0
	cfg.SimTimeMs = 120_000
	cfg.WarmupMs = 60_000 // "second half"
	cfg.Seed = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits in the second half: deadlocked machine")
	}
	if res.Aborts == 0 {
		t.Error("expected deadlock/contention aborts in this regime")
	}
}

func TestWoundWaitHeavyContentionNoWedge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = cc.WoundWait
	cfg.PartitionWays = 8
	cfg.NumTerminals = 48
	cfg.PagesPerFile = 30
	cfg.ThinkTimeMs = 0
	cfg.SimTimeMs = 120_000
	cfg.WarmupMs = 60_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("wound-wait wedged")
	}
}

func TestSnoopIntervalAffectsDeadlockLatency(t *testing.T) {
	// With a very long detection interval, global deadlocks persist longer:
	// mean blocking time should not shrink when detection is 16x slower.
	fast := DefaultConfig()
	fast.Algorithm = cc.TwoPL
	fast.PartitionWays = 8
	fast.NumTerminals = 48
	fast.PagesPerFile = 30
	fast.ThinkTimeMs = 0
	fast.SimTimeMs = 90_000
	fast.WarmupMs = 15_000
	fast.DetectionIntervalMs = 250
	slow := fast
	slow.DetectionIntervalMs = 8000
	rf, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Commits == 0 || rs.Commits == 0 {
		t.Fatal("no commits")
	}
	if rs.ThroughputTPS > rf.ThroughputTPS*1.3 {
		t.Errorf("16x slower detection markedly increased throughput (%v vs %v tps)",
			rf.ThroughputTPS, rs.ThroughputTPS)
	}
}

func TestUpgradeWriteLockModeRunsAndSerializes(t *testing.T) {
	// The literal read-then-convert mode (§2.2) admits conversion
	// deadlocks; it must still make progress and stay serializable for
	// both locking algorithms.
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait} {
		cfg := testConfig(alg)
		cfg.UpgradeWriteLocks = true
		cfg.PagesPerFile = 40
		cfg.ThinkTimeMs = 0
		cfg.Audit = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits < 50 {
			t.Fatalf("%v upgrade mode: %d commits", alg, res.Commits)
		}
		if len(res.AuditViolations) != 0 {
			t.Fatalf("%v upgrade mode anomalies: %s", alg, res.AuditViolations[0])
		}
	}
}

func TestHostNotBottleneck(t *testing.T) {
	// Table 4 makes the host 10x faster so it never limits the system; its
	// utilization should stay well below the processing nodes'.
	cfg := testConfig(cc.NoDC)
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostCPUUtil > res.ProcCPUUtil {
		t.Errorf("host CPU (%v) busier than processing nodes (%v)",
			res.HostCPUUtil, res.ProcCPUUtil)
	}
	if res.HostCPUUtil > 0.5 {
		t.Errorf("host CPU utilization %v; the host should not approach saturation", res.HostCPUUtil)
	}
}

func TestMoreTerminalsMoreThroughputUntilSaturation(t *testing.T) {
	few := testConfig(cc.NoDC)
	few.NumTerminals = 4
	few.ThinkTimeMs = 2000
	many := few
	many.NumTerminals = 16
	rf, err := Run(few)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if rm.ThroughputTPS <= rf.ThroughputTPS {
		t.Errorf("4x terminals did not raise throughput below saturation: %v vs %v",
			rf.ThroughputTPS, rm.ThroughputTPS)
	}
}

func TestLargerDatabaseLessContention(t *testing.T) {
	small := testConfig(cc.OPT)
	small.PagesPerFile = 40
	small.ThinkTimeMs = 0
	large := small
	large.PagesPerFile = 1200
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if rl.AbortRatio >= rs.AbortRatio {
		t.Errorf("abort ratio did not fall with database size: %v vs %v",
			rs.AbortRatio, rl.AbortRatio)
	}
}

func TestMultiClassWorkloadRuns(t *testing.T) {
	// A classic mix: 75% small updaters, 25% relation-wide readers running
	// sequentially. Every algorithm must handle it; the auditor must stay
	// clean for the safe algorithms.
	for _, alg := range []cc.Kind{cc.TwoPL, cc.BTO} {
		cfg := testConfig(alg)
		cfg.Audit = true
		cfg.Classes = []TxnClass{
			{Frac: 0.75, FileCount: 1, AvgPagesPerPartition: 4, WriteProb: 0.5, InstPerPage: 4000},
			{Frac: 0.25, FileCount: 0, AvgPagesPerPartition: 8, WriteProb: 0, InstPerPage: 8000, Sequential: true},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits < 100 {
			t.Fatalf("%v multi-class: %d commits", alg, res.Commits)
		}
		if len(res.AuditViolations) != 0 {
			t.Fatalf("%v multi-class anomalies: %s", alg, res.AuditViolations[0])
		}
	}
}

func TestMultiClassValidationSurfaces(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.Classes = []TxnClass{{Frac: 0.4, AvgPagesPerPartition: 4, InstPerPage: 1}}
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("class fractions not summing to 1 accepted")
	}
}

func TestSmallClassFasterThanBigClass(t *testing.T) {
	// With a FileCount=1 class the transactions touch one partition: mean
	// response must be far below the full-relation default workload's.
	small := testConfig(cc.NoDC)
	small.Classes = []TxnClass{{Frac: 1, FileCount: 1, AvgPagesPerPartition: 8, WriteProb: 0.25, InstPerPage: 8000}}
	big := testConfig(cc.NoDC)
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanResponseMs*2 > rb.MeanResponseMs {
		t.Errorf("single-partition class (%v ms) not much faster than full-relation (%v ms)",
			rs.MeanResponseMs, rb.MeanResponseMs)
	}
}

func TestResponsePercentilesOrdered(t *testing.T) {
	res, err := Run(testConfig(cc.TwoPL))
	if err != nil {
		t.Fatal(err)
	}
	if res.RespP50Ms <= 0 {
		t.Fatal("no P50")
	}
	if !(res.RespP50Ms <= res.RespP90Ms && res.RespP90Ms <= res.RespP99Ms &&
		res.RespP99Ms <= res.MaxResponseMs) {
		t.Errorf("percentiles out of order: P50=%v P90=%v P99=%v max=%v",
			res.RespP50Ms, res.RespP90Ms, res.RespP99Ms, res.MaxResponseMs)
	}
	if res.RespP50Ms > res.MeanResponseMs*2 {
		t.Errorf("median %v wildly above mean %v", res.RespP50Ms, res.MeanResponseMs)
	}
}

func TestMessagesScaleWithCohorts(t *testing.T) {
	// 8 cohorts need substantially more messages per commit than 1 cohort.
	oneWay := DefaultConfig()
	oneWay.Algorithm = cc.NoDC
	oneWay.PartitionWays = 1
	oneWay.NumTerminals = 8
	oneWay.ThinkTimeMs = 2000
	oneWay.SimTimeMs = 60_000
	oneWay.WarmupMs = 6_000
	eightWay := oneWay
	eightWay.PartitionWays = 8
	r1, err := Run(oneWay)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(eightWay)
	if err != nil {
		t.Fatal(err)
	}
	m1 := float64(r1.MessagesSent) / float64(r1.Commits)
	m8 := float64(r8.MessagesSent) / float64(r8.Commits)
	if m8 < 4*m1 {
		t.Errorf("messages per commit: 1-way %v, 8-way %v; expected ~8x", m1, m8)
	}
}
