package core

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/obs"
)

// TestBreakdownReconciliation is the accounting invariant: for every
// committed transaction, the phase ledger's total equals the measured
// response time to within 1e-9 ms — no simulated microsecond is lost or
// double-counted. The property is checked per commit (via the bdCheck
// seam) across all four commit-protocol variants and a grid of seeds, on
// the contended test configuration so restarts, blocking and every abort
// path contribute.
func TestBreakdownReconciliation(t *testing.T) {
	protos := []struct {
		name    string
		proto   commit.Kind
		logging bool
	}{
		{"2PC-logging", commit.CentralizedTwoPC, true},
		{"PA-logging", commit.PresumedAbort, true},
		{"PC-logging", commit.PresumedCommit, true},
		{"2PC-nologging", commit.CentralizedTwoPC, false},
	}
	for _, tc := range protos {
		for _, seed := range []int64{1, 7, 13} {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := testConfig(cc.TwoPL)
				cfg.CommitProtocol = tc.proto
				cfg.ModelLogging = tc.logging
				cfg.Seed = seed
				cfg.Breakdown = true
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				checked, bad := 0, 0
				var worst float64
				m.bdCheck = func(ld *obs.Ledger, respMs float64) {
					checked++
					if d := math.Abs(ld.Total() - respMs); d > 1e-9 {
						bad++
						if d > worst {
							worst = d
						}
					}
				}
				res := m.Run()
				if checked < 100 {
					t.Fatalf("only %d commits checked; the property test did not exercise the path", checked)
				}
				if bad > 0 {
					t.Errorf("seed %d: %d of %d commits violate ledger reconciliation (worst |Σphases − resp| = %g ms)",
						seed, bad, checked, worst)
				}
				// The aggregate forms of the invariant: phase means sum to
				// the mean response, cause counts sum to the abort count.
				var sum float64
				for _, v := range res.PhaseMeanMs {
					sum += v
				}
				if d := math.Abs(sum - res.MeanResponseMs); d > 1e-6 {
					t.Errorf("seed %d: ΣPhaseMeanMs = %v but MeanResponseMs = %v (Δ %g)",
						seed, sum, res.MeanResponseMs, d)
				}
				var aborts int64
				for _, n := range res.AbortsByCause {
					aborts += n
				}
				if aborts != res.Aborts {
					t.Errorf("seed %d: ΣAbortsByCause = %d but Aborts = %d", seed, aborts, res.Aborts)
				}
				if res.Aborts > 0 && len(res.AbortsByCause) == 0 {
					t.Errorf("seed %d: %d aborts but no causes recorded", seed, res.Aborts)
				}
			})
		}
	}
}

// Under NO_DC nothing blocks, aborts, or restarts, and the fold-by-
// critical-cohort accounting tiles every attempt exactly: the residue
// phase must stay at rounding noise for every committed transaction.
func TestBreakdownResidueZeroNoDC(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	cfg.Breakdown = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	m.bdCheck = func(ld *obs.Ledger, respMs float64) {
		checked++
		if r := math.Abs(ld.Spent(obs.PhaseResidue)); r > 1e-9 {
			t.Errorf("NO_DC commit carries %g ms of residue; the phase accounting is not tiling the attempt", r)
		}
	}
	m.Run()
	if checked < 100 {
		t.Fatalf("only %d commits checked", checked)
	}
}

// Breakdown accounting is pure observation: a run with it enabled must
// produce bit-identical metrics (and a bit-identical Chrome trace) to the
// plain run — same event order, same RNG consumption, same floats to the
// last ulp. This is the golden-safety guarantee: enabling -breakdown can
// never change what the simulation does.
func TestBreakdownPreservesResults(t *testing.T) {
	for _, alg := range cc.Kinds() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(alg)
			cfg.SimTimeMs = 30_000
			cfg.WarmupMs = 5_000
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Breakdown = true
			instr, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if instr.PhaseMeanMs == nil || instr.PhaseP99Ms == nil {
				t.Fatal("breakdown run returned no phase maps")
			}
			// Strip the observation-only fields, then demand bitwise
			// equality of everything else.
			instr.Config.Breakdown = false
			instr.PhaseMeanMs, instr.PhaseP99Ms, instr.AbortsByCause = nil, nil, nil
			if !reflect.DeepEqual(plain, instr) {
				t.Error("enabling breakdown accounting changed the simulation's metrics")
			}
		})
	}
}

// The golden Chrome trace must be byte-identical with breakdown
// accounting enabled: the ledger rides existing events and consumes no
// randomness and no scheduling.
func TestBreakdownGoldenTraceBitIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.json"))
	if err != nil {
		t.Fatalf("%v (regenerate via TestGoldenChromeTrace -update)", err)
	}
	cfg := tinyTraceConfig()
	cfg.Breakdown = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Events(), cfg.NumProcNodes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden Chrome trace diverged with breakdown enabled (%d bytes vs %d)", buf.Len(), len(want))
	}
}

// Machine.Breakdown surfaces the per-class × per-phase and per-node ×
// per-cause detail the Result maps aggregate away; the snapshot must
// agree with the Result on both totals.
func TestBreakdownSnapshotConsistent(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.Breakdown = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	snap := m.Breakdown()
	if snap == nil {
		t.Fatal("Breakdown() returned nil on an accounting-enabled machine")
	}
	if len(snap.Phases) == 0 {
		t.Fatal("snapshot has no phase rows")
	}
	var causes int64
	for _, row := range snap.Causes {
		causes += row.Count
	}
	if causes != res.Aborts {
		t.Errorf("snapshot cause rows sum to %d but Result.Aborts = %d", causes, res.Aborts)
	}
	for _, row := range snap.Phases {
		if row.Count != res.Commits {
			t.Errorf("phase row %q class %d counts %d commits, Result has %d",
				row.Phase, row.Class, row.Count, res.Commits)
		}
	}
	// Disabled machines report no snapshot.
	cfg.Breakdown = false
	m2, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2.Run()
	if m2.Breakdown() != nil {
		t.Error("Breakdown() non-nil on a machine without accounting")
	}
}
