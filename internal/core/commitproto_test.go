package core

import (
	"fmt"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
)

// pinConfig is an uncontested single-terminal machine where per-commit
// message and log-force counts are exact (modulo the transaction in flight
// at the cutoff).
func pinConfig(proto commit.Kind, ways int, writeProb float64) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = cc.NoDC
	cfg.CommitProtocol = proto
	cfg.PartitionWays = ways
	cfg.NumTerminals = 1
	cfg.ThinkTimeMs = 100
	cfg.WriteProb = writeProb
	cfg.ModelLogging = true
	cfg.SimTimeMs = 120_000
	cfg.WarmupMs = 0
	return cfg
}

// checkPerCommit applies the in-flight-transaction tolerance: the attempt
// running at the cutoff contributes up to one transaction's worth of
// partial counts.
func checkPerCommit(t *testing.T, label string, total, commits int64, want float64) {
	t.Helper()
	per := float64(total) / float64(commits)
	if per < want || per > want+(want+1)/float64(commits)+0.5 {
		t.Errorf("%s: %.3f per commit, want %v", label, per, want)
	}
}

// TestCommitProtocolCostPins pins the exact per-commit message and
// forced-log-write complexity of each commit protocol at the machine level
// (N cohorts, no contention, logging modeled).
//
// Update transactions (every cohort writes):
//
//	messages  2PC 6N, PA 6N, PC 5N (no commit acks)
//	forces    2PC/PA N+1 (N prepares + decision), PC N+2 (collecting record)
//
// Read-only transactions (presumed variants vote READ, skip phase two):
//
//	messages  2PC 6N, PA/PC 4N
//	forces    2PC N+1, PA 0, PC 1 (collecting record only)
func TestCommitProtocolCostPins(t *testing.T) {
	type pins struct{ msgs, forces func(n float64) float64 }
	cases := []struct {
		proto     commit.Kind
		writeProb float64
		pins      pins
	}{
		{commit.CentralizedTwoPC, 1, pins{func(n float64) float64 { return 6 * n }, func(n float64) float64 { return n + 1 }}},
		{commit.PresumedAbort, 1, pins{func(n float64) float64 { return 6 * n }, func(n float64) float64 { return n + 1 }}},
		{commit.PresumedCommit, 1, pins{func(n float64) float64 { return 5 * n }, func(n float64) float64 { return n + 2 }}},
		{commit.CentralizedTwoPC, 0, pins{func(n float64) float64 { return 6 * n }, func(n float64) float64 { return n + 1 }}},
		{commit.PresumedAbort, 0, pins{func(n float64) float64 { return 4 * n }, func(n float64) float64 { return 0 }}},
		{commit.PresumedCommit, 0, pins{func(n float64) float64 { return 4 * n }, func(n float64) float64 { return 1 }}},
	}
	for _, tc := range cases {
		for _, ways := range []int{2, 4} {
			label := fmt.Sprintf("%v writeProb=%g ways=%d", tc.proto, tc.writeProb, ways)
			res, err := Run(pinConfig(tc.proto, ways, tc.writeProb))
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits < 20 {
				t.Fatalf("%s: only %d commits", label, res.Commits)
			}
			if res.Aborts != 0 {
				t.Fatalf("%s: %d aborts in an uncontested run", label, res.Aborts)
			}
			n := float64(ways)
			checkPerCommit(t, label+" messages", res.MessagesSent, res.Commits, tc.pins.msgs(n))
			checkPerCommit(t, label+" forces", res.LogForces, res.Commits, tc.pins.forces(n))
			if res.AbortPathLogForces != 0 {
				t.Errorf("%s: %d abort-path forces without aborts", label, res.AbortPathLogForces)
			}
		}
	}
}

// TestCommitProtocolDecisionsUncontended is the cross-protocol property
// test: the commit protocol changes message and logging costs, never
// decisions. Under contention the protocols' different timings change which
// conflicts arise, so identity is asserted where it is well-defined — a
// single terminal (no concurrency at all): every protocol must produce the
// identical stream of (txn, attempt, outcome) decisions, all commits.
func TestCommitProtocolDecisionsUncontended(t *testing.T) {
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO, cc.OPT, cc.O2PL} {
		var streams [][]string
		for _, proto := range commit.Kinds() {
			cfg := DefaultConfig()
			cfg.Algorithm = alg
			cfg.CommitProtocol = proto
			cfg.PartitionWays = 4
			cfg.NumTerminals = 1
			cfg.ThinkTimeMs = 100
			cfg.SimTimeMs = 60_000
			cfg.WarmupMs = 0
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var stream []string
			m.ObserveTxns(func(e TxnEvent) {
				if e.Kind == TxnDecided {
					stream = append(stream, fmt.Sprintf("%d/%d %s", e.Txn, e.Attempt, e.Detail))
				}
			})
			m.Run()
			if len(stream) < 50 {
				t.Fatalf("%v/%v: only %d decisions", alg, proto, len(stream))
			}
			for _, d := range stream {
				if d[len(d)-len("commit"):] != "commit" {
					t.Fatalf("%v/%v: uncontended decision aborted: %s", alg, proto, d)
				}
			}
			streams = append(streams, stream)
		}
		// Runs end at the same simulated cutoff but the protocols spend
		// different time per commit, so only the common prefix is comparable.
		min := len(streams[0])
		for _, s := range streams[1:] {
			if len(s) < min {
				min = len(s)
			}
		}
		for i, s := range streams[1:] {
			for j := 0; j < min; j++ {
				if s[j] != streams[0][j] {
					t.Fatalf("%v: %v decision %d is %q, %v got %q",
						alg, commit.Kinds()[0], j, streams[0][j], commit.Kinds()[i+1], s[j])
				}
			}
		}
	}
}

// TestPresumedVariantsSerializable runs the presumed variants under real
// contention with the serializability auditor on: the cheaper protocols must
// not buy their savings with anomalies, and their abort-path logging must
// match the design (presumed abort never forces on abort, presumed commit
// must force every cohort abort record).
func TestPresumedVariantsSerializable(t *testing.T) {
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.O2PL} {
		for _, proto := range []commit.Kind{commit.PresumedAbort, commit.PresumedCommit} {
			t.Run(fmt.Sprintf("%v-%v", alg, proto), func(t *testing.T) {
				cfg := testConfig(alg)
				cfg.CommitProtocol = proto
				cfg.PagesPerFile = 40
				cfg.ThinkTimeMs = 0
				cfg.Audit = true
				cfg.ModelLogging = true
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Commits < 50 {
					t.Fatalf("only %d commits", res.Commits)
				}
				if res.Aborts == 0 {
					t.Fatal("no aborts: contention not exercised")
				}
				if len(res.AuditViolations) != 0 {
					t.Fatalf("anomalies: %s", res.AuditViolations[0])
				}
				switch proto {
				case commit.PresumedAbort:
					if res.AbortPathLogForces != 0 {
						t.Errorf("presumed abort forced %d abort records", res.AbortPathLogForces)
					}
				case commit.PresumedCommit:
					if res.AbortPathLogForces == 0 {
						t.Error("presumed commit aborted without forcing abort records")
					}
				}
			})
		}
	}
}

// TestCentralizedNeverForcesAbortRecords pins the baseline's abort path:
// centralized 2PC acknowledges aborts but forces nothing for them.
func TestCentralizedNeverForcesAbortRecords(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.ModelLogging = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Fatal("no aborts: contention not exercised")
	}
	if res.AbortPathLogForces != 0 {
		t.Errorf("centralized 2PC forced %d abort records", res.AbortPathLogForces)
	}
}

// TestPreparedDecidedEvents checks the new life-cycle events: every commit
// emits prepared then decided(commit) then committed, in that order, with
// matching attempt numbers.
func TestPreparedDecidedEvents(t *testing.T) {
	cfg := pinConfig(commit.CentralizedTwoPC, 4, 0.25)
	cfg.SimTimeMs = 20_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type state struct{ prepared, decided bool }
	open := map[int64]*state{}
	committed := 0
	m.ObserveTxns(func(e TxnEvent) {
		switch e.Kind {
		case TxnAttemptStarted:
			open[e.Txn] = &state{}
		case TxnPrepared:
			open[e.Txn].prepared = true
		case TxnDecided:
			st := open[e.Txn]
			if e.Detail == "commit" && !st.prepared {
				t.Errorf("txn %d decided commit without preparing", e.Txn)
			}
			st.decided = true
		case TxnCommitted:
			st := open[e.Txn]
			if !st.prepared || !st.decided {
				t.Errorf("txn %d committed without prepared+decided", e.Txn)
			}
			committed++
		}
	})
	m.Run()
	if committed < 20 {
		t.Fatalf("only %d commits observed", committed)
	}
}

// TestLoggingOffNoForcesMachineLevel confirms no protocol counts log forces
// when logging is not modeled.
func TestLoggingOffNoForcesMachineLevel(t *testing.T) {
	for _, proto := range commit.Kinds() {
		cfg := pinConfig(proto, 2, 0.25)
		cfg.ModelLogging = false
		cfg.SimTimeMs = 20_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogForces != 0 || res.AbortPathLogForces != 0 {
			t.Errorf("%v: %d forces (%d abort-path) with logging off", proto, res.LogForces, res.AbortPathLogForces)
		}
	}
}
