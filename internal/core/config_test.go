package core

import (
	"strings"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/fault"
)

func TestDefaultConfigMatchesTable4(t *testing.T) {
	c := DefaultConfig()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"NumProcNodes", float64(c.NumProcNodes), 8},
		{"NumRelations", float64(c.NumRelations), 8},
		{"PartsPerRelation", float64(c.PartsPerRelation), 8},
		{"PagesPerFile", float64(c.PagesPerFile), 300},
		{"NumTerminals", float64(c.NumTerminals), 128},
		{"AvgPagesPerPartition", float64(c.AvgPagesPerPartition), 8},
		{"WriteProb", c.WriteProb, 0.25},
		{"InstPerPage", c.InstPerPage, 8000},
		{"HostMIPS", c.HostMIPS, 10},
		{"ProcMIPS", c.ProcMIPS, 1},
		{"NumDisks", float64(c.NumDisks), 2},
		{"MinDiskMs", c.MinDiskMs, 10},
		{"MaxDiskMs", c.MaxDiskMs, 30},
		{"InstPerUpdate", c.InstPerUpdate, 2000},
		{"InstPerStartup", c.InstPerStartup, 2000},
		{"InstPerMsg", c.InstPerMsg, 1000},
		{"InstPerCCReq", c.InstPerCCReq, 0},
		{"DetectionIntervalMs", c.DetectionIntervalMs, 1000},
	}
	for _, tc := range checks {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v (paper Table 4)", tc.name, tc.got, tc.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	// Database size check: 64 files x 300 pages = 19,200 pages (small DB).
	if c.NumRelations*c.PartsPerRelation*c.PagesPerFile != 19200 {
		t.Error("default database is not the paper's 19,200-page small DB")
	}
}

func TestValidateRejections(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero nodes", func(c *Config) { c.NumProcNodes = 0 }, "NumProcNodes"},
		{"zero relations", func(c *Config) { c.NumRelations = 0 }, "database dimensions"},
		{"zero terminals", func(c *Config) { c.NumTerminals = 0 }, "NumTerminals"},
		{"negative think", func(c *Config) { c.ThinkTimeMs = -1 }, "ThinkTimeMs"},
		{"zero pages per partition", func(c *Config) { c.AvgPagesPerPartition = 0 }, "AvgPagesPerPartition"},
		{"bad write prob", func(c *Config) { c.WriteProb = 1.5 }, "WriteProb"},
		{"zero MIPS", func(c *Config) { c.ProcMIPS = 0 }, "CPU speeds"},
		{"zero disks", func(c *Config) { c.NumDisks = 0 }, "NumDisks"},
		{"bad disk range", func(c *Config) { c.MaxDiskMs = 5 }, "disk time range"},
		{"negative overhead", func(c *Config) { c.InstPerMsg = -1 }, "overheads"},
		{"zero sim time", func(c *Config) { c.SimTimeMs = 0 }, "SimTimeMs"},
		{"warmup too long", func(c *Config) { c.WarmupMs = c.SimTimeMs }, "WarmupMs"},
		{"2PL zero detect", func(c *Config) { c.DetectionIntervalMs = 0 }, "DetectionInterval"},
		{"scaled indivisible", func(c *Config) { c.NumProcNodes = 3 }, "scaled placement"},
		{"ways too big", func(c *Config) { c.PartitionWays = 9 }, "PartitionWays"},
		{"ways indivisible", func(c *Config) { c.PartitionWays = 3 }, "PartitionWays"},
		{"unknown commit protocol", func(c *Config) { c.CommitProtocol = 99 }, "commit protocol"},
		{"deferred locks with presumed abort", func(c *Config) {
			c.ReplicaCount = 2
			c.DeferRemoteWriteLocks = true
			c.CommitProtocol = commit.PresumedAbort
		}, "DeferRemoteWriteLocks"},
		{"strict OPT under 2PL", func(c *Config) { c.StrictOPT = true }, "StrictOPT"},
		{"upgrade locks under BTO", func(c *Config) {
			c.Algorithm = cc.BTO
			c.DetectionIntervalMs = 0
			c.UpgradeWriteLocks = true
		}, "UpgradeWriteLocks"},
		{"lock timeout under BTO", func(c *Config) {
			c.Algorithm = cc.BTO
			c.DetectionIntervalMs = 0
			c.LockWaitTimeoutMs = 1000
		}, "LockWaitTimeoutMs"},
		// Fault-schedule combinations that look configurable but are
		// meaningless or unsupported; see the Faults block in Validate.
		{"faults without logging", func(c *Config) {
			c.ModelLogging = false
			c.Faults = validFaults()
		}, "ModelLogging"},
		{"faults under O2PL", func(c *Config) {
			c.Algorithm = cc.O2PL
			c.CommitProtocol = commit.PresumedAbort
			c.ModelLogging = true
			c.Faults = validFaults()
		}, "O2PL"},
		{"faults with deferred locks", func(c *Config) {
			c.ReplicaCount = 2
			c.DeferRemoteWriteLocks = true
			c.ModelLogging = true
			c.Faults = validFaults()
		}, "DeferRemoteWriteLocks"},
		{"faults with audit", func(c *Config) {
			c.Audit = true
			c.ModelLogging = true
			c.Faults = validFaults()
		}, "Audit"},
		{"faults scheduling nothing", func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true}
		}, "schedules nothing"},
		{"negative MTTF", func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, NodeMTTFMs: -1, HostMTTFMs: 1000, HostMTTRMs: 100}
		}, "MTTF"},
		{"zero MTTR", func(c *Config) {
			c.ModelLogging = true
			f := validFaults()
			f.MTTRMs = 0
			c.Faults = f
		}, "MTTRMs"},
		{"MTTR past sim end", func(c *Config) {
			c.ModelLogging = true
			f := validFaults()
			f.MTTRMs = c.SimTimeMs
			c.Faults = f
		}, "MTTRMs"},
		{"detect after repair", func(c *Config) {
			c.ModelLogging = true
			f := validFaults()
			f.DetectMs = f.MTTRMs + 1
			c.Faults = f
		}, "DetectMs"},
		{"zero host MTTR", func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, HostMTTFMs: 10_000}
		}, "HostMTTRMs"},
		{"drop prob out of range", func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, DropProb: 1, RetransmitDelayMs: 50}
		}, "probabilities"},
		{"drop without retransmit delay", func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, DropProb: 0.01}
		}, "RetransmitDelayMs"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsVariants(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Algorithm = cc.BTO; c.DetectionIntervalMs = 0 },
		func(c *Config) { c.PartitionWays = 1 },
		func(c *Config) { c.PartitionWays = 8 },
		func(c *Config) { c.NumProcNodes = 1 },
		func(c *Config) { c.ExecPattern = Sequential },
		func(c *Config) { c.WarmupMs = 0 },
		func(c *Config) { c.CommitProtocol = commit.PresumedAbort },
		func(c *Config) { c.CommitProtocol = commit.PresumedCommit; c.ModelLogging = true },
		func(c *Config) { c.Algorithm = cc.O2PL; c.CommitProtocol = commit.PresumedAbort },
		func(c *Config) { c.Algorithm = cc.OPT; c.DetectionIntervalMs = 0; c.StrictOPT = true },
		func(c *Config) { c.UpgradeWriteLocks = true },
		func(c *Config) {
			c.ReplicaCount = 2
			c.DeferRemoteWriteLocks = true // centralized 2PC: still allowed
		},
		func(c *Config) { c.ModelLogging = true; c.Faults = validFaults() },
		func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, HostMTTFMs: 10_000, HostMTTRMs: 500}
		},
		func(c *Config) {
			c.ModelLogging = true
			c.Faults = fault.Config{Enabled: true, DropProb: 0.01, DupProb: 0.01, RetransmitDelayMs: 50}
		},
		func(c *Config) {
			// Zero DetectMs is legal: detection at the crash instant.
			c.ModelLogging = true
			f := validFaults()
			f.DetectMs = 0
			c.Faults = f
		},
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("valid variant rejected: %v", err)
		}
	}
}

// validFaults is a fault schedule every gate in Validate accepts (once
// ModelLogging is on).
func validFaults() fault.Config {
	return fault.Config{Enabled: true, NodeMTTFMs: 30_000, MTTRMs: 2_000, DetectMs: 500}
}

func TestExecPatternString(t *testing.T) {
	if Parallel.String() != "parallel" || Sequential.String() != "sequential" {
		t.Error("exec pattern strings wrong")
	}
}
