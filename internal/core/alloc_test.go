package core

import (
	"runtime"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/fault"
)

// TestTxnPathAllocFree pins the steady-state transaction path at zero heap
// allocations, end to end: terminal loop, plan generation, attempt and
// cohort state, typed network envelopes, commit fan-out and votes, lock
// manager traffic, CPU/disk scheduling and the metrics tallies. The warm
// phase grows every pool (attempt states, cohort runs, envelopes, plan
// buffers, event and process pools) to its high-water mark; after that, a
// full measurement window of contended execution — commits, aborts,
// blocking, restarts — must not allocate at all.
//
// The pin runs the default 2PL algorithm under each commit protocol with
// logging modeled (the force-log continuation paths), plus the unlogged
// default, so every protocol variant's message and force chains are
// covered. Every protocol case additionally runs with the time-breakdown
// accounting enabled: the ledger spends, folds, histogram adds and cause
// tallies ride the same pinned path and must stay allocation-free too.
func TestTxnPathAllocFree(t *testing.T) {
	cases := []struct {
		name      string
		proto     commit.Kind
		logging   bool
		breakdown bool
		armed     bool
	}{
		{"2PC-logging", commit.CentralizedTwoPC, true, false, false},
		{"PA-logging", commit.PresumedAbort, true, false, false},
		{"PC-logging", commit.PresumedCommit, true, false, false},
		{"2PC-nologging", commit.CentralizedTwoPC, false, false, false},
		{"2PC-logging-breakdown", commit.CentralizedTwoPC, true, true, false},
		{"PA-logging-breakdown", commit.PresumedAbort, true, true, false},
		{"PC-logging-breakdown", commit.PresumedCommit, true, true, false},
		{"2PC-nologging-breakdown", commit.CentralizedTwoPC, false, true, false},
		// The armed case pins the fault seams themselves: with an injector
		// built but its schedule never firing, the per-attempt and
		// per-cohort registries, in-doubt windows and simulated WAL all
		// ride the transaction path and must be allocation-free in steady
		// state once grown to their high-water marks. (The disabled cases
		// above pin the nil-injector path: Config.Faults zero means no
		// fault state exists at all.)
		{"2PC-logging-faults-armed", commit.CentralizedTwoPC, true, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(cc.TwoPL)
			cfg.CommitProtocol = tc.proto
			cfg.ModelLogging = tc.logging
			cfg.Breakdown = tc.breakdown
			if tc.armed {
				cfg.Faults = fault.Config{
					Enabled:           true,
					NodeMTTFMs:        100 * cfg.SimTimeMs,
					FixedInterFailure: true,
					MTTRMs:            1_000,
					DetectMs:          100,
				}
			}
			cfg.SimTimeMs = 500_000
			cfg.WarmupMs = 10_000
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := m.Sim()
			m.Start()
			// The warm phase grows every pool to its high-water mark. The
			// machine pre-sizes (Reserve) everything whose high-water
			// records would otherwise keep arriving — records thin out as
			// 1/t and never stop — so a few warm minutes suffice for what
			// remains.
			for s.Step(300_000) {
			}
			runtime.GC()
			// Measure up to three consecutive windows and require one with
			// zero allocations. A real transaction-path allocation recurs
			// every few commits and taints every window; the only thing a
			// clean window can miss is the Go runtime's own rare,
			// nondeterministic housekeeping (growing a parked goroutine's
			// sudog pool, GC internals), which is exactly the noise the
			// retry absorbs. testing.AllocsPerRun averages for the same
			// reason; averaging would blur a real once-per-thousand-commits
			// leak, while requiring a fully clean window keeps the pin
			// exact.
			var before, after runtime.MemStats
			var committed, d uint64
			clean := false
			for w := 0; w < 3 && !clean; w++ {
				commitsBefore := m.stats.commits
				runtime.ReadMemStats(&before)
				for s.Step(360_000 + 60_000*float64(w)) {
				}
				runtime.ReadMemStats(&after)
				committed = uint64(m.stats.commits - commitsBefore)
				d = after.Mallocs - before.Mallocs
				if committed < 100 {
					t.Fatalf("only %d commits in the measured window; the pin did not exercise the path", committed)
				}
				clean = d == 0
			}
			s.Shutdown()
			if !clean {
				t.Errorf("%d heap allocations across %d steady-state commits in every window, want a window with 0",
					d, committed)
			}
		})
	}
}
