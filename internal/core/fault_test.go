package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/commit"
	"ddbm/internal/fault"
	"ddbm/internal/obs"
)

// faultConfig is the contended test configuration with a crash schedule
// aggressive enough that every node fails several times inside the run.
func faultConfig(alg cc.Kind, proto commit.Kind, seed int64) Config {
	cfg := testConfig(alg)
	cfg.CommitProtocol = proto
	cfg.ModelLogging = true
	cfg.Seed = seed
	cfg.Faults = fault.Config{
		Enabled:    true,
		NodeMTTFMs: 30_000,
		MTTRMs:     2_000,
		DetectMs:   500,
	}
	// A much hotter schedule (say MTTF 15s across 4 nodes) still makes
	// progress but collapses throughput legitimately: the paper's restart
	// policy waits one mean response time, and outage-inflated responses
	// feed that delay back into itself.
	return cfg
}

// stripFaultObservation zeroes the Result fields that only the fault layer
// produces, so a faulty-but-idle run can be compared bitwise against a
// fault-free one. The in-doubt gauges are genuinely nonzero with an armed
// injector (every yes-vote opens a window; that vulnerability measurement
// needs no crash), and Availability/Goodput are derived fields the
// fault-free run leaves at zero.
func stripFaultObservation(r *Result) {
	r.Config.Faults = fault.Config{}
	r.Availability = 0
	r.GoodputPerSec = 0
	r.InDoubtTimeMs = 0
	r.InDoubtWindows = 0
	r.BlockedInDoubtMs = 0
}

// TestFaultStreamIsolation is the substream regression test: an armed
// injector whose schedule fires nothing inside the run must leave every
// behavioral metric bit-identical to a run with no injector at all — the
// workload and think-time streams saw the exact same draws, the event
// order never shifted, the floats agree to the last ulp. This is the
// guarantee that fault timing comes from dedicated RNG substreams and the
// fault seams in the transaction path are observation-only until a fault
// actually fires.
func TestFaultStreamIsolation(t *testing.T) {
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO, cc.OPT} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(alg)
			cfg.ModelLogging = true
			cfg.SimTimeMs = 30_000
			cfg.WarmupMs = 5_000
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Armed: the first failure of every node lands far beyond the
			// end of the run, so the schedule exists but never fires.
			cfg.Faults = fault.Config{
				Enabled:           true,
				NodeMTTFMs:        100 * cfg.SimTimeMs,
				FixedInterFailure: true,
				MTTRMs:            1_000,
				DetectMs:          100,
			}
			armed, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if armed.Crashes != 0 {
				t.Fatalf("idle schedule crashed %d times", armed.Crashes)
			}
			if armed.Availability != 1 {
				t.Errorf("availability %v with no crashes, want 1", armed.Availability)
			}
			if armed.GoodputPerSec != armed.ThroughputTPS {
				t.Errorf("goodput %v != throughput %v with full availability",
					armed.GoodputPerSec, armed.ThroughputTPS)
			}
			stripFaultObservation(&armed)
			if !reflect.DeepEqual(plain, armed) {
				t.Error("an armed-but-idle injector changed the simulation's metrics; the fault substreams leak into the workload stream")
			}
		})
	}
}

// TestFaultCrashRecoveryEndToEnd drives real crash-repair cycles under
// every commit protocol and checks the system keeps working: transactions
// commit between outages, crashes are counted and attributed, the
// availability and goodput accounting stays inside its definition, and the
// recovery machinery actually ran.
func TestFaultCrashRecoveryEndToEnd(t *testing.T) {
	for _, proto := range commit.Kinds() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := faultConfig(cc.TwoPL, proto, 7)
			cfg.Breakdown = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashes == 0 {
				t.Fatal("no crashes fired; the schedule did not exercise the path")
			}
			if res.Commits < 50 {
				t.Fatalf("only %d commits across the outages; the system is not making progress", res.Commits)
			}
			if res.Availability <= 0 || res.Availability >= 1 {
				t.Errorf("availability %v with %d crashes, want in (0,1)", res.Availability, res.Crashes)
			}
			if res.GoodputPerSec <= res.ThroughputTPS {
				t.Errorf("goodput %v not above raw throughput %v despite downtime",
					res.GoodputPerSec, res.ThroughputTPS)
			}
			if res.RecoveryTimeMs <= 0 {
				t.Errorf("crashes happened but no recovery time accrued")
			}
			if res.InDoubtWindows == 0 {
				t.Error("no in-doubt windows closed in a logged commit run")
			}
			if res.AbortsByCause["node-crash"] == 0 {
				t.Error("crashes aborted nothing attributed to node-crash")
			}
		})
	}
}

// TestFaultAbortCauseAccounting is the accounting property under faults:
// with crashes, detections and recoveries in play, every aborted attempt
// still lands in exactly one cause bucket — ΣAbortsByCause == Aborts,
// exactly, across four protocol variants and three seeds.
func TestFaultAbortCauseAccounting(t *testing.T) {
	variants := []struct {
		name  string
		alg   cc.Kind
		proto commit.Kind
	}{
		{"2PC-2PL", cc.TwoPL, commit.CentralizedTwoPC},
		{"PA-2PL", cc.TwoPL, commit.PresumedAbort},
		{"PC-2PL", cc.TwoPL, commit.PresumedCommit},
		{"2PC-WW", cc.WoundWait, commit.CentralizedTwoPC},
	}
	for _, tc := range variants {
		for _, seed := range []int64{1, 7, 13} {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s-seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := faultConfig(tc.alg, tc.proto, seed)
				cfg.Breakdown = true
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Crashes == 0 {
					t.Fatal("no crashes fired")
				}
				var aborts int64
				for _, n := range res.AbortsByCause {
					aborts += n
				}
				if aborts != res.Aborts {
					t.Errorf("ΣAbortsByCause = %d but Aborts = %d", aborts, res.Aborts)
				}
			})
		}
	}
}

// TestFaultHostFailover crashes the coordinator: in-flight transactions
// abort with the coordinator-crash cause, terminals hold during the
// failover window, and the system resumes afterwards.
func TestFaultHostFailover(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.ModelLogging = true
	cfg.Breakdown = true
	cfg.Faults = fault.Config{
		Enabled:    true,
		HostMTTFMs: 15_000,
		HostMTTRMs: 2_000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no host crashes fired")
	}
	if res.Commits < 50 {
		t.Fatalf("only %d commits across the failovers", res.Commits)
	}
	if res.AbortsByCause["coordinator-crash"] == 0 {
		t.Error("host crashes aborted nothing attributed to coordinator-crash")
	}
	// The host is never down for messaging: availability counts processing
	// nodes only, and no processing node ever crashed.
	if res.Availability != 1 {
		t.Errorf("availability %v, want 1 (host failures are failover, not downtime)", res.Availability)
	}
}

// TestFaultMessageErrors turns on loss and duplication: lost messages are
// counted and retransmitted (the run still commits), duplicates add pure
// load without confusing any protocol state.
func TestFaultMessageErrors(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.ModelLogging = true
	cfg.Faults = fault.Config{
		Enabled:           true,
		DropProb:          0.02,
		DupProb:           0.02,
		RetransmitDelayMs: 50,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesLost == 0 {
		t.Fatal("2% loss over a full run lost nothing")
	}
	if res.Commits < 50 {
		t.Fatalf("only %d commits under message errors", res.Commits)
	}
	if res.Crashes != 0 {
		t.Errorf("message errors crashed %d nodes", res.Crashes)
	}
	if res.Availability != 1 {
		t.Errorf("availability %v under pure message errors, want 1", res.Availability)
	}
}

// TestFaultDisabledGoldenTraceBitIdentical pins the other half of the
// golden-safety contract: with Config.Faults at its zero value no fault
// state is built at all, and the golden Chrome trace — the strictest
// event-order witness the repo has — must stay byte-identical to the seed.
func TestFaultDisabledGoldenTraceBitIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.json"))
	if err != nil {
		t.Fatalf("%v (regenerate via TestGoldenChromeTrace -update)", err)
	}
	cfg := tinyTraceConfig()
	cfg.Faults = fault.Config{}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Events(), cfg.NumProcNodes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden Chrome trace diverged with the fault subsystem compiled in (%d bytes vs %d)", buf.Len(), len(want))
	}
}

// TestFaultTraceHasFaultSpans checks the observability side: a traced
// crashy run emits the crash instant, the down span, the recovery span and
// in-doubt windows under the fault track kind.
func TestFaultTraceHasFaultSpans(t *testing.T) {
	cfg := faultConfig(cc.TwoPL, commit.CentralizedTwoPC, 7)
	cfg.SimTimeMs = 40_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()
	names := map[string]int{}
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindFault || ev.Name == "crash" {
			names[ev.Name]++
		}
	}
	for _, want := range []string{"crash", "down", "recovery", "in-doubt"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q fault event (got %v)", want, names)
		}
	}
}
