package core

import (
	"testing"

	"ddbm/internal/cc"
)

func TestLoggingAddsForceLatency(t *testing.T) {
	// An isolated transaction pays one prepare force (~20 ms, overlapped
	// across cohorts) plus one commit-record force (~20 ms) — response
	// must rise by roughly that much and never fall.
	base := testConfig(cc.NoDC)
	base.NumTerminals = 1
	base.ThinkTimeMs = 200
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	logged := base
	logged.ModelLogging = true
	on, err := Run(logged)
	if err != nil {
		t.Fatal(err)
	}
	diff := on.MeanResponseMs - off.MeanResponseMs
	if diff < 25 || diff > 120 {
		t.Errorf("logging added %.1f ms to an idle transaction, want ~40 (two forces)", diff)
	}
}

func TestLoggingAllAlgorithmsStillCorrect(t *testing.T) {
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO, cc.OPT} {
		cfg := testConfig(alg)
		cfg.PagesPerFile = 40
		cfg.ThinkTimeMs = 0
		cfg.ModelLogging = true
		cfg.Audit = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits < 50 {
			t.Fatalf("%v with logging: %d commits", alg, res.Commits)
		}
		if alg != cc.OPT && len(res.AuditViolations) != 0 {
			t.Fatalf("%v with logging anomalies: %s", alg, res.AuditViolations[0])
		}
	}
}

func TestLoggingRaisesDiskLoad(t *testing.T) {
	// Use a lightly loaded system: at saturation the closed loop clamps
	// utilization and the extra force disappears into the queue.
	base := testConfig(cc.NoDC)
	base.ThinkTimeMs = 20000
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	logged := base
	logged.ModelLogging = true
	on, err := Run(logged)
	if err != nil {
		t.Fatal(err)
	}
	if on.ProcDiskUtil <= off.ProcDiskUtil {
		t.Errorf("prepare forces did not raise disk utilization: %v vs %v",
			off.ProcDiskUtil, on.ProcDiskUtil)
	}
}
