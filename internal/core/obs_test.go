package core

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// tinyTraceConfig is the 2-node, 4-terminal run used for the golden
// Chrome-trace file: small enough that the trace stays reviewable, busy
// enough to exercise every span kind.
func tinyTraceConfig() Config {
	cfg := DefaultConfig()
	cfg.Algorithm = cc.TwoPL
	cfg.NumProcNodes = 2
	cfg.NumTerminals = 4
	cfg.PagesPerFile = 50
	cfg.ThinkTimeMs = 50
	cfg.SimTimeMs = 300
	cfg.WarmupMs = 0
	cfg.Seed = 3
	return cfg
}

// Tracing and probing are pure observation: an instrumented run must
// produce a bit-identical Result to the plain run (same floats to the
// last ulp, not just statistically close).
func TestTracingPreservesResults(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.SimTimeMs = 30_000
	cfg.WarmupMs = 5_000

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	ts := m.EnableProbes(50)
	traced := m.Run()

	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing perturbed the run:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if ts.Len() == 0 {
		t.Fatal("probes recorded nothing")
	}
}

// A real traced run must export a structurally valid Chrome trace —
// parseable JSON, properly nested tracks, cohort/CC/commit-phase spans
// inside their attempt spans — and cover the whole span taxonomy.
func TestTraceStructure(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.SimTimeMs = 10_000
	cfg.WarmupMs = 1_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()

	kinds := map[obs.Kind]bool{}
	names := map[string]bool{}
	for _, e := range tr.Events() {
		kinds[e.Kind] = true
		names[e.Name] = true
	}
	for k := obs.KindTxn; k <= obs.KindInstant; k++ {
		if !kinds[k] {
			t.Errorf("no %v events recorded", k)
		}
	}
	for _, n := range []string{"attempt", "cohort", "cc-wait", "prepare", "decide", "resolve", "msg", "cpu", "read", "write", "submitted", "committed", "aborted"} {
		if !names[n] {
			t.Errorf("no %q events recorded", n)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Events(), cfg.NumProcNodes); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("traced run fails structural validation: %v", err)
	}
}

// The probe time series must reproduce the end-of-run utilization
// aggregates within rounding: the mean of the sampled per-window
// utilizations over the measurement interval approximates the warmup-
// adjusted busy-time ratio (the only differences are the unsampled tail
// after the final probe and disk busy credit landing at completion).
func TestProbesMatchAggregates(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := m.EnableProbes(100)
	res := m.Run()
	end := m.Sim().Now()

	if ts.Len() < 100 {
		t.Fatalf("only %d samples; expected hundreds over a %vms run", ts.Len(), cfg.SimTimeMs)
	}
	for i := 0; i < cfg.NumProcNodes; i++ {
		cpu := ts.MeanCPUUtil(i, cfg.WarmupMs, end)
		if d := math.Abs(cpu - res.PerNodeCPUUtil[i]); d > 0.02 {
			t.Errorf("node %d sampled CPU util %.4f vs aggregate %.4f (Δ %.4f)", i, cpu, res.PerNodeCPUUtil[i], d)
		}
		disk := ts.MeanDiskUtil(i, cfg.WarmupMs, end)
		if d := math.Abs(disk - res.PerNodeDiskUtil[i]); d > 0.03 {
			t.Errorf("node %d sampled disk util %.4f vs aggregate %.4f (Δ %.4f)", i, disk, res.PerNodeDiskUtil[i], d)
		}
	}
	host := ts.MeanCPUUtil(cfg.NumProcNodes, cfg.WarmupMs, end)
	if d := math.Abs(host - res.HostCPUUtil); d > 0.02 {
		t.Errorf("host sampled CPU util %.4f vs aggregate %.4f (Δ %.4f)", host, res.HostCPUUtil, d)
	}

	// Gauge sanity: under 2PL contention the samples must catch work in
	// flight — cohorts active, locks held, and at least one blocked cohort.
	var sawActive, sawLocks, sawBlocked, sawQueue bool
	for i := 0; i < cfg.NumProcNodes; i++ {
		ns := &ts.Nodes[i]
		for j := range ts.Times {
			sawActive = sawActive || ns.ActiveCohorts[j] > 0
			sawLocks = sawLocks || ns.LockTableSize[j] > 0
			sawBlocked = sawBlocked || ns.BlockedTxns[j] > 0
			sawQueue = sawQueue || ns.ReadyQueue[j] > 0
		}
	}
	if !sawActive || !sawLocks || !sawBlocked || !sawQueue {
		t.Errorf("gauges flat over the whole run: active=%v locks=%v blocked=%v queue=%v",
			sawActive, sawLocks, sawBlocked, sawQueue)
	}
}

// The golden Chrome trace pins the exporter's byte-for-byte output for a
// tiny deterministic run. Regenerate with
//
//	go test ./internal/core -run TestGoldenChromeTrace -update
//
// only for a deliberate model or exporter change.
func TestGoldenChromeTrace(t *testing.T) {
	cfg := tinyTraceConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Events(), cfg.NumProcNodes); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("golden run fails structural validation: %v", err)
	}

	path := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes, %d events)", path, buf.Len(), tr.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden Chrome trace diverged (%d bytes vs %d); the sim is deterministic, so this means the model or the exporter changed — regenerate with -update if deliberate", buf.Len(), len(want))
	}
}

// JSONL round-trips a real machine trace, not just handcrafted events.
func TestMachineTraceJSONLRoundTrip(t *testing.T) {
	cfg := tinyTraceConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.EnableTracing()
	m.Run()

	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events()) {
		t.Fatal("JSONL round trip of a machine trace lost information")
	}
}
