package core

import (
	"testing"

	"ddbm/internal/cc"
)

// auditConfig creates heavy contention so the auditor has real conflicts to
// certify: a tiny database, no think time.
func auditConfig(alg cc.Kind) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = 4
	cfg.NumTerminals = 24
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.SimTimeMs = 50_000
	cfg.WarmupMs = 5_000
	cfg.Seed = 11
	cfg.Audit = true
	return cfg
}

func TestSerializabilityLockingAndBTO(t *testing.T) {
	// Strict 2PL, wound-wait and basic timestamp ordering must produce
	// histories equivalent to their serialization stamps — zero anomalies.
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(auditConfig(alg))
			if err != nil {
				t.Fatal(err)
			}
			if res.AuditedTxns < 100 {
				t.Fatalf("only %d audited transactions; raise contention horizon", res.AuditedTxns)
			}
			if res.Aborts == 0 {
				t.Fatal("no conflicts occurred; the audit certifies nothing interesting")
			}
			if len(res.AuditViolations) != 0 {
				t.Fatalf("%v produced %d serializability anomalies, e.g. %s",
					alg, len(res.AuditViolations), res.AuditViolations[0])
			}
		})
	}
}

func TestSerializabilityStrictOPT(t *testing.T) {
	cfg := auditConfig(cc.OPT)
	cfg.StrictOPT = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditedTxns < 100 || res.Aborts == 0 {
		t.Fatalf("weak audit: %d txns, %d aborts", res.AuditedTxns, res.Aborts)
	}
	if len(res.AuditViolations) != 0 {
		t.Fatalf("strict OPT produced anomalies: %s", res.AuditViolations[0])
	}
}

func TestNoDCViolatesUnderContention(t *testing.T) {
	// The no-concurrency-control baseline must show anomalies under heavy
	// conflict — this proves the auditor has teeth.
	res, err := Run(auditConfig(cc.NoDC))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AuditViolations) == 0 {
		t.Fatal("NO_DC under heavy contention produced a serializable history; auditor is blind")
	}
}

func TestPaperOPTWindowObservable(t *testing.T) {
	// The paper-faithful OPT read certification admits a narrow
	// certify/commit window (see internal/cc/opt). We don't require the
	// window to be hit at any particular seed — only that strict mode is
	// never worse than paper mode.
	paper, err := Run(auditConfig(cc.OPT))
	if err != nil {
		t.Fatal(err)
	}
	strictCfg := auditConfig(cc.OPT)
	strictCfg.StrictOPT = true
	strict, err := Run(strictCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.AuditViolations) > len(paper.AuditViolations) {
		t.Errorf("strict OPT has more anomalies (%d) than paper mode (%d)",
			len(strict.AuditViolations), len(paper.AuditViolations))
	}
	t.Logf("paper-mode OPT anomalies: %d over %d txns (strict: %d)",
		len(paper.AuditViolations), paper.AuditedTxns, len(strict.AuditViolations))
}

func TestAuditOffByDefault(t *testing.T) {
	cfg := auditConfig(cc.TwoPL)
	cfg.Audit = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditedTxns != 0 || res.AuditViolations != nil {
		t.Error("audit data present with auditing disabled")
	}
}
