package core

import (
	"math"
	"testing"

	"ddbm/internal/cc"
)

// testConfig returns a small-but-contended configuration that runs in well
// under a second of real time.
func testConfig(alg cc.Kind) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = 4
	cfg.NumTerminals = 32
	cfg.PagesPerFile = 60 // tighten contention so aborts actually occur
	cfg.ThinkTimeMs = 1000
	cfg.SimTimeMs = 60_000
	cfg.WarmupMs = 10_000
	cfg.Seed = 7
	return cfg
}

func TestEndToEndAllAlgorithms(t *testing.T) {
	for _, alg := range cc.Kinds() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(testConfig(alg))
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits < 50 {
				t.Fatalf("only %d commits; the system is not making progress", res.Commits)
			}
			if res.MeanResponseMs <= 0 {
				t.Fatal("non-positive mean response time")
			}
			if res.ThroughputTPS <= 0 {
				t.Fatal("non-positive throughput")
			}
			for i, u := range res.PerNodeCPUUtil {
				if u < 0 || u > 1.0001 {
					t.Errorf("node %d CPU utilization %v out of range", i, u)
				}
			}
			for i, u := range res.PerNodeDiskUtil {
				if u < 0 || u > 1.0001 {
					t.Errorf("node %d disk utilization %v out of range", i, u)
				}
			}
			if res.HostCPUUtil < 0 || res.HostCPUUtil > 1.0001 {
				t.Errorf("host CPU utilization %v out of range", res.HostCPUUtil)
			}
			if res.MessagesSent == 0 {
				t.Error("no messages in a distributed run")
			}
			if alg == cc.NoDC && res.Aborts != 0 {
				t.Errorf("NO_DC aborted %d times", res.Aborts)
			}
			if alg == cc.OPT && res.BlockCount != 0 {
				t.Errorf("OPT blocked %d times; it must never block", res.BlockCount)
			}
			// Little's law sanity: N = X * (R + Z), within 25% (finite run).
			n := res.ThroughputTPS * (res.MeanResponseMs + res.Config.ThinkTimeMs) / 1000
			if math.Abs(n-32) > 8 {
				t.Errorf("Little's law violated: X*(R+Z) = %.1f, terminals = 32", n)
			}
		})
	}
}

func TestContentionCausesAborts(t *testing.T) {
	// With a tiny database, every algorithm except NO_DC must abort
	// sometimes — and the aborting algorithms still make progress.
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO, cc.OPT} {
		cfg := testConfig(alg)
		cfg.PagesPerFile = 25
		cfg.ThinkTimeMs = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborts == 0 {
			t.Errorf("%v: no aborts under extreme contention", alg)
		}
		if res.Commits == 0 {
			t.Errorf("%v: no commits under extreme contention (livelock?)", alg)
		}
	}
}

func TestNoContentionNoAborts(t *testing.T) {
	// A single terminal can never conflict with anyone: all algorithms
	// must run abort-free and block-free.
	for _, alg := range cc.Kinds() {
		cfg := testConfig(alg)
		cfg.NumTerminals = 1
		cfg.ThinkTimeMs = 100
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborts != 0 {
			t.Errorf("%v: %d aborts with a single terminal", alg, res.Aborts)
		}
		if res.BlockCount != 0 {
			t.Errorf("%v: %d blocking episodes with a single terminal", alg, res.BlockCount)
		}
		if res.Commits == 0 {
			t.Errorf("%v: no commits", alg)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, alg := range []cc.Kind{cc.TwoPL, cc.OPT} {
		a, err := Run(testConfig(alg))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(testConfig(alg))
		if err != nil {
			t.Fatal(err)
		}
		if a.Commits != b.Commits || a.Aborts != b.Aborts ||
			a.MeanResponseMs != b.MeanResponseMs || a.MessagesSent != b.MessagesSent {
			t.Errorf("%v: runs with identical seeds diverge: %+v vs %+v",
				alg, a.Commits, b.Commits)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	a, _ := Run(cfg)
	cfg.Seed = 99
	b, _ := Run(cfg)
	if a.MeanResponseMs == b.MeanResponseMs && a.Commits == b.Commits {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestSequentialSlowerThanParallelWhenIdle(t *testing.T) {
	// A single transaction at a time: parallel cohorts cut response time
	// substantially vs sequential cohorts.
	base := DefaultConfig()
	base.NumProcNodes = 8
	base.PartitionWays = 8
	base.NumTerminals = 1
	base.ThinkTimeMs = 500
	base.SimTimeMs = 120_000
	base.WarmupMs = 10_000
	base.Algorithm = cc.TwoPL

	par := base
	par.ExecPattern = Parallel
	seq := base
	seq.ExecPattern = Sequential
	rp, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if rp.MeanResponseMs*2 > rs.MeanResponseMs {
		t.Errorf("parallel %v ms vs sequential %v ms: expected >2x gap for 8 cohorts",
			rp.MeanResponseMs, rs.MeanResponseMs)
	}
}

func TestSingleNodeNoNetworkForData(t *testing.T) {
	// A 1-node machine still exchanges coordinator/cohort messages (host
	// to node), so messages are nonzero, but cohort counts equal one per
	// transaction.
	cfg := testConfig(cc.TwoPL)
	cfg.NumProcNodes = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || res.MessagesSent == 0 {
		t.Fatal("1-node machine did not run")
	}
}

func TestUtilizationIncreasesWithLoad(t *testing.T) {
	light := testConfig(cc.NoDC)
	light.ThinkTimeMs = 20_000
	heavy := testConfig(cc.NoDC)
	heavy.ThinkTimeMs = 0
	rl, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if rh.ProcDiskUtil <= rl.ProcDiskUtil {
		t.Errorf("disk utilization did not rise with load: %v vs %v",
			rl.ProcDiskUtil, rh.ProcDiskUtil)
	}
	if rh.MeanResponseMs <= rl.MeanResponseMs {
		t.Errorf("response time did not rise with load: %v vs %v",
			rl.MeanResponseMs, rh.MeanResponseMs)
	}
}

func TestResponseAbovePhysicalMinimum(t *testing.T) {
	// Every transaction reads >= 4 pages per partition from each of its
	// cohorts' disks; with 8 partitions over 4 nodes each cohort does >= 8
	// reads at >= 10 ms sequentially. Response can never beat that.
	res, err := Run(testConfig(cc.NoDC))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponseMs < 80 {
		t.Errorf("mean response %v ms below the physical floor", res.MeanResponseMs)
	}
}

func TestMachineAccessors(t *testing.T) {
	m, err := NewMachine(testConfig(cc.BTO))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sim() == nil || m.Catalog() == nil {
		t.Fatal("nil accessors")
	}
	if m.Manager(0) == nil || m.Manager(3) == nil {
		t.Fatal("nil managers")
	}
	if m.Manager(0).Kind() != cc.BTO {
		t.Fatal("wrong manager kind")
	}
}

func TestNewMachineRejectsBadConfig(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.NumTerminals = 0
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted bad config")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	cfg := testConfig(cc.Kind(42))
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAbortRatioConsistent(t *testing.T) {
	cfg := testConfig(cc.OPT)
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Aborts) / float64(res.Commits)
	if math.Abs(res.AbortRatio-want) > 1e-9 {
		t.Errorf("abort ratio %v, want %v", res.AbortRatio, want)
	}
	if res.MeanRestarts < 0 {
		t.Error("negative restart count")
	}
}

func TestBlockingTimeMeasuredForLocking(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockCount == 0 || res.MeanBlockMs <= 0 {
		t.Error("2PL under contention recorded no blocking")
	}
}

func TestMeasuredWindow(t *testing.T) {
	cfg := testConfig(cc.NoDC)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeasuredMs-(cfg.SimTimeMs-cfg.WarmupMs)) > 1e-6 {
		t.Errorf("measured window %v, want %v", res.MeasuredMs, cfg.SimTimeMs-cfg.WarmupMs)
	}
}

func TestActiveTxnsBounded(t *testing.T) {
	cfg := testConfig(cc.TwoPL)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgActiveTxns < 0 || res.AvgActiveTxns > float64(cfg.NumTerminals) {
		t.Errorf("average active transactions %v outside [0, %d]", res.AvgActiveTxns, cfg.NumTerminals)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	m, err := NewMachine(testConfig(cc.TwoPL))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if n := m.Sim().LiveProcs(); n != 0 {
		t.Errorf("%d simulation processes leaked after Run", n)
	}
}
