package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ddbm/internal/cc"
)

// TestRandomConfigInvariants drives the whole machine over randomized
// small configurations and asserts the invariants that must hold for any
// of them: progress, Little's law, bounded utilizations, no process leaks,
// consistent abort accounting, and (for the safe algorithms) serializable
// histories.
func TestRandomConfigInvariants(t *testing.T) {
	algos := cc.Kinds()
	f := func(seed int64, a, nodes8, ways8, terms8, think8, pages8, repl8 uint8) bool {
		alg := algos[int(a)%len(algos)]
		cfg := DefaultConfig()
		cfg.Algorithm = alg
		cfg.Seed = seed
		cfg.NumProcNodes = []int{1, 2, 4, 8}[nodes8%4]
		if ways := int(ways8) % (cfg.NumProcNodes + 1); ways > 0 && 8%ways == 0 && ways <= cfg.NumProcNodes {
			cfg.PartitionWays = ways
		} else {
			cfg.PartitionWays = 0
			if 8%cfg.NumProcNodes != 0 {
				cfg.NumProcNodes = 4
			}
		}
		cfg.NumTerminals = int(terms8%24) + 2
		cfg.ThinkTimeMs = float64(think8%16) * 250
		cfg.PagesPerFile = int(pages8%200) + 40
		cfg.ReplicaCount = int(repl8%2) + 1
		if cfg.ReplicaCount > cfg.NumProcNodes {
			cfg.ReplicaCount = cfg.NumProcNodes
		}
		cfg.SimTimeMs = 30_000
		cfg.WarmupMs = 6_000
		cfg.Audit = true

		m, err := NewMachine(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		res := m.Run()

		if res.Commits == 0 {
			t.Logf("%v: no commits (cfg %+v)", alg, cfg)
			return false
		}
		if m.Sim().LiveProcs() != 0 {
			t.Logf("%v: leaked %d processes", alg, m.Sim().LiveProcs())
			return false
		}
		for _, u := range append(append([]float64{}, res.PerNodeCPUUtil...), res.PerNodeDiskUtil...) {
			if u < 0 || u > 1.0001 {
				t.Logf("%v: utilization %v out of range", alg, u)
				return false
			}
		}
		// Little's law within generous tolerance for a 30 s window.
		n := res.ThroughputTPS * (res.MeanResponseMs + cfg.ThinkTimeMs) / 1000
		if n > float64(cfg.NumTerminals)*1.5+2 {
			t.Logf("%v: Little's law broken: %v vs %d terminals", alg, n, cfg.NumTerminals)
			return false
		}
		if math.Abs(res.AbortRatio-float64(res.Aborts)/float64(res.Commits)) > 1e-9 {
			t.Logf("%v: abort ratio inconsistent", alg)
			return false
		}
		if alg != cc.OPT && alg != cc.NoDC && len(res.AuditViolations) != 0 {
			t.Logf("%v: serializability anomaly: %s", alg, res.AuditViolations[0])
			return false
		}
		return true
	}
	cfgq := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(99)),
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}
