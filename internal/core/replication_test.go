package core

import (
	"testing"

	"ddbm/internal/cc"
)

func replConfig(alg cc.Kind, replicas int) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = 4
	cfg.ReplicaCount = replicas
	cfg.NumTerminals = 24
	cfg.PagesPerFile = 60
	cfg.ThinkTimeMs = 1000
	cfg.SimTimeMs = 60_000
	cfg.WarmupMs = 10_000
	cfg.Seed = 13
	return cfg
}

func TestReplicationRunsAllAlgorithms(t *testing.T) {
	for _, alg := range cc.Kinds() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(replConfig(alg, 2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits < 50 {
				t.Fatalf("only %d commits with replication", res.Commits)
			}
		})
	}
}

func TestReplicationCostsMoreThanNone(t *testing.T) {
	// Write-all makes updates more expensive: more disk writes, more
	// cohorts, more messages — response must rise with the replica count.
	r1, err := Run(replConfig(cc.TwoPL, 1))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(replConfig(cc.TwoPL, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r3.MeanResponseMs <= r1.MeanResponseMs {
		t.Errorf("3 copies (%v ms) not slower than 1 copy (%v ms)",
			r3.MeanResponseMs, r1.MeanResponseMs)
	}
	m1 := float64(r1.MessagesSent) / float64(r1.Commits)
	m3 := float64(r3.MessagesSent) / float64(r3.Commits)
	if m3 <= m1 {
		t.Errorf("messages per commit did not rise with replication: %v vs %v", m1, m3)
	}
}

func TestReplicationSerializable(t *testing.T) {
	// Read-one/write-all with each algorithm stays serializable under the
	// auditor (per-copy version tracking).
	for _, alg := range []cc.Kind{cc.TwoPL, cc.WoundWait, cc.BTO} {
		cfg := replConfig(alg, 2)
		cfg.PagesPerFile = 40
		cfg.ThinkTimeMs = 0
		cfg.Audit = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborts == 0 {
			t.Errorf("%v: no conflicts; audit is vacuous", alg)
		}
		if len(res.AuditViolations) != 0 {
			t.Errorf("%v with replication: %d anomalies, e.g. %s",
				alg, len(res.AuditViolations), res.AuditViolations[0])
		}
	}
}

func TestDeferredWriteLocksRun(t *testing.T) {
	cfg := replConfig(cc.TwoPL, 2)
	cfg.DeferRemoteWriteLocks = true
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits < 50 {
		t.Fatalf("deferred-lock 2PL made no progress: %d commits", res.Commits)
	}
}

func TestDeferredWriteLocksSerializable(t *testing.T) {
	cfg := replConfig(cc.TwoPL, 2)
	cfg.DeferRemoteWriteLocks = true
	cfg.PagesPerFile = 40
	cfg.ThinkTimeMs = 0
	cfg.Audit = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AuditViolations) != 0 {
		t.Fatalf("deferred-lock 2PL anomalies: %s", res.AuditViolations[0])
	}
}

func TestDeferredWriteLocksShortenBlocking(t *testing.T) {
	// The whole point of [Care89]: remote-copy write locks held only from
	// prepare to commit instead of from access to commit. Hold times drop,
	// so blocking (and with it response time under write contention)
	// should not be worse than the immediate scheme.
	base := replConfig(cc.TwoPL, 3)
	base.PagesPerFile = 40
	base.ThinkTimeMs = 0
	base.WriteProb = 0.5 // make remote-copy write locks the contention source
	imm := base
	def := base
	def.DeferRemoteWriteLocks = true
	ri, err := Run(imm)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if rd.ThroughputTPS < ri.ThroughputTPS*0.9 {
		t.Errorf("deferred locks markedly hurt throughput: %v vs %v tps",
			rd.ThroughputTPS, ri.ThroughputTPS)
	}
	t.Logf("immediate: %.2f tps, block %.0f ms; deferred: %.2f tps, block %.0f ms",
		ri.ThroughputTPS, ri.MeanBlockMs, rd.ThroughputTPS, rd.MeanBlockMs)
}

func TestDeferValidation(t *testing.T) {
	cfg := replConfig(cc.OPT, 2)
	cfg.DeferRemoteWriteLocks = true
	if _, err := NewMachine(cfg); err == nil {
		t.Error("deferred locks accepted for non-2PL algorithm")
	}
	cfg2 := replConfig(cc.TwoPL, 1)
	cfg2.DeferRemoteWriteLocks = true
	if _, err := NewMachine(cfg2); err == nil {
		t.Error("deferred locks accepted without replication")
	}
	cfg3 := replConfig(cc.TwoPL, 9)
	if _, err := NewMachine(cfg3); err == nil {
		t.Error("replica count above node count accepted")
	}
}
