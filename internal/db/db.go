// Package db models the database of a distributed database machine as a
// collection of files (paper §3.1, Table 1). A file represents one
// horizontal partition of a relation; the mapping of files to processing
// nodes determines the degree of intra-transaction parallelism.
package db

import "fmt"

// PageID names one page of one file.
type PageID struct {
	File int
	Page int
}

func (p PageID) String() string { return fmt.Sprintf("f%d:p%d", p.File, p.Page) }

// Catalog describes the database: NumRelations relations horizontally
// partitioned into PartsPerRelation files each, every file PagesPerFile
// pages, with FileNode mapping each file to its primary processing node.
// When files are replicated ([Care88]'s read-one/write-all model),
// FileReplicas lists every node holding a copy, primary first; a nil
// FileReplicas means no replication.
type Catalog struct {
	NumRelations     int
	PartsPerRelation int
	PagesPerFile     int
	FileNode         []int   // file index -> primary processing node id
	FileReplicas     [][]int // file index -> all copy holders (primary first); nil if unreplicated
}

// NumFiles returns the total file count.
func (c *Catalog) NumFiles() int { return c.NumRelations * c.PartsPerRelation }

// TotalPages returns the database size in pages.
func (c *Catalog) TotalPages() int { return c.NumFiles() * c.PagesPerFile }

// FileOf returns the file index of partition part of relation rel.
func (c *Catalog) FileOf(rel, part int) int { return rel*c.PartsPerRelation + part }

// NodeOf returns the primary processing node storing the given file (the
// copy transactions read).
func (c *Catalog) NodeOf(file int) int { return c.FileNode[file] }

// Replicas returns every node holding a copy of the file, primary first.
func (c *Catalog) Replicas(file int) []int {
	if c.FileReplicas == nil {
		return []int{c.FileNode[file]} //ddbmlint:allow hotpath-alloc unreplicated-catalog branch; hot callers guard with ReplicaCount() > 1
	}
	return c.FileReplicas[file]
}

// ReplicaCount returns the number of copies of each file (1 = unreplicated).
func (c *Catalog) ReplicaCount() int {
	if c.FileReplicas == nil || len(c.FileReplicas) == 0 {
		return 1
	}
	return len(c.FileReplicas[0])
}

// Replicate adds copies of every file so each is held by n nodes: copy r of
// a file with primary node p lives on node (p+r) mod numNodes. n must be in
// [1, numNodes]; n = 1 clears replication.
func (c *Catalog) Replicate(n, numNodes int) error {
	if n < 1 || n > numNodes {
		return fmt.Errorf("db: replica count %d out of range for %d nodes", n, numNodes)
	}
	if n == 1 {
		c.FileReplicas = nil
		return nil
	}
	c.FileReplicas = make([][]int, c.NumFiles())
	for f := 0; f < c.NumFiles(); f++ {
		copies := make([]int, n)
		for r := 0; r < n; r++ {
			copies[r] = (c.FileNode[f] + r) % numNodes
		}
		c.FileReplicas[f] = copies
	}
	return nil
}

// RelationNodes returns, for relation rel, the ordered list of distinct
// nodes holding its partitions and the partitions stored at each. The order
// follows partition order, which is also the cohort execution order for
// sequential transactions.
func (c *Catalog) RelationNodes(rel int) (nodes []int, partsAt map[int][]int) {
	partsAt = make(map[int][]int) //ddbmlint:allow hotpath-alloc called once per relation; workload.Generator caches the result
	seen := make(map[int]bool)    //ddbmlint:allow hotpath-alloc called once per relation; see above
	for part := 0; part < c.PartsPerRelation; part++ {
		n := c.FileNode[c.FileOf(rel, part)]
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n) //ddbmlint:allow hotpath-alloc called once per relation; see above
		}
		partsAt[n] = append(partsAt[n], part) //ddbmlint:allow hotpath-alloc called once per relation; see above
	}
	return nodes, partsAt
}

// Validate checks internal consistency against a machine with numNodes
// processing nodes.
func (c *Catalog) Validate(numNodes int) error {
	if c.NumRelations < 1 || c.PartsPerRelation < 1 || c.PagesPerFile < 1 {
		return fmt.Errorf("db: catalog dimensions must be positive, got %d relations, %d partitions, %d pages",
			c.NumRelations, c.PartsPerRelation, c.PagesPerFile)
	}
	if len(c.FileNode) != c.NumFiles() {
		return fmt.Errorf("db: FileNode has %d entries, want %d", len(c.FileNode), c.NumFiles())
	}
	for f, n := range c.FileNode {
		if n < 0 || n >= numNodes {
			return fmt.Errorf("db: file %d placed on node %d, machine has %d nodes", f, n, numNodes)
		}
	}
	if c.FileReplicas != nil {
		if len(c.FileReplicas) != c.NumFiles() {
			return fmt.Errorf("db: FileReplicas has %d entries, want %d", len(c.FileReplicas), c.NumFiles())
		}
		for f, copies := range c.FileReplicas {
			if len(copies) == 0 || copies[0] != c.FileNode[f] {
				return fmt.Errorf("db: file %d replicas must lead with the primary", f)
			}
			seen := make(map[int]bool, len(copies))
			for _, n := range copies {
				if n < 0 || n >= numNodes {
					return fmt.Errorf("db: file %d copy on node %d, machine has %d nodes", f, n, numNodes)
				}
				if seen[n] {
					return fmt.Errorf("db: file %d has two copies on node %d", f, n)
				}
				seen[n] = true
			}
		}
	}
	return nil
}

// PlaceScaled builds the machine-size-scaling placement of §4.2: each
// relation's partitions are spread in contiguous blocks across all numNodes
// processing nodes (1 node: everything local; 4 nodes: partitions 1-2 on S1,
// 3-4 on S2, ...; 8 nodes: partition j on Sj). numNodes must divide
// PartsPerRelation.
func PlaceScaled(numRelations, partsPerRel, pagesPerFile, numNodes int) (*Catalog, error) {
	if numNodes < 1 || partsPerRel%numNodes != 0 {
		return nil, fmt.Errorf("db: %d nodes must divide %d partitions per relation", numNodes, partsPerRel)
	}
	block := partsPerRel / numNodes
	c := &Catalog{NumRelations: numRelations, PartsPerRelation: partsPerRel, PagesPerFile: pagesPerFile}
	c.FileNode = make([]int, c.NumFiles())
	for rel := 0; rel < numRelations; rel++ {
		for part := 0; part < partsPerRel; part++ {
			c.FileNode[c.FileOf(rel, part)] = part / block
		}
	}
	return c, nil
}

// PlacePartitioned builds the declustering placements of §4.3/§4.4 on a
// machine with numNodes processing nodes: each relation is split "ways"
// ways, its partitions stored in equal groups on ways consecutive nodes
// starting at the relation's home node (relation i's group g lives on node
// (i+g) mod numNodes). With 8 relations on 8 nodes every node stores exactly
// 8 partitions regardless of ways, so total load stays balanced while
// per-transaction parallelism varies — exactly the paper's design.
//
// ways=1 reproduces "1-Way Partitioning" (relation i entirely on node i,
// sequential execution); ways=8 reproduces "8-Way Partitioning".
func PlacePartitioned(numRelations, partsPerRel, pagesPerFile, numNodes, ways int) (*Catalog, error) {
	if ways < 1 || ways > numNodes {
		return nil, fmt.Errorf("db: ways=%d out of range for %d nodes", ways, numNodes)
	}
	if partsPerRel%ways != 0 {
		return nil, fmt.Errorf("db: ways=%d must divide %d partitions per relation", ways, partsPerRel)
	}
	group := partsPerRel / ways
	c := &Catalog{NumRelations: numRelations, PartsPerRelation: partsPerRel, PagesPerFile: pagesPerFile}
	c.FileNode = make([]int, c.NumFiles())
	for rel := 0; rel < numRelations; rel++ {
		for part := 0; part < partsPerRel; part++ {
			g := part / group
			c.FileNode[c.FileOf(rel, part)] = (rel + g) % numNodes
		}
	}
	return c, nil
}
