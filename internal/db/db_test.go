package db

import (
	"testing"
	"testing/quick"
)

func TestCatalogBasics(t *testing.T) {
	c, err := PlaceScaled(8, 8, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFiles() != 64 {
		t.Errorf("NumFiles %d, want 64", c.NumFiles())
	}
	if c.TotalPages() != 19200 {
		t.Errorf("TotalPages %d, want 19200 (paper's small database)", c.TotalPages())
	}
	if got := c.FileOf(3, 5); got != 3*8+5 {
		t.Errorf("FileOf(3,5) = %d", got)
	}
}

func TestPlaceScaledSingleNode(t *testing.T) {
	c, err := PlaceScaled(8, 8, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < c.NumFiles(); f++ {
		if c.NodeOf(f) != 0 {
			t.Fatalf("file %d on node %d in 1-node system", f, c.NodeOf(f))
		}
	}
}

func TestPlaceScaledFourNodes(t *testing.T) {
	// Paper §4.2: partitions 1-2 on S1, 3-4 on S2, 5-6 on S3, 7-8 on S4.
	c, err := PlaceScaled(8, 8, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rel := 0; rel < 8; rel++ {
		for part := 0; part < 8; part++ {
			want := part / 2
			if got := c.NodeOf(c.FileOf(rel, part)); got != want {
				t.Fatalf("relation %d partition %d on node %d, want %d", rel, part, got, want)
			}
		}
	}
}

func TestPlaceScaledEightNodes(t *testing.T) {
	c, err := PlaceScaled(8, 8, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	for rel := 0; rel < 8; rel++ {
		for part := 0; part < 8; part++ {
			if got := c.NodeOf(c.FileOf(rel, part)); got != part {
				t.Fatalf("8-node scaled: partition %d on node %d", part, got)
			}
		}
	}
}

func TestPlaceScaledIndivisible(t *testing.T) {
	if _, err := PlaceScaled(8, 8, 300, 3); err == nil {
		t.Error("3 nodes should not divide 8 partitions")
	}
}

func TestPlacePartitionedOneWay(t *testing.T) {
	// 1-way: relation i entirely on node i — sequential execution.
	c, err := PlacePartitioned(8, 8, 300, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for rel := 0; rel < 8; rel++ {
		nodes, partsAt := c.RelationNodes(rel)
		if len(nodes) != 1 || nodes[0] != rel {
			t.Fatalf("relation %d on nodes %v, want [%d]", rel, nodes, rel)
		}
		if len(partsAt[rel]) != 8 {
			t.Fatalf("relation %d has %d partitions at home node", rel, len(partsAt[rel]))
		}
	}
}

func TestPlacePartitionedEightWay(t *testing.T) {
	// 8-way: every relation spread over all 8 nodes, one partition each.
	c, err := PlacePartitioned(8, 8, 300, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for rel := 0; rel < 8; rel++ {
		nodes, partsAt := c.RelationNodes(rel)
		if len(nodes) != 8 {
			t.Fatalf("relation %d on %d nodes, want 8", rel, len(nodes))
		}
		for _, n := range nodes {
			if len(partsAt[n]) != 1 {
				t.Fatalf("relation %d node %d holds %d partitions, want 1", rel, n, len(partsAt[n]))
			}
		}
	}
}

func TestPlacePartitionedWaysCohortCount(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		c, err := PlacePartitioned(8, 8, 300, 8, ways)
		if err != nil {
			t.Fatal(err)
		}
		for rel := 0; rel < 8; rel++ {
			nodes, partsAt := c.RelationNodes(rel)
			if len(nodes) != ways {
				t.Fatalf("ways=%d: relation %d spans %d nodes", ways, rel, len(nodes))
			}
			for _, n := range nodes {
				if len(partsAt[n]) != 8/ways {
					t.Fatalf("ways=%d: node %d holds %d partitions of relation %d, want %d",
						ways, n, len(partsAt[n]), rel, 8/ways)
				}
			}
		}
	}
}

func TestPlacePartitionedBalanced(t *testing.T) {
	// Every node must store exactly 8 partitions regardless of ways, so the
	// total load is placement-independent (paper §4.3 design).
	for _, ways := range []int{1, 2, 4, 8} {
		c, err := PlacePartitioned(8, 8, 300, 8, ways)
		if err != nil {
			t.Fatal(err)
		}
		count := make(map[int]int)
		for f := 0; f < c.NumFiles(); f++ {
			count[c.NodeOf(f)]++
		}
		for n := 0; n < 8; n++ {
			if count[n] != 8 {
				t.Fatalf("ways=%d: node %d stores %d files, want 8", ways, n, count[n])
			}
		}
	}
}

func TestPlacePartitionedValidation(t *testing.T) {
	cases := []struct{ ways, nodes int }{
		{0, 8}, {9, 8}, {3, 8}, {-1, 8},
	}
	for _, tc := range cases {
		if _, err := PlacePartitioned(8, 8, 300, tc.nodes, tc.ways); err == nil {
			t.Errorf("ways=%d nodes=%d should be rejected", tc.ways, tc.nodes)
		}
	}
}

func TestCatalogValidate(t *testing.T) {
	c, _ := PlaceScaled(8, 8, 300, 8)
	if err := c.Validate(8); err != nil {
		t.Errorf("valid catalog rejected: %v", err)
	}
	if err := c.Validate(4); err == nil {
		t.Error("catalog with out-of-range nodes accepted")
	}
	bad := &Catalog{NumRelations: 2, PartsPerRelation: 2, PagesPerFile: 10, FileNode: []int{0}}
	if err := bad.Validate(1); err == nil {
		t.Error("catalog with wrong FileNode length accepted")
	}
	bad2 := &Catalog{NumRelations: 0, PartsPerRelation: 2, PagesPerFile: 10}
	if err := bad2.Validate(1); err == nil {
		t.Error("catalog with zero relations accepted")
	}
}

func TestRelationNodesOrderFollowsPartitions(t *testing.T) {
	c, _ := PlacePartitioned(8, 8, 300, 8, 4)
	for rel := 0; rel < 8; rel++ {
		nodes, _ := c.RelationNodes(rel)
		// First node must hold partition 0.
		if nodes[0] != c.NodeOf(c.FileOf(rel, 0)) {
			t.Fatalf("relation %d node order does not follow partition order", rel)
		}
	}
}

func TestPlacementProperty(t *testing.T) {
	// Property: for any valid (relations, parts, nodes, ways), every file is
	// placed, per-relation spread equals ways, and partitions divide evenly.
	f := func(r8, p8, n8, w8 uint8) bool {
		rels := int(r8%8) + 1
		// parts must be divisible by ways; generate parts as ways*k
		ways := int(w8%4) + 1
		parts := ways * (int(p8%4) + 1)
		nodes := ways + int(n8%8) // nodes >= ways
		c, err := PlacePartitioned(rels, parts, 10, nodes, ways)
		if err != nil {
			return false
		}
		if c.Validate(nodes) != nil {
			return false
		}
		for rel := 0; rel < rels; rel++ {
			ns, partsAt := c.RelationNodes(rel)
			if len(ns) != ways {
				return false
			}
			total := 0
			for _, n := range ns {
				total += len(partsAt[n])
			}
			if total != parts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicate(t *testing.T) {
	c, _ := PlacePartitioned(8, 8, 300, 8, 1)
	if c.ReplicaCount() != 1 {
		t.Fatalf("unreplicated catalog reports %d copies", c.ReplicaCount())
	}
	if err := c.Replicate(3, 8); err != nil {
		t.Fatal(err)
	}
	if c.ReplicaCount() != 3 {
		t.Fatalf("replica count %d, want 3", c.ReplicaCount())
	}
	if err := c.Validate(8); err != nil {
		t.Fatalf("replicated catalog invalid: %v", err)
	}
	for f := 0; f < c.NumFiles(); f++ {
		reps := c.Replicas(f)
		if len(reps) != 3 {
			t.Fatalf("file %d has %d copies", f, len(reps))
		}
		if reps[0] != c.NodeOf(f) {
			t.Fatalf("file %d primary not first", f)
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("file %d: duplicate copy node %d", f, n)
			}
			seen[n] = true
		}
	}
	// Copy load stays balanced: every node holds 8*3 = 24 copies.
	count := map[int]int{}
	for f := 0; f < c.NumFiles(); f++ {
		for _, n := range c.Replicas(f) {
			count[n]++
		}
	}
	for n := 0; n < 8; n++ {
		if count[n] != 24 {
			t.Fatalf("node %d holds %d copies, want 24", n, count[n])
		}
	}
}

func TestReplicateValidation(t *testing.T) {
	c, _ := PlaceScaled(8, 8, 300, 8)
	if err := c.Replicate(9, 8); err == nil {
		t.Error("replica count above node count accepted")
	}
	if err := c.Replicate(0, 8); err == nil {
		t.Error("zero replica count accepted")
	}
	if err := c.Replicate(2, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Replicate(1, 8); err != nil {
		t.Fatal(err)
	}
	if c.ReplicaCount() != 1 {
		t.Error("Replicate(1) did not clear replication")
	}
}

func TestReplicasUnreplicatedDefault(t *testing.T) {
	c, _ := PlaceScaled(8, 8, 300, 8)
	for f := 0; f < c.NumFiles(); f++ {
		reps := c.Replicas(f)
		if len(reps) != 1 || reps[0] != c.NodeOf(f) {
			t.Fatalf("file %d replicas %v", f, reps)
		}
	}
}

func TestValidateRejectsBadReplicas(t *testing.T) {
	c, _ := PlaceScaled(2, 2, 10, 2)
	c.FileReplicas = [][]int{{0, 1}} // wrong length
	if err := c.Validate(2); err == nil {
		t.Error("wrong FileReplicas length accepted")
	}
	c.FileReplicas = [][]int{{1, 0}, {0, 1}, {1, 0}, {1, 0}} // file 0 primary is 0
	if err := c.Validate(2); err == nil {
		t.Error("replicas not led by primary accepted")
	}
	c2, _ := PlaceScaled(2, 2, 10, 2)
	c2.FileReplicas = [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 0}}
	if err := c2.Validate(2); err == nil {
		t.Error("duplicate copy node accepted")
	}
}

func TestPageIDString(t *testing.T) {
	if got := (PageID{File: 3, Page: 17}).String(); got != "f3:p17" {
		t.Errorf("PageID string %q", got)
	}
}
