// Package obs is the simulator's observability layer: spans and instant
// events recorded in simulated time, periodic time-series probes, and
// exporters for Chrome trace-event JSON (Perfetto-loadable) and flat JSONL.
//
// The layer is strictly an observer. Nothing here touches the simulation's
// random source or schedules work on behalf of the model, so enabling a
// tracer leaves every run bit-identical to the untraced run (the periodic
// sampler is a sim process, but it only reads state — see TimeSeries).
//
// Cost discipline, in the spirit of the allocation-free kernel:
//   - Disabled (nil *Tracer): every method is nil-receiver-safe and returns
//     immediately, so instrumented call sites compile to a pointer test.
//     AllocsPerRun pins in obs_test.go hold this at zero allocations.
//   - Enabled: open spans come from a free-list and the event buffer is
//     growable but reservable (Reserve), so steady-state recording does not
//     allocate per span.
//
// Span handles die at End: the Span struct returns to the tracer's
// free-list and may be handed out again by the next Begin. Retaining a
// *Span in a struct field or package variable is therefore the same class
// of bug as retaining a *sim.Event, and ddbmlint's span-retention check
// forbids it outside this package.
package obs

import (
	"fmt"

	"ddbm/internal/sim"
)

// Kind classifies a recorded event. The taxonomy follows the model's
// layers: transaction attempts and cohort work phases (core), concurrency
// control waits (cc), commit-protocol phases (commit), message transits
// (network), and CPU/disk service periods (resource).
type Kind uint8

const (
	// KindTxn is one execution attempt of a transaction, spanning from
	// attempt start to commit or abort resolution at the coordinator.
	KindTxn Kind = iota
	// KindCohort is one cohort's work phase at its processing node.
	KindCohort
	// KindCCWait is one concurrency control blocking episode (a lock-queue
	// wait); immediate CC rejections (BTO read/write rule, wounds) surface
	// as KindInstant "cc-reject" events instead.
	KindCCWait
	// KindCommitPhase is one phase of the commit protocol: "prepare"
	// (start of phase one to all-votes-collected), "decide" (votes to
	// logged decision) or "resolve" (decision to all cohorts finished).
	KindCommitPhase
	// KindMessage is one inter-node message transit, from send to delivery
	// (both ends' message-processing CPU included).
	KindMessage
	// KindCPU is one CPU busy period (first job arrival to queue drain).
	KindCPU
	// KindDisk is one disk access service period on one spindle.
	KindDisk
	// KindInstant is a zero-duration life-cycle event (submitted,
	// committed, cc-reject, ...).
	KindInstant
	// KindFault is a fault-layer event: a node "crash" instant, a "down"
	// span (crash to repair), a "recovery" span (repair to rejoin) or an
	// "in-doubt" span (a cohort's prepared-to-resolved window). Appended
	// last so existing traces keep their kind numbering.
	KindFault
)

var kindNames = [...]string{
	KindTxn:         "txn",
	KindCohort:      "cohort",
	KindCCWait:      "cc-wait",
	KindCommitPhase: "commit-phase",
	KindMessage:     "message",
	KindCPU:         "cpu",
	KindDisk:        "disk",
	KindInstant:     "instant",
	KindFault:       "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a kind name (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one recorded observation. Spans carry Start < End; instants
// have Start == End. Node is the node the event happened at; Lane
// disambiguates concurrent node-scoped activity (the spindle index for
// KindDisk, the destination node for KindMessage, 0 otherwise). Txn and
// Attempt are 0 for node-scoped events (CPU, disk, message).
type Event struct {
	Kind    Kind
	Name    string
	Node    int
	Lane    int
	Txn     int64
	Attempt int
	Start   sim.Time
	End     sim.Time
	Detail  string
}

// Span is an open begin/end span. Handles die at End: the struct returns
// to the tracer free-list and may be reused by a later Begin, so callers
// must not retain a *Span after ending it (enforced by ddbmlint's
// span-retention check).
type Span struct {
	tr      *Tracer
	kind    Kind
	name    string
	node    int
	txn     int64
	attempt int
	start   sim.Time
}

// End closes the span at the current simulated time and records it.
// Safe on a nil *Span (the disabled-tracer path). A span not ended by
// simulation shutdown is never recorded — exactly the semantics wanted
// for processes killed mid-flight at the end of a run.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.record(Event{
		Kind:    s.kind,
		Name:    s.name,
		Node:    s.node,
		Txn:     s.txn,
		Attempt: s.attempt,
		Start:   s.start,
		End:     t.sim.Now(),
	})
	s.tr = nil
	t.spanFree = append(t.spanFree, s) //ddbmlint:allow hotpath-alloc span free-list push; capacity reaches the open-span high-water mark
}

// Tracer records spans and instants against one simulation's clock. The
// zero-cost disabled state is a nil *Tracer: every method (and Span.End)
// is nil-receiver-safe.
type Tracer struct {
	sim      *sim.Sim
	events   []Event
	spanFree []*Span
}

// NewTracer creates a tracer bound to the simulation clock.
func NewTracer(s *sim.Sim) *Tracer {
	return &Tracer{sim: s}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Reserve grows the event buffer capacity to at least n, so recording up
// to n events allocates nothing beyond the spans' free-list warmup.
func (t *Tracer) Reserve(n int) {
	if t == nil || cap(t.events) >= n {
		return
	}
	grown := make([]Event, len(t.events), n)
	copy(grown, t.events)
	t.events = grown
}

// Events returns the recorded events in recording order (which, for
// spans, is end-time order). The slice aliases the tracer's buffer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

func (t *Tracer) record(e Event) {
	t.events = append(t.events, e) //ddbmlint:allow hotpath-alloc trace buffer; traced runs trade allocation for observability, the measured path has a nil tracer
}

// Begin opens a span at the current simulated time. Returns nil (a valid,
// inert span) when the tracer is nil.
func (t *Tracer) Begin(kind Kind, name string, node int, txn int64, attempt int) *Span {
	if t == nil {
		return nil
	}
	var s *Span
	if n := len(t.spanFree); n > 0 {
		s = t.spanFree[n-1]
		t.spanFree[n-1] = nil
		t.spanFree = t.spanFree[:n-1]
	} else {
		s = &Span{} //ddbmlint:allow hotpath-alloc span pool growth; one per open-span high-water slot
	}
	*s = Span{tr: t, kind: kind, name: name, node: node, txn: txn, attempt: attempt, start: t.sim.Now()}
	return s
}

// Complete records a span retroactively, from start to the current
// simulated time — the no-handle alternative to Begin/End for call sites
// that already know when the activity began (a blocking episode observed
// at wakeup, a protocol phase boundary).
func (t *Tracer) Complete(kind Kind, name string, node int, txn int64, attempt int, start sim.Time) {
	if t == nil {
		return
	}
	t.record(Event{Kind: kind, Name: name, Node: node, Txn: txn, Attempt: attempt, Start: start, End: t.sim.Now()})
}

// Instant records a zero-duration event at the current simulated time.
func (t *Tracer) Instant(name string, node int, txn int64, attempt int, detail string) {
	if t == nil {
		return
	}
	now := t.sim.Now()
	t.record(Event{Kind: KindInstant, Name: name, Node: node, Txn: txn, Attempt: attempt, Start: now, End: now, Detail: detail})
}

// Message records one message transit from node `from` to node `to`,
// begun at start and delivered now.
func (t *Tracer) Message(from, to int, start sim.Time) {
	if t == nil {
		return
	}
	t.record(Event{Kind: KindMessage, Name: "msg", Node: from, Lane: to, Start: start, End: t.sim.Now()})
}

// CPUBusy records one CPU busy period at node, begun at start and drained
// now. Busy periods on one CPU are serial by construction, so they form a
// properly nesting (flat) track.
func (t *Tracer) CPUBusy(node int, start sim.Time) {
	if t == nil {
		return
	}
	t.record(Event{Kind: KindCPU, Name: "cpu", Node: node, Start: start, End: t.sim.Now()})
}

// DiskAccess records one disk service period on the given spindle of
// node's disk array. Accesses on one spindle are serial.
func (t *Tracer) DiskAccess(node, spindle int, write bool, start sim.Time) {
	if t == nil {
		return
	}
	name := "read"
	if write {
		name = "write"
	}
	t.record(Event{Kind: KindDisk, Name: name, Node: node, Lane: spindle, Start: start, End: t.sim.Now()})
}
