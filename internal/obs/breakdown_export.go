package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// BreakdownSnapshot is the aggregated time-breakdown of one run: one row
// per (class, phase) with the distribution of per-transaction phase
// totals over the committed transactions of the measurement window, plus
// one row per (node, cause) counting aborted attempts by the node and
// cause that triggered them. Rows are emitted in a fixed order (class,
// then phase declaration order; node, then cause declaration order), so
// the exporters below are deterministic byte-for-byte.
type BreakdownSnapshot struct {
	Phases []BreakdownPhaseRow
	Causes []BreakdownCauseRow
}

// BreakdownPhaseRow summarizes one phase of one transaction class.
type BreakdownPhaseRow struct {
	Class   int     `json:"class"`
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	TotalMs float64 `json:"total_ms"`
}

// BreakdownCauseRow counts the aborted attempts attributed to one cause
// at one node (the node whose manager or coordinator demanded the abort).
type BreakdownCauseRow struct {
	Node  int    `json:"node"`
	Cause string `json:"cause"`
	Count int64  `json:"count"`
}

// WriteBreakdownJSONL renders the snapshot as one JSON object per line:
// phase rows first (tagged "phase"), then abort-cause rows (tagged
// "abort-cause"), in snapshot order.
func WriteBreakdownJSONL(w io.Writer, snap *BreakdownSnapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	type phaseLine struct {
		Row string `json:"row"`
		BreakdownPhaseRow
	}
	type causeLine struct {
		Row string `json:"row"`
		BreakdownCauseRow
	}
	for i := range snap.Phases {
		if err := enc.Encode(phaseLine{Row: "phase", BreakdownPhaseRow: snap.Phases[i]}); err != nil {
			return err
		}
	}
	for i := range snap.Causes {
		if err := enc.Encode(causeLine{Row: "abort-cause", BreakdownCauseRow: snap.Causes[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBreakdownCSV renders the snapshot as CSV with a fixed header. The
// two row kinds share one schema; abort-cause rows reuse the class column
// for the node and leave the millisecond columns empty.
func WriteBreakdownCSV(w io.Writer, snap *BreakdownSnapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("row,class_or_node,name,count,mean_ms,p50_ms,p99_ms,total_ms\n"); err != nil {
		return err
	}
	for i := range snap.Phases {
		r := &snap.Phases[i]
		if _, err := fmt.Fprintf(bw, "phase,%d,%s,%d,%g,%g,%g,%g\n",
			r.Class, r.Phase, r.Count, r.MeanMs, r.P50Ms, r.P99Ms, r.TotalMs); err != nil {
			return err
		}
	}
	for i := range snap.Causes {
		r := &snap.Causes[i]
		if _, err := fmt.Fprintf(bw, "abort-cause,%d,%s,%d,,,,\n", r.Node, r.Cause, r.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}
