package obs

import "ddbm/internal/sim"

// NodeSeries holds one node's sampled gauges, index-aligned with
// TimeSeries.Times. The utilization columns are per-window (busy time
// accumulated during the interval ending at the sample, divided by the
// interval), not cumulative — disk busy time is credited at access
// completion, so a long access crossing a window boundary lands wholly in
// the completing window and a single disk window can read slightly
// above 1.
type NodeSeries struct {
	Node          int
	ActiveCohorts []int
	ReadyQueue    []int
	LockTableSize []int
	BlockedTxns   []int
	CPUUtil       []float64
	DiskUtil      []float64
	// Down is the availability gauge: 1 when the node was crashed at the
	// sample instant, 0 otherwise (always 0 without fault injection; the
	// host never reports down — host failures are modeled as failover).
	Down []int
}

// TimeSeries is the product of the periodic probe sampler: per-node gauge
// snapshots every IntervalMs of simulated time. The sampler is itself a
// simulation process, but a pure observer — it reads counters and queue
// lengths without touching the random source, mutating any model state,
// or perturbing the relative order of model events (extra sampler events
// only advance the kernel's sequence counter uniformly) — so an enabled
// sampler leaves the run bit-identical to an unsampled one. Asserted by
// TestTracingPreservesResults in internal/core.
type TimeSeries struct {
	IntervalMs float64
	// Times holds the sample instants; sample i describes the window
	// (Times[i]-IntervalMs, Times[i]].
	Times []sim.Time
	// Nodes holds one series per processing node, plus the host last
	// (the host has no CC manager and no cohorts; those gauges stay 0).
	Nodes []NodeSeries
}

// NewTimeSeries preallocates a series for `nodes` node entries and about
// `samples` samples per column, so steady-state sampling does not grow
// any slice.
func NewTimeSeries(intervalMs float64, nodes, samples int) *TimeSeries {
	if samples < 1 {
		samples = 1
	}
	ts := &TimeSeries{
		IntervalMs: intervalMs,
		Times:      make([]sim.Time, 0, samples),
		Nodes:      make([]NodeSeries, nodes),
	}
	for i := range ts.Nodes {
		ts.Nodes[i] = NodeSeries{
			Node:          i,
			ActiveCohorts: make([]int, 0, samples),
			ReadyQueue:    make([]int, 0, samples),
			LockTableSize: make([]int, 0, samples),
			BlockedTxns:   make([]int, 0, samples),
			CPUUtil:       make([]float64, 0, samples),
			DiskUtil:      make([]float64, 0, samples),
			Down:          make([]int, 0, samples),
		}
	}
	return ts
}

// Len returns the number of samples taken.
func (ts *TimeSeries) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.Times)
}

// MeanCPUUtil averages node's sampled per-window CPU utilization over the
// samples with from < t <= to — the probe-side counterpart of the
// end-of-run utilization aggregate, used to cross-check the two paths.
func (ts *TimeSeries) MeanCPUUtil(node int, from, to sim.Time) float64 {
	return seriesMean(ts, ts.Nodes[node].CPUUtil, from, to)
}

// MeanDiskUtil averages node's sampled per-window disk utilization over
// the samples with from < t <= to.
func (ts *TimeSeries) MeanDiskUtil(node int, from, to sim.Time) float64 {
	return seriesMean(ts, ts.Nodes[node].DiskUtil, from, to)
}

func seriesMean(ts *TimeSeries, vals []float64, from, to sim.Time) float64 {
	var sum float64
	n := 0
	for i, t := range ts.Times {
		if t > from && t <= to {
			sum += vals[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
