package obs

import (
	"bufio"
	"bytes"
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"slices"
)

// Exporters. Both formats are deterministic byte-for-byte given the same
// event list: structs marshal with fixed field order and events are
// written in recording order, so golden-file tests can diff the output of
// a seeded run directly.

// Chrome trace-event mapping (loadable in Perfetto / chrome://tracing):
// one "process" per simulated node, one "thread" per transaction id for
// the transaction-scoped spans. Node-scoped activity gets synthetic
// threads — tid -1 for the CPU's busy periods, tid -(2+spindle) for each
// disk spindle — on which spans are serial by construction. Message
// transits become async begin/end pairs (ph "b"/"e"), which Perfetto
// renders on a per-process async track without any nesting requirement.
const (
	cpuTid      = -1
	diskTidBase = -2
)

// chromeEvent is one trace-event entry; fields follow the Chrome
// trace-event format. Ts and Dur are microseconds (the format's unit);
// simulated milliseconds are scaled by 1000 on export.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int64       `json:"tid"`
	S    string      `json:"s,omitempty"`
	Cat  string      `json:"cat,omitempty"`
	ID   int         `json:"id,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Txn     int64  `json:"txn,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

type chromeMeta struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int64  `json:"tid,omitempty"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

// WriteChromeTrace renders the events as Chrome trace-event JSON. host is
// the host node's id (used only for process naming; the convention is
// host == number of processing nodes).
func WriteChromeTrace(w io.Writer, events []Event, host int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	// Process (and resource-thread) name metadata for every node that
	// appears, in node order.
	nodes := map[int]bool{}
	disks := map[[2]int]bool{}
	maxSpindle := map[int]int{}
	for i := range events {
		nodes[events[i].Node] = true
		if events[i].Kind == KindMessage {
			nodes[events[i].Lane] = true
		}
		if events[i].Kind == KindDisk {
			disks[[2]int{events[i].Node, events[i].Lane}] = true
			if events[i].Lane > maxSpindle[events[i].Node] {
				maxSpindle[events[i].Node] = events[i].Lane
			}
		}
	}
	ids := make([]int, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	slices.Sort(ids)
	for _, n := range ids {
		m := chromeMeta{Name: "process_name", Ph: "M", Pid: n}
		if n == host {
			m.Args.Name = "host"
		} else {
			m.Args.Name = fmt.Sprintf("node %d", n)
		}
		if err := emit(m); err != nil {
			return err
		}
		t := chromeMeta{Name: "thread_name", Ph: "M", Pid: n, Tid: cpuTid}
		t.Args.Name = "cpu"
		if err := emit(t); err != nil {
			return err
		}
		for k := 0; k <= maxSpindle[n]; k++ {
			if !disks[[2]int{n, k}] {
				continue
			}
			d := chromeMeta{Name: "thread_name", Ph: "M", Pid: n, Tid: diskTidBase - int64(k)}
			d.Args.Name = fmt.Sprintf("disk %d", k)
			if err := emit(d); err != nil {
				return err
			}
		}
	}

	for i := range events {
		e := &events[i]
		ts := e.Start * 1000
		dur := (e.End - e.Start) * 1000
		switch e.Kind {
		case KindMessage:
			b := chromeEvent{Name: e.Name, Ph: "b", Ts: ts, Pid: e.Node, Cat: "net", ID: i + 1,
				Args: &chromeArgs{Detail: fmt.Sprintf("%d to %d", e.Node, e.Lane)}}
			if err := emit(b); err != nil {
				return err
			}
			en := chromeEvent{Name: e.Name, Ph: "e", Ts: e.End * 1000, Pid: e.Node, Cat: "net", ID: i + 1}
			if err := emit(en); err != nil {
				return err
			}
		case KindCPU:
			if err := emit(chromeEvent{Name: e.Name, Ph: "X", Ts: ts, Dur: dur, Pid: e.Node, Tid: cpuTid}); err != nil {
				return err
			}
		case KindDisk:
			if err := emit(chromeEvent{Name: e.Name, Ph: "X", Ts: ts, Dur: dur, Pid: e.Node,
				Tid: diskTidBase - int64(e.Lane)}); err != nil {
				return err
			}
		case KindInstant:
			ev := chromeEvent{Name: e.Name, Ph: "i", Ts: ts, Pid: e.Node, Tid: e.Txn, S: "t"}
			if e.Txn != 0 || e.Detail != "" {
				ev.Args = &chromeArgs{Txn: e.Txn, Attempt: e.Attempt, Detail: e.Detail}
			}
			if err := emit(ev); err != nil {
				return err
			}
		default: // txn, cohort, cc-wait, commit-phase
			ev := chromeEvent{Name: e.Name, Ph: "X", Ts: ts, Dur: dur, Pid: e.Node, Tid: e.Txn,
				Args: &chromeArgs{Txn: e.Txn, Attempt: e.Attempt, Detail: e.Detail}}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Node    int     `json:"node"`
	Lane    int     `json:"lane,omitempty"`
	Txn     int64   `json:"txn,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Start   float64 `json:"start_ms"`
	End     float64 `json:"end_ms"`
	Detail  string  `json:"detail,omitempty"`
}

// WriteJSONL renders the events as one JSON object per line, in
// recording order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		e := &events[i]
		if err := enc.Encode(jsonlEvent{
			Kind: e.Kind.String(), Name: e.Name, Node: e.Node, Lane: e.Lane,
			Txn: e.Txn, Attempt: e.Attempt, Start: e.Start, End: e.End, Detail: e.Detail,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a WriteJSONL stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(text, &je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		kind, err := ParseKind(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, Event{
			Kind: kind, Name: je.Name, Node: je.Node, Lane: je.Lane,
			Txn: je.Txn, Attempt: je.Attempt, Start: je.Start, End: je.End, Detail: je.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckChromeTrace validates a WriteChromeTrace output structurally: the
// JSON must parse, complete ("X") spans on every (pid, tid) track must
// nest properly (no partial overlap), and the model hierarchy must hold —
// every commit-phase span lies inside the recorded attempt span of its
// (txn, attempt), and every cohort and cc-wait span starts inside it.
// Cohorts and cc-waits are held only to the start-side bound because the
// abort path races past the coordinator: the protocol's abort fanout can
// resolve the attempt before a remote cohort drains its in-flight access
// and ends its span. Spans whose attempt span was never recorded (the
// coordinator was killed at simulation shutdown) are exempt, but at least
// one attempt must contain a scoped span, so the check cannot pass
// vacuously on a non-trivial trace.
func CheckChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int64   `json:"tid"`
			Args struct {
				Txn     int64 `json:"txn"`
				Attempt int   `json:"attempt"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace JSON does not parse: %w", err)
	}

	// Tolerance for boundary comparisons: one simulated nanosecond (ts
	// values are µs). Reconstructing a span's end as ts+dur loses a few
	// ulps against the other span's independently scaled boundary, which
	// at 1e8 µs magnitudes is ~1e-8 — well under this eps, which in turn
	// is far below any meaningful span duration in the model.
	const eps = 1e-3
	type span struct {
		name       string
		start, end float64
		txn        int64
		attempt    int
	}
	tracks := map[[2]int64][]span{}
	attempts := map[[2]int64]span{}
	var scoped []span // cohort / cc-wait / commit-phase spans
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		s := span{name: e.Name, start: e.Ts, end: e.Ts + e.Dur, txn: e.Args.Txn, attempt: e.Args.Attempt}
		if s.end < s.start {
			return fmt.Errorf("obs: span %q at ts=%v has negative duration", e.Name, e.Ts)
		}
		key := [2]int64{int64(e.Pid), e.Tid}
		tracks[key] = append(tracks[key], s)
		switch e.Name {
		case "attempt":
			attempts[[2]int64{s.txn, int64(s.attempt)}] = s
		case "cohort", "cc-wait", "prepare", "decide", "resolve":
			scoped = append(scoped, s)
		}
	}

	// Per-track nesting: sorted by start (longer span first at ties), a
	// stack of open spans must always contain each new span entirely.
	// Tracks are visited in sorted key order so the first reported
	// violation is deterministic.
	keys := make([][2]int64, 0, len(tracks))
	for key := range tracks {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b [2]int64) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	for _, key := range keys {
		spans := tracks[key]
		slices.SortFunc(spans, func(a, b span) int {
			if c := cmp.Compare(a.start, b.start); c != 0 {
				return c
			}
			return cmp.Compare(b.end, a.end)
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end+eps {
				top := stack[len(stack)-1]
				// Two spans opened at the same sim instant can sort in
				// child-before-parent order: boundaries recorded via
				// different float paths (e.g. a cc-wait start rebuilt as
				// now-duration) differ by ulps. If this pair started
				// together within eps, the longer span is the parent —
				// reinsert in that order and carry on.
				if s.start-top.start <= eps && (len(stack) == 1 || s.end <= stack[len(stack)-2].end+eps) {
					stack[len(stack)-1] = s
					stack = append(stack, top)
					continue
				}
				return fmt.Errorf("obs: track pid=%d tid=%d: span %q [%v,%v] partially overlaps %q [%v,%v]",
					key[0], key[1], s.name, s.start, s.end, top.name, top.start, top.end)
			}
			stack = append(stack, s)
		}
	}

	// Hierarchy against the attempt span (see the doc comment for why
	// cohorts and cc-waits are bounded on the start side only).
	contained := 0
	for _, s := range scoped {
		a, ok := attempts[[2]int64{s.txn, int64(s.attempt)}]
		if !ok {
			continue // coordinator killed at shutdown; attempt never recorded
		}
		fullContainment := s.name == "prepare" || s.name == "decide" || s.name == "resolve"
		if s.start < a.start-eps || s.start > a.end+eps ||
			(fullContainment && s.end > a.end+eps) {
			return fmt.Errorf("obs: %q span [%v,%v] of txn %d attempt %d escapes its attempt span [%v,%v]",
				s.name, s.start, s.end, s.txn, s.attempt, a.start, a.end)
		}
		contained++
	}
	if len(attempts) > 0 && contained == 0 {
		return fmt.Errorf("obs: %d attempt spans but no contained cohort/phase spans; hierarchy check is vacuous", len(attempts))
	}
	return nil
}
