package obs

import (
	"fmt"

	"ddbm/internal/sim"
)

// Phase classifies one slice of a transaction's wall-clock life in the
// time-breakdown accounting. The set is closed and exhaustive: a ledger
// attributes every simulated microsecond between transaction origination
// and successful commit to exactly one phase, so the per-phase totals of a
// committed transaction sum to its measured response time (the
// reconciliation invariant pinned by core's breakdown tests).
type Phase uint8

const (
	// PhaseCPUService is pure CPU demand at full rate (instructions /
	// rate): startup bursts, CC-request processing, page processing.
	PhaseCPUService Phase = iota
	// PhaseCPUQueue is the excess of elapsed CPU time over pure demand —
	// processor-sharing dilation and message-priority preemption.
	PhaseCPUQueue
	// PhaseDiskService is the drawn service time of synchronous page
	// reads; PhaseDiskQueue is the wait behind other requests on the
	// spindle.
	PhaseDiskService
	PhaseDiskQueue
	// PhaseLockBlocked is time spent inside a concurrency control Access
	// call — lock-queue waits (2PL/WW) and BTO blocked reads.
	PhaseLockBlocked
	// PhaseNetTransit is message transit between nodes, including the
	// message-processing CPU at both ends (matching KindMessage spans).
	PhaseNetTransit
	// PhasePrepare, PhaseDecide and PhaseResolve split the commit
	// protocol: protocol entry to all-votes-collected, votes to the
	// logged decision, and decision to protocol return (ack collection
	// on the abort path; ~0 on commit, whose phase two is asynchronous).
	PhasePrepare
	PhaseDecide
	PhaseResolve
	// PhaseRestart is the post-abort restart backoff delay.
	PhaseRestart
	// PhaseResidue absorbs coordinator wall-clock not attributable to a
	// cohort's own ledger: the slack behind the critical (last-reporting)
	// cohort of a parallel attempt, and abort-path windows where the
	// reporting cohort's ledger is unavailable. Think time is outside the
	// transaction and never enters a ledger.
	PhaseResidue

	// NumPhases sizes per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseCPUService:  "cpu-service",
	PhaseCPUQueue:    "cpu-queue",
	PhaseDiskService: "disk-service",
	PhaseDiskQueue:   "disk-queue",
	PhaseLockBlocked: "lock-blocked",
	PhaseNetTransit:  "net-transit",
	PhasePrepare:     "commit-prepare",
	PhaseDecide:      "commit-decide",
	PhaseResolve:     "commit-resolve",
	PhaseRestart:     "restart-wait",
	PhaseResidue:     "residue",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// PhaseNames returns every phase name in canonical ledger order — the key
// set of the per-phase result maps, in the order reports should list them.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		out[p] = p.String()
	}
	return out
}

// Ledger is a cursor-based per-transaction phase account. Spend-style
// calls attribute the interval since the cursor to one phase and advance
// the cursor, so the phase totals telescope: after any call sequence the
// sum of all phases equals the span from StartAt to the last call. The
// zero value is usable; a nil *Ledger is the disabled state — every
// method is nil-receiver-safe and free of allocation, randomness and
// scheduling, so instrumented call sites cost a pointer test when
// breakdown accounting is off and leave runs bit-identical either way.
type Ledger struct {
	cursor sim.Time
	spent  [NumPhases]float64
}

// StartAt zeroes the ledger and places the cursor at now.
//
//ddbmlint:hotpath breakdown ledger reset on the transaction path
func (l *Ledger) StartAt(now sim.Time) {
	if l == nil {
		return
	}
	*l = Ledger{cursor: now}
}

// Spend attributes the interval since the cursor to phase p.
//
//ddbmlint:hotpath breakdown attribution on the transaction path
func (l *Ledger) Spend(now sim.Time, p Phase) {
	if l == nil {
		return
	}
	l.spent[p] += now - l.cursor
	l.cursor = now
}

// SpendSplit attributes the interval since the cursor to a service phase
// (up to svc, the pure service demand) and a queueing phase (the excess).
// svc is clamped to the elapsed interval so float drift cannot drive the
// queue share negative.
//
//ddbmlint:hotpath breakdown service/queue split on the transaction path
func (l *Ledger) SpendSplit(now sim.Time, svc float64, service, queue Phase) {
	if l == nil {
		return
	}
	elapsed := now - l.cursor
	if svc > elapsed {
		svc = elapsed
	}
	if svc < 0 {
		svc = 0
	}
	l.spent[service] += svc
	l.spent[queue] += elapsed - svc
	l.cursor = now
}

// Fold merges a sub-ledger (a cohort's mini-account) into this ledger,
// attributing the interval since the cursor as the sub-ledger's phases
// plus a residue remainder. The total added is exactly the elapsed
// interval, preserving the telescoping invariant; when the sub-ledger
// tiles the interval exactly (the critical cohort of an attempt), the
// residue contribution is zero. A nil from sweeps the whole interval
// into the residue phase.
//
//ddbmlint:hotpath breakdown cohort fold on the transaction path
func (l *Ledger) Fold(now sim.Time, from *Ledger, residue Phase) {
	if l == nil {
		return
	}
	elapsed := now - l.cursor
	var sub float64
	if from != nil {
		for i := range from.spent {
			l.spent[i] += from.spent[i]
			sub += from.spent[i]
		}
	}
	l.spent[residue] += elapsed - sub
	l.cursor = now
}

// Spent returns the milliseconds attributed to phase p.
func (l *Ledger) Spent(p Phase) float64 {
	if l == nil {
		return 0
	}
	return l.spent[p]
}

// Total returns the milliseconds attributed across all phases.
func (l *Ledger) Total() float64 {
	if l == nil {
		return 0
	}
	var t float64
	for i := range l.spent {
		t += l.spent[i]
	}
	return t
}
