package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ddbm/internal/sim"
)

// The disabled tracer is a nil pointer: every method must be a no-op with
// zero allocations, so instrumented hot paths cost only a pointer test.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin(KindTxn, "attempt", 0, 1, 1)
		sp.End()
		tr.Complete(KindCCWait, "cc-wait", 0, 1, 1, 0)
		tr.Instant("submitted", 0, 1, 1, "")
		tr.Message(0, 1, 0)
		tr.CPUBusy(0, 0)
		tr.DiskAccess(0, 2, true, 0)
		tr.Reserve(128)
		if tr.Enabled() || tr.Events() != nil || tr.Len() != 0 {
			t.Fatal("nil tracer must report disabled and empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v times per op; want 0", allocs)
	}
}

// Enabled steady state: with the event buffer reserved and the span
// free-list warmed, recording must not allocate.
func TestEnabledSteadyStateAllocs(t *testing.T) {
	s := sim.New(1)
	tr := NewTracer(s)
	tr.Reserve(4096)
	tr.Begin(KindTxn, "warm", 0, 1, 1).End() // prime the free-list
	allocs := testing.AllocsPerRun(500, func() {
		sp := tr.Begin(KindTxn, "attempt", 0, 7, 2)
		sp.End()
		tr.Complete(KindCCWait, "cc-wait", 1, 7, 2, 0)
		tr.Instant("committed", 0, 7, 2, "")
		tr.DiskAccess(1, 0, false, 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state recording allocated %v times per op; want 0", allocs)
	}
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
}

// Spans go back to the free-list at End and are handed out again — the
// contract the span-retention lint check exists to protect.
func TestSpanFreeListReuse(t *testing.T) {
	tr := NewTracer(sim.New(1))
	sp := tr.Begin(KindCohort, "cohort", 2, 5, 1)
	sp.End()
	sp2 := tr.Begin(KindCohort, "cohort", 3, 6, 1)
	if sp != sp2 {
		t.Fatal("End did not recycle the span through the free-list")
	}
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Node != 2 || ev[0].Txn != 5 {
		t.Fatalf("recorded events wrong: %+v", ev)
	}
}

// A span begun but never ended (a process killed at shutdown) must not
// record anything.
func TestUnendedSpanNotRecorded(t *testing.T) {
	tr := NewTracer(sim.New(1))
	_ = tr.Begin(KindCohort, "cohort", 0, 1, 1)
	if tr.Len() != 0 {
		t.Fatalf("unended span recorded %d events; want 0", tr.Len())
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindTxn; k <= KindInstant; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip of %v failed: got %v, err %v", k, got, err)
		}
	}
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Fatalf("out-of-range kind string = %q", s)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

// testEvents returns a tiny but representative event set: a txn attempt
// containing a cohort, a cc-wait and the three commit phases, plus
// node-scoped resource and message activity and an instant.
func testEvents() []Event {
	return []Event{
		{Kind: KindInstant, Name: "submitted", Node: 2, Txn: 1, Attempt: 1, Start: 0, End: 0},
		{Kind: KindMessage, Name: "msg", Node: 2, Lane: 0, Start: 0.5, End: 1.0},
		{Kind: KindCPU, Name: "cpu", Node: 0, Start: 1.0, End: 3.5},
		{Kind: KindDisk, Name: "read", Node: 0, Lane: 1, Start: 1.5, End: 3.0},
		{Kind: KindCCWait, Name: "cc-wait", Node: 0, Txn: 1, Attempt: 1, Start: 3.0, End: 4.0},
		{Kind: KindCohort, Name: "cohort", Node: 0, Txn: 1, Attempt: 1, Start: 1.0, End: 5.0},
		{Kind: KindCommitPhase, Name: "prepare", Node: 2, Txn: 1, Attempt: 1, Start: 5.5, End: 6.5},
		{Kind: KindCommitPhase, Name: "decide", Node: 2, Txn: 1, Attempt: 1, Start: 6.5, End: 7.0},
		{Kind: KindCommitPhase, Name: "resolve", Node: 2, Txn: 1, Attempt: 1, Start: 7.0, End: 7.5},
		{Kind: KindTxn, Name: "attempt", Node: 2, Txn: 1, Attempt: 1, Start: 0.25, End: 8.0},
		{Kind: KindDisk, Name: "write", Node: 2, Lane: 0, Start: 6.0, End: 7.0, Detail: "log force"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := testEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, events)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"txn\"}\nnot json\n")); err == nil {
		t.Fatal("ReadJSONL accepted malformed input")
	}
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"mystery\"}\n")); err == nil {
		t.Fatal("ReadJSONL accepted an unknown kind")
	}
}

func TestWriteChromeTracePassesCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testEvents(), 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"host"`, `"node 0"`, `"disk 1"`, `"cpu"`, `"ph":"b"`, `"ph":"e"`, `"ph":"i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s", want)
		}
	}
	if err := CheckChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("structurally valid trace rejected: %v", err)
	}
}

func TestCheckChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			name: "not json",
			doc:  "{",
			want: "does not parse",
		},
		{
			name: "partial overlap",
			doc: `{"traceEvents":[
				{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},
				{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}
			]}`,
			want: "partially overlaps",
		},
		{
			name: "escapes attempt",
			doc: `{"traceEvents":[
				{"name":"attempt","ph":"X","ts":10,"dur":10,"pid":2,"tid":1,"args":{"txn":1,"attempt":1}},
				{"name":"cohort","ph":"X","ts":5,"dur":10,"pid":0,"tid":1,"args":{"txn":1,"attempt":1}}
			]}`,
			want: "escapes its attempt span",
		},
		{
			name: "vacuous hierarchy",
			doc: `{"traceEvents":[
				{"name":"attempt","ph":"X","ts":0,"dur":10,"pid":2,"tid":1,"args":{"txn":1,"attempt":1}}
			]}`,
			want: "vacuous",
		},
	}
	for _, tc := range cases {
		err := CheckChromeTrace([]byte(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v; want containing %q", tc.name, err, tc.want)
		}
	}
}

// Two spans opened at the same sim instant can carry boundaries computed
// through different float paths (a cc-wait start is rebuilt as
// now-duration), so the child can sort a few ulps before its parent. The
// checker must recognize the tie instead of reporting partial overlap.
func TestCheckChromeTraceSameStartTie(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"attempt","ph":"X","ts":0,"dur":100,"pid":2,"tid":1,"args":{"txn":1,"attempt":1}},
		{"name":"cohort","ph":"X","ts":10.0000001,"dur":50,"pid":0,"tid":1,"args":{"txn":1,"attempt":1}},
		{"name":"cc-wait","ph":"X","ts":10,"dur":30,"pid":0,"tid":1,"args":{"txn":1,"attempt":1}}
	]}`
	if err := CheckChromeTrace([]byte(doc)); err != nil {
		t.Fatalf("same-instant parent/child tie rejected: %v", err)
	}
}

// A cohort span whose attempt never recorded (coordinator killed at
// shutdown) is exempt from containment — but only if some other attempt
// still proves the hierarchy.
func TestCheckChromeTraceShutdownExemption(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"attempt","ph":"X","ts":0,"dur":10,"pid":2,"tid":1,"args":{"txn":1,"attempt":1}},
		{"name":"cohort","ph":"X","ts":2,"dur":4,"pid":0,"tid":1,"args":{"txn":1,"attempt":1}},
		{"name":"cohort","ph":"X","ts":50,"dur":4,"pid":0,"tid":9,"args":{"txn":9,"attempt":1}}
	]}`
	if err := CheckChromeTrace([]byte(doc)); err != nil {
		t.Fatalf("trace with orphan cohort (killed coordinator) rejected: %v", err)
	}
}
