package cc

import (
	"testing"

	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func TestUpgradeQueuesBehindEarlierUpgrade(t *testing.T) {
	// a and b both hold S and both upgrade: a's upgrade queues first, b's
	// behind it; conflicts returned for b must include a.
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(b, pg(1), LockS)
	if ok, _ := lt.Lock(a, pg(1), LockX); ok {
		t.Fatal("upgrade granted with another holder")
	}
	ok, conflicts := lt.Lock(b, pg(1), LockX)
	if ok {
		t.Fatal("second upgrade granted")
	}
	foundA := false
	for _, c := range conflicts {
		if c == a {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("second upgrade's conflicts %v must include the first upgrader", conflicts)
	}
}

func TestRemoveWaiterOnNonWaiterNoOp(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.RemoveWaiter(a) // never waited: no-op
	lt.Lock(a, pg(1), LockS)
	lt.RemoveWaiter(a) // holder, not waiter: no-op
	if _, held := lt.Holds(a, pg(1)); !held {
		t.Fatal("RemoveWaiter dropped a held lock")
	}
}

func TestHoldsReportsMode(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	if _, held := lt.Holds(a, pg(1)); held {
		t.Fatal("phantom lock")
	}
	lt.Lock(a, pg(1), LockS)
	if m, held := lt.Holds(a, pg(1)); !held || m != LockS {
		t.Fatalf("Holds = %v,%v", m, held)
	}
}

func TestEmptyOnFreshTable(t *testing.T) {
	if !NewLockTable().Empty() {
		t.Fatal("fresh table not empty")
	}
}

func TestWaitsForEdgesEmptyWhenNoWaiters(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.Lock(a, pg(1), LockX)
	if edges := lt.WaitsForEdges(0); len(edges) != 0 {
		t.Fatalf("edges %v with no waiters", edges)
	}
}

func TestSameTxnTwoCohortsDontConflictInEdges(t *testing.T) {
	// Two cohorts of the same transaction (different nodes in reality;
	// same table here) must not generate self waits-for edges.
	lt := NewLockTable()
	txn := &TxnMeta{ID: 1, TS: 1}
	c1 := &CohortMeta{Txn: txn}
	c2 := &CohortMeta{Txn: txn}
	lt.Lock(c1, pg(1), LockX)
	lt.Lock(c2, pg(1), LockX) // queued behind its own transaction
	for _, e := range lt.WaitsForEdges(0) {
		if e.Waiter == e.Blocker {
			t.Fatal("self edge emitted")
		}
	}
}

func TestPromoteAfterDownToZeroHolders(t *testing.T) {
	s := sim.New(1)
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockX)
	var got Outcome
	s.Spawn("b", func(p *sim.Proc) {
		b.Proc = p
		if ok, _ := lt.Lock(b, pg(1), LockX); !ok {
			got = b.Block()
		} else {
			got = Granted
		}
		lt.ReleaseAll(b)
	})
	s.Spawn("rel", func(p *sim.Proc) {
		p.Delay(5)
		lt.ReleaseAll(a)
	})
	s.Run(100)
	if got != Granted {
		t.Fatalf("outcome %v", got)
	}
	if !lt.Empty() {
		t.Fatal("table not empty")
	}
}

func TestLockManyDistinctPages(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	for i := 0; i < 100; i++ {
		if ok, _ := lt.Lock(a, db.PageID{File: i % 8, Page: i}, LockX); !ok {
			t.Fatal("uncontended lock denied")
		}
	}
	if lt.HeldCount(a) != 100 {
		t.Fatalf("held %d, want 100", lt.HeldCount(a))
	}
	lt.ReleaseAll(a)
	if !lt.Empty() {
		t.Fatal("not empty after release")
	}
}
