package cc

import "sort"

// WaitsForProvider is implemented by managers that can report their node's
// waits-for graph (the locking algorithms); the Snoop gathers these.
type WaitsForProvider interface {
	WaitsForEdges() []Edge
}

// Edge is one waits-for relationship: Waiter is blocked by Blocker at Node.
type Edge struct {
	Waiter  *TxnMeta
	Blocker *TxnMeta
	Node    int
}

// FindVictims detects every cycle in the waits-for graph described by edges
// and selects, per cycle, the member with the most recent initial startup
// time (largest TS) that is still abortable — the paper's deadlock
// resolution policy for 2PL. Victims are removed from the graph and
// detection repeats until the graph is acyclic. Cycles whose members are all
// unabortable (already aborting or already past the commit decision) resolve
// themselves and yield no victim.
//
// The result is deterministic: nodes are visited in transaction-ID order.
func FindVictims(edges []Edge) []*TxnMeta {
	adj := make(map[*TxnMeta][]*TxnMeta)
	var txns []*TxnMeta
	seen := make(map[*TxnMeta]bool)
	note := func(t *TxnMeta) {
		if !seen[t] {
			seen[t] = true
			txns = append(txns, t)
		}
	}
	for _, e := range edges {
		if e.Waiter == e.Blocker {
			continue
		}
		note(e.Waiter)
		note(e.Blocker)
		adj[e.Waiter] = append(adj[e.Waiter], e.Blocker)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i].ID < txns[j].ID })
	//ddbmlint:ordered each adjacency list is sorted in place independently; no state crosses iterations
	for _, succ := range adj {
		sort.Slice(succ, func(i, j int) bool { return succ[i].ID < succ[j].ID })
	}

	removed := make(map[*TxnMeta]bool)
	var victims []*TxnMeta
	for {
		cycle := findCycle(txns, adj, removed)
		if cycle == nil {
			return victims
		}
		victim := pickVictim(cycle)
		if victim == nil {
			// Every member is already dying or committing; the cycle will
			// break on its own. Drop one member so detection terminates.
			removed[cycle[0]] = true
			continue
		}
		removed[victim] = true
		victims = append(victims, victim)
	}
}

// pickVictim chooses the abortable cycle member with the largest startup
// timestamp (most recently started transaction).
func pickVictim(cycle []*TxnMeta) *TxnMeta {
	var victim *TxnMeta
	for _, t := range cycle {
		if !t.Abortable() {
			continue
		}
		if victim == nil || t.TS > victim.TS || (t.TS == victim.TS && t.ID > victim.ID) {
			victim = t
		}
	}
	return victim
}

// findCycle returns the transactions on some cycle of the graph, or nil if
// the graph (minus removed nodes) is acyclic. Iterative DFS with the
// classic white/grey/black colouring.
func findCycle(txns []*TxnMeta, adj map[*TxnMeta][]*TxnMeta, removed map[*TxnMeta]bool) []*TxnMeta {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*TxnMeta]int, len(txns))
	type frame struct {
		t    *TxnMeta
		next int
	}
	for _, start := range txns {
		if removed[start] || color[start] != white {
			continue
		}
		stack := []frame{{t: start}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := adj[f.t]
			advanced := false
			for f.next < len(succ) {
				n := succ[f.next]
				f.next++
				if removed[n] {
					continue
				}
				switch color[n] {
				case white:
					color[n] = grey
					stack = append(stack, frame{t: n})
					advanced = true
				case grey:
					// Found a back edge: the cycle is n ... f.t on the stack.
					var cycle []*TxnMeta
					i := len(stack) - 1
					for ; i >= 0; i-- {
						cycle = append(cycle, stack[i].t)
						if stack[i].t == n {
							break
						}
					}
					return cycle
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.t] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// HasCycle reports whether the waits-for graph contains any cycle,
// ignoring no nodes. Exposed for tests and invariant checks.
func HasCycle(edges []Edge) bool {
	adj := make(map[*TxnMeta][]*TxnMeta)
	var txns []*TxnMeta
	seen := make(map[*TxnMeta]bool)
	for _, e := range edges {
		if e.Waiter == e.Blocker {
			continue
		}
		if !seen[e.Waiter] {
			seen[e.Waiter] = true
			txns = append(txns, e.Waiter)
		}
		if !seen[e.Blocker] {
			seen[e.Blocker] = true
			txns = append(txns, e.Blocker)
		}
		adj[e.Waiter] = append(adj[e.Waiter], e.Blocker)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i].ID < txns[j].ID })
	return findCycle(txns, adj, map[*TxnMeta]bool{}) != nil
}
