package cc

import (
	"cmp"
	"slices"
	"sync/atomic"
)

// txnIDLess orders transactions by ID for the deterministic visit orders
// below. All sort call sites use slices.SortFunc (generic, no
// reflectlite.Swapper); the permutation is identical to the former
// sort.Slice calls because both are generated from the same pdqsort
// template.
func txnIDLess(a, b *TxnMeta) int { return cmp.Compare(a.ID, b.ID) }

// WaitsForProvider is implemented by managers that can report their node's
// waits-for graph (the locking algorithms); the Snoop gathers these.
type WaitsForProvider interface {
	WaitsForEdges() []Edge
}

// Edge is one waits-for relationship: Waiter is blocked by Blocker at Node.
type Edge struct {
	Waiter  *TxnMeta
	Blocker *TxnMeta
	Node    int
}

// Detector runs deadlock detection over waits-for graphs, reusing all of
// its scratch (graph arrays, DFS stack, colouring) across calls. Local 2PL
// detection runs on every block, so the holder of a long-lived Detector
// pays zero steady-state allocations; the zero value is ready to use. A
// Detector is not safe for concurrent use — hold one per manager (or per
// Snoop process), never share across simulations.
type Detector struct {
	// gen is the globally unique generation of the current detection pass
	// (drawn from detPass in load). Transactions carry their first-seen
	// rank stamped with this generation (TxnMeta.detGen/detRank); the
	// adjacency rows and the colouring/removal arrays are indexed by that
	// rank, which is stable across the ID-order sort of txns below.
	gen  uint64
	txns []*TxnMeta
	// adj's rows are carved out of the single backing array flat (deg
	// holds the out-degree counts the carving is planned from): the only
	// growth quantities are the total node and edge high-water marks,
	// which converge quickly — per-row capacities, which depend on which
	// transaction lands on which rank, never would.
	adj     [][]*TxnMeta
	flat    []*TxnMeta
	deg     []int32
	removed []bool
	color   []int8
	stack   []dfsFrame
	cycle   []*TxnMeta
	victims []*TxnMeta
}

type dfsFrame struct {
	t    *TxnMeta
	r    int // rank of t: adjacency row index
	next int
}

// detPass issues globally unique detection-pass generations (atomic so
// detectors in concurrently running simulations — parallel tests — never
// share one). Uniqueness is all that matters: a stack-allocated one-shot
// Detector at a reused address must not mistake a previous detector's
// stamps for its own.
var detPass atomic.Uint64

// Reserve pre-sizes the detector's scratch for graphs of up to nodes
// transactions and edgeCount waits-for edges, retiring the guarded growth
// allocations below for any graph within those bounds. The growth sites
// are self-amortising, but record-sized graphs arrive too rarely for a
// warmup to retire them deterministically (high-water records thin out as
// 1/t), so holders with a pinned allocation budget pre-size from their
// concurrency bound instead.
func (d *Detector) Reserve(nodes, edgeCount int) {
	if cap(d.txns) < nodes {
		d.txns = make([]*TxnMeta, 0, nodes)
	}
	if cap(d.deg) < nodes {
		d.deg = make([]int32, 0, nodes)
	}
	if cap(d.adj) < nodes {
		d.adj = make([][]*TxnMeta, 0, nodes)
	}
	if cap(d.removed) < nodes {
		d.removed = make([]bool, 0, nodes)
	}
	if cap(d.color) < nodes {
		d.color = make([]int8, 0, nodes)
	}
	if cap(d.stack) < nodes {
		d.stack = make([]dfsFrame, 0, nodes)
	}
	if cap(d.cycle) < nodes {
		d.cycle = make([]*TxnMeta, 0, nodes)
	}
	if cap(d.victims) < nodes {
		d.victims = make([]*TxnMeta, 0, nodes)
	}
	if cap(d.flat) < edgeCount {
		d.flat = make([]*TxnMeta, 0, edgeCount)
	}
}

// FindVictims detects every cycle in the waits-for graph described by edges
// and selects, per cycle, the member with the most recent initial startup
// time (largest TS) that is still abortable — the paper's deadlock
// resolution policy for 2PL. Victims are removed from the graph and
// detection repeats until the graph is acyclic. Cycles whose members are all
// unabortable (already aborting or already past the commit decision) resolve
// themselves and yield no victim.
//
// The result is deterministic: nodes are visited in transaction-ID order.
// The returned slice is the detector's own buffer, valid until the next
// call on this Detector.
//
//ddbmlint:hotpath per-block deadlock detection pinned by TestSteadyStateAllocFree
func (d *Detector) FindVictims(edges []Edge) []*TxnMeta {
	d.victims = d.victims[:0]
	if len(edges) == 0 {
		return nil
	}
	d.load(edges)
	n := len(d.txns)
	if cap(d.removed) < n {
		d.removed = make([]bool, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.removed = d.removed[:n]
		clear(d.removed)
	}
	for {
		cycle := d.findCycle()
		if cycle == nil {
			return d.victims
		}
		victim := pickVictim(cycle)
		if victim == nil {
			// Every member is already dying or committing; the cycle will
			// break on its own. Drop one member so detection terminates.
			d.removed[cycle[0].detRank] = true
			continue
		}
		d.removed[victim.detRank] = true
		d.victims = append(d.victims, victim) //ddbmlint:allow hotpath-alloc victim scratch grows to its high-water mark
	}
}

// load rebuilds the graph arrays from edges: txns in first-seen order then
// sorted by ID, adjacency rows in edge order then each sorted by ID —
// exactly the orders the former map-based construction produced, so the
// victim sequence is unchanged. Rows are carved from one flat backing
// array sized by counting out-degrees first.
func (d *Detector) load(edges []Edge) {
	d.gen = detPass.Add(1)
	d.txns = d.txns[:0]
	total := 0
	for _, e := range edges {
		if e.Waiter == e.Blocker {
			continue
		}
		d.note(e.Waiter)
		d.note(e.Blocker)
		total++
	}
	n := len(d.txns)
	if cap(d.deg) < n {
		d.deg = make([]int32, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.deg = d.deg[:n]
		clear(d.deg)
	}
	for _, e := range edges {
		if e.Waiter != e.Blocker {
			d.deg[e.Waiter.detRank]++
		}
	}
	if cap(d.flat) < total {
		d.flat = make([]*TxnMeta, total) //ddbmlint:allow hotpath-alloc guarded growth to the edge-count high-water mark
	} else {
		d.flat = d.flat[:total]
	}
	if cap(d.adj) < n {
		d.adj = make([][]*TxnMeta, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.adj = d.adj[:n]
	}
	off := 0
	for r := 0; r < n; r++ {
		end := off + int(d.deg[r])
		d.adj[r] = d.flat[off:off:end]
		off = end
	}
	for _, e := range edges {
		if e.Waiter == e.Blocker {
			continue
		}
		w := e.Waiter.detRank
		d.adj[w] = append(d.adj[w], e.Blocker) //ddbmlint:allow hotpath-alloc never grows: rows are carved with capacity for each row's counted out-degree
	}
	slices.SortFunc(d.txns, txnIDLess)
	for i := range d.adj {
		slices.SortFunc(d.adj[i], txnIDLess)
	}
}

// note assigns t its first-seen rank for this pass, stamping it with the
// pass generation.
func (d *Detector) note(t *TxnMeta) {
	if t.detGen == d.gen {
		return
	}
	t.detGen = d.gen
	t.detRank = int32(len(d.txns))
	d.txns = append(d.txns, t) //ddbmlint:allow hotpath-alloc node scratch grows to its high-water mark
}

// findCycle returns the transactions on some cycle of the graph, or nil if
// the graph (minus removed nodes) is acyclic. Iterative DFS with the
// classic white/grey/black colouring. The returned slice is the detector's
// cycle buffer, valid until the next findCycle call.
func (d *Detector) findCycle() []*TxnMeta {
	const (
		white = int8(0)
		grey  = int8(1)
		black = int8(2)
	)
	n := len(d.txns)
	if cap(d.color) < n {
		d.color = make([]int8, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.color = d.color[:n]
		clear(d.color)
	}
	for _, start := range d.txns {
		sr := int(start.detRank)
		if d.removed[sr] || d.color[sr] != white {
			continue
		}
		d.stack = append(d.stack[:0], dfsFrame{t: start, r: sr})
		d.color[sr] = grey
		for len(d.stack) > 0 {
			f := &d.stack[len(d.stack)-1]
			succ := d.adj[f.r]
			advanced := false
			for f.next < len(succ) {
				t := succ[f.next]
				f.next++
				nr := int(t.detRank)
				if d.removed[nr] {
					continue
				}
				switch d.color[nr] {
				case white:
					d.color[nr] = grey
					d.stack = append(d.stack, dfsFrame{t: t, r: nr}) //ddbmlint:allow hotpath-alloc DFS stack grows to its high-water mark
					advanced = true
				case grey:
					// Found a back edge: the cycle is t ... f.t on the stack.
					d.cycle = d.cycle[:0]
					for i := len(d.stack) - 1; i >= 0; i-- {
						d.cycle = append(d.cycle, d.stack[i].t) //ddbmlint:allow hotpath-alloc cycle scratch grows to its high-water mark
						if d.stack[i].t == t {
							break
						}
					}
					return d.cycle
				}
				if advanced {
					break
				}
			}
			if !advanced {
				d.color[f.r] = black
				d.stack = d.stack[:len(d.stack)-1]
			}
		}
	}
	return nil
}

// FindVictims is the one-shot form of Detector.FindVictims for callers
// without a detection hot path (tests, invariant checks): it pays the
// scratch allocations every call and returns a slice the caller owns.
func FindVictims(edges []Edge) []*TxnMeta {
	var d Detector
	return d.FindVictims(edges)
}

// pickVictim chooses the abortable cycle member with the largest startup
// timestamp (most recently started transaction).
func pickVictim(cycle []*TxnMeta) *TxnMeta {
	var victim *TxnMeta
	for _, t := range cycle {
		if !t.Abortable() {
			continue
		}
		if victim == nil || t.TS > victim.TS || (t.TS == victim.TS && t.ID > victim.ID) {
			victim = t
		}
	}
	return victim
}

// HasCycle reports whether the waits-for graph contains any cycle,
// ignoring no nodes. Exposed for tests and invariant checks.
func HasCycle(edges []Edge) bool {
	if len(edges) == 0 {
		return false
	}
	var d Detector
	d.load(edges)
	d.removed = make([]bool, len(d.txns))
	return d.findCycle() != nil
}
