package cc

import (
	"cmp"
	"slices"
)

// txnIDLess orders transactions by ID for the deterministic visit orders
// below. All sort call sites use slices.SortFunc (generic, no
// reflectlite.Swapper); the permutation is identical to the former
// sort.Slice calls because both are generated from the same pdqsort
// template.
func txnIDLess(a, b *TxnMeta) int { return cmp.Compare(a.ID, b.ID) }

// WaitsForProvider is implemented by managers that can report their node's
// waits-for graph (the locking algorithms); the Snoop gathers these.
type WaitsForProvider interface {
	WaitsForEdges() []Edge
}

// Edge is one waits-for relationship: Waiter is blocked by Blocker at Node.
type Edge struct {
	Waiter  *TxnMeta
	Blocker *TxnMeta
	Node    int
}

// Detector runs deadlock detection over waits-for graphs, reusing all of
// its scratch (graph arrays, DFS stack, colouring) across calls. Local 2PL
// detection runs on every block, so the holder of a long-lived Detector
// pays zero steady-state allocations; the zero value is ready to use. A
// Detector is not safe for concurrent use — hold one per manager (or per
// Snoop process), never share across simulations.
type Detector struct {
	// rank maps each transaction to its first-seen position; the adjacency
	// rows and the colouring/removal arrays are indexed by that rank, which
	// is stable across the ID-order sort of txns below.
	rank    map[*TxnMeta]int
	txns    []*TxnMeta
	adj     [][]*TxnMeta
	removed []bool
	color   []int8
	stack   []dfsFrame
	cycle   []*TxnMeta
	victims []*TxnMeta
}

type dfsFrame struct {
	t    *TxnMeta
	r    int // rank of t: adjacency row index
	next int
}

// FindVictims detects every cycle in the waits-for graph described by edges
// and selects, per cycle, the member with the most recent initial startup
// time (largest TS) that is still abortable — the paper's deadlock
// resolution policy for 2PL. Victims are removed from the graph and
// detection repeats until the graph is acyclic. Cycles whose members are all
// unabortable (already aborting or already past the commit decision) resolve
// themselves and yield no victim.
//
// The result is deterministic: nodes are visited in transaction-ID order.
// The returned slice is the detector's own buffer, valid until the next
// call on this Detector.
//
//ddbmlint:hotpath per-block deadlock detection pinned by TestSteadyStateAllocFree
func (d *Detector) FindVictims(edges []Edge) []*TxnMeta {
	d.victims = d.victims[:0]
	if len(edges) == 0 {
		return nil
	}
	d.load(edges)
	n := len(d.txns)
	if cap(d.removed) < n {
		d.removed = make([]bool, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.removed = d.removed[:n]
		clear(d.removed)
	}
	for {
		cycle := d.findCycle()
		if cycle == nil {
			return d.victims
		}
		victim := pickVictim(cycle)
		if victim == nil {
			// Every member is already dying or committing; the cycle will
			// break on its own. Drop one member so detection terminates.
			d.removed[d.rank[cycle[0]]] = true
			continue
		}
		d.removed[d.rank[victim]] = true
		d.victims = append(d.victims, victim) //ddbmlint:allow hotpath-alloc victim scratch grows to its high-water mark
	}
}

// load rebuilds the graph arrays from edges: txns in first-seen order then
// sorted by ID, adjacency rows in edge order then each sorted by ID —
// exactly the orders the former map-based construction produced, so the
// victim sequence is unchanged.
func (d *Detector) load(edges []Edge) {
	if d.rank == nil {
		d.rank = make(map[*TxnMeta]int) //ddbmlint:allow hotpath-alloc first call on this Detector only
	} else {
		clear(d.rank)
	}
	d.txns = d.txns[:0]
	for i := range d.adj {
		d.adj[i] = d.adj[i][:0]
	}
	for _, e := range edges {
		if e.Waiter == e.Blocker {
			continue
		}
		w := d.note(e.Waiter)
		d.note(e.Blocker)
		d.adj[w] = append(d.adj[w], e.Blocker) //ddbmlint:allow hotpath-alloc adjacency rows grow to their high-water mark
	}
	slices.SortFunc(d.txns, txnIDLess)
	for i := range d.adj[:len(d.txns)] {
		slices.SortFunc(d.adj[i], txnIDLess)
	}
}

// note assigns t its first-seen rank (growing the adjacency table in step)
// and returns it.
func (d *Detector) note(t *TxnMeta) int {
	if r, ok := d.rank[t]; ok {
		return r
	}
	r := len(d.txns)
	d.rank[t] = r
	d.txns = append(d.txns, t) //ddbmlint:allow hotpath-alloc node scratch grows to its high-water mark
	if len(d.adj) < len(d.txns) {
		d.adj = append(d.adj, nil) //ddbmlint:allow hotpath-alloc adjacency table grows to its high-water mark
	}
	return r
}

// findCycle returns the transactions on some cycle of the graph, or nil if
// the graph (minus removed nodes) is acyclic. Iterative DFS with the
// classic white/grey/black colouring. The returned slice is the detector's
// cycle buffer, valid until the next findCycle call.
func (d *Detector) findCycle() []*TxnMeta {
	const (
		white = int8(0)
		grey  = int8(1)
		black = int8(2)
	)
	n := len(d.txns)
	if cap(d.color) < n {
		d.color = make([]int8, n) //ddbmlint:allow hotpath-alloc guarded growth to the graph's high-water size
	} else {
		d.color = d.color[:n]
		clear(d.color)
	}
	for _, start := range d.txns {
		sr := d.rank[start]
		if d.removed[sr] || d.color[sr] != white {
			continue
		}
		d.stack = append(d.stack[:0], dfsFrame{t: start, r: sr})
		d.color[sr] = grey
		for len(d.stack) > 0 {
			f := &d.stack[len(d.stack)-1]
			succ := d.adj[f.r]
			advanced := false
			for f.next < len(succ) {
				t := succ[f.next]
				f.next++
				nr := d.rank[t]
				if d.removed[nr] {
					continue
				}
				switch d.color[nr] {
				case white:
					d.color[nr] = grey
					d.stack = append(d.stack, dfsFrame{t: t, r: nr}) //ddbmlint:allow hotpath-alloc DFS stack grows to its high-water mark
					advanced = true
				case grey:
					// Found a back edge: the cycle is t ... f.t on the stack.
					d.cycle = d.cycle[:0]
					for i := len(d.stack) - 1; i >= 0; i-- {
						d.cycle = append(d.cycle, d.stack[i].t) //ddbmlint:allow hotpath-alloc cycle scratch grows to its high-water mark
						if d.stack[i].t == t {
							break
						}
					}
					return d.cycle
				}
				if advanced {
					break
				}
			}
			if !advanced {
				d.color[f.r] = black
				d.stack = d.stack[:len(d.stack)-1]
			}
		}
	}
	return nil
}

// FindVictims is the one-shot form of Detector.FindVictims for callers
// without a detection hot path (tests, invariant checks): it pays the
// scratch allocations every call and returns a slice the caller owns.
func FindVictims(edges []Edge) []*TxnMeta {
	var d Detector
	return d.FindVictims(edges)
}

// pickVictim chooses the abortable cycle member with the largest startup
// timestamp (most recently started transaction).
func pickVictim(cycle []*TxnMeta) *TxnMeta {
	var victim *TxnMeta
	for _, t := range cycle {
		if !t.Abortable() {
			continue
		}
		if victim == nil || t.TS > victim.TS || (t.TS == victim.TS && t.ID > victim.ID) {
			victim = t
		}
	}
	return victim
}

// HasCycle reports whether the waits-for graph contains any cycle,
// ignoring no nodes. Exposed for tests and invariant checks.
func HasCycle(edges []Edge) bool {
	if len(edges) == 0 {
		return false
	}
	var d Detector
	d.load(edges)
	d.removed = make([]bool, len(d.txns))
	return d.findCycle() != nil
}
