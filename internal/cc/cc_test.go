package cc

import (
	"testing"

	"ddbm/internal/sim"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		TwoPL: "2PL", WoundWait: "WW", BTO: "BTO", OPT: "OPT", NoDC: "NO_DC",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
		parsed, err := ParseKind(want)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", want, parsed, err)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != 5 {
		t.Fatalf("Kinds() has %d entries", len(ks))
	}
	// Paper presentation order: 2PL, BTO, WW, OPT, then the baseline.
	want := []Kind{TwoPL, BTO, WoundWait, OPT, NoDC}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("Kinds() = %v", ks)
		}
	}
}

func TestRequestAbortIdempotent(t *testing.T) {
	calls := 0
	m := &TxnMeta{ID: 1, TS: 1}
	m.OnAbort = func(fromNode int, reason string) { calls++ }
	if !m.RequestAbort(3, "first", CauseWound) {
		t.Error("first abort request refused")
	}
	if !m.RequestAbort(4, "second", CauseLocalDeadlock) {
		t.Error("repeat abort request should report accepted")
	}
	if calls != 1 {
		t.Errorf("OnAbort called %d times, want 1", calls)
	}
	if m.AbortReason != "first" {
		t.Errorf("reason %q, want the first one", m.AbortReason)
	}
	if m.AbortCause != CauseWound || m.AbortNode != 3 {
		t.Errorf("cause %v at node %d, want the first one (wound at 3)", m.AbortCause, m.AbortNode)
	}
}

func TestNoteCauseFirstWins(t *testing.T) {
	m := &TxnMeta{ID: 1}
	m.NoteCause(2, CauseBTOTooLate)
	m.NoteCause(5, CauseCoordinator)
	if m.AbortCause != CauseBTOTooLate || m.AbortNode != 2 {
		t.Errorf("cause %v at node %d, want bto-too-late at 2", m.AbortCause, m.AbortNode)
	}
	if m.AbortRequested {
		t.Error("NoteCause must not request the abort itself")
	}
}

func TestRequestAbortRefusedAfterCommitDecision(t *testing.T) {
	m := &TxnMeta{ID: 1, TS: 1, State: Committing}
	called := false
	m.OnAbort = func(int, string) { called = true }
	if m.RequestAbort(0, "wound", CauseWound) {
		t.Error("wound in commit phase two must be refused (not fatal)")
	}
	if called || m.AbortRequested {
		t.Error("refused abort mutated the transaction")
	}
}

func TestRequestAbortAllowedWhilePreparing(t *testing.T) {
	m := &TxnMeta{ID: 1, TS: 1, State: Preparing}
	if !m.RequestAbort(0, "wound", CauseWound) {
		t.Error("abort during phase one must be accepted")
	}
}

func TestAbortable(t *testing.T) {
	m := &TxnMeta{}
	if !m.Abortable() {
		t.Error("fresh txn should be abortable")
	}
	m.State = Committing
	if m.Abortable() {
		t.Error("committing txn should not be abortable")
	}
	m2 := &TxnMeta{AbortRequested: true}
	if m2.Abortable() {
		t.Error("already-aborting txn should not be abortable")
	}
}

func TestCohortBlockGrant(t *testing.T) {
	s := sim.New(1)
	var co *CohortMeta
	var out Outcome
	var blockedFor sim.Time
	s.Spawn("cohort", func(p *sim.Proc) {
		co = &CohortMeta{Txn: &TxnMeta{ID: 1}, Proc: p,
			OnBlocked: func(_ *CohortMeta, d sim.Time) { blockedFor = d }}
		out = co.Block()
	})
	s.Spawn("granter", func(p *sim.Proc) {
		p.Delay(15)
		if !co.Waiting() {
			t.Error("cohort not marked waiting")
		}
		co.Grant()
	})
	s.Run(100)
	if out != Granted {
		t.Errorf("outcome %v, want granted", out)
	}
	if blockedFor != 15 {
		t.Errorf("blocking episode %v ms, want 15", blockedFor)
	}
	if co.Waiting() {
		t.Error("cohort still waiting after grant")
	}
}

func TestCohortBlockDeny(t *testing.T) {
	s := sim.New(1)
	var co *CohortMeta
	var out Outcome
	s.Spawn("cohort", func(p *sim.Proc) {
		co = &CohortMeta{Txn: &TxnMeta{ID: 1}, Proc: p}
		out = co.Block()
	})
	s.Spawn("denier", func(p *sim.Proc) {
		p.Delay(5)
		co.Deny()
	})
	s.Run(100)
	if out != Aborted {
		t.Errorf("outcome %v, want aborted", out)
	}
}

func TestGrantBeforeBlockPreResolves(t *testing.T) {
	// A queued request can be granted synchronously (its blocker releases
	// before the requester parks); Block must then return immediately.
	s := sim.New(1)
	var out Outcome
	var tookTime bool
	s.Spawn("cohort", func(p *sim.Proc) {
		co := &CohortMeta{Txn: &TxnMeta{ID: 1}, Proc: p}
		co.Grant() // verdict arrives before Block
		start := s.Now()
		out = co.Block()
		tookTime = s.Now() != start
	})
	s.Run(10)
	if out != Granted {
		t.Errorf("outcome %v, want granted", out)
	}
	if tookTime {
		t.Error("pre-resolved Block consumed simulated time")
	}
}

func TestDenyBeforeBlockPreResolves(t *testing.T) {
	s := sim.New(1)
	var out Outcome
	s.Spawn("cohort", func(p *sim.Proc) {
		co := &CohortMeta{Txn: &TxnMeta{ID: 1}, Proc: p}
		co.Deny()
		out = co.Block()
	})
	s.Run(10)
	if out != Aborted {
		t.Errorf("outcome %v, want aborted", out)
	}
}

func TestOutcomeString(t *testing.T) {
	if Granted.String() != "granted" || Aborted.String() != "aborted" {
		t.Error("outcome strings wrong")
	}
}
