package cc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// fakeCohort builds a cohort that is never actually blocked in a process;
// for pure lock-table tests we only exercise enqueue/grant bookkeeping via
// the Waiting flag, so we give it a process lazily when needed.
func fakeCohort(id int64) *CohortMeta {
	return &CohortMeta{Txn: &TxnMeta{ID: id, TS: id}}
}

var pg = func(n int) db.PageID { return db.PageID{File: 0, Page: n} }

func TestLockSharedCompatible(t *testing.T) {
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	if ok, _ := lt.Lock(a, pg(1), LockS); !ok {
		t.Fatal("first S lock not granted")
	}
	if ok, _ := lt.Lock(b, pg(1), LockS); !ok {
		t.Fatal("second S lock not granted")
	}
}

func TestLockExclusiveConflicts(t *testing.T) {
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockX)
	ok, conflicts := lt.Lock(b, pg(1), LockX)
	if ok {
		t.Fatal("conflicting X lock granted")
	}
	if len(conflicts) != 1 || conflicts[0] != a {
		t.Fatalf("conflicts = %v, want [a]", conflicts)
	}
}

func TestLockSXConflict(t *testing.T) {
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockS)
	if ok, _ := lt.Lock(b, pg(1), LockX); ok {
		t.Fatal("X granted alongside S")
	}
	lt2 := NewLockTable()
	lt2.Lock(a, pg(1), LockX)
	if ok, _ := lt2.Lock(b, pg(1), LockS); ok {
		t.Fatal("S granted alongside X")
	}
}

func TestLockReentrant(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.Lock(a, pg(1), LockS)
	if ok, _ := lt.Lock(a, pg(1), LockS); !ok {
		t.Fatal("re-request of held S not granted")
	}
	lt.Lock(a, pg(2), LockX)
	if ok, _ := lt.Lock(a, pg(2), LockS); !ok {
		t.Fatal("S under held X not granted")
	}
	if ok, _ := lt.Lock(a, pg(2), LockX); !ok {
		t.Fatal("re-request of held X not granted")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.Lock(a, pg(1), LockS)
	if ok, _ := lt.Lock(a, pg(1), LockX); !ok {
		t.Fatal("sole-holder upgrade not immediate")
	}
	if m, _ := lt.Holds(a, pg(1)); m != LockX {
		t.Fatalf("mode after upgrade %v, want X", m)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	s := sim.New(1)
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(b, pg(1), LockS)

	var upgraded bool
	s.Spawn("upgrader", func(p *sim.Proc) {
		a.Proc = p
		ok, conflicts := lt.Lock(a, pg(1), LockX)
		if ok {
			t.Error("upgrade granted with another reader present")
			return
		}
		if len(conflicts) != 1 || conflicts[0] != b {
			t.Errorf("upgrade conflicts %v, want [b]", conflicts)
		}
		if a.Block() == Granted {
			upgraded = true
		}
	})
	s.Spawn("releaser", func(p *sim.Proc) {
		p.Delay(10)
		lt.ReleaseAll(b)
	})
	s.Run(100)
	if !upgraded {
		t.Fatal("upgrade never granted after reader release")
	}
	if m, _ := lt.Holds(a, pg(1)); m != LockX {
		t.Fatal("upgrade did not set X mode")
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	// a holds S; c queues for X; a upgrades — the upgrade must be served
	// before c's X when a is sole holder again.
	s := sim.New(1)
	lt := NewLockTable()
	a, b, c := fakeCohort(1), fakeCohort(2), fakeCohort(3)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(b, pg(1), LockS)

	var order []string
	s.Spawn("c-writer", func(p *sim.Proc) {
		c.Proc = p
		if ok, _ := lt.Lock(c, pg(1), LockX); !ok {
			c.Block()
		}
		order = append(order, "c")
		lt.ReleaseAll(c)
	})
	s.Spawn("a-upgrader", func(p *sim.Proc) {
		a.Proc = p
		p.Delay(1)
		if ok, _ := lt.Lock(a, pg(1), LockX); !ok {
			a.Block()
		}
		order = append(order, "a")
		lt.ReleaseAll(a)
	})
	s.Spawn("b-releaser", func(p *sim.Proc) {
		p.Delay(5)
		lt.ReleaseAll(b)
	})
	s.Run(100)
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Fatalf("service order %v, want upgrade (a) before queued writer (c)", order)
	}
}

func TestQueueFIFONoOvertaking(t *testing.T) {
	// S request behind a queued X request must wait (no starvation of X).
	lt := NewLockTable()
	a, b, c := fakeCohort(1), fakeCohort(2), fakeCohort(3)
	lt.Lock(a, pg(1), LockS)
	if ok, _ := lt.Lock(b, pg(1), LockX); ok {
		t.Fatal("X granted alongside S")
	}
	ok, conflicts := lt.Lock(c, pg(1), LockS)
	if ok {
		t.Fatal("S overtook queued X")
	}
	// c waits for b (queued ahead, conflicting).
	found := false
	for _, cf := range conflicts {
		if cf == b {
			found = true
		}
	}
	if !found {
		t.Errorf("S behind X: conflicts %v should include the queued X", conflicts)
	}
}

func TestReleasePromotesBatchOfReaders(t *testing.T) {
	s := sim.New(1)
	lt := NewLockTable()
	w := fakeCohort(1)
	lt.Lock(w, pg(1), LockX)
	granted := 0
	for i := 0; i < 3; i++ {
		r := fakeCohort(int64(10 + i))
		s.Spawn("reader", func(p *sim.Proc) {
			r.Proc = p
			if ok, _ := lt.Lock(r, pg(1), LockS); !ok {
				if r.Block() != Granted {
					return
				}
			}
			granted++
		})
	}
	s.Spawn("releaser", func(p *sim.Proc) {
		p.Delay(10)
		lt.ReleaseAll(w)
	})
	s.Run(100)
	if granted != 3 {
		t.Fatalf("%d readers granted after X release, want all 3 (batch promote)", granted)
	}
}

func TestRemoveWaiterPromotes(t *testing.T) {
	s := sim.New(1)
	lt := NewLockTable()
	a, b, c := fakeCohort(1), fakeCohort(2), fakeCohort(3)
	lt.Lock(a, pg(1), LockS)
	var cGranted bool
	s.Spawn("b", func(p *sim.Proc) {
		b.Proc = p
		if ok, _ := lt.Lock(b, pg(1), LockX); !ok {
			b.Block() // will be removed, not denied, in this test
		}
	})
	s.Spawn("c", func(p *sim.Proc) {
		c.Proc = p
		p.Delay(1)
		if ok, _ := lt.Lock(c, pg(1), LockS); !ok {
			if c.Block() == Granted {
				cGranted = true
			}
			return
		}
		cGranted = true
	})
	s.Spawn("cleanup", func(p *sim.Proc) {
		p.Delay(5)
		lt.RemoveWaiter(b)
		if b.Waiting() {
			b.Deny()
		}
	})
	s.Run(100)
	if !cGranted {
		t.Fatal("removing the queued X did not unblock the compatible S behind it")
	}
}

func TestReleaseAllIdempotent(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(a, pg(2), LockX)
	lt.ReleaseAll(a)
	lt.ReleaseAll(a) // second call must be a no-op
	if !lt.Empty() {
		t.Fatal("table not empty after release")
	}
}

func TestHeldCount(t *testing.T) {
	lt := NewLockTable()
	a := fakeCohort(1)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(a, pg(2), LockS)
	lt.Lock(a, pg(2), LockX) // upgrade, same page
	if n := lt.HeldCount(a); n != 2 {
		t.Errorf("held count %d, want 2", n)
	}
}

func TestWaitsForEdges(t *testing.T) {
	lt := NewLockTable()
	a, b, c := fakeCohort(1), fakeCohort(2), fakeCohort(3)
	lt.Lock(a, pg(1), LockX)
	lt.Lock(b, pg(1), LockX) // b waits for a
	lt.Lock(c, pg(1), LockS) // c waits for a (holder) and b (queued ahead)
	edges := lt.WaitsForEdges(0)
	type pair struct{ w, h int64 }
	got := map[pair]bool{}
	for _, e := range edges {
		got[pair{e.Waiter.ID, e.Blocker.ID}] = true
		if e.Node != 0 {
			t.Errorf("edge node %d, want 0", e.Node)
		}
	}
	for _, want := range []pair{{2, 1}, {3, 1}, {3, 2}} {
		if !got[want] {
			t.Errorf("missing edge %v in %v", want, got)
		}
	}
}

func TestWaitsForEdgesUpgradeDeadlockVisible(t *testing.T) {
	// Two S holders both requesting upgrades: classic conversion deadlock;
	// both edges must appear.
	lt := NewLockTable()
	a, b := fakeCohort(1), fakeCohort(2)
	lt.Lock(a, pg(1), LockS)
	lt.Lock(b, pg(1), LockS)
	lt.Lock(a, pg(1), LockX)
	lt.Lock(b, pg(1), LockX)
	edges := lt.WaitsForEdges(0)
	if !HasCycle(edges) {
		t.Fatal("conversion deadlock not visible in waits-for graph")
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(LockS, LockS) {
		t.Error("S-S should be compatible")
	}
	if Compatible(LockS, LockX) || Compatible(LockX, LockS) || Compatible(LockX, LockX) {
		t.Error("X conflicts with everything")
	}
}

func TestLockModeString(t *testing.T) {
	if LockS.String() != "S" || LockX.String() != "X" {
		t.Error("lock mode strings wrong")
	}
}

// TestLockTableRandomOpsInvariants drives the table with random operations
// inside a simulation and checks structural invariants throughout: at most
// one X holder per page, no holder+waiter duplicates, and full quiescence
// at the end.
func TestLockTableRandomOpsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New(seed)
		lt := NewLockTable()
		r := rand.New(rand.NewSource(seed))
		const nCohorts = 12
		ok := true
		check := func() {
			for page, e := range lt.entries {
				x := 0
				holders := map[*CohortMeta]bool{}
				for h := e.hhead; h != nil; h = h.next {
					if h.mode == LockX {
						x++
					}
					if holders[h.co] {
						t.Errorf("duplicate holder on %v", page)
						ok = false
					}
					holders[h.co] = true
				}
				if x > 1 {
					t.Errorf("%d X holders on %v", x, page)
					ok = false
				}
				if x == 1 && e.hlen != 1 {
					t.Errorf("X shared with others on %v", page)
					ok = false
				}
			}
		}
		var cohorts []*CohortMeta
		for i := 0; i < nCohorts; i++ {
			co := fakeCohort(int64(i + 1))
			cohorts = append(cohorts, co)
			s.Spawn("cohort", func(p *sim.Proc) {
				co.Proc = p
				for j := 0; j < 10; j++ {
					p.Delay(float64(r.Intn(5)))
					page := pg(r.Intn(4))
					mode := LockS
					if r.Intn(2) == 0 {
						mode = LockX
					}
					granted, _ := lt.Lock(co, page, mode)
					if !granted {
						if co.Block() == Aborted {
							break
						}
					}
					check()
					p.Delay(float64(r.Intn(3)))
					if r.Intn(3) == 0 {
						lt.ReleaseAll(co)
					}
				}
				lt.ReleaseAll(co)
				check()
			})
		}
		// A watchdog breaks deadlocks the random workload creates, playing
		// the role of the deadlock detector.
		s.Spawn("watchdog", func(p *sim.Proc) {
			for {
				p.Delay(20)
				victims := FindVictims(lt.WaitsForEdges(0))
				for _, v := range victims {
					v.AbortRequested = true
					// Find the victim's cohort, deny it and release its locks.
					for _, co := range cohorts {
						if co.Txn == v {
							lt.RemoveWaiter(co)
							if co.Waiting() {
								co.Deny()
							}
							lt.ReleaseAll(co)
						}
					}
				}
			}
		})
		s.Run(10000)
		check()
		return ok && lt.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
