package ww

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func pg(n int) db.PageID { return db.PageID{File: 0, Page: n} }

func newTxn(id int64) *cc.TxnMeta { return &cc.TxnMeta{ID: id, TS: id} }

func TestKindAndGlobal(t *testing.T) {
	a := New()
	if a.Kind() != cc.WoundWait {
		t.Fatal("wrong kind")
	}
	a.StartGlobal(nil) // must be a no-op, nil-safe
	m := a.NewManager(cc.Env{Sim: sim.New(1), Node: 0})
	if m.Kind() != cc.WoundWait {
		t.Fatal("manager wrong kind")
	}
}

func TestOlderWoundsYounger(t *testing.T) {
	s := sim.New(1)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	m := mi.(*manager)
	young := &cc.CohortMeta{Txn: newTxn(5), Node: 0}
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	wounded := false
	young.Txn.OnAbort = func(fromNode int, reason string) {
		wounded = true
		if reason != "wounded" {
			t.Errorf("reason %q", reason)
		}
		mi.Abort(young) // coordinator delivers the abort
	}
	var oldOut cc.Outcome
	var oldGrantedAt sim.Time
	s.Spawn("young", func(p *sim.Proc) {
		young.Proc = p
		mi.Access(young, pg(1), true)
	})
	s.Spawn("old", func(p *sim.Proc) {
		old.Proc = p
		p.Delay(10)
		oldOut = mi.Access(old, pg(1), true) // older: wounds the holder, waits
		oldGrantedAt = s.Now()
	})
	s.Run(1000)
	if !wounded {
		t.Fatal("younger holder not wounded")
	}
	if oldOut != cc.Granted {
		t.Fatalf("old outcome %v, want granted", oldOut)
	}
	if oldGrantedAt != 10 {
		t.Fatalf("old granted at %v, want 10 (immediately after wound release)", oldGrantedAt)
	}
	if m.Wounds() != 1 {
		t.Fatalf("wound count %d, want 1", m.Wounds())
	}
}

func TestYoungerWaitsForOlder(t *testing.T) {
	s := sim.New(1)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	young := &cc.CohortMeta{Txn: newTxn(5), Node: 0}
	aborted := false
	old.Txn.OnAbort = func(int, string) { aborted = true }
	var youngOut cc.Outcome
	var youngAt sim.Time
	s.Spawn("old", func(p *sim.Proc) {
		old.Proc = p
		mi.Access(old, pg(1), true)
		p.Delay(30)
		old.Txn.State = cc.Committing
		mi.Commit(old)
	})
	s.Spawn("young", func(p *sim.Proc) {
		young.Proc = p
		p.Delay(5)
		youngOut = mi.Access(young, pg(1), true)
		youngAt = s.Now()
	})
	s.Run(1000)
	if aborted {
		t.Fatal("older holder was wounded by a younger requester")
	}
	if youngOut != cc.Granted || youngAt != 30 {
		t.Fatalf("young: %v at %v, want granted at 30", youngOut, youngAt)
	}
	if mi.(*manager).Wounds() != 0 {
		t.Fatal("wound counted for younger-waits case")
	}
}

func TestWoundIgnoredInSecondPhase(t *testing.T) {
	s := sim.New(1)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	young := &cc.CohortMeta{Txn: newTxn(5), Node: 0}
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	young.Txn.OnAbort = func(int, string) {
		t.Error("wound delivered to committing transaction")
	}
	var oldAt sim.Time
	s.Spawn("young", func(p *sim.Proc) {
		young.Proc = p
		mi.Access(young, pg(1), true)
		young.Txn.State = cc.Committing // commit decision made
		p.Delay(40)
		mi.Commit(young)
	})
	s.Spawn("old", func(p *sim.Proc) {
		old.Proc = p
		p.Delay(10)
		if mi.Access(old, pg(1), true) == cc.Granted {
			oldAt = s.Now()
		}
	})
	s.Run(1000)
	if oldAt != 40 {
		t.Fatalf("old granted at %v, want 40 (waited for the committing younger txn)", oldAt)
	}
	if mi.(*manager).Wounds() != 0 {
		t.Fatal("immune wound was counted")
	}
}

func TestSharedReadsNoWounds(t *testing.T) {
	s := sim.New(1)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	n := 0
	for i := 0; i < 4; i++ {
		co := &cc.CohortMeta{Txn: newTxn(int64(i + 1)), Node: 0}
		co.Txn.OnAbort = func(int, string) { t.Error("read sharing caused a wound") }
		s.Spawn("r", func(p *sim.Proc) {
			co.Proc = p
			if mi.Access(co, pg(1), false) == cc.Granted {
				n++
			}
		})
	}
	s.Run(100)
	if n != 4 {
		t.Fatalf("%d readers granted, want 4", n)
	}
}

func TestUpgradeWoundsYoungerReader(t *testing.T) {
	// Old reads, young reads, old upgrades: the young reader (standing in
	// the way of the upgrade) gets wounded.
	s := sim.New(1)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	young := &cc.CohortMeta{Txn: newTxn(9), Node: 0}
	young.Txn.OnAbort = func(int, string) { mi.Abort(young) }
	var upOut cc.Outcome
	s.Spawn("old", func(p *sim.Proc) {
		old.Proc = p
		mi.Access(old, pg(1), false)
		p.Delay(10)
		upOut = mi.Access(old, pg(1), true)
	})
	s.Spawn("young", func(p *sim.Proc) {
		young.Proc = p
		p.Delay(1)
		mi.Access(young, pg(1), false)
	})
	s.Run(1000)
	if upOut != cc.Granted {
		t.Fatalf("upgrade outcome %v, want granted after wound", upOut)
	}
	if !young.Txn.AbortRequested {
		t.Fatal("young reader not wounded by upgrade")
	}
}

func TestNoDeadlockEverProperty(t *testing.T) {
	// Wound-wait's invariant: the waits-for graph never contains a cycle,
	// because only younger-waits-for-older edges persist. Drive a random
	// workload and assert acyclicity throughout.
	s := sim.New(77)
	mi := New().NewManager(cc.Env{Sim: s, Node: 0})
	m := mi.(*manager)
	r := s.Rand()
	for i := 0; i < 16; i++ {
		id := int64(i + 1)
		co := &cc.CohortMeta{Txn: newTxn(id), Node: 0}
		co.Txn.OnAbort = func(int, string) {
			s.After(float64(r.Intn(3)), func() { mi.Abort(co) })
		}
		s.Spawn("w", func(p *sim.Proc) {
			co.Proc = p
			for j := 0; j < 6; j++ {
				if co.Txn.AbortRequested {
					return
				}
				page := pg(r.Intn(3))
				write := r.Intn(2) == 0
				if mi.Access(co, page, write) == cc.Aborted {
					return
				}
				if cc.HasCycle(m.WaitsForEdges()) {
					t.Error("wound-wait produced a waits-for cycle")
					return
				}
				p.Delay(float64(r.Intn(5)))
			}
			co.Txn.State = cc.Committing
			mi.Commit(co)
		})
	}
	s.Run(100000)
	if !m.LockTable().Empty() {
		// Cohorts killed at shutdown may hold locks; drain instead: this
		// check only fires if the run finished naturally above.
		t.Log("note: table not empty at cutoff (in-flight cohorts)")
	}
}
