// Package ww implements the distributed wound-wait locking algorithm of
// Rosenkrantz, Stearns and Lewis (paper §2.3). It uses the same lock table
// as 2PL but prevents deadlock with startup timestamps: when a cohort of an
// older transaction would wait for a younger one, the younger transaction
// is "wounded" (aborted) — unless it is already in the second phase of its
// commit protocol, in which case the wound is ignored. Younger transactions
// simply wait for older ones.
package ww

import (
	"ddbm/internal/cc"
	"ddbm/internal/db"
)

// Algorithm builds wound-wait managers. It needs no global machinery:
// timestamps prevent deadlock entirely.
type Algorithm struct{}

// New creates the algorithm.
func New() *Algorithm { return &Algorithm{} }

// Kind reports cc.WoundWait.
func (a *Algorithm) Kind() cc.Kind { return cc.WoundWait }

// NewManager creates the per-node manager.
func (a *Algorithm) NewManager(env cc.Env) cc.Manager {
	return &manager{env: env, lt: cc.NewLockTable()}
}

// StartGlobal is a no-op: wound-wait cannot deadlock.
func (a *Algorithm) StartGlobal(g cc.GlobalEnv) {}

type manager struct {
	env    cc.Env
	lt     *cc.LockTable
	wounds int64
}

func (m *manager) Kind() cc.Kind { return cc.WoundWait }

// Wounds returns how many wound aborts this node issued (metrics/tests).
func (m *manager) Wounds() int64 { return m.wounds }

// LockTable exposes the underlying table for invariant checks in tests.
func (m *manager) LockTable() *cc.LockTable { return m.lt }

// TableSize and BlockedCount are the probe sampler's gauges (obs layer).
func (m *manager) TableSize() int    { return m.lt.Size() }
func (m *manager) BlockedCount() int { return m.lt.WaiterCount() }

// WaitsForEdges lets tests assert the waits-for graph stays acyclic.
func (m *manager) WaitsForEdges() []cc.Edge { return m.lt.WaitsForEdges(m.env.Node) }

func (m *manager) Access(co *cc.CohortMeta, page db.PageID, write bool) cc.Outcome {
	if co.Txn.AbortRequested {
		return cc.Aborted
	}
	mode := cc.LockS
	if write {
		mode = cc.LockX
	}
	granted, conflicts := m.lt.Lock(co, page, mode)
	if granted {
		return cc.Granted
	}
	// Wound every younger transaction standing in our way; then wait. A
	// younger requester just waits. Wounds on transactions past the commit
	// decision are refused by RequestAbort ("the wound is not fatal").
	for _, other := range conflicts {
		if other.Txn != co.Txn && other.Txn.TS > co.Txn.TS && other.Txn.Abortable() {
			if other.Txn.RequestAbort(m.env.Node, "wounded", cc.CauseWound) {
				m.wounds++
			}
		}
	}
	if co.Txn.AbortRequested {
		// An abort raced in (e.g. a wound from another node processed
		// synchronously): don't park on a doomed request.
		m.lt.RemoveWaiter(co)
		return cc.Aborted
	}
	return co.Block()
}

func (m *manager) Prepare(co *cc.CohortMeta) bool { return true }

func (m *manager) Commit(co *cc.CohortMeta) {
	m.lt.ReleaseAll(co)
}

func (m *manager) Abort(co *cc.CohortMeta) {
	m.lt.ReleaseAll(co)
	if co.Waiting() {
		co.Deny()
	}
}
