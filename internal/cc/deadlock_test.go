package cc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func txn(id int64) *TxnMeta { return &TxnMeta{ID: id, TS: id} }

func edges(ts ...*TxnMeta) []Edge {
	// pairs: waiter, blocker, waiter, blocker, ...
	var es []Edge
	for i := 0; i+1 < len(ts); i += 2 {
		es = append(es, Edge{Waiter: ts[i], Blocker: ts[i+1]})
	}
	return es
}

func TestNoCycleNoVictims(t *testing.T) {
	a, b, c := txn(1), txn(2), txn(3)
	es := edges(a, b, b, c) // chain, no cycle
	if HasCycle(es) {
		t.Fatal("chain misdetected as cycle")
	}
	if v := FindVictims(es); len(v) != 0 {
		t.Fatalf("victims %v on acyclic graph", v)
	}
}

func TestTwoCycleYoungestDies(t *testing.T) {
	old, young := txn(1), txn(5)
	es := edges(old, young, young, old)
	v := FindVictims(es)
	if len(v) != 1 || v[0] != young {
		t.Fatalf("victims %v, want the youngest (TS=5)", v)
	}
}

func TestThreeCycle(t *testing.T) {
	a, b, c := txn(1), txn(2), txn(9)
	es := edges(a, b, b, c, c, a)
	v := FindVictims(es)
	if len(v) != 1 || v[0] != c {
		t.Fatalf("victims %v, want c (most recent)", v)
	}
}

func TestTwoDisjointCycles(t *testing.T) {
	a, b := txn(1), txn(2)
	c, d := txn(3), txn(4)
	es := append(edges(a, b, b, a), edges(c, d, d, c)...)
	v := FindVictims(es)
	if len(v) != 2 {
		t.Fatalf("victims %v, want one per cycle", v)
	}
	got := map[*TxnMeta]bool{v[0]: true, v[1]: true}
	if !got[b] || !got[d] {
		t.Fatalf("victims %v, want b and d", v)
	}
}

func TestOverlappingCyclesOneVictimMayBreakBoth(t *testing.T) {
	// a<->c and b<->c share c (the youngest): killing c breaks both.
	a, b, c := txn(1), txn(2), txn(9)
	es := append(edges(a, c, c, a), edges(b, c, c, b)...)
	v := FindVictims(es)
	if len(v) != 1 || v[0] != c {
		t.Fatalf("victims %v, want just c", v)
	}
}

func TestVictimSkipsCommitting(t *testing.T) {
	old := txn(1)
	young := txn(5)
	young.State = Committing // wound immune
	es := edges(old, young, young, old)
	v := FindVictims(es)
	if len(v) != 1 || v[0] != old {
		t.Fatalf("victims %v, want the old one (young is committing)", v)
	}
}

func TestAllUnabortableNoVictims(t *testing.T) {
	a, b := txn(1), txn(2)
	a.State = Committing
	b.AbortRequested = true
	es := edges(a, b, b, a)
	if v := FindVictims(es); len(v) != 0 {
		t.Fatalf("victims %v on self-resolving cycle", v)
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	a := txn(1)
	es := []Edge{{Waiter: a, Blocker: a}}
	if HasCycle(es) {
		t.Fatal("self edge treated as cycle")
	}
	if v := FindVictims(es); len(v) != 0 {
		t.Fatalf("victims %v for self edge", v)
	}
}

func TestVictimTieBreakByID(t *testing.T) {
	a := &TxnMeta{ID: 1, TS: 7}
	b := &TxnMeta{ID: 2, TS: 7}
	es := edges(a, b, b, a)
	v := FindVictims(es)
	if len(v) != 1 || v[0] != b {
		t.Fatalf("equal-TS tie should break by larger ID, got %v", v)
	}
}

func TestFindVictimsDeterministic(t *testing.T) {
	mk := func() []Edge {
		a, b, c, d := txn(4), txn(3), txn(2), txn(1)
		return append(edges(a, b, b, a), edges(c, d, d, c, a, c)...)
	}
	v1 := FindVictims(mk())
	v2 := FindVictims(mk())
	if len(v1) != len(v2) {
		t.Fatal("nondeterministic victim count")
	}
	for i := range v1 {
		if v1[i].ID != v2[i].ID {
			t.Fatal("nondeterministic victim order")
		}
	}
}

func TestFindVictimsMakesGraphAcyclicProperty(t *testing.T) {
	// Property: removing the victims always leaves the graph acyclic, and
	// victims are only chosen from cycle participants.
	f := func(pairs []uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8
		txns := make([]*TxnMeta, n)
		for i := range txns {
			txns[i] = txn(int64(i + 1))
		}
		var es []Edge
		for i := 0; i+1 < len(pairs) && i < 40; i += 2 {
			w := txns[int(pairs[i])%n]
			h := txns[int(pairs[i+1])%n]
			es = append(es, Edge{Waiter: w, Blocker: h, Node: r.Intn(3)})
		}
		victims := FindVictims(es)
		dead := map[*TxnMeta]bool{}
		for _, v := range victims {
			dead[v] = true
		}
		var remaining []Edge
		for _, e := range es {
			if !dead[e.Waiter] && !dead[e.Blocker] {
				remaining = append(remaining, e)
			}
		}
		return !HasCycle(remaining)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHasCycleLargeChain(t *testing.T) {
	// A long chain plus one back edge: cycle detected; without it: none.
	const n = 200
	txns := make([]*TxnMeta, n)
	for i := range txns {
		txns[i] = txn(int64(i + 1))
	}
	var es []Edge
	for i := 0; i+1 < n; i++ {
		es = append(es, Edge{Waiter: txns[i], Blocker: txns[i+1]})
	}
	if HasCycle(es) {
		t.Fatal("chain misdetected")
	}
	es = append(es, Edge{Waiter: txns[n-1], Blocker: txns[0]})
	if !HasCycle(es) {
		t.Fatal("big cycle missed")
	}
	v := FindVictims(es)
	if len(v) != 1 || v[0] != txns[n-1] {
		t.Fatalf("victim %v, want the youngest", v)
	}
}
