// Package cc defines the concurrency control framework of the simulator:
// the per-node Manager interface every algorithm implements (paper §3.6),
// the transaction/cohort metadata the algorithms operate on, and shared
// machinery (lock table, waits-for graphs, cycle detection) used by the
// locking algorithms.
package cc

import (
	"fmt"

	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// Kind identifies a concurrency control algorithm.
type Kind int

const (
	// TwoPL is distributed two-phase locking with local deadlock detection
	// and a rotating global "Snoop" detector (paper §2.2).
	TwoPL Kind = iota
	// WoundWait is the wound-wait locking algorithm of Rosenkrantz et al.
	// (paper §2.3).
	WoundWait
	// BTO is basic timestamp ordering (paper §2.4).
	BTO
	// OPT is distributed timestamp-based optimistic certification
	// (paper §2.5).
	OPT
	// NoDC is the "no data contention" baseline: every request granted,
	// no aborts — equivalent to 2PL against an infinite database (§4.2).
	NoDC
	// O2PL is optimistic two-phase locking from [Care88]: read locks are
	// taken immediately but write locks are deferred until the first phase
	// of the commit protocol. The paper's Table 4 notes its simulator
	// carried O2PL ("the global deadlock detection interval for 2PL and
	// O2PL is 1 second") without presenting results for it.
	O2PL
)

var kindNames = map[Kind]string{
	TwoPL:     "2PL",
	WoundWait: "WW",
	BTO:       "BTO",
	OPT:       "OPT",
	NoDC:      "NO_DC",
	O2PL:      "O2PL",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts an algorithm name (as printed by String) to a Kind.
func ParseKind(s string) (Kind, error) {
	//ddbmlint:ordered kindNames values are unique, so at most one iteration can match and return
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cc: unknown algorithm %q (want 2PL, WW, BTO, OPT or NO_DC)", s)
}

// Kinds lists the paper's four algorithms plus the NO_DC baseline, in the
// paper's presentation order. O2PL (unpresented in the paper) is excluded;
// add it explicitly where wanted.
func Kinds() []Kind { return []Kind{TwoPL, BTO, WoundWait, OPT, NoDC} }

// Cause classifies why a transaction attempt aborted — which rule of
// which layer demanded it. Every abort site in cc, commit and core
// records one (via RequestAbort or NoteCause); the first recorded cause
// wins, matching the first-event-wins semantics of AbortRequested.
type Cause uint8

const (
	// CauseNone: no abort cause recorded (the attempt committed, or no
	// site has attributed the abort yet).
	CauseNone Cause = iota
	// CauseLocalDeadlock: chosen as victim by a node-local deadlock
	// detection pass (2PL).
	CauseLocalDeadlock
	// CauseGlobalDeadlock: chosen as victim by the Snoop's global
	// deadlock detection (2PL).
	CauseGlobalDeadlock
	// CauseLockTimeout: a lock wait exceeded LockWaitTimeoutMs
	// (footnote 2's timeout scheme).
	CauseLockTimeout
	// CauseWound: wounded by an older transaction (wound-wait).
	CauseWound
	// CauseBTOTooLate: rejected by a BTO timestamp rule — the access
	// arrived too late relative to committed or pending versions.
	CauseBTOTooLate
	// CauseOPTCertify: failed OPT certification at prepare time.
	CauseOPTCertify
	// CauseCoordinator: resolved as aborted by the coordinator without a
	// more specific cause (e.g. a failed vote whose origin recorded
	// nothing).
	CauseCoordinator
	// CauseNodeCrash: a processing node holding one of the attempt's
	// cohorts crash-stopped before the commit decision.
	CauseNodeCrash
	// CauseCoordinatorCrash: the host crashed while the attempt was still
	// abortable; the failover coordinator aborts everything in flight.
	CauseCoordinatorCrash

	// NumCauses sizes per-cause counters.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseNone:             "none",
	CauseLocalDeadlock:    "local-deadlock",
	CauseGlobalDeadlock:   "global-deadlock",
	CauseLockTimeout:      "lock-timeout",
	CauseWound:            "wound",
	CauseBTOTooLate:       "bto-too-late",
	CauseOPTCertify:       "opt-certify",
	CauseCoordinator:      "coordinator",
	CauseNodeCrash:        "node-crash",
	CauseCoordinatorCrash: "coordinator-crash",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", int(c))
}

// TxnState tracks where a transaction execution attempt is in its life
// cycle. The distinction that matters to the algorithms is Committing:
// once the commit decision is made (second phase of the commit protocol),
// wounds and deadlock-victim aborts must be ignored.
type TxnState int

const (
	// Active: cohorts are executing their read/write phases.
	Active TxnState = iota
	// Preparing: the coordinator has started the first phase of commit.
	Preparing
	// Committing: commit decision made; the transaction can no longer abort.
	Committing
	// Finished: commit or abort processing completed at all nodes.
	Finished
)

// TxnMeta is one execution attempt of a transaction as seen by the
// concurrency control managers. A fresh TxnMeta is created for every
// attempt; ID and TS persist across attempts while AttemptTS is redrawn.
type TxnMeta struct {
	// ID is the transaction identifier, stable across restarts.
	ID int64
	// TS is the original startup timestamp (first attempt), used by
	// wound-wait and for 2PL deadlock-victim selection; keeping it across
	// restarts makes restarted transactions age and eventually win.
	TS int64
	// AttemptTS is the timestamp of this execution attempt; BTO orders
	// accesses by it (a restarted transaction must get a fresh, later
	// timestamp or it would abort again immediately).
	AttemptTS int64
	// CommitTS is the globally unique timestamp assigned when the commit
	// protocol starts; OPT certifies against it.
	CommitTS int64
	// DecisionTS is assigned at the commit decision. For the strict locking
	// algorithms the decision order is the serialization order (a blocking
	// prepare phase — deferred write locks — can reorder decisions relative
	// to CommitTS).
	DecisionTS int64
	// State is maintained by the transaction manager.
	State TxnState
	// AbortRequested is set (once) when any party demands the attempt abort.
	AbortRequested bool
	// AbortReason records why, for diagnostics and metrics.
	AbortReason string
	// AbortCause classifies the abort for the breakdown accounting's
	// per-cause counters; AbortNode is the node whose manager (or
	// coordinator) attributed it. First recorded cause wins (NoteCause).
	AbortCause Cause
	AbortNode  int
	// OnAbort tells the transaction manager an abort is required; fromNode
	// is the node where the decision was made (the notification travels
	// from there to the coordinator). Installed by the transaction manager.
	OnAbort func(fromNode int, reason string)

	// detGen/detRank are the deadlock detectors' scratch slot on the
	// transaction: its rank (graph array index) in the waits-for graph
	// currently being analysed. Each detection pass draws a globally
	// unique generation, so a stamp is valid exactly when detGen matches
	// the asking pass — the per-node detectors and the Snoop's can stamp
	// the same transaction without any clearing between passes, and no
	// detector needs a rank map (whose bucket churn allocated under
	// steady insert/delete).
	detGen  uint64
	detRank int32
}

// RequestAbort asks the transaction manager to abort this attempt. It is
// idempotent and refuses once the commit decision has been made (a wound in
// the second phase of the commit protocol "is not fatal").
// It reports whether the abort was accepted.
//
//ddbmlint:hotpath abort demand on the contention path pinned by TestSteadyStateAllocFree
func (t *TxnMeta) RequestAbort(fromNode int, reason string, cause Cause) bool {
	if t.AbortRequested {
		return true
	}
	if t.State >= Committing {
		return false
	}
	t.AbortRequested = true
	t.AbortReason = reason
	t.NoteCause(fromNode, cause)
	if t.OnAbort != nil {
		t.OnAbort(fromNode, reason) //ddbmlint:allow hotpath-alloc pre-bound abort observer; installed once per pooled attempt and audited by the core alloc pins
	}
	return true
}

// NoteCause records the abort cause and attributing node if none is
// recorded yet — the seam for sites that doom an attempt without calling
// RequestAbort (BTO timestamp rejections, OPT certification failures,
// the coordinator's default attribution). First cause wins.
//
//ddbmlint:hotpath abort-cause attribution pinned by TestSteadyStateAllocFree
func (t *TxnMeta) NoteCause(fromNode int, cause Cause) {
	if t.AbortCause == CauseNone {
		t.AbortCause = cause
		t.AbortNode = fromNode
	}
}

// Abortable reports whether the attempt can still be aborted.
func (t *TxnMeta) Abortable() bool {
	return !t.AbortRequested && t.State < Committing
}

// Outcome is the result of a concurrency control access request.
type Outcome int

const (
	// Granted: the access may proceed.
	Granted Outcome = iota
	// Aborted: the transaction must abort (either this access was rejected
	// or the attempt was aborted while the cohort waited).
	Aborted
)

func (o Outcome) String() string {
	if o == Granted {
		return "granted"
	}
	return "aborted"
}

// CohortMeta is the per-node cohort of a transaction attempt as seen by
// that node's concurrency control manager.
type CohortMeta struct {
	Txn  *TxnMeta
	Proc *sim.Proc
	Node int

	waiting     bool
	resolved    bool // verdict arrived before the cohort parked
	waitOutcome Outcome
	blockedAt   sim.Time

	// queuedAt/queued and heldLocks are the cohort's slots in its node's
	// lock table (the page its queued request waits on, and its held set).
	// They live on the meta rather than in table-side maps so the
	// contention path has no map churn: a cohort only ever acquires locks
	// from the one table of the node it runs on, recorded in lockOwner.
	// Calls against any other table (a coordinator broadcasting an abort
	// to every node, say) see foreign state and must treat the cohort as
	// unknown — exactly what the former map lookups did.
	lockOwner *LockTable
	queuedAt  db.PageID
	queued    bool
	heldLocks *cohortLocks

	// OnBlocked, if set, observes every blocking episode's duration
	// (the paper's "average blocking time" metric for 2PL). It receives
	// the cohort itself so the observer can read per-episode attribution
	// flags (BlockedInDoubt) without a per-cohort closure.
	OnBlocked func(co *CohortMeta, d sim.Time)

	// InDoubt marks a cohort that has voted yes and not yet learned the
	// decision — its locks survive a crash of its node and must block
	// newcomers until recovery resolves it. BlockedInDoubt is set on a
	// waiter whose conflict set included an in-doubt holder when it
	// blocked. Both are maintained only when the fault layer is active.
	InDoubt        bool
	BlockedInDoubt bool
}

// CrashReset clears the wait-state a cohort held when its node crashed, so
// a later Deny/Grant from sweep-driven cleanup cannot resume a process
// that no longer exists. The in-doubt marker survives: it is the one piece
// of crash state that must outlive the process.
func (c *CohortMeta) CrashReset() {
	c.waiting = false
	c.resolved = false
	c.BlockedInDoubt = false
}

// Block parks the cohort's process until Grant or Deny, returning the
// verdict. It must be called from the cohort's own process. If the verdict
// arrived before the cohort parked (a queued request can be granted
// synchronously when its blocker releases), Block returns immediately.
func (c *CohortMeta) Block() Outcome {
	if c.resolved {
		c.resolved = false
		return c.waitOutcome
	}
	c.waiting = true
	c.blockedAt = c.Proc.Sim().Now()
	c.Proc.Suspend()
	if c.OnBlocked != nil {
		c.OnBlocked(c, c.Proc.Sim().Now()-c.blockedAt)
	}
	return c.waitOutcome
}

// Waiting reports whether the cohort is parked in Block.
func (c *CohortMeta) Waiting() bool { return c.waiting }

// Grant resumes a blocked cohort with a granted access.
func (c *CohortMeta) Grant() { c.release(Granted) }

// Deny resumes a blocked cohort telling it the attempt is aborted.
func (c *CohortMeta) Deny() { c.release(Aborted) }

func (c *CohortMeta) release(o Outcome) {
	if !c.waiting {
		// The cohort has not parked yet: record the verdict for Block.
		c.resolved = true
		c.waitOutcome = o
		return
	}
	c.waiting = false
	c.waitOutcome = o
	c.Proc.Resume()
}

// Manager is one node's concurrency control manager. All methods run in
// simulation context (from a process or an event callback); Access may block
// the calling cohort's process.
type Manager interface {
	// Kind identifies the algorithm.
	Kind() Kind
	// Access requests permission to read (write=false) or write (write=true)
	// a page stored at this node. For updated pages the transaction manager
	// first requests read access and later write access on the same page,
	// modelling read-lock-then-upgrade. Access blocks inside as needed and
	// returns Granted or Aborted.
	Access(co *CohortMeta, page db.PageID, write bool) Outcome
	// Prepare runs the local first phase of commit for the cohort and
	// returns its vote. For OPT this performs local certification against
	// co.Txn.CommitTS.
	Prepare(co *CohortMeta) bool
	// Commit finalizes locally: release locks, install writes, make pending
	// updates visible. Idempotent.
	Commit(co *CohortMeta)
	// Abort undoes local state: releases locks, drops pending writes and
	// certified entries, and denies the cohort if it is blocked here.
	// Idempotent, and safe to call for cohorts that never accessed the node.
	Abort(co *CohortMeta)
}

// DeferredWriter is implemented by managers that support deferring write
// permission requests (remote-copy write locks) to the first phase of the
// commit protocol, per [Care89]. PrepareDeferred acquires write permission
// on each page — blocking in a fresh process as needed — and then reports
// whether the cohort can vote yes. It must tolerate the transaction being
// aborted while it waits (reporting false).
type DeferredWriter interface {
	PrepareDeferred(co *CohortMeta, pages []db.PageID, done func(ok bool))
}

// Env gives a per-node manager its simulation context.
type Env struct {
	Sim  *sim.Sim
	Node int
}

// GlobalEnv is what algorithm-global machinery (the 2PL Snoop) sees of the
// machine: the clock, the processing nodes, their managers, and a way to
// exchange control messages with full message CPU costs.
type GlobalEnv interface {
	Sim() *sim.Sim
	NumProcNodes() int
	ManagerAt(node int) Manager
	// SendControl delivers a control message from one node to another,
	// invoking deliver at the destination after message-processing costs.
	SendControl(from, to int, deliver func())
}

// Algorithm constructs per-node managers and optional global machinery.
type Algorithm interface {
	Kind() Kind
	NewManager(env Env) Manager
	// StartGlobal launches algorithm-global processes (e.g. the Snoop
	// deadlock detector). Called once after all managers exist; may be a
	// no-op.
	StartGlobal(g GlobalEnv)
}
