package cc

import (
	"ddbm/internal/db"
)

// LockMode is a page lock mode.
type LockMode int

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// Compatible reports whether two lock modes held by different transactions
// can coexist.
func Compatible(a, b LockMode) bool { return a == LockS && b == LockS }

// lockHolder is one member of an entry's holder set: a node in the
// intrusive singly-linked holder list, kept in grant order (append at the
// tail). Nodes are recycled through the table's free list — a linked list
// rather than a slice because holder counts vary wildly across pages, so
// per-entry array capacities never converge under free-list reuse and the
// occasional regrowth kept the steady state from being allocation-free.
type lockHolder struct {
	co   *CohortMeta
	mode LockMode
	next *lockHolder
}

// lockReq is one queued request: a node in its entry's intrusive FIFO wait
// list. Nodes are recycled through the table's free list so steady-state
// enqueue/dequeue never allocates.
type lockReq struct {
	co      *CohortMeta
	mode    LockMode
	upgrade bool
	next    *lockReq
}

// lockEntry is the lock state of one page: the holder set and an intrusive
// singly-linked wait queue (upgrades at the front). Entries are recycled
// through the table's free list when a page's last holder and waiter leave.
type lockEntry struct {
	page     db.PageID
	hhead    *lockHolder
	htail    *lockHolder
	hlen     int
	qhead    *lockReq
	qtail    *lockReq
	qlen     int
	nextFree *lockEntry
}

func (e *lockEntry) holderMode(co *CohortMeta) (LockMode, bool) {
	for h := e.hhead; h != nil; h = h.next {
		if h.co == co {
			return h.mode, true
		}
	}
	return 0, false
}

// findHolder returns co's holder node, or nil.
func (e *lockEntry) findHolder(co *CohortMeta) *lockHolder {
	for h := e.hhead; h != nil; h = h.next {
		if h.co == co {
			return h
		}
	}
	return nil
}

// pushBack appends q to the wait queue.
func (e *lockEntry) pushBack(q *lockReq) {
	if e.qtail == nil {
		e.qhead = q
	} else {
		e.qtail.next = q
	}
	e.qtail = q
	e.qlen++
}

// insertUpgrade places q behind earlier upgrades but ahead of ordinary
// requests.
func (e *lockEntry) insertUpgrade(q *lockReq) {
	var prev *lockReq
	cur := e.qhead
	for cur != nil && cur.upgrade {
		prev, cur = cur, cur.next
	}
	q.next = cur
	if prev == nil {
		e.qhead = q
	} else {
		prev.next = q
	}
	if cur == nil {
		e.qtail = q
	}
	e.qlen++
}

// heldLock is one (page, mode) pair a cohort holds.
type heldLock struct {
	page db.PageID
	mode LockMode
}

// cohortLocks is one cohort's held set, kept sorted by pageLess at all
// times (ordered insertion on acquire) so ReleaseAll walks the
// deterministic total order without sorting. Recycled through the table's
// free list.
type cohortLocks struct {
	locks    []heldLock
	nextFree *cohortLocks
}

// search returns the insertion index of page: the first position whose
// page is not below it.
func (cl *cohortLocks) search(page db.PageID) int {
	lo, hi := 0, len(cl.locks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pageLess(cl.locks[mid].page, page) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (cl *cohortLocks) get(page db.PageID) (LockMode, bool) {
	i := cl.search(page)
	if i < len(cl.locks) && cl.locks[i].page == page {
		return cl.locks[i].mode, true
	}
	return 0, false
}

// set records page at mode, inserting in sorted position or updating in
// place.
func (cl *cohortLocks) set(page db.PageID, mode LockMode) {
	i := cl.search(page)
	if i < len(cl.locks) && cl.locks[i].page == page {
		cl.locks[i].mode = mode
		return
	}
	cl.locks = append(cl.locks, heldLock{}) //ddbmlint:allow hotpath-alloc sorted-insert growth; capacity survives free-list recycling
	copy(cl.locks[i+1:], cl.locks[i:])
	cl.locks[i] = heldLock{page: page, mode: mode}
}

// LockTable is the per-node lock manager shared by the 2PL and wound-wait
// algorithms: shared/exclusive page locks, FIFO wait queues, and
// read-to-write upgrades that jump to the head of the queue.
//
// The contention paths are allocation-free in steady state and never scan
// or sort the whole table: entries, queue nodes and per-cohort held lists
// are free-listed, held sets are kept in page order incrementally, and the
// set of contended pages (non-empty wait queue) is maintained as a sorted
// slice on first-waiter/last-waiter transitions so waits-for extraction is
// O(waiters), not O(locks held).
type LockTable struct {
	entries map[db.PageID]*lockEntry

	// holders and waiters count the cohorts with held locks and with a
	// queued request; the state itself lives on the CohortMeta (see
	// queuedAt/heldLocks there), keeping table-side maps — and their
	// bucket churn — off the contention path.
	holders int
	waiters int

	// contended holds every entry with a non-empty wait queue, sorted by
	// pageLess — the incremental replacement for sorting all entries on
	// every WaitsForEdges call.
	contended []*lockEntry

	freeEntries *lockEntry
	freeReqs    *lockReq
	freeCohorts *cohortLocks
	freeHolders *lockHolder

	// conflictBuf backs the conflicts slice Lock returns; it is valid only
	// until the next Lock call.
	conflictBuf []*CohortMeta

	// TrackInDoubt, set only when the fault layer is active, makes Lock
	// tag waiters whose conflict set includes an in-doubt holder
	// (CohortMeta.BlockedInDoubt) so blocked time behind unresolved
	// commit decisions can be attributed separately.
	TrackInDoubt bool
}

// NewLockTable creates an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{entries: make(map[db.PageID]*lockEntry)}
}

// Reserve pre-sizes the table's scratch and free lists for up to txns
// concurrently active cohorts each holding up to locksPerCohort locks.
// The free lists and scratch buffers below are self-amortising, but their
// growth is driven by high-water records (widest conflict set, most locks
// held at once) that arrive too rarely for a warmup to retire
// deterministically — holders with a pinned allocation budget pre-size
// from their concurrency bounds instead. Reserve performs no locking work,
// so it is golden-trace safe at any point before the simulation runs.
func (lt *LockTable) Reserve(txns, locksPerCohort int) {
	if cap(lt.conflictBuf) < txns {
		lt.conflictBuf = make([]*CohortMeta, 0, txns)
	}
	if cap(lt.contended) < txns {
		c := make([]*lockEntry, len(lt.contended), txns)
		copy(c, lt.contended)
		lt.contended = c
	}
	// One queued request per cohort, at most.
	for i := 0; i < txns; i++ {
		lt.freeReq(&lockReq{})
	}
	// Held sets: one per cohort, each sized for its worst-case lock count.
	for i := 0; i < txns; i++ {
		lt.freeCohortLocks(&cohortLocks{locks: make([]heldLock, 0, locksPerCohort)})
	}
	// Holder nodes and entries: bounded by the total locks held plus the
	// queued requests.
	total := txns*locksPerCohort + txns
	for i := 0; i < total; i++ {
		lt.freeEntry(&lockEntry{})
		h := &lockHolder{next: lt.freeHolders}
		lt.freeHolders = h
	}
}

func (lt *LockTable) newEntry(page db.PageID) *lockEntry {
	e := lt.freeEntries
	if e == nil {
		e = &lockEntry{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses entries
	} else {
		lt.freeEntries = e.nextFree
		e.nextFree = nil
	}
	e.page = page
	return e
}

func (lt *LockTable) freeEntry(e *lockEntry) {
	e.page = db.PageID{}
	e.nextFree = lt.freeEntries
	lt.freeEntries = e
}

func (lt *LockTable) newReq(co *CohortMeta, mode LockMode, upgrade bool) *lockReq {
	q := lt.freeReqs
	if q == nil {
		q = &lockReq{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses queue nodes
	} else {
		lt.freeReqs = q.next
	}
	q.co, q.mode, q.upgrade, q.next = co, mode, upgrade, nil
	return q
}

func (lt *LockTable) freeReq(q *lockReq) {
	q.co = nil
	q.next = lt.freeReqs
	lt.freeReqs = q
}

// addHolder appends co to e's holder list in grant order.
func (lt *LockTable) addHolder(e *lockEntry, co *CohortMeta, mode LockMode) {
	h := lt.freeHolders
	if h == nil {
		h = &lockHolder{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses holder nodes
	} else {
		lt.freeHolders = h.next
	}
	h.co, h.mode, h.next = co, mode, nil
	if e.htail == nil {
		e.hhead = h
	} else {
		e.htail.next = h
	}
	e.htail = h
	e.hlen++
}

// dropHolder removes co from e's holder set, recycling the node so dead
// cohorts are not pinned.
func (lt *LockTable) dropHolder(e *lockEntry, co *CohortMeta) {
	var prev *lockHolder
	for h := e.hhead; h != nil; prev, h = h, h.next {
		if h.co == co {
			if prev == nil {
				e.hhead = h.next
			} else {
				prev.next = h.next
			}
			if e.htail == h {
				e.htail = prev
			}
			e.hlen--
			h.co, h.next = nil, lt.freeHolders
			lt.freeHolders = h
			return
		}
	}
}

func (lt *LockTable) newCohortLocks() *cohortLocks {
	cl := lt.freeCohorts
	if cl == nil {
		cl = &cohortLocks{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses held lists
	} else {
		lt.freeCohorts = cl.nextFree
		cl.nextFree = nil
	}
	return cl
}

func (lt *LockTable) freeCohortLocks(cl *cohortLocks) {
	cl.locks = cl.locks[:0]
	cl.nextFree = lt.freeCohorts
	lt.freeCohorts = cl
}

// contendedSearch returns the position of page in the contended list (its
// index if present, else its insertion point).
func (lt *LockTable) contendedSearch(page db.PageID) int {
	lo, hi := 0, len(lt.contended)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pageLess(lt.contended[mid].page, page) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// markContended inserts e into the contended set; called exactly when its
// queue length goes 0 -> 1.
func (lt *LockTable) markContended(e *lockEntry) {
	i := lt.contendedSearch(e.page)
	lt.contended = append(lt.contended, nil) //ddbmlint:allow hotpath-alloc contended-set scratch grows to its high-water mark
	copy(lt.contended[i+1:], lt.contended[i:])
	lt.contended[i] = e
}

// unmarkContended removes e from the contended set; called exactly when
// its queue length goes 1 -> 0.
func (lt *LockTable) unmarkContended(e *lockEntry) {
	i := lt.contendedSearch(e.page)
	last := len(lt.contended) - 1
	copy(lt.contended[i:], lt.contended[i+1:])
	lt.contended[last] = nil
	lt.contended = lt.contended[:last]
}

// Lock requests a lock on page in the given mode for co. If the lock is
// granted immediately it returns (true, nil). Otherwise the request has
// been queued (upgrades at the front, new requests at the back) and the
// cohorts currently standing in the way — conflicting holders plus
// conflicting queued requests ahead of ours — are returned so the caller
// can apply its conflict policy (wait, wound, detect deadlock). The caller
// must then call co.Block(). The conflicts slice is shared scratch, valid
// only until the next Lock call on this table.
//
//ddbmlint:hotpath steady-state acquire pinned by TestSteadyStateAllocFree
func (lt *LockTable) Lock(co *CohortMeta, page db.PageID, mode LockMode) (granted bool, conflicts []*CohortMeta) {
	if co.lockOwner != lt {
		// First contact: claim the cohort, abandoning any state a previous
		// table left on it (tests reuse metas across tables; real cohorts
		// lock at exactly one node).
		co.lockOwner, co.heldLocks, co.queued = lt, nil, false
	}
	e := lt.entries[page]
	if e == nil {
		e = lt.newEntry(page)
		lt.entries[page] = e
	}

	if cur, ok := e.holderMode(co); ok {
		if cur == LockX || mode == LockS {
			return true, nil // already strong enough
		}
		// Upgrade S -> X: grantable only as sole holder.
		if e.hlen == 1 {
			lt.setHolder(e, co, LockX)
			return true, nil
		}
		// Upgrades queue ahead of ordinary requests, behind earlier upgrades.
		req := lt.newReq(co, LockX, true)
		e.insertUpgrade(req)
		if e.qlen == 1 {
			lt.markContended(e)
		}
		co.queuedAt, co.queued = page, true
		lt.waiters++
		buf := lt.conflictBuf[:0]
		for h := e.hhead; h != nil; h = h.next {
			if h.co != co {
				buf = append(buf, h.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
			}
		}
		// Conflicting upgrades queued ahead of ours also stand in the way.
		for q := e.qhead; q != req; q = q.next {
			buf = append(buf, q.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
		lt.conflictBuf = buf
		lt.noteInDoubtConflicts(co, buf)
		return false, buf
	}

	// New request: FIFO — grantable only with an empty queue and no
	// conflicting holder (compatible requests may not overtake waiters,
	// which would starve queued upgrades and X requests).
	if e.qlen == 0 {
		ok := true
		for h := e.hhead; h != nil; h = h.next {
			if !Compatible(mode, h.mode) {
				ok = false
				break
			}
		}
		if ok {
			lt.setHolder(e, co, mode)
			return true, nil
		}
	}
	req := lt.newReq(co, mode, false)
	e.pushBack(req)
	if e.qlen == 1 {
		lt.markContended(e)
	}
	co.queuedAt, co.queued = page, true
	lt.waiters++
	buf := lt.conflictBuf[:0]
	for h := e.hhead; h != nil; h = h.next {
		if !Compatible(mode, h.mode) {
			buf = append(buf, h.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
	}
	for q := e.qhead; q != req; q = q.next {
		if q.co != co && (!Compatible(mode, q.mode) || q.upgrade) {
			buf = append(buf, q.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
	}
	lt.conflictBuf = buf
	lt.noteInDoubtConflicts(co, buf)
	return false, buf
}

// noteInDoubtConflicts tags co when anything it now waits behind is an
// in-doubt cohort — a prepared transaction whose decision is unresolved
// (typically because its node crashed after voting). Active only under
// the fault layer's TrackInDoubt.
func (lt *LockTable) noteInDoubtConflicts(co *CohortMeta, conflicts []*CohortMeta) {
	if !lt.TrackInDoubt {
		return
	}
	for _, c := range conflicts {
		if c.InDoubt {
			co.BlockedInDoubt = true
			return
		}
	}
}

func (lt *LockTable) setHolder(e *lockEntry, co *CohortMeta, mode LockMode) {
	if h := e.findHolder(co); h != nil {
		h.mode = mode
		co.heldLocks.set(e.page, mode)
		return
	}
	lt.addHolder(e, co, mode)
	cl := co.heldLocks
	if cl == nil {
		cl = lt.newCohortLocks()
		co.heldLocks = cl
		lt.holders++
	}
	cl.set(e.page, mode)
}

// ReleaseAll drops every lock co holds and removes any queued request,
// promoting newly grantable waiters. It is idempotent. Releases happen in
// (file, page) order — the cohort's held list is kept sorted incrementally,
// so the deterministic order (promotions schedule resume events, whose
// order must not depend on map iteration) costs no sort here.
//
//ddbmlint:hotpath steady-state release pinned by TestSteadyStateAllocFree
func (lt *LockTable) ReleaseAll(co *CohortMeta) {
	if co.lockOwner != lt {
		return // the cohort never locked anything here
	}
	lt.RemoveWaiter(co)
	cl := co.heldLocks
	if cl == nil {
		return
	}
	co.heldLocks = nil
	lt.holders--
	for _, hl := range cl.locks {
		e := lt.entries[hl.page]
		lt.dropHolder(e, co)
		lt.promote(hl.page, e)
	}
	lt.freeCohortLocks(cl)
}

// RemoveWaiter cancels co's queued request (if any) without resuming it;
// the caller is responsible for Deny()ing the cohort if it is blocked.
//
//ddbmlint:hotpath waiter withdrawal pinned by TestSteadyStateAllocFree
func (lt *LockTable) RemoveWaiter(co *CohortMeta) {
	if co.lockOwner != lt {
		return // the cohort never locked anything here
	}
	if !co.queued {
		return
	}
	page := co.queuedAt
	co.queued = false
	lt.waiters--
	e := lt.entries[page]
	var prev *lockReq
	for q := e.qhead; q != nil; prev, q = q, q.next {
		if q.co == co {
			if prev == nil {
				e.qhead = q.next
			} else {
				prev.next = q.next
			}
			if e.qtail == q {
				e.qtail = prev
			}
			e.qlen--
			lt.freeReq(q)
			if e.qlen == 0 {
				lt.unmarkContended(e)
			}
			break
		}
	}
	lt.promote(page, e)
}

// promote grants queued requests that have become compatible, in FIFO order
// (with upgrades at the front), resuming each granted cohort.
func (lt *LockTable) promote(page db.PageID, e *lockEntry) {
	for e.qhead != nil {
		head := e.qhead
		if head.upgrade {
			if e.hlen != 1 || e.hhead.co != head.co {
				return
			}
			e.hhead.mode = LockX
			head.co.heldLocks.set(page, LockX)
		} else {
			ok := true
			for h := e.hhead; h != nil; h = h.next {
				if !Compatible(head.mode, h.mode) {
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			lt.addHolder(e, head.co, head.mode)
			cl := head.co.heldLocks
			if cl == nil {
				cl = lt.newCohortLocks()
				head.co.heldLocks = cl
				lt.holders++
			}
			cl.set(page, head.mode)
		}
		granted := head.co
		e.qhead = head.next
		if e.qhead == nil {
			e.qtail = nil
		}
		e.qlen--
		lt.freeReq(head)
		if e.qlen == 0 {
			lt.unmarkContended(e)
		}
		granted.queued = false
		lt.waiters--
		granted.Grant()
	}
	if e.hlen == 0 && e.qlen == 0 {
		delete(lt.entries, page)
		lt.freeEntry(e)
	}
}

// Holds reports the mode co holds on page.
func (lt *LockTable) Holds(co *CohortMeta, page db.PageID) (LockMode, bool) {
	if co.lockOwner != lt {
		return 0, false
	}
	cl := co.heldLocks
	if cl == nil {
		return 0, false
	}
	return cl.get(page)
}

// HeldCount returns the number of locks co holds.
func (lt *LockTable) HeldCount(co *CohortMeta) int {
	if co.lockOwner != lt {
		return 0
	}
	cl := co.heldLocks
	if cl == nil {
		return 0
	}
	return len(cl.locks)
}

// Size returns the number of pages with lock state (held or queued) —
// the probe sampler's lock-table-size gauge.
func (lt *LockTable) Size() int { return len(lt.entries) }

// WaiterCount returns the number of cohorts currently queued behind a
// conflicting lock — the probe sampler's blocked-txn gauge.
func (lt *LockTable) WaiterCount() int { return lt.waiters }

// ContendedCount returns the number of pages with a non-empty wait queue.
func (lt *LockTable) ContendedCount() int { return len(lt.contended) }

// Empty reports whether the table holds no locks and no waiters — the
// quiescence invariant checked at the end of simulations.
func (lt *LockTable) Empty() bool {
	return lt.holders == 0 && lt.waiters == 0
}

// pageLess is the total order (file, then page) used wherever lock-table
// state must be kept or iterated deterministically.
func pageLess(a, b db.PageID) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Page < b.Page
}

// AppendWaitsForEdges appends this node's waits-for graph to edges and
// returns the extended slice: one edge per (waiter, blocker) pair where
// the blocker is a conflicting holder or a conflicting request queued
// ahead of the waiter. Only the contended pages — maintained incrementally
// as queues gain and lose their waiters — are visited, in (file, page)
// order: the same total order the former sort-the-whole-table
// implementation produced, at O(waiters) cost independent of the number of
// locks held. A stable order keeps every downstream consumer (tracing,
// tests, future victim policies) independent of map iteration.
//
//ddbmlint:hotpath waits-for extraction pinned by TestSteadyStateAllocFree
func (lt *LockTable) AppendWaitsForEdges(node int, edges []Edge) []Edge {
	for _, e := range lt.contended {
		qi := 0
		for q := e.qhead; q != nil; q, qi = q.next, qi+1 {
			waiter := q.co.Txn
			if q.upgrade {
				for h := e.hhead; h != nil; h = h.next {
					if h.co != q.co && h.co.Txn != waiter {
						edges = append(edges, Edge{Waiter: waiter, Blocker: h.co.Txn, Node: node})
					}
				}
				for p := e.qhead; p != q; p = p.next {
					if p.co.Txn != waiter {
						edges = append(edges, Edge{Waiter: waiter, Blocker: p.co.Txn, Node: node})
					}
				}
				continue
			}
			for h := e.hhead; h != nil; h = h.next {
				if !Compatible(q.mode, h.mode) && h.co.Txn != waiter {
					edges = append(edges, Edge{Waiter: waiter, Blocker: h.co.Txn, Node: node})
				}
			}
			for p := e.qhead; p != q; p = p.next {
				if (p.upgrade || !Compatible(q.mode, p.mode)) && p.co.Txn != waiter {
					edges = append(edges, Edge{Waiter: waiter, Blocker: p.co.Txn, Node: node})
				}
			}
		}
	}
	return edges
}

// WaitsForEdges returns this node's waits-for graph in a fresh slice. Hot
// callers (local detection on every block) should prefer
// AppendWaitsForEdges with a reused buffer; this allocating form is for
// the Snoop — whose result travels through a mailbox and must not alias
// scratch — and for tests.
func (lt *LockTable) WaitsForEdges(node int) []Edge {
	return lt.AppendWaitsForEdges(node, nil)
}
