package cc

import (
	"sort"

	"ddbm/internal/db"
)

// LockMode is a page lock mode.
type LockMode int

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// Compatible reports whether two lock modes held by different transactions
// can coexist.
func Compatible(a, b LockMode) bool { return a == LockS && b == LockS }

type lockHolder struct {
	co   *CohortMeta
	mode LockMode
}

type lockReq struct {
	co      *CohortMeta
	mode    LockMode
	upgrade bool
}

type lockEntry struct {
	page    db.PageID
	holders []lockHolder
	queue   []*lockReq
}

func (e *lockEntry) holderMode(co *CohortMeta) (LockMode, bool) {
	for _, h := range e.holders {
		if h.co == co {
			return h.mode, true
		}
	}
	return 0, false
}

// LockTable is the per-node lock manager shared by the 2PL and wound-wait
// algorithms: shared/exclusive page locks, FIFO wait queues, and
// read-to-write upgrades that jump to the head of the queue.
type LockTable struct {
	entries map[db.PageID]*lockEntry
	held    map[*CohortMeta]map[db.PageID]LockMode
	waiting map[*CohortMeta]db.PageID
}

// NewLockTable creates an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{
		entries: make(map[db.PageID]*lockEntry),
		held:    make(map[*CohortMeta]map[db.PageID]LockMode),
		waiting: make(map[*CohortMeta]db.PageID),
	}
}

// Lock requests a lock on page in the given mode for co. If the lock is
// granted immediately it returns (true, nil). Otherwise the request has
// been queued (upgrades at the front, new requests at the back) and the
// cohorts currently standing in the way — conflicting holders plus
// conflicting queued requests ahead of ours — are returned so the caller
// can apply its conflict policy (wait, wound, detect deadlock). The caller
// must then call co.Block().
func (lt *LockTable) Lock(co *CohortMeta, page db.PageID, mode LockMode) (granted bool, conflicts []*CohortMeta) {
	e := lt.entries[page]
	if e == nil {
		e = &lockEntry{page: page}
		lt.entries[page] = e
	}

	if cur, ok := e.holderMode(co); ok {
		if cur == LockX || mode == LockS {
			return true, nil // already strong enough
		}
		// Upgrade S -> X: grantable only as sole holder.
		if len(e.holders) == 1 {
			lt.setHolder(e, co, LockX)
			return true, nil
		}
		req := &lockReq{co: co, mode: LockX, upgrade: true}
		// Upgrades queue ahead of ordinary requests, behind earlier upgrades.
		pos := 0
		for pos < len(e.queue) && e.queue[pos].upgrade {
			pos++
		}
		e.queue = append(e.queue, nil)
		copy(e.queue[pos+1:], e.queue[pos:])
		e.queue[pos] = req
		lt.waiting[co] = page
		for _, h := range e.holders {
			if h.co != co {
				conflicts = append(conflicts, h.co)
			}
		}
		// Conflicting upgrades queued ahead of ours also stand in the way.
		for i := 0; i < pos; i++ {
			conflicts = append(conflicts, e.queue[i].co)
		}
		return false, conflicts
	}

	// New request: FIFO — grantable only with an empty queue and no
	// conflicting holder (compatible requests may not overtake waiters,
	// which would starve queued upgrades and X requests).
	if len(e.queue) == 0 {
		ok := true
		for _, h := range e.holders {
			if !Compatible(mode, h.mode) {
				ok = false
				break
			}
		}
		if ok {
			lt.setHolder(e, co, mode)
			return true, nil
		}
	}
	req := &lockReq{co: co, mode: mode}
	e.queue = append(e.queue, req)
	lt.waiting[co] = page
	for _, h := range e.holders {
		if !Compatible(mode, h.mode) {
			conflicts = append(conflicts, h.co)
		}
	}
	for _, q := range e.queue {
		if q == req {
			break
		}
		if q.co != co && (!Compatible(mode, q.mode) || q.upgrade) {
			conflicts = append(conflicts, q.co)
		}
	}
	return false, conflicts
}

func (lt *LockTable) setHolder(e *lockEntry, co *CohortMeta, mode LockMode) {
	for i, h := range e.holders {
		if h.co == co {
			e.holders[i].mode = mode
			lt.held[co][e.page] = mode
			return
		}
	}
	e.holders = append(e.holders, lockHolder{co: co, mode: mode})
	m := lt.held[co]
	if m == nil {
		m = make(map[db.PageID]LockMode)
		lt.held[co] = m
	}
	m[e.page] = mode
}

// ReleaseAll drops every lock co holds and removes any queued request,
// promoting newly grantable waiters. It is idempotent.
func (lt *LockTable) ReleaseAll(co *CohortMeta) {
	lt.RemoveWaiter(co)
	pages := lt.held[co]
	if pages == nil {
		return
	}
	delete(lt.held, co)
	// Release in a deterministic order: promotions resume waiters, and the
	// order those resume events are scheduled must not depend on map
	// iteration order or runs with identical seeds would diverge.
	sorted := make([]db.PageID, 0, len(pages))
	for page := range pages {
		sorted = append(sorted, page)
	}
	sort.Slice(sorted, func(i, j int) bool { return pageLess(sorted[i], sorted[j]) })
	for _, page := range sorted {
		e := lt.entries[page]
		for i, h := range e.holders {
			if h.co == co {
				e.holders = append(e.holders[:i], e.holders[i+1:]...)
				break
			}
		}
		lt.promote(page, e)
	}
}

// RemoveWaiter cancels co's queued request (if any) without resuming it;
// the caller is responsible for Deny()ing the cohort if it is blocked.
func (lt *LockTable) RemoveWaiter(co *CohortMeta) {
	page, ok := lt.waiting[co]
	if !ok {
		return
	}
	delete(lt.waiting, co)
	e := lt.entries[page]
	for i, q := range e.queue {
		if q.co == co {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	lt.promote(page, e)
}

// promote grants queued requests that have become compatible, in FIFO order
// (with upgrades at the front), resuming each granted cohort.
func (lt *LockTable) promote(page db.PageID, e *lockEntry) {
	for len(e.queue) > 0 {
		head := e.queue[0]
		if head.upgrade {
			if len(e.holders) != 1 || e.holders[0].co != head.co {
				return
			}
			e.holders[0].mode = LockX
			lt.held[head.co][page] = LockX
		} else {
			ok := true
			for _, h := range e.holders {
				if !Compatible(head.mode, h.mode) {
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			e.holders = append(e.holders, lockHolder{co: head.co, mode: head.mode})
			m := lt.held[head.co]
			if m == nil {
				m = make(map[db.PageID]LockMode)
				lt.held[head.co] = m
			}
			m[page] = head.mode
		}
		e.queue = e.queue[1:]
		delete(lt.waiting, head.co)
		head.co.Grant()
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(lt.entries, page)
	}
}

// Holds reports the mode co holds on page.
func (lt *LockTable) Holds(co *CohortMeta, page db.PageID) (LockMode, bool) {
	m, ok := lt.held[co][page]
	return m, ok
}

// HeldCount returns the number of locks co holds.
func (lt *LockTable) HeldCount(co *CohortMeta) int { return len(lt.held[co]) }

// Size returns the number of pages with lock state (held or queued) —
// the probe sampler's lock-table-size gauge.
func (lt *LockTable) Size() int { return len(lt.entries) }

// WaiterCount returns the number of cohorts currently queued behind a
// conflicting lock — the probe sampler's blocked-txn gauge.
func (lt *LockTable) WaiterCount() int { return len(lt.waiting) }

// Empty reports whether the table holds no locks and no waiters — the
// quiescence invariant checked at the end of simulations.
func (lt *LockTable) Empty() bool {
	return len(lt.held) == 0 && len(lt.waiting) == 0
}

// pageLess is the total order (file, then page) used wherever lock-table
// maps must be iterated deterministically.
func pageLess(a, b db.PageID) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Page < b.Page
}

// WaitsForEdges returns this node's waits-for graph: one edge per
// (waiter, blocker) pair where the blocker is a conflicting holder or a
// conflicting request queued ahead of the waiter. Edges are emitted in
// sorted page order, not map order: FindVictims canonicalizes whatever it
// receives, but a stable order keeps every downstream consumer (tracing,
// tests, future victim policies) independent of map iteration.
func (lt *LockTable) WaitsForEdges(node int) []Edge {
	pages := make([]db.PageID, 0, len(lt.entries))
	for page := range lt.entries {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pageLess(pages[i], pages[j]) })
	var edges []Edge
	for _, page := range pages {
		e := lt.entries[page]
		for qi, q := range e.queue {
			add := func(other *CohortMeta) {
				if other.Txn != q.co.Txn {
					edges = append(edges, Edge{Waiter: q.co.Txn, Blocker: other.Txn, Node: node})
				}
			}
			if q.upgrade {
				for _, h := range e.holders {
					if h.co != q.co {
						add(h.co)
					}
				}
				for i := 0; i < qi; i++ {
					add(e.queue[i].co)
				}
				continue
			}
			for _, h := range e.holders {
				if !Compatible(q.mode, h.mode) {
					add(h.co)
				}
			}
			for i := 0; i < qi; i++ {
				prev := e.queue[i]
				if prev.upgrade || !Compatible(q.mode, prev.mode) {
					add(prev.co)
				}
			}
		}
	}
	return edges
}
