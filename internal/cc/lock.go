package cc

import (
	"ddbm/internal/db"
)

// LockMode is a page lock mode.
type LockMode int

const (
	// LockS is a shared (read) lock.
	LockS LockMode = iota
	// LockX is an exclusive (write) lock.
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// Compatible reports whether two lock modes held by different transactions
// can coexist.
func Compatible(a, b LockMode) bool { return a == LockS && b == LockS }

type lockHolder struct {
	co   *CohortMeta
	mode LockMode
}

// lockReq is one queued request: a node in its entry's intrusive FIFO wait
// list. Nodes are recycled through the table's free list so steady-state
// enqueue/dequeue never allocates.
type lockReq struct {
	co      *CohortMeta
	mode    LockMode
	upgrade bool
	next    *lockReq
}

// lockEntry is the lock state of one page: the holder set and an intrusive
// singly-linked wait queue (upgrades at the front). Entries are recycled
// through the table's free list when a page's last holder and waiter leave.
type lockEntry struct {
	page     db.PageID
	holders  []lockHolder
	qhead    *lockReq
	qtail    *lockReq
	qlen     int
	nextFree *lockEntry
}

func (e *lockEntry) holderMode(co *CohortMeta) (LockMode, bool) {
	for _, h := range e.holders {
		if h.co == co {
			return h.mode, true
		}
	}
	return 0, false
}

// dropHolder removes co from the holder set, zeroing the vacated tail slot
// so the backing array does not pin dead cohorts.
func (e *lockEntry) dropHolder(co *CohortMeta) {
	for i := range e.holders {
		if e.holders[i].co == co {
			last := len(e.holders) - 1
			copy(e.holders[i:], e.holders[i+1:])
			e.holders[last] = lockHolder{}
			e.holders = e.holders[:last]
			return
		}
	}
}

// pushBack appends q to the wait queue.
func (e *lockEntry) pushBack(q *lockReq) {
	if e.qtail == nil {
		e.qhead = q
	} else {
		e.qtail.next = q
	}
	e.qtail = q
	e.qlen++
}

// insertUpgrade places q behind earlier upgrades but ahead of ordinary
// requests.
func (e *lockEntry) insertUpgrade(q *lockReq) {
	var prev *lockReq
	cur := e.qhead
	for cur != nil && cur.upgrade {
		prev, cur = cur, cur.next
	}
	q.next = cur
	if prev == nil {
		e.qhead = q
	} else {
		prev.next = q
	}
	if cur == nil {
		e.qtail = q
	}
	e.qlen++
}

// heldLock is one (page, mode) pair a cohort holds.
type heldLock struct {
	page db.PageID
	mode LockMode
}

// cohortLocks is one cohort's held set, kept sorted by pageLess at all
// times (ordered insertion on acquire) so ReleaseAll walks the
// deterministic total order without sorting. Recycled through the table's
// free list.
type cohortLocks struct {
	locks    []heldLock
	nextFree *cohortLocks
}

// search returns the insertion index of page: the first position whose
// page is not below it.
func (cl *cohortLocks) search(page db.PageID) int {
	lo, hi := 0, len(cl.locks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pageLess(cl.locks[mid].page, page) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (cl *cohortLocks) get(page db.PageID) (LockMode, bool) {
	i := cl.search(page)
	if i < len(cl.locks) && cl.locks[i].page == page {
		return cl.locks[i].mode, true
	}
	return 0, false
}

// set records page at mode, inserting in sorted position or updating in
// place.
func (cl *cohortLocks) set(page db.PageID, mode LockMode) {
	i := cl.search(page)
	if i < len(cl.locks) && cl.locks[i].page == page {
		cl.locks[i].mode = mode
		return
	}
	cl.locks = append(cl.locks, heldLock{}) //ddbmlint:allow hotpath-alloc sorted-insert growth; capacity survives free-list recycling
	copy(cl.locks[i+1:], cl.locks[i:])
	cl.locks[i] = heldLock{page: page, mode: mode}
}

// LockTable is the per-node lock manager shared by the 2PL and wound-wait
// algorithms: shared/exclusive page locks, FIFO wait queues, and
// read-to-write upgrades that jump to the head of the queue.
//
// The contention paths are allocation-free in steady state and never scan
// or sort the whole table: entries, queue nodes and per-cohort held lists
// are free-listed, held sets are kept in page order incrementally, and the
// set of contended pages (non-empty wait queue) is maintained as a sorted
// slice on first-waiter/last-waiter transitions so waits-for extraction is
// O(waiters), not O(locks held).
type LockTable struct {
	entries map[db.PageID]*lockEntry
	held    map[*CohortMeta]*cohortLocks
	waiting map[*CohortMeta]db.PageID

	// contended holds every entry with a non-empty wait queue, sorted by
	// pageLess — the incremental replacement for sorting all entries on
	// every WaitsForEdges call.
	contended []*lockEntry

	freeEntries *lockEntry
	freeReqs    *lockReq
	freeCohorts *cohortLocks

	// conflictBuf backs the conflicts slice Lock returns; it is valid only
	// until the next Lock call.
	conflictBuf []*CohortMeta
}

// NewLockTable creates an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{
		entries: make(map[db.PageID]*lockEntry),
		held:    make(map[*CohortMeta]*cohortLocks),
		waiting: make(map[*CohortMeta]db.PageID),
	}
}

func (lt *LockTable) newEntry(page db.PageID) *lockEntry {
	e := lt.freeEntries
	if e == nil {
		e = &lockEntry{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses entries
	} else {
		lt.freeEntries = e.nextFree
		e.nextFree = nil
	}
	e.page = page
	return e
}

func (lt *LockTable) freeEntry(e *lockEntry) {
	e.page = db.PageID{}
	e.nextFree = lt.freeEntries
	lt.freeEntries = e
}

func (lt *LockTable) newReq(co *CohortMeta, mode LockMode, upgrade bool) *lockReq {
	q := lt.freeReqs
	if q == nil {
		q = &lockReq{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses queue nodes
	} else {
		lt.freeReqs = q.next
	}
	q.co, q.mode, q.upgrade, q.next = co, mode, upgrade, nil
	return q
}

func (lt *LockTable) freeReq(q *lockReq) {
	q.co = nil
	q.next = lt.freeReqs
	lt.freeReqs = q
}

func (lt *LockTable) newCohortLocks() *cohortLocks {
	cl := lt.freeCohorts
	if cl == nil {
		cl = &cohortLocks{} //ddbmlint:allow hotpath-alloc free-list warmup; steady state reuses held lists
	} else {
		lt.freeCohorts = cl.nextFree
		cl.nextFree = nil
	}
	return cl
}

func (lt *LockTable) freeCohortLocks(cl *cohortLocks) {
	cl.locks = cl.locks[:0]
	cl.nextFree = lt.freeCohorts
	lt.freeCohorts = cl
}

// contendedSearch returns the position of page in the contended list (its
// index if present, else its insertion point).
func (lt *LockTable) contendedSearch(page db.PageID) int {
	lo, hi := 0, len(lt.contended)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pageLess(lt.contended[mid].page, page) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// markContended inserts e into the contended set; called exactly when its
// queue length goes 0 -> 1.
func (lt *LockTable) markContended(e *lockEntry) {
	i := lt.contendedSearch(e.page)
	lt.contended = append(lt.contended, nil) //ddbmlint:allow hotpath-alloc contended-set scratch grows to its high-water mark
	copy(lt.contended[i+1:], lt.contended[i:])
	lt.contended[i] = e
}

// unmarkContended removes e from the contended set; called exactly when
// its queue length goes 1 -> 0.
func (lt *LockTable) unmarkContended(e *lockEntry) {
	i := lt.contendedSearch(e.page)
	last := len(lt.contended) - 1
	copy(lt.contended[i:], lt.contended[i+1:])
	lt.contended[last] = nil
	lt.contended = lt.contended[:last]
}

// Lock requests a lock on page in the given mode for co. If the lock is
// granted immediately it returns (true, nil). Otherwise the request has
// been queued (upgrades at the front, new requests at the back) and the
// cohorts currently standing in the way — conflicting holders plus
// conflicting queued requests ahead of ours — are returned so the caller
// can apply its conflict policy (wait, wound, detect deadlock). The caller
// must then call co.Block(). The conflicts slice is shared scratch, valid
// only until the next Lock call on this table.
//
//ddbmlint:hotpath steady-state acquire pinned by TestSteadyStateAllocFree
func (lt *LockTable) Lock(co *CohortMeta, page db.PageID, mode LockMode) (granted bool, conflicts []*CohortMeta) {
	e := lt.entries[page]
	if e == nil {
		e = lt.newEntry(page)
		lt.entries[page] = e
	}

	if cur, ok := e.holderMode(co); ok {
		if cur == LockX || mode == LockS {
			return true, nil // already strong enough
		}
		// Upgrade S -> X: grantable only as sole holder.
		if len(e.holders) == 1 {
			lt.setHolder(e, co, LockX)
			return true, nil
		}
		// Upgrades queue ahead of ordinary requests, behind earlier upgrades.
		req := lt.newReq(co, LockX, true)
		e.insertUpgrade(req)
		if e.qlen == 1 {
			lt.markContended(e)
		}
		lt.waiting[co] = page
		buf := lt.conflictBuf[:0]
		for _, h := range e.holders {
			if h.co != co {
				buf = append(buf, h.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
			}
		}
		// Conflicting upgrades queued ahead of ours also stand in the way.
		for q := e.qhead; q != req; q = q.next {
			buf = append(buf, q.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
		lt.conflictBuf = buf
		return false, buf
	}

	// New request: FIFO — grantable only with an empty queue and no
	// conflicting holder (compatible requests may not overtake waiters,
	// which would starve queued upgrades and X requests).
	if e.qlen == 0 {
		ok := true
		for _, h := range e.holders {
			if !Compatible(mode, h.mode) {
				ok = false
				break
			}
		}
		if ok {
			lt.setHolder(e, co, mode)
			return true, nil
		}
	}
	req := lt.newReq(co, mode, false)
	e.pushBack(req)
	if e.qlen == 1 {
		lt.markContended(e)
	}
	lt.waiting[co] = page
	buf := lt.conflictBuf[:0]
	for _, h := range e.holders {
		if !Compatible(mode, h.mode) {
			buf = append(buf, h.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
	}
	for q := e.qhead; q != req; q = q.next {
		if q.co != co && (!Compatible(mode, q.mode) || q.upgrade) {
			buf = append(buf, q.co) //ddbmlint:allow hotpath-alloc conflict scratch grows to its high-water mark
		}
	}
	lt.conflictBuf = buf
	return false, buf
}

func (lt *LockTable) setHolder(e *lockEntry, co *CohortMeta, mode LockMode) {
	for i, h := range e.holders {
		if h.co == co {
			e.holders[i].mode = mode
			lt.held[co].set(e.page, mode)
			return
		}
	}
	e.holders = append(e.holders, lockHolder{co: co, mode: mode}) //ddbmlint:allow hotpath-alloc holder array capacity survives entry free-list recycling
	cl := lt.held[co]
	if cl == nil {
		cl = lt.newCohortLocks()
		lt.held[co] = cl
	}
	cl.set(e.page, mode)
}

// ReleaseAll drops every lock co holds and removes any queued request,
// promoting newly grantable waiters. It is idempotent. Releases happen in
// (file, page) order — the cohort's held list is kept sorted incrementally,
// so the deterministic order (promotions schedule resume events, whose
// order must not depend on map iteration) costs no sort here.
//
//ddbmlint:hotpath steady-state release pinned by TestSteadyStateAllocFree
func (lt *LockTable) ReleaseAll(co *CohortMeta) {
	lt.RemoveWaiter(co)
	cl := lt.held[co]
	if cl == nil {
		return
	}
	delete(lt.held, co)
	for _, hl := range cl.locks {
		e := lt.entries[hl.page]
		e.dropHolder(co)
		lt.promote(hl.page, e)
	}
	lt.freeCohortLocks(cl)
}

// RemoveWaiter cancels co's queued request (if any) without resuming it;
// the caller is responsible for Deny()ing the cohort if it is blocked.
//
//ddbmlint:hotpath waiter withdrawal pinned by TestSteadyStateAllocFree
func (lt *LockTable) RemoveWaiter(co *CohortMeta) {
	page, ok := lt.waiting[co]
	if !ok {
		return
	}
	delete(lt.waiting, co)
	e := lt.entries[page]
	var prev *lockReq
	for q := e.qhead; q != nil; prev, q = q, q.next {
		if q.co == co {
			if prev == nil {
				e.qhead = q.next
			} else {
				prev.next = q.next
			}
			if e.qtail == q {
				e.qtail = prev
			}
			e.qlen--
			lt.freeReq(q)
			if e.qlen == 0 {
				lt.unmarkContended(e)
			}
			break
		}
	}
	lt.promote(page, e)
}

// promote grants queued requests that have become compatible, in FIFO order
// (with upgrades at the front), resuming each granted cohort.
func (lt *LockTable) promote(page db.PageID, e *lockEntry) {
	for e.qhead != nil {
		head := e.qhead
		if head.upgrade {
			if len(e.holders) != 1 || e.holders[0].co != head.co {
				return
			}
			e.holders[0].mode = LockX
			lt.held[head.co].set(page, LockX)
		} else {
			ok := true
			for _, h := range e.holders {
				if !Compatible(head.mode, h.mode) {
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			e.holders = append(e.holders, lockHolder{co: head.co, mode: head.mode}) //ddbmlint:allow hotpath-alloc holder array capacity survives entry free-list recycling
			cl := lt.held[head.co]
			if cl == nil {
				cl = lt.newCohortLocks()
				lt.held[head.co] = cl
			}
			cl.set(page, head.mode)
		}
		granted := head.co
		e.qhead = head.next
		if e.qhead == nil {
			e.qtail = nil
		}
		e.qlen--
		lt.freeReq(head)
		if e.qlen == 0 {
			lt.unmarkContended(e)
		}
		delete(lt.waiting, granted)
		granted.Grant()
	}
	if len(e.holders) == 0 && e.qlen == 0 {
		delete(lt.entries, page)
		lt.freeEntry(e)
	}
}

// Holds reports the mode co holds on page.
func (lt *LockTable) Holds(co *CohortMeta, page db.PageID) (LockMode, bool) {
	cl := lt.held[co]
	if cl == nil {
		return 0, false
	}
	return cl.get(page)
}

// HeldCount returns the number of locks co holds.
func (lt *LockTable) HeldCount(co *CohortMeta) int {
	cl := lt.held[co]
	if cl == nil {
		return 0
	}
	return len(cl.locks)
}

// Size returns the number of pages with lock state (held or queued) —
// the probe sampler's lock-table-size gauge.
func (lt *LockTable) Size() int { return len(lt.entries) }

// WaiterCount returns the number of cohorts currently queued behind a
// conflicting lock — the probe sampler's blocked-txn gauge.
func (lt *LockTable) WaiterCount() int { return len(lt.waiting) }

// ContendedCount returns the number of pages with a non-empty wait queue.
func (lt *LockTable) ContendedCount() int { return len(lt.contended) }

// Empty reports whether the table holds no locks and no waiters — the
// quiescence invariant checked at the end of simulations.
func (lt *LockTable) Empty() bool {
	return len(lt.held) == 0 && len(lt.waiting) == 0
}

// pageLess is the total order (file, then page) used wherever lock-table
// state must be kept or iterated deterministically.
func pageLess(a, b db.PageID) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Page < b.Page
}

// AppendWaitsForEdges appends this node's waits-for graph to edges and
// returns the extended slice: one edge per (waiter, blocker) pair where
// the blocker is a conflicting holder or a conflicting request queued
// ahead of the waiter. Only the contended pages — maintained incrementally
// as queues gain and lose their waiters — are visited, in (file, page)
// order: the same total order the former sort-the-whole-table
// implementation produced, at O(waiters) cost independent of the number of
// locks held. A stable order keeps every downstream consumer (tracing,
// tests, future victim policies) independent of map iteration.
//
//ddbmlint:hotpath waits-for extraction pinned by TestSteadyStateAllocFree
func (lt *LockTable) AppendWaitsForEdges(node int, edges []Edge) []Edge {
	for _, e := range lt.contended {
		qi := 0
		for q := e.qhead; q != nil; q, qi = q.next, qi+1 {
			waiter := q.co.Txn
			if q.upgrade {
				for _, h := range e.holders {
					if h.co != q.co && h.co.Txn != waiter {
						edges = append(edges, Edge{Waiter: waiter, Blocker: h.co.Txn, Node: node})
					}
				}
				for p := e.qhead; p != q; p = p.next {
					if p.co.Txn != waiter {
						edges = append(edges, Edge{Waiter: waiter, Blocker: p.co.Txn, Node: node})
					}
				}
				continue
			}
			for _, h := range e.holders {
				if !Compatible(q.mode, h.mode) && h.co.Txn != waiter {
					edges = append(edges, Edge{Waiter: waiter, Blocker: h.co.Txn, Node: node})
				}
			}
			for p := e.qhead; p != q; p = p.next {
				if (p.upgrade || !Compatible(q.mode, p.mode)) && p.co.Txn != waiter {
					edges = append(edges, Edge{Waiter: waiter, Blocker: p.co.Txn, Node: node})
				}
			}
		}
	}
	return edges
}

// WaitsForEdges returns this node's waits-for graph in a fresh slice. Hot
// callers (local detection on every block) should prefer
// AppendWaitsForEdges with a reused buffer; this allocating form is for
// the Snoop — whose result travels through a mailbox and must not alias
// scratch — and for tests.
func (lt *LockTable) WaitsForEdges(node int) []Edge {
	return lt.AppendWaitsForEdges(node, nil)
}
