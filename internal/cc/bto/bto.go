// Package bto implements basic timestamp ordering (paper §2.4): every page
// carries a read timestamp and a write timestamp, and conflicting accesses
// must occur in timestamp order. Out-of-order accesses abort the
// transaction, except write-write conflicts where the Thomas write rule
// applies. Writers buffer updates privately; granted writes are queued on
// the page in timestamp order without blocking the writer and become
// visible when the writer commits. Reads that would see a pending
// (uncommitted) earlier write must block until that write resolves, so
// readers never read dirty data.
package bto

import (
	"ddbm/internal/cc"
	"ddbm/internal/db"
)

// Algorithm builds BTO managers. No global machinery: a blocked reader
// waits only on writers, and writers never block, so BTO cannot deadlock.
type Algorithm struct{}

// New creates the algorithm.
func New() *Algorithm { return &Algorithm{} }

// Kind reports cc.BTO.
func (a *Algorithm) Kind() cc.Kind { return cc.BTO }

// NewManager creates the per-node manager.
func (a *Algorithm) NewManager(env cc.Env) cc.Manager {
	return &manager{
		env:     env,
		pages:   make(map[db.PageID]*pageState),
		cohorts: make(map[*cc.CohortMeta]*cohortState),
	}
}

// StartGlobal is a no-op.
func (a *Algorithm) StartGlobal(g cc.GlobalEnv) {}

type pendingWrite struct {
	ts int64
	co *cc.CohortMeta
}

type blockedRead struct {
	ts int64
	co *cc.CohortMeta
}

type pageState struct {
	rts     int64          // largest timestamp of any granted read
	wts     int64          // timestamp of the current committed version
	pending []pendingWrite // uncommitted granted writes, ascending ts
	blocked []*blockedRead // readers waiting for earlier pending writes
}

// earliestPendingBelow reports whether any pending write has a timestamp
// smaller than ts (such a write must resolve before a read at ts may see
// the page).
func (ps *pageState) pendingBelow(ts int64) bool {
	return len(ps.pending) > 0 && ps.pending[0].ts < ts
}

type cohortState struct {
	writes []db.PageID // pages with a pending write by this cohort
}

type manager struct {
	env     cc.Env
	pages   map[db.PageID]*pageState
	cohorts map[*cc.CohortMeta]*cohortState
}

func (m *manager) Kind() cc.Kind { return cc.BTO }

// TableSize and BlockedCount are the probe sampler's gauges (obs layer):
// pages with timestamp state, and readers blocked behind pending writes.
func (m *manager) TableSize() int { return len(m.pages) }

func (m *manager) BlockedCount() int {
	n := 0
	for _, ps := range m.pages {
		n += len(ps.blocked)
	}
	return n
}

func (m *manager) page(p db.PageID) *pageState {
	ps := m.pages[p]
	if ps == nil {
		ps = &pageState{}
		m.pages[p] = ps
	}
	return ps
}

func (m *manager) cohort(co *cc.CohortMeta) *cohortState {
	cs := m.cohorts[co]
	if cs == nil {
		cs = &cohortState{}
		m.cohorts[co] = cs
	}
	return cs
}

func (m *manager) Access(co *cc.CohortMeta, page db.PageID, write bool) cc.Outcome {
	if co.Txn.AbortRequested {
		return cc.Aborted
	}
	ts := co.Txn.AttemptTS
	ps := m.page(page)

	if write {
		if ts < ps.rts {
			// A later read already saw the old version.
			co.Txn.NoteCause(m.env.Node, cc.CauseBTOTooLate)
			return cc.Aborted
		}
		if ts < ps.wts {
			// Thomas write rule: a later write is already in place; this
			// write can be skipped entirely.
			return cc.Granted
		}
		cs := m.cohort(co)
		// Insertion point: first pending write at or above ts (the pending
		// list is kept sorted by timestamp). An open-coded binary search —
		// sort.Search's closure would be this function's only allocation.
		lo, hi := 0, len(ps.pending)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ps.pending[mid].ts < ts {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		i := lo
		if i < len(ps.pending) && ps.pending[i].co == co {
			return cc.Granted // idempotent re-write by the same cohort
		}
		ps.pending = append(ps.pending, pendingWrite{})
		copy(ps.pending[i+1:], ps.pending[i:])
		ps.pending[i] = pendingWrite{ts: ts, co: co}
		cs.writes = append(cs.writes, page)
		return cc.Granted
	}

	// Read.
	if ts < ps.wts {
		// Too late: a newer version is already committed.
		co.Txn.NoteCause(m.env.Node, cc.CauseBTOTooLate)
		return cc.Aborted
	}
	if ps.pendingBelow(ts) {
		br := &blockedRead{ts: ts, co: co}
		ps.blocked = append(ps.blocked, br)
		out := co.Block()
		// On Granted the waker already updated rts; on Aborted the waker
		// (resolve or the abort protocol) already removed our entry.
		return out
	}
	if ts > ps.rts {
		ps.rts = ts
	}
	return cc.Granted
}

func (m *manager) Prepare(co *cc.CohortMeta) bool { return true }

// Commit installs the cohort's pending writes (making them the committed
// version) and re-evaluates blocked readers on the affected pages.
func (m *manager) Commit(co *cc.CohortMeta) {
	cs := m.cohorts[co]
	if cs == nil {
		return
	}
	delete(m.cohorts, co)
	for _, page := range cs.writes {
		ps := m.pages[page]
		for i, pw := range ps.pending {
			if pw.co == co {
				ps.pending = append(ps.pending[:i], ps.pending[i+1:]...)
				if pw.ts > ps.wts {
					ps.wts = pw.ts
				}
				break
			}
		}
		m.resolveBlocked(page, ps)
	}
	// A blocked read never belongs to a committing cohort: commit requires
	// all of the transaction's cohorts to have finished their work phase.
}

// Abort discards the cohort's pending writes, removes any blocked read, and
// re-evaluates waiters. Idempotent.
func (m *manager) Abort(co *cc.CohortMeta) {
	cs := m.cohorts[co]
	if cs != nil {
		delete(m.cohorts, co)
		for _, page := range cs.writes {
			ps := m.pages[page]
			for i, pw := range ps.pending {
				if pw.co == co {
					ps.pending = append(ps.pending[:i], ps.pending[i+1:]...)
					break
				}
			}
			m.resolveBlocked(page, ps)
		}
	}
	// Remove a blocked read by this cohort anywhere (it can only be blocked
	// on one page, the one it is currently accessing).
	if co.Waiting() {
		//ddbmlint:ordered a waiting cohort has at most one blocked read across all pages, so at most one iteration acts
		for _, ps := range m.pages {
			for i, br := range ps.blocked {
				if br.co == co {
					ps.blocked = append(ps.blocked[:i], ps.blocked[i+1:]...)
					co.Deny()
					return
				}
			}
		}
		// Not blocked in BTO structures (cannot happen, but stay safe).
	}
}

// resolveBlocked wakes blocked readers whose awaited pending writes have all
// resolved, granting or (if the committed version passed them by) aborting.
func (m *manager) resolveBlocked(page db.PageID, ps *pageState) {
	if len(ps.blocked) == 0 {
		return
	}
	kept := ps.blocked[:0]
	var grant, deny []*blockedRead
	for _, br := range ps.blocked {
		switch {
		case br.ts < ps.wts:
			deny = append(deny, br)
		case !ps.pendingBelow(br.ts):
			grant = append(grant, br)
		default:
			kept = append(kept, br)
		}
	}
	for i := len(kept); i < len(ps.blocked); i++ {
		ps.blocked[i] = nil
	}
	ps.blocked = kept
	for _, br := range grant {
		if br.ts > ps.rts {
			ps.rts = br.ts
		}
		br.co.Grant()
	}
	for _, br := range deny {
		// The read it was waiting to perform is now too late: a newer
		// version committed while it was blocked.
		br.co.Txn.NoteCause(m.env.Node, cc.CauseBTOTooLate)
		br.co.Deny()
	}
}

// Quiesced reports whether the node holds no pending writes or blocked
// reads — the end-of-run invariant.
func (m *manager) Quiesced() bool {
	if len(m.cohorts) != 0 {
		return false
	}
	for _, ps := range m.pages {
		if len(ps.pending) != 0 || len(ps.blocked) != 0 {
			return false
		}
	}
	return true
}
