package bto

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/sim"
)

func TestMultipleReadersBlockOnSamePendingWrite(t *testing.T) {
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w := newCo(1, 10)
	m.Access(w, pg(1), true)
	granted := 0
	for i := 0; i < 3; i++ {
		r := newCo(int64(i+2), int64(20+i))
		s.Spawn("reader", func(p *sim.Proc) {
			r.Proc = p
			if m.Access(r, pg(1), false) == cc.Granted {
				granted++
			}
		})
	}
	s.Spawn("committer", func(p *sim.Proc) {
		p.Delay(10)
		w.Txn.State = cc.Committing
		m.Commit(w)
	})
	s.Run(1000)
	if granted != 3 {
		t.Fatalf("%d of 3 blocked readers granted after commit", granted)
	}
	if m.page(pg(1)).rts != 22 {
		t.Fatalf("rts %d, want 22 (max of granted readers)", m.page(pg(1)).rts)
	}
}

func TestReaderBlocksAcrossChainOfPendingWrites(t *testing.T) {
	// Pending writes at 5 and 10; reader at 20 must wait for BOTH to
	// resolve before it may proceed.
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w5, w10, r20 := newCo(1, 5), newCo(2, 10), newCo(3, 20)
	m.Access(w5, pg(1), true)
	m.Access(w10, pg(1), true)
	var grantedAt sim.Time
	s.Spawn("reader", func(p *sim.Proc) {
		r20.Proc = p
		if m.Access(r20, pg(1), false) == cc.Granted {
			grantedAt = s.Now()
		}
	})
	s.Spawn("c5", func(p *sim.Proc) {
		p.Delay(10)
		w5.Txn.State = cc.Committing
		m.Commit(w5)
	})
	s.Spawn("c10", func(p *sim.Proc) {
		p.Delay(30)
		w10.Txn.State = cc.Committing
		m.Commit(w10)
	})
	s.Run(1000)
	if grantedAt != 30 {
		t.Fatalf("reader granted at %v, want 30 (after both pending writes)", grantedAt)
	}
}

func TestWriteBetweenBlockedReaderAndItsWake(t *testing.T) {
	// Reader at 20 blocks on pending write at 10. A new write at 15
	// arrives while it waits. When 10 commits, the reader must STAY
	// blocked (15 still pending below it), and only proceed when 15
	// resolves.
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w10, w15, r20 := newCo(1, 10), newCo(2, 15), newCo(3, 20)
	m.Access(w10, pg(1), true)
	var grantedAt sim.Time
	var out cc.Outcome
	s.Spawn("reader", func(p *sim.Proc) {
		r20.Proc = p
		out = m.Access(r20, pg(1), false)
		grantedAt = s.Now()
	})
	s.Spawn("w15", func(p *sim.Proc) {
		p.Delay(2)
		if m.Access(w15, pg(1), true) != cc.Granted {
			t.Error("w15 rejected")
		}
	})
	s.Spawn("c10", func(p *sim.Proc) {
		p.Delay(10)
		w10.Txn.State = cc.Committing
		m.Commit(w10)
	})
	s.Spawn("a15", func(p *sim.Proc) {
		p.Delay(25)
		m.Abort(w15) // 15 aborts; reader reads version 10
	})
	s.Run(1000)
	if out != cc.Granted || grantedAt != 25 {
		t.Fatalf("reader %v at %v, want granted at 25", out, grantedAt)
	}
	if m.page(pg(1)).wts != 10 {
		t.Fatalf("wts %d, want 10", m.page(pg(1)).wts)
	}
}

func TestWriteRejectedWhileReaderBlocked(t *testing.T) {
	// A blocked reader at 20 has NOT yet raised rts (it hasn't read), so a
	// write at 12 can still slip in; but a write below the committed wts
	// follows the Thomas rule. Verify rts only rises at grant time.
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w10, r20 := newCo(1, 10), newCo(2, 20)
	m.Access(w10, pg(1), true)
	s.Spawn("reader", func(p *sim.Proc) {
		r20.Proc = p
		m.Access(r20, pg(1), false)
	})
	s.Run(10)
	if m.page(pg(1)).rts != 0 {
		t.Fatalf("blocked reader raised rts to %d before reading", m.page(pg(1)).rts)
	}
	s.Shutdown()
}

func TestAbortBeforeAnyAccessIsNoOp(t *testing.T) {
	m := newMgr()
	co := newCo(1, 10)
	m.Abort(co) // never touched the node
	if !m.Quiesced() {
		t.Fatal("no-op abort left state")
	}
}

func TestInterleavedPagesIndependent(t *testing.T) {
	// Timestamps on one page must not affect another.
	m := newMgr()
	a := newCo(1, 10)
	b := newCo(2, 5)
	if m.Access(a, pg(1), false) != cc.Granted {
		t.Fatal("read rejected")
	}
	// b (older) writes a DIFFERENT page: fine even though a read page 1.
	if m.Access(b, pg(2), true) != cc.Granted {
		t.Fatal("independent page write rejected")
	}
	// but b writing page 1 is too late (rts 10 > 5).
	if m.Access(b, pg(1), true) != cc.Aborted {
		t.Fatal("late write granted")
	}
}
