package bto

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func pg(n int) db.PageID { return db.PageID{File: 0, Page: n} }

// newCo builds a cohort whose AttemptTS is ts.
func newCo(id, ts int64) *cc.CohortMeta {
	return &cc.CohortMeta{Txn: &cc.TxnMeta{ID: id, TS: id, AttemptTS: ts}, Node: 0}
}

func newMgr() *manager {
	return New().NewManager(cc.Env{Sim: sim.New(1), Node: 0}).(*manager)
}

func TestKind(t *testing.T) {
	a := New()
	if a.Kind() != cc.BTO {
		t.Fatal("wrong kind")
	}
	a.StartGlobal(nil)
	if newMgr().Kind() != cc.BTO {
		t.Fatal("manager wrong kind")
	}
}

func TestReadsInAnyOrderOnCommittedData(t *testing.T) {
	m := newMgr()
	// Reads never conflict with reads, regardless of order.
	if m.Access(newCo(1, 10), pg(1), false) != cc.Granted {
		t.Fatal("read rejected")
	}
	if m.Access(newCo(2, 5), pg(1), false) != cc.Granted {
		t.Fatal("older read after younger read rejected (reads don't conflict)")
	}
}

func TestLateReadAborts(t *testing.T) {
	m := newMgr()
	w := newCo(1, 10)
	if m.Access(w, pg(1), true) != cc.Granted {
		t.Fatal("write rejected")
	}
	w.Txn.State = cc.Committing
	m.Commit(w) // wts = 10
	if m.Access(newCo(2, 5), pg(1), false) != cc.Aborted {
		t.Fatal("read with ts below committed wts was granted")
	}
	if m.Access(newCo(3, 15), pg(1), false) != cc.Granted {
		t.Fatal("read above wts rejected")
	}
}

func TestLateWriteAborts(t *testing.T) {
	m := newMgr()
	if m.Access(newCo(1, 10), pg(1), false) != cc.Granted { // rts = 10
		t.Fatal("read rejected")
	}
	if m.Access(newCo(2, 5), pg(1), true) != cc.Aborted {
		t.Fatal("write below rts was granted")
	}
	if m.Access(newCo(3, 15), pg(1), true) != cc.Granted {
		t.Fatal("write above rts rejected")
	}
}

func TestThomasWriteRule(t *testing.T) {
	m := newMgr()
	w1 := newCo(1, 20)
	m.Access(w1, pg(1), true)
	w1.Txn.State = cc.Committing
	m.Commit(w1) // wts = 20
	// A write at 10 (> rts 0, < wts 20) is skipped, not aborted.
	w2 := newCo(2, 10)
	if m.Access(w2, pg(1), true) != cc.Granted {
		t.Fatal("Thomas-rule write aborted instead of skipped")
	}
	// It must leave no pending entry.
	if len(m.page(pg(1)).pending) != 0 {
		t.Fatal("Thomas-rule write left a pending entry")
	}
	// Committing it must not move wts backwards.
	w2.Txn.State = cc.Committing
	m.Commit(w2)
	if m.page(pg(1)).wts != 20 {
		t.Fatalf("wts %d after Thomas write, want 20", m.page(pg(1)).wts)
	}
}

func TestWritersNeverBlock(t *testing.T) {
	m := newMgr()
	// Two pending writes from different transactions coexist.
	if m.Access(newCo(1, 10), pg(1), true) != cc.Granted {
		t.Fatal("first write rejected")
	}
	if m.Access(newCo(2, 20), pg(1), true) != cc.Granted {
		t.Fatal("second write rejected (writers must queue, not block)")
	}
	if len(m.page(pg(1)).pending) != 2 {
		t.Fatalf("pending count %d, want 2", len(m.page(pg(1)).pending))
	}
	// Pending queue is in timestamp order even with out-of-order arrival.
	if m.Access(newCo(3, 15), pg(1), true) != cc.Granted {
		t.Fatal("third write rejected")
	}
	p := m.page(pg(1)).pending
	if p[0].ts != 10 || p[1].ts != 15 || p[2].ts != 20 {
		t.Fatalf("pending order %v", p)
	}
}

func TestReadBlocksOnEarlierPendingWrite(t *testing.T) {
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w := newCo(1, 10)
	r := newCo(2, 20)
	m.Access(w, pg(1), true) // pending write at 10
	var out cc.Outcome
	var at sim.Time
	s.Spawn("reader", func(p *sim.Proc) {
		r.Proc = p
		out = m.Access(r, pg(1), false) // must wait for the pending write
		at = s.Now()
	})
	s.Spawn("committer", func(p *sim.Proc) {
		p.Delay(25)
		w.Txn.State = cc.Committing
		m.Commit(w)
	})
	s.Run(1000)
	if out != cc.Granted || at != 25 {
		t.Fatalf("reader %v at %v, want granted at 25", out, at)
	}
	if m.page(pg(1)).rts != 20 {
		t.Fatalf("rts %d after blocked read granted, want 20", m.page(pg(1)).rts)
	}
}

func TestReadDoesNotBlockOnLaterPendingWrite(t *testing.T) {
	m := newMgr()
	m.Access(newCo(1, 30), pg(1), true) // pending write at 30
	if m.Access(newCo(2, 20), pg(1), false) != cc.Granted {
		t.Fatal("read below pending write blocked (it reads the committed version)")
	}
}

func TestBlockedReadDeniedWhenVersionPasses(t *testing.T) {
	// Reader at 20 blocks on pending write at 10; then a write at 25
	// commits first... construct: pending writes at 10 and 25; reader at 20
	// blocks on 10; commit 25 first (wts=25 > 20): reader must abort when
	// re-evaluated; then commit 10 too.
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w10, w25, r20 := newCo(1, 10), newCo(2, 25), newCo(3, 20)
	m.Access(w10, pg(1), true)
	m.Access(w25, pg(1), true)
	var out cc.Outcome
	s.Spawn("reader", func(p *sim.Proc) {
		r20.Proc = p
		out = m.Access(r20, pg(1), false)
	})
	s.Spawn("committer", func(p *sim.Proc) {
		p.Delay(5)
		w25.Txn.State = cc.Committing
		m.Commit(w25) // wts = 25: the blocked reader at 20 is now too late
	})
	s.Run(1000)
	if out != cc.Aborted {
		t.Fatalf("blocked reader outcome %v, want aborted (version passed it by)", out)
	}
}

func TestAbortDiscardsPendingAndUnblocks(t *testing.T) {
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w := newCo(1, 10)
	r := newCo(2, 20)
	m.Access(w, pg(1), true)
	var out cc.Outcome
	var at sim.Time
	s.Spawn("reader", func(p *sim.Proc) {
		r.Proc = p
		out = m.Access(r, pg(1), false)
		at = s.Now()
	})
	s.Spawn("aborter", func(p *sim.Proc) {
		p.Delay(7)
		m.Abort(w) // write never happens; reader reads committed version
	})
	s.Run(1000)
	if out != cc.Granted || at != 7 {
		t.Fatalf("reader %v at %v, want granted at 7 (writer aborted)", out, at)
	}
	if m.page(pg(1)).wts != 0 {
		t.Fatal("aborted write changed wts")
	}
	if !m.Quiesced() {
		t.Fatal("manager not quiesced")
	}
}

func TestAbortDeniesOwnBlockedRead(t *testing.T) {
	s := sim.New(1)
	m := New().NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	w := newCo(1, 10)
	r := newCo(2, 20)
	m.Access(w, pg(1), true)
	var out cc.Outcome
	s.Spawn("reader", func(p *sim.Proc) {
		r.Proc = p
		out = m.Access(r, pg(1), false)
	})
	s.Spawn("aborter", func(p *sim.Proc) {
		p.Delay(3)
		r.Txn.AbortRequested = true
		m.Abort(r) // the reader's own transaction aborts while blocked
	})
	s.Run(1000)
	if out != cc.Aborted {
		t.Fatalf("blocked reader %v after own abort, want aborted", out)
	}
	if len(m.page(pg(1)).blocked) != 0 {
		t.Fatal("blocked entry leaked")
	}
}

func TestCommitIdempotentAndUnknownCohort(t *testing.T) {
	m := newMgr()
	co := newCo(1, 10)
	m.Access(co, pg(1), true)
	co.Txn.State = cc.Committing
	m.Commit(co)
	m.Commit(co) // idempotent
	m.Abort(co)  // after commit: no-op
	unknown := newCo(9, 99)
	m.Commit(unknown) // never accessed: no-op
	m.Abort(unknown)
	if m.page(pg(1)).wts != 10 {
		t.Fatal("commit did not install write")
	}
}

func TestAccessAfterAbortRequestedRejected(t *testing.T) {
	m := newMgr()
	co := newCo(1, 10)
	co.Txn.AbortRequested = true
	if m.Access(co, pg(1), false) != cc.Aborted {
		t.Fatal("aborting transaction's access granted")
	}
}

func TestRTSAdvancesMonotonically(t *testing.T) {
	m := newMgr()
	m.Access(newCo(1, 10), pg(1), false)
	m.Access(newCo(2, 5), pg(1), false) // smaller ts: rts must stay 10
	if m.page(pg(1)).rts != 10 {
		t.Fatalf("rts %d, want 10", m.page(pg(1)).rts)
	}
	m.Access(newCo(3, 30), pg(1), false)
	if m.page(pg(1)).rts != 30 {
		t.Fatalf("rts %d, want 30", m.page(pg(1)).rts)
	}
}

func TestReadThenWriteSamePageByOneCohort(t *testing.T) {
	// The upgrade path: read at ts, then write at ts on the same page.
	m := newMgr()
	co := newCo(1, 10)
	if m.Access(co, pg(1), false) != cc.Granted {
		t.Fatal("read rejected")
	}
	if m.Access(co, pg(1), true) != cc.Granted {
		t.Fatal("own write after own read rejected")
	}
	co.Txn.State = cc.Committing
	m.Commit(co)
	if m.page(pg(1)).wts != 10 || m.page(pg(1)).rts != 10 {
		t.Fatalf("wts/rts %d/%d, want 10/10", m.page(pg(1)).wts, m.page(pg(1)).rts)
	}
}

func TestDuplicateWriteIdempotent(t *testing.T) {
	m := newMgr()
	co := newCo(1, 10)
	m.Access(co, pg(1), true)
	m.Access(co, pg(1), true) // re-request must not duplicate the pending entry
	if n := len(m.page(pg(1)).pending); n != 1 {
		t.Fatalf("pending entries %d, want 1", n)
	}
}
