package cc

import (
	"testing"

	"ddbm/internal/db"
)

// BenchmarkLockUnlockUncontended measures the uncontended lock hot path.
func BenchmarkLockUnlockUncontended(b *testing.B) {
	lt := NewLockTable()
	co := fakeCohort(1)
	page := db.PageID{File: 0, Page: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Lock(co, page, LockX)
		lt.ReleaseAll(co)
	}
}

// BenchmarkLockManyPages measures acquiring and releasing a 64-page set,
// the paper's transaction footprint.
func BenchmarkLockManyPages(b *testing.B) {
	lt := NewLockTable()
	co := fakeCohort(1)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pages {
			lt.Lock(co, p, LockS)
		}
		lt.ReleaseAll(co)
	}
}

// BenchmarkFindVictims measures deadlock detection over a 32-node graph
// with one cycle.
func BenchmarkFindVictims(b *testing.B) {
	txns := make([]*TxnMeta, 32)
	for i := range txns {
		txns[i] = &TxnMeta{ID: int64(i + 1), TS: int64(i + 1)}
	}
	var es []Edge
	for i := 0; i+1 < len(txns); i++ {
		es = append(es, Edge{Waiter: txns[i], Blocker: txns[i+1]})
	}
	es = append(es, Edge{Waiter: txns[len(txns)-1], Blocker: txns[0]})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range txns {
			t.AbortRequested = false
		}
		FindVictims(es)
	}
}
