package cc

import (
	"testing"

	"ddbm/internal/db"
)

// BenchmarkLockUnlockUncontended measures the uncontended lock hot path.
func BenchmarkLockUnlockUncontended(b *testing.B) {
	lt := NewLockTable()
	co := fakeCohort(1)
	page := db.PageID{File: 0, Page: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Lock(co, page, LockX)
		lt.ReleaseAll(co)
	}
}

// BenchmarkLockManyPages measures acquiring and releasing a 64-page set,
// the paper's transaction footprint.
func BenchmarkLockManyPages(b *testing.B) {
	lt := NewLockTable()
	co := fakeCohort(1)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pages {
			lt.Lock(co, p, LockS)
		}
		lt.ReleaseAll(co)
	}
}

// contendedTable builds a lock table at the paper's high-contention scale:
// 128 holder transactions each pinning one exclusively held page plus 15
// uncontended shared pages (2176 live locks at small-DB page counts), and
// 128 more transactions queued behind the exclusive pages — 256 active
// transactions, 128 contended pages, 128 waits-for edges.
func contendedTable() (*LockTable, []*CohortMeta, []*CohortMeta) {
	lt := NewLockTable()
	holders := make([]*CohortMeta, 128)
	for i := range holders {
		holders[i] = fakeCohort(int64(i + 1))
		lt.Lock(holders[i], db.PageID{File: i % 8, Page: i / 8}, LockX)
		for j := 0; j < 15; j++ {
			lt.Lock(holders[i], db.PageID{File: i % 8, Page: 40 + (i/8)*15 + j}, LockS)
		}
	}
	waiters := make([]*CohortMeta, 128)
	for i := range waiters {
		waiters[i] = fakeCohort(int64(200 + i))
		lt.Lock(waiters[i], db.PageID{File: i % 8, Page: i / 8}, LockX)
	}
	return lt, holders, waiters
}

// BenchmarkWaitsForEdges measures waits-for extraction at realistic
// contention. The cost must scale with the 128 waiters, not the 2176 locks
// held: the contended-page set is maintained incrementally, so the bulk of
// uncontended entries is never visited (and nothing is sorted per call).
func BenchmarkWaitsForEdges(b *testing.B) {
	lt, _, _ := contendedTable()
	buf := lt.AppendWaitsForEdges(0, nil)
	if len(buf) != 128 {
		b.Fatalf("expected 128 edges, got %d", len(buf))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = lt.AppendWaitsForEdges(0, buf[:0])
	}
}

// BenchmarkReleaseAll measures commit-time release of the paper's 64-page
// transaction footprint inside a table bulked up by 128 concurrent
// holders. Release order is deterministic via the incrementally ordered
// per-cohort held list; no per-commit sort.
func BenchmarkReleaseAll(b *testing.B) {
	lt, _, _ := contendedTable()
	co := fakeCohort(999)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: 500 + i/8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pages {
			lt.Lock(co, p, LockX)
		}
		lt.ReleaseAll(co)
	}
}

// TestSteadyStateAllocFree pins the contention hot path at zero
// steady-state allocations: entries, queue nodes and per-cohort held lists
// are free-listed, the conflicts slice and the waits-for buffer are
// reused, so once warm, acquire, block, release (with promotion) and
// detection never touch the heap.
func TestSteadyStateAllocFree(t *testing.T) {
	lt := NewLockTable()
	a, bb := fakeCohort(1), fakeCohort(2)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: i / 8}
	}
	acquireRelease := func() {
		for _, p := range pages {
			lt.Lock(a, p, LockX)
		}
		lt.ReleaseAll(a)
	}
	acquireRelease() // warm the free lists and map capacity
	if n := testing.AllocsPerRun(100, acquireRelease); n != 0 {
		t.Errorf("uncontended acquire/release: %v allocs/op, want 0", n)
	}

	blockPromote := func() {
		lt.Lock(a, pages[0], LockX)
		if granted, _ := lt.Lock(bb, pages[0], LockX); granted {
			t.Fatal("conflicting lock granted")
		}
		lt.ReleaseAll(a) // promotes bb
		lt.ReleaseAll(bb)
	}
	blockPromote()
	if n := testing.AllocsPerRun(100, blockPromote); n != 0 {
		t.Errorf("contended block/promote/release: %v allocs/op, want 0", n)
	}

	ltc, _, _ := contendedTable()
	buf := ltc.AppendWaitsForEdges(0, nil)
	detect := func() { buf = ltc.AppendWaitsForEdges(0, buf[:0]) }
	if n := testing.AllocsPerRun(100, detect); n != 0 {
		t.Errorf("waits-for extraction: %v allocs/op, want 0", n)
	}

	withdraw := func() {
		lt.Lock(a, pages[0], LockX)
		lt.Lock(bb, pages[0], LockX)
		lt.RemoveWaiter(bb)
		lt.ReleaseAll(a)
	}
	withdraw()
	if n := testing.AllocsPerRun(100, withdraw); n != 0 {
		t.Errorf("waiter withdrawal: %v allocs/op, want 0", n)
	}

	var det Detector
	detectVictims := func() { det.FindVictims(buf) }
	detectVictims()
	if n := testing.AllocsPerRun(100, detectVictims); n != 0 {
		t.Errorf("victim selection: %v allocs/op, want 0", n)
	}

	// Abort demand with cause attribution rides the same contention path
	// (deadlock victims, wounds, timeouts all call RequestAbort; the
	// timestamp algorithms call NoteCause directly) and must not allocate.
	abortAttribute := func() {
		m := a.Txn
		m.AbortRequested, m.AbortReason = false, ""
		m.AbortCause, m.AbortNode = CauseNone, 0
		m.NoteCause(2, CauseBTOTooLate)
		m.RequestAbort(1, "deadlock victim", CauseLocalDeadlock)
	}
	abortAttribute()
	if n := testing.AllocsPerRun(100, abortAttribute); n != 0 {
		t.Errorf("abort demand with cause attribution: %v allocs/op, want 0", n)
	}
}

// BenchmarkFindVictims measures deadlock detection over a 32-node graph
// with one cycle, using a long-lived Detector as the block path does.
func BenchmarkFindVictims(b *testing.B) {
	txns := make([]*TxnMeta, 32)
	for i := range txns {
		txns[i] = &TxnMeta{ID: int64(i + 1), TS: int64(i + 1)}
	}
	var es []Edge
	for i := 0; i+1 < len(txns); i++ {
		es = append(es, Edge{Waiter: txns[i], Blocker: txns[i+1]})
	}
	es = append(es, Edge{Waiter: txns[len(txns)-1], Blocker: txns[0]})
	var det Detector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range txns {
			t.AbortRequested = false
		}
		det.FindVictims(es)
	}
}
