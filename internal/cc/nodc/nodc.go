// Package nodc implements the NO_DC ("no data contention") baseline of
// paper §4.2: every access is granted immediately and transactions never
// abort, as if the database were infinitely large under 2PL. All message
// and commit-protocol behaviour is unchanged, so the gap between NO_DC and
// a real algorithm isolates the cost of data contention.
package nodc

import (
	"ddbm/internal/cc"
	"ddbm/internal/db"
)

// Algorithm builds NO_DC managers.
type Algorithm struct{}

// New creates the algorithm.
func New() *Algorithm { return &Algorithm{} }

// Kind reports cc.NoDC.
func (a *Algorithm) Kind() cc.Kind { return cc.NoDC }

// NewManager creates the per-node manager.
func (a *Algorithm) NewManager(env cc.Env) cc.Manager { return manager{} }

// StartGlobal is a no-op.
func (a *Algorithm) StartGlobal(g cc.GlobalEnv) {}

type manager struct{}

func (manager) Kind() cc.Kind { return cc.NoDC }

func (manager) Access(co *cc.CohortMeta, page db.PageID, write bool) cc.Outcome {
	if co.Txn.AbortRequested {
		return cc.Aborted
	}
	return cc.Granted
}

func (manager) Prepare(co *cc.CohortMeta) bool { return true }
func (manager) Commit(co *cc.CohortMeta)       {}
func (manager) Abort(co *cc.CohortMeta)        {}
