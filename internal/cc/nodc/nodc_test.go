package nodc

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func TestNoDCGrantsEverything(t *testing.T) {
	a := New()
	if a.Kind() != cc.NoDC {
		t.Fatal("wrong kind")
	}
	a.StartGlobal(nil)
	m := a.NewManager(cc.Env{Sim: sim.New(1), Node: 0})
	if m.Kind() != cc.NoDC {
		t.Fatal("manager wrong kind")
	}
	page := db.PageID{File: 0, Page: 0}
	for i := 0; i < 10; i++ {
		co := &cc.CohortMeta{Txn: &cc.TxnMeta{ID: int64(i)}, Node: 0}
		if m.Access(co, page, true) != cc.Granted {
			t.Fatal("NO_DC denied an access")
		}
		if !m.Prepare(co) {
			t.Fatal("NO_DC voted no")
		}
		m.Commit(co)
		m.Abort(co)
	}
}

func TestNoDCRespectsAbortFlag(t *testing.T) {
	m := New().NewManager(cc.Env{Sim: sim.New(1), Node: 0})
	co := &cc.CohortMeta{Txn: &cc.TxnMeta{ID: 1, AbortRequested: true}, Node: 0}
	if m.Access(co, db.PageID{}, false) != cc.Aborted {
		t.Fatal("NO_DC must still honour an in-flight abort")
	}
}
