package twopl

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// buildThreeNodeCycle sets up T1->T2->T3->T1 across three nodes: Ti holds
// page 0 at node i-1 and wants page 0 at node i mod 3.
func buildThreeNodeCycle(t *testing.T, s *sim.Sim, alg *Algorithm) (mgrs []cc.Manager, outs map[int64]cc.Outcome) {
	t.Helper()
	for n := 0; n < 3; n++ {
		mgrs = append(mgrs, alg.NewManager(cc.Env{Sim: s, Node: n}))
	}
	outs = map[int64]cc.Outcome{}
	page := db.PageID{File: 0, Page: 0}
	for i := 0; i < 3; i++ {
		i := i
		id := int64(i + 1)
		txn := &cc.TxnMeta{ID: id, TS: id}
		holdAt := i
		wantAt := (i + 1) % 3
		coHold := &cc.CohortMeta{Txn: txn, Node: holdAt}
		coWant := &cc.CohortMeta{Txn: txn, Node: wantAt}
		txn.OnAbort = func(int, string) {
			// Coordinator surrogate: deliver aborts everywhere.
			s.After(1, func() {
				for n, m := range mgrs {
					_ = n
					m.Abort(coHold)
					m.Abort(coWant)
				}
			})
		}
		s.Spawn("txn", func(p *sim.Proc) {
			coHold.Proc = p
			coWant.Proc = p
			if mgrs[holdAt].Access(coHold, page, true) != cc.Granted {
				outs[id] = cc.Aborted
				return
			}
			p.Delay(5)
			outs[id] = mgrs[wantAt].Access(coWant, page, true)
			if outs[id] == cc.Granted {
				txn.State = cc.Committing
				mgrs[holdAt].Commit(coHold)
				mgrs[wantAt].Commit(coWant)
			}
		})
	}
	return mgrs, outs
}

func TestSnoopResolvesThreeNodeCycle(t *testing.T) {
	s := sim.New(1)
	alg := New(100)
	mgrs, outs := buildThreeNodeCycle(t, s, alg)
	g := &fakeGlobal{s: s, mgrs: mgrs}
	alg.StartGlobal(g)
	s.Run(20000)
	granted, aborted := 0, 0
	for _, o := range outs {
		if o == cc.Granted {
			granted++
		} else {
			aborted++
		}
	}
	// Exactly one victim breaks a 3-cycle; the two survivors complete.
	if aborted != 1 || granted != 2 {
		t.Fatalf("outcomes %v: want 1 aborted, 2 granted", outs)
	}
	if outs[3] != cc.Aborted {
		t.Fatalf("victim should be the youngest (T3): %v", outs)
	}
}

func TestTimeoutAlsoResolvesThreeNodeCycle(t *testing.T) {
	s := sim.New(1)
	alg := NewWithTimeout(200)
	_, outs := buildThreeNodeCycle(t, s, alg)
	// No snoop at all in timeout mode.
	s.Run(20000)
	aborted := 0
	for _, o := range outs {
		if o == cc.Aborted {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatalf("timeout mode left the 3-cycle standing: %v", outs)
	}
}

func TestSnoopRotates(t *testing.T) {
	// Track which node plays snoop over several rounds.
	s := sim.New(1)
	alg := New(50)
	var mgrs []cc.Manager
	for n := 0; n < 3; n++ {
		mgrs = append(mgrs, alg.NewManager(cc.Env{Sim: s, Node: n}))
	}
	g := &rotationTracker{fakeGlobal: fakeGlobal{s: s, mgrs: mgrs}}
	alg.StartGlobal(g)
	s.Run(1000)
	if len(g.snoopers) < 6 {
		t.Fatalf("only %d snoop rounds in 1 s at 50 ms interval", len(g.snoopers))
	}
	// Round-robin: consecutive rounds use consecutive nodes.
	for i := 1; i < len(g.snoopers); i++ {
		if g.snoopers[i] != (g.snoopers[i-1]+1)%3 {
			t.Fatalf("snoop did not rotate round-robin: %v", g.snoopers)
		}
	}
}

// rotationTracker records the "from" node of the first gather message of
// each round.
type rotationTracker struct {
	fakeGlobal
	snoopers []int
	lastFrom int
	count    int
}

func (g *rotationTracker) SendControl(from, to int, deliver func()) {
	// Each round sends 2 requests from the snooper (3 nodes - itself).
	if g.count%4 == 0 { // 2 requests + 2 replies per round
		g.snoopers = append(g.snoopers, from)
	}
	g.count++
	g.fakeGlobal.SendControl(from, to, deliver)
}
