package twopl

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func pg(n int) db.PageID { return db.PageID{File: 0, Page: n} }

func newTxn(id int64) *cc.TxnMeta { return &cc.TxnMeta{ID: id, TS: id} }

func TestKind(t *testing.T) {
	a := New(1000)
	if a.Kind() != cc.TwoPL {
		t.Fatal("wrong kind")
	}
	m := a.NewManager(cc.Env{Sim: sim.New(1), Node: 0})
	if m.Kind() != cc.TwoPL {
		t.Fatal("manager wrong kind")
	}
}

func TestReadersShare(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	granted := 0
	for i := 0; i < 3; i++ {
		co := &cc.CohortMeta{Txn: newTxn(int64(i + 1)), Node: 0}
		s.Spawn("r", func(p *sim.Proc) {
			co.Proc = p
			if m.Access(co, pg(1), false) == cc.Granted {
				granted++
			}
		})
	}
	s.Run(100)
	if granted != 3 {
		t.Fatalf("%d readers granted, want 3", granted)
	}
}

func TestWriterBlocksUntilCommit(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	holder := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	waiter := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	var grantedAt sim.Time
	s.Spawn("holder", func(p *sim.Proc) {
		holder.Proc = p
		m.Access(holder, pg(1), true)
		p.Delay(50)
		holder.Txn.State = cc.Committing
		m.Commit(holder)
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		waiter.Proc = p
		p.Delay(1)
		if m.Access(waiter, pg(1), true) == cc.Granted {
			grantedAt = s.Now()
		}
	})
	s.Run(1000)
	if grantedAt != 50 {
		t.Fatalf("waiter granted at %v, want 50 (commit time)", grantedAt)
	}
}

func TestLocalDeadlockVictimIsYoungest(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	young := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	var abortedTxn int64
	abortedNode := -1
	for _, co := range []*cc.CohortMeta{old, young} {
		co.Txn.OnAbort = func(fromNode int, reason string) {
			abortedTxn = 0
			if co == old {
				abortedTxn = 1
			} else {
				abortedTxn = 2
			}
			abortedNode = fromNode
			// Play the coordinator: deliver the abort to the manager.
			m.Abort(co)
		}
	}
	outcomes := map[int64]cc.Outcome{}
	s.Spawn("old", func(p *sim.Proc) {
		old.Proc = p
		m.Access(old, pg(1), true)
		p.Delay(10)
		outcomes[1] = m.Access(old, pg(2), true) // blocks on young -> deadlock
		if outcomes[1] == cc.Granted {
			old.Txn.State = cc.Committing
			m.Commit(old)
		}
	})
	s.Spawn("young", func(p *sim.Proc) {
		young.Proc = p
		p.Delay(1)
		m.Access(young, pg(2), true)
		p.Delay(10)
		outcomes[2] = m.Access(young, pg(1), true) // completes the cycle
	})
	s.Run(1000)
	if abortedTxn != 2 {
		t.Fatalf("victim txn %d, want 2 (youngest)", abortedTxn)
	}
	if abortedNode != 0 {
		t.Fatalf("abort from node %d, want 0", abortedNode)
	}
	if outcomes[2] != cc.Aborted {
		t.Fatalf("young outcome %v, want aborted", outcomes[2])
	}
	if outcomes[1] != cc.Granted {
		t.Fatalf("old outcome %v, want granted after victim release", outcomes[1])
	}
}

func TestAccessAfterAbortRequestedRejected(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	co.Txn.AbortRequested = true
	var out cc.Outcome
	s.Spawn("p", func(p *sim.Proc) {
		co.Proc = p
		out = m.Access(co, pg(1), false)
	})
	s.Run(10)
	if out != cc.Aborted {
		t.Fatal("access by aborting transaction was granted")
	}
}

func TestAbortIdempotentAndReleases(t *testing.T) {
	s := sim.New(1)
	mi := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	m := mi.(*manager)
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	other := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	var otherOut cc.Outcome
	s.Spawn("holder", func(p *sim.Proc) {
		co.Proc = p
		mi.Access(co, pg(1), true)
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		other.Proc = p
		p.Delay(1)
		otherOut = mi.Access(other, pg(1), true)
	})
	s.Spawn("aborter", func(p *sim.Proc) {
		p.Delay(10)
		mi.Abort(co)
		mi.Abort(co) // idempotent
	})
	s.Run(1000)
	if otherOut != cc.Granted {
		t.Fatalf("waiter outcome %v after holder abort, want granted", otherOut)
	}
	s2 := sim.New(1)
	_ = s2
	// After the waiter commits, the table must be empty.
	other.Txn.State = cc.Committing
	mi.Commit(other)
	if !m.LockTable().Empty() {
		t.Fatal("lock table not empty at end")
	}
}

func TestPrepareAlwaysYes(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0})
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	if !m.Prepare(co) {
		t.Fatal("2PL prepare voted no")
	}
}

// fakeGlobal implements cc.GlobalEnv over two managers with a zero-cost
// network, for Snoop tests.
type fakeGlobal struct {
	s    *sim.Sim
	mgrs []cc.Manager
	msgs int
}

func (g *fakeGlobal) Sim() *sim.Sim                 { return g.s }
func (g *fakeGlobal) NumProcNodes() int             { return len(g.mgrs) }
func (g *fakeGlobal) ManagerAt(node int) cc.Manager { return g.mgrs[node] }
func (g *fakeGlobal) SendControl(from, to int, deliver func()) {
	g.msgs++
	g.s.After(0.5, deliver)
}

func TestSnoopResolvesGlobalDeadlock(t *testing.T) {
	s := sim.New(1)
	alg := New(100) // 100 ms detection interval
	m0 := alg.NewManager(cc.Env{Sim: s, Node: 0})
	m1 := alg.NewManager(cc.Env{Sim: s, Node: 1})
	g := &fakeGlobal{s: s, mgrs: []cc.Manager{m0, m1}}
	alg.StartGlobal(g)

	// T1 holds page0@node0, then wants page0@node1.
	// T2 holds page0@node1, then wants page0@node0.
	// Each node's local graph has one edge; only the union has the cycle.
	t1, t2 := newTxn(1), newTxn(2)
	t1c0 := &cc.CohortMeta{Txn: t1, Node: 0}
	t1c1 := &cc.CohortMeta{Txn: t1, Node: 1}
	t2c0 := &cc.CohortMeta{Txn: t2, Node: 0}
	t2c1 := &cc.CohortMeta{Txn: t2, Node: 1}
	var victim int64
	for id, cos := range map[int64][]*cc.CohortMeta{1: {t1c0, t1c1}, 2: {t2c0, t2c1}} {
		id := id
		cos := cos
		cos[0].Txn.OnAbort = func(fromNode int, reason string) {
			victim = id
			if reason != "global deadlock" {
				t.Errorf("abort reason %q", reason)
			}
			m0.Abort(cos[0])
			m1.Abort(cos[1])
		}
	}
	outcome := map[int64]cc.Outcome{}
	s.Spawn("t1", func(p *sim.Proc) {
		t1c0.Proc = p
		t1c1.Proc = p
		m0.Access(t1c0, pg(0), true)
		p.Delay(5)
		outcome[1] = m1.Access(t1c1, pg(0), true)
		if outcome[1] == cc.Granted {
			t1.State = cc.Committing
			m0.Commit(t1c0)
			m1.Commit(t1c1)
		}
	})
	s.Spawn("t2", func(p *sim.Proc) {
		t2c1.Proc = p
		t2c0.Proc = p
		m1.Access(t2c1, pg(0), true)
		p.Delay(5)
		outcome[2] = m0.Access(t2c0, pg(0), true)
	})
	s.Run(5000)
	if victim != 2 {
		t.Fatalf("snoop victim %d, want 2 (youngest)", victim)
	}
	if outcome[2] != cc.Aborted || outcome[1] != cc.Granted {
		t.Fatalf("outcomes %v, want t1 granted / t2 aborted", outcome)
	}
	if g.msgs == 0 {
		t.Fatal("snoop gathered no messages")
	}
}

func TestSnoopSkippedOnSingleNode(t *testing.T) {
	s := sim.New(1)
	alg := New(100)
	g := &fakeGlobal{s: s, mgrs: []cc.Manager{alg.NewManager(cc.Env{Sim: s, Node: 0})}}
	alg.StartGlobal(g)
	s.Run(1000)
	if g.msgs != 0 {
		t.Fatal("snoop ran on a single-node machine")
	}
}

func TestWaitsForEdgesExported(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 3}).(*manager)
	a := &cc.CohortMeta{Txn: newTxn(1), Node: 3}
	b := &cc.CohortMeta{Txn: newTxn(2), Node: 3}
	s.Spawn("a", func(p *sim.Proc) {
		a.Proc = p
		m.Access(a, pg(1), true)
	})
	s.Spawn("b", func(p *sim.Proc) {
		b.Proc = p
		p.Delay(1)
		m.Access(b, pg(1), true)
	})
	s.Run(10)
	edges := m.WaitsForEdges()
	if len(edges) != 1 || edges[0].Waiter.ID != 2 || edges[0].Blocker.ID != 1 || edges[0].Node != 3 {
		t.Fatalf("edges %+v", edges)
	}
	s.Shutdown()
}
