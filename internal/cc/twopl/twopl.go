// Package twopl implements distributed two-phase locking (paper §2.2):
// dynamic S/X page locks with read-to-write upgrades, blocking on conflict,
// local deadlock detection whenever a cohort blocks, and a rotating "Snoop"
// process that periodically gathers the waits-for graphs of every node to
// resolve global deadlocks. Deadlocks are broken by aborting the most
// recently started transaction in the cycle.
package twopl

import (
	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// Algorithm builds 2PL managers and the global Snoop detector.
type Algorithm struct {
	// DetectionIntervalMs is how long each node holds the Snoop role before
	// gathering waits-for information (paper Table 4: 1 second).
	DetectionIntervalMs float64
	// WaitTimeoutMs, when positive, switches deadlock handling to the
	// timeout scheme discussed in the paper's footnote 2 ([Jenq89]): no
	// detection runs at all; a cohort whose lock wait exceeds the timeout
	// aborts its transaction. The paper's configuration uses detection
	// (timeout 0).
	WaitTimeoutMs float64
	// Optimistic makes this O2PL ([Care88]): managers report cc.O2PL and
	// the transaction manager defers all write-lock requests to the first
	// phase of commit (via PrepareDeferred). Locking mechanics, deadlock
	// detection and the Snoop are identical to 2PL.
	Optimistic bool
	// MaxTxns and MaxLocksPerCohort, when positive, pre-size every
	// manager's lock table, detection scratch and the Snoop's gather
	// buffers for MaxTxns concurrently active transaction attempts each
	// holding at most MaxLocksPerCohort locks per node. All of those
	// buffers are self-amortising, but their growth chases high-water
	// records (widest conflict set, biggest waits-for graph) that arrive
	// too rarely for a warmup to retire deterministically; pre-sizing from
	// the machine's concurrency bound makes the steady state
	// allocation-free outright. Zero leaves the buffers to grow on demand.
	MaxTxns           int
	MaxLocksPerCohort int
}

// NewO2PL creates the O2PL variant: read locks at access time, write locks
// deferred to the first phase of the commit protocol.
func NewO2PL(detectionIntervalMs float64) *Algorithm {
	return &Algorithm{DetectionIntervalMs: detectionIntervalMs, Optimistic: true}
}

// New creates the algorithm with the given global detection interval and
// detection-based deadlock handling.
func New(detectionIntervalMs float64) *Algorithm {
	return &Algorithm{DetectionIntervalMs: detectionIntervalMs}
}

// NewWithTimeout creates the timeout-based variant: waits longer than
// waitTimeoutMs abort the waiter instead of running deadlock detection.
func NewWithTimeout(waitTimeoutMs float64) *Algorithm {
	return &Algorithm{WaitTimeoutMs: waitTimeoutMs}
}

// Kind reports cc.TwoPL, or cc.O2PL for the optimistic variant.
func (a *Algorithm) Kind() cc.Kind {
	if a.Optimistic {
		return cc.O2PL
	}
	return cc.TwoPL
}

// maxEdges bounds one node's waits-for graph: at most MaxTxns waiting
// cohorts, each blocked by at most MaxTxns others.
func (a *Algorithm) maxEdges() int { return a.MaxTxns * a.MaxTxns }

// NewManager creates the per-node lock manager.
func (a *Algorithm) NewManager(env cc.Env) cc.Manager {
	m := &manager{env: env, kind: a.Kind(), lt: cc.NewLockTable(), timeout: a.WaitTimeoutMs,
		waitSeq: make(map[*cc.CohortMeta]int64)}
	if a.MaxTxns > 0 {
		m.lt.Reserve(a.MaxTxns, max(1, a.MaxLocksPerCohort))
		m.det.Reserve(a.MaxTxns, a.maxEdges())
		m.edgeBuf = make([]cc.Edge, 0, a.maxEdges())
	}
	return m
}

type manager struct {
	env      cc.Env
	kind     cc.Kind
	lt       *cc.LockTable
	timeout  float64 // 0: detection; >0: timeout scheme
	waitSeq  map[*cc.CohortMeta]int64
	timeouts int64
	// edgeBuf backs the waits-for snapshot local detection takes on every
	// block; the detector consumes it synchronously, so one buffer and one
	// detector per manager make the block path allocation-free.
	edgeBuf []cc.Edge
	det     cc.Detector
}

// Timeouts returns how many lock-wait timeouts this node fired (only in
// timeout mode).
func (m *manager) Timeouts() int64 { return m.timeouts }

func (m *manager) Kind() cc.Kind { return m.kind }

// WaitsForEdges exposes the node's waits-for graph to the Snoop. It
// allocates a fresh slice: the Snoop's snapshot travels through a mailbox
// and must survive later lock-table activity on this node, so it cannot
// alias the local-detection scratch buffer.
func (m *manager) WaitsForEdges() []cc.Edge { return m.lt.WaitsForEdges(m.env.Node) }

// LockTable exposes the underlying table for invariant checks in tests.
func (m *manager) LockTable() *cc.LockTable { return m.lt }

// TableSize and BlockedCount are the probe sampler's gauges (obs layer).
func (m *manager) TableSize() int    { return m.lt.Size() }
func (m *manager) BlockedCount() int { return m.lt.WaiterCount() }

func (m *manager) Access(co *cc.CohortMeta, page db.PageID, write bool) cc.Outcome {
	if co.Txn.AbortRequested {
		return cc.Aborted
	}
	mode := cc.LockS
	if write {
		mode = cc.LockX
	}
	granted, _ := m.lt.Lock(co, page, mode)
	if granted {
		return cc.Granted
	}
	if m.timeout > 0 {
		// Timeout scheme: no detection; if this wait outlives the timeout,
		// abort the waiter. The sequence number guards against a stale
		// timer firing during a later, different wait.
		m.waitSeq[co]++
		seq := m.waitSeq[co]
		m.env.Sim.After(m.timeout, func() {
			if co.Waiting() && m.waitSeq[co] == seq {
				if co.Txn.RequestAbort(m.env.Node, "lock timeout", cc.CauseLockTimeout) {
					m.timeouts++
				}
			}
		})
		return co.Block()
	}
	// Local deadlock detection occurs whenever a cohort blocks.
	m.edgeBuf = m.lt.AppendWaitsForEdges(m.env.Node, m.edgeBuf[:0])
	for _, v := range m.det.FindVictims(m.edgeBuf) {
		v.RequestAbort(m.env.Node, "local deadlock", cc.CauseLocalDeadlock)
	}
	if co.Txn.AbortRequested {
		// We were chosen as the victim (or were already dying): don't park —
		// withdraw the queued request and fail the access immediately.
		m.lt.RemoveWaiter(co)
		return cc.Aborted
	}
	return co.Block()
}

func (m *manager) Prepare(co *cc.CohortMeta) bool { return true }

func (m *manager) Commit(co *cc.CohortMeta) {
	m.lt.ReleaseAll(co)
	delete(m.waitSeq, co)
}

func (m *manager) Abort(co *cc.CohortMeta) {
	m.lt.ReleaseAll(co)
	if co.Waiting() {
		co.Deny()
	}
	delete(m.waitSeq, co)
}

// PrepareDeferred acquires the deferred remote-copy write locks during the
// first phase of commit ([Care89], paper footnote 13). It runs in a fresh
// process at this node (the cohort's work-phase process has finished) and
// may block on each lock like any other request — including becoming a
// deadlock victim, in which case it reports a no vote.
func (m *manager) PrepareDeferred(co *cc.CohortMeta, pages []db.PageID, done func(ok bool)) {
	m.env.Sim.Spawn("deferred-locks", func(p *sim.Proc) {
		co.Proc = p
		for _, page := range pages {
			if m.Access(co, page, true) == cc.Aborted {
				done(false)
				return
			}
		}
		done(true)
	})
}

// snoopNode is the Snoop's per-node state: the node's manager and the
// reused buffer its waits-for snapshot is collected into. The buffer is
// refilled at most once per round and the snoop copies every reply out
// before the next round begins, so reuse cannot alias live data.
type snoopNode struct {
	mgr   *manager
	edges []cc.Edge
}

// StartGlobal launches the Snoop process: each node in turn waits
// DetectionIntervalMs, gathers waits-for edges from all other nodes via
// real (CPU-costed) messages, resolves global cycles, and passes the role
// to the next node round-robin.
//
// The request and reply continuations for every (snoop node, polled node)
// pair are bound once at startup and each node's snapshot lives in a
// reused buffer, so the rounds themselves — which run for the whole
// simulation at the detection interval — are allocation-free in steady
// state.
func (a *Algorithm) StartGlobal(g cc.GlobalEnv) {
	if a.WaitTimeoutMs > 0 {
		return // timeout scheme: no Snoop
	}
	n := g.NumProcNodes()
	if n < 2 {
		return // local detection already sees the whole graph
	}
	g.Sim().Spawn("snoop", func(p *sim.Proc) {
		mail := g.Sim().NewMailbox()
		nodes := make([]snoopNode, n)
		for o := range nodes {
			nodes[o].mgr = g.ManagerAt(o).(*manager)
		}
		requests := make([][]func(), n)
		for at := 0; at < n; at++ {
			requests[at] = make([]func(), n)
			for o := 0; o < n; o++ {
				if o == at {
					continue
				}
				at, o, nd := at, o, &nodes[o]
				reply := func() { mail.Send(&nd.edges) }
				requests[at][o] = func() {
					nd.edges = nd.mgr.lt.AppendWaitsForEdges(o, nd.edges[:0])
					g.SendControl(o, at, reply)
				}
			}
		}
		var all []cc.Edge
		node := 0
		var det cc.Detector // reused across rounds; victims are consumed before the next one
		if a.MaxTxns > 0 {
			e := a.maxEdges()
			for o := range nodes {
				nodes[o].edges = make([]cc.Edge, 0, e)
			}
			all = make([]cc.Edge, 0, n*e)
			det.Reserve(a.MaxTxns, n*e)
		}
		for {
			p.Delay(a.DetectionIntervalMs)
			snoopAt := node
			expect := 0
			for o := 0; o < n; o++ {
				if o == snoopAt {
					continue
				}
				expect++
				g.SendControl(snoopAt, o, requests[snoopAt][o])
			}
			self := &nodes[snoopAt]
			all = self.mgr.lt.AppendWaitsForEdges(snoopAt, all[:0])
			for i := 0; i < expect; i++ {
				all = append(all, *mail.Recv(p).(*[]cc.Edge)...)
			}
			for _, v := range det.FindVictims(all) {
				v.RequestAbort(snoopAt, "global deadlock", cc.CauseGlobalDeadlock)
			}
			node = (node + 1) % n
		}
	})
}
