package twopl

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func TestTimeoutBreaksDeadlock(t *testing.T) {
	s := sim.New(1)
	alg := NewWithTimeout(100)
	m := alg.NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	alg.StartGlobal(nil) // must be a nil-safe no-op in timeout mode

	a := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	b := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	for _, co := range []*cc.CohortMeta{a, b} {
		co := co
		co.Txn.OnAbort = func(int, string) {
			s.After(1, func() { m.Abort(co) })
		}
	}
	out := map[int64]cc.Outcome{}
	s.Spawn("a", func(p *sim.Proc) {
		a.Proc = p
		m.Access(a, pg(1), true)
		p.Delay(10)
		out[1] = m.Access(a, pg(2), true)
		if out[1] == cc.Granted {
			a.Txn.State = cc.Committing
			m.Commit(a)
		}
	})
	s.Spawn("b", func(p *sim.Proc) {
		b.Proc = p
		p.Delay(1)
		m.Access(b, pg(2), true)
		p.Delay(10)
		out[2] = m.Access(b, pg(1), true)
	})
	s.Run(10000)
	// Both wait; both time out around t=110-111 (no detection picks a
	// single victim in the pure timeout scheme) — the essential behaviour
	// is that neither waits forever.
	if out[1] != cc.Aborted && out[2] != cc.Aborted {
		t.Fatalf("deadlock survived the timeout: %v", out)
	}
	if m.Timeouts() == 0 {
		t.Fatal("no timeout recorded")
	}
}

func TestTimeoutNotFiredOnShortWait(t *testing.T) {
	s := sim.New(1)
	m := NewWithTimeout(1000).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	holder := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	waiter := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	waiter.Txn.OnAbort = func(int, string) { t.Error("short wait aborted") }
	var out cc.Outcome
	s.Spawn("holder", func(p *sim.Proc) {
		holder.Proc = p
		m.Access(holder, pg(1), true)
		p.Delay(50) // well under the timeout
		holder.Txn.State = cc.Committing
		m.Commit(holder)
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		waiter.Proc = p
		p.Delay(1)
		out = m.Access(waiter, pg(1), true)
		if out == cc.Granted {
			waiter.Txn.State = cc.Committing
			m.Commit(waiter)
		}
	})
	s.Run(10000)
	if out != cc.Granted {
		t.Fatalf("waiter outcome %v", out)
	}
	if m.Timeouts() != 0 {
		t.Fatal("timeout fired for a wait shorter than the limit")
	}
}

func TestPrepareDeferredAcquiresAndVotes(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	voted := false
	var vote bool
	m.PrepareDeferred(co, []db.PageID{pg(1), pg(2)}, func(ok bool) {
		voted = true
		vote = ok
	})
	s.Run(100)
	if !voted || !vote {
		t.Fatalf("deferred prepare voted=%v ok=%v", voted, vote)
	}
	if mode, held := m.lt.Holds(co, pg(1)); !held || mode != cc.LockX {
		t.Fatal("deferred prepare did not take the X lock")
	}
	co.Txn.State = cc.Committing
	m.Commit(co)
	if !m.lt.Empty() {
		t.Fatal("locks leaked after commit")
	}
}

func TestPrepareDeferredDeadlockVictimVotesNo(t *testing.T) {
	// Two transactions defer write locks on each other's pages: their
	// prepare phases deadlock; local detection kills the younger, which
	// votes no; the older votes yes.
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	old := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	young := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	for _, co := range []*cc.CohortMeta{old, young} {
		co := co
		co.Txn.OnAbort = func(int, string) {
			s.After(1, func() { m.Abort(co) })
		}
	}
	votes := map[int64]bool{}
	// Work phase: each transaction already holds one page...
	s.Spawn("setup", func(p *sim.Proc) {
		old.Proc = p
		young.Proc = p
		m.Access(old, pg(1), true)
		m.Access(young, pg(2), true)
		old.Txn.State = cc.Preparing
		young.Txn.State = cc.Preparing
		// ...and each defers its write lock on the other's page: a cycle
		// that only forms during the prepare phase.
		m.PrepareDeferred(old, []db.PageID{pg(2)}, func(ok bool) { votes[1] = ok })
		m.PrepareDeferred(young, []db.PageID{pg(1)}, func(ok bool) { votes[2] = ok })
	})
	s.Run(10000)
	if len(votes) != 2 {
		t.Fatalf("votes %v: a deferred prepare never completed", votes)
	}
	if !votes[1] || votes[2] {
		t.Fatalf("votes %v, want old=yes young=no", votes)
	}
}

func TestPrepareDeferredAbortedTxnVotesNoImmediately(t *testing.T) {
	s := sim.New(1)
	m := New(1000).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	co.Txn.AbortRequested = true
	var vote bool
	voted := false
	m.PrepareDeferred(co, []db.PageID{pg(1)}, func(ok bool) { voted = true; vote = ok })
	s.Run(100)
	if !voted || vote {
		t.Fatalf("aborting txn deferred prepare: voted=%v vote=%v, want no", voted, vote)
	}
	if !m.lt.Empty() {
		t.Fatal("aborting deferred prepare took locks")
	}
}

func TestStaleTimerDoesNotAbortLaterWait(t *testing.T) {
	// Wait 1 resolves quickly; its timer fires while the cohort is in a
	// *different* wait that has not exceeded the timeout. The stale timer
	// must not abort it.
	s := sim.New(1)
	m := NewWithTimeout(100).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	h1 := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	h2 := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	w := &cc.CohortMeta{Txn: newTxn(3), Node: 0}
	w.Txn.OnAbort = func(int, string) { t.Error("stale timer aborted a healthy wait") }
	s.Spawn("h1", func(p *sim.Proc) {
		h1.Proc = p
		m.Access(h1, pg(1), true)
		p.Delay(50)
		h1.Txn.State = cc.Committing
		m.Commit(h1) // releases pg1 at t=50, waiter 1st wait lasted 49ms
	})
	s.Spawn("h2", func(p *sim.Proc) {
		h2.Proc = p
		m.Access(h2, pg(2), true)
		p.Delay(130)
		h2.Txn.State = cc.Committing
		m.Commit(h2) // releases pg2 at t=130; waiter's 2nd wait = 80ms < 100
	})
	var out cc.Outcome
	s.Spawn("w", func(p *sim.Proc) {
		w.Proc = p
		p.Delay(1)
		if m.Access(w, pg(1), true) != cc.Granted { // waits 1..50
			t.Error("first wait failed")
			return
		}
		out = m.Access(w, pg(2), true) // waits 50..130; stale timer fires ~101
	})
	s.Run(10000)
	if out != cc.Granted {
		t.Fatalf("second wait outcome %v, want granted", out)
	}
	if m.Timeouts() != 0 {
		t.Fatalf("%d timeouts fired", m.Timeouts())
	}
}

func TestPrepareDeferredUpgradesHeldReadLock(t *testing.T) {
	// O2PL's common case: the cohort read the page (S) during its work
	// phase and upgrades to X at prepare.
	s := sim.New(1)
	m := NewO2PL(1000).NewManager(cc.Env{Sim: s, Node: 0}).(*manager)
	if m.Kind() != cc.O2PL {
		t.Fatal("manager kind not O2PL")
	}
	co := &cc.CohortMeta{Txn: newTxn(1), Node: 0}
	other := &cc.CohortMeta{Txn: newTxn(2), Node: 0}
	other.Txn.OnAbort = func(int, string) { s.After(1, func() { m.Abort(other) }) }
	var vote bool
	s.Spawn("setup", func(p *sim.Proc) {
		co.Proc = p
		other.Proc = p
		if m.Access(co, pg(1), false) != cc.Granted {
			t.Error("read rejected")
			return
		}
		if m.Access(other, pg(1), false) != cc.Granted {
			t.Error("second read rejected")
			return
		}
		co.Txn.State = cc.Preparing
		m.PrepareDeferred(co, []db.PageID{pg(1)}, func(ok bool) { vote = ok })
		// The upgrade waits for the other reader; release it shortly.
		p.Delay(10)
		other.Txn.State = cc.Committing
		m.Commit(other)
	})
	s.Run(1000)
	if !vote {
		t.Fatal("upgrade-at-prepare never granted")
	}
	if mode, held := m.lt.Holds(co, pg(1)); !held || mode != cc.LockX {
		t.Fatal("upgrade did not leave an X lock")
	}
}
