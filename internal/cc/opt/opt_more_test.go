package opt

import (
	"testing"

	"ddbm/internal/cc"
)

func TestTwoDisjointTransactionsBothCommit(t *testing.T) {
	m := newMgr(false)
	a, b := newCo(1), newCo(2)
	m.Access(a, pg(1), false)
	m.Access(a, pg(1), true)
	m.Access(b, pg(2), false)
	m.Access(b, pg(2), true)
	if !commit(t, m, a, 10) || !commit(t, m, b, 20) {
		t.Fatal("disjoint transactions conflicted")
	}
}

func TestReadOnlyTransactionsNeverConflictWithEachOther(t *testing.T) {
	m := newMgr(false)
	var cos []*cc.CohortMeta
	for i := 0; i < 5; i++ {
		co := newCo(int64(i + 1))
		m.Access(co, pg(1), false)
		cos = append(cos, co)
	}
	for i, co := range cos {
		if !commit(t, m, co, int64(10*(i+1))) {
			t.Fatalf("read-only txn %d failed certification", i)
		}
	}
}

func TestWriterInvalidatesManyReaders(t *testing.T) {
	// Readers that started before the writer commits all fail afterwards —
	// the OPT starvation pattern that drives its high abort ratio.
	m := newMgr(false)
	var readers []*cc.CohortMeta
	for i := 0; i < 4; i++ {
		co := newCo(int64(i + 10))
		m.Access(co, pg(1), false)
		readers = append(readers, co)
	}
	w := newCo(1)
	m.Access(w, pg(1), false)
	m.Access(w, pg(1), true)
	if !commit(t, m, w, 100) {
		t.Fatal("writer failed")
	}
	for i, rd := range readers {
		if commit(t, m, rd, int64(200+i)) {
			t.Fatalf("stale reader %d certified", i)
		}
	}
}

func TestSequentialCertifyCommitChain(t *testing.T) {
	// T1 writes, commits; T2 reads the new version, writes, commits; T3
	// reads T2's version: the version chain must thread through wts.
	m := newMgr(false)
	t1 := newCo(1)
	m.Access(t1, pg(1), true)
	if !commit(t, m, t1, 10) {
		t.Fatal("t1")
	}
	t2 := newCo(2)
	m.Access(t2, pg(1), false)
	m.Access(t2, pg(1), true)
	if got := m.cohorts[t2].reads[pg(1)]; got != 10 {
		t.Fatalf("t2 read version %d, want 10", got)
	}
	if !commit(t, m, t2, 20) {
		t.Fatal("t2")
	}
	t3 := newCo(3)
	m.Access(t3, pg(1), false)
	if got := m.cohorts[t3].reads[pg(1)]; got != 20 {
		t.Fatalf("t3 read version %d, want 20", got)
	}
	if !commit(t, m, t3, 30) {
		t.Fatal("t3")
	}
}

func TestCertifiedReadBlocksOlderWriterThenClears(t *testing.T) {
	m := newMgr(false)
	rd := newCo(1)
	m.Access(rd, pg(1), false)
	rd.Txn.State = cc.Preparing
	rd.Txn.CommitTS = 50
	if !m.Prepare(rd) {
		t.Fatal("reader cert failed")
	}
	w := newCo(2)
	m.Access(w, pg(1), true)
	w.Txn.State = cc.Preparing
	w.Txn.CommitTS = 40
	if m.Prepare(w) {
		t.Fatal("older writer certified against later certified read")
	}
	m.Abort(w)
	// Reader commits; a NEWER writer is fine.
	rd.Txn.State = cc.Committing
	m.Commit(rd)
	w2 := newCo(3)
	m.Access(w2, pg(1), true)
	if !commit(t, m, w2, 60) {
		t.Fatal("newer writer failed after reader committed")
	}
}

func TestVoteNoLeavesNoResidue(t *testing.T) {
	m := newMgr(false)
	w := newCo(1)
	m.Access(w, pg(1), false)
	m.Access(w, pg(1), true)
	// Another txn commits a write first, invalidating w's read.
	other := newCo(2)
	m.Access(other, pg(1), true)
	if !commit(t, m, other, 5) {
		t.Fatal("other failed")
	}
	if commit(t, m, w, 10) {
		t.Fatal("stale read certified")
	}
	if !m.Quiesced() {
		t.Fatal("failed certification left residue")
	}
}
