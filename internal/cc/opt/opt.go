// Package opt implements the distributed, timestamp-based optimistic
// concurrency control algorithm of Sinha et al. (paper §2.5, first
// algorithm). Cohorts read and write freely, buffering updates in a private
// workspace and remembering the version identifier (write timestamp) of
// every item read. When all cohorts finish, the coordinator assigns the
// transaction a globally unique timestamp, carried to each cohort in the
// "prepare to commit" message; each cohort then certifies its reads and
// writes locally, in a critical section:
//
//   - a read is certified if (i) the version read is still the current
//     version and (ii) no write with a newer timestamp has been locally
//     certified;
//   - a write is certified if (i) no later read has been certified and
//     subsequently committed and (ii) no later read is locally certified.
//
// "Later" is with respect to the certification timestamps. The optional
// Strict mode additionally fails a read when *any* uncommitted certified
// write by another transaction exists on the item (closing the window in
// which an earlier certified writer and a later reader both pass).
package opt

import (
	"ddbm/internal/cc"
	"ddbm/internal/db"
)

// Algorithm builds OPT managers.
type Algorithm struct {
	// Strict enables the conservative read-certification guard described in
	// the package comment. The paper's configuration leaves it off.
	Strict bool
}

// New creates the algorithm in paper-faithful (non-strict) mode.
func New() *Algorithm { return &Algorithm{} }

// Kind reports cc.OPT.
func (a *Algorithm) Kind() cc.Kind { return cc.OPT }

// NewManager creates the per-node manager.
func (a *Algorithm) NewManager(env cc.Env) cc.Manager {
	return &manager{
		strict:  a.Strict,
		env:     env,
		pages:   make(map[db.PageID]*pageState),
		cohorts: make(map[*cc.CohortMeta]*cohortState),
	}
}

// StartGlobal is a no-op: certification is purely local.
func (a *Algorithm) StartGlobal(g cc.GlobalEnv) {}

type certEntry struct {
	ts int64
	co *cc.CohortMeta
}

type pageState struct {
	wts        int64 // current committed version identifier
	rts        int64 // largest committed read timestamp
	certReads  []certEntry
	certWrites []certEntry
}

type cohortState struct {
	reads     map[db.PageID]int64 // page -> version read
	writes    []db.PageID
	certified bool
}

type manager struct {
	strict  bool
	env     cc.Env
	pages   map[db.PageID]*pageState
	cohorts map[*cc.CohortMeta]*cohortState
}

func (m *manager) Kind() cc.Kind { return cc.OPT }

// TableSize and BlockedCount are the probe sampler's gauges (obs layer).
// OPT never blocks a cohort, so BlockedCount is always zero.
func (m *manager) TableSize() int    { return len(m.pages) }
func (m *manager) BlockedCount() int { return 0 }

func (m *manager) page(p db.PageID) *pageState {
	ps := m.pages[p]
	if ps == nil {
		ps = &pageState{}
		m.pages[p] = ps
	}
	return ps
}

func (m *manager) cohort(co *cc.CohortMeta) *cohortState {
	cs := m.cohorts[co]
	if cs == nil {
		cs = &cohortState{reads: make(map[db.PageID]int64)}
		m.cohorts[co] = cs
	}
	return cs
}

// Access is always granted: OPT detects conflicts only at certification.
func (m *manager) Access(co *cc.CohortMeta, page db.PageID, write bool) cc.Outcome {
	if co.Txn.AbortRequested {
		return cc.Aborted
	}
	cs := m.cohort(co)
	if write {
		cs.writes = append(cs.writes, page)
		return cc.Granted
	}
	if _, seen := cs.reads[page]; !seen {
		cs.reads[page] = m.page(page).wts
	}
	return cc.Granted
}

// Prepare performs local certification against co.Txn.CommitTS,
// attributing a certification failure as the attempt's abort cause.
func (m *manager) Prepare(co *cc.CohortMeta) bool {
	if m.certify(co) {
		return true
	}
	co.Txn.NoteCause(m.env.Node, cc.CauseOPTCertify)
	return false
}

// certify runs the local certification checks. All checks run before any
// entry is recorded so the verdict is order-independent.
func (m *manager) certify(co *cc.CohortMeta) bool {
	cs := m.cohorts[co]
	if cs == nil {
		// A cohort with no accesses certifies trivially.
		return true
	}
	ts := co.Txn.CommitTS
	for page, ver := range cs.reads {
		ps := m.page(page)
		if ps.wts != ver {
			return false // the version read is no longer current
		}
		for _, w := range ps.certWrites {
			if w.co.Txn == co.Txn {
				continue
			}
			if w.ts > ts || m.strict {
				return false
			}
		}
	}
	for _, page := range cs.writes {
		ps := m.page(page)
		if ps.rts > ts {
			return false // a later read has been certified and committed
		}
		for _, r := range ps.certReads {
			if r.co.Txn != co.Txn && r.ts > ts {
				return false // a later read is locally certified
			}
		}
	}
	// Certification succeeded: record our entries.
	//ddbmlint:ordered one entry is appended per distinct page, so iterations touch disjoint page states
	for page := range cs.reads {
		ps := m.page(page)
		ps.certReads = append(ps.certReads, certEntry{ts: ts, co: co})
	}
	for _, page := range cs.writes {
		ps := m.page(page)
		ps.certWrites = append(ps.certWrites, certEntry{ts: ts, co: co})
	}
	cs.certified = true
	return true
}

// Commit installs the cohort's writes (bumping version identifiers under
// the Thomas rule), publishes its read timestamps, and clears certification
// entries.
func (m *manager) Commit(co *cc.CohortMeta) {
	cs := m.cohorts[co]
	if cs == nil {
		return
	}
	delete(m.cohorts, co)
	ts := co.Txn.CommitTS
	//ddbmlint:ordered iterations update disjoint page states (max-merge of rts, removal of this cohort's entry)
	for page := range cs.reads {
		ps := m.page(page)
		if ts > ps.rts {
			ps.rts = ts
		}
		removeCert(&ps.certReads, co)
	}
	for _, page := range cs.writes {
		ps := m.page(page)
		if ts > ps.wts {
			ps.wts = ts
		}
		removeCert(&ps.certWrites, co)
	}
}

// Abort drops the cohort's workspace and certification entries. Idempotent.
func (m *manager) Abort(co *cc.CohortMeta) {
	cs := m.cohorts[co]
	if cs == nil {
		return
	}
	delete(m.cohorts, co)
	if cs.certified {
		//ddbmlint:ordered iterations remove this cohort's entry from disjoint page states
		for page := range cs.reads {
			removeCert(&m.page(page).certReads, co)
		}
		for _, page := range cs.writes {
			removeCert(&m.page(page).certWrites, co)
		}
	}
}

func removeCert(entries *[]certEntry, co *cc.CohortMeta) {
	for i, e := range *entries {
		if e.co == co {
			*entries = append((*entries)[:i], (*entries)[i+1:]...)
			return
		}
	}
}

// Quiesced reports whether no cohort state or certification entries remain.
func (m *manager) Quiesced() bool {
	if len(m.cohorts) != 0 {
		return false
	}
	for _, ps := range m.pages {
		if len(ps.certReads) != 0 || len(ps.certWrites) != 0 {
			return false
		}
	}
	return true
}
