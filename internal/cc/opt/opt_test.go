package opt

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/sim"
)

func pg(n int) db.PageID { return db.PageID{File: 0, Page: n} }

func newCo(id int64) *cc.CohortMeta {
	return &cc.CohortMeta{Txn: &cc.TxnMeta{ID: id, TS: id}, Node: 0}
}

func newMgr(strict bool) *manager {
	return (&Algorithm{Strict: strict}).NewManager(cc.Env{Sim: sim.New(1), Node: 0}).(*manager)
}

// commit drives the full local protocol for a cohort.
func commit(t *testing.T, m *manager, co *cc.CohortMeta, ts int64) bool {
	t.Helper()
	co.Txn.State = cc.Preparing
	co.Txn.CommitTS = ts
	if !m.Prepare(co) {
		co.Txn.State = cc.Active
		m.Abort(co)
		return false
	}
	co.Txn.State = cc.Committing
	m.Commit(co)
	return true
}

func TestKind(t *testing.T) {
	a := New()
	if a.Kind() != cc.OPT {
		t.Fatal("wrong kind")
	}
	a.StartGlobal(nil)
	if newMgr(false).Kind() != cc.OPT {
		t.Fatal("manager wrong kind")
	}
}

func TestAccessAlwaysGranted(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	other := newCo(2)
	if m.Access(co, pg(1), false) != cc.Granted ||
		m.Access(other, pg(1), true) != cc.Granted ||
		m.Access(co, pg(1), true) != cc.Granted {
		t.Fatal("OPT must grant every access")
	}
}

func TestCleanCommit(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	m.Access(co, pg(1), false)
	m.Access(co, pg(2), false)
	m.Access(co, pg(2), true)
	if !commit(t, m, co, 10) {
		t.Fatal("uncontested transaction failed certification")
	}
	if m.page(pg(2)).wts != 10 {
		t.Fatalf("wts %d, want 10", m.page(pg(2)).wts)
	}
	if m.page(pg(1)).rts != 10 || m.page(pg(2)).rts != 10 {
		t.Fatal("rts not published at commit")
	}
	if !m.Quiesced() {
		t.Fatal("certification entries leaked")
	}
}

func TestReadFailsWhenVersionChanged(t *testing.T) {
	m := newMgr(false)
	reader := newCo(1)
	writer := newCo(2)
	m.Access(reader, pg(1), false) // reads version 0
	m.Access(writer, pg(1), false)
	m.Access(writer, pg(1), true)
	if !commit(t, m, writer, 5) {
		t.Fatal("writer failed")
	}
	// Reader's version is stale now.
	if commit(t, m, reader, 10) {
		t.Fatal("reader certified against a changed version")
	}
}

func TestWriteFailsAgainstLaterCommittedRead(t *testing.T) {
	m := newMgr(false)
	reader := newCo(1)
	writer := newCo(2)
	m.Access(reader, pg(1), false)
	m.Access(writer, pg(1), false)
	m.Access(writer, pg(1), true)
	if !commit(t, m, reader, 20) { // rts = 20
		t.Fatal("reader failed")
	}
	// Writer certifies at 10 < 20: "a later read has been certified and
	// subsequently committed" -> fail.
	if commit(t, m, writer, 10) {
		t.Fatal("write certified despite later committed read")
	}
}

func TestWriteFailsAgainstLaterCertifiedRead(t *testing.T) {
	m := newMgr(false)
	reader := newCo(1)
	writer := newCo(2)
	m.Access(reader, pg(1), false)
	m.Access(writer, pg(1), true)
	// Reader certifies at 20 but has NOT committed yet.
	reader.Txn.State = cc.Preparing
	reader.Txn.CommitTS = 20
	if !m.Prepare(reader) {
		t.Fatal("reader certification failed")
	}
	// Writer at 10: a later read is locally certified -> fail.
	writer.Txn.State = cc.Preparing
	writer.Txn.CommitTS = 10
	if m.Prepare(writer) {
		t.Fatal("write certified despite later certified read")
	}
}

func TestReadFailsAgainstNewerCertifiedWrite(t *testing.T) {
	m := newMgr(false)
	writer := newCo(1)
	reader := newCo(2)
	m.Access(writer, pg(1), true)
	m.Access(reader, pg(1), false)
	// Writer certifies at 30, not yet committed.
	writer.Txn.State = cc.Preparing
	writer.Txn.CommitTS = 30
	if !m.Prepare(writer) {
		t.Fatal("writer certification failed")
	}
	// Reader at 10 < 30: a write with a newer timestamp is locally
	// certified -> fail.
	reader.Txn.State = cc.Preparing
	reader.Txn.CommitTS = 10
	if m.Prepare(reader) {
		t.Fatal("read certified despite newer certified write")
	}
}

func TestReadPassesOlderCertifiedWriteInPaperMode(t *testing.T) {
	// Paper-faithful (non-strict) mode: an OLDER certified write does not
	// fail the read.
	m := newMgr(false)
	writer := newCo(1)
	reader := newCo(2)
	m.Access(writer, pg(1), true)
	m.Access(reader, pg(1), false)
	writer.Txn.State = cc.Preparing
	writer.Txn.CommitTS = 5
	if !m.Prepare(writer) {
		t.Fatal("writer certification failed")
	}
	reader.Txn.State = cc.Preparing
	reader.Txn.CommitTS = 10
	if !m.Prepare(reader) {
		t.Fatal("paper-mode read failed against an older certified write")
	}
}

func TestStrictModeFailsReadOnAnyCertifiedWrite(t *testing.T) {
	m := newMgr(true)
	writer := newCo(1)
	reader := newCo(2)
	m.Access(writer, pg(1), true)
	m.Access(reader, pg(1), false)
	writer.Txn.State = cc.Preparing
	writer.Txn.CommitTS = 5
	if !m.Prepare(writer) {
		t.Fatal("writer certification failed")
	}
	reader.Txn.State = cc.Preparing
	reader.Txn.CommitTS = 10
	if m.Prepare(reader) {
		t.Fatal("strict mode certified a read against an uncommitted certified write")
	}
}

func TestAbortClearsCertification(t *testing.T) {
	m := newMgr(false)
	writer := newCo(1)
	m.Access(writer, pg(1), true)
	writer.Txn.State = cc.Preparing
	writer.Txn.CommitTS = 30
	if !m.Prepare(writer) {
		t.Fatal("certification failed")
	}
	m.Abort(writer) // global abort after a local yes vote
	// A reader at 10 must now pass (no certified writes remain).
	reader := newCo(2)
	m.Access(reader, pg(1), false)
	if !commit(t, m, reader, 10) {
		t.Fatal("aborted certification still blocks readers")
	}
	if !m.Quiesced() {
		t.Fatal("abort leaked state")
	}
}

func TestThomasRuleAtInstall(t *testing.T) {
	// Two writers with no read overlap: both certify (write-write conflicts
	// are resolved at install time); the final version is the larger ts.
	m := newMgr(false)
	w1, w2 := newCo(1), newCo(2)
	m.Access(w1, pg(1), true)
	m.Access(w2, pg(1), true)
	if !commit(t, m, w1, 20) {
		t.Fatal("w1 failed")
	}
	if !commit(t, m, w2, 10) {
		t.Fatal("w2 (older, blind write) failed")
	}
	if m.page(pg(1)).wts != 20 {
		t.Fatalf("wts %d after out-of-order installs, want 20 (Thomas rule)", m.page(pg(1)).wts)
	}
}

func TestEmptyCohortCertifies(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	if !m.Prepare(co) {
		t.Fatal("cohort with no accesses failed certification")
	}
	m.Commit(co)
	m.Abort(co)
}

func TestOwnWritesDontFailOwnReads(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	m.Access(co, pg(1), false)
	m.Access(co, pg(1), true)
	if !commit(t, m, co, 10) {
		t.Fatal("transaction's own write failed its own read certification")
	}
}

func TestAccessAfterAbortRequestedRejected(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	co.Txn.AbortRequested = true
	if m.Access(co, pg(1), false) != cc.Aborted {
		t.Fatal("aborting transaction's access granted")
	}
}

func TestRereadKeepsOriginalVersion(t *testing.T) {
	// If a cohort reads the same page twice, the remembered version is the
	// first one (certification must check what was actually read).
	m := newMgr(false)
	co := newCo(1)
	m.Access(co, pg(1), false)
	// Another transaction commits a write in between.
	w := newCo(2)
	m.Access(w, pg(1), true)
	if !commit(t, m, w, 5) {
		t.Fatal("writer failed")
	}
	m.Access(co, pg(1), false) // re-read: version must stay the original
	if commit(t, m, co, 10) {
		t.Fatal("re-read laundered a stale version through certification")
	}
}

func TestCommitUnknownCohortNoOp(t *testing.T) {
	m := newMgr(false)
	co := newCo(1)
	m.Commit(co)
	m.Abort(co)
	if !m.Quiesced() {
		t.Fatal("no-op commit left state")
	}
}
