// Package commit is the commit-protocol layer of the transaction manager:
// the coordinator-side and cohort-side state machines that take a
// transaction attempt from the end of its work phase (work → prepare →
// decide → resolve) to a globally resolved commit or abort. The paper's
// centralized two-phase commit (§2.1, §3.3) is the default; the
// presumed-abort and presumed-commit variants of Mohan, Lindsay & Obermarck
// ("Transaction Management in the R* Distributed Database Management
// System") reduce the acknowledgement traffic and forced log writes the
// paper identifies as first-order commit costs (§2.4, §4.4).
//
// The protocols drive machine resources only through the narrow Env
// facade, so the layer stays independent of the machine assembly: it sees
// the network as Send, the log as ForceLog/ForceLogAsync, and the
// concurrency control layer as cc.Manager. One fan-out primitive (fanOut)
// carries every per-cohort broadcast — prepare, commit phase two, and
// abort.
package commit

import (
	"fmt"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/network"
	"ddbm/internal/sim"
)

// Kind identifies a commit protocol variant.
type Kind int

const (
	// CentralizedTwoPC is the paper's centralized two-phase commit (§2.1):
	// every cohort is prepared, votes, receives the decision, and
	// acknowledges it; aborts are likewise acknowledged before the
	// coordinator forgets the transaction. With logging modeled, every
	// cohort forces a prepare record and the coordinator forces the commit
	// record. The zero value, and the default.
	CentralizedTwoPC Kind = iota
	// PresumedAbort is R*'s presumed-abort 2PC: in the absence of log
	// records the outcome is presumed to be abort, so abort messages need
	// no acknowledgements (the coordinator forgets the transaction the
	// moment they are sent) and the abort path forces nothing. Read-only
	// cohorts vote READ, release immediately, and take no part in phase
	// two; a fully read-only transaction skips the decision force and
	// phase two entirely.
	PresumedAbort
	// PresumedCommit is R*'s presumed-commit 2PC: the coordinator forces a
	// collecting (initiation) record before the prepare phase, after which
	// the outcome is presumed to be commit — COMMIT messages need no
	// acknowledgements and cohorts write no forced commit records, while
	// abort messages must be acknowledged and, with logging modeled, abort
	// records forced at the cohorts. Read-only cohorts short-circuit as
	// under PresumedAbort.
	PresumedCommit
)

var kindNames = map[Kind]string{
	CentralizedTwoPC: "2PC",
	PresumedAbort:    "PA",
	PresumedCommit:   "PC",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a protocol name (as printed by String) to a Kind.
func ParseKind(s string) (Kind, error) {
	//ddbmlint:ordered kindNames values are unique, so at most one iteration can match and return
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("commit: unknown protocol %q (want 2PC, PA or PC)", s)
}

// Kinds lists every protocol variant, default first.
func Kinds() []Kind { return []Kind{CentralizedTwoPC, PresumedAbort, PresumedCommit} }

// Vote is a cohort's reply to the PREPARE message. ReadOnly marks the READ
// vote of the presumed protocols' read-only short-circuit: the cohort has
// already released locally and takes no part in phase two.
type Vote struct {
	Idx      int
	Yes      bool
	ReadOnly bool
}

// Ack acknowledges an abort message at the coordinator.
type Ack struct{ Idx int }

// AbortSignal marks transaction-manager messages that demand the attempt
// abort (cohort self-aborts, remote wound and deadlock-victim notices).
// The vote collection loop treats any such message as a failed prepare
// phase.
type AbortSignal interface{ CommitAbortSignal() }

// Message tags for the typed network envelopes the protocol exchanges.
// Cohort implements network.Handler: node-bound tags run the cohort-side
// state machine at its node, host-bound tags deliver the cohort's embedded
// vote/ack into the coordinator's mailbox.
const (
	tagPrepare = iota // host → node: run the local first phase and vote
	tagCommit         // host → node: phase-two COMMIT (release, install, maybe ack)
	tagAbort          // host → node: ABORT (release, maybe force, maybe ack)
	tagVote           // node → host: deliver &c.vote to the coordinator
	tagAck            // node → host: deliver &c.ack to the coordinator
)

// Cohort is the protocol layer's handle on one cohort of one attempt. It
// is owned (and free-listed) by the transaction manager; Txn.Attach resets
// it for each attempt, and all of its protocol messages are pre-bound:
// the vote and ack travel as pointers to the embedded structs, and the
// deferred-write and log-force continuations are method values bound once
// per pooled object, so a steady-state attempt allocates nothing here.
type Cohort struct {
	// Idx is the cohort's index within the transaction; votes and acks
	// carry it back to the coordinator. Assigned by Txn.Attach.
	Idx int
	// Meta is the cohort as the concurrency control managers see it.
	Meta *cc.CohortMeta
	// ReadOnly reports that the cohort updates nothing — no local writes
	// and no remote-copy write permissions — making it eligible for the
	// presumed protocols' read-only vote short-circuit.
	ReadOnly bool
	// Deferred lists write permissions requested only in the prepare phase
	// (all writes under O2PL, remote-copy writes under
	// DeferRemoteWriteLocks); the node may block before it can vote. The
	// owner refills it per attempt (Attach reslices it to empty, keeping
	// the backing array).
	Deferred []db.PageID

	// done marks a cohort resolved before phase two (read-only
	// short-circuit); fanOut skips it.
	done bool
	// dead marks a cohort lost to a node crash: the coordinator stops
	// addressing it (fanOut skips it) and the recovery layer resolves its
	// node-side state instead. Set by MarkDead, reset by Attach.
	dead bool
	// abortSent and acked track the abort acknowledgement per cohort so
	// crash handling can substitute a synthetic ack for a dead cohort
	// without double counting: fanOut sets abortSent, the coordinator's
	// ack loop sets acked on the first (real or synthetic) ack.
	abortSent bool
	acked     bool

	t    *Txn // owning attempt, set by Attach
	vote Vote // travels by pointer; at most one vote in flight per attempt
	ack  Ack  // travels by pointer; at most one ack in flight per attempt

	deferredFn  func(ok bool) // c.deferredDone, bound once per pooled cohort
	voteForceFn func()        // c.votedAfterForce, bound once per pooled cohort
	ackForceFn  func()        // c.ackAfterForce, bound once per pooled cohort
}

// Txn is one transaction attempt as the protocol layer sees it: the shared
// metadata, the coordinator's mailbox, and the cohorts.
type Txn struct {
	Meta *cc.TxnMeta
	Mail *sim.Mailbox
	// Cohorts in load order; Vote.Idx and Ack.Idx index this slice.
	Cohorts []*Cohort

	// Protocol-run state, set at Commit/Abort entry so the cohort-side
	// handlers can reach the environment and variant flags without any
	// per-message closure.
	env          Env
	tp           *twoPC
	shortCircuit bool
}

// Reset prepares a (possibly recycled) Txn for a new attempt: fresh
// metadata and mailbox, no cohorts. The cohort slice keeps its backing
// array, so re-attaching the attempt's cohorts does not allocate once the
// slice has reached the machine's cohort high-water mark.
//
//ddbmlint:hotpath per-attempt protocol state reset
func (t *Txn) Reset(meta *cc.TxnMeta, mail *sim.Mailbox) {
	t.Meta, t.Mail = meta, mail
	for i := range t.Cohorts {
		t.Cohorts[i] = nil
	}
	t.Cohorts = t.Cohorts[:0]
	t.env, t.tp, t.shortCircuit = nil, nil, false
}

// Attach adds a cohort to the attempt, assigning its index and resetting
// its per-attempt protocol state. The cohort keeps its Deferred backing
// array (resliced to empty) and its pre-bound continuations.
//
//ddbmlint:hotpath per-attempt cohort registration
func (t *Txn) Attach(c *Cohort) {
	c.Idx = len(t.Cohorts)
	c.t = t
	c.ReadOnly = false
	c.done = false
	c.dead = false
	c.abortSent, c.acked = false, false
	c.Deferred = c.Deferred[:0]
	c.vote = Vote{Idx: c.Idx}
	c.ack = Ack{Idx: c.Idx}
	if c.deferredFn == nil {
		c.deferredFn = c.deferredDone
		c.voteForceFn = c.votedAfterForce
		c.ackForceFn = c.ackAfterForce
	}
	t.Cohorts = append(t.Cohorts, c) //ddbmlint:allow hotpath-alloc cohort slice grows to the attempt high-water mark and survives recycling
}

// Env is the narrow facade over the machine resources a commit protocol
// may drive: the coordinator's network endpoint, the per-node concurrency
// control managers, the log (host and cohort disks), the timestamp source,
// and observation hooks. All methods run in simulation context.
type Env interface {
	// Host returns the coordinator's node id.
	Host() int
	// Send delivers a typed message between nodes with full per-end
	// message CPU costs; a nil handler sends a pure-load message (e.g. a
	// commit ack).
	Send(from, to int, h network.Handler, tag int)
	// Retain and Release bracket every in-flight reference the protocol
	// creates to attempt-owned state (envelopes carrying a Cohort, force
	// and deferred-write continuations): the transaction manager recycles
	// an attempt's state only once the count drains, so stragglers — late
	// votes after an early abort return, phase-two deliveries after Commit
	// returns — never touch recycled memory.
	Retain()
	Release()
	// Manager returns the concurrency control manager at a node.
	Manager(node int) cc.Manager
	// NextTS draws the next globally unique, monotone timestamp.
	NextTS() int64
	// Logging reports whether log forces are modeled (Config.ModelLogging).
	Logging() bool
	// ForceLog synchronously forces a log record at the coordinator's
	// node, blocking the calling process. abortPath attributes the force
	// to abort handling for the metrics.
	ForceLog(p *sim.Proc, abortPath bool)
	// ForceLogAsync forces a log record at a cohort node's disk and then
	// runs done.
	ForceLogAsync(node int, abortPath bool, done func())
	// InstallCommit applies a committed cohort's buffered updates at its
	// node: audit installs plus the per-page deferred write initiation
	// costs. Called at the cohort's node, after Manager(node).Commit.
	InstallCommit(c *Cohort)
	// RecordCommit registers the committed transaction with the machine's
	// serializability auditor. Called once, at the commit decision.
	RecordCommit()
	// Prepared observes the successful end of the prepare phase (all
	// votes yes); Decided observes the commit decision. Observation only —
	// neither may affect simulated behaviour.
	Prepared()
	Decided(committed bool)
	// CohortInDoubt marks the opening of a cohort's in-doubt window: it
	// has voted YES (non-read-only) and holds its locks until the decision
	// arrives. CohortResolved closes the window with the outcome applied
	// at the cohort's node; it also fires for the read-only short-circuit
	// (which never opens a window) so the fault layer can retire the
	// cohort's node-side registration. Down reports a crashed node. All
	// three are no-ops in a fault-free machine.
	CohortInDoubt(c *Cohort)
	CohortResolved(c *Cohort, committed bool)
	Down(node int) bool
}

// Protocol is one two-phase commit variant: the coordinator-side state
// machine driving prepare → decide → resolve and the cohort-side rules for
// voting, logging and acknowledging.
type Protocol interface {
	// Kind identifies the variant.
	Kind() Kind
	// Commit runs the protocol from the end of a successful work phase:
	// prepare fan-out, vote collection, decision logging, and the phase-two
	// fan-out. It returns false if the attempt must abort instead — the
	// transaction manager then runs Abort, which is always safe after a
	// failed Commit.
	Commit(p *sim.Proc, env Env, t *Txn) bool
	// Abort resolves the attempt as aborted across the first loaded
	// cohorts. It returns when the coordinator may forget the attempt —
	// after all abort acknowledgements for the acknowledged variants,
	// immediately after the fan-out for presumed abort.
	Abort(p *sim.Proc, env Env, t *Txn, loaded int)
}

// New returns the protocol implementing a variant.
func New(k Kind) (Protocol, error) {
	switch k {
	case CentralizedTwoPC:
		return &twoPC{kind: k, ackCommits: true, ackAborts: true}, nil
	case PresumedAbort:
		return &twoPC{kind: k, shortCircuitRO: true, ackCommits: true}, nil
	case PresumedCommit:
		return &twoPC{kind: k, shortCircuitRO: true, initForce: true, ackAborts: true, abortForce: true}, nil
	default:
		return nil, fmt.Errorf("commit: unknown protocol %v", k)
	}
}

// fanOut sends one tagged envelope to every live cohort's node, in cohort
// order — the one primitive behind the prepare, commit phase-two and abort
// fan-outs. Cohorts already resolved by the read-only short-circuit, dead
// cohorts (node crash) and cohorts at currently-down nodes are skipped.
// Each envelope carries the cohort itself as its handler and holds one
// attempt reference until the handler's chain completes. It returns the
// number of messages sent.
//
//ddbmlint:hotpath per-cohort broadcast pinned by TestTxnPathAllocFree
func fanOut(env Env, cohorts []*Cohort, tag int) int {
	n := 0
	for _, c := range cohorts {
		if c.done || c.dead {
			continue
		}
		if env.Down(c.Meta.Node) { //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
			// A crashed node's cohort state is the recovery layer's
			// problem; sending would only be dropped at the network.
			continue
		}
		n++
		if tag == tagAbort {
			c.abortSent = true
		}
		env.Retain()                              //ddbmlint:allow hotpath-alloc Env facade dispatch; the sole simulation implementation is core's free-listed protocolEnv
		env.Send(env.Host(), c.Meta.Node, c, tag) //ddbmlint:allow hotpath-alloc Env facade dispatch; the sole simulation implementation is core's free-listed protocolEnv
	}
	return n
}

// MarkDead severs a cohort lost to a node crash from the coordinator's
// protocol run: later fan-outs skip it, and if an abort acknowledgement is
// outstanding a synthetic ack is delivered locally so the coordinator's
// wait can finish — the cohort's node will never send the real one. Any
// duplicate ack this can produce (the real one already in flight) is
// deduplicated by the coordinator's Idx-keyed ack accounting, and
// leftovers are cleared when the attempt's mailbox resets.
func (c *Cohort) MarkDead() {
	if c.dead {
		return
	}
	c.dead = true
	if c.abortSent && !c.acked && c.t.tp != nil && c.t.tp.ackAborts {
		c.t.Mail.Send(&c.ack)
	}
}

// Dead reports whether MarkDead severed this cohort.
func (c *Cohort) Dead() bool { return c.dead }

// MsgDropped runs in place of HandleMsg when one of this cohort's protocol
// envelopes is discarded at a crashed node: the envelope's attempt
// reference is released, and a dropped abort or ack is substituted with a
// locally delivered ack so the coordinator's abort wait cannot hang on a
// message that died with the node.
func (c *Cohort) MsgDropped(tag int) {
	if (tag == tagAbort || tag == tagAck) && !c.acked &&
		c.t.tp != nil && c.t.tp.ackAborts {
		c.t.Mail.Send(&c.ack)
	}
	c.t.env.Release()
}
