package commit

import (
	"ddbm/internal/cc"
	"ddbm/internal/sim"
)

// twoPC implements all three protocol variants as one state machine
// parameterized by what each variant acknowledges, forces and
// short-circuits. The phase order is fixed — prepare fan-out, vote
// collection, decision logging, decision, phase-two fan-out — and matches
// the paper's centralized protocol exactly when all savings are off.
//
// The cohort-side steps run as Cohort methods dispatched from tagged
// network envelopes (see Cohort.HandleMsg), so one attempt's whole
// message flow reuses the attempt's pre-bound state instead of chaining
// closures.
type twoPC struct {
	kind Kind
	// shortCircuitRO lets read-only cohorts vote READ: release locally at
	// prepare time and drop out of phase two (the presumed variants).
	shortCircuitRO bool
	// initForce forces a collecting record at the coordinator before the
	// prepare fan-out (presumed commit's extra force).
	initForce bool
	// ackCommits has cohorts acknowledge COMMIT messages.
	ackCommits bool
	// ackAborts has cohorts acknowledge ABORT messages; without it the
	// coordinator forgets the attempt as soon as the aborts are sent.
	ackAborts bool
	// abortForce has cohorts force an abort record before acknowledging
	// (presumed commit: the explicit abort must survive a crash or the
	// presumption would commit it).
	abortForce bool
}

func (tp *twoPC) Kind() Kind { return tp.kind }

// Commit drives the coordinator through prepare → decide → resolve. Any
// failed vote, abort signal, or abort raced in behind a log force returns
// false with the attempt still unresolved; the caller runs Abort.
//
//ddbmlint:hotpath coordinator commit path pinned by TestTxnPathAllocFree
func (tp *twoPC) Commit(p *sim.Proc, env Env, t *Txn) bool {
	meta := t.Meta
	t.env, t.tp = env, tp

	// Phase one: the commit timestamp travels to every cohort in the
	// "prepare to commit" message (OPT certifies against it).
	meta.State = cc.Preparing
	meta.CommitTS = env.NextTS() //ddbmlint:allow hotpath-alloc Env facade dispatch; the sole simulation implementation is core's free-listed protocolEnv

	if tp.initForce && env.Logging() { //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		// Presumed commit: force the collecting record before any cohort
		// can prepare, or a coordinator crash would presume-commit a
		// transaction that never decided.
		env.ForceLog(p, false) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		if meta.AbortRequested {
			return false
		}
	}

	tp.sendPrepares(env, t)
	if !tp.collectVotes(p, t) {
		return false
	}
	if meta.AbortRequested {
		// A wound or deadlock abort raced in behind the last vote: the
		// coordinator learns of it before deciding, so the abort wins.
		return false
	}
	env.Prepared() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above

	if env.Logging() && tp.decisionForce(t) { //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		// Force the commit record at the coordinator's node before the
		// decision becomes durable (and before the response completes).
		env.ForceLog(p, false) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		if meta.AbortRequested {
			// An abort raced in while the force was on disk.
			return false
		}
	}

	// Commit decision: from here the transaction can no longer abort and
	// the response is complete. Phase two runs asynchronously: COMMIT
	// messages release locks and install updates at each node, and cohorts
	// acknowledge (CPU load only) where the variant requires it.
	meta.State = cc.Committing
	meta.DecisionTS = env.NextTS() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	env.Decided(true)              //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	env.RecordCommit()             //ddbmlint:allow hotpath-alloc Env facade dispatch; see above

	fanOut(env, t.Cohorts, tagCommit)
	return true
}

// sendPrepares runs the prepare fan-out: each cohort votes after its local
// first phase (deferred write permissions first where configured), forcing
// a prepare record before a YES vote when logging is modeled. Read-only
// cohorts under the presumed variants vote READ instead: they resolve
// locally at once, force nothing, and drop out of phase two.
//
// The READ short-circuit is sound only when the transaction's lock point
// has passed by prepare time — true for the locking algorithms' normal
// mode, where every permission was acquired during the work phase. When
// any cohort still has deferred write permissions to acquire (O2PL), an
// early read release would open a serializability window (another
// transaction could overwrite the released reads and then be overwritten
// by this one), so the short-circuit is suppressed for the whole
// transaction.
//
//ddbmlint:hotpath prepare fan-out pinned by TestTxnPathAllocFree
func (tp *twoPC) sendPrepares(env Env, t *Txn) {
	t.shortCircuit = tp.shortCircuitRO
	if t.shortCircuit {
		for _, c := range t.Cohorts {
			if len(c.Deferred) > 0 {
				t.shortCircuit = false
				break
			}
		}
	}
	fanOut(env, t.Cohorts, tagPrepare)
}

// HandleMsg dispatches one delivered protocol envelope for this cohort:
// the cohort-side steps at its node, or its vote/ack into the
// coordinator's mailbox at the host. Host-bound deliveries release the
// attempt reference their envelope held; node-bound steps pass theirs
// down their continuation chain.
//
//ddbmlint:hotpath protocol message dispatch pinned by TestTxnPathAllocFree
func (c *Cohort) HandleMsg(tag int) {
	switch tag {
	case tagPrepare:
		c.prepare()
	case tagCommit:
		c.commitAtNode()
	case tagAbort:
		c.abortAtNode()
	case tagVote:
		c.t.Mail.Send(&c.vote)
		c.t.env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; the sole simulation implementation is core's free-listed protocolEnv
	case tagAck:
		c.t.Mail.Send(&c.ack)
		c.t.env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	}
}

// prepare runs the cohort's local first phase at its node.
//
//ddbmlint:hotpath cohort prepare step pinned by TestTxnPathAllocFree
func (c *Cohort) prepare() {
	t := c.t
	env := t.env
	mgr := env.Manager(c.Meta.Node) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	if t.shortCircuit && c.ReadOnly {
		// The READ vote still runs the local first phase (OPT must
		// certify the reads) but skips the prepare-record force: a
		// cohort with nothing to redo or undo has nothing to log.
		if mgr.Prepare(c.Meta) { //ddbmlint:allow hotpath-alloc cc.Manager dispatch; managers are audited by TestSteadyStateAllocFree
			mgr.Commit(c.Meta) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; see above
			c.done = true
			env.CohortResolved(c, true) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
			c.vote.Yes, c.vote.ReadOnly = true, true
			c.sendVote()
		} else {
			c.vote.Yes, c.vote.ReadOnly = false, false
			c.sendVote()
		}
		env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		return
	}
	if len(c.Deferred) > 0 {
		// [Care89]: deferred write permissions are requested only now,
		// in the first phase of the commit protocol; the node may
		// block before it can vote. The chain keeps this envelope's
		// attempt reference until deferredDone finishes.
		mgr.(cc.DeferredWriter).PrepareDeferred(c.Meta, c.Deferred, c.deferredFn) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; see above
		return
	}
	c.reply(mgr.Prepare(c.Meta)) //ddbmlint:allow hotpath-alloc cc.Manager dispatch; see above
	env.Release()                //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// deferredDone continues prepare once the deferred write permissions are
// resolved, then releases the prepare envelope's attempt reference.
//
//ddbmlint:hotpath deferred-write prepare continuation
func (c *Cohort) deferredDone(ok bool) {
	env := c.t.env
	c.reply(ok && env.Manager(c.Meta.Node).Prepare(c.Meta)) //ddbmlint:allow hotpath-alloc Env/cc.Manager dispatch; see above
	env.Release()                                           //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// reply votes for the cohort, forcing the prepare record first on a YES
// vote when logging is modeled.
//
//ddbmlint:hotpath cohort vote path pinned by TestTxnPathAllocFree
func (c *Cohort) reply(yes bool) {
	env := c.t.env
	c.vote.Yes, c.vote.ReadOnly = yes, false
	if yes && env.Logging() { //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		// Force the cohort's prepare record before voting yes
		// (footnote 5: only log pages are forced pre-commit).
		env.Retain()                                         //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		env.ForceLogAsync(c.Meta.Node, false, c.voteForceFn) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		return
	}
	c.sendVote()
}

// votedAfterForce sends the YES vote once the prepare record is on disk,
// releasing the force chain's attempt reference.
//
//ddbmlint:hotpath post-force vote continuation
func (c *Cohort) votedAfterForce() {
	c.sendVote()
	c.t.env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// sendVote ships the cohort's embedded vote to the coordinator. A
// non-read-only YES vote opens the cohort's in-doubt window: from here
// until the decision is applied at its node, a crash leaves the cohort's
// locks held hostage to the commit protocol's resolution rules.
//
//ddbmlint:hotpath vote send pinned by TestTxnPathAllocFree
func (c *Cohort) sendVote() {
	env := c.t.env
	if c.vote.Yes && !c.vote.ReadOnly {
		env.CohortInDoubt(c) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	}
	env.Retain()                                  //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	env.Send(c.Meta.Node, env.Host(), c, tagVote) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// commitAtNode runs phase two at the cohort's node: release locks, install
// the buffered updates, and acknowledge (CPU load only) where the variant
// requires it.
//
//ddbmlint:hotpath phase-two commit step pinned by TestTxnPathAllocFree
func (c *Cohort) commitAtNode() {
	t := c.t
	env := t.env
	env.Manager(c.Meta.Node).Commit(c.Meta) //ddbmlint:allow hotpath-alloc Env/cc.Manager dispatch; see above
	env.InstallCommit(c)                    //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	env.CohortResolved(c, true)             //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	if t.tp.ackCommits {
		env.Send(c.Meta.Node, env.Host(), nil, 0) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	}
	env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// abortAtNode resolves the abort at the cohort's node: release locks,
// force the abort record first where the variant demands it, and
// acknowledge where required.
//
//ddbmlint:hotpath abort step on the transaction path
func (c *Cohort) abortAtNode() {
	t := c.t
	env := t.env
	env.Manager(c.Meta.Node).Abort(c.Meta) //ddbmlint:allow hotpath-alloc Env/cc.Manager dispatch; see above
	env.CohortResolved(c, false)           //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	if t.tp.ackAborts {
		if t.tp.abortForce && env.Logging() { //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
			env.Retain()                                       //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
			env.ForceLogAsync(c.Meta.Node, true, c.ackForceFn) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
		} else {
			c.sendAck()
		}
	}
	env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// ackAfterForce acknowledges the abort once the abort record is on disk,
// releasing the force chain's attempt reference.
//
//ddbmlint:hotpath post-force ack continuation
func (c *Cohort) ackAfterForce() {
	c.sendAck()
	c.t.env.Release() //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// sendAck ships the cohort's embedded abort ack to the coordinator.
//
//ddbmlint:hotpath ack send on the abort path
func (c *Cohort) sendAck() {
	env := c.t.env
	env.Retain()                                 //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	env.Send(c.Meta.Node, env.Host(), c, tagAck) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
}

// collectVotes consumes coordinator mail until every cohort has voted yes,
// returning false on the first no vote or abort signal. Stale messages from
// the attempt's work phase are ignored.
//
//ddbmlint:hotpath vote collection pinned by TestTxnPathAllocFree
func (tp *twoPC) collectVotes(p *sim.Proc, t *Txn) bool {
	for votes := 0; votes < len(t.Cohorts); {
		switch v := t.Mail.Recv(p).(type) {
		case *Vote:
			if !v.Yes {
				return false
			}
			votes++
		case AbortSignal:
			return false
		}
	}
	return true
}

// decisionForce reports whether the commit decision needs a forced log
// record. Centralized 2PC always forces it; the presumed variants skip it
// for a fully read-only transaction — every cohort voted READ, so there is
// no phase two and nothing to recover.
func (tp *twoPC) decisionForce(t *Txn) bool {
	if !tp.shortCircuitRO {
		return true
	}
	for _, c := range t.Cohorts {
		if !c.done {
			return true
		}
	}
	return false
}

// Abort resolves the attempt as aborted: abort messages fan out to the
// loaded cohorts, and — for the acknowledged variants — the coordinator
// waits for every acknowledgement ("once the transaction manager has
// finished aborting the transaction", §3.3) before forgetting the attempt.
// Presumed abort skips the wait entirely; presumed commit additionally
// forces an abort record at each cohort before it acknowledges. Stale
// messages from the doomed attempt are drained and ignored.
//
// The wait is keyed by cohort (Ack.Idx), not by a raw count: crash
// handling can deliver a synthetic ack for a dead cohort whose real one is
// also still in flight, and the Idx accounting absorbs the duplicate
// instead of miscounting another cohort's ack. Unconsumed duplicates die
// with the attempt's mailbox reset.
//
//ddbmlint:hotpath coordinator abort path on the transaction path
func (tp *twoPC) Abort(p *sim.Proc, env Env, t *Txn, loaded int) {
	t.env, t.tp = env, tp
	env.Decided(false) //ddbmlint:allow hotpath-alloc Env facade dispatch; see above
	fanOut(env, t.Cohorts[:loaded], tagAbort)
	if tp.ackAborts {
		pending := 0
		for _, c := range t.Cohorts[:loaded] {
			if c.abortSent && !c.acked {
				pending++
			}
		}
		for pending > 0 {
			if a, ok := t.Mail.Recv(p).(*Ack); ok {
				if c := t.Cohorts[a.Idx]; !c.acked {
					c.acked = true
					pending--
				}
			}
		}
	}
	t.Meta.State = cc.Finished
}
