package commit

import (
	"ddbm/internal/cc"
	"ddbm/internal/sim"
)

// twoPC implements all three protocol variants as one state machine
// parameterized by what each variant acknowledges, forces and
// short-circuits. The phase order is fixed — prepare fan-out, vote
// collection, decision logging, decision, phase-two fan-out — and matches
// the paper's centralized protocol exactly when all savings are off.
type twoPC struct {
	kind Kind
	// shortCircuitRO lets read-only cohorts vote READ: release locally at
	// prepare time and drop out of phase two (the presumed variants).
	shortCircuitRO bool
	// initForce forces a collecting record at the coordinator before the
	// prepare fan-out (presumed commit's extra force).
	initForce bool
	// ackCommits has cohorts acknowledge COMMIT messages.
	ackCommits bool
	// ackAborts has cohorts acknowledge ABORT messages; without it the
	// coordinator forgets the attempt as soon as the aborts are sent.
	ackAborts bool
	// abortForce has cohorts force an abort record before acknowledging
	// (presumed commit: the explicit abort must survive a crash or the
	// presumption would commit it).
	abortForce bool
}

func (tp *twoPC) Kind() Kind { return tp.kind }

// Commit drives the coordinator through prepare → decide → resolve. Any
// failed vote, abort signal, or abort raced in behind a log force returns
// false with the attempt still unresolved; the caller runs Abort.
func (tp *twoPC) Commit(p *sim.Proc, env Env, t *Txn) bool {
	meta := t.Meta

	// Phase one: the commit timestamp travels to every cohort in the
	// "prepare to commit" message (OPT certifies against it).
	meta.State = cc.Preparing
	meta.CommitTS = env.NextTS()

	if tp.initForce && env.Logging() {
		// Presumed commit: force the collecting record before any cohort
		// can prepare, or a coordinator crash would presume-commit a
		// transaction that never decided.
		env.ForceLog(p, false)
		if meta.AbortRequested {
			return false
		}
	}

	tp.sendPrepares(env, t)
	if !tp.collectVotes(p, t) {
		return false
	}
	if meta.AbortRequested {
		// A wound or deadlock abort raced in behind the last vote: the
		// coordinator learns of it before deciding, so the abort wins.
		return false
	}
	env.Prepared()

	if env.Logging() && tp.decisionForce(t) {
		// Force the commit record at the coordinator's node before the
		// decision becomes durable (and before the response completes).
		env.ForceLog(p, false)
		if meta.AbortRequested {
			// An abort raced in while the force was on disk.
			return false
		}
	}

	// Commit decision: from here the transaction can no longer abort and
	// the response is complete. Phase two runs asynchronously: COMMIT
	// messages release locks and install updates at each node, and cohorts
	// acknowledge (CPU load only) where the variant requires it.
	meta.State = cc.Committing
	meta.DecisionTS = env.NextTS()
	env.Decided(true)
	env.RecordCommit()

	fanOut(env, t.Cohorts, func(c *Cohort) {
		env.Manager(c.Meta.Node).Commit(c.Meta)
		env.InstallCommit(c)
		if tp.ackCommits {
			env.Send(c.Meta.Node, env.Host(), nil)
		}
	})
	return true
}

// sendPrepares runs the prepare fan-out: each cohort votes after its local
// first phase (deferred write permissions first where configured), forcing
// a prepare record before a YES vote when logging is modeled. Read-only
// cohorts under the presumed variants vote READ instead: they resolve
// locally at once, force nothing, and drop out of phase two.
//
// The READ short-circuit is sound only when the transaction's lock point
// has passed by prepare time — true for the locking algorithms' normal
// mode, where every permission was acquired during the work phase. When
// any cohort still has deferred write permissions to acquire (O2PL), an
// early read release would open a serializability window (another
// transaction could overwrite the released reads and then be overwritten
// by this one), so the short-circuit is suppressed for the whole
// transaction.
func (tp *twoPC) sendPrepares(env Env, t *Txn) {
	host := env.Host()
	shortCircuit := tp.shortCircuitRO
	if shortCircuit {
		for _, c := range t.Cohorts {
			if len(c.Deferred) > 0 {
				shortCircuit = false
				break
			}
		}
	}
	fanOut(env, t.Cohorts, func(c *Cohort) {
		mgr := env.Manager(c.Meta.Node)
		if shortCircuit && c.ReadOnly {
			// The READ vote still runs the local first phase (OPT must
			// certify the reads) but skips the prepare-record force: a
			// cohort with nothing to redo or undo has nothing to log.
			if mgr.Prepare(c.Meta) {
				mgr.Commit(c.Meta)
				c.done = true
				env.Send(c.Meta.Node, host, func() { t.Mail.Send(Vote{Idx: c.Idx, Yes: true, ReadOnly: true}) })
			} else {
				env.Send(c.Meta.Node, host, func() { t.Mail.Send(Vote{Idx: c.Idx, Yes: false}) })
			}
			return
		}
		reply := func(yes bool) {
			if yes && env.Logging() {
				// Force the cohort's prepare record before voting yes
				// (footnote 5: only log pages are forced pre-commit).
				env.ForceLogAsync(c.Meta.Node, false, func() {
					env.Send(c.Meta.Node, host, func() { t.Mail.Send(Vote{Idx: c.Idx, Yes: true}) })
				})
				return
			}
			env.Send(c.Meta.Node, host, func() { t.Mail.Send(Vote{Idx: c.Idx, Yes: yes}) })
		}
		if len(c.Deferred) > 0 {
			// [Care89]: deferred write permissions are requested only now,
			// in the first phase of the commit protocol; the node may
			// block before it can vote.
			mgr.(cc.DeferredWriter).PrepareDeferred(c.Meta, c.Deferred, func(ok bool) {
				reply(ok && mgr.Prepare(c.Meta))
			})
			return
		}
		reply(mgr.Prepare(c.Meta))
	})
}

// collectVotes consumes coordinator mail until every cohort has voted yes,
// returning false on the first no vote or abort signal. Stale messages from
// the attempt's work phase are ignored.
func (tp *twoPC) collectVotes(p *sim.Proc, t *Txn) bool {
	for votes := 0; votes < len(t.Cohorts); {
		switch v := t.Mail.Recv(p).(type) {
		case Vote:
			if !v.Yes {
				return false
			}
			votes++
		case AbortSignal:
			return false
		}
	}
	return true
}

// decisionForce reports whether the commit decision needs a forced log
// record. Centralized 2PC always forces it; the presumed variants skip it
// for a fully read-only transaction — every cohort voted READ, so there is
// no phase two and nothing to recover.
func (tp *twoPC) decisionForce(t *Txn) bool {
	if !tp.shortCircuitRO {
		return true
	}
	for _, c := range t.Cohorts {
		if !c.done {
			return true
		}
	}
	return false
}

// Abort resolves the attempt as aborted: abort messages fan out to the
// loaded cohorts, and — for the acknowledged variants — the coordinator
// waits for every acknowledgement ("once the transaction manager has
// finished aborting the transaction", §3.3) before forgetting the attempt.
// Presumed abort skips the wait entirely; presumed commit additionally
// forces an abort record at each cohort before it acknowledges. Stale
// messages from the doomed attempt are drained and ignored.
func (tp *twoPC) Abort(p *sim.Proc, env Env, t *Txn, loaded int) {
	env.Decided(false)
	host := env.Host()
	n := fanOut(env, t.Cohorts[:loaded], func(c *Cohort) {
		node := c.Meta.Node
		env.Manager(node).Abort(c.Meta)
		if !tp.ackAborts {
			return
		}
		ack := func() {
			env.Send(node, host, func() { t.Mail.Send(Ack{Idx: c.Idx}) })
		}
		if tp.abortForce && env.Logging() {
			env.ForceLogAsync(node, true, ack)
			return
		}
		ack()
	})
	if tp.ackAborts {
		for acks := 0; acks < n; {
			if _, ok := t.Mail.Recv(p).(Ack); ok {
				acks++
			}
		}
	}
	t.Meta.State = cc.Finished
}
