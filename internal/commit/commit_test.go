package commit

import (
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
	"ddbm/internal/network"
	"ddbm/internal/sim"
)

// fakeMgr is a minimal cc.Manager: every access granted, Prepare votes as
// configured, and commit/abort calls are counted per cohort.
type fakeMgr struct {
	prepareOK bool
	onPrepare func() // runs before the vote is computed
	prepares  int
	commits   int
	aborts    int
}

func (f *fakeMgr) Kind() cc.Kind                                               { return cc.NoDC }
func (f *fakeMgr) Access(co *cc.CohortMeta, page db.PageID, w bool) cc.Outcome { return cc.Granted }
func (f *fakeMgr) Prepare(co *cc.CohortMeta) bool {
	f.prepares++
	if f.onPrepare != nil {
		f.onPrepare()
	}
	return f.prepareOK
}
func (f *fakeMgr) Commit(co *cc.CohortMeta) { f.commits++ }
func (f *fakeMgr) Abort(co *cc.CohortMeta)  { f.aborts++ }
func (f *fakeMgr) PrepareDeferred(co *cc.CohortMeta, pages []db.PageID, done func(ok bool)) {
	done(f.prepareOK)
}

// testEnv is a mock Env over a real simulator: message sends deliver after
// zero delay, log forces take one simulated millisecond, and every call is
// counted.
type testEnv struct {
	s    *sim.Sim
	host int
	mgrs []*fakeMgr // indexed by node; host has no manager

	logging     bool
	ts          int64
	sends       int
	forces      int
	abortForces int
	installs    []int
	records     int
	prepared    int
	decided     []bool
	refs        int // Retain/Release balance; must drain to zero
}

func newTestEnv(nodes int, logging bool) *testEnv {
	e := &testEnv{s: sim.New(1), host: nodes, logging: logging}
	for i := 0; i < nodes; i++ {
		e.mgrs = append(e.mgrs, &fakeMgr{prepareOK: true})
	}
	return e
}

func (e *testEnv) Host() int { return e.host }
func (e *testEnv) Send(from, to int, h network.Handler, tag int) {
	e.sends++
	e.s.After(0, func() {
		if h != nil {
			h.HandleMsg(tag)
		}
	})
}
func (e *testEnv) Retain()                     { e.refs++ }
func (e *testEnv) Release()                    { e.refs-- }
func (e *testEnv) Manager(node int) cc.Manager { return e.mgrs[node] }
func (e *testEnv) NextTS() int64               { e.ts++; return e.ts }
func (e *testEnv) Logging() bool               { return e.logging }
func (e *testEnv) ForceLog(p *sim.Proc, abortPath bool) {
	e.countForce(abortPath)
	p.Delay(1)
}
func (e *testEnv) ForceLogAsync(node int, abortPath bool, done func()) {
	e.countForce(abortPath)
	e.s.After(1, done)
}
func (e *testEnv) countForce(abortPath bool) {
	e.forces++
	if abortPath {
		e.abortForces++
	}
}
func (e *testEnv) InstallCommit(c *Cohort) { e.installs = append(e.installs, c.Idx) }
func (e *testEnv) RecordCommit()           { e.records++ }
func (e *testEnv) Prepared()               { e.prepared++ }
func (e *testEnv) Decided(committed bool)  { e.decided = append(e.decided, committed) }

// The fault hooks are no-ops in the fault-free protocol tests.
func (e *testEnv) CohortInDoubt(c *Cohort)                  {}
func (e *testEnv) CohortResolved(c *Cohort, committed bool) {}
func (e *testEnv) Down(node int) bool                       { return false }

// newTxn builds a transaction with one cohort per node; readOnly marks
// which cohorts carry no updates.
func (e *testEnv) newTxn(readOnly ...bool) *Txn {
	meta := &cc.TxnMeta{ID: 1, TS: 1, AttemptTS: 1}
	t := &Txn{}
	t.Reset(meta, e.s.NewMailbox())
	for i := range e.mgrs {
		c := &Cohort{Meta: &cc.CohortMeta{Txn: meta, Node: i}}
		t.Attach(c)
		c.ReadOnly = i < len(readOnly) && readOnly[i]
	}
	return t
}

// runCommit drives Protocol.Commit (and, on failure, Abort — mirroring the
// transaction manager) inside a simulated coordinator process.
func runCommit(t *testing.T, k Kind, env *testEnv, txn *Txn) bool {
	t.Helper()
	proto, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	committed := false
	env.s.Spawn("coordinator", func(p *sim.Proc) {
		committed = proto.Commit(p, env, txn)
		if !committed {
			txn.Meta.AbortRequested = true
			proto.Abort(p, env, txn, len(txn.Cohorts))
		}
	})
	env.s.Run(1000)
	if env.refs != 0 {
		t.Errorf("attempt references leaked: Retain/Release balance = %d after the run drained", env.refs)
	}
	return committed
}

// runAbort drives only the abort path for a fully loaded transaction.
func runAbort(t *testing.T, k Kind, env *testEnv, txn *Txn) {
	t.Helper()
	proto, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	env.s.Spawn("coordinator", func(p *sim.Proc) {
		txn.Meta.AbortRequested = true
		proto.Abort(p, env, txn, len(txn.Cohorts))
	})
	env.s.Run(1000)
	if env.refs != 0 {
		t.Errorf("attempt references leaked: Retain/Release balance = %d after the run drained", env.refs)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("3PC"); err == nil {
		t.Error("ParseKind accepted an unknown protocol")
	}
	if Kinds()[0] != CentralizedTwoPC {
		t.Error("the default protocol must lead the Kinds list")
	}
	if Kind(0) != CentralizedTwoPC {
		t.Error("the zero Kind must be the centralized default (golden-config compatibility)")
	}
	if _, err := New(Kind(42)); err == nil {
		t.Error("New accepted an unknown kind")
	}
}

// TestCentralizedCommitCosts pins the centralized protocol's per-commit
// costs for an N-cohort update transaction with logging: 4N messages after
// the work phase (prepare, vote, commit, ack) and N+1 forces (one prepare
// record per cohort plus the coordinator's commit record).
func TestCentralizedCommitCosts(t *testing.T) {
	env := newTestEnv(3, true)
	txn := env.newTxn()
	if !runCommit(t, CentralizedTwoPC, env, txn) {
		t.Fatal("uncontested commit failed")
	}
	if env.sends != 4*3 {
		t.Errorf("sends = %d, want 12", env.sends)
	}
	if env.forces != 3+1 || env.abortForces != 0 {
		t.Errorf("forces = %d (%d abort), want 4 (0 abort)", env.forces, env.abortForces)
	}
	if env.prepared != 1 || len(env.decided) != 1 || !env.decided[0] || env.records != 1 {
		t.Errorf("observations: prepared=%d decided=%v records=%d", env.prepared, env.decided, env.records)
	}
	if len(env.installs) != 3 {
		t.Errorf("installs = %v, want all three cohorts", env.installs)
	}
	for i, m := range env.mgrs {
		if m.prepares != 1 || m.commits != 1 || m.aborts != 0 {
			t.Errorf("node %d: prepares=%d commits=%d aborts=%d", i, m.prepares, m.commits, m.aborts)
		}
	}
	if txn.Meta.State != cc.Committing {
		t.Errorf("state = %v, want Committing", txn.Meta.State)
	}
}

// TestLoggingOffNoForces: with logging unmodeled no protocol forces
// anything, on either path.
func TestLoggingOffNoForces(t *testing.T) {
	for _, k := range Kinds() {
		env := newTestEnv(2, false)
		if !runCommit(t, k, env, env.newTxn()) {
			t.Fatalf("%v: commit failed", k)
		}
		env2 := newTestEnv(2, false)
		runAbort(t, k, env2, env2.newTxn())
		if env.forces != 0 || env2.forces != 0 {
			t.Errorf("%v: forces commit=%d abort=%d, want 0", k, env.forces, env2.forces)
		}
	}
}

// TestReadOnlyShortCircuit: under the presumed variants a read-only cohort
// votes READ — it commits locally at prepare time, forces nothing, and
// receives no phase-two message; the update cohort still pays full price.
func TestReadOnlyShortCircuit(t *testing.T) {
	for _, k := range []Kind{PresumedAbort, PresumedCommit} {
		env := newTestEnv(2, true)
		txn := env.newTxn(true, false) // cohort 0 read-only, cohort 1 updates
		if !runCommit(t, k, env, txn) {
			t.Fatalf("%v: commit failed", k)
		}
		ro := env.mgrs[0]
		if ro.prepares != 1 {
			t.Errorf("%v: read-only cohort must still run its local first phase (certification)", k)
		}
		if ro.commits != 1 {
			t.Errorf("%v: read-only cohort not released at vote time", k)
		}
		if got := len(env.installs); got != 1 || env.installs[0] != 1 {
			t.Errorf("%v: installs = %v, want only the update cohort", k, env.installs)
		}
		// Prepare forces: none for the READ voter, one for the update
		// cohort; plus the decision force and, for PC, the collecting
		// record.
		wantForces := 2
		if k == PresumedCommit {
			wantForces = 3
		}
		if env.forces != wantForces {
			t.Errorf("%v: forces = %d, want %d", k, env.forces, wantForces)
		}
		// Messages: 2 prepares + 2 votes + 1 commit, plus the commit ack
		// only under presumed abort.
		wantSends := 5
		if k == PresumedAbort {
			wantSends = 6
		}
		if env.sends != wantSends {
			t.Errorf("%v: sends = %d, want %d", k, env.sends, wantSends)
		}
	}
}

// TestFullyReadOnlyTransaction: when every cohort votes READ the presumed
// protocols have no phase two and presumed abort forces nothing at all
// (presumed commit already paid its collecting record).
func TestFullyReadOnlyTransaction(t *testing.T) {
	for _, k := range []Kind{PresumedAbort, PresumedCommit} {
		env := newTestEnv(2, true)
		txn := env.newTxn(true, true)
		if !runCommit(t, k, env, txn) {
			t.Fatalf("%v: commit failed", k)
		}
		if env.sends != 4 { // 2 prepares + 2 READ votes, nothing after
			t.Errorf("%v: sends = %d, want 4", k, env.sends)
		}
		wantForces := 0
		if k == PresumedCommit {
			wantForces = 1 // the collecting record
		}
		if env.forces != wantForces {
			t.Errorf("%v: forces = %d, want %d", k, env.forces, wantForces)
		}
		for i, m := range env.mgrs {
			if m.commits != 1 {
				t.Errorf("%v: node %d never released", k, i)
			}
		}
		if len(env.installs) != 0 {
			t.Errorf("%v: installs = %v for a read-only transaction", k, env.installs)
		}
	}
}

// TestDeferredSuppressesShortCircuit: when any cohort still has write
// permissions to acquire in the prepare phase, the transaction's lock
// point has not passed, so no cohort may release early — the READ vote is
// suppressed for the whole transaction.
func TestDeferredSuppressesShortCircuit(t *testing.T) {
	env := newTestEnv(2, false)
	txn := env.newTxn(true, false)
	txn.Cohorts[1].Deferred = []db.PageID{{File: 1, Page: 1}}
	if !runCommit(t, PresumedAbort, env, txn) {
		t.Fatal("commit failed")
	}
	if env.mgrs[0].commits != 1 {
		t.Fatal("read-only cohort never committed")
	}
	// The read-only cohort must have been committed by a phase-two
	// message, not at vote time: both cohorts get commit messages and both
	// acknowledge (presumed abort acks commits), after 2 prepares + 2
	// votes.
	if env.sends != 8 {
		t.Errorf("sends = %d, want 8 (no cohort short-circuited)", env.sends)
	}
}

// TestVoteNoAborts: a no vote fails the commit and the abort path cleans
// up every cohort exactly once.
func TestVoteNoAborts(t *testing.T) {
	for _, k := range Kinds() {
		env := newTestEnv(3, true)
		env.mgrs[1].prepareOK = false
		txn := env.newTxn()
		if runCommit(t, k, env, txn) {
			t.Fatalf("%v: committed despite a no vote", k)
		}
		for i, m := range env.mgrs {
			if m.aborts != 1 {
				t.Errorf("%v: node %d aborts = %d, want 1", k, i, m.aborts)
			}
			if m.commits != 0 {
				t.Errorf("%v: node %d committed during a failed attempt", k, i)
			}
		}
		if txn.Meta.State != cc.Finished {
			t.Errorf("%v: state = %v, want Finished", k, txn.Meta.State)
		}
		if env.records != 0 || len(env.installs) != 0 {
			t.Errorf("%v: auditor or installs reached on the abort path", k)
		}
	}
}

// TestAbortSignalDuringVotes: an abort notice that arrives while votes are
// being collected fails the prepare phase immediately.
func TestAbortSignalDuringVotes(t *testing.T) {
	for _, k := range Kinds() {
		env := newTestEnv(2, false)
		txn := env.newTxn()
		txn.Mail.Send(testAbortSignal{})
		if runCommit(t, k, env, txn) {
			t.Fatalf("%v: committed past an abort signal", k)
		}
	}
}

type testAbortSignal struct{}

func (testAbortSignal) CommitAbortSignal() {}

// TestAbortRacedBehindLastVote: an abort requested after the votes are in
// but before the decision (e.g. while the commit record is being forced)
// must win — the attempt aborts.
func TestAbortRacedBehindLastVote(t *testing.T) {
	for _, k := range Kinds() {
		env := newTestEnv(2, true)
		txn := env.newTxn()
		// The last cohort's prepare sneaks the abort request in: it is
		// observed only after vote collection, at the pre-decision checks.
		env.mgrs[1].onPrepare = func() { txn.Meta.AbortRequested = true }
		if runCommit(t, k, env, txn) {
			t.Fatalf("%v: committed despite a pre-decision abort request", k)
		}
		if txn.Meta.State != cc.Finished {
			t.Errorf("%v: state = %v, want Finished", k, txn.Meta.State)
		}
	}
}

// TestAbortPathCosts pins the abort fan-out per variant for N loaded
// cohorts with logging: centralized sends 2N (abort + ack) and forces
// nothing; presumed abort sends N and forces nothing; presumed commit
// sends 2N and forces N abort records, all attributed to the abort path.
func TestAbortPathCosts(t *testing.T) {
	const n = 3
	cases := []struct {
		kind        Kind
		sends       int
		abortForces int
	}{
		{CentralizedTwoPC, 2 * n, 0},
		{PresumedAbort, n, 0},
		{PresumedCommit, 2 * n, n},
	}
	for _, tc := range cases {
		env := newTestEnv(n, true)
		txn := env.newTxn()
		runAbort(t, tc.kind, env, txn)
		if env.sends != tc.sends {
			t.Errorf("%v: sends = %d, want %d", tc.kind, env.sends, tc.sends)
		}
		if env.forces != tc.abortForces || env.abortForces != tc.abortForces {
			t.Errorf("%v: forces = %d (%d abort), want %d", tc.kind, env.forces, env.abortForces, tc.abortForces)
		}
		for i, m := range env.mgrs {
			if m.aborts != 1 {
				t.Errorf("%v: node %d aborts = %d, want 1", tc.kind, i, m.aborts)
			}
		}
		if txn.Meta.State != cc.Finished {
			t.Errorf("%v: state = %v, want Finished", tc.kind, txn.Meta.State)
		}
		if len(env.decided) != 1 || env.decided[0] {
			t.Errorf("%v: decided = %v, want one abort decision", tc.kind, env.decided)
		}
	}
}

// TestPartialLoadAbort: aborting with only some cohorts loaded must fan
// out to exactly the loaded prefix.
func TestPartialLoadAbort(t *testing.T) {
	env := newTestEnv(3, false)
	txn := env.newTxn()
	proto, err := New(CentralizedTwoPC)
	if err != nil {
		t.Fatal(err)
	}
	env.s.Spawn("coordinator", func(p *sim.Proc) {
		txn.Meta.AbortRequested = true
		proto.Abort(p, env, txn, 2)
	})
	env.s.Run(1000)
	if env.mgrs[0].aborts != 1 || env.mgrs[1].aborts != 1 || env.mgrs[2].aborts != 0 {
		t.Errorf("abort fan-out hit the wrong cohorts: %d/%d/%d",
			env.mgrs[0].aborts, env.mgrs[1].aborts, env.mgrs[2].aborts)
	}
	if env.sends != 4 {
		t.Errorf("sends = %d, want 4 (two aborts + two acks)", env.sends)
	}
}
