package audit

import (
	"strings"
	"testing"

	"ddbm/internal/db"
)

func page(n int) db.PageID { return db.PageID{File: 0, Page: n} }

func TestCleanHistory(t *testing.T) {
	recs := []TxnRecord{
		{ID: 1, Stamp: 10, Writes: []db.PageID{page(1)}},
		{ID: 2, Stamp: 20, Reads: []ReadObs{{Page: page(1), Saw: 10}}},
		{ID: 3, Stamp: 30, Reads: []ReadObs{{Page: page(1), Saw: 10}}, Writes: []db.PageID{page(1)}},
		{ID: 4, Stamp: 40, Reads: []ReadObs{{Page: page(1), Saw: 30}}},
	}
	if v := Check(recs); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestStaleReadDetected(t *testing.T) {
	recs := []TxnRecord{
		{ID: 1, Stamp: 10, Writes: []db.PageID{page(1)}},
		// Txn 2 serialized after the write but observed the initial version.
		{ID: 2, Stamp: 20, Reads: []ReadObs{{Page: page(1), Saw: 0}}},
	}
	v := Check(recs)
	if len(v) != 1 {
		t.Fatalf("violations %v, want exactly one", v)
	}
	if v[0].Txn != 2 || v[0].Want != 10 || v[0].Saw != 0 {
		t.Fatalf("violation detail %+v", v[0])
	}
	if !strings.Contains(v[0].String(), "txn 2") {
		t.Errorf("violation string %q", v[0].String())
	}
}

func TestFutureReadDetected(t *testing.T) {
	// A transaction serialized BEFORE a write must not have seen it.
	recs := []TxnRecord{
		{ID: 1, Stamp: 20, Writes: []db.PageID{page(1)}},
		{ID: 2, Stamp: 10, Reads: []ReadObs{{Page: page(1), Saw: 20}}},
	}
	if v := Check(recs); len(v) != 1 {
		t.Fatalf("violations %v, want one (read from the future)", v)
	}
}

func TestThomasRuleInReplay(t *testing.T) {
	// An older blind write installed after a newer one does not regress the
	// version; a later reader sees the newer one.
	recs := []TxnRecord{
		{ID: 1, Stamp: 30, Writes: []db.PageID{page(1)}},
		{ID: 2, Stamp: 20, Writes: []db.PageID{page(1)}}, // Thomas-skipped
		{ID: 3, Stamp: 40, Reads: []ReadObs{{Page: page(1), Saw: 30}}},
	}
	if v := Check(recs); len(v) != 0 {
		t.Fatalf("Thomas-rule history flagged: %v", v)
	}
}

func TestUnsortedInputHandled(t *testing.T) {
	// Records arrive in commit order, not stamp order; Check must sort.
	recs := []TxnRecord{
		{ID: 2, Stamp: 20, Reads: []ReadObs{{Page: page(1), Saw: 10}}},
		{ID: 1, Stamp: 10, Writes: []db.PageID{page(1)}},
	}
	if v := Check(recs); len(v) != 0 {
		t.Fatalf("sorted replay failed: %v", v)
	}
}

func TestEmptyHistory(t *testing.T) {
	if v := Check(nil); len(v) != 0 {
		t.Fatal("empty history flagged")
	}
}

func TestRecorderFlow(t *testing.T) {
	r := NewRecorder()
	if r.ObserveRead(page(1), 0) != 0 {
		t.Fatal("initial version not 0")
	}
	r.Install(page(1), 0, 10)
	if r.ObserveRead(page(1), 0) != 10 {
		t.Fatal("install not visible")
	}
	r.Install(page(1), 0, 5) // Thomas: no regress
	if r.ObserveRead(page(1), 0) != 10 {
		t.Fatal("older install regressed the version")
	}
	// Copies are tracked independently: node 1 hasn't installed yet.
	if r.ObserveRead(page(1), 1) != 0 {
		t.Fatal("install leaked across copies")
	}
	r.Install(page(1), 1, 10)
	if r.ObserveRead(page(1), 1) != 10 {
		t.Fatal("copy install not visible")
	}
	r.Commit(TxnRecord{ID: 1, Stamp: 10, Writes: []db.PageID{page(1)}})
	r.Commit(TxnRecord{ID: 2, Stamp: 20, Reads: []ReadObs{{Page: page(1), Saw: 10}}})
	if len(r.Records()) != 2 {
		t.Fatalf("%d records", len(r.Records()))
	}
	if v := r.Check(); len(v) != 0 {
		t.Fatalf("recorder check flagged clean history: %v", v)
	}
}

func TestMultiPageInterleaving(t *testing.T) {
	recs := []TxnRecord{
		{ID: 1, Stamp: 10, Writes: []db.PageID{page(1), page(2)}},
		{ID: 2, Stamp: 20,
			Reads:  []ReadObs{{Page: page(1), Saw: 10}, {Page: page(2), Saw: 10}},
			Writes: []db.PageID{page(2)}},
		{ID: 3, Stamp: 30,
			Reads: []ReadObs{{Page: page(1), Saw: 10}, {Page: page(2), Saw: 20}}},
	}
	if v := Check(recs); len(v) != 0 {
		t.Fatalf("multi-page history flagged: %v", v)
	}
	// Corrupt one observation.
	recs[2].Reads[1].Saw = 10
	if v := Check(recs); len(v) != 1 {
		t.Fatalf("corrupted observation not flagged: %v", v)
	}
}
