package audit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ddbm/internal/db"
)

// genSerialHistory builds a history by actually executing transactions one
// at a time in stamp order (so it is serializable by construction), then
// returns the records in a shuffled order.
func genSerialHistory(r *rand.Rand, nTxns, nPages int) []TxnRecord {
	version := make(map[db.PageID]int64)
	var recs []TxnRecord
	for i := 0; i < nTxns; i++ {
		stamp := int64((i + 1) * 10)
		rec := TxnRecord{ID: int64(i + 1), Stamp: stamp}
		nOps := r.Intn(4) + 1
		for j := 0; j < nOps; j++ {
			p := db.PageID{File: 0, Page: r.Intn(nPages)}
			rec.Reads = append(rec.Reads, ReadObs{Page: p, Saw: version[p]})
			if r.Intn(2) == 0 {
				rec.Writes = append(rec.Writes, p)
			}
		}
		for _, w := range rec.Writes {
			if stamp > version[w] {
				version[w] = stamp
			}
		}
		recs = append(recs, rec)
	}
	r.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

func TestSerialHistoriesAlwaysPassProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := genSerialHistory(r, r.Intn(30)+2, r.Intn(5)+1)
		return len(Check(recs)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptedHistoriesCaughtProperty(t *testing.T) {
	// Property: corrupt one read observation of a page that has at least
	// one earlier writer, and the checker flags something.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := genSerialHistory(r, 20, 2)
		// Find a read whose expected value differs from some corruption.
		for i := range recs {
			for j := range recs[i].Reads {
				recs[i].Reads[j].Saw += 7 // no stamp is ever ≡ 7 mod 10
				return len(Check(recs)) > 0
			}
		}
		return true // no reads generated: vacuous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
