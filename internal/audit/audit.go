// Package audit verifies serializability of simulation runs. Every
// concurrency control algorithm in the study promises equivalence to a
// serial order given by a per-transaction stamp — commit order for the
// strict locking algorithms (the commit timestamp is assigned when the
// commit protocol starts, and lock conflicts force conflicting
// transactions' stamps into acquisition order), the attempt timestamp for
// basic timestamp ordering, and the certification timestamp for the
// optimistic algorithm.
//
// The machine records, for each committed transaction, the stamp, the
// version (writer stamp) each read actually observed, and the pages
// written. Check replays the committed transactions in stamp order,
// maintaining page versions under the Thomas write rule, and reports every
// read that observed a version other than the one the serial order
// implies. A clean run is conflict-equivalent to the stamp order; a
// violation is a concrete serializability anomaly.
package audit

import (
	"cmp"
	"fmt"
	"slices"

	"ddbm/internal/db"
)

// ReadObs is one observed read: the page and the stamp of the writer whose
// version was current when the read was granted (0 = the initial version).
type ReadObs struct {
	Page db.PageID
	Saw  int64
}

// TxnRecord describes one committed transaction.
type TxnRecord struct {
	// ID is the transaction identifier (diagnostics only).
	ID int64
	// Stamp is the expected serialization stamp; stamps are unique.
	Stamp int64
	// Reads lists every read observation (one per page actually read).
	Reads []ReadObs
	// Writes lists the updated pages.
	Writes []db.PageID
}

// Violation is one serializability anomaly: transaction Txn read version
// Saw of Page where the serial order implies it should have seen Want.
type Violation struct {
	Txn   int64
	Stamp int64
	Page  db.PageID
	Saw   int64
	Want  int64
}

func (v Violation) String() string {
	return fmt.Sprintf("txn %d (stamp %d) read %v version %d, serial order implies %d",
		v.Txn, v.Stamp, v.Page, v.Saw, v.Want)
}

// Check replays the committed transactions in stamp order and returns all
// read anomalies. A nil/empty result certifies the history is equivalent
// to the serial execution in stamp order.
func Check(records []TxnRecord) []Violation {
	sorted := make([]*TxnRecord, len(records))
	for i := range records {
		sorted[i] = &records[i]
	}
	slices.SortFunc(sorted, func(a, b *TxnRecord) int { return cmp.Compare(a.Stamp, b.Stamp) })

	version := make(map[db.PageID]int64)
	var violations []Violation
	for _, t := range sorted {
		for _, r := range t.Reads {
			if cur := version[r.Page]; cur != r.Saw {
				violations = append(violations, Violation{
					Txn: t.ID, Stamp: t.Stamp, Page: r.Page, Saw: r.Saw, Want: cur,
				})
			}
		}
		for _, w := range t.Writes {
			// Thomas write rule: an older write never regresses the version.
			if t.Stamp > version[w] {
				version[w] = t.Stamp
			}
		}
	}
	return violations
}

// Recorder accumulates the machine's observations during a run. It applies
// the same install rule the algorithms use (a write only becomes the
// current version if its stamp exceeds the installed one), so the observed
// "version read" matches what the schedulers exposed. State is kept per
// physical copy — (page, node) — because with replicated data a write
// installs at each copy at a slightly different instant; reads observe the
// copy they actually touched. Under read-one/write-all every copy sees the
// same logical write sequence, so the logical replay in Check stays valid.
type Recorder struct {
	installed map[copyKey]int64
	records   []TxnRecord
}

type copyKey struct {
	page db.PageID
	node int
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{installed: make(map[copyKey]int64)}
}

// ObserveRead returns the stamp of the currently installed version of the
// copy of page at node (what a read granted right now sees there).
func (r *Recorder) ObserveRead(page db.PageID, node int) int64 {
	return r.installed[copyKey{page, node}]
}

// Install makes stamp the current version of the copy of page at node,
// under the Thomas rule. It must be called at the same instant the
// algorithm installs the write (COMMIT processing at that node).
func (r *Recorder) Install(page db.PageID, node int, stamp int64) {
	k := copyKey{page, node}
	if stamp > r.installed[k] {
		r.installed[k] = stamp
	}
}

// Commit records a committed transaction.
func (r *Recorder) Commit(rec TxnRecord) {
	r.records = append(r.records, rec)
}

// Records returns everything recorded so far.
func (r *Recorder) Records() []TxnRecord { return r.records }

// Check replays the recorded history.
func (r *Recorder) Check() []Violation { return Check(r.records) }
