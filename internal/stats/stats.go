// Package stats provides the small statistics toolkit used by the
// simulator: streaming means/variances, batch-means confidence intervals,
// and time-weighted averages for utilization-style metrics.
package stats

import "math"

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 with no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 with no observations).
func (w *Welford) Max() float64 { return w.max }

// Reset discards all observations.
func (w *Welford) Reset() { *w = Welford{} }

// BatchMeans estimates a confidence interval for a steady-state mean using
// the method of non-overlapping batch means.
type BatchMeans struct {
	batchSize int64
	cur       Welford
	batches   Welford
}

// NewBatchMeans creates an estimator with the given batch size (observations
// per batch). Sizes below 1 are treated as 1.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize < 1 {
		batchSize = 1
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.Count() >= b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.Count() }

// Mean returns the grand mean over completed batches; if no batch has
// completed it falls back to the running mean.
func (b *BatchMeans) Mean() float64 {
	if b.batches.Count() == 0 {
		return b.cur.Mean()
	}
	return b.batches.Mean()
}

// HalfWidth95 returns the approximate 95% confidence half-width using a
// normal critical value (adequate for the >=10 batches we use in practice).
// It returns 0 when fewer than 2 batches exist.
func (b *BatchMeans) HalfWidth95() float64 {
	n := b.batches.Count()
	if n < 2 {
		return 0
	}
	return 1.96 * b.batches.StdDev() / math.Sqrt(float64(n))
}

// TimeWeighted tracks the time-average of a piecewise-constant quantity,
// e.g. queue length or number of active transactions.
type TimeWeighted struct {
	lastT    float64
	value    float64
	area     float64
	started  bool
	startT   float64
	maxValue float64
}

// Set records that the quantity changed to v at time t.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.startT = t
	} else {
		tw.area += tw.value * (t - tw.lastT)
	}
	tw.lastT = t
	tw.value = v
	if v > tw.maxValue {
		tw.maxValue = v
	}
}

// Mean returns the time average over [start, t].
func (tw *TimeWeighted) Mean(t float64) float64 {
	if !tw.started || t <= tw.startT {
		return 0
	}
	area := tw.area + tw.value*(t-tw.lastT)
	return area / (t - tw.startT)
}

// Max returns the largest value observed.
func (tw *TimeWeighted) Max() float64 { return tw.maxValue }

// ResetAt restarts accumulation at time t keeping the current value
// (used to discard the warmup period).
func (tw *TimeWeighted) ResetAt(t float64) {
	if tw.started {
		tw.lastT = t
	} else {
		tw.lastT = t
		tw.started = true
	}
	tw.startT = t
	tw.area = 0
	tw.maxValue = tw.value
}

// Value returns the current value of the tracked quantity.
func (tw *TimeWeighted) Value() float64 { return tw.value }
