package stats

import "math"

// logHistBuckets is the fixed bucket count of LogHist. Bucket i covers
// values in [2^(i+logHistMinExp-1), 2^(i+logHistMinExp)); with a minimum
// exponent of -31 the range spans ~5e-10 ms to ~4e9 ms, far beyond any
// per-phase time the model produces. Values at or below zero land in
// bucket 0, values beyond the range clamp to the end buckets.
const (
	logHistBuckets = 64
	logHistMinExp  = -31
)

// LogHist is a fixed-size base-2 logarithmic histogram of non-negative
// millisecond values. It is a plain value type with no pointers: Add is
// pure arithmetic on an embedded array (no allocation, no wall-clock),
// so per-commit recording stays on the allocation-free transaction path,
// and quantiles are deterministic bucket upper bounds.
type LogHist struct {
	count   int64
	sum     float64
	buckets [logHistBuckets]int64
}

// bucketOf maps a value to its bucket index.
//
//ddbmlint:hotpath histogram bucketing on the per-commit recording path
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	// Frexp: v = frac * 2^exp with frac in [0.5, 1), so v < 2^exp — exp
	// is the bucket's upper-bound exponent.
	_, exp := math.Frexp(v)
	i := exp - logHistMinExp
	if i < 0 {
		return 0
	}
	if i >= logHistBuckets {
		return logHistBuckets - 1
	}
	return i
}

// Add records one value.
//
//ddbmlint:hotpath per-commit phase recording pinned by TestTxnPathAllocFree
func (h *LogHist) Add(v float64) {
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Merge folds another histogram into this one.
func (h *LogHist) Merge(o *LogHist) {
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of recorded values.
func (h *LogHist) Count() int64 { return h.count }

// Sum returns the total of the recorded values.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the exact mean of the recorded values (the sum is kept
// outside the buckets, so the mean carries no quantization error).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns a deterministic upper bound for the q-quantile (q in
// [0,1]): the upper edge of the first bucket whose cumulative count
// reaches ceil(q * count). Bucket edges are exact powers of two, so the
// bound is within a factor of two of the true order statistic.
func (h *LogHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			return math.Ldexp(1, i+logHistMinExp)
		}
	}
	return math.Ldexp(1, logHistBuckets-1+logHistMinExp)
}
