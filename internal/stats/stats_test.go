package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("count %d, want 8", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("mean %v, want 5", w.Mean())
	}
	// Unbiased sample variance of this classic data set is 32/7.
	if !almost(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("empty Welford should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single obs: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(10)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		variance := ss / float64(len(raw)-1)
		return almost(w.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almost(w.Variance(), variance, 1e-6*(1+variance))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMeansMean(t *testing.T) {
	b := NewBatchMeans(10)
	r := rand.New(rand.NewSource(1))
	var sum float64
	const n = 1000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()*2 + 50
		b.Add(x)
		sum += x
	}
	if b.Batches() != 100 {
		t.Errorf("batches %d, want 100", b.Batches())
	}
	if !almost(b.Mean(), sum/n, 1e-9) {
		t.Errorf("batch mean %v vs true mean %v", b.Mean(), sum/n)
	}
	hw := b.HalfWidth95()
	if hw <= 0 || hw > 1 {
		t.Errorf("suspicious half-width %v for iid normal data", hw)
	}
	if b.Mean()-hw > 50 || b.Mean()+hw < 50 {
		// With 95% confidence this fails rarely; the fixed seed makes it
		// deterministic.
		t.Errorf("CI [%v, %v] misses true mean 50", b.Mean()-hw, b.Mean()+hw)
	}
}

func TestBatchMeansFallback(t *testing.T) {
	b := NewBatchMeans(100)
	b.Add(4)
	b.Add(6)
	if b.Mean() != 5 {
		t.Errorf("fallback mean %v, want 5", b.Mean())
	}
	if b.HalfWidth95() != 0 {
		t.Errorf("half-width with <2 batches should be 0")
	}
}

func TestBatchMeansMinimumSize(t *testing.T) {
	b := NewBatchMeans(0)
	b.Add(1)
	if b.Batches() != 1 {
		t.Errorf("batch size clamp failed: %d batches", b.Batches())
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 5)
	if !almost(tw.Mean(10), 5, 1e-12) {
		t.Errorf("constant mean %v, want 5", tw.Mean(10))
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(10, 4) // 0 for [0,10)
	tw.Set(30, 2) // 4 for [10,30)
	// at t=40: (0*10 + 4*20 + 2*10)/40 = 100/40
	if !almost(tw.Mean(40), 2.5, 1e-12) {
		t.Errorf("step mean %v, want 2.5", tw.Mean(40))
	}
	if tw.Max() != 4 {
		t.Errorf("max %v, want 4", tw.Max())
	}
	if tw.Value() != 2 {
		t.Errorf("value %v, want 2", tw.Value())
	}
}

func TestTimeWeightedResetAt(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 100)
	tw.Set(10, 2)
	tw.ResetAt(20)
	tw.Set(30, 4)
	// After reset: 2 for [20,30), 4 for [30,40) -> mean 3 at t=40.
	if !almost(tw.Mean(40), 3, 1e-12) {
		t.Errorf("post-reset mean %v, want 3", tw.Mean(40))
	}
	if tw.Max() != 4 {
		t.Errorf("post-reset max %v, want 4 (old max discarded)", tw.Max())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean(10) != 0 {
		t.Error("empty time-weighted mean should be 0")
	}
}

func TestTimeWeightedMeanIsBoundedProperty(t *testing.T) {
	// Property: the time average lies within [min, max] of the set values.
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var tw TimeWeighted
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			x := float64(v)
			tw.Set(float64(i), x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		m := tw.Mean(float64(len(vals)))
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
