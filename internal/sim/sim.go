// Package sim implements a process-oriented discrete-event simulation
// kernel, the Go substitute for the DeNet simulation language in which the
// original Carey/Livny simulator was written.
//
// A Sim owns a virtual clock and an event queue. Simulation "processes" are
// goroutines that run strictly one at a time: the scheduler hands control to
// a process and blocks until the process either finishes or blocks itself
// (Delay, Suspend, mailbox receive). Events scheduled for the same instant
// fire in FIFO order, and all randomness flows through a single seeded
// source, so every run is fully deterministic.
//
// The kernel hot path is allocation-free in steady state: fired and
// canceled callback events are recycled through a free-list, and every
// process embeds its own resume event, so Delay/Resume/SpawnAt and mailbox
// wakeups neither allocate an Event nor a closure. See DESIGN.md ("Kernel
// performance") for the invariants this preserves.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is simulated time in milliseconds.
type Time = float64

// Event is a scheduled callback. It can be canceled before it fires.
//
// Recycling contract: once an event has fired or been canceled, its handle
// is dead — the simulator may reuse the struct for a later Schedule call.
// Holders must drop their reference after the event fires or after they
// cancel it (calling Cancel again on a dead handle before the simulator
// reuses it is still a harmless no-op). All in-tree callers either discard
// the handle immediately or nil their reference on fire/cancel.
type Event struct {
	at       Time
	seq      uint64
	fn       func() // callback events; nil for process-resume events
	proc     *Proc  // process-resume events fire by resuming this process
	index    int    // heap index, -1 while not queued
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// At returns the simulated time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Sim is a discrete-event simulator instance.
type Sim struct {
	now        Time
	events     eventQueue
	free       []*Event // recycled callback events
	seq        uint64
	dispatched uint64
	seed       int64
	rng        *rand.Rand
	yield      chan struct{}
	cur        *Proc
	procs      map[*Proc]struct{}
	idle       []*Proc // finished processes parked for goroutine reuse
	stopped    bool
	nprocs     uint64 // total processes ever spawned (for naming/debug)
	failure    any    // panic value escaped from a process body
}

// New creates a simulator with the given random seed.
func New(seed int64) *Sim {
	return &Sim{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Seed returns the seed the simulator was created with.
func (s *Sim) Seed() int64 { return s.seed }

// Substream returns an independent deterministic random source derived from
// the simulator's seed, a stream name, and a numeric id. Substreams let a
// subsystem (the fault injector, for one) consume randomness without
// perturbing the main stream: the workload draws from Rand() in exactly the
// same order whether or not anyone draws from a substream. The derivation
// is a pure function of (seed, name, id), so runs stay reproducible.
func (s *Sim) Substream(name string, id int64) *rand.Rand {
	// FNV-1a over the name, then splitmix64-style finalization folding in
	// the seed and id — cheap, stateless, and well-spread for adjacent ids.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(s.seed) * 0x9e3779b97f4a7c15
	h ^= uint64(id) * 0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// Now returns the current simulated time in milliseconds.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from simulation processes and event callbacks.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsDispatched returns the number of events fired so far — the kernel's
// fundamental unit of work, used by the perf harness to report events/sec.
func (s *Sim) EventsDispatched() uint64 { return s.dispatched }

// allocEvent takes a recycled callback event from the free-list or makes a
// fresh one. Fields left over from a previous life are reset.
func (s *Sim) allocEvent() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.canceled = false
		return e
	}
	return &Event{index: -1} //ddbmlint:allow hotpath-alloc event pool growth to the in-flight high-water mark
}

// releaseEvent returns a fired or canceled callback event to the free-list.
// Process-resume events are embedded in their Proc and never pass through
// here.
func (s *Sim) releaseEvent(e *Event) {
	e.fn = nil
	s.free = append(s.free, e) //ddbmlint:allow hotpath-alloc event free-list push; capacity reaches the in-flight high-water mark
}

// enqueue stamps the event with the next sequence number and queues it.
// The seq counter advances exactly once per scheduling call, in call order,
// which (together with the total (at, seq) heap order) makes event dispatch
// order a pure function of the call sequence.
func (s *Sim) enqueue(e *Event, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now)) //ddbmlint:allow hotpath-alloc kernel-bug panic path; the run is already dead
	}
	s.seq++
	e.at = at
	e.seq = s.seq
	s.events.push(e)
}

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) Schedule(at Time, fn func()) *Event {
	e := s.allocEvent()
	e.fn = fn
	s.enqueue(e, at)
	return e
}

// After registers fn to run d milliseconds from now.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// scheduleProc queues p's embedded resume event: the closure- and
// allocation-free path behind Delay, Resume, SpawnAt and mailbox wakeups.
// A process blocks in at most one place, so one embedded event suffices;
// scheduling it twice is a kernel-usage bug and panics loudly instead of
// corrupting the queue.
func (s *Sim) scheduleProc(at Time, p *Proc) {
	if p.ev.index >= 0 {
		panic(fmt.Sprintf("sim: process %q already has a pending resume", p.name)) //ddbmlint:allow hotpath-alloc kernel-bug panic path; the run is already dead
	}
	p.ev.canceled = false
	s.enqueue(&p.ev, at)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op (but see the recycling contract on
// Event: a dead handle must be dropped promptly).
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	s.events.remove(e.index)
	if e.proc == nil {
		s.releaseEvent(e)
	}
}

// fire dispatches one popped event: callback events are recycled before
// their function runs (so a fn that schedules reuses the same struct),
// resume events hand control to their process.
func (s *Sim) fire(e *Event) {
	s.now = e.at
	s.dispatched++
	if p := e.proc; p != nil {
		s.resume(p)
		return
	}
	fn := e.fn
	s.releaseEvent(e)
	fn()
}

// Run executes events until the clock reaches end (exclusive) or the event
// queue drains, then terminates all live processes. It returns the final
// simulated time.
func (s *Sim) Run(end Time) Time {
	for s.events.len() > 0 {
		e := s.events.min()
		if e.at >= end {
			break
		}
		s.events.pop()
		if e.canceled {
			continue
		}
		s.fire(e)
	}
	if s.now < end {
		s.now = end
	}
	s.Shutdown()
	return s.now
}

// Step executes the single next event if one exists before end; it reports
// whether an event fired. Useful for tests that need fine-grained control.
func (s *Sim) Step(end Time) bool {
	for s.events.len() > 0 {
		e := s.events.min()
		if e.at >= end {
			return false
		}
		s.events.pop()
		if e.canceled {
			continue
		}
		s.fire(e)
		return true
	}
	return false
}

// Shutdown kills every live process so their goroutines exit. It is called
// automatically at the end of Run and is idempotent.
func (s *Sim) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	//ddbmlint:ordered the clock is stopped and no further events fire; each kill only unwinds its own parked goroutine, so kill order is unobservable
	for p := range s.procs {
		if p.parked {
			p.kill()
		}
	}
	// Killed and finished bodies recycle their goroutines into the idle
	// pool; dismiss them too so no goroutine outlives the simulation.
	for i, p := range s.idle {
		s.idle[i] = nil
		p.wake <- wakeSignal{kill: true}
		<-s.yield
	}
	s.idle = s.idle[:0]
}

// LiveProcs returns the number of processes that have started but not yet
// finished. After Shutdown it reports the processes that leaked (should be 0).
func (s *Sim) LiveProcs() int { return len(s.procs) }

// Kill terminates a live process mid-run — the crash-stop primitive. The
// victim unwinds via the kill sentinel exactly as at Shutdown, and its
// goroutine parks in the idle pool for reuse by a later Spawn. A pending
// resume (Delay, SpawnAt) is canceled first so the embedded event never
// fires for the dead process. Killing a finished process is a no-op;
// killing the currently running process is a kernel-usage bug.
func (s *Sim) Kill(p *Proc) {
	if p == nil || p.done {
		return
	}
	if p == s.cur {
		panic(fmt.Sprintf("sim: process %q cannot kill itself", p.name))
	}
	if p.ev.index >= 0 {
		s.Cancel(&p.ev)
	}
	p.kill()
}

// killed is the sentinel panic value used to unwind terminated processes.
type killed struct{}

type wakeSignal struct {
	kill bool
}

// Proc is a simulation process: a goroutine interleaved with the scheduler
// so that exactly one process runs at any moment. Finished processes park
// their goroutine in the simulator's idle pool and are reused by later
// Spawn calls, so steady-state process churn (one cohort process per
// transaction cohort) allocates neither a Proc, a channel, nor a goroutine
// stack.
type Proc struct {
	sim    *Sim
	name   string
	wake   chan wakeSignal
	parked bool // true while blocked waiting for a wake signal
	done   bool
	fn     func(p *Proc) // body to run at the next start wake
	// ev is the process's resume event, reused for every Delay/Resume/start
	// so process switching never allocates. A process is blocked in at most
	// one place at a time, so a single embedded event is always enough.
	ev Event
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn creates a process that starts running at the current simulated time
// (after the current event completes).
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt creates a process that starts running at time at. A goroutine
// from the idle pool is reused when one is available; only the pool-growth
// path allocates.
//
//ddbmlint:hotpath steady-state cohort spawn pinned by TestTxnPathAllocFree
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	s.nprocs++
	if n := len(s.idle); n > 0 {
		p := s.idle[n-1]
		s.idle[n-1] = nil
		s.idle = s.idle[:n-1]
		p.name, p.fn, p.done = name, fn, false
		s.procs[p] = struct{}{}
		s.scheduleProc(at, p)
		return p
	}
	p := &Proc{sim: s, name: name, wake: make(chan wakeSignal), fn: fn} //ddbmlint:allow hotpath-alloc pool growth: one Proc + channel + goroutine per high-water concurrent process
	p.ev.proc = p
	p.ev.index = -1
	s.procs[p] = struct{}{}
	p.parked = true
	go p.top() //ddbmlint:allow hotpath-alloc pool growth: goroutine spawned once per high-water concurrent process
	s.scheduleProc(at, p)
	return p
}

// top is a process goroutine's outer loop: run one body per start wake,
// then park the goroutine in the simulator's idle pool for the next Spawn.
// A kill wake dismisses the goroutine for good (used for processes parked
// mid-body at Shutdown, and for idle-pool draining).
func (p *Proc) top() {
	s := p.sim
	for {
		sig := <-p.wake
		p.parked = false
		if sig.kill {
			p.done = true
			delete(s.procs, p)
			s.yield <- struct{}{}
			return
		}
		p.runBody()
		p.done = true
		delete(s.procs, p)
		p.fn = nil
		p.parked = true
		s.idle = append(s.idle, p) //ddbmlint:allow hotpath-alloc idle pool push; capacity reaches the concurrent-process high-water mark
		s.yield <- struct{}{}
	}
}

// runBody executes the process body, converting the kill sentinel back
// into a normal return and handing real panics to the scheduler so they
// surface in the Run caller.
func (p *Proc) runBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				p.sim.failure = r
			}
		}
	}()
	p.fn(p) //ddbmlint:allow hotpath-alloc process body dispatch; bodies are pre-bound by their owners and carry their own pins
}

// resume hands control to p and waits for it to block or finish.
func (s *Sim) resume(p *Proc) {
	if p.done {
		return
	}
	prev := s.cur
	s.cur = p
	p.wake <- wakeSignal{}
	<-s.yield
	s.cur = prev
	if s.failure != nil {
		f := s.failure
		s.failure = nil
		panic(f)
	}
}

// kill unwinds a parked process.
func (p *Proc) kill() {
	if p.done {
		return
	}
	p.wake <- wakeSignal{kill: true}
	<-p.sim.yield
}

// block parks the calling process until the scheduler wakes it.
func (p *Proc) block() {
	p.parked = true
	p.sim.yield <- struct{}{}
	sig := <-p.wake
	p.parked = false
	if sig.kill {
		panic(killed{}) //ddbmlint:allow hotpath-alloc shutdown-only kill sentinel
	}
}

// Delay suspends the process for d milliseconds of simulated time. Even a
// zero delay yields through the event queue so that same-time events retain
// FIFO fairness.
func (p *Proc) Delay(d Time) {
	if d < 0 {
		d = 0
	}
	p.sim.scheduleProc(p.sim.now+d, p)
	p.block()
}

// Suspend parks the process until another process or event calls Resume.
func (p *Proc) Suspend() {
	p.block()
}

// Resume schedules p to continue at the current simulated time. It must only
// be called for a process parked in Suspend (or a mailbox receive).
func (p *Proc) Resume() {
	p.sim.scheduleProc(p.sim.now, p)
}

// Hold is an alias for Delay matching DeNet terminology.
func (p *Proc) Hold(d Time) { p.Delay(d) }
