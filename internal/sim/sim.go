// Package sim implements a process-oriented discrete-event simulation
// kernel, the Go substitute for the DeNet simulation language in which the
// original Carey/Livny simulator was written.
//
// A Sim owns a virtual clock and an event queue. Simulation "processes" are
// goroutines that run strictly one at a time: the scheduler hands control to
// a process and blocks until the process either finishes or blocks itself
// (Delay, Suspend, mailbox receive). Events scheduled for the same instant
// fire in FIFO order, and all randomness flows through a single seeded
// source, so every run is fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in milliseconds.
type Time = float64

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped or canceled
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// At returns the simulated time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	yield   chan struct{}
	cur     *Proc
	procs   map[*Proc]struct{}
	stopped bool
	nprocs  uint64 // total processes ever spawned (for naming/debug)
	failure any    // panic value escaped from a process body
}

// New creates a simulator with the given random seed.
func New(seed int64) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time in milliseconds.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from simulation processes and event callbacks.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Sim) Schedule(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// After registers fn to run d milliseconds from now.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.events, e.index)
	e.index = -1
}

// Run executes events until the clock reaches end (exclusive) or the event
// queue drains, then terminates all live processes. It returns the final
// simulated time.
func (s *Sim) Run(end Time) Time {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at >= end {
			break
		}
		heap.Pop(&s.events)
		if e.canceled {
			continue
		}
		s.now = e.at
		e.fn()
	}
	if s.now < end {
		s.now = end
	}
	s.Shutdown()
	return s.now
}

// Step executes the single next event if one exists before end; it reports
// whether an event fired. Useful for tests that need fine-grained control.
func (s *Sim) Step(end Time) bool {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.at >= end {
			return false
		}
		heap.Pop(&s.events)
		if e.canceled {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Shutdown kills every live process so their goroutines exit. It is called
// automatically at the end of Run and is idempotent.
func (s *Sim) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	for p := range s.procs {
		if p.parked {
			p.kill()
		}
	}
}

// LiveProcs returns the number of processes that have started but not yet
// finished. After Shutdown it reports the processes that leaked (should be 0).
func (s *Sim) LiveProcs() int { return len(s.procs) }

// killed is the sentinel panic value used to unwind terminated processes.
type killed struct{}

type wakeSignal struct {
	kill bool
}

// Proc is a simulation process: a goroutine interleaved with the scheduler
// so that exactly one process runs at any moment.
type Proc struct {
	sim    *Sim
	name   string
	wake   chan wakeSignal
	parked bool // true while blocked waiting for a wake signal
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn creates a process that starts running at the current simulated time
// (after the current event completes).
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt creates a process that starts running at time at.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	s.nprocs++
	p := &Proc{sim: s, name: name, wake: make(chan wakeSignal)}
	s.procs[p] = struct{}{}
	p.parked = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					// A real bug in the process body: hand the panic to the
					// scheduler so it surfaces in the Run caller.
					s.failure = r
				}
			}
			p.done = true
			delete(s.procs, p)
			s.yield <- struct{}{}
		}()
		sig := <-p.wake
		p.parked = false
		if sig.kill {
			panic(killed{})
		}
		fn(p)
	}()
	s.Schedule(at, func() { s.resume(p) })
	return p
}

// resume hands control to p and waits for it to block or finish.
func (s *Sim) resume(p *Proc) {
	if p.done {
		return
	}
	prev := s.cur
	s.cur = p
	p.wake <- wakeSignal{}
	<-s.yield
	s.cur = prev
	if s.failure != nil {
		f := s.failure
		s.failure = nil
		panic(f)
	}
}

// kill unwinds a parked process.
func (p *Proc) kill() {
	if p.done {
		return
	}
	p.wake <- wakeSignal{kill: true}
	<-p.sim.yield
}

// block parks the calling process until the scheduler wakes it.
func (p *Proc) block() {
	p.parked = true
	p.sim.yield <- struct{}{}
	sig := <-p.wake
	p.parked = false
	if sig.kill {
		panic(killed{})
	}
}

// Delay suspends the process for d milliseconds of simulated time.
func (p *Proc) Delay(d Time) {
	if d <= 0 {
		// Even a zero delay must yield through the event queue so that
		// same-time events retain FIFO fairness.
		d = 0
	}
	p.sim.After(d, func() { p.sim.resume(p) })
	p.block()
}

// Suspend parks the process until another process or event calls Resume.
func (p *Proc) Suspend() {
	p.block()
}

// Resume schedules p to continue at the current simulated time. It must only
// be called for a process parked in Suspend (or a mailbox receive).
func (p *Proc) Resume() {
	p.sim.Schedule(p.sim.now, func() { p.sim.resume(p) })
}

// Hold is an alias for Delay matching DeNet terminology.
func (p *Proc) Hold(d Time) { p.Delay(d) }
