package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueuePopsInTotalOrder pushes events with heavily-colliding
// timestamps and checks pops come out in exact (at, seq) order — the total
// order that makes dispatch independent of heap arity.
func TestEventQueuePopsInTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := rng.Intn(200) + 1
		events := make([]*Event, n)
		for i := 0; i < n; i++ {
			events[i] = &Event{at: Time(rng.Intn(10)), seq: uint64(i + 1), index: -1}
			q.push(events[i])
		}
		want := append([]*Event(nil), events...)
		sort.Slice(want, func(i, j int) bool { return eventBefore(want[i], want[j]) })
		for i, w := range want {
			if q.len() != n-i {
				t.Fatalf("trial %d: len %d, want %d", trial, q.len(), n-i)
			}
			if got := q.min(); got != w {
				t.Fatalf("trial %d pop %d: got (at=%v seq=%d), want (at=%v seq=%d)",
					trial, i, got.at, got.seq, w.at, w.seq)
			}
			e := q.pop()
			if e.index != -1 {
				t.Fatalf("popped event retains heap index %d", e.index)
			}
		}
	}
}

// TestEventQueueRemoveKeepsOrder removes random interior elements and
// checks the survivors still pop in total order with consistent indices.
func TestEventQueueRemoveKeepsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := rng.Intn(150) + 2
		events := make([]*Event, n)
		for i := 0; i < n; i++ {
			events[i] = &Event{at: Time(rng.Intn(8)), seq: uint64(i + 1), index: -1}
			q.push(events[i])
		}
		removed := map[*Event]bool{}
		for i := 0; i < n/3; i++ {
			e := events[rng.Intn(n)]
			if removed[e] {
				continue
			}
			removed[e] = true
			q.remove(e.index)
			if e.index != -1 {
				t.Fatalf("removed event retains heap index %d", e.index)
			}
		}
		var survivors []*Event
		for _, e := range events {
			if !removed[e] {
				survivors = append(survivors, e)
			}
		}
		sort.Slice(survivors, func(i, j int) bool { return eventBefore(survivors[i], survivors[j]) })
		if q.len() != len(survivors) {
			t.Fatalf("trial %d: len %d after removals, want %d", trial, q.len(), len(survivors))
		}
		for i, w := range survivors {
			if got := q.pop(); got != w {
				t.Fatalf("trial %d pop %d: got seq %d, want seq %d", trial, i, got.seq, w.seq)
			}
		}
	}
}

// TestEventQueueIndexConsistency verifies the index invariant — every
// queued event's index field points at its own slot — after a mixed
// push/pop/remove workload. Cancel depends on it.
func TestEventQueueIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var q eventQueue
	var seq uint64
	live := map[*Event]bool{}
	for op := 0; op < 5000; op++ {
		switch {
		case q.len() == 0 || rng.Intn(3) == 0:
			seq++
			e := &Event{at: Time(rng.Intn(50)), seq: seq, index: -1}
			q.push(e)
			live[e] = true
		case rng.Intn(2) == 0:
			e := q.pop()
			delete(live, e)
		default:
			i := rng.Intn(q.len())
			e := q.items[i]
			q.remove(e.index)
			delete(live, e)
		}
		for i, e := range q.items {
			if e.index != i {
				t.Fatalf("op %d: items[%d].index = %d", op, i, e.index)
			}
			if !live[e] {
				t.Fatalf("op %d: dead event in queue", op)
			}
		}
	}
}
