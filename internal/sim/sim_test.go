package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := New(1)
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		s.Schedule(at, func() { got = append(got, at) })
	}
	s.Run(100)
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v events, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(50, func() { got = append(got, i) })
	}
	s.Run(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestRunStopsAtEnd(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(100, func() { fired = true })
	end := s.Run(100)
	if fired {
		t.Error("event at end boundary should not fire (end is exclusive)")
	}
	if end != 100 {
		t.Errorf("Run returned %v, want 100", end)
	}
}

func TestNowAdvances(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(42, func() { at = s.Now() })
	s.Run(100)
	if at != 42 {
		t.Errorf("Now inside event = %v, want 42", at)
	}
	if s.Now() != 100 {
		t.Errorf("final Now = %v, want 100", s.Now())
	}
}

func TestCancelPreventsEvent(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(10, func() { fired = true })
	s.Cancel(e)
	s.Run(100)
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("event not marked canceled")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	s := New(1)
	e := s.Schedule(10, func() {})
	s.Cancel(e)
	s.Cancel(e)
	s.Cancel(nil)
	s.Run(100)
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, s.Schedule(Time(i+1), func() { got = append(got, i) }))
	}
	s.Cancel(events[2])
	s.Run(100)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(10, func() {})
	})
	s.Run(100)
}

func TestAfterClampsNegative(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(10, func() {
		s.After(-5, func() { fired = true })
	})
	s.Run(100)
	if !fired {
		t.Error("After with negative delay never fired")
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	n := 0
	s.Schedule(1, func() { n++ })
	s.Schedule(2, func() { n++ })
	if !s.Step(100) || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step(100) || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step(100) {
		t.Fatal("Step with empty queue returned true")
	}
}

func TestProcDelay(t *testing.T) {
	s := New(1)
	var times []Time
	s.Spawn("p", func(p *Proc) {
		times = append(times, s.Now())
		p.Delay(10)
		times = append(times, s.Now())
		p.Delay(5)
		times = append(times, s.Now())
	})
	s.Run(100)
	want := []Time{0, 10, 15}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delay times %v, want %v", times, want)
		}
	}
	if s.LiveProcs() != 0 {
		t.Errorf("leaked %d processes", s.LiveProcs())
	}
}

func TestProcSuspendResume(t *testing.T) {
	s := New(1)
	var resumedAt Time
	var p1 *Proc
	p1 = s.Spawn("sleeper", func(p *Proc) {
		p.Suspend()
		resumedAt = s.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Delay(30)
		p1.Resume()
	})
	s.Run(100)
	if resumedAt != 30 {
		t.Errorf("resumed at %v, want 30", resumedAt)
	}
}

func TestSpawnAt(t *testing.T) {
	s := New(1)
	var started Time
	s.SpawnAt(25, "late", func(p *Proc) { started = s.Now() })
	s.Run(100)
	if started != 25 {
		t.Errorf("started at %v, want 25", started)
	}
}

func TestProcsRunOneAtATime(t *testing.T) {
	// With run-to-block semantics two processes at the same instant must
	// interleave only at blocking points.
	s := New(1)
	var trace []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			trace = append(trace, name+"1")
			trace = append(trace, name+"2")
			p.Delay(1)
			trace = append(trace, name+"3")
		})
	}
	s.Run(100)
	want := []string{"a1", "a2", "b1", "b2", "a3", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestShutdownKillsBlockedProcs(t *testing.T) {
	s := New(1)
	cleanedUp := false
	s.Spawn("stuck", func(p *Proc) {
		defer func() {
			// The kill panic must still unwind deferred functions of the
			// process body before being recovered by the kernel.
			cleanedUp = true
			if r := recover(); r != nil {
				panic(r) // pass the kill sentinel through
			}
		}()
		p.Suspend() // never resumed
	})
	s.Run(10)
	if s.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes after Run", s.LiveProcs())
	}
	if !cleanedUp {
		t.Error("deferred cleanup did not run on kill")
	}
}

func TestShutdownKillsDelayedProcs(t *testing.T) {
	s := New(1)
	s.Spawn("napper", func(p *Proc) {
		for {
			p.Delay(1)
		}
	})
	s.Run(50)
	if s.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes", s.LiveProcs())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate")
		}
	}()
	s := New(1)
	s.Spawn("bad", func(p *Proc) { panic("boom") })
	s.Run(10)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var out []float64
		for i := 0; i < 3; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Delay(Exponential(s.Rand(), 10))
					out = append(out, s.Now())
				}
			})
		}
		s.Run(1000)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Property: however events are scheduled (random times, some canceled),
	// surviving events fire in (time, insertion) order.
	f := func(times []uint16, cancelMask uint64) bool {
		if len(times) > 64 {
			times = times[:64]
		}
		s := New(7)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var events []*Event
		for i, tt := range times {
			at := Time(tt % 1000)
			i := i
			events = append(events, s.Schedule(at, func() {
				fired = append(fired, rec{at: at, seq: i})
			}))
		}
		for i, e := range events {
			if cancelMask&(1<<uint(i)) != 0 {
				s.Cancel(e)
			}
		}
		s.Run(2000)
		// Check monotone non-decreasing time, FIFO within equal times.
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		// Check the right number of events fired.
		wantN := 0
		for i := range times {
			if cancelMask&(1<<uint(i)) == 0 {
				wantN++
			}
		}
		return len(fired) == wantN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsNoLeak(t *testing.T) {
	s := New(1)
	n := 0
	for i := 0; i < 500; i++ {
		s.Spawn("worker", func(p *Proc) {
			p.Delay(Uniform(s.Rand(), 0, 50))
			n++
		})
	}
	s.Run(100)
	if n != 500 {
		t.Errorf("only %d of 500 processes completed", n)
	}
	if s.LiveProcs() != 0 {
		t.Errorf("leaked %d processes", s.LiveProcs())
	}
}

func TestRandDeterministicBySeed(t *testing.T) {
	a := New(9).Rand().Float64()
	b := New(9).Rand().Float64()
	c := New(10).Rand().Float64()
	if a != b {
		t.Error("same seed produced different values")
	}
	if a == c {
		t.Error("different seeds produced identical first values")
	}
}

func TestExponentialMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Exponential(r, 25)
	}
	mean := sum / n
	if mean < 24 || mean > 26 {
		t.Errorf("exponential mean %v, want ~25", mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if Exponential(r, 0) != 0 || Exponential(r, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestUniformBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		v := Uniform(r, 10, 30)
		if v < 10 || v > 30 {
			t.Fatalf("uniform %v outside [10,30]", v)
		}
	}
	if Uniform(r, 5, 5) != 5 {
		t.Error("degenerate uniform should return lo")
	}
	if Uniform(r, 7, 3) != 7 {
		t.Error("inverted uniform should return lo")
	}
}

func TestUniformIntBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := UniformInt(r, 4, 12)
		if v < 4 || v > 12 {
			t.Fatalf("uniform int %v outside [4,12]", v)
		}
		seen[v] = true
	}
	for v := 4; v <= 12; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
	if UniformInt(r, 8, 8) != 8 || UniformInt(r, 9, 2) != 9 {
		t.Error("degenerate uniform int should return lo")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func(n8, k8 uint8) bool {
		n := int(n8%50) + 1
		k := int(k8 % 60)
		s := SampleWithoutReplacement(r, n, k)
		want := k
		if want > n {
			want = n
		}
		if len(s) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntoMatchesPermStream(t *testing.T) {
	// SampleWithoutReplacementInto must consume the RNG exactly like
	// rand.Perm: same sample, same number of draws, same state afterwards.
	// This is what lets the workload generator reuse a scratch buffer
	// without perturbing seeded runs.
	for seed := int64(1); seed <= 5; seed++ {
		a := rand.New(rand.NewSource(seed))
		b := rand.New(rand.NewSource(seed))
		scratch := make([]int, 0, 64)
		for _, nk := range [][2]int{{300, 8}, {1, 1}, {0, 0}, {7, 12}, {50, 50}} {
			n, k := nk[0], nk[1]
			want := a.Perm(n)
			if k > n {
				k = n
			}
			want = want[:k]
			got := SampleWithoutReplacementInto(b, n, k, scratch)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: sample %v, want %v", n, k, got, want)
				}
			}
			scratch = got[:0]
		}
		if a.Float64() != b.Float64() {
			t.Fatalf("seed %d: RNG states diverged after sampling", seed)
		}
	}
}

func TestSampleIntoAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	scratch := make([]int, 300)
	allocs := testing.AllocsPerRun(100, func() {
		s := SampleWithoutReplacementInto(r, 300, 8, scratch)
		scratch = s[:0]
	})
	if allocs != 0 {
		t.Errorf("SampleWithoutReplacementInto with adequate scratch allocates %v objects, want 0", allocs)
	}
}

func TestEventAccessors(t *testing.T) {
	s := New(1)
	e := s.Schedule(42, func() {})
	if e.At() != 42 {
		t.Errorf("At() = %v, want 42", e.At())
	}
	if e.Canceled() {
		t.Error("fresh event reports canceled")
	}
}

func TestHoldAlias(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn("p", func(p *Proc) {
		p.Hold(7)
		at = s.Now()
	})
	s.Run(100)
	if at != 7 {
		t.Errorf("Hold resumed at %v, want 7", at)
	}
}

func TestSpawnAtPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("SpawnAt in the past did not panic")
			}
		}()
		s.SpawnAt(10, "late", func(p *Proc) {})
	})
	s.Run(100)
}

func TestProcNameAndSim(t *testing.T) {
	s := New(1)
	var p0 *Proc
	p0 = s.Spawn("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("name %q", p.Name())
		}
		if p.Sim() != s {
			t.Error("Sim() mismatch")
		}
	})
	_ = p0
	s.Run(10)
}
