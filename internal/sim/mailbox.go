package sim

// Mailbox is an unbounded FIFO message queue with at most one process
// blocked on receive. It is the basic inter-process communication primitive
// (coordinator/cohort signalling, terminal completion notices).
type Mailbox struct {
	sim    *Sim
	queue  []any
	waiter *Proc
}

// NewMailbox creates a mailbox bound to the simulator.
func (s *Sim) NewMailbox() *Mailbox { return &Mailbox{sim: s} }

// Send enqueues a message and wakes the receiver if one is blocked. It never
// blocks and may be called from event callbacks as well as processes.
func (m *Mailbox) Send(msg any) {
	m.queue = append(m.queue, msg)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Resume()
	}
}

// Recv returns the next message, blocking the calling process until one is
// available. Only one process may block on a mailbox at a time.
func (m *Mailbox) Recv(p *Proc) any {
	for len(m.queue) == 0 {
		if m.waiter != nil && m.waiter != p {
			panic("sim: multiple receivers on one mailbox")
		}
		m.waiter = p
		p.Suspend()
	}
	msg := m.queue[0]
	// Avoid retaining delivered messages.
	m.queue[0] = nil
	m.queue = m.queue[1:]
	return msg
}

// TryRecv returns the next message without blocking; ok is false if empty.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	msg = m.queue[0]
	m.queue[0] = nil
	m.queue = m.queue[1:]
	return msg, true
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }
