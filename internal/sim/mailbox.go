package sim

// Mailbox is an unbounded FIFO message queue with at most one process
// blocked on receive. It is the basic inter-process communication primitive
// (coordinator/cohort signalling, terminal completion notices).
//
// Messages live in a power-of-two ring buffer: a busy mailbox in steady
// state allocates nothing per send/receive, unlike the previous
// slide-forward slice (`queue = queue[1:]`) that walked its backing array
// and forced a fresh allocation every few operations.
type Mailbox struct {
	sim    *Sim
	buf    []any // ring storage; len(buf) is zero or a power of two
	head   int   // index of the oldest message
	count  int   // messages currently queued
	waiter *Proc
}

// NewMailbox creates a mailbox bound to the simulator.
func (s *Sim) NewMailbox() *Mailbox { return &Mailbox{sim: s} } //ddbmlint:allow hotpath-alloc one mailbox per pooled attempt state; reused via Reset

// Send enqueues a message and wakes the receiver if one is blocked. It never
// blocks and may be called from event callbacks as well as processes.
func (m *Mailbox) Send(msg any) {
	if m.count == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.count)&(len(m.buf)-1)] = msg
	m.count++
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Resume()
	}
}

// grow doubles the ring (minimum 8 slots), unwrapping the live window to
// the front of the new buffer.
func (m *Mailbox) grow() {
	newCap := 2 * len(m.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]any, newCap) //ddbmlint:allow hotpath-alloc ring growth to the backlog high-water mark
	for i := 0; i < m.count; i++ {
		buf[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
	}
	m.buf = buf
	m.head = 0
}

// pop removes and returns the oldest message; the slot is cleared so the
// ring does not retain delivered messages.
func (m *Mailbox) pop() any {
	msg := m.buf[m.head]
	m.buf[m.head] = nil
	m.head = (m.head + 1) & (len(m.buf) - 1)
	m.count--
	return msg
}

// Recv returns the next message, blocking the calling process until one is
// available. Only one process may block on a mailbox at a time.
func (m *Mailbox) Recv(p *Proc) any {
	for m.count == 0 {
		if m.waiter != nil && m.waiter != p {
			panic("sim: multiple receivers on one mailbox")
		}
		m.waiter = p
		p.Suspend()
	}
	return m.pop()
}

// TryRecv returns the next message without blocking; ok is false if empty.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	if m.count == 0 {
		return nil, false
	}
	return m.pop(), true
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return m.count }

// Reset discards any queued messages and returns the mailbox to its empty
// state while keeping the ring storage, so a recycled owner starts from a
// clean queue without reallocating. It must not be called while a process
// is blocked on Recv.
func (m *Mailbox) Reset() {
	if m.waiter != nil {
		panic("sim: Reset with a blocked receiver")
	}
	for i := 0; i < m.count; i++ {
		m.buf[(m.head+i)&(len(m.buf)-1)] = nil
	}
	m.head, m.count = 0, 0
}
