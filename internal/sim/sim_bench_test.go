package sim

import "testing"

// BenchmarkEventThroughput measures raw event scheduling+dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var t Time
	var fire func()
	fire = func() {
		t++
		if t < Time(b.N) {
			s.Schedule(t, fire)
		}
	}
	s.Schedule(0, fire)
	b.ResetTimer()
	s.Run(Time(b.N) + 1)
}

// BenchmarkProcessSwitch measures the goroutine handoff cost of one
// Delay-resume cycle.
func BenchmarkProcessSwitch(b *testing.B) {
	s := New(1)
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run(Time(b.N) + 2)
}

// BenchmarkMailbox measures send+recv round trips between two processes.
func BenchmarkMailbox(b *testing.B) {
	s := New(1)
	m := s.NewMailbox()
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Recv(p)
		}
	})
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Send(i)
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run(Time(b.N) + 2)
}
