package sim

import "testing"

func TestMailboxSendBeforeRecv(t *testing.T) {
	s := New(1)
	var got []int
	m := s.NewMailbox()
	m.Send(1)
	m.Send(2)
	s.Spawn("rx", func(p *Proc) {
		got = append(got, m.Recv(p).(int))
		got = append(got, m.Recv(p).(int))
	})
	s.Run(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestMailboxRecvBlocksUntilSend(t *testing.T) {
	s := New(1)
	var recvAt Time
	m := s.NewMailbox()
	s.Spawn("rx", func(p *Proc) {
		if m.Recv(p).(string) != "hello" {
			t.Error("wrong message")
		}
		recvAt = s.Now()
	})
	s.Spawn("tx", func(p *Proc) {
		p.Delay(25)
		m.Send("hello")
	})
	s.Run(100)
	if recvAt != 25 {
		t.Errorf("received at %v, want 25", recvAt)
	}
}

func TestMailboxFIFO(t *testing.T) {
	s := New(1)
	m := s.NewMailbox()
	var got []int
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	s.Spawn("tx", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(1)
			m.Send(i)
		}
	})
	s.Run(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO: %v", got)
		}
	}
}

func TestMailboxTryRecv(t *testing.T) {
	s := New(1)
	m := s.NewMailbox()
	if _, ok := m.TryRecv(); ok {
		t.Error("TryRecv on empty mailbox succeeded")
	}
	m.Send(7)
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	v, ok := m.TryRecv()
	if !ok || v.(int) != 7 {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
	if m.Len() != 0 {
		t.Errorf("Len after drain = %d, want 0", m.Len())
	}
}

func TestMailboxBurstWakesOnce(t *testing.T) {
	// Several sends while the receiver is parked must all be delivered.
	s := New(1)
	m := s.NewMailbox()
	var got []int
	s.Spawn("rx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	s.Spawn("tx", func(p *Proc) {
		p.Delay(5)
		m.Send(1)
		m.Send(2)
		m.Send(3)
	})
	s.Run(100)
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 messages", got)
	}
}

func TestMailboxMultipleReceiversPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("two receivers on one mailbox did not panic")
		}
	}()
	s := New(1)
	m := s.NewMailbox()
	s.Spawn("rx1", func(p *Proc) { m.Recv(p) })
	s.Spawn("rx2", func(p *Proc) { m.Recv(p) })
	s.Run(10)
}
