package sim

import "math/rand"

// Exponential draws from an exponential distribution with the given mean.
// A non-positive mean yields 0, which lets callers express "no think time"
// or "no cost" without special cases.
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// Uniform draws uniformly from [lo, hi].
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// UniformInt draws a uniform integer in [lo, hi] inclusive.
func UniformInt(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// SampleWithoutReplacement returns k distinct integers from [0, n) in random
// order. If k >= n it returns a permutation of all n values.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	return SampleWithoutReplacementInto(r, n, k, nil)
}

// SampleWithoutReplacementInto is SampleWithoutReplacement with a
// caller-provided scratch buffer: the returned slice aliases scratch when it
// has capacity n, so a hot caller (the workload generator draws a sample per
// partition per transaction) allocates nothing in steady state.
//
// It consumes exactly the same randomness as rand.Perm(n) — n Intn draws,
// including the degenerate Intn(1) at i=0, which rand.Perm keeps for Go 1
// stream compatibility — so swapping it in for SampleWithoutReplacement
// cannot perturb a seeded run (TestSampleIntoMatchesPermStream pins this).
func SampleWithoutReplacementInto(r *rand.Rand, n, k int, scratch []int) []int {
	if k > n {
		k = n
	}
	if cap(scratch) < n {
		scratch = make([]int, n) //ddbmlint:allow hotpath-alloc scratch growth to the population size; hot callers pass a reused buffer
	} else {
		scratch = scratch[:n]
	}
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		scratch[i] = scratch[j]
		scratch[j] = i
	}
	return scratch[:k]
}
