package sim

import "math/rand"

// Exponential draws from an exponential distribution with the given mean.
// A non-positive mean yields 0, which lets callers express "no think time"
// or "no cost" without special cases.
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// Uniform draws uniformly from [lo, hi].
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// UniformInt draws a uniform integer in [lo, hi] inclusive.
func UniformInt(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// SampleWithoutReplacement returns k distinct integers from [0, n) in random
// order. If k >= n it returns a permutation of all n values.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	return perm[:k]
}
