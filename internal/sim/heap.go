package sim

// eventQueue is a 4-ary min-heap of pending events ordered by (at, seq).
// It replaces container/heap to keep the kernel hot path free of interface
// dispatch and `any` boxing: push/pop/remove compare *Event directly and the
// comparisons inline. A 4-ary layout halves the tree depth of a binary heap,
// trading a few extra comparisons per level for far fewer cache-missing
// levels — a net win at the queue sizes a busy machine sustains (one pending
// event per blocked process plus one per busy resource).
//
// Ordering is total: seq is unique per event, so identical timestamps break
// ties by scheduling order and the pop sequence is independent of heap
// arity. That is what keeps the kernel rewrite bit-identical to the old
// container/heap binary-heap kernel for any fixed seed.
type eventQueue struct {
	items []*Event
}

// eventBefore reports whether a fires before b: earlier time first,
// scheduling order (seq) breaking ties.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.items) }

// min returns the earliest pending event without removing it.
func (q *eventQueue) min() *Event { return q.items[0] }

// push inserts e and records its heap index for O(log n) removal.
func (q *eventQueue) push(e *Event) {
	q.items = append(q.items, e) //ddbmlint:allow hotpath-alloc event-heap backing array grows to its high-water mark
	q.siftUp(len(q.items) - 1)
}

// pop removes and returns the earliest event. Its index is set to -1.
func (q *eventQueue) pop() *Event {
	items := q.items
	e := items[0]
	n := len(items) - 1
	last := items[n]
	items[n] = nil
	q.items = items[:n]
	e.index = -1
	if n > 0 {
		last.index = 0
		q.items[0] = last
		q.siftDown(0)
	}
	return e
}

// remove deletes the event at heap index i (used by Cancel). The displaced
// tail element is sifted in both directions because it may violate the heap
// property either way relative to its new position.
func (q *eventQueue) remove(i int) {
	items := q.items
	n := len(items) - 1
	items[i].index = -1
	last := items[n]
	items[n] = nil
	q.items = items[:n]
	if i == n {
		return
	}
	last.index = i
	q.items[i] = last
	q.siftDown(i)
	q.siftUp(i)
}

func (q *eventQueue) siftUp(i int) {
	items := q.items
	e := items[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := items[parent]
		if !eventBefore(e, p) {
			break
		}
		items[i] = p
		p.index = i
		i = parent
	}
	items[i] = e
	e.index = i
}

func (q *eventQueue) siftDown(i int) {
	items := q.items
	n := len(items)
	e := items[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the earliest of up to four children.
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(items[c], items[best]) {
				best = c
			}
		}
		if !eventBefore(items[best], e) {
			break
		}
		items[i] = items[best]
		items[i].index = i
		i = best
	}
	items[i] = e
	e.index = i
}
