package sim

import (
	"math"
	"testing"
)

// These tests pin the kernel's steady-state allocation counts. They are the
// regression guard for the allocation-free hot path: a change that
// reintroduces a per-event or per-switch allocation (a closure in
// Delay/Resume, losing the event free-list, a mailbox that reallocates)
// fails here before it shows up as a throughput regression.

// TestScheduleFireAllocFree: one schedule→dispatch cycle of a callback
// event reuses a free-listed Event and allocates nothing.
func TestScheduleFireAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Prime the free-list with one fired event.
	s.Schedule(s.Now(), fn)
	s.Step(math.MaxFloat64)
	allocs := testing.AllocsPerRun(200, func() {
		s.Schedule(s.Now(), fn)
		s.Step(math.MaxFloat64)
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %v objects per event, want 0", allocs)
	}
}

// TestScheduleCancelAllocFree: canceling returns the event to the
// free-list, so churning schedule/cancel (the CPU reschedule pattern)
// allocates nothing.
func TestScheduleCancelAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	s.Cancel(s.Schedule(10, fn))
	allocs := testing.AllocsPerRun(200, func() {
		s.Cancel(s.Schedule(10, fn))
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocates %v objects per event, want 0", allocs)
	}
}

// TestDelayAllocFree: a full process switch (Delay, park, dispatch, resume)
// uses the process's embedded resume event and allocates nothing.
func TestDelayAllocFree(t *testing.T) {
	s := New(1)
	allocs := math.NaN()
	s.Spawn("p", func(p *Proc) {
		p.Delay(1)
		allocs = testing.AllocsPerRun(200, func() { p.Delay(1) })
	})
	s.Run(math.Inf(1))
	if allocs != 0 {
		t.Errorf("Delay allocates %v objects per switch, want 0", allocs)
	}
}

// TestSuspendResumeAllocFree: the Suspend/Resume rendezvous — the path
// mailbox wakeups ride — allocates nothing per cycle.
func TestSuspendResumeAllocFree(t *testing.T) {
	s := New(1)
	allocs := math.NaN()
	var sleeper *Proc
	sleeper = s.Spawn("sleeper", func(p *Proc) {
		for {
			p.Suspend()
		}
	})
	s.Spawn("driver", func(p *Proc) {
		sleeper.Resume()
		p.Delay(1)
		allocs = testing.AllocsPerRun(200, func() {
			sleeper.Resume()
			p.Delay(1)
		})
	})
	s.Run(math.Inf(1))
	if allocs != 0 {
		t.Errorf("Resume+Delay cycle allocates %v objects, want 0", allocs)
	}
}

// TestMailboxSteadyStateAllocFree: once the ring is warm, send+receive of
// an already-boxed message allocates nothing (the old slide-forward slice
// reallocated every few operations).
func TestMailboxSteadyStateAllocFree(t *testing.T) {
	s := New(1)
	m := s.NewMailbox()
	var msg any = "payload"
	for i := 0; i < 4; i++ {
		m.Send(msg)
	}
	for {
		if _, ok := m.TryRecv(); !ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Send(msg)
		if _, ok := m.TryRecv(); !ok {
			t.Fatal("message lost")
		}
	})
	if allocs != 0 {
		t.Errorf("mailbox send+recv allocates %v objects per op, want 0", allocs)
	}
}

// TestMailboxBacklogAllocAmortized: a mailbox that oscillates between empty
// and a bounded backlog settles into its ring and stops allocating.
func TestMailboxBacklogAllocAmortized(t *testing.T) {
	s := New(1)
	m := s.NewMailbox()
	var msg any = 1
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			m.Send(msg)
		}
		for i := 0; i < 16; i++ {
			if _, ok := m.TryRecv(); !ok {
				t.Fatal("message lost")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm 16-deep mailbox burst allocates %v objects per burst, want 0", allocs)
	}
}
