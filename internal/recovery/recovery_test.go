package recovery

import (
	"testing"

	"ddbm/internal/commit"
)

func TestWALLiveCounts(t *testing.T) {
	w := NewWAL(3)
	w.Append(0)
	w.Append(0)
	w.Append(2)
	if w.LiveCount(0) != 2 || w.LiveCount(1) != 0 || w.LiveCount(2) != 1 {
		t.Errorf("live counts %d/%d/%d, want 2/0/1", w.LiveCount(0), w.LiveCount(1), w.LiveCount(2))
	}
	w.Resolve(0)
	if w.LiveCount(0) != 1 {
		t.Errorf("live count after resolve %d, want 1", w.LiveCount(0))
	}
}

func TestWALUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("resolving an empty log did not panic")
		}
	}()
	NewWAL(1).Resolve(0)
}

func TestReplayMs(t *testing.T) {
	if got := ReplayMs(0, 10, 25); got != 25 {
		t.Errorf("empty-log replay %v, want the fixed scan cost 25", got)
	}
	if got := ReplayMs(4, 10, 25); got != 65 {
		t.Errorf("replay of 4 records %v, want 65", got)
	}
}

func TestDecisionRegistry(t *testing.T) {
	r := NewDecisionRegistry()
	if r.Lookup(7) {
		t.Error("no record must resolve to abort (2PC termination rule)")
	}
	r.Record(7, true)
	r.Record(9, false)
	if !r.Lookup(7) || r.Lookup(9) {
		t.Error("recorded outcomes not returned")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	r.Forget(7)
	if r.Lookup(7) {
		t.Error("forgotten attempt still resolves to commit")
	}
	if r.Len() != 1 {
		t.Errorf("Len after Forget = %d, want 1", r.Len())
	}
}

func TestResolutionFor(t *testing.T) {
	cases := []struct {
		kind commit.Kind
		want Resolution
	}{
		{commit.CentralizedTwoPC, Inquire},
		{commit.PresumedAbort, PresumeAbort},
		{commit.PresumedCommit, PresumeCommit},
	}
	for _, c := range cases {
		if got := ResolutionFor(c.kind); got != c.want {
			t.Errorf("ResolutionFor(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
}
