// Package recovery models crash recovery for the commit protocols: a
// simulated per-node write-ahead log fed by the machine's forced-log seam,
// the coordinator-side decision registry a restarting node's inquiries
// consult, and the per-protocol rules for resolving in-doubt cohorts.
//
// The log is deliberately a ledger of live (unresolved) forced prepare
// records rather than a byte-accurate log: what restart cost and in-doubt
// resolution need is exactly how many prepared-but-undecided cohorts the
// crashed node must reconstruct, and what each protocol lets it conclude
// about them:
//
//	protocol   in-doubt cohort at restart resolves by
//	2PC        inquiry to the coordinator; no record found → abort
//	PA         local presumption: abort (no record ⇒ abort is the rule)
//	PC         local presumption: commit (the documented PC anomaly: an
//	           explicitly aborted cohort whose abort record was never
//	           forced would be presumed committed — which is exactly why
//	           PC forces abort records, keeping the presumption sound)
package recovery

import "ddbm/internal/commit"

// WAL is the machine's simulated write-ahead log: one live-record count
// per processing node. Append marks a forced prepare record whose cohort
// is now in doubt; Resolve retires it once the decision is applied at the
// node (or once recovery resolves the cohort). LiveCount is what a
// restarting node must replay.
type WAL struct {
	live []int64
}

// NewWAL creates the log over nodes processing nodes.
func NewWAL(nodes int) *WAL { return &WAL{live: make([]int64, nodes)} }

// Append records a forced, still-unresolved prepare record at a node.
func (w *WAL) Append(node int) { w.live[node]++ }

// Resolve retires one live record at a node.
func (w *WAL) Resolve(node int) {
	w.live[node]--
	if w.live[node] < 0 {
		panic("recovery: WAL live-record count underflow")
	}
}

// LiveCount returns the number of live records a restart at the node must
// replay.
func (w *WAL) LiveCount(node int) int64 { return w.live[node] }

// ReplayMs is the simulated cost of replaying the log at restart: a fixed
// startup scan plus a per-live-record cost. The recovery process pays it
// as pure delay — the node's (just-crashed, empty) disks are not driven,
// so recovery perturbs no resource stream.
func ReplayMs(live int64, perRecordMs, fixedMs float64) float64 {
	return fixedMs + float64(live)*perRecordMs
}

// DecisionRegistry is the coordinator-side outcome memory a restarting
// node's 2PC inquiries consult, keyed by the attempt timestamp (unique per
// attempt). Entries exist only for attempts that still have an in-doubt
// cohort stranded at a crashed node, and are deleted when the attempt's
// state recycles, so the registry stays bounded by the number of
// outstanding residents.
type DecisionRegistry struct {
	m map[int64]bool
}

// NewDecisionRegistry creates an empty registry.
func NewDecisionRegistry() *DecisionRegistry {
	return &DecisionRegistry{m: make(map[int64]bool)}
}

// Record stores an attempt's outcome.
func (r *DecisionRegistry) Record(attemptTS int64, committed bool) {
	r.m[attemptTS] = committed
}

// Lookup answers an inquiry: the recorded outcome, or abort when no
// record exists — a coordinator with no memory of the transaction cannot
// have committed it (2PC's termination rule for forgotten transactions).
func (r *DecisionRegistry) Lookup(attemptTS int64) (committed bool) {
	return r.m[attemptTS]
}

// Forget drops an attempt's entry (called when the attempt recycles).
func (r *DecisionRegistry) Forget(attemptTS int64) { delete(r.m, attemptTS) }

// Len reports the number of outstanding entries (tests and gauges).
func (r *DecisionRegistry) Len() int { return len(r.m) }

// Resolution is how a protocol resolves an in-doubt cohort at restart.
type Resolution int

const (
	// Inquire asks the coordinator (2PC): a round-trip message exchange
	// against the decision registry before the cohort can release.
	Inquire Resolution = iota
	// PresumeAbort resolves locally as aborted (presumed abort).
	PresumeAbort
	// PresumeCommit resolves locally as committed (presumed commit).
	PresumeCommit
)

// ResolutionFor returns a protocol's in-doubt resolution rule.
func ResolutionFor(k commit.Kind) Resolution {
	switch k {
	case commit.PresumedAbort:
		return PresumeAbort
	case commit.PresumedCommit:
		return PresumeCommit
	default:
		return Inquire
	}
}
