// Package workload implements the source component of the model (paper
// §3.2, Table 2): it turns a transaction class description into concrete
// transaction plans — which pages of which partitions each cohort reads,
// which of those it updates, and how much CPU each page costs.
package workload

import (
	"fmt"
	"math/rand"

	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// Access is one page access in a cohort's plan.
type Access struct {
	Page  db.PageID
	Write bool
	// Remote marks a write to a non-primary copy of a replicated page
	// (read-one/write-all): the cohort makes a write concurrency control
	// request but performs no read I/O or page processing; the copy is
	// installed at commit like any other deferred update. Remote implies
	// Write.
	Remote bool
	// Inst is the CPU demand for processing this page when reading it,
	// drawn exponentially with mean InstPerPage.
	Inst float64
	// WriteInst is the additional CPU demand for processing the page when
	// writing it (Table 2: InstPerPage applies "when reading or writing");
	// zero for read-only and remote-copy accesses.
	WriteInst float64
}

// CohortPlan is the work one cohort performs at one node.
type CohortPlan struct {
	Node     int
	Accesses []Access
}

// NumWrites returns how many of the cohort's accesses are updates.
func (c *CohortPlan) NumWrites() int {
	n := 0
	for _, a := range c.Accesses {
		if a.Write {
			n++
		}
	}
	return n
}

// TxnPlan is a complete transaction: one cohort per node that stores data
// the transaction accesses, in partition order (which is also the execution
// order for sequential transactions). The plan is fixed across restart
// attempts — a rerun transaction re-executes the same accesses.
type TxnPlan struct {
	Relation int
	Cohorts  []CohortPlan
	// Sequential requests sequential cohort execution for this transaction
	// (set from its class; the machine-wide ExecPattern can also force it).
	Sequential bool
}

// NumReads returns the total number of page reads (remote-copy writes do
// not read).
func (t *TxnPlan) NumReads() int {
	n := 0
	for i := range t.Cohorts {
		for j := range t.Cohorts[i].Accesses {
			if !t.Cohorts[i].Accesses[j].Remote {
				n++
			}
		}
	}
	return n
}

// NumWrites returns the total number of updated pages.
func (t *TxnPlan) NumWrites() int {
	n := 0
	for i := range t.Cohorts {
		n += t.Cohorts[i].NumWrites()
	}
	return n
}

// Spread selects the distribution of the per-partition page count around
// its mean.
type Spread int

const (
	// SpreadHalfToThreeHalves draws uniformly from [avg/2, 3·avg/2]
	// (mean avg). This matches the paper's quantitative footnote 12, which
	// computes with cohorts of 4..12 pages around a mean of 8.
	SpreadHalfToThreeHalves Spread = iota
	// SpreadHalfToTwice draws uniformly from [avg/2, 2·avg] as the model
	// section's prose states (mean 1.25·avg).
	SpreadHalfToTwice
)

// Class describes one transaction class (paper Table 2): which files of
// the terminal's relation a transaction touches and how it treats them.
type Class struct {
	// Frac is the fraction of terminals generating this class (ClassFrac).
	Frac float64
	// Sequential selects sequential cohort execution for this class
	// (ExecPattern); the default is parallel.
	Sequential bool
	// FileCount is how many distinct partitions of the terminal's relation
	// a transaction accesses, drawn uniformly without replacement
	// (FileCount/FileProb); 0 means every partition — the configuration
	// used throughout the paper's experiments.
	FileCount int
	// AvgPages is the mean number of pages read per accessed partition
	// (NumPages).
	AvgPages int
	// WriteProb is the probability an accessed page is updated.
	WriteProb float64
	// InstPerPage is the mean CPU instruction count to process a page.
	InstPerPage float64
}

// Generator creates transaction plans for one or more transaction classes.
type Generator struct {
	Catalog *db.Catalog
	// AvgPages is the mean number of pages read per partition (NumPages)
	// for the default class.
	AvgPages int
	// WriteProb is the probability an accessed page is updated (default
	// class).
	WriteProb float64
	// InstPerPage is the mean CPU instruction count to process a page
	// (default class).
	InstPerPage float64
	// Spread selects the page-count distribution (all classes).
	Spread Spread
	// Classes optionally defines a multi-class workload; when empty a
	// single class built from the fields above is used (the paper's
	// configuration).
	Classes []Class

	// permScratch backs the per-partition page samples so plan generation
	// does not allocate a fresh permutation per partition. Plans for one
	// machine are generated one at a time (the simulation kernel runs a
	// single process at a time), so one buffer suffices.
	permScratch []int
}

// Validate checks the generator's parameters.
func (g *Generator) Validate() error {
	if g.Catalog == nil {
		return fmt.Errorf("workload: nil catalog")
	}
	for i, c := range g.classes() {
		switch {
		case c.AvgPages < 1:
			return fmt.Errorf("workload: class %d AvgPages must be >= 1, got %d", i, c.AvgPages)
		case c.WriteProb < 0 || c.WriteProb > 1:
			return fmt.Errorf("workload: class %d WriteProb %v out of [0,1]", i, c.WriteProb)
		case c.InstPerPage < 0:
			return fmt.Errorf("workload: class %d negative InstPerPage %v", i, c.InstPerPage)
		case c.FileCount < 0 || c.FileCount > g.Catalog.PartsPerRelation:
			return fmt.Errorf("workload: class %d FileCount %d out of range for %d partitions",
				i, c.FileCount, g.Catalog.PartsPerRelation)
		case len(g.Classes) > 0 && c.Frac <= 0:
			return fmt.Errorf("workload: class %d has non-positive fraction", i)
		}
	}
	if len(g.Classes) > 0 {
		var total float64
		for _, c := range g.Classes {
			total += c.Frac
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("workload: class fractions sum to %v, want 1", total)
		}
	}
	return nil
}

// classes returns the effective class list (the default single class when
// none are configured).
func (g *Generator) classes() []Class {
	if len(g.Classes) > 0 {
		return g.Classes
	}
	return []Class{{
		Frac:        1,
		AvgPages:    g.AvgPages,
		WriteProb:   g.WriteProb,
		InstPerPage: g.InstPerPage,
	}}
}

// ClassOfTerminal deterministically assigns a class to a terminal by the
// cumulative class fractions (terminal i of n gets the class covering
// quantile (i+0.5)/n).
func (g *Generator) ClassOfTerminal(term, numTerminals int) Class {
	cs := g.classes()
	q := (float64(term) + 0.5) / float64(numTerminals)
	var cum float64
	for _, c := range cs {
		cum += c.Frac
		if q <= cum {
			return c
		}
	}
	return cs[len(cs)-1]
}

// pageCount draws the number of pages to read from one partition.
func (g *Generator) pageCount(r *rand.Rand, avg, filePages int) int {
	lo := avg / 2
	if lo < 1 {
		lo = 1
	}
	var hi int
	switch g.Spread {
	case SpreadHalfToTwice:
		hi = 2 * avg
	default:
		hi = avg + avg/2
	}
	n := sim.UniformInt(r, lo, hi)
	if n > filePages {
		n = filePages
	}
	return n
}

// NewPlan builds a default-class transaction accessing every partition of
// relation rel (the paper's configuration). See NewClassPlan.
func (g *Generator) NewPlan(r *rand.Rand, rel int) TxnPlan {
	return g.NewClassPlan(r, rel, g.classes()[0])
}

// NewClassPlan builds a transaction of the given class against relation
// rel: one cohort per node holding (a primary copy of) the partitions it
// touches, each cohort reading a random sample (without replacement) of
// pages from each local partition and updating each with the class's write
// probability. With replicated files, every updated page additionally gets
// a remote-write access at each node holding another copy
// (read-one/write-all), extending the transaction with cohorts at those
// nodes when needed.
func (g *Generator) NewClassPlan(r *rand.Rand, rel int, class Class) TxnPlan {
	nodes, partsAt := g.Catalog.RelationNodes(rel)
	// Restrict to FileCount randomly chosen partitions if the class asks.
	if class.FileCount > 0 && class.FileCount < g.Catalog.PartsPerRelation {
		chosen := make(map[int]bool, class.FileCount)
		for _, part := range sim.SampleWithoutReplacement(r, g.Catalog.PartsPerRelation, class.FileCount) {
			chosen[part] = true
		}
		filteredNodes := nodes[:0:0]
		filtered := make(map[int][]int, len(partsAt))
		for _, node := range nodes {
			for _, part := range partsAt[node] {
				if chosen[part] {
					filtered[node] = append(filtered[node], part)
				}
			}
			if len(filtered[node]) > 0 {
				filteredNodes = append(filteredNodes, node)
			}
		}
		nodes, partsAt = filteredNodes, filtered
	}

	plan := TxnPlan{Relation: rel, Sequential: class.Sequential, Cohorts: make([]CohortPlan, 0, len(nodes))}
	cohortAt := make(map[int]int, len(nodes)) // node -> index in plan.Cohorts
	for _, node := range nodes {
		cohortAt[node] = len(plan.Cohorts)
		plan.Cohorts = append(plan.Cohorts, CohortPlan{Node: node})
	}
	var remote []Access
	var remoteNodes []int
	for _, node := range nodes {
		cp := &plan.Cohorts[cohortAt[node]]
		for _, part := range partsAt[node] {
			file := g.Catalog.FileOf(rel, part)
			n := g.pageCount(r, class.AvgPages, g.Catalog.PagesPerFile)
			pages := sim.SampleWithoutReplacementInto(r, g.Catalog.PagesPerFile, n, g.permScratch)
			g.permScratch = pages[:0]
			for _, pg := range pages {
				a := Access{
					Page:  db.PageID{File: file, Page: pg},
					Write: r.Float64() < class.WriteProb,
					Inst:  sim.Exponential(r, class.InstPerPage),
				}
				if a.Write {
					a.WriteInst = sim.Exponential(r, class.InstPerPage)
					for _, rn := range g.Catalog.Replicas(file)[1:] {
						remote = append(remote, Access{Page: a.Page, Write: true, Remote: true})
						remoteNodes = append(remoteNodes, rn)
					}
				}
				cp.Accesses = append(cp.Accesses, a)
			}
		}
	}
	// Attach remote-copy writes, creating replica-only cohorts as needed.
	for i, a := range remote {
		node := remoteNodes[i]
		idx, ok := cohortAt[node]
		if !ok {
			idx = len(plan.Cohorts)
			cohortAt[node] = idx
			plan.Cohorts = append(plan.Cohorts, CohortPlan{Node: node})
		}
		plan.Cohorts[idx].Accesses = append(plan.Cohorts[idx].Accesses, a)
	}
	return plan
}
