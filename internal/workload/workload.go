// Package workload implements the source component of the model (paper
// §3.2, Table 2): it turns a transaction class description into concrete
// transaction plans — which pages of which partitions each cohort reads,
// which of those it updates, and how much CPU each page costs.
package workload

import (
	"fmt"
	"math/rand"

	"ddbm/internal/db"
	"ddbm/internal/sim"
)

// Access is one page access in a cohort's plan.
type Access struct {
	Page  db.PageID
	Write bool
	// Remote marks a write to a non-primary copy of a replicated page
	// (read-one/write-all): the cohort makes a write concurrency control
	// request but performs no read I/O or page processing; the copy is
	// installed at commit like any other deferred update. Remote implies
	// Write.
	Remote bool
	// Inst is the CPU demand for processing this page when reading it,
	// drawn exponentially with mean InstPerPage.
	Inst float64
	// WriteInst is the additional CPU demand for processing the page when
	// writing it (Table 2: InstPerPage applies "when reading or writing");
	// zero for read-only and remote-copy accesses.
	WriteInst float64
}

// CohortPlan is the work one cohort performs at one node.
type CohortPlan struct {
	Node     int
	Accesses []Access
}

// NumWrites returns how many of the cohort's accesses are updates.
func (c *CohortPlan) NumWrites() int {
	n := 0
	for _, a := range c.Accesses {
		if a.Write {
			n++
		}
	}
	return n
}

// TxnPlan is a complete transaction: one cohort per node that stores data
// the transaction accesses, in partition order (which is also the execution
// order for sequential transactions). The plan is fixed across restart
// attempts — a rerun transaction re-executes the same accesses.
type TxnPlan struct {
	Relation int
	Cohorts  []CohortPlan
	// Sequential requests sequential cohort execution for this transaction
	// (set from its class; the machine-wide ExecPattern can also force it).
	Sequential bool

	// refs counts the live references to a pooled plan (see
	// Generator.AcquireClassPlan / Retain / Release); zero for plans built
	// with the value API.
	refs int
}

// NumReads returns the total number of page reads (remote-copy writes do
// not read).
func (t *TxnPlan) NumReads() int {
	n := 0
	for i := range t.Cohorts {
		for j := range t.Cohorts[i].Accesses {
			if !t.Cohorts[i].Accesses[j].Remote {
				n++
			}
		}
	}
	return n
}

// NumWrites returns the total number of updated pages.
func (t *TxnPlan) NumWrites() int {
	n := 0
	for i := range t.Cohorts {
		n += t.Cohorts[i].NumWrites()
	}
	return n
}

// Spread selects the distribution of the per-partition page count around
// its mean.
type Spread int

const (
	// SpreadHalfToThreeHalves draws uniformly from [avg/2, 3·avg/2]
	// (mean avg). This matches the paper's quantitative footnote 12, which
	// computes with cohorts of 4..12 pages around a mean of 8.
	SpreadHalfToThreeHalves Spread = iota
	// SpreadHalfToTwice draws uniformly from [avg/2, 2·avg] as the model
	// section's prose states (mean 1.25·avg).
	SpreadHalfToTwice
)

// Class describes one transaction class (paper Table 2): which files of
// the terminal's relation a transaction touches and how it treats them.
type Class struct {
	// Frac is the fraction of terminals generating this class (ClassFrac).
	Frac float64
	// Sequential selects sequential cohort execution for this class
	// (ExecPattern); the default is parallel.
	Sequential bool
	// FileCount is how many distinct partitions of the terminal's relation
	// a transaction accesses, drawn uniformly without replacement
	// (FileCount/FileProb); 0 means every partition — the configuration
	// used throughout the paper's experiments.
	FileCount int
	// AvgPages is the mean number of pages read per accessed partition
	// (NumPages).
	AvgPages int
	// WriteProb is the probability an accessed page is updated.
	WriteProb float64
	// InstPerPage is the mean CPU instruction count to process a page.
	InstPerPage float64
}

// Generator creates transaction plans for one or more transaction classes.
type Generator struct {
	Catalog *db.Catalog
	// AvgPages is the mean number of pages read per partition (NumPages)
	// for the default class.
	AvgPages int
	// WriteProb is the probability an accessed page is updated (default
	// class).
	WriteProb float64
	// InstPerPage is the mean CPU instruction count to process a page
	// (default class).
	InstPerPage float64
	// Spread selects the page-count distribution (all classes).
	Spread Spread
	// Classes optionally defines a multi-class workload; when empty a
	// single class built from the fields above is used (the paper's
	// configuration).
	Classes []Class

	// permScratch backs the per-partition page samples so plan generation
	// does not allocate a fresh permutation per partition. Plans for one
	// machine are generated one at a time (the simulation kernel runs a
	// single process at a time), so one buffer suffices.
	permScratch []int

	// Plan-construction scratch (same single-threaded argument as
	// permScratch): cached per-relation placement, the FileCount partition
	// filter, and the remote-copy staging buffers. All reach a high-water
	// capacity and then stop allocating.
	relNodes   [][]int   // per-relation node list (catalog is immutable)
	relParts   [][][]int // per relation, parts per node, aligned with relNodes
	partSample []int     // FileCount partition sample scratch
	chosen     []bool    // FileCount partition membership, cleared after use
	fNodes     []int     // filtered node list
	fParts     [][]int   // filtered parts per node, aliasing fFlat
	fFlat      []int     // flat storage behind fParts
	remote     []Access  // staged remote-copy writes
	remoteAt   []int     // their target nodes, aligned with remote

	// free holds recycled transaction plans; Release returns a plan here
	// once its last reference drops.
	free []*TxnPlan
}

// Validate checks the generator's parameters.
func (g *Generator) Validate() error {
	if g.Catalog == nil {
		return fmt.Errorf("workload: nil catalog")
	}
	for i, c := range g.classes() {
		switch {
		case c.AvgPages < 1:
			return fmt.Errorf("workload: class %d AvgPages must be >= 1, got %d", i, c.AvgPages)
		case c.WriteProb < 0 || c.WriteProb > 1:
			return fmt.Errorf("workload: class %d WriteProb %v out of [0,1]", i, c.WriteProb)
		case c.InstPerPage < 0:
			return fmt.Errorf("workload: class %d negative InstPerPage %v", i, c.InstPerPage)
		case c.FileCount < 0 || c.FileCount > g.Catalog.PartsPerRelation:
			return fmt.Errorf("workload: class %d FileCount %d out of range for %d partitions",
				i, c.FileCount, g.Catalog.PartsPerRelation)
		case len(g.Classes) > 0 && c.Frac <= 0:
			return fmt.Errorf("workload: class %d has non-positive fraction", i)
		}
	}
	if len(g.Classes) > 0 {
		var total float64
		for _, c := range g.Classes {
			total += c.Frac
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("workload: class fractions sum to %v, want 1", total)
		}
	}
	return nil
}

// classes returns the effective class list (the default single class when
// none are configured).
func (g *Generator) classes() []Class {
	if len(g.Classes) > 0 {
		return g.Classes
	}
	return []Class{{
		Frac:        1,
		AvgPages:    g.AvgPages,
		WriteProb:   g.WriteProb,
		InstPerPage: g.InstPerPage,
	}}
}

// NumClasses returns the number of effective transaction classes (1 for
// the default single-class workload).
func (g *Generator) NumClasses() int { return len(g.classes()) }

// ClassOfTerminal deterministically assigns a class to a terminal by the
// cumulative class fractions (terminal i of n gets the class covering
// quantile (i+0.5)/n).
func (g *Generator) ClassOfTerminal(term, numTerminals int) Class {
	return g.classes()[g.ClassIndexOfTerminal(term, numTerminals)]
}

// ClassIndexOfTerminal is ClassOfTerminal returning the class's index in
// the effective class list — the stable key the breakdown accounting's
// per-class histograms aggregate under.
func (g *Generator) ClassIndexOfTerminal(term, numTerminals int) int {
	cs := g.classes()
	q := (float64(term) + 0.5) / float64(numTerminals)
	var cum float64
	for i, c := range cs {
		cum += c.Frac
		if q <= cum {
			return i
		}
	}
	return len(cs) - 1
}

// pageCount draws the number of pages to read from one partition.
func (g *Generator) pageCount(r *rand.Rand, avg, filePages int) int {
	lo := avg / 2
	if lo < 1 {
		lo = 1
	}
	var hi int
	switch g.Spread {
	case SpreadHalfToTwice:
		hi = 2 * avg
	default:
		hi = avg + avg/2
	}
	n := sim.UniformInt(r, lo, hi)
	if n > filePages {
		n = filePages
	}
	return n
}

// NewPlan builds a default-class transaction accessing every partition of
// relation rel (the paper's configuration). See NewClassPlan.
func (g *Generator) NewPlan(r *rand.Rand, rel int) TxnPlan {
	return g.NewClassPlan(r, rel, g.classes()[0])
}

// NewClassPlan builds a transaction of the given class against relation
// rel: one cohort per node holding (a primary copy of) the partitions it
// touches, each cohort reading a random sample (without replacement) of
// pages from each local partition and updating each with the class's write
// probability. With replicated files, every updated page additionally gets
// a remote-write access at each node holding another copy
// (read-one/write-all), extending the transaction with cohorts at those
// nodes when needed.
//
// The returned plan is caller-owned; the hot transaction loop uses
// AcquireClassPlan instead, which recycles plans through the generator's
// free-list.
func (g *Generator) NewClassPlan(r *rand.Rand, rel int, class Class) TxnPlan {
	var plan TxnPlan
	g.build(r, rel, class, &plan)
	return plan
}

// maxPagesPerPartition returns the worst-case pageCount draw over every
// class: the upper end of the spread around the largest class mean, capped
// at the partition size.
func (g *Generator) maxPagesPerPartition() int {
	hiMax := 1
	for _, c := range g.classes() {
		var hi int
		switch g.Spread {
		case SpreadHalfToTwice:
			hi = 2 * c.AvgPages
		default:
			hi = c.AvgPages + c.AvgPages/2
		}
		if hi > g.Catalog.PagesPerFile {
			hi = g.Catalog.PagesPerFile
		}
		if hi > hiMax {
			hiMax = hi
		}
	}
	return hiMax
}

// MaxAccessesPerCohort bounds the accesses one cohort can be planned with.
// Each partition of the relation contributes at most a worst-case page
// draw to a given node — as the node's own partition or as one remote
// replica copy of its writes (a file's replica list names a node at most
// once) — so the bound is partitions times the worst-case per-partition
// page count. Exposed so the machine can size per-cohort resources (lock
// tables) with the same bound.
func (g *Generator) MaxAccessesPerCohort() int {
	return g.Catalog.PartsPerRelation * g.maxPagesPerPartition()
}

// Reserve pre-builds pooled plan shells, each with cohort and access
// storage at its worst-case size, and pre-sizes the construction scratch.
// The pool and scratch are self-amortising, but their growth chases
// high-water records (most live plans at once, widest plan seen) that
// arrive too rarely for a warmup to retire deterministically — holders
// with a pinned allocation budget pre-size from the machine's concurrency
// bound instead. Reserve draws no randomness, so pooled plans built after
// it are bit-identical to plans built without it.
func (g *Generator) Reserve(plans int) {
	numNodes := 0
	for _, n := range g.Catalog.FileNode {
		numNodes = max(numNodes, n+1)
	}
	for _, copies := range g.Catalog.FileReplicas {
		for _, n := range copies {
			numNodes = max(numNodes, n+1)
		}
	}
	acc := g.MaxAccessesPerCohort()
	if cap(g.free) < plans {
		f := make([]*TxnPlan, len(g.free), plans)
		copy(f, g.free)
		g.free = f
	}
	for len(g.free) < plans {
		p := &TxnPlan{Cohorts: make([]CohortPlan, numNodes)}
		for i := range p.Cohorts {
			p.Cohorts[i].Accesses = make([]Access, 0, acc)
		}
		p.Cohorts = p.Cohorts[:0]
		g.free = append(g.free, p)
	}
	// Remote-copy staging: every write can fan out to each extra replica.
	if rc := g.Catalog.ReplicaCount(); rc > 1 {
		if n := acc * (rc - 1); cap(g.remote) < n {
			g.remote = make([]Access, 0, n)
			g.remoteAt = make([]int, 0, n)
		}
	}
	// FileCount filter staging: at most every partition, at every node.
	if n := g.Catalog.PartsPerRelation; cap(g.fFlat) < n {
		g.fFlat = make([]int, 0, n)
	}
	if cap(g.fNodes) < numNodes {
		g.fNodes = make([]int, 0, numNodes)
		g.fParts = make([][]int, 0, numNodes)
	}
}

// AcquireClassPlan is NewClassPlan drawing from the generator's plan
// free-list: the returned plan starts with one reference and is recycled
// when Release drops the count to zero. It consumes exactly the same
// randomness as NewClassPlan.
//
//ddbmlint:hotpath per-transaction plan construction pinned by TestTxnPathAllocFree
func (g *Generator) AcquireClassPlan(r *rand.Rand, rel int, class Class) *TxnPlan {
	var p *TxnPlan
	if n := len(g.free); n > 0 {
		p = g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
	} else {
		p = &TxnPlan{} //ddbmlint:allow hotpath-alloc pool growth: one plan per high-water live transaction
	}
	p.refs = 1
	g.build(r, rel, class, p)
	return p
}

// Retain adds a reference to a pooled plan (a restarted attempt keeps the
// plan alive across its in-flight messages).
//
//ddbmlint:hotpath plan refcounting on the transaction path
func (g *Generator) Retain(p *TxnPlan) { p.refs++ }

// Release drops a reference to a pooled plan, recycling it when the last
// reference goes away.
//
//ddbmlint:hotpath plan refcounting on the transaction path
func (g *Generator) Release(p *TxnPlan) {
	p.refs--
	if p.refs < 0 {
		panic("workload: plan released more often than retained")
	}
	if p.refs == 0 {
		g.free = append(g.free, p) //ddbmlint:allow hotpath-alloc free-list push; capacity reaches the live-plan high-water mark
	}
}

// build constructs a plan of the given class into p, reusing p's cohort
// and access storage. All randomness flows through here in a fixed order
// (partition filter, then per-partition page count, page sample, and
// per-page write/instruction draws), so pooled and value-API plans are
// interchangeable under a seed.
//
//ddbmlint:hotpath plan construction body pinned by TestTxnPathAllocFree
func (g *Generator) build(r *rand.Rand, rel int, class Class, p *TxnPlan) {
	nodes, parts := g.resolveRelation(rel)
	// Restrict to FileCount randomly chosen partitions if the class asks.
	if class.FileCount > 0 && class.FileCount < g.Catalog.PartsPerRelation {
		nodes, parts = g.filterParts(r, nodes, parts, class.FileCount)
	}

	p.Relation, p.Sequential = rel, class.Sequential
	p.Cohorts = p.Cohorts[:0]
	for _, node := range nodes {
		appendCohort(p, node)
	}
	replicated := g.Catalog.ReplicaCount() > 1
	g.remote = g.remote[:0]
	g.remoteAt = g.remoteAt[:0]
	for i := range nodes {
		cp := &p.Cohorts[i]
		for _, part := range parts[i] {
			file := g.Catalog.FileOf(rel, part)
			n := g.pageCount(r, class.AvgPages, g.Catalog.PagesPerFile)
			pages := sim.SampleWithoutReplacementInto(r, g.Catalog.PagesPerFile, n, g.permScratch)
			g.permScratch = pages[:0]
			for _, pg := range pages {
				a := Access{
					Page:  db.PageID{File: file, Page: pg},
					Write: r.Float64() < class.WriteProb,
					Inst:  sim.Exponential(r, class.InstPerPage),
				}
				if a.Write {
					a.WriteInst = sim.Exponential(r, class.InstPerPage)
					if replicated {
						for _, rn := range g.Catalog.Replicas(file)[1:] {
							g.remote = append(g.remote, Access{Page: a.Page, Write: true, Remote: true}) //ddbmlint:allow hotpath-alloc remote-write scratch grows to its high-water mark
							g.remoteAt = append(g.remoteAt, rn)                                          //ddbmlint:allow hotpath-alloc remote-write scratch grows to its high-water mark
						}
					}
				}
				cp.Accesses = append(cp.Accesses, a) //ddbmlint:allow hotpath-alloc access storage grows to its high-water mark and survives plan recycling
			}
		}
	}
	// Attach remote-copy writes, creating replica-only cohorts as needed.
	for i := range g.remote {
		node := g.remoteAt[i]
		idx := cohortIndex(p, node)
		if idx < 0 {
			idx = appendCohort(p, node)
		}
		p.Cohorts[idx].Accesses = append(p.Cohorts[idx].Accesses, g.remote[i]) //ddbmlint:allow hotpath-alloc access storage grows to its high-water mark and survives plan recycling
	}
}

// appendCohort adds a cohort for node to the plan, reslicing into the
// plan's existing storage when it has capacity so a recycled element keeps
// its Accesses backing array.
//
//ddbmlint:hotpath cohort slot reuse during plan construction
func appendCohort(p *TxnPlan, node int) int {
	n := len(p.Cohorts)
	if n < cap(p.Cohorts) {
		p.Cohorts = p.Cohorts[:n+1]
		p.Cohorts[n].Node = node
		p.Cohorts[n].Accesses = p.Cohorts[n].Accesses[:0]
	} else {
		p.Cohorts = append(p.Cohorts, CohortPlan{Node: node}) //ddbmlint:allow hotpath-alloc cohort storage grows to its high-water mark
	}
	return n
}

// cohortIndex finds the plan's cohort at node, -1 if none. Plans span a
// handful of nodes, so a linear scan beats a map — and allocates nothing.
//
//ddbmlint:hotpath cohort lookup during plan construction
func cohortIndex(p *TxnPlan, node int) int {
	for i := range p.Cohorts {
		if p.Cohorts[i].Node == node {
			return i
		}
	}
	return -1
}

// resolveRelation returns the nodes storing relation rel and, aligned with
// them, the partitions each holds. The catalog is immutable, so the result
// is computed once per relation and cached.
//
//ddbmlint:hotpath per-transaction placement lookup
func (g *Generator) resolveRelation(rel int) ([]int, [][]int) {
	for len(g.relNodes) <= rel {
		g.relNodes = append(g.relNodes, nil) //ddbmlint:allow hotpath-alloc cache growth: once per relation
		g.relParts = append(g.relParts, nil) //ddbmlint:allow hotpath-alloc cache growth: once per relation
	}
	if g.relNodes[rel] == nil {
		nodes, partsAt := g.Catalog.RelationNodes(rel)
		parts := make([][]int, len(nodes)) //ddbmlint:allow hotpath-alloc cache fill: once per relation
		for i, n := range nodes {
			parts[i] = partsAt[n]
		}
		g.relNodes[rel], g.relParts[rel] = nodes, parts
	}
	return g.relNodes[rel], g.relParts[rel]
}

// filterParts restricts (nodes, parts) to fileCount randomly sampled
// partitions, staging the filtered view in the generator's reusable
// buffers. It draws exactly the randomness the pre-pooling implementation
// drew: one sample of fileCount partitions.
//
//ddbmlint:hotpath FileCount partition filter on the transaction path
func (g *Generator) filterParts(r *rand.Rand, nodes []int, parts [][]int, fileCount int) ([]int, [][]int) {
	total := g.Catalog.PartsPerRelation
	if cap(g.chosen) < total {
		g.chosen = make([]bool, total) //ddbmlint:allow hotpath-alloc scratch growth to the partition count
	}
	g.chosen = g.chosen[:total]
	sample := sim.SampleWithoutReplacementInto(r, total, fileCount, g.partSample)
	for _, part := range sample {
		g.chosen[part] = true
	}
	g.fNodes, g.fParts, g.fFlat = g.fNodes[:0], g.fParts[:0], g.fFlat[:0]
	for i, node := range nodes {
		start := len(g.fFlat)
		for _, part := range parts[i] {
			if g.chosen[part] {
				g.fFlat = append(g.fFlat, part) //ddbmlint:allow hotpath-alloc filter scratch grows to its high-water mark
			}
		}
		if len(g.fFlat) > start {
			g.fNodes = append(g.fNodes, node)                        //ddbmlint:allow hotpath-alloc filter scratch grows to its high-water mark
			g.fParts = append(g.fParts, g.fFlat[start:len(g.fFlat)]) //ddbmlint:allow hotpath-alloc filter scratch grows to its high-water mark
		}
	}
	for _, part := range sample {
		g.chosen[part] = false
	}
	g.partSample = sample[:0]
	return g.fNodes, g.fParts
}
