package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ddbm/internal/db"
)

func gen(t *testing.T, ways int) *Generator {
	t.Helper()
	cat, err := db.PlacePartitioned(8, 8, 300, 8, ways)
	if err != nil {
		t.Fatal(err)
	}
	return &Generator{Catalog: cat, AvgPages: 8, WriteProb: 0.25, InstPerPage: 8000}
}

func TestPlanCohortsMatchPlacement(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		g := gen(t, ways)
		r := rand.New(rand.NewSource(1))
		for rel := 0; rel < 8; rel++ {
			plan := g.NewPlan(r, rel)
			if len(plan.Cohorts) != ways {
				t.Fatalf("ways=%d rel=%d: %d cohorts", ways, rel, len(plan.Cohorts))
			}
			for _, c := range plan.Cohorts {
				for _, a := range c.Accesses {
					if g.Catalog.NodeOf(a.Page.File) != c.Node {
						t.Fatalf("cohort at node %d accesses file on node %d",
							c.Node, g.Catalog.NodeOf(a.Page.File))
					}
					if a.Page.File/8 != rel {
						t.Fatalf("plan for relation %d touches file %d", rel, a.Page.File)
					}
				}
			}
		}
	}
}

func TestPlanPageCountBounds(t *testing.T) {
	// Default spread: 4..12 pages per partition (paper footnote 12).
	g := gen(t, 8)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		plan := g.NewPlan(r, i%8)
		perFile := map[int]int{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				perFile[a.Page.File]++
			}
		}
		if len(perFile) != 8 {
			t.Fatalf("transaction touched %d partitions, want all 8", len(perFile))
		}
		for f, n := range perFile {
			if n < 4 || n > 12 {
				t.Fatalf("file %d accessed %d pages, want 4..12", f, n)
			}
		}
	}
}

func TestPlanPageCountSpreadHalfToTwice(t *testing.T) {
	g := gen(t, 8)
	g.Spread = SpreadHalfToTwice
	r := rand.New(rand.NewSource(3))
	seen16 := false
	for i := 0; i < 500; i++ {
		plan := g.NewPlan(r, 0)
		perFile := map[int]int{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				perFile[a.Page.File]++
			}
		}
		for f, n := range perFile {
			if n < 4 || n > 16 {
				t.Fatalf("file %d accessed %d pages, want 4..16", f, n)
			}
			if n == 16 {
				seen16 = true
			}
		}
	}
	if !seen16 {
		t.Error("half-to-twice spread never produced 16 pages over 4000 draws")
	}
}

func TestPlanPagesDistinctWithinPartition(t *testing.T) {
	g := gen(t, 8)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		plan := g.NewPlan(r, i%8)
		seen := map[db.PageID]bool{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				if seen[a.Page] {
					t.Fatalf("page %v accessed twice", a.Page)
				}
				seen[a.Page] = true
				if a.Page.Page < 0 || a.Page.Page >= 300 {
					t.Fatalf("page number %d out of file bounds", a.Page.Page)
				}
			}
		}
	}
}

func TestPlanWriteFraction(t *testing.T) {
	g := gen(t, 8)
	r := rand.New(rand.NewSource(5))
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		plan := g.NewPlan(r, i%8)
		reads += plan.NumReads()
		writes += plan.NumWrites()
	}
	frac := float64(writes) / float64(reads)
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("write fraction %v, want ~0.25", frac)
	}
	// The paper's averages: 64 reads, 8 writes per transaction.
	avgReads := float64(reads) / 2000
	if avgReads < 62 || avgReads > 66 {
		t.Errorf("average reads/txn %v, want ~64", avgReads)
	}
}

func TestPlanInstExponential(t *testing.T) {
	g := gen(t, 8)
	r := rand.New(rand.NewSource(6))
	var sum, wsum float64
	n, wn := 0, 0
	for i := 0; i < 1000; i++ {
		plan := g.NewPlan(r, i%8)
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				if a.Inst < 0 || a.WriteInst < 0 {
					t.Fatal("negative instruction count")
				}
				sum += a.Inst
				n++
				if a.Write {
					wsum += a.WriteInst
					wn++
				} else if a.WriteInst != 0 {
					t.Fatal("read-only access has write-processing cost")
				}
			}
		}
	}
	mean := sum / float64(n)
	if mean < 7600 || mean > 8400 {
		t.Errorf("mean read inst/page %v, want ~8000", mean)
	}
	wmean := wsum / float64(wn)
	if wmean < 7500 || wmean > 8500 {
		t.Errorf("mean write inst/page %v, want ~8000 (Table 2: processing applies when reading or writing)", wmean)
	}
}

func TestPlanDeterministicByRand(t *testing.T) {
	g := gen(t, 4)
	a := g.NewPlan(rand.New(rand.NewSource(7)), 3)
	b := g.NewPlan(rand.New(rand.NewSource(7)), 3)
	if a.NumReads() != b.NumReads() || a.NumWrites() != b.NumWrites() {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Cohorts {
		for j := range a.Cohorts[i].Accesses {
			if a.Cohorts[i].Accesses[j] != b.Cohorts[i].Accesses[j] {
				t.Fatal("same seed produced different accesses")
			}
		}
	}
}

func TestPlanReplicatedWrites(t *testing.T) {
	cat, err := db.PlacePartitioned(8, 8, 300, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Replicate(3, 8); err != nil {
		t.Fatal(err)
	}
	g := &Generator{Catalog: cat, AvgPages: 8, WriteProb: 0.5, InstPerPage: 8000}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		plan := g.NewPlan(r, i%8)
		// Every written page must appear at exactly 3 nodes: once locally
		// (Remote=false) and twice remotely (Remote=true, no read cost).
		byPage := map[db.PageID][]Access{}
		nodeOf := map[db.PageID]map[int]bool{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				if a.Write {
					byPage[a.Page] = append(byPage[a.Page], a)
					if nodeOf[a.Page] == nil {
						nodeOf[a.Page] = map[int]bool{}
					}
					if nodeOf[a.Page][c.Node] {
						t.Fatalf("page %v written twice at node %d", a.Page, c.Node)
					}
					nodeOf[a.Page][c.Node] = true
				} else if a.Remote {
					t.Fatal("remote access without Write")
				}
			}
		}
		for page, accesses := range byPage {
			local, remote := 0, 0
			for _, a := range accesses {
				if a.Remote {
					remote++
					if a.Inst != 0 || a.WriteInst != 0 {
						t.Fatal("remote-copy write carries processing cost")
					}
				} else {
					local++
				}
			}
			if local != 1 || remote != 2 {
				t.Fatalf("page %v: %d local + %d remote writes, want 1+2", page, local, remote)
			}
		}
		// Reads still only touch the single primary node (1-way layout).
		reads := 0
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				if !a.Remote {
					reads++
					if cat.NodeOf(a.Page.File) != c.Node {
						t.Fatal("read not at the primary copy")
					}
				}
			}
		}
		if plan.NumReads() != reads {
			t.Fatalf("NumReads %d, counted %d", plan.NumReads(), reads)
		}
	}
}

func TestPlanUnreplicatedHasNoRemotes(t *testing.T) {
	g := gen(t, 8)
	r := rand.New(rand.NewSource(10))
	plan := g.NewPlan(r, 0)
	for _, c := range plan.Cohorts {
		for _, a := range c.Accesses {
			if a.Remote {
				t.Fatal("remote access without replication")
			}
		}
	}
}

func TestPageCountClampsToFileSize(t *testing.T) {
	cat, _ := db.PlacePartitioned(2, 2, 5, 2, 2) // tiny 5-page files
	g := &Generator{Catalog: cat, AvgPages: 8, WriteProb: 0, InstPerPage: 100}
	r := rand.New(rand.NewSource(8))
	plan := g.NewPlan(r, 0)
	for _, c := range plan.Cohorts {
		if len(c.Accesses) > 5 {
			t.Fatalf("cohort accesses %d pages of a 5-page file", len(c.Accesses))
		}
	}
}

func TestGeneratorValidate(t *testing.T) {
	cat, _ := db.PlaceScaled(8, 8, 300, 8)
	good := &Generator{Catalog: cat, AvgPages: 8, WriteProb: 0.25, InstPerPage: 8000}
	if err := good.Validate(); err != nil {
		t.Errorf("valid generator rejected: %v", err)
	}
	bad := []*Generator{
		{Catalog: nil, AvgPages: 8, WriteProb: 0.25, InstPerPage: 8000},
		{Catalog: cat, AvgPages: 0, WriteProb: 0.25, InstPerPage: 8000},
		{Catalog: cat, AvgPages: 8, WriteProb: 1.5, InstPerPage: 8000},
		{Catalog: cat, AvgPages: 8, WriteProb: -0.1, InstPerPage: 8000},
		{Catalog: cat, AvgPages: 8, WriteProb: 0.25, InstPerPage: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid generator %d accepted", i)
		}
	}
}

func TestPlanProperty(t *testing.T) {
	// Property: for any ways/avg combination, plans have ways cohorts, all
	// accesses in bounds and distinct within a partition.
	f := func(w8, avg8, seed uint8) bool {
		ways := []int{1, 2, 4, 8}[w8%4]
		avg := int(avg8%12) + 1
		cat, err := db.PlacePartitioned(8, 8, 50, 8, ways)
		if err != nil {
			return false
		}
		g := &Generator{Catalog: cat, AvgPages: avg, WriteProb: 0.5, InstPerPage: 1000}
		r := rand.New(rand.NewSource(int64(seed)))
		plan := g.NewPlan(r, int(seed)%8)
		if len(plan.Cohorts) != ways {
			return false
		}
		seen := map[db.PageID]bool{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				if a.Page.Page < 0 || a.Page.Page >= 50 || seen[a.Page] {
					return false
				}
				seen[a.Page] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
