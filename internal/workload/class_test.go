package workload

import (
	"math/rand"
	"testing"

	"ddbm/internal/db"
)

func multiGen(t *testing.T) *Generator {
	t.Helper()
	cat, err := db.PlacePartitioned(8, 8, 300, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &Generator{
		Catalog: cat,
		Classes: []Class{
			{Frac: 0.75, FileCount: 1, AvgPages: 4, WriteProb: 0.5, InstPerPage: 4000},
			{Frac: 0.25, FileCount: 0, AvgPages: 8, WriteProb: 0, InstPerPage: 8000, Sequential: true},
		},
	}
}

func TestClassOfTerminalFollowsFractions(t *testing.T) {
	g := multiGen(t)
	counts := map[int]int{}
	const terms = 128
	for i := 0; i < terms; i++ {
		c := g.ClassOfTerminal(i, terms)
		if c.FileCount == 1 {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	if counts[0] != 96 || counts[1] != 32 {
		t.Fatalf("class split %v, want 96/32 for 0.75/0.25", counts)
	}
}

func TestClassOfTerminalSingleClass(t *testing.T) {
	cat, _ := db.PlaceScaled(8, 8, 300, 8)
	g := &Generator{Catalog: cat, AvgPages: 8, WriteProb: 0.25, InstPerPage: 8000}
	c := g.ClassOfTerminal(0, 10)
	if c.AvgPages != 8 || c.WriteProb != 0.25 || c.InstPerPage != 8000 || c.FileCount != 0 {
		t.Fatalf("default class %+v", c)
	}
}

func TestClassPlanRespectsFileCount(t *testing.T) {
	g := multiGen(t)
	r := rand.New(rand.NewSource(1))
	small := g.Classes[0]
	for i := 0; i < 100; i++ {
		plan := g.NewClassPlan(r, i%8, small)
		files := map[int]bool{}
		for _, c := range plan.Cohorts {
			for _, a := range c.Accesses {
				files[a.Page.File] = true
			}
		}
		if len(files) != 1 {
			t.Fatalf("FileCount=1 class touched %d files", len(files))
		}
		if plan.Sequential {
			t.Fatal("class 0 is parallel")
		}
	}
}

func TestClassPlanFullRelation(t *testing.T) {
	g := multiGen(t)
	r := rand.New(rand.NewSource(2))
	big := g.Classes[1]
	plan := g.NewClassPlan(r, 3, big)
	files := map[int]bool{}
	writes := 0
	for _, c := range plan.Cohorts {
		for _, a := range c.Accesses {
			files[a.Page.File] = true
			if a.Write {
				writes++
			}
		}
	}
	if len(files) != 8 {
		t.Fatalf("FileCount=0 class touched %d files, want all 8", len(files))
	}
	if writes != 0 {
		t.Fatal("read-only class produced writes")
	}
	if !plan.Sequential {
		t.Fatal("class 1 requests sequential execution")
	}
}

func TestClassPlanPageCountsPerClass(t *testing.T) {
	g := multiGen(t)
	r := rand.New(rand.NewSource(3))
	small := g.Classes[0]
	for i := 0; i < 100; i++ {
		plan := g.NewClassPlan(r, 0, small)
		n := plan.NumReads()
		if n < 2 || n > 6 {
			t.Fatalf("small class read %d pages, want 2..6 (avg 4)", n)
		}
	}
}

func TestClassValidation(t *testing.T) {
	cat, _ := db.PlaceScaled(8, 8, 300, 8)
	bad := []*Generator{
		{Catalog: cat, Classes: []Class{{Frac: 0.5, AvgPages: 4, InstPerPage: 1}}},                                       // fractions != 1
		{Catalog: cat, Classes: []Class{{Frac: 1, AvgPages: 0, InstPerPage: 1}}},                                         // pages
		{Catalog: cat, Classes: []Class{{Frac: 1, AvgPages: 4, WriteProb: 2, InstPerPage: 1}}},                           // prob
		{Catalog: cat, Classes: []Class{{Frac: 1, AvgPages: 4, FileCount: 9, InstPerPage: 1}}},                           // files
		{Catalog: cat, Classes: []Class{{Frac: 0, AvgPages: 4, InstPerPage: 1}, {Frac: 1, AvgPages: 4, InstPerPage: 1}}}, // zero frac
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid class config %d accepted", i)
		}
	}
	good := &Generator{Catalog: cat, Classes: []Class{
		{Frac: 0.5, AvgPages: 4, InstPerPage: 1},
		{Frac: 0.5, AvgPages: 8, FileCount: 3, InstPerPage: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid class config rejected: %v", err)
	}
}

func TestClassPlanReplicationInteraction(t *testing.T) {
	cat, _ := db.PlacePartitioned(8, 8, 300, 8, 8)
	if err := cat.Replicate(2, 8); err != nil {
		t.Fatal(err)
	}
	g := &Generator{Catalog: cat, Classes: []Class{
		{Frac: 1, FileCount: 2, AvgPages: 4, WriteProb: 1, InstPerPage: 1000},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	plan := g.NewClassPlan(r, 0, g.Classes[0])
	local, remote := 0, 0
	for _, c := range plan.Cohorts {
		for _, a := range c.Accesses {
			if a.Remote {
				remote++
			} else {
				local++
			}
		}
	}
	if remote != local {
		t.Fatalf("WriteProb=1 with 2 copies: %d local vs %d remote writes, want equal", local, remote)
	}
}
