package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// runReflectSort flags sort.Slice and sort.SliceStable in non-test
// internal/ code. Both route every comparison and swap through
// reflectlite.Swapper, which a CPU profile of the contention-heavy lock
// path showed costing more than the simulation model itself
// (sort.pdqsort_func + reflectlite at ~35% of total CPU before the
// sort-free lock manager). The generic slices.SortFunc performs the
// identical pdqsort permutation — both are generated from the same
// template — with direct element moves, so the swap is behaviour-
// preserving even for equal keys. Interface-based sort.Sort and the hot
// path's incremental ordered structures are not flagged.
func runReflectSort(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		if name := fn.Name(); name == "Slice" || name == "SliceStable" {
			p.Report(sel.Pos(),
				fmt.Sprintf("reflection-based sort.%s", name),
				"use slices.SortFunc (or slices.Sort for ordered element types): same pdqsort permutation, no reflectlite.Swapper")
		}
		return true
	})
}
