package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// allocSite is one construct that allocates (or cannot be proven not
// to): its position and a human-readable description.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocExternal are standard-library calls audited as allocation-free,
// keyed by package path; an empty set allows the whole package. Anything
// external and not listed here is opaque to the analysis and flagged on
// hot paths.
var allocExternal = map[string]map[string]bool{
	"math": nil, // pure arithmetic
	"cmp":  nil, // comparisons
	"math/rand": {
		// The table-driven and rejection-sampling draws on an existing
		// *rand.Rand are allocation-free; constructors and Perm are not.
		"Intn": true, "Int63": true, "Int31n": true, "Int63n": true,
		"Float64": true, "ExpFloat64": true, "NormFloat64": true,
	},
	"sync/atomic": nil, // lock-free loads/stores/RMWs on existing memory
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
		"BinarySearch": true, "BinarySearchFunc": true,
		"Index": true, "IndexFunc": true, "Contains": true, "ContainsFunc": true,
		"Min": true, "MinFunc": true, "Max": true, "MaxFunc": true,
		"Reverse": true, "IsSorted": true, "IsSortedFunc": true, "Clip": true,
	},
}

func externalAllowed(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return true
	}
	fns, ok := allocExternal[fn.Pkg().Path()]
	if !ok {
		return false
	}
	return fns == nil || fns[fn.Name()]
}

// extractAllocs records every definite allocation site and every opaque
// (unverifiable) call site in n's own body. The rules, and what they
// deliberately let through:
//
//   - new, make, &composite{}, slice and map literals, nested function
//     literals (closure capture), string concatenation and string<->byte
//     conversions, go statements: definite sites.
//   - append: a definite site (amortized growth still allocates when it
//     grows) unless the buffer is rooted at one of n's own parameters —
//     the caller-owned-buffer idiom, where amortization is the caller's
//     audited responsibility — or an inline x[:0] reslice, the explicit
//     buffer-reuse idiom.
//   - value struct literals are allowed: they cannot heap-allocate
//     unless boxed or address-taken, which are flagged separately.
//   - interface boxing: any non-constant, non-nil, non-pointer-shaped
//     value converted to an interface (call argument, assignment,
//     return, explicit conversion) is a definite site; pointer-shaped
//     values (pointers, channels, maps, funcs) fit the interface word.
//   - static calls into the module are not sites — the hot-path walk
//     follows the edge instead; external calls are allowed only on the
//     audited allowlist; interface dispatch and function values are
//     opaque and flagged as unverifiable.
//   - map index writes and defer are not flagged (map growth and defer
//     frames are runtime-internal and pre-sized on the repo's hot
//     paths); the runtime AllocsPerRun pins remain the backstop there.
func extractAllocs(g *CallGraph, n *FuncNode) {
	info := n.Unit.Info
	addrLits := map[*ast.CompositeLit]bool{}
	walkOwnBody(n, func(x ast.Node) {
		if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := unparen(u.X).(*ast.CompositeLit); ok {
				addrLits[cl] = true
			}
		}
	})
	add := func(pos token.Pos, what string) {
		n.allocs = append(n.allocs, allocSite{pos: pos, what: what})
	}
	opaque := func(pos token.Pos, what string) {
		n.opaque = append(n.opaque, allocSite{pos: pos, what: what})
	}
	walkOwnBody(n, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			n.extractCallAllocs(g, x, add, opaque)
		case *ast.CompositeLit:
			if addrLits[x] {
				add(x.Pos(), "composite literal escaping to the heap")
				return
			}
			switch typeUnder(info, x).(type) {
			case *types.Slice:
				add(x.Pos(), "slice literal")
			case *types.Map:
				add(x.Pos(), "map literal")
			}
		case *ast.FuncLit:
			if lit := unparen(x); lit == n.Lit {
				return
			}
			if !immediatelyCalled(n, x) {
				add(x.Pos(), "function literal (closure)")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) && info.Types[x].Value == nil {
				add(x.Pos(), "string concatenation")
			}
		case *ast.GoStmt:
			add(x.Pos(), "go statement")
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) && x.Tok == token.ASSIGN {
				for i := range x.Lhs {
					if boxes(info, x.Rhs[i], info.TypeOf(x.Lhs[i])) {
						add(x.Rhs[i].Pos(), "interface boxing in assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			res := n.Sig.Results()
			if len(x.Results) == res.Len() {
				for i, r := range x.Results {
					if boxes(info, r, res.At(i).Type()) {
						add(r.Pos(), "interface boxing in return")
					}
				}
			}
		}
	})
}

// immediatelyCalled reports whether lit appears as the Fun of a call in
// n's body — func(){...}() creates no closure value that outlives the
// call, and the hot-path walk follows the static edge into the literal.
func immediatelyCalled(n *FuncNode, lit *ast.FuncLit) bool {
	for _, site := range n.Calls {
		if site.Kind == callStatic && unparen(site.Call.Fun) == lit {
			return true
		}
	}
	return false
}

// extractCallAllocs handles one call expression: builtins, conversions,
// external calls, dynamic calls, and boxing at the arguments.
func (n *FuncNode) extractCallAllocs(g *CallGraph, call *ast.CallExpr, add, opaque func(token.Pos, string)) {
	info := n.Unit.Info
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion: string<->[]byte/[]rune copy, or boxing into an
		// interface type.
		target := info.TypeOf(fun)
		if len(call.Args) == 1 {
			if stringByteConversion(info, target, call.Args[0]) {
				add(call.Pos(), "string conversion")
			} else if boxes(info, call.Args[0], target) {
				add(call.Pos(), "interface boxing in conversion")
			}
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				add(call.Pos(), "new")
			case "make":
				add(call.Pos(), "make")
			case "append":
				if !n.appendExempt(call) {
					add(call.Pos(), "append growth beyond capacity")
				}
			case "panic":
				if len(call.Args) == 1 && boxes(info, call.Args[0], anyType) {
					add(call.Args[0].Pos(), "interface boxing in panic")
				}
			}
			return
		}
	}
	site := g.classifyCall(info, call)
	if site == nil {
		return
	}
	switch site.Kind {
	case callStatic:
		if site.External != nil && !externalAllowed(site.External) {
			opaque(call.Pos(), fmt.Sprintf("call to external function %s not audited allocation-free", shortFuncName(site.External)))
		}
	case callInterface:
		name := "method"
		if site.External != nil {
			name = site.External.Name()
		}
		opaque(call.Pos(), fmt.Sprintf("dynamic dispatch through interface method %s", name))
	case callIndirect:
		opaque(call.Pos(), "dynamic call through a function value")
	}
	// Boxing at argument positions applies to every real call, module-
	// internal or not: the conversion happens in this frame.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil && call.Ellipsis == token.NoPos {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil && boxes(info, arg, pt) {
				add(arg.Pos(), "interface boxing in call argument")
			}
		}
	}
}

// appendExempt reports whether an append call grows a caller-owned
// buffer: the base slice is rooted at one of n's parameters, or is an
// inline x[:0] reslice (explicit reuse of an existing backing array).
func (n *FuncNode) appendExempt(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	base := unparen(call.Args[0])
	for {
		switch b := base.(type) {
		case *ast.SliceExpr:
			if isZeroReslice(b) {
				return true
			}
			base = unparen(b.X)
		case *ast.Ident:
			if obj := n.Unit.Info.Uses[b]; obj != nil && n.params[obj] {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// isZeroReslice matches x[:0] (and x[0:0]).
func isZeroReslice(s *ast.SliceExpr) bool {
	if s.Slice3 || s.High == nil {
		return false
	}
	lit, ok := unparen(s.High).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func stringByteConversion(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.TypeOf(arg)
	if at == nil || target == nil {
		return false
	}
	// Constant string conversions are folded at compile time.
	if tv := info.Types[arg]; tv.Value != nil {
		return false
	}
	return (isStringType(target) && isByteOrRuneSlice(at)) ||
		(isByteOrRuneSlice(target) && isStringType(at))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

var anyType = types.Universe.Lookup("any").Type()

// boxes reports whether assigning expr to a target of type target
// converts a non-interface value into an interface, allocating unless
// the value is constant (static data), nil, or pointer-shaped (fits the
// interface data word directly).
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	t := info.TypeOf(expr)
	if t == nil || types.IsInterface(t) {
		return false
	}
	if tv := info.Types[expr]; tv.Value != nil || tv.IsNil() {
		return false
	}
	return !pointerShaped(t)
}

// pointerShaped reports whether t's values occupy exactly one pointer
// word, so converting them to an interface stores the value directly.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
