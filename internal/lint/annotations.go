package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// annotation is one parsed //ddbmlint: comment clause.
type annotation struct {
	line   int
	check  string // canonical check name the annotation excuses, or "hotpath"
	reason string
	used   bool
}

// fileAnns indexes a file's annotations by line (for suppression lookup)
// and in source order (for the unused-annotation sweep). A line can carry
// several annotations — clauses chained inside one comment and stacked
// comment lines above a site are all independently tracked.
type fileAnns struct {
	byLine map[int][]*annotation
	list   []*annotation
}

const annPrefix = "ddbmlint:"

// collectAnnotations parses every //ddbmlint: comment in f. One comment
// may chain several clauses ("//ddbmlint:allow a <why> ddbmlint:allow b
// <why>"), so a site flagged by two checks can suppress both on one line.
// Malformed annotations (unknown verb or check, missing justification)
// are reported immediately when report is set — an escape hatch that does
// not state its argument is worthless for review. Dependency units parse
// annotations for suppression but never report on them.
func collectAnnotations(fset *token.FileSet, f *ast.File, rn *run, report bool) *fileAnns {
	fa := &fileAnns{byLine: map[int][]*annotation{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, annPrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			// Split chained clauses: every "ddbmlint:" occurrence starts a
			// new annotation, so the reason of one clause ends where the
			// next begins.
			for _, clause := range strings.Split(text, annPrefix) {
				clause = strings.TrimSpace(strings.TrimSuffix(clause, "//"))
				if clause == "" {
					continue
				}
				if a := parseClause(clause, pos, rn, report); a != nil {
					fa.byLine[a.line] = append(fa.byLine[a.line], a)
					fa.list = append(fa.list, a)
				}
			}
		}
	}
	return fa
}

// parseClause parses one annotation clause (the text after "ddbmlint:").
func parseClause(body string, pos token.Position, rn *run, report bool) *annotation {
	verb, rest, _ := strings.Cut(body, " ")
	var check, reason string
	switch verb {
	case "ordered":
		check, reason = "map-order", strings.TrimSpace(rest)
	case "allow":
		check, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
		reason = strings.TrimSpace(reason)
		if !checkNameValid(check) {
			if report {
				rn.diags = append(rn.diags, Diagnostic{
					Pos: pos, Check: "annotation",
					Msg:  fmt.Sprintf("ddbmlint:allow names unknown check %q", check),
					Hint: knownChecksHint(),
				})
			}
			return nil
		}
	case "hotpath":
		// Marks the next function declaration as a statically
		// allocation-free hot path; the reason is optional (the mark is a
		// requirement, not an escape).
		return &annotation{line: pos.Line, check: "hotpath", reason: strings.TrimSpace(rest)}
	default:
		if report {
			rn.diags = append(rn.diags, Diagnostic{
				Pos: pos, Check: "annotation",
				Msg:  fmt.Sprintf("unknown ddbmlint annotation verb %q", verb),
				Hint: "use //ddbmlint:ordered <why>, //ddbmlint:allow <check> <why>, or //ddbmlint:hotpath",
			})
		}
		return nil
	}
	if reason == "" {
		if report {
			rn.diags = append(rn.diags, Diagnostic{
				Pos: pos, Check: "annotation",
				Msg:  "ddbmlint annotation without a justification",
				Hint: "state why the flagged construct cannot affect determinism",
			})
		}
		return nil
	}
	return &annotation{line: pos.Line, check: check, reason: reason}
}

func knownChecksHint() string {
	names := make([]string, 0, len(Checks)+len(ModuleChecks))
	for _, c := range Checks {
		names = append(names, c.Name)
	}
	for _, c := range ModuleChecks {
		names = append(names, c.Name)
	}
	return "known checks: " + strings.Join(names, ", ")
}
