package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// annotation is one parsed //ddbmlint: comment.
type annotation struct {
	line   int
	check  string // canonical check name the annotation excuses
	reason string
	used   bool
}

// fileAnns indexes a file's annotations by line (for suppression lookup)
// and in source order (for the unused-annotation sweep).
type fileAnns struct {
	byLine map[int]*annotation
	list   []*annotation
}

const annPrefix = "ddbmlint:"

// collectAnnotations parses every //ddbmlint: comment in f. Malformed
// annotations (unknown verb or check, missing justification) are reported
// immediately — an escape hatch that does not state its ordering argument
// is worthless for review.
func collectAnnotations(fset *token.FileSet, f *ast.File, rn *run) *fileAnns {
	fa := &fileAnns{byLine: map[int]*annotation{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, annPrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			body := strings.TrimPrefix(text, annPrefix)
			verb, rest, _ := strings.Cut(body, " ")
			var check, reason string
			switch verb {
			case "ordered":
				check, reason = "map-order", strings.TrimSpace(rest)
			case "allow":
				check, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				if !checkNameValid(check) {
					rn.diags = append(rn.diags, Diagnostic{
						Pos: pos, Check: "annotation",
						Msg:  fmt.Sprintf("ddbmlint:allow names unknown check %q", check),
						Hint: knownChecksHint(),
					})
					continue
				}
			default:
				rn.diags = append(rn.diags, Diagnostic{
					Pos: pos, Check: "annotation",
					Msg:  fmt.Sprintf("unknown ddbmlint annotation verb %q", verb),
					Hint: "use //ddbmlint:ordered <why> or //ddbmlint:allow <check> <why>",
				})
				continue
			}
			if reason == "" {
				rn.diags = append(rn.diags, Diagnostic{
					Pos: pos, Check: "annotation",
					Msg:  "ddbmlint annotation without a justification",
					Hint: "state why the flagged construct cannot affect determinism",
				})
				continue
			}
			a := &annotation{line: pos.Line, check: check, reason: reason}
			fa.byLine[a.line] = a
			fa.list = append(fa.list, a)
		}
	}
	return fa
}

func knownChecksHint() string {
	names := make([]string, len(Checks))
	for i, c := range Checks {
		names[i] = c.Name
	}
	return "known checks: " + strings.Join(names, ", ")
}
