package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wallClockFns are the package time functions that read or wait on the
// host clock. Pure conversions and types (time.Duration, time.Unix math
// on fixed values) are untouched.
var wallClockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// wallClockRef returns the package time function sel refers to when it
// reads or waits on the host clock, or nil. Shared by the intra-unit
// check and the interprocedural summary extraction.
func wallClockRef(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return nil
	}
	if wallClockFns[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
		return fn
	}
	return nil
}

// runWallClock flags wall-clock time in simulation code: the simulator is
// a virtual-time machine, and a single time.Now or time.Sleep couples a
// run to the host scheduler and destroys seed determinism.
func runWallClock(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn := wallClockRef(p.Unit.Info, sel); fn != nil {
			p.Report(sel.Pos(),
				fmt.Sprintf("wall-clock time.%s in simulation code", fn.Name()),
				"simulation code runs on virtual time: use Sim.Now, Sim.After, or Proc.Delay")
		}
		return true
	})
}
