package lint

import "strings"

// Policy scopes one check: which package paths it runs on and whether
// _test.go files are exempt.
type Policy struct {
	Check     string
	SkipTests bool
	// Skip lists package path prefixes where the check is off entirely.
	Skip []string
	// Only, when non-empty, restricts the check to these prefixes.
	Only []string
}

func (p Policy) inScope(pkgPath string) bool {
	for _, pre := range p.Skip {
		if pathMatch(pkgPath, pre) {
			return false
		}
	}
	if len(p.Only) == 0 {
		return true
	}
	for _, pre := range p.Only {
		if pathMatch(pkgPath, pre) {
			return true
		}
	}
	return false
}

// pathMatch reports whether path is prefix itself or a package below it.
func pathMatch(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// Config is the scope table for a whole run.
type Config struct {
	policies map[string]Policy
}

// NewConfig builds a Config from explicit policies; checks without a
// policy run everywhere including tests.
func NewConfig(policies ...Policy) Config {
	m := make(map[string]Policy, len(policies))
	for _, p := range policies {
		m[p.Check] = p
	}
	return Config{policies: m}
}

func (c Config) policy(check string) Policy {
	if p, ok := c.policies[check]; ok {
		return p
	}
	return Policy{Check: check}
}

// DefaultConfig is the repo's scope table, parameterized by module path so
// the fixture harness can reuse it under a fake module name.
//
//   - no-wall-clock: simulation code must run on simulated time only.
//     cmd/... (benchmark harnesses time real work) and _test.go files are
//     allowlisted.
//   - no-global-rand: nothing under internal/ or experiments/, tests
//     included, may draw from the global math/rand source; all
//     randomness flows through the per-Simulation seeded *rand.Rand so
//     runs are a pure function of the seed. cmd/... harness tooling is
//     exempt from the direct check — taint-rand guards the boundary.
//   - map-order: non-test simulation code must not let Go's randomized
//     map iteration order reach anything order-sensitive.
//   - no-naked-goroutine: internal/sim owns the run-to-block scheduler;
//     host concurrency anywhere else needs an audited annotation. Test
//     harnesses are exempt.
//   - event-retention: *sim.Event handles die when they fire or are
//     canceled (free-list recycling), so only internal/sim itself may
//     retain them structurally. Test files are exempt.
//   - span-retention: *obs.Span handles die at End() (tracer free-list
//     reuse), so only internal/obs itself may retain them structurally.
//     Test files are exempt. Note that wall-clock reads inside
//     internal/obs are already barred by no-wall-clock, whose allowlist
//     covers only cmd/... — simulated-time-only discipline extends to the
//     observability layer with no extra policy.
//   - no-reflect-sort: library code under internal/ must sort with the
//     generic slices helpers, not reflection-based sort.Slice — the
//     reflectlite.Swapper cost is what made the pre-incremental lock
//     manager the simulator's bottleneck. Tests and cmd/ tooling are
//     exempt: they are off the simulation hot path.
//   - taint-wall-clock / taint-rand: the interprocedural complements of
//     no-wall-clock and no-global-rand. Reported in the same scope as
//     the base checks: a call from simulation code into an exempt-scope
//     helper that (transitively) reads the host clock or the global
//     rand source is a finding at the boundary call site.
//   - hotpath-alloc: //ddbmlint:hotpath functions everywhere (tests
//     exempt) must be statically allocation-free transitively — the
//     static twin of TestSteadyStateAllocFree's runtime pins. The
//     breakdown accounting rides this audit end to end: the obs.Ledger
//     spend/fold methods, the per-commit stats.LogHist.Add recording and
//     the cc abort-cause attribution are all hotpath-annotated, and
//     internal/stats sits inside the no-wall-clock scope like the rest
//     of the simulation (the cmd/... allowlist does not cover it), so
//     the histogram layer can neither allocate in steady state nor read
//     host time.
//
// internal/fault and internal/recovery are deliberately absent from every
// Skip list: the fault injector and the restart machinery are simulation
// code in full scope, so the wall-clock ban, the global-rand ban (fault
// schedules draw only from seeded substreams), event-retention and the
// hot-path allocation audit all apply to them unreduced. The fixture
// packages testdata/lint/internal/fault and .../recovery pin exactly
// that: each check fires at those package paths.
func DefaultConfig(module string) Config {
	return NewConfig(
		Policy{Check: "no-wall-clock", SkipTests: true, Skip: []string{module + "/cmd"}},
		Policy{Check: "no-global-rand", Skip: []string{module + "/cmd"}},
		Policy{Check: "map-order", SkipTests: true},
		Policy{Check: "no-naked-goroutine", SkipTests: true, Skip: []string{module + "/internal/sim"}},
		Policy{Check: "event-retention", SkipTests: true, Skip: []string{module + "/internal/sim"}},
		Policy{Check: "span-retention", SkipTests: true, Skip: []string{module + "/internal/obs"}},
		Policy{Check: "no-reflect-sort", SkipTests: true, Only: []string{module + "/internal"}},
		Policy{Check: "taint-wall-clock", SkipTests: true, Skip: []string{module + "/cmd"}},
		Policy{Check: "taint-rand", SkipTests: true, Skip: []string{module + "/cmd"}},
		Policy{Check: "hotpath-alloc", SkipTests: true},
	)
}
