package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package functions that build
// deterministic sources rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// globalRandRef returns the package-level math/rand function sel draws
// from the global source with, or nil. Methods on an explicit *rand.Rand
// and the source constructors are fine. Shared by the intra-unit check
// and the interprocedural summary extraction.
func globalRandRef(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return nil
	}
	if randConstructors[fn.Name()] || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// runGlobalRand flags package-level math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, ...). The global source is seeded from the
// host and shared across goroutines, so a single draw makes a run
// irreproducible; all randomness must flow through the per-Simulation
// seeded *rand.Rand.
func runGlobalRand(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn := globalRandRef(p.Unit.Info, sel); fn != nil {
			p.Report(sel.Pos(),
				fmt.Sprintf("global math/rand function rand.%s", fn.Name()),
				"draw from the seeded per-Simulation source (Sim.Rand) so runs are a pure function of the seed")
		}
		return true
	})
}
