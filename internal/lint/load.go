package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Unit is one type-checked body of files: a package together with its
// in-package _test.go files, an external (package foo_test) test package,
// or — for packages pulled in only as dependencies of the lint targets —
// the import view of the package (non-test files only). Test membership
// is tracked per file so policies can exempt tests without a second load
// path.
type Unit struct {
	Path  string // import path used for scope decisions
	Dir   string // directory the files were parsed from
	Files []*ast.File
	Test  map[*ast.File]bool
	Pkg   *types.Package
	Info  *types.Info
	// Imported marks units synthesized from the import view of a
	// dependency rather than loaded as a lint target: their bodies feed
	// the call graph, but intra-unit checks and diagnostics do not run
	// on them.
	Imported bool
}

// parsedDir caches one directory's parse so that the import view and the
// unit view of a package share identical *ast.File values (and therefore
// identical token positions for every declared object, which is what lets
// the call graph bridge objects across the two type-checking views).
type parsedDir struct {
	files     []*ast.File // non-test files, sorted filename order
	testFiles []*ast.File // _test.go files, sorted filename order
}

// impView is the cached import view of one module package: non-test
// files only, exactly like the go toolchain compiles an imported package,
// with the type info retained so dependency bodies can feed the call
// graph.
type impView struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

// Loader parses and type-checks packages with nothing outside the
// standard library: module-internal imports are resolved against the
// module root and checked from source recursively; everything else
// (the standard library) goes through go/importer's source importer.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory (contains go.mod)
	Module string // module path from go.mod

	std     types.ImporterFrom
	imports map[string]*impView // import view per module package path
	loading map[string]bool
	parsed  map[string]*parsedDir // keyed by cleaned directory path
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  module,
		std:     std,
		imports: map[string]*impView{},
		loading: map[string]bool{},
		parsed:  map[string]*parsedDir{},
	}, nil
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Clean(filepath.Join(l.Root, filepath.FromSlash(rel)))
}

// Import resolves one import path: module packages from source under the
// module root, anything else via the stdlib source importer. Module
// packages are checked as the go toolchain would compile them for an
// importer — non-test files only — so in-package test files can never
// manufacture an import cycle.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !pathMatch(path, l.Module) {
		return l.std.Import(path)
	}
	v, err := l.importView(path)
	if err != nil {
		return nil, err
	}
	return v.pkg, nil
}

func (l *Loader) importView(path string) (*impView, error) {
	if v, ok := l.imports[path]; ok {
		return v, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pd, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(pd.files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", l.dirFor(path), path)
	}
	pkg, info, err := l.typecheck(path, pd.files)
	if err != nil {
		return nil, err
	}
	v := &impView{pkg: pkg, info: info, files: pd.files}
	l.imports[path] = v
	return v, nil
}

// ImportFrom implements types.ImporterFrom; vendoring is not supported.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// parseDir parses every .go file in dir, split into non-test files and
// _test.go files, in sorted filename order. Each directory is parsed at
// most once per loader, so every view of a package shares the same
// *ast.File values and token positions.
func (l *Loader) parseDir(dir string) (*parsedDir, error) {
	dir = filepath.Clean(dir)
	if pd, ok := l.parsed[dir]; ok {
		return pd, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pd := &parsedDir{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pd.testFiles = append(pd.testFiles, f)
		} else {
			pd.files = append(pd.files, f)
		}
	}
	l.parsed[dir] = pd
	return pd, nil
}

// typecheck checks one set of files as a package.
func (l *Loader) typecheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		const max = 10
		if len(errs) > max {
			errs = append(errs[:max], fmt.Errorf("... and %d more errors", len(errs)-max))
		}
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n%w", path, errors.Join(errs...))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// LoadDir loads the lint units of one directory: the package (with its
// in-package test files) and, if present, the external test package. A
// directory with no Go files is an error — a lint target that silently
// checks nothing would let a typo in a package pattern pass CI.
func (l *Loader) LoadDir(dir, pkgPath string) ([]*Unit, error) {
	pd, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(pd.files)+len(pd.testFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in lint target %s", dir)
	}
	// Split test files into in-package and external (package foo_test).
	pkgName := ""
	if len(pd.files) > 0 {
		pkgName = pd.files[0].Name.Name
	}
	var inPkg, external []*ast.File
	for _, f := range pd.testFiles {
		if pkgName != "" && f.Name.Name == pkgName+"_test" {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var units []*Unit
	if len(pd.files)+len(inPkg) > 0 {
		u, err := l.unit(pkgPath, dir, append(append([]*ast.File{}, pd.files...), inPkg...), inPkg)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(external) > 0 {
		// A distinct path: checking "p_test" while importing "p" must not
		// look like a self-import.
		u, err := l.unit(pkgPath+"_test", dir, external, external)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) unit(path, dir string, files, testFiles []*ast.File) (*Unit, error) {
	pkg, info, err := l.typecheck(path, files)
	if err != nil {
		return nil, err
	}
	u := &Unit{Path: path, Dir: filepath.Clean(dir), Files: files, Test: map[*ast.File]bool{}, Pkg: pkg, Info: info}
	for _, f := range testFiles {
		u.Test[f] = true
	}
	return u, nil
}

// ImportedUnits wraps every module-internal import view loaded so far as
// an analysis-only Unit, excluding directories already loaded as lint
// targets. Called after the targets are loaded, it hands the call graph
// the bodies of every dependency the targets reach, in deterministic
// (import path) order.
func (l *Loader) ImportedUnits(excludeDirs map[string]bool) []*Unit {
	paths := make([]string, 0, len(l.imports))
	for p := range l.imports {
		paths = append(paths, p)
	}
	slices.Sort(paths)
	var units []*Unit
	for _, p := range paths {
		dir := l.dirFor(p)
		if excludeDirs[dir] {
			continue
		}
		v := l.imports[p]
		units = append(units, &Unit{
			Path: p, Dir: dir, Files: v.files, Test: map[*ast.File]bool{},
			Pkg: v.pkg, Info: v.info, Imported: true,
		})
	}
	return units
}

// PackageDirs walks the module tree and returns every directory holding a
// Go package, as module-root-relative slash paths, skipping testdata,
// vendor, and hidden directories. The driver expands "./..." with this.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	return dirs, err
}
