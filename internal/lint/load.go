package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Unit is one type-checked body of files: a package together with its
// in-package _test.go files, or an external (package foo_test) test
// package. Test membership is tracked per file so policies can exempt
// tests without a second load path.
type Unit struct {
	Path  string // import path used for scope decisions
	Files []*ast.File
	Test  map[*ast.File]bool
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with nothing outside the
// standard library: module-internal imports are resolved against the
// module root and checked from source recursively; everything else
// (the standard library) goes through go/importer's source importer.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory (contains go.mod)
	Module string // module path from go.mod

	std     types.ImporterFrom
	cache   map[string]*types.Package // import view: non-test files only
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  module,
		std:     std,
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// Import resolves one import path: module packages from source under the
// module root, anything else via the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !pathMatch(path, l.Module) {
		return l.std.Import(path)
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", dir, path)
	}
	pkg, _, err := l.typecheck(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// ImportFrom implements types.ImporterFrom; vendoring is not supported.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// parseDir parses every .go file in dir, split into non-test files and
// _test.go files, in sorted filename order.
func (l *Loader) parseDir(dir string) (files, testFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return files, testFiles, nil
}

// typecheck checks one set of files as a package.
func (l *Loader) typecheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		const max = 10
		if len(errs) > max {
			errs = append(errs[:max], fmt.Errorf("... and %d more errors", len(errs)-max))
		}
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n%w", path, errors.Join(errs...))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// LoadDir loads the lint units of one directory: the package (with its
// in-package test files) and, if present, the external test package.
func (l *Loader) LoadDir(dir, pkgPath string) ([]*Unit, error) {
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files)+len(testFiles) == 0 {
		return nil, nil
	}
	// Split test files into in-package and external (package foo_test).
	pkgName := ""
	if len(files) > 0 {
		pkgName = files[0].Name.Name
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		if pkgName != "" && f.Name.Name == pkgName+"_test" {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var units []*Unit
	if len(files)+len(inPkg) > 0 {
		u, err := l.unit(pkgPath, append(append([]*ast.File{}, files...), inPkg...), inPkg)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(external) > 0 {
		// A distinct path: checking "p_test" while importing "p" must not
		// look like a self-import.
		u, err := l.unit(pkgPath+"_test", external, external)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) unit(path string, files, testFiles []*ast.File) (*Unit, error) {
	pkg, info, err := l.typecheck(path, files)
	if err != nil {
		return nil, err
	}
	u := &Unit{Path: path, Files: files, Test: map[*ast.File]bool{}, Pkg: pkg, Info: info}
	for _, f := range testFiles {
		u.Test[f] = true
	}
	return u, nil
}

// PackageDirs walks the module tree and returns every directory holding a
// Go package, as module-root-relative slash paths, skipping testdata,
// vendor, and hidden directories. The driver expands "./..." with this.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	return dirs, err
}
