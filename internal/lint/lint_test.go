package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// findModuleRoot walks up from the test's working directory to go.mod.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// collectWants scans a fixture package directory for // want "substring"
// comments, keyed by file:line.
func collectWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// TestFixtures runs the full check suite over every fixture package under
// testdata/lint and asserts the exact diagnostic set: each // want
// comment must be hit on its line, and nothing unexpected may fire. The
// fixture tree reuses the default scope table under the module name
// "fixture", so fixture/cmd/... and fixture/internal/sim exercise the
// allowlist entries.
func TestFixtures(t *testing.T) {
	root := findModuleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Config: DefaultConfig("fixture")}
	fixRoot := filepath.Join(root, "testdata", "lint")
	dirs, err := PackageDirs(fixRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 5 {
		t.Fatalf("found only %d fixture packages under %s; expected one per check at least", len(dirs), fixRoot)
	}
	for _, rel := range dirs {
		t.Run(rel, func(t *testing.T) {
			dir := filepath.Join(fixRoot, filepath.FromSlash(rel))
			pkgPath := "fixture"
			if rel != "." {
				pkgPath += "/" + rel
			}
			diags, err := runner.LintDir(dir, pkgPath)
			if err != nil {
				t.Fatal(err)
			}
			matchWants(t, diags, collectWants(t, dir))
		})
	}
}

// matchWants asserts the exact diagnostic set: each // want comment must
// be hit on its line, and nothing unexpected may fire.
func matchWants(t *testing.T, diags []Diagnostic, wants map[string][]string) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		rendered := fmt.Sprintf("[%s] %s", d.Check, d.Msg)
		matched := -1
		for i, w := range wants[key] {
			if strings.Contains(rendered, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", key, rendered)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, subs := range wants {
		for _, w := range subs {
			t.Errorf("missing diagnostic at %s: want %q", key, w)
		}
	}
}

// TestRepoLintClean asserts the repository itself carries zero findings —
// the same gate ci.sh applies via cmd/ddbmlint, enforced from the test
// suite so a bare `go test ./...` also guards the invariants. All package
// directories go into one Lint call, exactly like `ddbmlint ./...`: the
// interprocedural checks need the whole module in a single call graph
// (a hot path rooted in internal/cc reaches allocation sites, and their
// audited annotations, in internal/sim).
func TestRepoLintClean(t *testing.T) {
	root := findModuleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Config: DefaultConfig(loader.Module)}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var targets []Target
	for _, rel := range dirs {
		pkgPath := loader.Module
		if rel != "." {
			pkgPath += "/" + rel
		}
		targets = append(targets, Target{Dir: filepath.Join(root, filepath.FromSlash(rel)), Path: pkgPath})
	}
	diags, err := runner.Lint(targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestPolicyScope pins the scope semantics the config table relies on.
func TestPolicyScope(t *testing.T) {
	p := Policy{Check: "x", Skip: []string{"ddbm/cmd"}, Only: []string{"ddbm"}}
	cases := []struct {
		path string
		want bool
	}{
		{"ddbm", true},
		{"ddbm/internal/sim", true},
		{"ddbm/cmd", false},
		{"ddbm/cmd/bench", false},
		{"ddbm/cmdline", true}, // prefix match is per path segment
		{"fixture/pkg", false},
	}
	for _, c := range cases {
		if got := p.inScope(c.path); got != c.want {
			t.Errorf("inScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestAnnotationParsing pins the escape-hatch grammar.
func TestAnnotationParsing(t *testing.T) {
	if !checkNameValid("map-order") || checkNameValid("bogus") {
		t.Fatal("checkNameValid is wrong")
	}
	for _, c := range Checks {
		if c.Name == "" || c.Run == nil {
			t.Fatalf("malformed check registration: %+v", c.Name)
		}
	}
}
