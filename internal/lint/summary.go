package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// factSet is the summary lattice: a bitset of determinism-relevant facts
// a function exhibits directly or through anything it can call. The
// lattice is a finite powerset ordered by inclusion, and propagation
// only ever adds bits, so the fixpoint below terminates and is
// independent of visit order.
type factSet uint8

const (
	factWallClock factSet = 1 << iota // reads or waits on the host clock
	factRand                          // draws from the global math/rand source
	factMapOrder                      // ranges a map order-sensitively
	factGoroutine                     // spawns a goroutine
	factAlloc                         // contains a definite allocation site
)

func (f factSet) has(b factSet) bool { return f&b != 0 }

// computeSummaries extracts every node's direct facts and allocation
// sites, then propagates facts from callees to callers until nothing
// changes. Nodes are visited in index order (source order) and the
// transfer function is monotone over a finite lattice, so the result is
// a deterministic least fixpoint regardless of how many sweeps it takes.
func computeSummaries(g *CallGraph) {
	for _, n := range g.Nodes {
		extractDirect(n)
		extractAllocs(g, n)
		if len(n.allocs) > 0 {
			n.direct |= factAlloc
		}
		n.facts = n.direct
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, site := range n.Calls {
				for _, callee := range site.Callees {
					if add := callee.facts &^ n.facts; add != 0 {
						n.facts |= add
						changed = true
					}
				}
			}
		}
	}
}

// extractDirect records the facts n's own body exhibits, with the
// position of the first witness of each for chain reporting. Nested
// function literals are separate nodes and contribute nothing here.
func extractDirect(n *FuncNode) {
	n.directSite = map[factSet]token.Pos{}
	info := n.Unit.Info
	set := func(f factSet, pos token.Pos) {
		if !n.direct.has(f) {
			n.direct |= f
			n.directSite[f] = pos
		}
	}
	walkOwnBody(n, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.SelectorExpr:
			if fn := wallClockRef(info, x); fn != nil {
				set(factWallClock, x.Pos())
			}
			if fn := globalRandRef(info, x); fn != nil {
				set(factRand, x.Pos())
			}
		case *ast.GoStmt:
			set(factGoroutine, x.Pos())
		default:
			list := stmtList(x)
			for i := range list {
				if rs, bad := sensitiveMapRange(info, list, i); bad {
					set(factMapOrder, rs.For)
				}
			}
		}
	})
}

// factChain renders a call chain from n to a direct witness of fact, for
// diagnostic hints: "a -> b -> c (file.go:12)". The walk greedily follows
// the first callee (in call-site order) still carrying the fact, with a
// visited set so cyclic graphs terminate; the graph's deterministic edge
// order makes the chain deterministic.
func factChain(g *CallGraph, n *FuncNode, fact factSet) string {
	var parts []string
	visited := map[*FuncNode]bool{}
	cur := n
	for {
		parts = append(parts, cur.Name)
		visited[cur] = true
		if cur.direct.has(fact) {
			pos := g.Fset.Position(cur.directSite[fact])
			return fmt.Sprintf("%s (%s:%d)", strings.Join(parts, " -> "), filepath.Base(pos.Filename), pos.Line)
		}
		var next *FuncNode
	scan:
		for _, site := range cur.Calls {
			for _, c := range site.Callees {
				if c.facts.has(fact) && !visited[c] {
					next = c
					break scan
				}
			}
		}
		if next == nil {
			return strings.Join(parts, " -> ")
		}
		cur = next
	}
}
