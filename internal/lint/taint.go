package lint

import "fmt"

// The taint checks close the cross-scope hole the intra-unit checks
// leave open: no-wall-clock and no-global-rand exempt some scopes (cmd/
// harnesses, test files), so a helper there can legally read the host
// clock — but the moment simulation code calls such a helper, the run is
// no longer a pure function of the seed, and no single file shows it.
//
// A node's taint "escapes" when (a) it directly exhibits the fact while
// sitting outside the base check's scope (the base check was never going
// to see it), or (b) it sits outside the taint check's reporting scope
// and calls a node whose taint escapes (it passes the taint along
// unreported). The finding fires exactly once, at the boundary: an
// in-scope function calling an escaped callee. In-scope direct uses are
// the base check's findings (or its audited annotations), not ours —
// taint never double-reports them.

func runTaintWallClock(mp *ModulePass) {
	runTaint(mp, factWallClock, "no-wall-clock", "wall-clock time",
		"simulation code runs on virtual time: route the work through Sim.Now/Sim.After or move the helper into checked scope")
}

func runTaintRand(mp *ModulePass) {
	runTaint(mp, factRand, "no-global-rand", "the global math/rand source",
		"thread the per-Simulation seeded *rand.Rand into the helper so runs stay a pure function of the seed")
}

// nodeInScope applies a policy to a graph node.
func nodeInScope(pol Policy, n *FuncNode) bool {
	return pol.inScope(n.PkgPath) && !(pol.SkipTests && n.TestFile)
}

func runTaint(mp *ModulePass, fact factSet, baseCheck, noun, fix string) {
	g := mp.Graph
	base := mp.Config.policy(baseCheck)
	pol := mp.Config.policy(mp.check)

	escaped := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.direct.has(fact) && !nodeInScope(base, n) {
			escaped[n.Index] = true
		}
	}
	// Propagate escape through out-of-scope intermediaries. Monotone over
	// a finite bool lattice, nodes visited in index order: deterministic.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if escaped[n.Index] || nodeInScope(pol, n) {
				continue
			}
			for _, site := range n.Calls {
				for _, c := range site.Callees {
					if escaped[c.Index] {
						escaped[n.Index] = true
						changed = true
						break
					}
				}
				if escaped[n.Index] {
					break
				}
			}
		}
	}
	// Report at the boundary call sites of the lint targets.
	for _, n := range g.Nodes {
		if n.Unit.Imported || !nodeInScope(pol, n) {
			continue
		}
		for _, site := range n.Calls {
			for _, c := range site.Callees {
				if !escaped[c.Index] {
					continue
				}
				mp.Report(site.Pos,
					fmt.Sprintf("call to %s reaches %s outside %s scope", c.Name, noun, baseCheck),
					fmt.Sprintf("call chain: %s -> %s; %s", n.Name, factChain(g, c, fact), fix))
				break // one finding per call site
			}
		}
	}
}
