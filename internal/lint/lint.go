// Package lint is ddbmlint: a pure-stdlib static analyzer that enforces
// the simulator's determinism invariants at the AST/type level instead of
// hoping a golden seed exercises them. The whole value of this
// reproduction rests on bit-identical, seed-deterministic runs; golden
// tests guard that property dynamically, this package guards it
// statically.
//
// Seven checks (see the check files for details):
//
//	no-wall-clock       time.Now/Since/Sleep/... in simulation code
//	no-global-rand      package-level math/rand functions
//	map-order           for-range over a map with an order-sensitive body
//	no-naked-goroutine  go statements outside internal/sim
//	event-retention     *sim.Event stored in a field or package var
//	span-retention      *obs.Span stored in a field or package var
//	no-reflect-sort     sort.Slice/sort.SliceStable in internal/ code
//
// A finding can be suppressed with an annotation comment on the flagged
// line or the line directly above it:
//
//	//ddbmlint:ordered <why iteration order cannot matter>
//	//ddbmlint:allow <check-name> <why this use is audited and safe>
//
// Annotations must state their justification; an annotation with no
// reason, for an unknown check, or that suppresses nothing is itself a
// diagnostic, so stale escapes cannot accumulate.
package lint

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
)

// Diagnostic is one finding: position, the check that fired, the message,
// and a hint describing the fix.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
	Hint  string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
	if d.Hint != "" {
		s += "\n\thint: " + d.Hint
	}
	return s
}

// Check is one analyzer. Run is invoked once per file that the config
// leaves in scope.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Pass, f *ast.File)
}

// Checks is the full suite, in reporting order.
var Checks = []Check{
	{Name: "no-wall-clock", Doc: "wall-clock time in simulation code", Run: runWallClock},
	{Name: "no-global-rand", Doc: "global math/rand functions", Run: runGlobalRand},
	{Name: "map-order", Doc: "order-sensitive map iteration", Run: runMapOrder},
	{Name: "no-naked-goroutine", Doc: "goroutines outside the sim scheduler", Run: runNakedGoroutine},
	{Name: "event-retention", Doc: "retained *sim.Event handles", Run: runEventRetention},
	{Name: "span-retention", Doc: "retained *obs.Span handles", Run: runSpanRetention},
	{Name: "no-reflect-sort", Doc: "reflection-based sort.Slice in hot library code", Run: runReflectSort},
}

func checkNameValid(name string) bool {
	for _, c := range Checks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Pass hands one check everything it needs for one unit.
type Pass struct {
	Fset  *token.FileSet
	Unit  *Unit
	check string
	run   *run
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Unit.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Unit.Info.ObjectOf(id) }

// Report files a diagnostic unless an annotation suppresses it.
func (p *Pass) Report(pos token.Pos, msg, hint string) {
	p.run.report(p.check, pos, msg, hint)
}

// run is the mutable state of linting one unit.
type run struct {
	fset  *token.FileSet
	anns  map[string]*fileAnns // filename -> annotations
	diags []Diagnostic
}

func (r *run) report(check string, pos token.Pos, msg, hint string) {
	position := r.fset.Position(pos)
	if a := r.annotationFor(position.Filename, position.Line, check); a != nil {
		a.used = true
		return
	}
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: check, Msg: msg, Hint: hint})
}

// annotationFor finds an annotation for check on line or the line above.
func (r *run) annotationFor(file string, line int, check string) *annotation {
	fa := r.anns[file]
	if fa == nil {
		return nil
	}
	if a := fa.byLine[line]; a != nil && a.check == check {
		return a
	}
	if a := fa.byLine[line-1]; a != nil && a.check == check {
		return a
	}
	return nil
}

// Runner applies a Config's worth of checks to loaded packages.
type Runner struct {
	Loader *Loader
	Config Config
}

// LintDir lints every unit (package, plus external test package if any)
// in dir. pkgPath is the import path used for config scope decisions.
func (r *Runner) LintDir(dir, pkgPath string) ([]Diagnostic, error) {
	units, err := r.Loader.LoadDir(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, u := range units {
		diags = append(diags, r.lintUnit(u)...)
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Column, b.Pos.Column); c != 0 {
			return c
		}
		return cmp.Compare(a.Check, b.Check)
	})
	return diags, nil
}

func (r *Runner) lintUnit(u *Unit) []Diagnostic {
	rn := &run{fset: r.Loader.Fset, anns: map[string]*fileAnns{}}
	for _, f := range u.Files {
		name := r.Loader.Fset.Position(f.Pos()).Filename
		rn.anns[name] = collectAnnotations(r.Loader.Fset, f, rn)
	}
	for _, chk := range Checks {
		pol := r.Config.policy(chk.Name)
		if !pol.inScope(u.Path) {
			continue
		}
		pass := &Pass{Fset: r.Loader.Fset, Unit: u, check: chk.Name, run: rn}
		for _, f := range u.Files {
			if pol.SkipTests && u.Test[f] {
				continue
			}
			chk.Run(pass, f)
		}
	}
	// Stale escapes are findings too: an annotation that suppressed
	// nothing means the code it excused was fixed (or never needed it).
	for _, f := range u.Files {
		name := r.Loader.Fset.Position(f.Pos()).Filename
		for _, a := range rn.anns[name].list {
			if !a.used {
				rn.diags = append(rn.diags, Diagnostic{
					Pos:   token.Position{Filename: name, Line: a.line, Column: 1},
					Check: "annotation",
					Msg:   fmt.Sprintf("unused ddbmlint annotation for %q", a.check),
					Hint:  "the annotated construct no longer triggers the check; delete the annotation",
				})
			}
		}
	}
	return rn.diags
}
