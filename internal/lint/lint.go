// Package lint is ddbmlint: a pure-stdlib static analyzer that enforces
// the simulator's determinism invariants at the AST/type level instead of
// hoping a golden seed exercises them. The whole value of this
// reproduction rests on bit-identical, seed-deterministic runs; golden
// tests guard that property dynamically, this package guards it
// statically.
//
// Seven intra-unit checks (see the check files for details):
//
//	no-wall-clock       time.Now/Since/Sleep/... in simulation code
//	no-global-rand      package-level math/rand functions
//	map-order           for-range over a map with an order-sensitive body
//	no-naked-goroutine  go statements outside internal/sim
//	event-retention     *sim.Event stored in a field or package var
//	span-retention      *obs.Span stored in a field or package var
//	no-reflect-sort     sort.Slice/sort.SliceStable in internal/ code
//
// Three interprocedural checks run over a whole-module call graph with
// per-function determinism summaries (see callgraph.go, summary.go):
//
//	taint-wall-clock    simulation code reaching a wall-clock read
//	                    through helpers outside the base check's scope
//	taint-rand          simulation code reaching the global rand source
//	                    through helpers outside the base check's scope
//	hotpath-alloc       //ddbmlint:hotpath functions must be statically
//	                    allocation-free, transitively
//
// A finding can be suppressed with an annotation comment on the flagged
// line or stacked comment lines directly above it:
//
//	//ddbmlint:ordered <why iteration order cannot matter>
//	//ddbmlint:allow <check-name> <why this use is audited and safe>
//
// and a function is pinned as an allocation-free hot path with
//
//	//ddbmlint:hotpath [why this path is hot]
//
// Annotations must state their justification; an annotation with no
// reason, for an unknown check, or that suppresses nothing is itself a
// diagnostic, so stale escapes cannot accumulate.
package lint

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
)

// Diagnostic is one finding: position, the check that fired, the message,
// and a hint describing the fix.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
	Hint  string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
	if d.Hint != "" {
		s += "\n\thint: " + d.Hint
	}
	return s
}

// Check is one intra-unit analyzer. Run is invoked once per file that the
// config leaves in scope.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Pass, f *ast.File)
}

// Checks is the intra-unit suite, in reporting order.
var Checks = []Check{
	{Name: "no-wall-clock", Doc: "wall-clock time in simulation code", Run: runWallClock},
	{Name: "no-global-rand", Doc: "global math/rand functions", Run: runGlobalRand},
	{Name: "map-order", Doc: "order-sensitive map iteration", Run: runMapOrder},
	{Name: "no-naked-goroutine", Doc: "goroutines outside the sim scheduler", Run: runNakedGoroutine},
	{Name: "event-retention", Doc: "retained *sim.Event handles", Run: runEventRetention},
	{Name: "span-retention", Doc: "retained *obs.Span handles", Run: runSpanRetention},
	{Name: "no-reflect-sort", Doc: "reflection-based sort.Slice in hot library code", Run: runReflectSort},
}

// ModuleCheck is one interprocedural analyzer: it sees the whole call
// graph and the computed summaries rather than one file.
type ModuleCheck struct {
	Name string
	Doc  string
	Run  func(mp *ModulePass)
}

// ModuleChecks is the interprocedural suite, in reporting order.
var ModuleChecks = []ModuleCheck{
	{Name: "taint-wall-clock", Doc: "wall-clock reads reached through out-of-scope helpers", Run: runTaintWallClock},
	{Name: "taint-rand", Doc: "global rand draws reached through out-of-scope helpers", Run: runTaintRand},
	{Name: "hotpath-alloc", Doc: "allocation sites reachable from //ddbmlint:hotpath functions", Run: runHotpathAlloc},
}

func checkNameValid(name string) bool {
	for _, c := range Checks {
		if c.Name == name {
			return true
		}
	}
	for _, c := range ModuleChecks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Pass hands one intra-unit check everything it needs for one unit.
type Pass struct {
	Fset  *token.FileSet
	Unit  *Unit
	check string
	run   *run
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Unit.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Unit.Info.ObjectOf(id) }

// Report files a diagnostic unless an annotation suppresses it.
func (p *Pass) Report(pos token.Pos, msg, hint string) {
	p.run.report(p.check, pos, msg, hint)
}

// ModulePass hands one interprocedural check the whole-run state.
type ModulePass struct {
	Config Config
	Graph  *CallGraph
	check  string
	run    *run
}

// Report files a diagnostic unless an annotation suppresses it.
func (mp *ModulePass) Report(pos token.Pos, msg, hint string) {
	mp.run.report(mp.check, pos, msg, hint)
}

// run is the mutable state of one whole lint invocation.
type run struct {
	fset  *token.FileSet
	anns  map[string]*fileAnns // filename -> annotations
	diags []Diagnostic
}

func (r *run) report(check string, pos token.Pos, msg, hint string) {
	position := r.fset.Position(pos)
	if a := r.annotationFor(position.Filename, position.Line, check); a != nil {
		a.used = true
		return
	}
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: check, Msg: msg, Hint: hint})
}

// annotationFor finds an unshadowed annotation for check on line or on
// the contiguous run of annotation-bearing lines directly above it, so
// several single-annotation comment lines can stack over one site.
func (r *run) annotationFor(file string, line int, check string) *annotation {
	fa := r.anns[file]
	if fa == nil {
		return nil
	}
	if a := matchAnnotation(fa.byLine[line], check); a != nil {
		return a
	}
	for l := line - 1; ; l-- {
		anns := fa.byLine[l]
		if len(anns) == 0 {
			return nil
		}
		if a := matchAnnotation(anns, check); a != nil {
			return a
		}
	}
}

func matchAnnotation(anns []*annotation, check string) *annotation {
	for _, a := range anns {
		if a.check == check {
			return a
		}
	}
	return nil
}

// Target is one directory to lint, with the import path used for config
// scope decisions.
type Target struct {
	Dir  string
	Path string
}

// Runner applies a Config's worth of checks to loaded packages.
type Runner struct {
	Loader *Loader
	Config Config
}

// LintDir lints every unit in a single directory; a convenience wrapper
// around Lint for one target.
func (r *Runner) LintDir(dir, pkgPath string) ([]Diagnostic, error) {
	return r.Lint([]Target{{Dir: dir, Path: pkgPath}})
}

// Lint runs the whole suite over the target directories as one analysis:
// intra-unit checks per target unit, then the call graph and summaries
// over the targets plus every module package they transitively import,
// then the interprocedural checks. Diagnostics are reported only against
// target units and returned in deterministic order.
func (r *Runner) Lint(targets []Target) ([]Diagnostic, error) {
	var targetUnits []*Unit
	targetDirs := map[string]bool{}
	for _, t := range targets {
		units, err := r.Loader.LoadDir(t.Dir, t.Path)
		if err != nil {
			return nil, err
		}
		targetUnits = append(targetUnits, units...)
		for _, u := range units {
			targetDirs[u.Dir] = true
		}
	}
	allUnits := append(slices.Clip(targetUnits), r.Loader.ImportedUnits(targetDirs)...)

	rn := &run{fset: r.Loader.Fset, anns: map[string]*fileAnns{}}
	// Annotations are collected for every loaded unit so suppression works
	// wherever a finding lands, but malformed-annotation reporting and the
	// unused sweep cover only the lint targets.
	for _, u := range allUnits {
		for _, f := range u.Files {
			name := r.Loader.Fset.Position(f.Pos()).Filename
			if rn.anns[name] != nil {
				continue
			}
			rn.anns[name] = collectAnnotations(r.Loader.Fset, f, rn, !u.Imported)
		}
	}

	for _, u := range targetUnits {
		r.lintUnit(u, rn)
	}

	graph := buildCallGraph(r.Loader.Fset, allUnits, rn)
	computeSummaries(graph)
	for _, chk := range ModuleChecks {
		mp := &ModulePass{Config: r.Config, Graph: graph, check: chk.Name, run: rn}
		chk.Run(mp)
	}

	// Stale escapes are findings too: an annotation that suppressed
	// nothing means the code it excused was fixed (or never needed it).
	for _, u := range targetUnits {
		for _, f := range u.Files {
			name := r.Loader.Fset.Position(f.Pos()).Filename
			for _, a := range rn.anns[name].list {
				if a.used {
					continue
				}
				msg := fmt.Sprintf("unused ddbmlint annotation for %q", a.check)
				hint := "the annotated construct no longer triggers the check; delete the annotation"
				if a.check == "hotpath" {
					msg = "ddbmlint:hotpath annotation not attached to a function declaration"
					hint = "place //ddbmlint:hotpath on the line directly above the func declaration it pins"
				}
				rn.diags = append(rn.diags, Diagnostic{
					Pos:   token.Position{Filename: name, Line: a.line, Column: 1},
					Check: "annotation",
					Msg:   msg,
					Hint:  hint,
				})
			}
		}
	}

	slices.SortFunc(rn.diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Column, b.Pos.Column); c != 0 {
			return c
		}
		return cmp.Compare(a.Check, b.Check)
	})
	return rn.diags, nil
}

func (r *Runner) lintUnit(u *Unit, rn *run) {
	for _, chk := range Checks {
		pol := r.Config.policy(chk.Name)
		if !pol.inScope(u.Path) {
			continue
		}
		pass := &Pass{Fset: r.Loader.Fset, Unit: u, check: chk.Name, run: rn}
		for _, f := range u.Files {
			if pol.SkipTests && u.Test[f] {
				continue
			}
			chk.Run(pass, f)
		}
	}
}
