package lint

import "go/ast"

// runNakedGoroutine flags go statements outside internal/sim. The sim
// package owns the run-to-block scheduler: its handshake guarantees
// exactly one simulation goroutine runs at a time, which is what makes
// process interleaving a pure function of the event queue. A goroutine
// spawned anywhere else races the scheduler and reintroduces host-timing
// nondeterminism unless it has been audited end to end.
func runNakedGoroutine(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			p.Report(g.Pos(),
				"goroutine outside internal/sim",
				"model concurrency as sim processes (Sim.Spawn); host-parallel fan-out needs an audited //ddbmlint:allow no-naked-goroutine <why>")
		}
		return true
	})
}
