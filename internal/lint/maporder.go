package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runMapOrder flags for-range loops over maps whose bodies are not
// provably order-insensitive. Go randomizes map iteration order per run,
// so any observable effect of the visit order (an append consumed
// unsorted, an early return of a visited element, a resume scheduled per
// iteration) diverges between runs with identical seeds.
//
// A loop body counts as order-insensitive when it only:
//
//   - writes through index expressions into maps (distinct-key writes
//     commute),
//   - accumulates with commutative compound assignments (+=, -=, *=,
//     |=, &=, ^=) or ++/--,
//   - deletes map keys,
//   - declares iteration-local variables,
//   - returns constants (an existence test is true regardless of which
//     iteration finds the witness),
//   - appends to slices that are explicitly sorted by a sort/slices call
//     later in the same enclosing block (the collect-then-sort idiom),
//
// with if/for/switch/block statements allowed as composition. Anything
// else — calls, sends, plain assignments of loop-dependent values, break,
// non-constant returns — is treated as order-sensitive. Loops that are
// safe for a reason the analysis cannot see carry
// //ddbmlint:ordered <why> next to their explicit ordering argument.
func runMapOrder(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		list := stmtList(n)
		if list == nil {
			return true
		}
		for i := range list {
			rs, bad := sensitiveMapRange(p.Unit.Info, list, i)
			if !bad {
				continue
			}
			p.Report(rs.For,
				"iteration over map "+types.ExprString(rs.X)+" has an order-sensitive body",
				"iterate a sorted key slice, restructure into pure reads into another map/counter, or annotate //ddbmlint:ordered <why> next to an explicit sort")
		}
		return true
	})
}

// stmtList returns the statement list a node carries, or nil.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// sensitiveMapRange reports whether list[i] is a for-range over a map
// whose body is order-sensitive (and not cleared by the collect-then-sort
// idiom against the statements that follow it). Shared by the intra-unit
// map-order check and the interprocedural summary extraction.
func sensitiveMapRange(info *types.Info, list []ast.Stmt, i int) (*ast.RangeStmt, bool) {
	rs, ok := list[i].(*ast.RangeStmt)
	if !ok {
		return nil, false
	}
	if _, isMap := typeUnder(info, rs.X).(*types.Map); !isMap {
		return nil, false
	}
	c := &mapOrderLoop{info: info, appended: map[types.Object]bool{}}
	if c.insensitive(rs.Body.List) && c.sortedAfter(list[i+1:]) {
		return nil, false
	}
	return rs, true
}

func typeUnder(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// mapOrderLoop carries the analysis state of a single map-range loop.
type mapOrderLoop struct {
	info *types.Info
	// appended collects slice variables grown with x = append(x, ...);
	// the loop is only cleared if each is sorted after the loop.
	appended map[types.Object]bool
}

func (c *mapOrderLoop) insensitive(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *mapOrderLoop) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && c.isBuiltin(call.Fun, "delete")
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.insensitive(s.Body.List) {
			return false
		}
		return s.Else == nil || c.stmtOK(s.Else)
	case *ast.BlockStmt:
		return c.insensitive(s.List)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !c.isConst(r) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		// continue restarts the next iteration; break/goto select an
		// iteration-order-dependent cut point.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.RangeStmt:
		// Inner loops inherit the outer sensitivity rules; an inner
		// map-range is additionally analyzed on its own where it appears.
		return c.insensitive(s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if s.Post != nil && !c.stmtOK(s.Post) {
			return false
		}
		return c.insensitive(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		return c.insensitive(s.Body.List)
	case *ast.TypeSwitchStmt:
		return c.insensitive(s.Body.List)
	case *ast.CaseClause:
		return c.insensitive(s.Body)
	}
	return false
}

func (c *mapOrderLoop) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		// Iteration-local variables.
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation.
		return true
	case token.ASSIGN:
		if obj := c.appendTarget(s); obj != nil {
			c.appended[obj] = true
			return true
		}
		for _, lhs := range s.Lhs {
			if !c.lhsOK(lhs) {
				return false
			}
		}
		return true
	}
	return false
}

// appendTarget recognizes x = append(x, ...) and returns x's object.
func (c *mapOrderLoop) appendTarget(s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !c.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
		return nil
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || arg.Name != id.Name {
		return nil
	}
	return c.info.ObjectOf(id)
}

// lhsOK accepts write targets whose iteration-order effects cancel out:
// the blank identifier and index expressions into maps (each iteration
// writes its own key).
func (c *mapOrderLoop) lhsOK(e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name == "_"
	}
	if ix, ok := e.(*ast.IndexExpr); ok {
		_, isMap := typeUnder(c.info, ix.X).(*types.Map)
		return isMap
	}
	return false
}

func (c *mapOrderLoop) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// isConst reports whether e is a compile-time constant or nil — a value
// that is the same no matter which iteration returns it.
func (c *mapOrderLoop) isConst(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}

// sortedAfter checks that every slice collected inside the loop is passed
// to a sort (package sort or slices) by one of the statements that follow
// the loop in its enclosing block — the collect-then-sort idiom that
// launders map order into a total order.
func (c *mapOrderLoop) sortedAfter(following []ast.Stmt) bool {
	if len(c.appended) == 0 {
		return true
	}
	sorted := map[types.Object]bool{}
	for _, s := range following {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !c.isSortCall(sel) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						if obj := c.info.ObjectOf(id); obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for obj := range c.appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

var sortFns = map[string]bool{
	"Slice": true, "SliceStable": true, "Stable": true,
	"Float64s": true, "Ints": true, "Strings": true,
}

func (c *mapOrderLoop) isSortCall(sel *ast.SelectorExpr) bool {
	fn, ok := c.info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return sortFns[fn.Name()] || len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort"
	}
	return false
}
