package lint

import (
	"go/ast"
	"go/token"
)

// runSpanRetention flags struct fields and package-level variables that
// hold obs.Span handles outside internal/obs. A Span returns to its
// tracer's free-list at End() and is handed out again by a later Begin,
// so a stored handle silently becomes a different, live span — the same
// dead-handle class of bug that event-retention guards against for the
// kernel's events.
func runSpanRetention(p *Pass, f *ast.File) {
	const hint = "span handles die at End() (free-list reuse); keep the *obs.Span in a local and End it on every exit path, or annotate //ddbmlint:allow span-retention <why> after auditing the lifecycle"
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, fld := range n.Fields.List {
				if holdsNamed(p.TypeOf(fld.Type), "internal/obs", "Span") {
					p.Report(fld.Pos(), "struct field retains *obs.Span past End", hint)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.ObjectOf(name)
					// Only package-level vars: locals come and go with
					// their span.
					if obj == nil || obj.Parent() != p.Unit.Pkg.Scope() {
						continue
					}
					if holdsNamed(obj.Type(), "internal/obs", "Span") {
						p.Report(name.Pos(), "package variable retains *obs.Span past End", hint)
					}
				}
			}
		}
		return true
	})
}
