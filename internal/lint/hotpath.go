package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// runHotpathAlloc enforces the static twin of the runtime AllocsPerRun
// pins: every function marked //ddbmlint:hotpath must be allocation-free
// transitively. The walk starts at each marked root in the lint targets
// and follows static module-internal edges in source order; every
// definite allocation site is a finding, and every dynamic or
// unaudited-external call is a finding too, because a path the analysis
// cannot see through cannot be proven allocation-free. Audited cold
// branches (free-list refills, growth fallbacks, panic formatting) carry
// //ddbmlint:allow hotpath-alloc <why> on the site line.
func runHotpathAlloc(mp *ModulePass) {
	pol := mp.Config.policy(mp.check)
	g := mp.Graph
	reported := map[token.Pos]bool{}
	var chain []string

	var walk func(n *FuncNode, visited map[*FuncNode]bool)
	walk = func(n *FuncNode, visited map[*FuncNode]bool) {
		if visited[n] {
			return
		}
		visited[n] = true
		chain = append(chain, n.Name)
		via := strings.Join(chain, " -> ")
		for _, site := range n.allocs {
			if reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			mp.Report(site.pos,
				fmt.Sprintf("allocation on hot path: %s", site.what),
				fmt.Sprintf("reached via %s; free-list or precompute it, or annotate an audited cold branch with //ddbmlint:allow hotpath-alloc <why>", via))
		}
		for _, site := range n.opaque {
			if reported[site.pos] {
				continue
			}
			reported[site.pos] = true
			mp.Report(site.pos,
				fmt.Sprintf("hot path not statically verifiable: %s", site.what),
				fmt.Sprintf("reached via %s; devirtualize the call, extend the audited-external allowlist, or annotate //ddbmlint:allow hotpath-alloc <why>", via))
		}
		for _, site := range n.Calls {
			if site.Kind != callStatic {
				continue // flagged as opaque above, not followed
			}
			for _, callee := range site.Callees {
				walk(callee, visited)
			}
		}
		chain = chain[:len(chain)-1]
	}

	for _, root := range g.Nodes {
		if !root.Hotpath || root.Unit.Imported || !nodeInScope(pol, root) {
			continue
		}
		walk(root, map[*FuncNode]bool{})
	}
}
