package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// interpConfig scopes the interprocedural fixture tree the way the real
// repo scopes cmd/: clockutil and randutil play the exempt harness
// packages, so taint must be caught at the simcode/hot boundary.
func interpConfig() Config {
	pre := "ddbm/testdata/interp"
	return NewConfig(
		Policy{Check: "no-wall-clock", SkipTests: true, Skip: []string{pre + "/clockutil"}},
		Policy{Check: "no-global-rand", Skip: []string{pre + "/randutil"}},
		Policy{Check: "taint-wall-clock", SkipTests: true, Skip: []string{pre + "/clockutil"}},
		Policy{Check: "taint-rand", SkipTests: true, Skip: []string{pre + "/randutil"}},
		Policy{Check: "hotpath-alloc", SkipTests: true},
	)
}

// interpTargets lists every fixture package under testdata/interp as one
// multi-target lint run — the interprocedural checks need the whole set
// in a single call graph.
func interpTargets(t *testing.T, root string) []Target {
	t.Helper()
	fixRoot := filepath.Join(root, "testdata", "interp")
	dirs, err := PackageDirs(fixRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 3 {
		t.Fatalf("found only %d fixture packages under %s", len(dirs), fixRoot)
	}
	var targets []Target
	for _, rel := range dirs {
		targets = append(targets, Target{
			Dir:  filepath.Join(fixRoot, filepath.FromSlash(rel)),
			Path: "ddbm/testdata/interp/" + rel,
		})
	}
	return targets
}

// TestInterprocFixtures runs the taint and hot-path checks over the
// fixture module in testdata/interp, which spans an exempt clock helper,
// an exempt rand helper, a simulation-scope caller, and a hot-path
// package, and asserts the exact diagnostic set via // want comments.
func TestInterprocFixtures(t *testing.T) {
	root := findModuleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Config: interpConfig()}
	targets := interpTargets(t, root)
	diags, err := runner.Lint(targets)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]string{}
	for _, tgt := range targets {
		for key, subs := range collectWants(t, tgt.Dir) {
			wants[key] = append(wants[key], subs...)
		}
	}
	matchWants(t, diags, wants)
}

// TestLintDeterminism pins the output-determinism invariant: two fresh
// loader+runner passes over the same targets must render byte-identical
// diagnostics, hints and call chains included — no map-iteration order
// may leak into the fixpoint or the reports.
func TestLintDeterminism(t *testing.T) {
	root := findModuleRoot(t)
	render := func() string {
		loader, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		runner := &Runner{Loader: loader, Config: interpConfig()}
		diags, err := runner.Lint(interpTargets(t, root))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("interp fixtures produced no diagnostics; determinism test is vacuous")
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d diverged:\n--- first ---\n%s--- run %d ---\n%s", i+2, first, i+2, got)
		}
	}
}

// writeTree materializes a map of relative path -> contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, body := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoaderFailures pins the failure modes of the loader and runner:
// malformed input must surface as a descriptive error from LoadDir/Lint,
// never as a panic and never as silently-empty output.
func TestLoaderFailures(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string
		target  string // dir to lint, relative to the temp module root
		wantErr string // substring the error must carry
	}{
		{
			name: "syntax error",
			files: map[string]string{
				"go.mod":        "module tmpmod\n\ngo 1.22\n",
				"broken/bad.go": "package broken\n\nfunc f( {\n",
			},
			target:  "broken",
			wantErr: "broken/bad.go",
		},
		{
			name: "unresolvable import",
			files: map[string]string{
				"go.mod":      "module tmpmod\n\ngo 1.22\n",
				"uses/use.go": "package uses\n\nimport \"tmpmod/missing\"\n\nvar _ = missing.X\n",
			},
			target:  "uses",
			wantErr: "tmpmod/missing",
		},
		{
			name: "empty directory",
			files: map[string]string{
				"go.mod": "module tmpmod\n\ngo 1.22\n",
				// The directory exists but holds no Go files.
				"empty/README.txt": "nothing to lint here\n",
			},
			target:  "empty",
			wantErr: "no Go files",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root := t.TempDir()
			writeTree(t, root, c.files)
			loader, err := NewLoader(root)
			if err != nil {
				t.Fatalf("NewLoader: %v", err)
			}
			runner := &Runner{Loader: loader, Config: DefaultConfig("tmpmod")}
			diags, err := runner.LintDir(filepath.Join(root, c.target), "tmpmod/"+c.target)
			if err == nil {
				t.Fatalf("expected an error, got %d diagnostics", len(diags))
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
