package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// callKind classifies how a call site's callees were resolved.
type callKind int

const (
	// callStatic calls exactly one statically known function: a package
	// function, a method on a concrete receiver, or an immediately
	// invoked function literal.
	callStatic callKind = iota
	// callInterface dispatches through an interface method; candidates
	// are every module method with the same name and signature.
	callInterface
	// callIndirect calls through a function value (variable, field,
	// parameter, call result); candidates are every address-taken module
	// function with the same signature.
	callIndirect
)

// CallSite is one call expression inside a function body, with the
// module-internal callee candidates it may reach. For calls that leave
// the module (standard library), External carries the callee and Callees
// is empty.
type CallSite struct {
	Pos      token.Pos
	Call     *ast.CallExpr
	Kind     callKind
	Callees  []*FuncNode
	External *types.Func
}

// FuncNode is one function in the module: a declared function or method,
// or a function literal. Nodes are indexed in deterministic order
// (unit order, then file order, then source position).
type FuncNode struct {
	Index    int
	Name     string // qualified display name for chains
	PkgPath  string // the owning unit's scope path
	Unit     *Unit
	File     *ast.File
	TestFile bool
	Decl     *ast.FuncDecl // nil for literals
	Lit      *ast.FuncLit  // nil for declarations
	Body     *ast.BlockStmt
	Sig      *types.Signature
	Hotpath  bool

	Calls []*CallSite // source order

	// Summary state (summary.go): direct facts observed in this body and
	// the fixpoint facts including everything reachable through Calls.
	direct factSet
	facts  factSet
	// directSite holds the position of the first construct that set each
	// direct fact bit, for chain reporting.
	directSite map[factSet]token.Pos

	// Allocation state (alloc.go): definite allocation sites in this
	// body and opaque call sites that cannot be verified.
	allocs []allocSite
	opaque []allocSite

	params map[types.Object]bool // parameter objects, for append exemption
}

// CallGraph is the whole-module graph: every function in every loaded
// unit, with conservative over-approximated edges for dynamic calls.
type CallGraph struct {
	Fset  *token.FileSet
	Nodes []*FuncNode

	// byPos bridges type-checking views: the import view and the unit
	// view of a package are checked from the same parsed files, so a
	// *types.Func from either view has the position of the one
	// declaration, which is the node key.
	byPos map[token.Pos]*FuncNode

	// methodsBySig indexes non-test declared methods by name plus
	// receiver-stripped signature, the candidate set for interface
	// dispatch.
	methodsBySig map[string][]*FuncNode
	// takenBySig indexes non-test address-taken functions (declared
	// functions referenced outside call position, and function literals)
	// by signature, the candidate set for indirect calls.
	takenBySig map[string][]*FuncNode
}

// sigKey renders a signature with package-path qualification and the
// receiver stripped, so method values and interface methods compare equal
// to plain functions of the same shape.
func sigKey(sig *types.Signature) string {
	stripped := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(stripped, func(p *types.Package) string { return p.Path() })
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// buildCallGraph constructs the whole-module call graph over units. The
// node order, edge order, and candidate order are all derived from
// source order, so the graph (and everything computed from it) is
// deterministic.
func buildCallGraph(fset *token.FileSet, units []*Unit, rn *run) *CallGraph {
	g := &CallGraph{
		Fset:         fset,
		byPos:        map[token.Pos]*FuncNode{},
		methodsBySig: map[string][]*FuncNode{},
		takenBySig:   map[string][]*FuncNode{},
	}
	// Pass 1: create a node for every function declaration and literal.
	for _, u := range units {
		for _, f := range u.Files {
			g.addFileNodes(u, f, rn)
		}
	}
	// Pass 2: resolve call sites and index dynamic-dispatch candidates.
	taken := g.collectAddressTaken(units)
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Decl.Recv != nil && !n.TestFile {
			key := n.Decl.Name.Name + "|" + sigKey(n.Sig)
			g.methodsBySig[key] = append(g.methodsBySig[key], n)
		}
		if taken[n] && !n.TestFile {
			key := sigKey(n.Sig)
			g.takenBySig[key] = append(g.takenBySig[key], n)
		}
	}
	for _, n := range g.Nodes {
		g.resolveCalls(n)
	}
	return g
}

// addFileNodes creates nodes for every function declaration in f and
// every function literal nested inside, in source order.
func (g *CallGraph) addFileNodes(u *Unit, f *ast.File, rn *run) {
	fname := g.Fset.Position(f.Pos()).Filename
	isTest := u.Test[f]
	for _, d := range f.Decls {
		decl, ok := d.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			continue
		}
		obj, _ := u.Info.Defs[decl.Name].(*types.Func)
		if obj == nil {
			continue
		}
		n := &FuncNode{
			Index: len(g.Nodes), Name: shortFuncName(obj),
			PkgPath: u.Path, Unit: u, File: f, TestFile: isTest,
			Decl: decl, Body: decl.Body,
			Sig: obj.Type().(*types.Signature),
		}
		n.params = paramObjects(u.Info, decl.Type)
		// //ddbmlint:hotpath on the func line or stacked directly above
		// pins this declaration as a statically allocation-free path.
		if a := rn.annotationFor(fname, g.Fset.Position(decl.Pos()).Line, "hotpath"); a != nil {
			a.used = true
			n.Hotpath = true
		}
		g.Nodes = append(g.Nodes, n)
		g.byPos[decl.Name.Pos()] = n
		g.addLitNodes(u, f, n)
	}
}

// addLitNodes creates nodes for the function literals directly inside
// parent's own body (not inside deeper literals), named after the
// enclosing declaration, then recurses so every literal at every depth
// gets a node in source order.
func (g *CallGraph) addLitNodes(u *Unit, f *ast.File, parent *FuncNode) {
	count := 0
	var children []*FuncNode
	walkOwnBody(parent, func(x ast.Node) {
		lit, ok := x.(*ast.FuncLit)
		if !ok || lit == parent.Lit {
			return
		}
		sig, _ := u.Info.TypeOf(lit).(*types.Signature)
		if sig == nil {
			return
		}
		count++
		ln := &FuncNode{
			Index:   len(g.Nodes),
			Name:    parent.Name + ".func" + itoa(count),
			PkgPath: u.Path, Unit: u, File: f, TestFile: parent.TestFile,
			Lit: lit, Body: lit.Body, Sig: sig,
			params: paramObjects(u.Info, lit.Type),
		}
		g.Nodes = append(g.Nodes, ln)
		g.byPos[lit.Pos()] = ln
		children = append(children, ln)
	})
	for _, ln := range children {
		g.addLitNodes(u, f, ln)
	}
}

// shortFuncName renders obj as pkgname.Func or pkgname.(Recv).Method.
func shortFuncName(obj *types.Func) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// paramObjects collects the parameter (and receiver) objects of a
// function type, the roots exempt from the append-allocation rule: an
// append into a caller-owned buffer is the caller's growth to amortize.
func paramObjects(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	m := map[types.Object]bool{}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					m[obj] = true
				}
			}
		}
	}
	return m
}

// collectAddressTaken finds every declared function or literal whose
// value escapes into a variable, field, argument, or composite literal —
// the candidate set for indirect calls. References in call position are
// not address-taken.
func (g *CallGraph) collectAddressTaken(units []*Unit) map[*FuncNode]bool {
	taken := map[*FuncNode]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			// Call-position expressions (and immediately invoked
			// literals) are plain calls, not escapes.
			callFun := map[ast.Expr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callFun[unparen(call.Fun)] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.FuncLit:
					if !callFun[e] {
						if node := g.byPos[e.Pos()]; node != nil {
							taken[node] = true
						}
					}
				case *ast.Ident:
					if fn, ok := u.Info.Uses[e].(*types.Func); ok && !callFun[e] {
						if node := g.byPos[fn.Pos()]; node != nil {
							taken[node] = true
						}
					}
				case *ast.SelectorExpr:
					if fn, ok := u.Info.Uses[e.Sel].(*types.Func); ok && !callFun[e] {
						if node := g.byPos[fn.Pos()]; node != nil {
							taken[node] = true
						}
					}
				}
				return true
			})
		}
	}
	return taken
}

// resolveCalls walks n's body (excluding nested literals, which own their
// calls) and records a CallSite for every call expression.
func (g *CallGraph) resolveCalls(n *FuncNode) {
	info := n.Unit.Info
	walkOwnBody(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		if site := g.classifyCall(info, call); site != nil {
			n.Calls = append(n.Calls, site)
		}
	})
}

// walkOwnBody visits every node in n's body except the bodies of nested
// function literals, which are separate graph nodes. The literal node
// itself is visited (it is a construct of this body — a closure value)
// but its statements are not.
func walkOwnBody(n *FuncNode, visit func(ast.Node)) {
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}

// classifyCall resolves one call expression to a CallSite, or nil for
// conversions and builtins.
func (g *CallGraph) classifyCall(info *types.Info, call *ast.CallExpr) *CallSite {
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			return nil
		case *types.Func:
			return g.staticSite(call, obj)
		case *types.Var:
			return g.indirectSite(info, call)
		case nil:
			// Defs, not Uses: impossible in call position; treat indirect.
			return g.indirectSite(info, call)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return g.interfaceSite(call, fn)
				}
				return g.staticSite(call, fn)
			case types.FieldVal:
				return g.indirectSite(info, call)
			}
			return g.indirectSite(info, call)
		}
		// Qualified identifier pkg.F.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			return g.staticSite(call, obj)
		case *types.Var:
			return g.indirectSite(info, call)
		}
	case *ast.FuncLit:
		// Immediately invoked literal: a static edge to its node.
		if node := g.byPos[f.Pos()]; node != nil {
			return &CallSite{Pos: call.Pos(), Call: call, Kind: callStatic, Callees: []*FuncNode{node}}
		}
	}
	return g.indirectSite(info, call)
}

func (g *CallGraph) staticSite(call *ast.CallExpr, fn *types.Func) *CallSite {
	site := &CallSite{Pos: call.Pos(), Call: call, Kind: callStatic}
	if node := g.byPos[fn.Pos()]; node != nil {
		site.Callees = []*FuncNode{node}
	} else {
		site.External = fn
	}
	return site
}

// interfaceSite over-approximates interface dispatch: every non-test
// module method with the same name and receiver-stripped signature is a
// candidate. This is deliberately coarser than a points-to analysis —
// see DESIGN.md §13 for why over-approximation is the right trade.
func (g *CallGraph) interfaceSite(call *ast.CallExpr, fn *types.Func) *CallSite {
	key := fn.Name() + "|" + sigKey(fn.Type().(*types.Signature))
	return &CallSite{
		Pos: call.Pos(), Call: call, Kind: callInterface,
		Callees: g.methodsBySig[key], External: fn,
	}
}

// indirectSite over-approximates a call through a function value: every
// non-test address-taken module function with the same signature is a
// candidate.
func (g *CallGraph) indirectSite(info *types.Info, call *ast.CallExpr) *CallSite {
	site := &CallSite{Pos: call.Pos(), Call: call, Kind: callIndirect}
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		site.Callees = g.takenBySig[sigKey(sig)]
	}
	return site
}
