package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runEventRetention flags struct fields and package-level variables that
// hold sim.Event values or handles outside internal/sim. Events are
// recycled through the kernel free-list the moment they fire or are
// canceled, so a stored handle silently becomes a different, live event
// later — the classic dead-handle bug. Retainers that nil their reference
// on fire/cancel can be annotated after audit.
func runEventRetention(p *Pass, f *ast.File) {
	const hint = "event handles die on fire/cancel (free-list recycling); drop the reference instead, or annotate //ddbmlint:allow event-retention <why> after auditing the lifecycle"
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, fld := range n.Fields.List {
				if holdsEvent(p.TypeOf(fld.Type)) {
					p.Report(fld.Pos(), "struct field retains *sim.Event across events", hint)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.ObjectOf(name)
					// Only package-level vars: locals come and go with
					// their event.
					if obj == nil || obj.Parent() != p.Unit.Pkg.Scope() {
						continue
					}
					if holdsEvent(obj.Type()) {
						p.Report(name.Pos(), "package variable retains *sim.Event across events", hint)
					}
				}
			}
		}
		return true
	})
}

// holdsEvent reports whether t structurally contains sim.Event.
func holdsEvent(t types.Type) bool { return holdsNamed(t, "internal/sim", "Event") }

// holdsNamed reports whether t structurally contains the named type
// pkgSuffix.name (by value or through pointers, slices, arrays, maps, or
// channels). Other named types are not descended into: their own
// declarations are checked where they are defined. Shared by the
// event-retention and span-retention checks.
func holdsNamed(t types.Type, pkgSuffix, name string) bool {
	for range 64 { // depth guard; composite nesting is tiny in practice
		switch u := t.(type) {
		case *types.Named:
			obj := u.Obj()
			return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) && obj.Name() == name
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Map:
			if holdsNamed(u.Key(), pkgSuffix, name) {
				return true
			}
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}
