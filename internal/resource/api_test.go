package resource

import (
	"testing"

	"ddbm/internal/sim"
)

func TestUseMsgBlocking(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	var done sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		c.UseMsgBlocking(p, 3000)
		done = s.Now()
	})
	s.Run(100)
	if done != 3 {
		t.Errorf("blocking message finished at %v ms, want 3", done)
	}
}

func TestUseMsgBlockingZeroCost(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	ran := false
	s.Spawn("p", func(p *sim.Proc) {
		c.UseMsgBlocking(p, 0)
		ran = true
		if s.Now() != 0 {
			t.Error("zero-cost blocking message advanced time")
		}
	})
	s.Run(10)
	if !ran {
		t.Fatal("process never resumed")
	}
}

func TestUseMsgBlockingPreemptsPS(t *testing.T) {
	// A blocking message submitted while PS work runs must still preempt.
	s := sim.New(1)
	c := NewCPU(s, 1)
	var msgDone, jobDone sim.Time
	s.Spawn("job", func(p *sim.Proc) {
		c.Use(p, 10000)
		jobDone = s.Now()
	})
	s.Spawn("msg", func(p *sim.Proc) {
		p.Delay(2)
		c.UseMsgBlocking(p, 1000)
		msgDone = s.Now()
	})
	s.Run(100)
	if msgDone != 3 {
		t.Errorf("message done at %v, want 3", msgDone)
	}
	if jobDone != 11 {
		t.Errorf("job done at %v, want 11", jobDone)
	}
}

func TestRateAccessor(t *testing.T) {
	c := NewCPU(sim.New(1), 2.5)
	if c.Rate() != 2500 {
		t.Errorf("rate %v inst/ms, want 2500", c.Rate())
	}
}

func TestNumDisksAccessor(t *testing.T) {
	d := NewDiskArray(sim.New(1), 3, 10, 30)
	if d.NumDisks() != 3 {
		t.Errorf("NumDisks %d", d.NumDisks())
	}
}
