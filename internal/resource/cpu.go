// Package resource models the physical resources of a database machine
// node: a CPU whose service discipline is first-come-first-served for
// message processing (at higher, preemptive priority) and processor sharing
// for all other work, plus an array of disks with FIFO queues and
// write-over-read priority (paper §3.4, Table 3).
package resource

import (
	"ddbm/internal/obs"
	"ddbm/internal/sim"
)

// instruction bookkeeping tolerance: completions within this many
// instructions of zero are treated as finished to absorb float drift.
const instEpsilon = 1e-6

type cpuJob struct {
	remaining float64 // instructions left
	done      func()
}

// CPU models a single processor. Message-class requests are served one at a
// time in FIFO order and preempt processor-sharing work entirely;
// processor-sharing requests divide the CPU equally among themselves
// whenever no message is being processed.
type CPU struct {
	sim  *sim.Sim
	rate float64 // instructions per millisecond

	ps   []*cpuJob
	msgs []*cpuJob

	lastT sim.Time
	// next is the pending completion event. Audited retainer: complete()
	// nils it before callbacks run and reschedule() cancels-then-replaces
	// it, so it never holds a dead (recycled) handle.
	//ddbmlint:allow event-retention canceled or nilled before the handle dies; see reschedule/complete
	next *sim.Event

	busyPS  float64 // ms spent on processor-sharing work
	busyMsg float64 // ms spent on message processing
	markPS  float64 // snapshots taken at warmup
	markMsg float64
	markT   sim.Time

	// tr, when non-nil, records one obs span per busy period (first job
	// arrival to queue drain); node tags the spans. busyStart is a plain
	// timestamp, not a span handle, so nothing here outlives its span.
	tr        *obs.Tracer
	node      int
	busyStart sim.Time
}

// NewCPU creates a CPU executing at the given MIPS rating.
func NewCPU(s *sim.Sim, mips float64) *CPU {
	if mips <= 0 {
		panic("resource: CPU MIPS must be positive")
	}
	return &CPU{sim: s, rate: mips * 1000, lastT: s.Now()}
}

// Rate returns the CPU speed in instructions per millisecond.
func (c *CPU) Rate() float64 { return c.rate }

// SetTrace attaches an observability tracer recording this CPU's busy
// periods, tagged with the given node id. Tracing is observation only and
// must be configured before the simulation runs.
func (c *CPU) SetTrace(t *obs.Tracer, node int) {
	c.tr = t
	c.node = node
}

// noteArrival opens a busy period when a job arrives at an idle CPU.
func (c *CPU) noteArrival() {
	if c.tr != nil && len(c.ps)+len(c.msgs) == 1 {
		c.busyStart = c.sim.Now()
	}
}

// Use consumes inst instructions of processor-sharing service, blocking the
// calling process until the work completes. Zero or negative cost returns
// immediately (the paper sets several overheads to zero).
func (c *CPU) Use(p *sim.Proc, inst float64) {
	if inst <= 0 {
		return
	}
	c.UseAsync(inst, func() { p.Resume() })
	p.Suspend()
}

// UseAsync submits processor-sharing work and invokes done on completion
// without blocking the caller. A zero cost invokes done immediately.
func (c *CPU) UseAsync(inst float64, done func()) {
	if inst <= 0 {
		if done != nil {
			done()
		}
		return
	}
	c.advance()
	c.ps = append(c.ps, &cpuJob{remaining: inst, done: done})
	c.noteArrival()
	c.reschedule()
}

// UseMsg submits message-processing work: FIFO order, one at a time, at a
// priority that preempts all processor-sharing work. done runs on
// completion; a zero cost invokes it immediately.
func (c *CPU) UseMsg(inst float64, done func()) {
	if inst <= 0 {
		if done != nil {
			done()
		}
		return
	}
	c.advance()
	c.msgs = append(c.msgs, &cpuJob{remaining: inst, done: done})
	c.noteArrival()
	c.reschedule()
}

// UseMsgBlocking is UseMsg for callers running inside a process.
func (c *CPU) UseMsgBlocking(p *sim.Proc, inst float64) {
	if inst <= 0 {
		return
	}
	c.UseMsg(inst, func() { p.Resume() })
	p.Suspend()
}

// advance charges elapsed time since the last state change to the active
// jobs: the head message exclusively, or the PS jobs in equal shares.
func (c *CPU) advance() {
	now := c.sim.Now()
	dt := now - c.lastT
	c.lastT = now
	if dt <= 0 {
		return
	}
	if len(c.msgs) > 0 {
		c.msgs[0].remaining -= dt * c.rate
		c.busyMsg += dt
		return
	}
	if n := len(c.ps); n > 0 {
		share := dt * c.rate / float64(n)
		for _, j := range c.ps {
			j.remaining -= share
		}
		c.busyPS += dt
	}
}

// reschedule recomputes the next completion event.
func (c *CPU) reschedule() {
	if c.next != nil {
		c.sim.Cancel(c.next)
		c.next = nil
	}
	var dt float64
	switch {
	case len(c.msgs) > 0:
		dt = c.msgs[0].remaining / c.rate
	case len(c.ps) > 0:
		min := c.ps[0].remaining
		for _, j := range c.ps[1:] {
			if j.remaining < min {
				min = j.remaining
			}
		}
		dt = min * float64(len(c.ps)) / c.rate
	default:
		return
	}
	if dt < 0 {
		dt = 0
	}
	c.next = c.sim.After(dt, c.complete)
}

// complete fires when the earliest job should have finished.
func (c *CPU) complete() {
	c.next = nil
	c.advance()
	var finished []func()
	if len(c.msgs) > 0 {
		// Messages complete strictly one at a time.
		if c.msgs[0].remaining <= instEpsilon {
			j := c.msgs[0]
			c.msgs[0] = nil
			c.msgs = c.msgs[1:]
			finished = append(finished, j.done)
		}
	} else {
		kept := c.ps[:0]
		for _, j := range c.ps {
			if j.remaining <= instEpsilon {
				finished = append(finished, j.done)
			} else {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(c.ps); i++ {
			c.ps[i] = nil
		}
		c.ps = kept
	}
	if c.tr != nil && len(c.msgs)+len(c.ps) == 0 {
		c.tr.CPUBusy(c.node, c.busyStart)
	}
	c.reschedule()
	for _, f := range finished {
		if f != nil {
			f()
		}
	}
}

// QueueLen returns the number of in-progress jobs (messages + PS).
func (c *CPU) QueueLen() int { return len(c.msgs) + len(c.ps) }

// BusyTime returns the busy milliseconds (messages plus PS work)
// accumulated since the start of the run, including credit for the
// currently elapsing interval. Unlike Utilization it is a pure read: it
// does NOT fold the in-progress interval into the accumulators, so the
// probe sampler can call it without perturbing float-summation order —
// the run stays bit-identical with sampling on. Not warmup-adjusted.
func (c *CPU) BusyTime() float64 {
	busy := c.busyPS + c.busyMsg
	if dt := c.sim.Now() - c.lastT; dt > 0 && len(c.msgs)+len(c.ps) > 0 {
		busy += dt
	}
	return busy
}

// MarkWarmup snapshots busy-time counters so Utilization measures only the
// post-warmup window.
func (c *CPU) MarkWarmup() {
	c.advance()
	c.markPS = c.busyPS
	c.markMsg = c.busyMsg
	c.markT = c.sim.Now()
}

// Utilization returns the fraction of time the CPU was busy (messages plus
// PS work) since the warmup mark.
func (c *CPU) Utilization() float64 {
	c.advance()
	elapsed := c.sim.Now() - c.markT
	if elapsed <= 0 {
		return 0
	}
	return ((c.busyPS - c.markPS) + (c.busyMsg - c.markMsg)) / elapsed
}

// MsgUtilization returns the fraction of time spent on message processing
// since the warmup mark.
func (c *CPU) MsgUtilization() float64 {
	c.advance()
	elapsed := c.sim.Now() - c.markT
	if elapsed <= 0 {
		return 0
	}
	return (c.busyMsg - c.markMsg) / elapsed
}
