// Package resource models the physical resources of a database machine
// node: a CPU whose service discipline is first-come-first-served for
// message processing (at higher, preemptive priority) and processor sharing
// for all other work, plus an array of disks with FIFO queues and
// write-over-read priority (paper §3.4, Table 3).
package resource

import (
	"ddbm/internal/obs"
	"ddbm/internal/sim"
)

// instruction bookkeeping tolerance: completions within this many
// instructions of zero are treated as finished to absorb float drift.
const instEpsilon = 1e-6

// cpuJob is one unit of CPU work, held by value in the CPU's queues so
// steady-state submission allocates nothing. Completion either resumes
// proc (the blocking Use/UseMsgBlocking path — no closure needed) or
// invokes done (the async path — callers pass pre-bound functions).
type cpuJob struct {
	remaining float64 // instructions left
	done      func()
	proc      *sim.Proc
}

// finish delivers the job's completion to its owner.
//
//ddbmlint:hotpath job completion on the steady-state transaction path
func (j *cpuJob) finish() {
	if j.proc != nil {
		j.proc.Resume()
		return
	}
	if j.done != nil {
		j.done() //ddbmlint:allow hotpath-alloc completion callbacks are pre-bound by their owners (envelope/attempt free-lists)
	}
}

// CPU models a single processor. Message-class requests are served one at a
// time in FIFO order and preempt processor-sharing work entirely;
// processor-sharing requests divide the CPU equally among themselves
// whenever no message is being processed.
//
// All queues hold jobs by value and reuse their backing storage (the PS
// slice compacts in place; the message queue is a power-of-two ring), so
// after the queues reach their high-water capacity the CPU allocates
// nothing per job.
type CPU struct {
	sim  *sim.Sim
	rate float64 // instructions per millisecond

	ps []cpuJob

	msgs    []cpuJob // ring storage; len(msgs) is zero or a power of two
	msgHead int      // index of the oldest message job
	msgLen  int      // message jobs currently queued

	// finScratch collects the jobs finishing in one complete() call so
	// their callbacks run after the next completion is rescheduled; the
	// buffer is reused across calls (complete never re-enters itself —
	// callbacks only schedule future events).
	finScratch []cpuJob

	lastT sim.Time
	// next is the pending completion event. Audited retainer: complete()
	// nils it before callbacks run and reschedule() cancels-then-replaces
	// it, so it never holds a dead (recycled) handle.
	//ddbmlint:allow event-retention canceled or nilled before the handle dies; see reschedule/complete
	next       *sim.Event
	completeFn func() // c.complete, bound once so reschedule never allocates

	busyPS  float64 // ms spent on processor-sharing work
	busyMsg float64 // ms spent on message processing
	markPS  float64 // snapshots taken at warmup
	markMsg float64
	markT   sim.Time

	// tr, when non-nil, records one obs span per busy period (first job
	// arrival to queue drain); node tags the spans. busyStart is a plain
	// timestamp, not a span handle, so nothing here outlives its span.
	tr        *obs.Tracer
	node      int
	busyStart sim.Time
}

// NewCPU creates a CPU executing at the given MIPS rating.
func NewCPU(s *sim.Sim, mips float64) *CPU {
	if mips <= 0 {
		panic("resource: CPU MIPS must be positive")
	}
	c := &CPU{sim: s, rate: mips * 1000, lastT: s.Now()}
	c.completeFn = c.complete
	return c
}

// Rate returns the CPU speed in instructions per millisecond.
func (c *CPU) Rate() float64 { return c.rate }

// Reserve pre-sizes the CPU's queues for up to jobs concurrent jobs of
// each class. The queues are self-amortising, but their growth is driven
// by backlog records that arrive too rarely for a warmup to retire
// deterministically — holders with a pinned allocation budget pre-size
// from their concurrency bound instead. Golden-trace safe: no randomness,
// no scheduling.
func (c *CPU) Reserve(jobs int) {
	if cap(c.ps) < jobs {
		ps := make([]cpuJob, len(c.ps), jobs)
		copy(ps, c.ps)
		c.ps = ps
	}
	if cap(c.finScratch) < jobs {
		c.finScratch = make([]cpuJob, 0, jobs)
	}
	if len(c.msgs) < jobs {
		newCap := 8
		for newCap < jobs {
			newCap *= 2
		}
		buf := make([]cpuJob, newCap)
		for i := 0; i < c.msgLen; i++ {
			buf[i] = c.msgs[(c.msgHead+i)&(len(c.msgs)-1)]
		}
		c.msgs = buf
		c.msgHead = 0
	}
}

// SetTrace attaches an observability tracer recording this CPU's busy
// periods, tagged with the given node id. Tracing is observation only and
// must be configured before the simulation runs.
func (c *CPU) SetTrace(t *obs.Tracer, node int) {
	c.tr = t
	c.node = node
}

// noteArrival opens a busy period when a job arrives at an idle CPU.
func (c *CPU) noteArrival() {
	if c.tr != nil && len(c.ps)+c.msgLen == 1 {
		c.busyStart = c.sim.Now()
	}
}

// Use consumes inst instructions of processor-sharing service, blocking the
// calling process until the work completes. Zero or negative cost returns
// immediately (the paper sets several overheads to zero).
//
//ddbmlint:hotpath cohort work phase pinned by TestTxnPathAllocFree
func (c *CPU) Use(p *sim.Proc, inst float64) {
	if inst <= 0 {
		return
	}
	c.submitPS(cpuJob{remaining: inst, proc: p})
	p.Suspend()
}

// UseAsync submits processor-sharing work and invokes done on completion
// without blocking the caller. A zero cost invokes done immediately.
// done must be pre-bound by the caller if the call site is hot.
//
//ddbmlint:hotpath async CPU work on the transaction path (write-back, cohort startup)
func (c *CPU) UseAsync(inst float64, done func()) {
	if inst <= 0 {
		if done != nil {
			done() //ddbmlint:allow hotpath-alloc completion callbacks are pre-bound by their owners
		}
		return
	}
	c.submitPS(cpuJob{remaining: inst, done: done})
}

// UseMsg submits message-processing work: FIFO order, one at a time, at a
// priority that preempts all processor-sharing work. done runs on
// completion; a zero cost invokes it immediately.
//
//ddbmlint:hotpath network message service pinned by TestTxnPathAllocFree
func (c *CPU) UseMsg(inst float64, done func()) {
	if inst <= 0 {
		if done != nil {
			done() //ddbmlint:allow hotpath-alloc completion callbacks are pre-bound by their owners
		}
		return
	}
	c.submitMsg(cpuJob{remaining: inst, done: done})
}

// UseMsgBlocking is UseMsg for callers running inside a process.
//
//ddbmlint:hotpath blocking message service on the transaction path
func (c *CPU) UseMsgBlocking(p *sim.Proc, inst float64) {
	if inst <= 0 {
		return
	}
	c.submitMsg(cpuJob{remaining: inst, proc: p})
	p.Suspend()
}

//ddbmlint:hotpath shared PS submission path
func (c *CPU) submitPS(j cpuJob) {
	c.advance()
	c.ps = append(c.ps, j) //ddbmlint:allow hotpath-alloc PS queue growth to its high-water capacity
	c.noteArrival()
	c.reschedule()
}

//ddbmlint:hotpath shared message submission path
func (c *CPU) submitMsg(j cpuJob) {
	c.advance()
	if c.msgLen == len(c.msgs) {
		c.growMsgs()
	}
	c.msgs[(c.msgHead+c.msgLen)&(len(c.msgs)-1)] = j
	c.msgLen++
	c.noteArrival()
	c.reschedule()
}

// growMsgs doubles the message ring (minimum 8 slots), unwrapping the live
// window to the front of the new buffer.
func (c *CPU) growMsgs() {
	newCap := 2 * len(c.msgs)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]cpuJob, newCap) //ddbmlint:allow hotpath-alloc message ring growth to its high-water capacity
	for i := 0; i < c.msgLen; i++ {
		buf[i] = c.msgs[(c.msgHead+i)&(len(c.msgs)-1)]
	}
	c.msgs = buf
	c.msgHead = 0
}

// advance charges elapsed time since the last state change to the active
// jobs: the head message exclusively, or the PS jobs in equal shares.
//
//ddbmlint:hotpath service accounting on every CPU state change
func (c *CPU) advance() {
	now := c.sim.Now()
	dt := now - c.lastT
	c.lastT = now
	if dt <= 0 {
		return
	}
	if c.msgLen > 0 {
		c.msgs[c.msgHead].remaining -= dt * c.rate
		c.busyMsg += dt
		return
	}
	if n := len(c.ps); n > 0 {
		share := dt * c.rate / float64(n)
		for i := range c.ps {
			c.ps[i].remaining -= share
		}
		c.busyPS += dt
	}
}

// reschedule recomputes the next completion event.
//
//ddbmlint:hotpath completion scheduling on every CPU state change
func (c *CPU) reschedule() {
	if c.next != nil {
		c.sim.Cancel(c.next)
		c.next = nil
	}
	var dt float64
	switch {
	case c.msgLen > 0:
		dt = c.msgs[c.msgHead].remaining / c.rate
	case len(c.ps) > 0:
		min := c.ps[0].remaining
		for i := 1; i < len(c.ps); i++ {
			if c.ps[i].remaining < min {
				min = c.ps[i].remaining
			}
		}
		dt = min * float64(len(c.ps)) / c.rate
	default:
		return
	}
	if dt < 0 {
		dt = 0
	}
	c.next = c.sim.After(dt, c.completeFn)
}

// complete fires when the earliest job should have finished. Finished jobs
// are copied into the reused scratch buffer so their callbacks run after
// the next completion event is in place, exactly as before the queues
// became allocation-free.
//
//ddbmlint:hotpath CPU completion dispatch pinned by TestTxnPathAllocFree
func (c *CPU) complete() {
	c.next = nil
	c.advance()
	fin := c.finScratch[:0]
	if c.msgLen > 0 {
		// Messages complete strictly one at a time.
		head := &c.msgs[c.msgHead]
		if head.remaining <= instEpsilon {
			fin = append(fin, *head) //ddbmlint:allow hotpath-alloc finish-scratch growth to the per-tick completion high-water mark
			*head = cpuJob{}
			c.msgHead = (c.msgHead + 1) & (len(c.msgs) - 1)
			c.msgLen--
		}
	} else {
		kept := c.ps[:0]
		for i := range c.ps {
			if c.ps[i].remaining <= instEpsilon {
				fin = append(fin, c.ps[i]) //ddbmlint:allow hotpath-alloc finish-scratch growth to the per-tick completion high-water mark
			} else {
				kept = append(kept, c.ps[i]) //ddbmlint:allow hotpath-alloc in-place keep: reslice of ps never exceeds its own capacity
			}
		}
		for i := len(kept); i < len(c.ps); i++ {
			c.ps[i] = cpuJob{}
		}
		c.ps = kept
	}
	c.finScratch = fin
	if c.tr != nil && c.msgLen+len(c.ps) == 0 {
		c.tr.CPUBusy(c.node, c.busyStart)
	}
	c.reschedule()
	for i := range fin {
		fin[i].finish()
		fin[i] = cpuJob{}
	}
}

// Crash discards every queued and in-service job without delivering any
// completion — the crash-stop failure semantics. Work in flight at the
// crash instant is simply lost: blocked submitters are NOT resumed (the
// fault layer kills or rescues their processes separately) and async
// callbacks never run. The busy-time accounting keeps everything accrued
// up to the crash instant; a crashed CPU is idle until work arrives after
// repair.
func (c *CPU) Crash() {
	c.advance()
	if c.next != nil {
		c.sim.Cancel(c.next)
		c.next = nil
	}
	if c.tr != nil && c.msgLen+len(c.ps) > 0 {
		c.tr.CPUBusy(c.node, c.busyStart)
	}
	for i := range c.ps {
		c.ps[i] = cpuJob{}
	}
	c.ps = c.ps[:0]
	for i := 0; i < c.msgLen; i++ {
		c.msgs[(c.msgHead+i)&(len(c.msgs)-1)] = cpuJob{}
	}
	c.msgHead, c.msgLen = 0, 0
	for i := range c.finScratch {
		c.finScratch[i] = cpuJob{}
	}
	c.finScratch = c.finScratch[:0]
}

// QueueLen returns the number of in-progress jobs (messages + PS).
func (c *CPU) QueueLen() int { return c.msgLen + len(c.ps) }

// BusyTime returns the busy milliseconds (messages plus PS work)
// accumulated since the start of the run, including credit for the
// currently elapsing interval. Unlike Utilization it is a pure read: it
// does NOT fold the in-progress interval into the accumulators, so the
// probe sampler can call it without perturbing float-summation order —
// the run stays bit-identical with sampling on. Not warmup-adjusted.
func (c *CPU) BusyTime() float64 {
	busy := c.busyPS + c.busyMsg
	if dt := c.sim.Now() - c.lastT; dt > 0 && c.msgLen+len(c.ps) > 0 {
		busy += dt
	}
	return busy
}

// MarkWarmup snapshots busy-time counters so Utilization measures only the
// post-warmup window.
func (c *CPU) MarkWarmup() {
	c.advance()
	c.markPS = c.busyPS
	c.markMsg = c.busyMsg
	c.markT = c.sim.Now()
}

// Utilization returns the fraction of time the CPU was busy (messages plus
// PS work) since the warmup mark.
func (c *CPU) Utilization() float64 {
	c.advance()
	elapsed := c.sim.Now() - c.markT
	if elapsed <= 0 {
		return 0
	}
	return ((c.busyPS - c.markPS) + (c.busyMsg - c.markMsg)) / elapsed
}

// MsgUtilization returns the fraction of time spent on message processing
// since the warmup mark.
func (c *CPU) MsgUtilization() float64 {
	c.advance()
	elapsed := c.sim.Now() - c.markT
	if elapsed <= 0 {
		return 0
	}
	return (c.busyMsg - c.markMsg) / elapsed
}
