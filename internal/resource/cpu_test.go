package resource

import (
	"math"
	"testing"
	"testing/quick"

	"ddbm/internal/sim"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCPUSingleJobServiceTime(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1) // 1 MIPS = 1000 inst/ms
	var done sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 8000) // 8K instructions -> 8 ms
		done = s.Now()
	})
	s.Run(100)
	if !almost(done, 8, 1e-9) {
		t.Errorf("8K inst at 1 MIPS finished at %v ms, want 8", done)
	}
}

func TestCPURateScaling(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 10) // 10 MIPS
	var done sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 8000)
		done = s.Now()
	})
	s.Run(100)
	if !almost(done, 0.8, 1e-9) {
		t.Errorf("8K inst at 10 MIPS finished at %v ms, want 0.8", done)
	}
}

func TestCPUProcessorSharingTwoJobs(t *testing.T) {
	// Two equal jobs sharing the CPU each take twice as long.
	s := sim.New(1)
	c := NewCPU(s, 1)
	var d1, d2 sim.Time
	s.Spawn("a", func(p *sim.Proc) { c.Use(p, 5000); d1 = s.Now() })
	s.Spawn("b", func(p *sim.Proc) { c.Use(p, 5000); d2 = s.Now() })
	s.Run(100)
	if !almost(d1, 10, 1e-9) || !almost(d2, 10, 1e-9) {
		t.Errorf("PS completions at %v and %v, want both 10", d1, d2)
	}
}

func TestCPUProcessorSharingUnequalJobs(t *testing.T) {
	// Jobs of 2K and 6K: share until the short one finishes at t=4 (each
	// got 2K done), then the long one runs alone: 4K left -> t=8.
	s := sim.New(1)
	c := NewCPU(s, 1)
	var dShort, dLong sim.Time
	s.Spawn("short", func(p *sim.Proc) { c.Use(p, 2000); dShort = s.Now() })
	s.Spawn("long", func(p *sim.Proc) { c.Use(p, 6000); dLong = s.Now() })
	s.Run(100)
	if !almost(dShort, 4, 1e-9) {
		t.Errorf("short job at %v, want 4", dShort)
	}
	if !almost(dLong, 8, 1e-9) {
		t.Errorf("long job at %v, want 8", dLong)
	}
}

func TestCPULateArrivalShares(t *testing.T) {
	// Job A (8K) starts at 0; job B (2K) arrives at 2. A runs alone for
	// 2 ms (6K left), then shares: B finishes at 2+4=6, A has 4K left at 6,
	// finishes at 10.
	s := sim.New(1)
	c := NewCPU(s, 1)
	var dA, dB sim.Time
	s.Spawn("a", func(p *sim.Proc) { c.Use(p, 8000); dA = s.Now() })
	s.Spawn("b", func(p *sim.Proc) {
		p.Delay(2)
		c.Use(p, 2000)
		dB = s.Now()
	})
	s.Run(100)
	if !almost(dB, 6, 1e-9) {
		t.Errorf("B at %v, want 6", dB)
	}
	if !almost(dA, 10, 1e-9) {
		t.Errorf("A at %v, want 10", dA)
	}
}

func TestCPUMessagePreemptsPS(t *testing.T) {
	// A PS job is running; a message arrives at t=2 and must preempt it
	// entirely: message (1K) done at t=3, PS job (8K) done at 9.
	s := sim.New(1)
	c := NewCPU(s, 1)
	var dJob, dMsg sim.Time
	s.Spawn("job", func(p *sim.Proc) { c.Use(p, 8000); dJob = s.Now() })
	s.Schedule(2, func() {
		c.UseMsg(1000, func() { dMsg = s.Now() })
	})
	s.Run(100)
	if !almost(dMsg, 3, 1e-9) {
		t.Errorf("message done at %v, want 3", dMsg)
	}
	if !almost(dJob, 9, 1e-9) {
		t.Errorf("job done at %v, want 9 (preempted for 1 ms)", dJob)
	}
}

func TestCPUMessagesFIFO(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.UseMsg(1000, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("message order %v, not FIFO", order)
		}
	}
}

func TestCPUMessagesServedSerially(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	var times []sim.Time
	for i := 0; i < 3; i++ {
		c.UseMsg(2000, func() { times = append(times, s.Now()) })
	}
	s.Run(100)
	want := []sim.Time{2, 4, 6}
	for i := range want {
		if !almost(times[i], want[i], 1e-9) {
			t.Fatalf("serial message completions %v, want %v", times, want)
		}
	}
}

func TestCPUZeroCostImmediate(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	ranPS, ranMsg := false, false
	c.UseAsync(0, func() { ranPS = true })
	c.UseMsg(0, func() { ranMsg = true })
	if !ranPS || !ranMsg {
		t.Error("zero-cost requests should complete synchronously")
	}
	s.Spawn("p", func(p *sim.Proc) {
		before := s.Now()
		c.Use(p, 0)
		if s.Now() != before {
			t.Error("zero-cost blocking request advanced time")
		}
	})
	s.Run(10)
}

func TestCPUUtilization(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	s.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 5000) // busy [0,5]
	})
	s.Run(10) // idle [5,10]
	if !almost(c.Utilization(), 0.5, 1e-9) {
		t.Errorf("utilization %v, want 0.5", c.Utilization())
	}
}

func TestCPUUtilizationAfterMark(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	s.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 4000) // [0,4] busy, should be excluded
		p.Delay(6)     // marks at 5 below; idle [4,10]
		c.Use(p, 5000) // busy [10,15]
	})
	s.Schedule(5, func() { c.MarkWarmup() })
	s.Run(20) // window [5,20]: busy 5 of 15
	if !almost(c.Utilization(), 5.0/15.0, 1e-9) {
		t.Errorf("post-mark utilization %v, want %v", c.Utilization(), 5.0/15.0)
	}
}

func TestCPUMsgUtilizationSeparate(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	c.UseMsg(2000, nil) // busy [0,2] on messages
	s.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 3000) // stalls during message; PS [2,5]
	})
	s.Run(10)
	if !almost(c.MsgUtilization(), 0.2, 1e-9) {
		t.Errorf("msg utilization %v, want 0.2", c.MsgUtilization())
	}
	if !almost(c.Utilization(), 0.5, 1e-9) {
		t.Errorf("total utilization %v, want 0.5", c.Utilization())
	}
}

func TestCPUQueueLen(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s, 1)
	c.UseAsync(1000, nil)
	c.UseMsg(1000, nil)
	if c.QueueLen() != 2 {
		t.Errorf("queue len %d, want 2", c.QueueLen())
	}
	s.Run(100)
	if c.QueueLen() != 0 {
		t.Errorf("queue len after drain %d, want 0", c.QueueLen())
	}
}

func TestCPUInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero MIPS did not panic")
		}
	}()
	NewCPU(sim.New(1), 0)
}

func TestCPUWorkConservationProperty(t *testing.T) {
	// Property: for any batch of jobs submitted at t=0, the last completion
	// is exactly (total instructions)/rate, and each job's completion never
	// precedes (its own instructions)/rate.
	f := func(sizes []uint16, msgMask uint8) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		s := sim.New(3)
		c := NewCPU(s, 2) // 2000 inst/ms
		var total float64
		last := sim.Time(0)
		ok := true
		for i, sz := range sizes {
			inst := float64(sz%5000) + 1
			total += inst
			own := inst / 2000
			if msgMask&(1<<uint(i%8)) != 0 {
				c.UseMsg(inst, func() {
					if s.Now() < own-1e-9 {
						ok = false
					}
					if s.Now() > last {
						last = s.Now()
					}
				})
			} else {
				c.UseAsync(inst, func() {
					if s.Now() < own-1e-9 {
						ok = false
					}
					if s.Now() > last {
						last = s.Now()
					}
				})
			}
		}
		s.Run(1e9)
		return ok && almost(last, total/2000, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
