package resource

import (
	"testing"

	"ddbm/internal/sim"
)

func TestDiskReadServiceTimeBounds(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 1, 10, 30)
	var times []sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			start := s.Now()
			d.Read(p)
			dur := s.Now() - start
			times = append(times, dur)
		}
	})
	s.Run(1e6)
	if len(times) != 50 {
		t.Fatalf("completed %d reads, want 50", len(times))
	}
	for _, dur := range times {
		if dur < 10 || dur > 30 {
			t.Fatalf("disk access took %v ms, outside [10,30]", dur)
		}
	}
}

func TestDiskFixedServiceTime(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	var done sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		d.Read(p)
		done = s.Now()
	})
	s.Run(100)
	if done != 20 {
		t.Errorf("degenerate-uniform access finished at %v, want 20", done)
	}
}

func TestDiskQueueingFIFO(t *testing.T) {
	// Three reads on one disk with fixed 20 ms service: completions at 20,
	// 40, 60 in submission order.
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	var order []int
	var times []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		d.ReadAsync(func() {
			order = append(order, i)
			times = append(times, s.Now())
		})
	}
	s.Run(1000)
	for i := range order {
		if order[i] != i {
			t.Fatalf("reads completed out of order: %v", order)
		}
		want := sim.Time(20 * (i + 1))
		if times[i] != want {
			t.Fatalf("completion %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestDiskWritePriority(t *testing.T) {
	// One read in service; one read and one write queued. The write must be
	// served before the queued read.
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	var order []string
	d.ReadAsync(func() { order = append(order, "r1") })
	d.ReadAsync(func() { order = append(order, "r2") })
	d.WriteAsync(func() { order = append(order, "w") })
	s.Run(1000)
	if len(order) != 3 || order[0] != "r1" || order[1] != "w" || order[2] != "r2" {
		t.Fatalf("service order %v, want [r1 w r2]", order)
	}
}

func TestDiskWritePriorityNonPreemptive(t *testing.T) {
	// A write arriving mid-read waits for the read to finish.
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	var readDone, writeDone sim.Time
	d.ReadAsync(func() { readDone = s.Now() })
	s.Schedule(5, func() {
		d.WriteAsync(func() { writeDone = s.Now() })
	})
	s.Run(1000)
	if readDone != 20 {
		t.Errorf("read done at %v, want 20 (no preemption)", readDone)
	}
	if writeDone != 40 {
		t.Errorf("write done at %v, want 40", writeDone)
	}
}

func TestDiskMultipleSpindlesParallel(t *testing.T) {
	// With enough disks, many requests proceed in parallel: 8 reads on 8
	// disks at fixed 20 ms should all finish by ~20-40 ms even if random
	// assignment doubles some up; with one disk they'd take 160.
	s := sim.New(1)
	d := NewDiskArray(s, 8, 20, 20)
	var last sim.Time
	n := 0
	for i := 0; i < 8; i++ {
		d.ReadAsync(func() {
			n++
			if s.Now() > last {
				last = s.Now()
			}
		})
	}
	s.Run(1e6)
	if n != 8 {
		t.Fatalf("completed %d reads, want 8", n)
	}
	if last >= 160 {
		t.Errorf("8 disks behaved like 1: last completion at %v", last)
	}
}

func TestDiskCounts(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 2, 10, 30)
	for i := 0; i < 5; i++ {
		d.ReadAsync(nil)
	}
	for i := 0; i < 3; i++ {
		d.WriteAsync(nil)
	}
	s.Run(1e6)
	r, w := d.Counts()
	if r != 5 || w != 3 {
		t.Errorf("counts %d/%d, want 5/3", r, w)
	}
}

func TestDiskUtilization(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	d.ReadAsync(nil) // busy [0,20]
	s.Run(40)        // idle [20,40]
	if u := d.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization %v, want 0.5", u)
	}
}

func TestDiskUtilizationAveragesSpindles(t *testing.T) {
	// One busy disk of two: utilization = busy/2.
	s := sim.New(1)
	d := NewDiskArray(s, 2, 20, 20)
	d.ReadAsync(nil)
	s.Run(21) // busy time is credited at completion (t=20)
	u := d.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("2-spindle utilization %v, want ~0.5", u)
	}
}

func TestDiskMarkWarmup(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	d.ReadAsync(nil) // [0,20] busy
	s.Schedule(30, func() {
		d.MarkWarmup()
		d.ReadAsync(nil) // [30,50] busy
	})
	s.Run(70) // window [30,70]: 20/40 busy
	if u := d.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("post-mark utilization %v, want 0.5", u)
	}
}

func TestDiskQueueLen(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 1, 20, 20)
	d.ReadAsync(nil)
	d.ReadAsync(nil)
	d.WriteAsync(nil)
	if d.QueueLen() != 2 {
		t.Errorf("queue len %d, want 2 (one in service)", d.QueueLen())
	}
	s.Run(1000)
	if d.QueueLen() != 0 {
		t.Errorf("queue len after drain %d", d.QueueLen())
	}
}

func TestDiskValidation(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { NewDiskArray(s, 0, 10, 30) },
		func() { NewDiskArray(s, 1, 30, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid disk array did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDiskRandomAssignmentUsesAllSpindles(t *testing.T) {
	s := sim.New(1)
	d := NewDiskArray(s, 4, 10, 30)
	var p *sim.Proc
	p = s.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			d.Read(p)
		}
	})
	_ = p
	s.Run(1e6)
	for i, dk := range d.disks {
		if dk.nReads == 0 {
			t.Errorf("spindle %d never used over 200 requests", i)
		}
	}
}
