package resource

import (
	"ddbm/internal/obs"
	"ddbm/internal/sim"
)

type diskReq struct {
	write bool
	done  func()
}

// disk is a single spindle with one FIFO queue per class; writes are served
// before reads (non-preemptively), per paper §3.4.
type disk struct {
	idx      int // spindle index within the array (trace lane)
	busy     bool
	reads    []diskReq
	writes   []diskReq
	busyTime float64
	nReads   int64
	nWrites  int64
}

// DiskArray models the NumDisks disks of a node. Requests pick a disk
// uniformly at random (the paper assumes files are evenly balanced across a
// node's disks); access times are uniform on [MinTime, MaxTime].
type DiskArray struct {
	sim     *sim.Sim
	disks   []*disk
	minTime float64
	maxTime float64

	markBusy float64
	markT    sim.Time

	// tr, when non-nil, records one obs span per disk access; node tags
	// the spans and the spindle index becomes the lane.
	tr   *obs.Tracer
	node int
}

// NewDiskArray creates n disks with access times uniform on [minTime,
// maxTime] milliseconds.
func NewDiskArray(s *sim.Sim, n int, minTime, maxTime float64) *DiskArray {
	if n < 1 {
		panic("resource: need at least one disk")
	}
	if maxTime < minTime {
		panic("resource: disk max time below min time")
	}
	d := &DiskArray{sim: s, minTime: minTime, maxTime: maxTime}
	for i := 0; i < n; i++ {
		d.disks = append(d.disks, &disk{idx: i})
	}
	return d
}

// NumDisks returns the number of spindles.
func (d *DiskArray) NumDisks() int { return len(d.disks) }

// SetTrace attaches an observability tracer recording this array's disk
// accesses, tagged with the given node id. Must be configured before the
// simulation runs; tracing is observation only.
func (d *DiskArray) SetTrace(t *obs.Tracer, node int) {
	d.tr = t
	d.node = node
}

// Read performs a synchronous page read, blocking the calling process until
// the disk completes it.
func (d *DiskArray) Read(p *sim.Proc) {
	d.submit(diskReq{write: false, done: func() { p.Resume() }})
	p.Suspend()
}

// ReadAsync performs a page read and calls done on completion.
func (d *DiskArray) ReadAsync(done func()) {
	d.submit(diskReq{write: false, done: done})
}

// WriteAsync queues an asynchronous page write (post-commit write-back);
// writes take priority over reads at dequeue time.
func (d *DiskArray) WriteAsync(done func()) {
	d.submit(diskReq{write: true, done: done})
}

// Write performs a synchronous (forced) page write, blocking the calling
// process until the disk completes it — used for forcing log records.
func (d *DiskArray) Write(p *sim.Proc) {
	d.submit(diskReq{write: true, done: func() { p.Resume() }})
	p.Suspend()
}

func (d *DiskArray) submit(req diskReq) {
	dk := d.disks[d.sim.Rand().Intn(len(d.disks))]
	if req.write {
		dk.writes = append(dk.writes, req)
	} else {
		dk.reads = append(dk.reads, req)
	}
	if !dk.busy {
		d.serve(dk)
	}
}

func (d *DiskArray) serve(dk *disk) {
	var req diskReq
	switch {
	case len(dk.writes) > 0:
		req = dk.writes[0]
		dk.writes[0] = diskReq{}
		dk.writes = dk.writes[1:]
		dk.nWrites++
	case len(dk.reads) > 0:
		req = dk.reads[0]
		dk.reads[0] = diskReq{}
		dk.reads = dk.reads[1:]
		dk.nReads++
	default:
		dk.busy = false
		return
	}
	dk.busy = true
	dur := sim.Uniform(d.sim.Rand(), d.minTime, d.maxTime)
	d.sim.After(dur, func() {
		if d.tr != nil {
			// The service period began exactly dur before this completion.
			d.tr.DiskAccess(d.node, dk.idx, req.write, d.sim.Now()-dur)
		}
		dk.busyTime += dur
		if req.done != nil {
			req.done()
		}
		d.serve(dk)
	})
}

// QueueLen returns the total number of queued (not in-service) requests.
func (d *DiskArray) QueueLen() int {
	n := 0
	for _, dk := range d.disks {
		n += len(dk.reads) + len(dk.writes)
	}
	return n
}

// Counts returns total completed reads and writes.
func (d *DiskArray) Counts() (reads, writes int64) {
	for _, dk := range d.disks {
		reads += dk.nReads
		writes += dk.nWrites
	}
	return
}

// MarkWarmup snapshots busy time so Utilization covers only the measurement
// window. Busy time for an in-flight access is credited at its completion,
// which is a negligible edge effect for our run lengths.
func (d *DiskArray) MarkWarmup() {
	d.markBusy = d.totalBusy()
	d.markT = d.sim.Now()
}

// BusyTime returns the busy milliseconds summed across the array's disks
// since the start of the run. A pure read for the probe sampler: busy time
// for an in-flight access is credited at its completion, so one sampling
// window can read slightly above 1 when a long access completes in it.
// Not warmup-adjusted.
func (d *DiskArray) BusyTime() float64 { return d.totalBusy() }

func (d *DiskArray) totalBusy() float64 {
	var b float64
	for _, dk := range d.disks {
		b += dk.busyTime
	}
	return b
}

// Utilization returns the mean busy fraction across the node's disks since
// the warmup mark.
func (d *DiskArray) Utilization() float64 {
	elapsed := d.sim.Now() - d.markT
	if elapsed <= 0 {
		return 0
	}
	return (d.totalBusy() - d.markBusy) / (elapsed * float64(len(d.disks)))
}
