package resource

import (
	"ddbm/internal/obs"
	"ddbm/internal/sim"
)

// diskReq is one queued disk access, held by value in the per-disk rings.
// Completion either resumes proc (blocking Read/Write — no closure) or
// invokes done (async path — callers pass pre-bound functions).
type diskReq struct {
	write bool
	done  func()
	proc  *sim.Proc
	// svc, when non-nil, receives the drawn service time at completion —
	// the breakdown accounting's service/queue split seam (ReadMeasured).
	svc *float64
}

// reqQueue is a power-of-two ring of disk requests; a busy disk in steady
// state allocates nothing per access, unlike the previous slide-forward
// slice that forced a fresh allocation every few operations.
type reqQueue struct {
	buf   []diskReq
	head  int
	count int
}

//ddbmlint:hotpath disk queue push on the transaction path
func (q *reqQueue) push(r diskReq) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = r
	q.count++
}

//ddbmlint:hotpath disk queue pop on the transaction path
func (q *reqQueue) pop() diskReq {
	r := q.buf[q.head]
	q.buf[q.head] = diskReq{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	return r
}

// reserve widens the ring to at least n slots (rounded up to a power of
// two), unwrapping any live window to the front of the new buffer.
func (q *reqQueue) reserve(n int) {
	if len(q.buf) >= n {
		return
	}
	newCap := 8
	for newCap < n {
		newCap *= 2
	}
	buf := make([]diskReq, newCap)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// grow doubles the ring (minimum 8 slots), unwrapping the live window to
// the front of the new buffer.
func (q *reqQueue) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]diskReq, newCap) //ddbmlint:allow hotpath-alloc request ring growth to its high-water capacity
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// disk is a single spindle with one FIFO queue per class; writes are served
// before reads (non-preemptively), per paper §3.4. The in-service request
// lives in cur, and the pre-bound completeFn replaces the per-access
// completion closure the serve loop used to allocate.
type disk struct {
	arr        *DiskArray
	idx        int // spindle index within the array (trace lane)
	busy       bool
	reads      reqQueue
	writes     reqQueue
	cur        diskReq // request currently in service
	curDur     float64 // its service time, for trace/busy accounting
	lost       bool    // the in-service request was discarded by a crash
	completeFn func()  // dk.complete, bound once at construction
	busyTime   float64
	nReads     int64
	nWrites    int64
}

// DiskArray models the NumDisks disks of a node. Requests pick a disk
// uniformly at random (the paper assumes files are evenly balanced across a
// node's disks); access times are uniform on [MinTime, MaxTime].
type DiskArray struct {
	sim     *sim.Sim
	disks   []*disk
	minTime float64
	maxTime float64

	markBusy float64
	markT    sim.Time

	// tr, when non-nil, records one obs span per disk access; node tags
	// the spans and the spindle index becomes the lane.
	tr   *obs.Tracer
	node int
}

// NewDiskArray creates n disks with access times uniform on [minTime,
// maxTime] milliseconds.
func NewDiskArray(s *sim.Sim, n int, minTime, maxTime float64) *DiskArray {
	if n < 1 {
		panic("resource: need at least one disk")
	}
	if maxTime < minTime {
		panic("resource: disk max time below min time")
	}
	d := &DiskArray{sim: s, minTime: minTime, maxTime: maxTime}
	for i := 0; i < n; i++ {
		dk := &disk{arr: d, idx: i}
		dk.completeFn = dk.complete
		d.disks = append(d.disks, dk)
	}
	return d
}

// NumDisks returns the number of spindles.
func (d *DiskArray) NumDisks() int { return len(d.disks) }

// Reserve pre-sizes every spindle's read and write rings for up to queued
// outstanding requests each. The rings are self-amortising, but their
// growth is driven by backlog records (the deepest queue seen so far)
// that arrive too rarely for a warmup to retire deterministically —
// holders with a pinned allocation budget pre-size from a generous bound
// instead. Reserve is golden-trace safe: it draws no randomness and
// schedules nothing.
func (d *DiskArray) Reserve(queued int) {
	for _, dk := range d.disks {
		dk.reads.reserve(queued)
		dk.writes.reserve(queued)
	}
}

// SetTrace attaches an observability tracer recording this array's disk
// accesses, tagged with the given node id. Must be configured before the
// simulation runs; tracing is observation only.
func (d *DiskArray) SetTrace(t *obs.Tracer, node int) {
	d.tr = t
	d.node = node
}

// Read performs a synchronous page read, blocking the calling process until
// the disk completes it.
//
//ddbmlint:hotpath cohort page reads pinned by TestTxnPathAllocFree
func (d *DiskArray) Read(p *sim.Proc) {
	d.submit(diskReq{write: false, proc: p})
	p.Suspend()
}

// ReadMeasured is Read, additionally storing the access's drawn service
// time into *svc at completion (the elapsed wall-clock minus *svc is the
// queueing delay). Behaviour is otherwise identical to Read — same
// randomness, same scheduling — so runs are bit-identical either way.
//
//ddbmlint:hotpath cohort page reads pinned by TestTxnPathAllocFree
func (d *DiskArray) ReadMeasured(p *sim.Proc, svc *float64) {
	d.submit(diskReq{write: false, proc: p, svc: svc})
	p.Suspend()
}

// ReadAsync performs a page read and calls done on completion.
//
//ddbmlint:hotpath async page reads on the transaction path
func (d *DiskArray) ReadAsync(done func()) {
	d.submit(diskReq{write: false, done: done})
}

// WriteAsync queues an asynchronous page write (post-commit write-back);
// writes take priority over reads at dequeue time.
//
//ddbmlint:hotpath post-commit write-back pinned by TestTxnPathAllocFree
func (d *DiskArray) WriteAsync(done func()) {
	d.submit(diskReq{write: true, done: done})
}

// Write performs a synchronous (forced) page write, blocking the calling
// process until the disk completes it — used for forcing log records.
//
//ddbmlint:hotpath log forces on the commit path
func (d *DiskArray) Write(p *sim.Proc) {
	d.submit(diskReq{write: true, proc: p})
	p.Suspend()
}

//ddbmlint:hotpath shared submission path
func (d *DiskArray) submit(req diskReq) {
	dk := d.disks[d.sim.Rand().Intn(len(d.disks))]
	if req.write {
		dk.writes.push(req)
	} else {
		dk.reads.push(req)
	}
	if !dk.busy {
		d.serve(dk)
	}
}

//ddbmlint:hotpath disk service loop pinned by TestTxnPathAllocFree
func (d *DiskArray) serve(dk *disk) {
	var req diskReq
	switch {
	case dk.writes.count > 0:
		req = dk.writes.pop()
		dk.nWrites++
	case dk.reads.count > 0:
		req = dk.reads.pop()
		dk.nReads++
	default:
		dk.busy = false
		return
	}
	dk.busy = true
	dur := sim.Uniform(d.sim.Rand(), d.minTime, d.maxTime)
	dk.cur, dk.curDur = req, dur
	d.sim.After(dur, dk.completeFn)
}

// complete finishes the in-service request: trace, busy accounting, owner
// notification, then serve the next queued request — in exactly the order
// the old per-access closure used.
//
//ddbmlint:hotpath disk completion dispatch pinned by TestTxnPathAllocFree
func (dk *disk) complete() {
	d := dk.arr
	if dk.lost {
		// The request in service at a crash was discarded; its completion
		// event could not be canceled (serve does not retain it) and fires
		// here as a no-op before the spindle returns to service.
		dk.lost = false
		d.serve(dk)
		return
	}
	req, dur := dk.cur, dk.curDur
	dk.cur = diskReq{}
	if d.tr != nil {
		// The service period began exactly dur before this completion.
		d.tr.DiskAccess(d.node, dk.idx, req.write, d.sim.Now()-dur)
	}
	dk.busyTime += dur
	if req.svc != nil {
		*req.svc = dur
	}
	if req.proc != nil {
		req.proc.Resume()
	} else if req.done != nil {
		req.done() //ddbmlint:allow hotpath-alloc completion callbacks are pre-bound by their owners
	}
	d.serve(dk)
}

// Crash discards every queued and in-service request without delivering
// any completion — the crash-stop failure semantics. Blocked submitters
// are NOT resumed (the fault layer handles their processes) and async
// callbacks never run. The in-service request's completion event cannot
// be canceled (serve does not retain it), so the spindle marks it lost
// and absorbs the phantom completion when it fires; until then the
// spindle reports busy, which only matters if the node repairs within one
// access time.
func (d *DiskArray) Crash() {
	for _, dk := range d.disks {
		for dk.reads.count > 0 {
			dk.reads.pop()
		}
		for dk.writes.count > 0 {
			dk.writes.pop()
		}
		if dk.busy && !dk.lost {
			dk.cur = diskReq{}
			dk.curDur = 0
			dk.lost = true
		}
	}
}

// QueueLen returns the total number of queued (not in-service) requests.
func (d *DiskArray) QueueLen() int {
	n := 0
	for _, dk := range d.disks {
		n += dk.reads.count + dk.writes.count
	}
	return n
}

// Counts returns total completed reads and writes.
func (d *DiskArray) Counts() (reads, writes int64) {
	for _, dk := range d.disks {
		reads += dk.nReads
		writes += dk.nWrites
	}
	return
}

// MarkWarmup snapshots busy time so Utilization covers only the measurement
// window. Busy time for an in-flight access is credited at its completion,
// which is a negligible edge effect for our run lengths.
func (d *DiskArray) MarkWarmup() {
	d.markBusy = d.totalBusy()
	d.markT = d.sim.Now()
}

// BusyTime returns the busy milliseconds summed across the array's disks
// since the start of the run. A pure read for the probe sampler: busy time
// for an in-flight access is credited at its completion, so one sampling
// window can read slightly above 1 when a long access completes in it.
// Not warmup-adjusted.
func (d *DiskArray) BusyTime() float64 { return d.totalBusy() }

func (d *DiskArray) totalBusy() float64 {
	var b float64
	for _, dk := range d.disks {
		b += dk.busyTime
	}
	return b
}

// Utilization returns the mean busy fraction across the node's disks since
// the warmup mark.
func (d *DiskArray) Utilization() float64 {
	elapsed := d.sim.Now() - d.markT
	if elapsed <= 0 {
		return 0
	}
	return (d.totalBusy() - d.markBusy) / (elapsed * float64(len(d.disks)))
}
