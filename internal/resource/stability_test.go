package resource

import (
	"testing"

	"ddbm/internal/sim"
)

// TestCPUNumericalStabilityLongRun drives one CPU through tens of
// thousands of overlapping PS jobs and messages and checks that float
// drift never stalls completions and that total busy time stays exactly
// consistent with the work submitted.
func TestCPUNumericalStabilityLongRun(t *testing.T) {
	s := sim.New(42)
	c := NewCPU(s, 1) // 1000 inst/ms
	r := s.Rand()
	var submitted float64
	completed := 0
	const jobs = 20000
	var submit func(i int)
	submit = func(i int) {
		if i >= jobs {
			return
		}
		inst := sim.Uniform(r, 1, 2000)
		submitted += inst
		done := func() {
			completed++
		}
		if i%7 == 0 {
			c.UseMsg(inst, done)
		} else {
			c.UseAsync(inst, done)
		}
		// Staggered arrivals create constantly changing PS shares.
		s.After(sim.Uniform(r, 0, 1), func() { submit(i + 1) })
	}
	submit(0)
	s.Run(1e9)
	if completed != jobs {
		t.Fatalf("completed %d of %d jobs (stalled by drift?)", completed, jobs)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("%d jobs stuck in the CPU", c.QueueLen())
	}
}

// TestDiskStabilityLongRun pushes many interleaved reads/writes through a
// small array and verifies the counts balance.
func TestDiskStabilityLongRun(t *testing.T) {
	s := sim.New(7)
	d := NewDiskArray(s, 3, 10, 30)
	const n = 5000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(float64(i), func() {
			if i%4 == 0 {
				d.WriteAsync(func() { done++ })
			} else {
				d.ReadAsync(func() { done++ })
			}
		})
	}
	s.Run(1e9)
	if done != n {
		t.Fatalf("completed %d of %d disk requests", done, n)
	}
	r, w := d.Counts()
	if r+w != n {
		t.Fatalf("counts %d+%d != %d", r, w, n)
	}
	if u := d.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}
