package fault

import (
	"reflect"
	"testing"

	"ddbm/internal/sim"
)

// recorder is a Target that logs callback instants and rejoins a node the
// moment it is repaired (recovery cost zero), so the injector's scheduling
// rules are visible in isolation.
type recorder struct {
	inj        *Injector
	crashes    []sim.Time
	recoveries []sim.Time
	hostCrash  []sim.Time
	hostRec    []sim.Time
	nodes      []int
}

func (r *recorder) CrashNode(node int) {
	r.crashes = append(r.crashes, r.inj.sim.Now())
	r.nodes = append(r.nodes, node)
}

func (r *recorder) RecoverNode(node int) {
	r.recoveries = append(r.recoveries, r.inj.sim.Now())
	r.inj.NodeUp(node)
}

func (r *recorder) CrashHost()   { r.hostCrash = append(r.hostCrash, r.inj.sim.Now()) }
func (r *recorder) RecoverHost() { r.hostRec = append(r.hostRec, r.inj.sim.Now()) }

// runSchedule runs one injector over a fresh simulation and returns its
// recorder.
func runSchedule(seed int64, cfg Config, nodes int, horizon sim.Time) *recorder {
	s := sim.New(seed)
	inj := New(s, cfg, nodes)
	rec := &recorder{inj: inj}
	inj.SetTarget(rec)
	inj.Start()
	s.Run(horizon)
	return rec
}

// TestScheduleDeterminism pins the subsystem's core contract: the fault
// schedule is a pure function of (seed, config). Same seed, same crashes
// at the same instants; a different seed moves them.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Enabled: true, NodeMTTFMs: 5_000, MTTRMs: 500, DetectMs: 100}
	a := runSchedule(3, cfg, 4, 100_000)
	b := runSchedule(3, cfg, 4, 100_000)
	if len(a.crashes) == 0 {
		t.Fatal("no crashes fired inside the horizon")
	}
	if !reflect.DeepEqual(a.crashes, b.crashes) || !reflect.DeepEqual(a.nodes, b.nodes) {
		t.Error("same seed produced different crash schedules")
	}
	c := runSchedule(4, cfg, 4, 100_000)
	if reflect.DeepEqual(a.crashes, c.crashes) {
		t.Error("different seeds produced identical exponential schedules")
	}
}

// TestFixedInterFailureTiming pins the deterministic schedule exactly:
// first crash at MTTF, repair at MTTF+MTTR, and — because NodeUp restarts
// the clock only at rejoin — the second crash at 2*MTTF+MTTR.
func TestFixedInterFailureTiming(t *testing.T) {
	cfg := Config{Enabled: true, NodeMTTFMs: 1_000, FixedInterFailure: true, MTTRMs: 300}
	rec := runSchedule(1, cfg, 1, 2_500)
	wantCrashes := []sim.Time{1_000, 2_300}
	wantRecoveries := []sim.Time{1_300}
	if !reflect.DeepEqual(rec.crashes, wantCrashes) {
		t.Errorf("crash instants %v, want %v", rec.crashes, wantCrashes)
	}
	if !reflect.DeepEqual(rec.recoveries, wantRecoveries) {
		t.Errorf("repair instants %v, want %v", rec.recoveries, wantRecoveries)
	}
	if rec.inj.Crashes() != 2 {
		t.Errorf("Crashes() = %d, want 2", rec.inj.Crashes())
	}
}

// TestDownWindowAndHostExemption checks Down over the outage window and
// the host-id exemption: any id past the processing nodes is never down.
func TestDownWindowAndHostExemption(t *testing.T) {
	cfg := Config{Enabled: true, NodeMTTFMs: 1_000, FixedInterFailure: true, MTTRMs: 300}
	s := sim.New(1)
	inj := New(s, cfg, 2)
	rec := &recorder{inj: inj}
	inj.SetTarget(rec)
	inj.Start()
	check := func(at sim.Time, want bool) {
		s.After(at-s.Now(), func() {
			if inj.Down(0) != want {
				t.Errorf("Down(0) at t=%v is %v, want %v", at, !want, want)
			}
			if inj.Down(2) || inj.Down(99) {
				t.Errorf("host id reported down at t=%v", at)
			}
		})
	}
	check(500, false)
	check(1_100, true)
	check(1_400, false)
	s.Run(2_000)
}

// TestDownMsAccounting pins the availability arithmetic: a closed outage
// contributes exactly MTTR, an open one contributes the elapsed part.
func TestDownMsAccounting(t *testing.T) {
	cfg := Config{Enabled: true, NodeMTTFMs: 1_000, FixedInterFailure: true, MTTRMs: 300}
	s := sim.New(1)
	inj := New(s, cfg, 1)
	rec := &recorder{inj: inj}
	inj.SetTarget(rec)
	inj.Start()
	s.After(1_150, func() {
		if d := inj.DownMs(0, s.Now()); d != 150 {
			t.Errorf("mid-outage DownMs = %v, want 150", d)
		}
	})
	s.After(1_500, func() {
		if d := inj.DownMs(0, s.Now()); d != 300 {
			t.Errorf("post-repair DownMs = %v, want 300", d)
		}
	})
	s.Run(2_000)
}

// TestHostFailoverSchedule drives the host clock: crash, failover window,
// recovery, and a restarted clock for the next failure.
func TestHostFailoverSchedule(t *testing.T) {
	cfg := Config{Enabled: true, HostMTTFMs: 1_000, FixedInterFailure: true, HostMTTRMs: 200}
	s := sim.New(1)
	inj := New(s, cfg, 1)
	rec := &recorder{inj: inj}
	inj.SetTarget(rec)
	inj.Start()
	s.After(1_100, func() {
		if !inj.HostDown() {
			t.Error("host not down mid-failover")
		}
		if inj.Down(0) {
			t.Error("a host crash marked a processing node down")
		}
	})
	s.Run(2_500)
	if want := []sim.Time{1_000, 2_200}; !reflect.DeepEqual(rec.hostCrash, want) {
		t.Errorf("host crash instants %v, want %v", rec.hostCrash, want)
	}
	if want := []sim.Time{1_200, 2_400}; !reflect.DeepEqual(rec.hostRec, want) {
		t.Errorf("host recovery instants %v, want %v", rec.hostRec, want)
	}
	if inj.HostDown() {
		t.Error("host still down after the failover window")
	}
}

// TestZeroProbabilityDrawsNothing pins the stream-isolation detail the
// golden tests rely on: with zero loss/duplication probabilities the
// per-message coins consume nothing from the message substream, so a
// crash-only schedule leaves the stream untouched no matter how much
// traffic flows.
func TestZeroProbabilityDrawsNothing(t *testing.T) {
	s := sim.New(9)
	inj := New(s, Config{Enabled: true, NodeMTTFMs: 1_000, MTTRMs: 100}, 2)
	for i := 0; i < 1_000; i++ {
		if inj.LoseMsg() || inj.DupMsg() {
			t.Fatal("zero-probability coin came up true")
		}
	}
	// The untouched stream's next draw matches a fresh sibling's first.
	want := sim.New(9).Substream("fault-msg", 0).Float64()
	if got := inj.msgRng.Float64(); got != want {
		t.Errorf("message substream advanced by zero-probability coins: next draw %v, want %v", got, want)
	}
}

// TestMessageCoinsDeterministic: with positive probabilities the coin
// sequence is a pure function of the seed.
func TestMessageCoinsDeterministic(t *testing.T) {
	flip := func(seed int64) (seq []bool) {
		inj := New(sim.New(seed), Config{Enabled: true, DropProb: 0.3, DupProb: 0.2, RetransmitDelayMs: 10}, 1)
		for i := 0; i < 64; i++ {
			seq = append(seq, inj.LoseMsg(), inj.DupMsg())
		}
		return seq
	}
	if !reflect.DeepEqual(flip(5), flip(5)) {
		t.Error("same seed produced different coin sequences")
	}
	if reflect.DeepEqual(flip(5), flip(6)) {
		t.Error("different seeds produced identical coin sequences")
	}
	inj := New(sim.New(1), Config{Enabled: true, RetransmitDelayMs: 42}, 1)
	if inj.RetransmitDelayMs() != 42 {
		t.Error("RetransmitDelayMs does not echo the config")
	}
}
