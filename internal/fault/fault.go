// Package fault is the deterministic fault-injection subsystem: it turns a
// seed-derived, configuration-declared fault schedule into crash-stop node
// failures, coordinator (host) failures, and message loss/duplication,
// delivered to the machine through the narrow Target interface.
//
// Every random draw the injector makes — inter-failure times, per-message
// loss and duplication coins — comes from dedicated named substreams of
// the simulation seed (sim.Substream), never from the main workload
// stream. Arming the injector therefore does not perturb the workload: a
// run whose fault schedule fires nothing draws the exact same workload and
// think-time sequences as a run with no injector at all, and a given
// (seed, schedule) pair always produces the same failures at the same
// instants regardless of what the workload does.
package fault

import (
	"math/rand"

	"ddbm/internal/sim"
)

// Config declares the fault schedule (all times in simulated
// milliseconds). The zero value — Enabled false — means no injector is
// built at all and the machine keeps its fault-free fast paths.
type Config struct {
	// Enabled gates the whole subsystem; when false every other field is
	// ignored.
	Enabled bool

	// NodeMTTFMs is the mean time to failure of each processing node:
	// after a node has been up for an exponentially distributed (or, with
	// FixedInterFailure, exactly this) interval, it crash-stops. 0 means
	// processing nodes never fail.
	NodeMTTFMs float64
	// FixedInterFailure replaces the exponential inter-failure draw with
	// the constant NodeMTTFMs/HostMTTFMs interval — a periodic schedule
	// for experiments that want identical failure counts across variants.
	FixedInterFailure bool
	// MTTRMs is the fixed repair delay: a crashed node comes back exactly
	// this long after the crash, then replays its log and rejoins.
	MTTRMs float64
	// DetectMs is the coordinator-side failure-detection latency: this
	// long after a node crash, every live transaction touching the dead
	// node is aborted (the coordinator's timeout/termination protocol).
	DetectMs float64

	// HostMTTFMs and HostMTTRMs schedule coordinator (host) failures the
	// same way. A host crash is modeled as instantaneous failover: every
	// in-flight transaction aborts with the coordinator-crash cause and
	// new transactions hold until the host recovers, but the host node is
	// never marked down for messaging (the failover host answers cohort
	// inquiries). 0 means the host never fails.
	HostMTTFMs float64
	HostMTTRMs float64

	// DropProb and DupProb are per-cross-node-message loss and duplication
	// probabilities, drawn from the injector's message stream. A lost
	// message is retransmitted from scratch after RetransmitDelayMs; a
	// duplicated one adds a pure-load copy (see network.FaultModel).
	DropProb          float64
	DupProb           float64
	RetransmitDelayMs float64
}

// Target is the machine-side receiver of injected faults. CrashNode and
// CrashHost run at the crash instant (the injector has already marked the
// node down); RecoverNode runs at the repair instant (the node is already
// marked up again) and must call Injector.NodeUp once the node has
// finished replaying and rejoined, which is when the injector starts the
// clock on the node's next failure.
type Target interface {
	CrashNode(node int)
	RecoverNode(node int)
	CrashHost()
	RecoverHost()
}

// Injector drives the fault schedule. It implements network.FaultModel so
// the network consults it on every cross-node send and delivery.
type Injector struct {
	sim    *sim.Sim
	cfg    Config
	target Target

	down     []bool // per processing node
	hostDown bool

	nodeRngs []*rand.Rand // one inter-failure stream per node
	hostRng  *rand.Rand
	msgRng   *rand.Rand // loss/duplication coins

	crashes    int64
	downAt     []sim.Time // crash instant of a currently-down node
	downMs     []float64  // accumulated down time per node
	hostDownMs float64
	hostDownAt sim.Time
}

// New builds the injector over nodes processing nodes. Target callbacks
// are wired with SetTarget before Start.
func New(s *sim.Sim, cfg Config, nodes int) *Injector {
	inj := &Injector{
		sim:    s,
		cfg:    cfg,
		down:   make([]bool, nodes),
		downAt: make([]sim.Time, nodes),
		downMs: make([]float64, nodes),
	}
	for i := 0; i < nodes; i++ {
		inj.nodeRngs = append(inj.nodeRngs, s.Substream("fault-node", int64(i)))
	}
	inj.hostRng = s.Substream("fault-host", 0)
	inj.msgRng = s.Substream("fault-msg", 0)
	return inj
}

// SetTarget wires the machine-side fault receiver. Must be set before
// Start.
func (inj *Injector) SetTarget(t Target) { inj.target = t }

// Start schedules the first failure of every node (and the host) with a
// positive MTTF. Call once, before the simulation runs.
func (inj *Injector) Start() {
	if inj.cfg.NodeMTTFMs > 0 {
		for i := range inj.down {
			inj.scheduleNodeFailure(i)
		}
	}
	if inj.cfg.HostMTTFMs > 0 {
		inj.scheduleHostFailure()
	}
}

// interval draws one inter-failure time from the given stream.
func (inj *Injector) interval(r *rand.Rand, mean float64) float64 {
	if inj.cfg.FixedInterFailure {
		return mean
	}
	return sim.Exponential(r, mean)
}

func (inj *Injector) scheduleNodeFailure(i int) {
	d := inj.interval(inj.nodeRngs[i], inj.cfg.NodeMTTFMs)
	inj.sim.After(d, func() { inj.crashNode(i) })
}

func (inj *Injector) scheduleHostFailure() {
	d := inj.interval(inj.hostRng, inj.cfg.HostMTTFMs)
	inj.sim.After(d, func() { inj.crashHost() })
}

// crashNode marks the node down before telling the target, so every
// message the crash handling itself generates already sees the node as
// dead; repair is scheduled exactly MTTRMs later.
func (inj *Injector) crashNode(i int) {
	inj.down[i] = true
	inj.downAt[i] = inj.sim.Now()
	inj.crashes++
	inj.target.CrashNode(i)
	inj.sim.After(inj.cfg.MTTRMs, func() { inj.repairNode(i) })
}

// repairNode marks the node up again — it can receive messages from this
// instant — and hands control to the target's recovery process, which
// calls NodeUp when the node has replayed its log and rejoined.
func (inj *Injector) repairNode(i int) {
	inj.down[i] = false
	inj.downMs[i] += float64(inj.sim.Now() - inj.downAt[i])
	inj.target.RecoverNode(i)
}

// NodeUp restarts the failure clock of a recovered node: the next failure
// interval begins only once the node has fully rejoined, so MTTF measures
// time-to-failure of a working node.
func (inj *Injector) NodeUp(i int) {
	if inj.cfg.NodeMTTFMs > 0 {
		inj.scheduleNodeFailure(i)
	}
}

func (inj *Injector) crashHost() {
	inj.hostDown = true
	inj.hostDownAt = inj.sim.Now()
	inj.crashes++
	inj.target.CrashHost()
	inj.sim.After(inj.cfg.HostMTTRMs, func() {
		inj.hostDown = false
		inj.hostDownMs += float64(inj.sim.Now() - inj.hostDownAt)
		inj.target.RecoverHost()
		inj.scheduleHostFailure()
	})
}

// Down reports whether a node is crashed. The host (any id past the
// processing nodes) is never down for messaging — host failures are
// modeled as failover, not as a dead endpoint.
func (inj *Injector) Down(node int) bool {
	return node < len(inj.down) && inj.down[node]
}

// HostDown reports whether the coordinator is mid-failover: new
// transactions hold until it clears.
func (inj *Injector) HostDown() bool { return inj.hostDown }

// LoseMsg and DupMsg flip the per-message coins (network.FaultModel). A
// zero probability draws nothing, so enabling faults without message
// errors consumes no stream.
func (inj *Injector) LoseMsg() bool {
	return inj.cfg.DropProb > 0 && inj.msgRng.Float64() < inj.cfg.DropProb
}

func (inj *Injector) DupMsg() bool {
	return inj.cfg.DupProb > 0 && inj.msgRng.Float64() < inj.cfg.DupProb
}

// RetransmitDelayMs is the sender's abstracted timeout-and-retransmit
// delay for a lost message (network.FaultModel).
func (inj *Injector) RetransmitDelayMs() float64 { return inj.cfg.RetransmitDelayMs }

// Crashes counts node and host crashes so far.
func (inj *Injector) Crashes() int64 { return inj.crashes }

// DownMs returns the total milliseconds node i has spent down, including
// the current outage if one is in progress at now.
func (inj *Injector) DownMs(i int, now sim.Time) float64 {
	d := inj.downMs[i]
	if inj.down[i] {
		d += float64(now - inj.downAt[i])
	}
	return d
}
