// Package network implements the network manager of paper §3.5: a switch
// with negligible wire time whose only cost is InstPerMsg CPU instructions
// of message-protocol processing on each end, served at the CPUs'
// high-priority FIFO message class.
package network

import (
	"ddbm/internal/obs"
	"ddbm/internal/resource"
	"ddbm/internal/sim"
)

// Handler receives a delivered message. Receivers are long-lived,
// pre-bound objects (free-listed attempt/cohort state in internal/core and
// internal/commit); tag selects among a receiver's message kinds, so one
// object can be the target of several message types without any per-send
// allocation.
type Handler interface {
	HandleMsg(tag int)
}

// envelope is one in-flight message. Envelopes are free-listed by the
// Network and carry pre-bound sender/deliver steps, so a steady-state send
// allocates nothing: the sender-side CPU step, the receiver-side CPU step,
// and the tracer wrapping that each used to cost a fresh closure all live
// here.
type envelope struct {
	n        *Network
	h        Handler
	tag      int
	from, to int
	start    sim.Time // send time, for the transit trace span
	fn       func()   // legacy closure payload (SendFunc path)

	senderFn  func() // e.senderStep, bound once at creation
	deliverFn func() // e.deliver, bound once at creation
}

// Network routes messages between nodes. Node ids index the cpus slice; by
// convention the host node is the last entry.
type Network struct {
	sim        *sim.Sim
	cpus       []*resource.CPU
	instPerMsg float64
	sent       int64
	free       []*envelope // recycled envelopes
	tr         *obs.Tracer
}

// New creates a network over the given per-node CPUs.
func New(s *sim.Sim, cpus []*resource.CPU, instPerMsg float64) *Network {
	return &Network{sim: s, cpus: cpus, instPerMsg: instPerMsg}
}

// Reserve pre-builds msgs pooled envelopes. The pool is self-amortising,
// but its growth chases the in-flight message high-water mark, whose
// records arrive too rarely for a warmup to retire deterministically —
// holders with a pinned allocation budget pre-size from the machine's
// concurrency bound instead. Golden-trace safe: no randomness, no
// scheduling.
func (n *Network) Reserve(msgs int) {
	if cap(n.free) < msgs {
		f := make([]*envelope, len(n.free), msgs)
		copy(f, n.free)
		n.free = f
	}
	for len(n.free) < msgs {
		e := &envelope{n: n}
		e.senderFn = e.senderStep
		e.deliverFn = e.deliver
		n.free = append(n.free, e)
	}
}

// alloc takes a recycled envelope from the free-list or makes a fresh one
// with its dispatch steps pre-bound.
//
//ddbmlint:hotpath envelope acquisition on every send
func (n *Network) alloc() *envelope {
	if k := len(n.free); k > 0 {
		e := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return e
	}
	e := &envelope{n: n} //ddbmlint:allow hotpath-alloc pool growth: one envelope per high-water in-flight message
	e.senderFn = e.senderStep
	e.deliverFn = e.deliver
	return e
}

// Send transmits a message from node `from` to node `to` and invokes
// h.HandleMsg(tag) at the destination once both ends have paid their
// message-processing CPU cost. Wire time is zero. A message from a node to
// itself is a local procedure call: no CPU cost and no message count, but
// delivery still goes through the event queue so ordering stays causal.
// A nil handler is a pure-load message (e.g. commit acks): both ends pay
// the CPU cost and nothing runs at the destination.
//
//ddbmlint:hotpath every transaction message; pinned by TestTxnPathAllocFree
func (n *Network) Send(from, to int, h Handler, tag int) {
	e := n.alloc()
	e.h, e.tag, e.from, e.to = h, tag, from, to
	n.post(e)
}

// SendFunc is the closure-payload variant of Send, kept for cold control
// messages (e.g. the 2PL snoop) and tests. The deliver closure, if any, is
// the caller's allocation; envelope routing is still free-listed.
func (n *Network) SendFunc(from, to int, deliver func()) {
	e := n.alloc()
	e.fn, e.from, e.to = deliver, from, to
	n.post(e)
}

// post routes a filled envelope: self-sends skip cost and accounting,
// everything else pays the two CPU message steps when messages have a
// cost.
//
//ddbmlint:hotpath shared routing path for every send
func (n *Network) post(e *envelope) {
	if e.from == e.to {
		n.sim.After(0, e.deliverFn)
		return
	}
	n.sent++
	if n.tr != nil {
		e.start = n.sim.Now()
	}
	if n.instPerMsg <= 0 {
		// Free messages still traverse the event queue so that delivery
		// never reenters the sender's current operation.
		n.sim.After(0, e.deliverFn)
		return
	}
	n.cpus[e.from].UseMsg(n.instPerMsg, e.senderFn)
}

// senderStep runs when the sender's CPU finishes its message-protocol
// work: the receiving end then pays its own cost before delivery.
//
//ddbmlint:hotpath sender-side CPU completion on every costed send
func (e *envelope) senderStep() {
	n := e.n
	n.cpus[e.to].UseMsg(n.instPerMsg, e.deliverFn)
}

// deliver records the transit span, recycles the envelope, and hands the
// message to its receiver. The envelope is recycled before the receiver
// runs so a handler that immediately sends again reuses it.
//
//ddbmlint:hotpath destination dispatch on every send
func (e *envelope) deliver() {
	n := e.n
	if n.tr != nil && e.from != e.to {
		// The transit span covers send to delivery, both ends' message-
		// processing CPU included. Observation only; delivery order is
		// exactly the pre-envelope order.
		n.tr.Message(e.from, e.to, e.start)
	}
	h, tag, fn := e.h, e.tag, e.fn
	e.h, e.fn = nil, nil
	n.free = append(n.free, e) //ddbmlint:allow hotpath-alloc free-list push; capacity reaches the in-flight high-water mark
	switch {
	case h != nil:
		h.HandleMsg(tag) //ddbmlint:allow hotpath-alloc receiver dispatch; handlers are the free-listed attempt/cohort objects, audited by their own hotpath pins
	case fn != nil:
		fn() //ddbmlint:allow hotpath-alloc legacy SendFunc payload; cold control path
	}
}

// SetTracer attaches an observability tracer recording one span per
// inter-node message transit. Must be set before the simulation runs.
func (n *Network) SetTracer(t *obs.Tracer) { n.tr = t }

// Sent returns the number of inter-node messages transmitted.
func (n *Network) Sent() int64 { return n.sent }

// NumNodes returns the number of attached nodes (including the host).
func (n *Network) NumNodes() int { return len(n.cpus) }
