// Package network implements the network manager of paper §3.5: a switch
// with negligible wire time whose only cost is InstPerMsg CPU instructions
// of message-protocol processing on each end, served at the CPUs'
// high-priority FIFO message class.
package network

import (
	"ddbm/internal/obs"
	"ddbm/internal/resource"
	"ddbm/internal/sim"
)

// Network routes messages between nodes. Node ids index the cpus slice; by
// convention the host node is the last entry.
type Network struct {
	sim        *sim.Sim
	cpus       []*resource.CPU
	instPerMsg float64
	sent       int64
	tr         *obs.Tracer
}

// New creates a network over the given per-node CPUs.
func New(s *sim.Sim, cpus []*resource.CPU, instPerMsg float64) *Network {
	return &Network{sim: s, cpus: cpus, instPerMsg: instPerMsg}
}

// Send transmits a message from node `from` to node `to` and runs deliver at
// the destination once both ends have paid their message-processing CPU
// cost. Wire time is zero. A message from a node to itself is a local
// procedure call: no CPU cost, but delivery still goes through the event
// queue so ordering stays causal.
func (n *Network) Send(from, to int, deliver func()) {
	if deliver == nil {
		deliver = func() {} // pure-load message (e.g. commit acks)
	}
	if from == to {
		n.sim.After(0, deliver)
		return
	}
	n.sent++
	if n.tr != nil {
		// Wrap delivery to record the transit span (send to delivery,
		// both ends' message-processing CPU included). Observation only;
		// the wrapper preserves delivery order exactly.
		tr, start, inner := n.tr, n.sim.Now(), deliver
		deliver = func() {
			tr.Message(from, to, start)
			inner()
		}
	}
	if n.instPerMsg <= 0 {
		// Free messages still traverse the event queue so that delivery
		// never reenters the sender's current operation.
		n.sim.After(0, deliver)
		return
	}
	n.cpus[from].UseMsg(n.instPerMsg, func() {
		n.cpus[to].UseMsg(n.instPerMsg, deliver)
	})
}

// SetTracer attaches an observability tracer recording one span per
// inter-node message transit. Must be set before the simulation runs.
func (n *Network) SetTracer(t *obs.Tracer) { n.tr = t }

// Sent returns the number of inter-node messages transmitted.
func (n *Network) Sent() int64 { return n.sent }

// NumNodes returns the number of attached nodes (including the host).
func (n *Network) NumNodes() int { return len(n.cpus) }
