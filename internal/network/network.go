// Package network implements the network manager of paper §3.5: a switch
// with negligible wire time whose only cost is InstPerMsg CPU instructions
// of message-protocol processing on each end, served at the CPUs'
// high-priority FIFO message class.
package network

import (
	"ddbm/internal/obs"
	"ddbm/internal/resource"
	"ddbm/internal/sim"
)

// Handler receives a delivered message. Receivers are long-lived,
// pre-bound objects (free-listed attempt/cohort state in internal/core and
// internal/commit); tag selects among a receiver's message kinds, so one
// object can be the target of several message types without any per-send
// allocation.
type Handler interface {
	HandleMsg(tag int)
}

// DropHandler is implemented by handlers that hold resources (attempt
// references) per in-flight message: when a message to or from a down node
// is discarded instead of delivered, MsgDropped runs in delivery's place so
// the owner can release what the send retained.
type DropHandler interface {
	MsgDropped(tag int)
}

// FaultModel is the network's view of the fault layer. A nil model (the
// default) disables every check at the cost of one pointer test per send.
// Handler messages touching a down node are discarded (MsgDropped); with
// positive loss/duplication probabilities each cross-node handler send
// additionally draws from the model's dedicated stream — a lost message is
// retransmitted from scratch after RetransmitDelayMs, a duplicated one
// adds a pure-load copy. Closure (SendFunc) control messages are exempt
// from all of it: they model out-of-band services (the 2PL Snoop) that
// must outlive any single node.
type FaultModel interface {
	Down(node int) bool
	LoseMsg() bool
	DupMsg() bool
	RetransmitDelayMs() float64
}

// envelope is one in-flight message. Envelopes are free-listed by the
// Network and carry pre-bound sender/deliver steps, so a steady-state send
// allocates nothing: the sender-side CPU step, the receiver-side CPU step,
// and the tracer wrapping that each used to cost a fresh closure all live
// here.
type envelope struct {
	n        *Network
	h        Handler
	tag      int
	from, to int
	start    sim.Time // send time, for the transit trace span
	fn       func()   // legacy closure payload (SendFunc path)

	senderFn  func() // e.senderStep, bound once at creation
	deliverFn func() // e.deliver, bound once at creation
	repostFn  func() // e.repost, bound lazily on the first retransmit
}

// Network routes messages between nodes. Node ids index the cpus slice; by
// convention the host node is the last entry.
type Network struct {
	sim        *sim.Sim
	cpus       []*resource.CPU
	instPerMsg float64
	sent       int64
	free       []*envelope // recycled envelopes
	tr         *obs.Tracer
	ft         FaultModel
	lost       int64 // loss events: drops at down nodes plus coin-flip losses (retransmitted)
}

// New creates a network over the given per-node CPUs.
func New(s *sim.Sim, cpus []*resource.CPU, instPerMsg float64) *Network {
	return &Network{sim: s, cpus: cpus, instPerMsg: instPerMsg}
}

// Reserve pre-builds msgs pooled envelopes. The pool is self-amortising,
// but its growth chases the in-flight message high-water mark, whose
// records arrive too rarely for a warmup to retire deterministically —
// holders with a pinned allocation budget pre-size from the machine's
// concurrency bound instead. Golden-trace safe: no randomness, no
// scheduling.
func (n *Network) Reserve(msgs int) {
	if cap(n.free) < msgs {
		f := make([]*envelope, len(n.free), msgs)
		copy(f, n.free)
		n.free = f
	}
	for len(n.free) < msgs {
		e := &envelope{n: n}
		e.senderFn = e.senderStep
		e.deliverFn = e.deliver
		n.free = append(n.free, e)
	}
}

// alloc takes a recycled envelope from the free-list or makes a fresh one
// with its dispatch steps pre-bound.
//
//ddbmlint:hotpath envelope acquisition on every send
func (n *Network) alloc() *envelope {
	if k := len(n.free); k > 0 {
		e := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return e
	}
	e := &envelope{n: n} //ddbmlint:allow hotpath-alloc pool growth: one envelope per high-water in-flight message
	e.senderFn = e.senderStep
	e.deliverFn = e.deliver
	return e
}

// Send transmits a message from node `from` to node `to` and invokes
// h.HandleMsg(tag) at the destination once both ends have paid their
// message-processing CPU cost. Wire time is zero. A message from a node to
// itself is a local procedure call: no CPU cost and no message count, but
// delivery still goes through the event queue so ordering stays causal.
// A nil handler is a pure-load message (e.g. commit acks): both ends pay
// the CPU cost and nothing runs at the destination.
//
//ddbmlint:hotpath every transaction message; pinned by TestTxnPathAllocFree
func (n *Network) Send(from, to int, h Handler, tag int) {
	e := n.alloc()
	e.h, e.tag, e.from, e.to = h, tag, from, to
	n.post(e)
}

// SendFunc is the closure-payload variant of Send, kept for cold control
// messages (e.g. the 2PL snoop) and tests. The deliver closure, if any, is
// the caller's allocation; envelope routing is still free-listed.
func (n *Network) SendFunc(from, to int, deliver func()) {
	e := n.alloc()
	e.fn, e.from, e.to = deliver, from, to
	n.post(e)
}

// post routes a filled envelope: self-sends skip cost and accounting,
// everything else pays the two CPU message steps when messages have a
// cost.
//
//ddbmlint:hotpath shared routing path for every send
func (n *Network) post(e *envelope) {
	if e.from == e.to {
		n.sim.After(0, e.deliverFn)
		return
	}
	if n.ft != nil {
		if n.faultStep(e) {
			return
		}
	}
	n.sent++
	if n.tr != nil {
		e.start = n.sim.Now()
	}
	if n.instPerMsg <= 0 {
		// Free messages still traverse the event queue so that delivery
		// never reenters the sender's current operation.
		n.sim.After(0, e.deliverFn)
		return
	}
	n.cpus[e.from].UseMsg(n.instPerMsg, e.senderFn)
}

// faultStep applies the fault model to one cross-node send; it reports
// whether the envelope was consumed (dropped or parked for retransmit).
// Off the nil-model fast path, so never reached in a fault-free run.
func (n *Network) faultStep(e *envelope) bool {
	ft := n.ft
	if e.fn != nil {
		// Control (closure) messages are exempt from loss and never pay a
		// down node's CPU: crash-clearing that CPU's queues must not be
		// able to swallow an out-of-band service's request or reply.
		if ft.Down(e.from) || ft.Down(e.to) { //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
			n.sent++
			n.sim.After(0, e.deliverFn)
			return true
		}
		return false
	}
	if ft.Down(e.from) || ft.Down(e.to) { //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
		n.drop(e)
		return true
	}
	if ft.LoseMsg() { //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
		// The sender's timeout-and-retransmit, abstracted: the message
		// re-enters the full send pipeline (both CPU ends re-paid) after
		// the retransmission delay.
		n.lost++
		if e.repostFn == nil {
			e.repostFn = e.repost
		}
		n.sim.After(ft.RetransmitDelayMs(), e.repostFn) //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
		return true
	}
	if ft.DupMsg() { //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
		// A duplicate shows up as pure load: both ends pay the message
		// CPU cost but nothing runs at the destination, so protocol state
		// sees each logical message exactly once.
		d := n.alloc()
		d.h, d.tag, d.from, d.to = nil, 0, e.from, e.to
		n.sent++
		if n.tr != nil {
			d.start = n.sim.Now()
		}
		if n.instPerMsg <= 0 {
			n.sim.After(0, d.deliverFn)
		} else {
			n.cpus[d.from].UseMsg(n.instPerMsg, d.senderFn)
		}
	}
	return false
}

// repost re-enters the send pipeline after a retransmission delay.
func (e *envelope) repost() {
	e.n.post(e)
}

// drop discards a handler message touching a down node: the envelope is
// recycled and the handler's MsgDropped (if implemented) runs in
// delivery's place so per-message resources are released.
func (n *Network) drop(e *envelope) {
	n.lost++
	h, tag := e.h, e.tag
	e.h, e.fn = nil, nil
	n.free = append(n.free, e) //ddbmlint:allow hotpath-alloc free-list growth; drop runs only with a non-nil fault model, off the pinned fault-free path
	if dh, ok := h.(DropHandler); ok {
		dh.MsgDropped(tag) //ddbmlint:allow hotpath-alloc drop-handler dispatch; reached only with a non-nil fault model, off the pinned fault-free path
	}
}

// senderStep runs when the sender's CPU finishes its message-protocol
// work: the receiving end then pays its own cost before delivery.
//
//ddbmlint:hotpath sender-side CPU completion on every costed send
func (e *envelope) senderStep() {
	n := e.n
	n.cpus[e.to].UseMsg(n.instPerMsg, e.deliverFn)
}

// deliver records the transit span, recycles the envelope, and hands the
// message to its receiver. The envelope is recycled before the receiver
// runs so a handler that immediately sends again reuses it.
//
//ddbmlint:hotpath destination dispatch on every send
func (e *envelope) deliver() {
	n := e.n
	if n.ft != nil && e.fn == nil && e.h != nil && e.from != e.to &&
		(n.ft.Down(e.from) || n.ft.Down(e.to)) { //ddbmlint:allow hotpath-alloc fault-model dispatch; reached only with a non-nil model, off the pinned fault-free path
		// A crash between send and delivery (the zero-cost After(0) path,
		// or a completion racing the crash event at one instant): the
		// message dies with the node.
		n.drop(e)
		return
	}
	if n.tr != nil && e.from != e.to {
		// The transit span covers send to delivery, both ends' message-
		// processing CPU included. Observation only; delivery order is
		// exactly the pre-envelope order.
		n.tr.Message(e.from, e.to, e.start)
	}
	h, tag, fn := e.h, e.tag, e.fn
	e.h, e.fn = nil, nil
	n.free = append(n.free, e) //ddbmlint:allow hotpath-alloc free-list push; capacity reaches the in-flight high-water mark
	switch {
	case h != nil:
		h.HandleMsg(tag) //ddbmlint:allow hotpath-alloc receiver dispatch; handlers are the free-listed attempt/cohort objects, audited by their own hotpath pins
	case fn != nil:
		fn() //ddbmlint:allow hotpath-alloc legacy SendFunc payload; cold control path
	}
}

// SetTracer attaches an observability tracer recording one span per
// inter-node message transit. Must be set before the simulation runs.
func (n *Network) SetTracer(t *obs.Tracer) { n.tr = t }

// SetFaultModel attaches a fault model consulted on every cross-node
// handler send and delivery. Must be set before the simulation runs; a nil
// model keeps the fault-free fast path.
func (n *Network) SetFaultModel(ft FaultModel) { n.ft = ft }

// Sent returns the number of inter-node messages transmitted.
func (n *Network) Sent() int64 { return n.sent }

// Lost returns the number of loss events: handler messages discarded at a
// down node, plus coin-flip losses that were retransmitted.
func (n *Network) Lost() int64 { return n.lost }

// NumNodes returns the number of attached nodes (including the host).
func (n *Network) NumNodes() int { return len(n.cpus) }
