package network

import (
	"testing"

	"ddbm/internal/resource"
	"ddbm/internal/sim"
)

func build(s *sim.Sim, nodes int, mips, instPerMsg float64) (*Network, []*resource.CPU) {
	var cpus []*resource.CPU
	for i := 0; i < nodes; i++ {
		cpus = append(cpus, resource.NewCPU(s, mips))
	}
	return New(s, cpus, instPerMsg), cpus
}

func TestSendPaysBothEnds(t *testing.T) {
	// 1K-instruction messages at 1 MIPS: 1 ms at the sender, then 1 ms at
	// the receiver — delivery at t=2.
	s := sim.New(1)
	n, _ := build(s, 2, 1, 1000)
	var deliveredAt sim.Time
	n.SendFunc(0, 1, func() { deliveredAt = s.Now() })
	s.Run(100)
	if deliveredAt != 2 {
		t.Errorf("delivered at %v, want 2", deliveredAt)
	}
	if n.Sent() != 1 {
		t.Errorf("Sent = %d, want 1", n.Sent())
	}
}

func TestSendLoadsBothCPUs(t *testing.T) {
	s := sim.New(1)
	n, cpus := build(s, 2, 1, 1000)
	n.SendFunc(0, 1, func() {})
	s.Run(100)
	for i, c := range cpus {
		// Each end should have been busy exactly 1 ms of the 100.
		if u := c.Utilization(); u < 0.009 || u > 0.011 {
			t.Errorf("cpu %d utilization %v, want ~0.01", i, u)
		}
	}
}

func TestLocalSendIsFree(t *testing.T) {
	s := sim.New(1)
	n, cpus := build(s, 2, 1, 1000)
	var deliveredAt sim.Time
	delivered := false
	n.SendFunc(1, 1, func() { deliveredAt = s.Now(); delivered = true })
	if delivered {
		t.Error("local delivery must go through the event queue, not run inline")
	}
	s.Run(100)
	if !delivered || deliveredAt != 0 {
		t.Errorf("local delivery at %v (delivered=%v), want immediate via event", deliveredAt, delivered)
	}
	if n.Sent() != 0 {
		t.Errorf("local send counted as network message")
	}
	if cpus[1].Utilization() != 0 {
		t.Error("local send consumed CPU")
	}
}

func TestZeroCostMessagesStillAsynchronous(t *testing.T) {
	s := sim.New(1)
	n, _ := build(s, 2, 1, 0)
	delivered := false
	n.SendFunc(0, 1, func() { delivered = true })
	if delivered {
		t.Error("zero-cost delivery ran inline within Send")
	}
	s.Run(100)
	if !delivered {
		t.Error("zero-cost message never delivered")
	}
	if n.Sent() != 1 {
		t.Errorf("Sent = %d, want 1", n.Sent())
	}
}

func TestMessagesQueueAtBusySender(t *testing.T) {
	// Two messages from the same node serialize on its CPU: second
	// delivered at 1+1(+1 recv overlap? no: sender 2 ms serial, each then
	// 1 ms at receiver) -> deliveries at 2 and 3 ms.
	s := sim.New(1)
	n, _ := build(s, 2, 1, 1000)
	var times []sim.Time
	n.SendFunc(0, 1, func() { times = append(times, s.Now()) })
	n.SendFunc(0, 1, func() { times = append(times, s.Now()) })
	s.Run(100)
	if len(times) != 2 || times[0] != 2 || times[1] != 3 {
		t.Errorf("delivery times %v, want [2 3]", times)
	}
}

func TestFasterCPUFasterDelivery(t *testing.T) {
	// 10-MIPS host: 1K instructions take 0.1 ms.
	s := sim.New(1)
	cpus := []*resource.CPU{resource.NewCPU(s, 10), resource.NewCPU(s, 1)}
	n := New(s, cpus, 1000)
	var at sim.Time
	n.SendFunc(0, 1, func() { at = s.Now() })
	s.Run(100)
	if at < 1.09 || at > 1.11 {
		t.Errorf("delivered at %v, want 1.1 (0.1 host + 1.0 node)", at)
	}
}

func TestNumNodes(t *testing.T) {
	s := sim.New(1)
	n, _ := build(s, 5, 1, 1000)
	if n.NumNodes() != 5 {
		t.Errorf("NumNodes %d, want 5", n.NumNodes())
	}
}

type recordingHandler struct {
	s    *sim.Sim
	tags []int
	at   []sim.Time
}

func (h *recordingHandler) HandleMsg(tag int) {
	h.tags = append(h.tags, tag)
	h.at = append(h.at, h.s.Now())
}

func TestTypedSendDispatchesTags(t *testing.T) {
	s := sim.New(1)
	n, _ := build(s, 2, 1, 1000)
	h := &recordingHandler{s: s}
	n.Send(0, 1, h, 7)
	n.Send(1, 1, h, 9) // self-send: free, but still via the event queue
	if len(h.tags) != 0 {
		t.Fatal("delivery ran inline within Send")
	}
	s.Run(100)
	if len(h.tags) != 2 || h.tags[0] != 9 || h.tags[1] != 7 {
		t.Errorf("tags %v, want [9 7] (free self-send first)", h.tags)
	}
	if h.at[0] != 0 || h.at[1] != 2 {
		t.Errorf("delivery times %v, want [0 2]", h.at)
	}
	if n.Sent() != 1 {
		t.Errorf("Sent = %d, want 1 (self-send is not a network message)", n.Sent())
	}
}

func TestTypedSendSteadyStateAllocFree(t *testing.T) {
	s := sim.New(1)
	n, _ := build(s, 2, 1, 1000)
	h := &recordingHandler{s: s}
	h.tags = make([]int, 0, 4096)
	h.at = make([]sim.Time, 0, 4096)
	// Warm the envelope free-list and both CPU queues.
	for i := 0; i < 8; i++ {
		n.Send(0, 1, h, i)
		n.Send(1, 1, h, i)
		for s.Step(1e9) {
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		n.Send(0, 1, h, 1)
		n.Send(1, 1, h, 2)
		n.Send(0, 1, nil, 0) // pure-load message
		for s.Step(1e9) {
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state typed send allocated %.1f objects/op, want 0", allocs)
	}
}

func TestManyMessagesCounted(t *testing.T) {
	s := sim.New(1)
	n, _ := build(s, 3, 1, 100)
	for i := 0; i < 50; i++ {
		n.Send(i%3, (i+1)%3, nil, 0)
	}
	s.Run(1e6)
	if n.Sent() != 50 {
		t.Errorf("Sent = %d, want 50", n.Sent())
	}
}
