// Command quickstart runs one simulation of the paper's baseline
// configuration (8-node machine, 2PL, moderate load) and prints the key
// metrics — the minimal end-to-end use of the ddbm API.
package main

import (
	"fmt"

	"ddbm"
)

func main() {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.ThinkTimeMs = 8000 // 8 s mean terminal think time
	cfg.SimTimeMs = 200_000
	cfg.WarmupMs = 20_000

	res, err := ddbm.Run(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("algorithm:        %v\n", cfg.Algorithm)
	fmt.Printf("machine:          1 host + %d processing nodes\n", cfg.NumProcNodes)
	fmt.Printf("think time:       %.0f s\n", cfg.ThinkTimeMs/1000)
	fmt.Printf("commits:          %d (%.2f tps)\n", res.Commits, res.ThroughputTPS)
	fmt.Printf("response time:    %.0f ms  (±%.0f ms, 95%% CI)\n", res.MeanResponseMs, res.RespHalfWidth95)
	fmt.Printf("abort ratio:      %.3f aborts/commit\n", res.AbortRatio)
	fmt.Printf("proc CPU util:    %.0f%%\n", res.ProcCPUUtil*100)
	fmt.Printf("proc disk util:   %.0f%%\n", res.ProcDiskUtil*100)
	fmt.Printf("messages:         %d\n", res.MessagesSent)
}
