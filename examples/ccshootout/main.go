// Command ccshootout compares the four concurrency control algorithms (and
// the NO_DC baseline) head-to-head across a system-load sweep on the
// paper's 8-node machine, printing throughput, response time, abort ratio
// and blocking time side by side — a compact rerun of the core of the
// paper's evaluation.
package main

import (
	"flag"
	"fmt"

	"ddbm"
)

func main() {
	pages := flag.Int("pages", 300, "pages per file (300 = small DB, 1200 = large DB)")
	scale := flag.Float64("scale", 0.5, "simulated-time scale (1.0 for publication quality)")
	flag.Parse()

	thinkTimes := []float64{0, 4000, 8000, 16000, 48000, 96000}

	fmt.Printf("Concurrency control shootout: 8 nodes, %d-page files, 128 terminals\n\n", *pages)
	for _, tt := range thinkTimes {
		fmt.Printf("think time %g s:\n", tt/1000)
		fmt.Printf("  %-6s %10s %12s %12s %12s\n", "algo", "tput(tps)", "resp(ms)", "aborts/cmt", "block(ms)")
		for _, alg := range ddbm.Algorithms() {
			cfg := ddbm.DefaultConfig()
			cfg.Algorithm = alg
			cfg.PagesPerFile = *pages
			cfg.ThinkTimeMs = tt
			cfg.SimTimeMs = 800_000 * *scale
			cfg.WarmupMs = 120_000 * *scale
			res, err := ddbm.Run(cfg)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-6v %10.2f %12.0f %12.3f %12.0f\n",
				alg, res.ThroughputTPS, res.MeanResponseMs, res.AbortRatio, res.MeanBlockMs)
		}
		fmt.Println()
	}
	fmt.Println("Expected ordering under contention (paper §4): 2PL >= BTO >= WW >= OPT,")
	fmt.Println("all bounded above by NO_DC; the gaps close as think time rises.")
}
