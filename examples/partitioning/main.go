// Command partitioning demonstrates the paper's central question: how much
// does declustering a relation (intra-transaction parallelism) help, and
// how does the concurrency control algorithm change the answer? It runs
// one algorithm across 1/2/4/8-way partitioning at a low and a high load
// and reports response-time speedups relative to the 1-way layout
// (the §4.3/§4.4 experiments in miniature).
package main

import (
	"flag"
	"fmt"
	"os"

	"ddbm"
)

func main() {
	algName := flag.String("alg", "2PL", "algorithm: 2PL, WW, BTO, OPT or NO_DC")
	scale := flag.Float64("scale", 0.5, "simulated-time scale")
	msg := flag.Float64("msg", 1000, "instructions per message (4000 reproduces Figures 16/17)")
	flag.Parse()

	alg, err := ddbm.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(ways int, think float64) ddbm.Result {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = ways
		cfg.ThinkTimeMs = think
		cfg.InstPerMsg = *msg
		cfg.SimTimeMs = 800_000 * *scale
		cfg.WarmupMs = 120_000 * *scale
		res, err := ddbm.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Printf("Partitioning study: %v on 8 nodes, small DB, %gK-instruction messages\n\n", alg, *msg/1000)
	for _, think := range []float64{0, 8000, 48000} {
		fmt.Printf("think time %g s:\n", think/1000)
		fmt.Printf("  %-5s %12s %12s %10s %12s\n", "ways", "resp(ms)", "speedup", "tput", "aborts/cmt")
		base := run(1, think)
		for _, ways := range []int{1, 2, 4, 8} {
			var res ddbm.Result
			if ways == 1 {
				res = base
			} else {
				res = run(ways, think)
			}
			fmt.Printf("  %-5d %12.0f %12.2f %10.2f %12.3f\n",
				ways, res.MeanResponseMs, base.MeanResponseMs/res.MeanResponseMs,
				res.ThroughputTPS, res.AbortRatio)
		}
		fmt.Println()
	}
	fmt.Println("Under light load expect ~5x at 8-way (longest-cohort limit 64/12);")
	fmt.Println("under heavy load parallelism helps little — except through reduced")
	fmt.Println("lock-holding times. With 4K-instruction messages, 8-way can lose to 4-way.")
}
