// Command replication explores the read-one/write-all replicated-data
// extension ([Care88]) and the deferred-remote-write-lock 2PL variant of
// the paper's footnote 13 ([Care89]): with replicated copies and expensive
// messages, immediate 2PL loses ground to OPT, and deferring remote write
// locks to the first commit phase wins it back. The serializability auditor
// runs throughout, certifying every history.
package main

import (
	"flag"
	"fmt"

	"ddbm"
)

func main() {
	think := flag.Float64("think", 8, "mean think time (seconds)")
	msg := flag.Float64("msg", 4000, "instructions per message end")
	scale := flag.Float64("scale", 0.5, "simulated-time scale")
	flag.Parse()

	run := func(alg ddbm.Algorithm, replicas int, deferLocks bool) ddbm.Result {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = 8
		cfg.ThinkTimeMs = *think * 1000
		cfg.InstPerMsg = *msg
		cfg.ReplicaCount = replicas
		cfg.DeferRemoteWriteLocks = deferLocks
		cfg.Audit = true
		cfg.SimTimeMs = 700_000 * *scale
		cfg.WarmupMs = 100_000 * *scale
		res, err := ddbm.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Printf("Replicated data, %gK-instruction messages, think %g s\n\n", *msg/1000, *think)
	fmt.Printf("%-28s %8s %10s %12s %10s %8s\n",
		"variant", "copies", "tput(tps)", "resp(ms)", "aborts/cmt", "anomalies")
	for _, copies := range []int{1, 2, 3} {
		variants := []struct {
			name   string
			alg    ddbm.Algorithm
			defer_ bool
		}{
			{"2PL (immediate locks)", ddbm.TwoPL, false},
			{"2PL (deferred remote locks)", ddbm.TwoPL, copies > 1},
			{"OPT", ddbm.OPT, false},
		}
		for _, v := range variants {
			res := run(v.alg, copies, v.defer_)
			fmt.Printf("%-28s %8d %10.2f %12.0f %10.3f %8d\n",
				v.name, copies, res.ThroughputTPS, res.MeanResponseMs,
				res.AbortRatio, len(res.AuditViolations))
		}
		fmt.Println()
	}
	fmt.Println("Footnote 13's claim: with copies to update and costly messages, plain")
	fmt.Println("2PL's early remote write locks hold contended resources across message")
	fmt.Println("delays; deferring them to commit phase 1 restores 2PL's advantage.")
}
