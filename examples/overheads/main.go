// Command overheads explores how CPU overheads for messages and process
// startup erode the benefit of parallelism (paper §4.4): it sweeps
// InstPerMsg and InstPerStartup for a chosen algorithm on the 8-way
// machine and reports where the 8-way layout stops paying for itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"ddbm"
)

func main() {
	algName := flag.String("alg", "OPT", "algorithm (OPT shows the effect most strongly)")
	think := flag.Float64("think", 8, "mean think time (seconds)")
	scale := flag.Float64("scale", 0.5, "simulated-time scale")
	flag.Parse()

	alg, err := ddbm.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(ways int, startup, msg float64) ddbm.Result {
		cfg := ddbm.DefaultConfig()
		cfg.Algorithm = alg
		cfg.PartitionWays = ways
		cfg.ThinkTimeMs = *think * 1000
		cfg.InstPerStartup = startup
		cfg.InstPerMsg = msg
		cfg.SimTimeMs = 700_000 * *scale
		cfg.WarmupMs = 100_000 * *scale
		res, err := ddbm.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	settings := []struct {
		name         string
		startup, msg float64
	}{
		{"free (startup 0, msg 0)", 0, 0},
		{"baseline (startup 2K, msg 1K)", 2000, 1000},
		{"expensive msgs (msg 4K)", 0, 4000},
		{"expensive startup (20K)", 20000, 0},
	}

	fmt.Printf("Overhead study: %v, 8 nodes, small DB, think %g s\n\n", alg, *think)
	for _, set := range settings {
		fmt.Printf("%s:\n", set.name)
		fmt.Printf("  %-5s %12s %12s %14s\n", "ways", "resp(ms)", "speedup", "msgs/commit")
		base := run(1, set.startup, set.msg)
		for _, ways := range []int{1, 2, 4, 8} {
			var res ddbm.Result
			if ways == 1 {
				res = base
			} else {
				res = run(ways, set.startup, set.msg)
			}
			mpc := 0.0
			if res.Commits > 0 {
				mpc = float64(res.MessagesSent) / float64(res.Commits)
			}
			fmt.Printf("  %-5d %12.0f %12.2f %14.1f\n",
				ways, res.MeanResponseMs, base.MeanResponseMs/res.MeanResponseMs, mpc)
		}
		fmt.Println()
	}
	fmt.Println("With free overheads speedup grows with ways; at 4K-instruction messages")
	fmt.Println("(or 20K-instruction startups) 8-way flattens or inverts — the paper's")
	fmt.Println("Figures 16 and 17.")
}
