// Ablation benchmarks: isolate the design choices DESIGN.md calls out —
// the Snoop detection interval, the restart-delay policy surrogate
// (initial delay), disk write priority is structural, and message cost.
// Each reports the key resulting metric so `go test -bench Ablation`
// doubles as a sensitivity sheet.
package ddbm_test

import (
	"fmt"
	"testing"

	"ddbm"
)

func ablationBase() ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.PartitionWays = 8
	cfg.NumTerminals = 64
	cfg.PagesPerFile = 100
	cfg.ThinkTimeMs = 2000
	cfg.SimTimeMs = 60_000
	cfg.WarmupMs = 10_000
	return cfg
}

// BenchmarkAblationSnoopInterval sweeps the 2PL global deadlock detection
// interval (paper Table 4 fixes 1 s).
func BenchmarkAblationSnoopInterval(b *testing.B) {
	for _, iv := range []float64{250, 1000, 4000} {
		iv := iv
		b.Run(formatMs(iv), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.TwoPL
				cfg.DetectionIntervalMs = iv
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tput = res.ThroughputTPS
			}
			b.ReportMetric(tput, "tps")
		})
	}
}

// BenchmarkAblationRestartDelay sweeps the initial restart delay; the
// adaptive running-average policy takes over once transactions commit, so
// the sensitivity here is intentionally small.
func BenchmarkAblationRestartDelay(b *testing.B) {
	for _, d := range []float64{100, 1000, 10000} {
		d := d
		b.Run(formatMs(d), func(b *testing.B) {
			var abortRatio float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.OPT
				cfg.InitialRestartDelayMs = d
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				abortRatio = res.AbortRatio
			}
			b.ReportMetric(abortRatio, "aborts/commit")
		})
	}
}

// BenchmarkAblationMessageCost sweeps InstPerMsg for OPT on the 8-way
// machine, the §4.4 lever that makes aborts expensive.
func BenchmarkAblationMessageCost(b *testing.B) {
	for _, c := range []float64{0, 1000, 4000} {
		c := c
		b.Run(formatMs(c), func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.OPT
				cfg.InstPerMsg = c
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				resp = res.MeanResponseMs
			}
			b.ReportMetric(resp, "resp_ms")
		})
	}
}

// BenchmarkAblationExecPattern compares parallel and sequential cohort
// execution under 2PL.
func BenchmarkAblationExecPattern(b *testing.B) {
	for _, pat := range []ddbm.ExecPattern{ddbm.Parallel, ddbm.Sequential} {
		pat := pat
		b.Run(pat.String(), func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.TwoPL
				cfg.ExecPattern = pat
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				resp = res.MeanResponseMs
			}
			b.ReportMetric(resp, "resp_ms")
		})
	}
}

// BenchmarkAblationWriteLockAcquisition compares claiming write locks at
// first access (default; update intent is part of the transaction
// definition) against the literal read-then-convert sequence of §2.2,
// which adds conversion deadlocks.
func BenchmarkAblationWriteLockAcquisition(b *testing.B) {
	for _, upgrade := range []bool{false, true} {
		upgrade := upgrade
		name := "immediate"
		if upgrade {
			name = "convert"
		}
		b.Run(name, func(b *testing.B) {
			var aborts float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.TwoPL
				cfg.UpgradeWriteLocks = upgrade
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				aborts = res.AbortRatio
			}
			b.ReportMetric(aborts, "aborts/commit")
		})
	}
}

// BenchmarkAblationLogging measures footnote 5's assumption that logging
// is not the bottleneck: throughput with and without log-force modeling.
func BenchmarkAblationLogging(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.TwoPL
				cfg.ModelLogging = on
				res, err := ddbm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tput = res.ThroughputTPS
			}
			b.ReportMetric(tput, "tps")
		})
	}
}

// BenchmarkAblationAuditOverhead measures the cost of the serializability
// auditor itself.
func BenchmarkAblationAuditOverhead(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Algorithm = ddbm.TwoPL
				cfg.Audit = on
				if _, err := ddbm.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func formatMs(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%gk", v/1000)
	}
	return fmt.Sprintf("%g", v)
}
