package ddbm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"

	"ddbm"
)

// TestKernelGoldenBitIdentical replays the configurations captured in
// testdata/golden_seed_kernel.json — results produced by the original
// container/heap kernel with per-resume closure allocation — and requires
// the current kernel to reproduce every Result field bit-for-bit. This is
// the contract of the allocation-free kernel rewrite: same (time, seq)
// dispatch order, same RNG consumption order, therefore the same floats to
// the last ulp. Regenerate the file (see DESIGN.md, "Kernel performance")
// only for a deliberate, documented model change.
func TestKernelGoldenBitIdentical(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_seed_kernel.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden []ddbm.Result
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("golden file is empty")
	}
	for i := range golden {
		g := golden[i]
		name := fmt.Sprintf("%d-%v-%s", i, g.Config.Algorithm, g.Config.ExecPattern)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := ddbm.Run(g.Config)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, g) {
				got, _ := json.MarshalIndent(res, "", "  ")
				want, _ := json.MarshalIndent(g, "", "  ")
				t.Errorf("result diverged from the seed kernel\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestRunTwiceIdentical runs every algorithm twice with the same seed and
// asserts the full Result structs are identical — determinism of the
// current kernel against itself, independent of the golden file.
func TestRunTwiceIdentical(t *testing.T) {
	algos := append(ddbm.Algorithms(), ddbm.O2PL)
	for _, a := range algos {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			cfg := ddbm.DefaultConfig()
			cfg.Algorithm = a
			cfg.SimTimeMs = 30_000
			cfg.WarmupMs = 5_000
			cfg.ThinkTimeMs = 2_000
			cfg.Seed = 11
			first, err := ddbm.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := ddbm.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				got, _ := json.MarshalIndent(second, "", "  ")
				want, _ := json.MarshalIndent(first, "", "  ")
				t.Errorf("two runs with one seed diverged\nsecond:\n%s\nfirst:\n%s", got, want)
			}
		})
	}
}
