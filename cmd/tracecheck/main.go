// Command tracecheck structurally validates Chrome trace-event JSON files
// produced by ddbsim -trace-out or experiments -trace-out: the document
// must parse, spans on every track must nest, and cohort / commit-phase
// spans must sit under their transaction's attempt span. CI runs it on a
// freshly generated trace as a smoke test.
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ddbm"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck file.json [file.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			bad = true
			continue
		}
		if err := ddbm.CheckChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad = true
			continue
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		// CheckChromeTrace already proved the document parses.
		json.Unmarshal(data, &doc)
		fmt.Printf("%s: ok (%d events, %d bytes)\n", path, len(doc.TraceEvents), len(data))
	}
	if bad {
		os.Exit(1)
	}
}
