// Command ddbmlint statically enforces the simulator's determinism
// invariants: no wall-clock time, no global math/rand, no order-sensitive
// map iteration, no goroutines outside internal/sim, no retained
// *sim.Event handles — and, interprocedurally, no tainted helpers
// reaching simulation code (taint-wall-clock, taint-rand) and no
// allocations reachable from //ddbmlint:hotpath functions
// (hotpath-alloc). See internal/lint and DESIGN.md ("Statically-enforced
// determinism invariants", "Interprocedural analysis").
//
// Usage:
//
//	go run ./cmd/ddbmlint ./...
//	go run ./cmd/ddbmlint -json ./internal/cc ./experiments
//
// With -json, each finding is one JSON object per line with the stable
// field order file, line, col, check, msg, hint.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ddbm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable rendering of one finding. The
// field order is part of the tool's interface: CI annotation tooling
// parses these lines positionally diff-stable.
type jsonDiagnostic struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
	Hint  string `json:"hint,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddbmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "ddbmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "ddbmlint:", err)
		return 2
	}
	dirs, err := expandArgs(root, args)
	if err != nil {
		fmt.Fprintln(stderr, "ddbmlint:", err)
		return 2
	}
	var targets []lint.Target
	for _, rel := range dirs {
		pkgPath := loader.Module
		if rel != "." {
			pkgPath += "/" + rel
		}
		targets = append(targets, lint.Target{
			Dir:  filepath.Join(root, filepath.FromSlash(rel)),
			Path: pkgPath,
		})
	}
	runner := &lint.Runner{Loader: loader, Config: lint.DefaultConfig(loader.Module)}
	diags, err := runner.Lint(targets)
	if err != nil {
		fmt.Fprintln(stderr, "ddbmlint:", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		// Print module-relative paths: stable across machines.
		if p, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(p)
		}
		if *jsonOut {
			enc.Encode(jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Check: d.Check, Msg: d.Msg, Hint: d.Hint,
			})
		} else {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ddbmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandArgs resolves package patterns to module-root-relative package
// directories. Supported: "./...", "dir/...", and plain directories.
func expandArgs(root string, args []string) ([]string, error) {
	all, err := lint.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := map[string]bool{}
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, arg := range args {
		prefix, recursive := strings.CutSuffix(arg, "...")
		prefix = strings.TrimSuffix(prefix, "/")
		if prefix == "" || prefix == "." {
			prefix = "."
		}
		rel, err := relToRoot(root, prefix)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, d := range all {
			if d == rel || (recursive && (rel == "." || strings.HasPrefix(d, rel+"/"))) {
				add(d)
				matched = true
			}
		}
		if !matched {
			// An explicit (non-pattern) directory outside the default
			// walk — e.g. a fixture package under testdata/ — is still a
			// valid target if it holds Go files.
			if !recursive && hasGoFiles(filepath.Join(root, filepath.FromSlash(rel))) {
				add(rel)
				continue
			}
			return nil, fmt.Errorf("pattern %q matched no packages", arg)
		}
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func relToRoot(root, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %q is outside the module", dir)
	}
	return filepath.ToSlash(rel), nil
}
