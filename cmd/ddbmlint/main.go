// Command ddbmlint statically enforces the simulator's determinism
// invariants: no wall-clock time, no global math/rand, no order-sensitive
// map iteration, no goroutines outside internal/sim, and no retained
// *sim.Event handles. See internal/lint and DESIGN.md ("Statically-
// enforced determinism invariants").
//
// Usage:
//
//	go run ./cmd/ddbmlint ./...
//	go run ./cmd/ddbmlint ./internal/cc ./experiments
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ddbm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddbmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddbmlint:", err)
		return 2
	}
	dirs, err := expandArgs(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddbmlint:", err)
		return 2
	}
	runner := &lint.Runner{Loader: loader, Config: lint.DefaultConfig(loader.Module)}
	findings := 0
	for _, rel := range dirs {
		pkgPath := loader.Module
		if rel != "." {
			pkgPath += "/" + rel
		}
		diags, err := runner.LintDir(filepath.Join(root, filepath.FromSlash(rel)), pkgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddbmlint:", err)
			return 2
		}
		for _, d := range diags {
			// Print module-relative paths: stable across machines.
			if p, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = filepath.ToSlash(p)
			}
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ddbmlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandArgs resolves package patterns to module-root-relative package
// directories. Supported: "./...", "dir/...", and plain directories.
func expandArgs(root string, args []string) ([]string, error) {
	all, err := lint.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := map[string]bool{}
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, arg := range args {
		prefix, recursive := strings.CutSuffix(arg, "...")
		prefix = strings.TrimSuffix(prefix, "/")
		if prefix == "" || prefix == "." {
			prefix = "."
		}
		rel, err := relToRoot(root, prefix)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, d := range all {
			if d == rel || (recursive && (rel == "." || strings.HasPrefix(d, rel+"/"))) {
				add(d)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", arg)
		}
	}
	return out, nil
}

func relToRoot(root, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %q is outside the module", dir)
	}
	return filepath.ToSlash(rel), nil
}
