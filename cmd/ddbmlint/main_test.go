package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ddbm/internal/lint"
)

// fixtureDir resolves a testdata path relative to the module root. The
// test's working directory is cmd/ddbmlint, so walk up two levels.
func fixtureDir(t *testing.T, rel string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestRunJSONRoundTrip drives the full binary entry point against the
// wallclock fixture package and asserts that -json output carries the
// stable field order and round-trips losslessly to the text rendering.
func TestRunJSONRoundTrip(t *testing.T) {
	target := fixtureDir(t, "testdata/lint/wallclock")

	var text, jsonOut, errBuf bytes.Buffer
	if code := run([]string{target}, &text, &errBuf); code != 1 {
		t.Fatalf("text run: exit %d, want 1 (findings); stderr: %s", code, errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"-json", target}, &jsonOut, &errBuf); code != 1 {
		t.Fatalf("json run: exit %d, want 1 (findings); stderr: %s", code, errBuf.String())
	}

	lines := strings.Split(strings.TrimRight(jsonOut.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("json run produced no output")
	}
	var rendered strings.Builder
	for _, line := range lines {
		// The documented stable field order is part of the interface.
		if !strings.HasPrefix(line, `{"file":`) {
			t.Errorf("json line does not lead with the file field: %s", line)
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("json line does not parse: %v\n%s", err, line)
		}
		if d.File == "" || d.Line == 0 || d.Check == "" || d.Msg == "" {
			t.Errorf("json diagnostic missing required fields: %s", line)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("json file path is not module-relative: %s", d.File)
		}
		td := lint.Diagnostic{Check: d.Check, Msg: d.Msg, Hint: d.Hint}
		td.Pos.Filename = d.File
		td.Pos.Line = d.Line
		td.Pos.Column = d.Col
		fmt.Fprintf(&rendered, "%s\n", td)
	}
	if rendered.String() != text.String() {
		t.Errorf("json output does not round-trip to the text rendering:\n--- from json ---\n%s--- text mode ---\n%s",
			rendered.String(), text.String())
	}

	// Same invocation twice must be byte-identical: the CLI inherits the
	// analysis's determinism guarantee.
	var again bytes.Buffer
	if code := run([]string{"-json", target}, &again, &errBuf); code != 1 {
		t.Fatalf("repeat json run: exit %d, want 1", code)
	}
	if again.String() != jsonOut.String() {
		t.Errorf("repeated -json runs diverged:\n%s\nvs\n%s", jsonOut.String(), again.String())
	}
}

// TestRunExitCodes pins the documented exit statuses: 0 clean, 1
// findings, 2 load or usage error.
func TestRunExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{fixtureDir(t, "testdata/lint/clean")}, 0},
		{"findings", []string{fixtureDir(t, "testdata/lint/wallclock")}, 1},
		{"nonexistent target", []string{fixtureDir(t, "testdata/lint/no-such-dir")}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out.Reset()
			errBuf.Reset()
			if code := run(c.args, &out, &errBuf); code != c.want {
				t.Fatalf("run(%v) = %d, want %d; stderr: %s", c.args, code, c.want, errBuf.String())
			}
		})
	}
}
