// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§4). By default it runs everything; -fig selects a
// subset. -scale trades accuracy for speed (1.0 = publication length).
//
//	experiments -fig 2,3,4,5          # the machine-size study
//	experiments -fig all -scale 0.25  # everything, quicker
//	experiments -fig ext              # the beyond-the-paper extensions
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ddbm"
	"ddbm/experiments"
)

func main() {
	figs := flag.String("fig", "all", "comma-separated figure numbers (2-17), 'all', 'ext', 'cps' (commit-protocol sweep), 'bd' (response-time decomposition), or 'ft' (fault tolerance)")
	scale := flag.Float64("scale", 1.0, "simulated-time scale factor (1.0 = publication length)")
	seed := flag.Int64("seed", 1, "random seed for every run")
	reps := flag.Int("reps", 1, "replicate runs per configuration (averaged)")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	csv := flag.Bool("csv", false, "emit figures as CSV instead of tables")
	chart := flag.Bool("chart", false, "append an ASCII chart after each figure")
	traceOut := flag.String("trace-out", "", "write one Chrome trace-event JSON per run into `dir` (use with a small -scale)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to `file` (flushed on successful exit)")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to `file` on successful exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	emit := func(f *experiments.Figure) {
		if *csv {
			fmt.Printf("# %s: %s\n", f.ID, f.Title)
			f.CSV(os.Stdout)
			fmt.Println()
		} else {
			f.Render(os.Stdout)
		}
		if *chart {
			f.Chart(os.Stdout, 64, 16)
		}
	}

	opts := experiments.Options{TimeScale: *scale, Seed: *seed, Replicates: *reps, TraceDir: *traceOut}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	anyOf := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	if anyOf("2", "3", "4", "5", "6", "7") {
		st, err := experiments.RunMachineSizeStudy(opts)
		check(err)
		for _, f := range []struct {
			id  string
			fig func() *experiments.Figure
		}{
			{"2", st.Figure2}, {"3", st.Figure3}, {"4", st.Figure4},
			{"5", st.Figure5}, {"6", st.Figure6}, {"7", st.Figure7},
		} {
			if all || want[f.id] {
				emit(f.fig())
			}
		}
	}

	if anyOf("8", "9", "10", "11", "12", "13") {
		st, err := experiments.RunPartitioningStudy(opts)
		check(err)
		for _, f := range []struct {
			id  string
			fig func() *experiments.Figure
		}{
			{"8", st.Figure8}, {"9", st.Figure9}, {"10", st.Figure10},
			{"11", st.Figure11}, {"12", st.Figure12}, {"13", st.Figure13},
		} {
			if all || want[f.id] {
				emit(f.fig())
			}
		}
	}

	if anyOf("14", "15", "16", "17") {
		st, err := experiments.RunOverheadStudy(opts)
		check(err)
		for _, f := range []struct {
			id  string
			fig func() *experiments.Figure
		}{
			{"14", st.Figure14}, {"15", st.Figure15},
			{"16", st.Figure16}, {"17", st.Figure17},
		} {
			if all || want[f.id] {
				emit(f.fig())
			}
		}
	}

	if want["ext"] || want["cps"] {
		fig, err := experiments.CommitProtocolSweep(opts, 8000)
		check(err)
		emit(fig)
	}

	if want["ext"] || want["ft"] {
		st, err := experiments.RunFaultToleranceStudy(opts, 8000)
		check(err)
		emit(st.InDoubtFigure())
		emit(st.GoodputFigure())
	}

	if want["ext"] || want["bd"] {
		fig, err := experiments.BreakdownDecomposition(opts, ddbm.TwoPL)
		check(err)
		emit(fig)
	}

	if want["ext"] {
		extOpts := opts
		extOpts.ThinkTimesMs = []float64{0, 8000, 24000, 48000, 96000}
		for _, run := range []func() (*experiments.Figure, error){
			func() (*experiments.Figure, error) { return experiments.MachineSizeSweep(extOpts, 0) },
			func() (*experiments.Figure, error) { return experiments.TransactionSizeSweep(extOpts, 8000) },
			func() (*experiments.Figure, error) { return experiments.ExecPatternSweep(extOpts) },
			func() (*experiments.Figure, error) { return experiments.SnoopIntervalAblation(extOpts, 4000) },
			func() (*experiments.Figure, error) { return experiments.MessageCostSweep(extOpts, 8000) },
			func() (*experiments.Figure, error) { return experiments.TimeoutVsDetection(extOpts, 4000) },
			func() (*experiments.Figure, error) { return experiments.ReplicationStudy(extOpts, 8000) },
			func() (*experiments.Figure, error) { return experiments.MixedWorkloadSweep(extOpts, 8000) },
			func() (*experiments.Figure, error) { return experiments.O2PLSweep(extOpts) },
		} {
			fig, err := run()
			check(err)
			emit(fig)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
