// Command ddbsim runs one simulation of the distributed database machine
// model and prints its metrics. All model parameters (paper Tables 1-4) are
// exposed as flags; defaults are the paper's baseline settings.
//
// Example — the 8-node, 8-way-partitioned machine under wound-wait at a
// 12-second think time:
//
//	ddbsim -alg WW -nodes 8 -ways 8 -think 12
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ddbm"
	"ddbm/internal/cc"
	"ddbm/internal/obs"
)

func main() {
	cfg := ddbm.DefaultConfig()

	alg := flag.String("alg", "2PL", "algorithm: 2PL, WW, BTO, OPT or NO_DC")
	protocol := flag.String("protocol", "2PC", "commit protocol: 2PC (centralized), PA (presumed abort) or PC (presumed commit)")
	nodes := flag.Int("nodes", cfg.NumProcNodes, "number of processing nodes")
	ways := flag.Int("ways", cfg.PartitionWays, "partitioning degree (0 = spread every relation over all nodes)")
	pages := flag.Int("pages", cfg.PagesPerFile, "pages per file (300 = small DB, 1200 = large DB)")
	terms := flag.Int("terminals", cfg.NumTerminals, "number of terminals")
	think := flag.Float64("think", 0, "mean terminal think time (seconds)")
	avgPages := flag.Int("txnpages", cfg.AvgPagesPerPartition, "average pages read per partition")
	writeProb := flag.Float64("writeprob", cfg.WriteProb, "probability an accessed page is updated")
	instPage := flag.Float64("instpage", cfg.InstPerPage, "mean instructions to process a page")
	hostMIPS := flag.Float64("hostmips", cfg.HostMIPS, "host CPU speed (MIPS)")
	procMIPS := flag.Float64("procmips", cfg.ProcMIPS, "processing node CPU speed (MIPS)")
	disks := flag.Int("disks", cfg.NumDisks, "disks per node")
	startup := flag.Float64("startup", cfg.InstPerStartup, "instructions to start a process")
	msg := flag.Float64("msg", cfg.InstPerMsg, "instructions to send/receive a message (each end)")
	update := flag.Float64("update", cfg.InstPerUpdate, "instructions to initiate a deferred page write")
	ccreq := flag.Float64("ccreq", cfg.InstPerCCReq, "instructions per concurrency control request")
	detect := flag.Float64("detect", cfg.DetectionIntervalMs/1000, "2PL Snoop detection interval (seconds)")
	lockTimeout := flag.Float64("locktimeout", 0, "2PL lock-wait timeout in seconds (0 = deadlock detection)")
	replicas := flag.Int("replicas", 1, "copies of every file (read-one/write-all)")
	deferLocks := flag.Bool("defer", false, "defer remote-copy write locks to commit phase 1 (2PL + replication)")
	auditFlag := flag.Bool("audit", false, "run the serializability auditor and report anomalies")
	trace := flag.Int("trace", 0, "print the first N transaction life-cycle events")
	traceOut := flag.String("trace-out", "", "write a simulated-time trace to `file` (.jsonl = flat event stream, otherwise Chrome trace-event JSON for Perfetto)")
	probeInterval := flag.Float64("probe-interval", 0, "sample per-node gauges every `N` milliseconds of simulated time (0 = off)")
	breakdown := flag.Bool("breakdown", false, "account every simulated microsecond of response time to a phase and every abort to a cause, and print the breakdown")
	breakdownOut := flag.String("breakdown-out", "", "write the per-class breakdown detail to `file` (.csv = CSV table, otherwise JSONL)")
	logging := flag.Bool("logging", false, "model log forces (prepare records + commit record)")
	mttf := flag.Float64("mttf", 0, "mean time to failure per processing node in seconds (0 = nodes never crash; requires -logging)")
	mttr := flag.Float64("mttr", 2, "repair delay after a node crash (seconds)")
	crashDetect := flag.Float64("crash-detect", 0.5, "coordinator failure-detection latency after a node crash (seconds)")
	fixedFaults := flag.Bool("fixed-faults", false, "use fixed inter-failure intervals instead of exponential")
	hostMTTF := flag.Float64("host-mttf", 0, "mean time to failure of the coordinator host in seconds (0 = never; failover model)")
	hostMTTR := flag.Float64("host-mttr", 1, "host failover duration (seconds)")
	dropProb := flag.Float64("drop-prob", 0, "per-message loss probability (lost messages retransmit after -retransmit)")
	dupProb := flag.Float64("dup-prob", 0, "per-message duplication probability (duplicates are pure load)")
	retransmit := flag.Float64("retransmit", 0.05, "retransmission delay for a lost message (seconds)")
	seq := flag.Bool("sequential", false, "run cohorts sequentially instead of in parallel")
	simTime := flag.Float64("simtime", cfg.SimTimeMs/1000, "simulated duration (seconds)")
	warmup := flag.Float64("warmup", cfg.WarmupMs/1000, "warmup before measurement (seconds)")
	seed := flag.Int64("seed", cfg.Seed, "random seed")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to `file` after the run")
	flag.Parse()

	kind, err := ddbm.ParseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Algorithm = kind
	proto, err := ddbm.ParseCommitProtocol(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.CommitProtocol = proto
	cfg.NumProcNodes = *nodes
	cfg.PartitionWays = *ways
	cfg.PagesPerFile = *pages
	cfg.NumTerminals = *terms
	cfg.ThinkTimeMs = *think * 1000
	cfg.AvgPagesPerPartition = *avgPages
	cfg.WriteProb = *writeProb
	cfg.InstPerPage = *instPage
	cfg.HostMIPS = *hostMIPS
	cfg.ProcMIPS = *procMIPS
	cfg.NumDisks = *disks
	cfg.InstPerStartup = *startup
	cfg.InstPerMsg = *msg
	cfg.InstPerUpdate = *update
	cfg.InstPerCCReq = *ccreq
	cfg.DetectionIntervalMs = *detect * 1000
	cfg.LockWaitTimeoutMs = *lockTimeout * 1000
	cfg.ReplicaCount = *replicas
	cfg.DeferRemoteWriteLocks = *deferLocks
	cfg.Audit = *auditFlag
	cfg.ModelLogging = *logging
	if *mttf > 0 || *hostMTTF > 0 || *dropProb > 0 || *dupProb > 0 {
		cfg.Faults.Enabled = true
		cfg.Faults.NodeMTTFMs = *mttf * 1000
		cfg.Faults.FixedInterFailure = *fixedFaults
		cfg.Faults.MTTRMs = *mttr * 1000
		cfg.Faults.DetectMs = *crashDetect * 1000
		cfg.Faults.HostMTTFMs = *hostMTTF * 1000
		cfg.Faults.HostMTTRMs = *hostMTTR * 1000
		cfg.Faults.DropProb = *dropProb
		cfg.Faults.DupProb = *dupProb
		cfg.Faults.RetransmitDelayMs = *retransmit * 1000
	}
	cfg.Breakdown = *breakdown || *breakdownOut != ""
	if *seq {
		cfg.ExecPattern = ddbm.Sequential
	}
	cfg.SimTimeMs = *simTime * 1000
	cfg.WarmupMs = *warmup * 1000
	cfg.Seed = *seed

	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace > 0 {
		remaining := *trace
		m.ObserveTxns(func(e ddbm.TxnEvent) {
			if remaining > 0 {
				fmt.Println(e)
				remaining--
			}
		})
	}
	var tracer *ddbm.Tracer
	if *traceOut != "" {
		tracer = m.EnableTracing()
	}
	var series *ddbm.TimeSeries
	if *probeInterval > 0 {
		series = m.EnableProbes(*probeInterval)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	res := m.Run()
	if *cpuprofile != "" {
		pprof.StopCPUProfile() // idempotent with the defer; flush before reporting
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	fmt.Printf("algorithm            %v (%s execution, %v commit)\n", cfg.Algorithm, cfg.ExecPattern, cfg.CommitProtocol)
	fmt.Printf("machine              1 host (%.0f MIPS) + %d nodes (%.0f MIPS, %d disks each)\n",
		cfg.HostMIPS, cfg.NumProcNodes, cfg.ProcMIPS, cfg.NumDisks)
	fmt.Printf("database             %d files x %d pages (placement ways=%d)\n",
		cfg.NumRelations*cfg.PartsPerRelation, cfg.PagesPerFile, cfg.PartitionWays)
	fmt.Printf("workload             %d terminals, think %.1f s, ~%d reads/txn, write prob %.2f\n",
		cfg.NumTerminals, cfg.ThinkTimeMs/1000, cfg.AvgPagesPerPartition*cfg.PartsPerRelation, cfg.WriteProb)
	fmt.Printf("measured window      %.0f s (after %.0f s warmup)\n", res.MeasuredMs/1000, cfg.WarmupMs/1000)
	fmt.Println()
	fmt.Printf("throughput           %.3f txns/s (%d commits)\n", res.ThroughputTPS, res.Commits)
	fmt.Printf("response time        %.0f ms mean (±%.0f ms 95%% CI, sd %.0f, max %.0f)\n",
		res.MeanResponseMs, res.RespHalfWidth95, res.RespStdDev, res.MaxResponseMs)
	fmt.Printf("response percentiles P50 %.0f / P90 %.0f / P99 %.0f ms\n",
		res.RespP50Ms, res.RespP90Ms, res.RespP99Ms)
	fmt.Printf("abort ratio          %.4f aborts/commit (%d aborts, %.2f restarts/txn)\n",
		res.AbortRatio, res.Aborts, res.MeanRestarts)
	fmt.Printf("blocking             %.0f ms mean over %d episodes\n", res.MeanBlockMs, res.BlockCount)
	fmt.Printf("utilization          proc CPU %.1f%%, proc disk %.1f%%, host CPU %.1f%%\n",
		res.ProcCPUUtil*100, res.ProcDiskUtil*100, res.HostCPUUtil*100)
	fmt.Printf("messages             %d\n", res.MessagesSent)
	if cfg.ModelLogging {
		fmt.Printf("log forces           %d (%d on abort paths)\n", res.LogForces, res.AbortPathLogForces)
	}
	fmt.Printf("avg active txns      %.1f\n", res.AvgActiveTxns)
	if cfg.Faults.Enabled {
		fmt.Printf("faults               %d crashes, %d messages lost, availability %.2f%%\n",
			res.Crashes, res.MessagesLost, res.Availability*100)
		fmt.Printf("goodput              %.3f txns/s per available second (recovery %.0f ms total)\n",
			res.GoodputPerSec, res.RecoveryTimeMs)
		fmt.Printf("in-doubt             %.0f ms over %d windows, %.0f ms spent blocked behind in-doubt locks\n",
			res.InDoubtTimeMs, res.InDoubtWindows, res.BlockedInDoubtMs)
	}
	if cfg.Breakdown {
		printBreakdown(res, m.Breakdown())
	}
	if *breakdownOut != "" {
		f, err := os.Create(*breakdownOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snap := m.Breakdown()
		if strings.HasSuffix(*breakdownOut, ".csv") {
			err = ddbm.WriteBreakdownCSV(f, snap)
		} else {
			err = ddbm.WriteBreakdownJSONL(f, snap)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("breakdown detail     %d phase rows, %d cause rows -> %s\n",
			len(snap.Phases), len(snap.Causes), *breakdownOut)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if strings.HasSuffix(*traceOut, ".jsonl") {
			err = ddbm.WriteTraceJSONL(f, tracer.Events())
		} else {
			err = ddbm.WriteChromeTrace(f, tracer.Events(), cfg.NumProcNodes)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace                %d events -> %s\n", tracer.Len(), *traceOut)
	}
	if series != nil {
		var cpu, disk float64
		for i := 0; i < cfg.NumProcNodes; i++ {
			cpu += series.MeanCPUUtil(i, cfg.WarmupMs, cfg.SimTimeMs)
			disk += series.MeanDiskUtil(i, cfg.WarmupMs, cfg.SimTimeMs)
		}
		cpu /= float64(cfg.NumProcNodes)
		disk /= float64(cfg.NumProcNodes)
		fmt.Printf("probes               %d samples every %g ms; sampled proc CPU %.1f%%, proc disk %.1f%%\n",
			series.Len(), *probeInterval, cpu*100, disk*100)
	}
	if cfg.Audit {
		fmt.Printf("serializability      %d txns audited, %d anomalies\n",
			res.AuditedTxns, len(res.AuditViolations))
		for i, v := range res.AuditViolations {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(res.AuditViolations)-5)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	}
}

// printBreakdown renders the "where the milliseconds go" report: every
// phase of the mean committed response in canonical order with its share,
// then the abort-cause table with per-node attribution. Phases come from
// the Result's merged maps (which sum to the mean response by the
// reconciliation invariant); cause rows come from the snapshot so the
// attributing node is visible.
func printBreakdown(res ddbm.Result, snap *ddbm.BreakdownSnapshot) {
	fmt.Println()
	fmt.Println("time breakdown       mean ms    p99 ms   % of resp")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		name := p.String()
		mean := res.PhaseMeanMs[name]
		share := 0.0
		if res.MeanResponseMs > 0 {
			share = 100 * mean / res.MeanResponseMs
		}
		fmt.Printf("  %-18s %9.2f %9.2f      %5.1f%%\n", name, mean, res.PhaseP99Ms[name], share)
	}
	if res.Aborts == 0 {
		fmt.Println("abort causes         none (0 aborts)")
		return
	}
	fmt.Println("abort causes         count      share  nodes")
	for c := cc.Cause(0); c < cc.NumCauses; c++ {
		name := c.String()
		n, ok := res.AbortsByCause[name]
		if !ok {
			continue
		}
		var nodes []string
		for _, row := range snap.Causes {
			if row.Cause == name {
				nodes = append(nodes, fmt.Sprintf("%d:%d", row.Node, row.Count))
			}
		}
		fmt.Printf("  %-18s %6d     %5.1f%%  %s\n",
			name, n, 100*float64(n)/float64(res.Aborts), strings.Join(nodes, " "))
	}
}
