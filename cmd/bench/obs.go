package main

import (
	"fmt"
	"os"
	"time"

	"ddbm"
)

// ObsResult records one run of the tracer-overhead pair: the same
// configuration simulated with instrumentation off and on. The disabled
// row is the baseline; the traced row carries the wall-time ratio against
// it plus the volume of observations recorded, so a regression in either
// the disabled fast path or the enabled recording cost shows up in the
// trajectory.
type ObsResult struct {
	Mode            string  `json:"mode"` // "disabled" or "traced"
	SimMs           float64 `json:"sim_ms"`
	WallMs          float64 `json:"wall_ms"`
	WallVsDisabled  float64 `json:"wall_vs_disabled,omitempty"`
	TraceEvents     int     `json:"trace_events,omitempty"`
	EventsPerWallMs float64 `json:"events_per_wall_ms,omitempty"`
	ProbeSamples    int     `json:"probe_samples,omitempty"`
	Commits         int64   `json:"commits"`
}

// ObsReport is the BENCH_obs.json schema.
type ObsReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	Runs        []ObsResult `json:"runs"`
}

// obsConfig is the paper's baseline 8-node machine under 2PL at a 4-second
// think time — the same shape as the kernel macro-benchmark, so the two
// trajectories stay comparable.
func obsConfig(simSeconds float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.ThinkTimeMs = 4000
	cfg.SimTimeMs = simSeconds * 1000
	cfg.WarmupMs = cfg.SimTimeMs / 8
	cfg.Seed = 7
	return cfg
}

// runObsSuite runs the overhead triple: one plain run, the identical
// configuration with tracing and 100 ms probes enabled, and the identical
// configuration with breakdown accounting enabled.
func runObsSuite(simSeconds float64) ([]ObsResult, error) {
	cfg := obsConfig(simSeconds)

	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	plainRes := m.Run()
	plainWall := float64(time.Since(start).Nanoseconds()) / 1e6
	plain := ObsResult{Mode: "disabled", SimMs: cfg.SimTimeMs, WallMs: plainWall, Commits: plainRes.Commits}

	m, err = ddbm.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	tr := m.EnableTracing()
	ts := m.EnableProbes(100)
	start = time.Now()
	tracedRes := m.Run()
	tracedWall := float64(time.Since(start).Nanoseconds()) / 1e6
	traced := ObsResult{
		Mode:         "traced",
		SimMs:        cfg.SimTimeMs,
		WallMs:       tracedWall,
		TraceEvents:  tr.Len(),
		ProbeSamples: ts.Len(),
		Commits:      tracedRes.Commits,
	}
	if plainWall > 0 {
		traced.WallVsDisabled = tracedWall / plainWall
	}
	if tracedWall > 0 {
		traced.EventsPerWallMs = float64(tr.Len()) / tracedWall
	}
	if plainRes.Commits != tracedRes.Commits {
		return nil, fmt.Errorf("tracing perturbed the run: %d commits plain vs %d traced", plainRes.Commits, tracedRes.Commits)
	}

	bdCfg := cfg
	bdCfg.Breakdown = true
	m, err = ddbm.NewMachine(bdCfg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	bdRes := m.Run()
	bdWall := float64(time.Since(start).Nanoseconds()) / 1e6
	bd := ObsResult{Mode: "breakdown", SimMs: cfg.SimTimeMs, WallMs: bdWall, Commits: bdRes.Commits}
	if plainWall > 0 {
		bd.WallVsDisabled = bdWall / plainWall
	}
	if plainRes.Commits != bdRes.Commits {
		return nil, fmt.Errorf("breakdown accounting perturbed the run: %d commits plain vs %d", plainRes.Commits, bdRes.Commits)
	}

	fmt.Fprintf(os.Stderr, "obs  disabled  %8.0f wall-ms\n", plain.WallMs)
	fmt.Fprintf(os.Stderr, "obs  traced    %8.0f wall-ms (%.2fx)  %d events  %d samples\n",
		traced.WallMs, traced.WallVsDisabled, traced.TraceEvents, traced.ProbeSamples)
	fmt.Fprintf(os.Stderr, "obs  breakdown %8.0f wall-ms (%.2fx)\n", bd.WallMs, bd.WallVsDisabled)
	return []ObsResult{plain, traced, bd}, nil
}
