// Command bench is the kernel performance trajectory harness. It runs the
// simulation kernel microbenchmarks (event throughput, process switch,
// mailbox round trip) plus one end-to-end macro-benchmark of a full
// ddbm.Run, and writes the numbers to a JSON file so successive PRs can
// track ns/op, allocs/op, events/sec and the sim-time/wall-time ratio over
// time.
//
// A second suite benchmarks the core transaction path — the commit and
// abort paths of every commit protocol — and writes BENCH_core.json, so the
// trajectory covers the protocol layer as well as the kernel. A third
// suite measures the observability layer — the same run with tracing and
// probes off and on — and writes BENCH_obs.json. A fourth suite measures
// the lock-manager contention hot path — acquire/release, waits-for
// extraction, victim selection — and writes BENCH_cc.json. A fifth suite
// measures the fault subsystem's cost ladder — no injector, armed-but-idle
// injector, live crashes, message errors — and writes BENCH_fault.json.
//
//	go run ./cmd/bench                 # writes BENCH_kernel.json + BENCH_core.json + BENCH_obs.json + BENCH_cc.json + BENCH_fault.json
//	go run ./cmd/bench -o out.json -benchtime 2s
//	go run ./cmd/bench -suite core     # only the transaction-path suite
//	go run ./cmd/bench -suite obs      # only the tracer-overhead suite
//	go run ./cmd/bench -suite cc       # only the lock-manager suite
//	go run ./cmd/bench -suite fault    # only the fault-subsystem suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ddbm"
	"ddbm/internal/sim"
)

// MicroResult records one testing.Benchmark run.
type MicroResult struct {
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	OpsPerSecond float64 `json:"ops_per_second"`
}

// MacroResult records one full simulation run of the paper's baseline
// machine configuration.
type MacroResult struct {
	Algorithm        string  `json:"algorithm"`
	SimMs            float64 `json:"sim_ms"`
	WallMs           float64 `json:"wall_ms"`
	SimPerWall       float64 `json:"sim_ms_per_wall_ms"`
	EventsDispatched uint64  `json:"events_dispatched"`
	EventsPerWallSec float64 `json:"events_per_wall_sec"`
	ThroughputTPS    float64 `json:"throughput_tps"`
	Commits          int64   `json:"commits"`
}

// Report is the BENCH_kernel.json schema.
type Report struct {
	GeneratedAt string                 `json:"generated_at"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	NumCPU      int                    `json:"num_cpu"`
	Micro       map[string]MicroResult `json:"micro"`
	Macro       MacroResult            `json:"macro"`
}

func micro(r testing.BenchmarkResult) MicroResult {
	ns := float64(r.NsPerOp())
	if r.N > 0 && r.T > 0 {
		ns = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return MicroResult{
		Iterations:   r.N,
		NsPerOp:      ns,
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		OpsPerSecond: ops,
	}
}

// The three micro-benchmark bodies mirror internal/sim/sim_bench_test.go;
// they live here as well because _test.go files cannot be imported.

func benchEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	var t sim.Time
	var fire func()
	fire = func() {
		t++
		if t < sim.Time(b.N) {
			s.Schedule(t, fire)
		}
	}
	s.Schedule(0, fire)
	b.ResetTimer()
	s.Run(sim.Time(b.N) + 1)
}

func benchProcessSwitch(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	s.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run(sim.Time(b.N) + 2)
}

func benchMailbox(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	m := s.NewMailbox()
	s.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			m.Recv(p)
		}
	})
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			m.Send(i)
			p.Delay(1)
		}
	})
	b.ResetTimer()
	s.Run(sim.Time(b.N) + 2)
}

// runMacro simulates the paper's baseline 8-node machine under 2PL at a
// 4-second think time and reports how much simulated time one wall-clock
// unit buys.
func runMacro(simSeconds float64) (MacroResult, error) {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.ThinkTimeMs = 4000
	cfg.SimTimeMs = simSeconds * 1000
	cfg.WarmupMs = cfg.SimTimeMs / 8
	cfg.Seed = 7
	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		return MacroResult{}, err
	}
	start := time.Now()
	res := m.Run()
	wall := time.Since(start)
	wallMs := float64(wall.Nanoseconds()) / 1e6
	events := m.Sim().EventsDispatched()
	return MacroResult{
		Algorithm:        cfg.Algorithm.String(),
		SimMs:            cfg.SimTimeMs,
		WallMs:           wallMs,
		SimPerWall:       cfg.SimTimeMs / wallMs,
		EventsDispatched: events,
		EventsPerWallSec: float64(events) / wall.Seconds(),
		ThroughputTPS:    res.ThroughputTPS,
		Commits:          res.Commits,
	}, nil
}

func main() {
	// Register the testing package's flags (test.benchtime in particular) so
	// testing.Benchmark can be tuned from our own -benchtime flag.
	testing.Init()
	out := flag.String("o", "BENCH_kernel.json", "kernel-suite output file ('-' for stdout)")
	coreOut := flag.String("coreo", "BENCH_core.json", "core-suite output file ('-' for stdout)")
	obsOut := flag.String("obso", "BENCH_obs.json", "obs-suite output file ('-' for stdout)")
	ccOut := flag.String("cco", "BENCH_cc.json", "cc-suite output file ('-' for stdout)")
	faultOut := flag.String("faulto", "BENCH_fault.json", "fault-suite output file ('-' for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target duration per microbenchmark")
	macroSec := flag.Float64("macrosec", 240, "simulated seconds for the macro-benchmark run")
	coreSec := flag.Float64("coresec", 120, "simulated seconds per core transaction-path run")
	obsSec := flag.Float64("obssec", 120, "simulated seconds per tracer-overhead run")
	faultSec := flag.Float64("faultsec", 120, "simulated seconds per fault-suite run")
	suite := flag.String("suite", "all", "which suites to run: kernel, core, obs, cc, fault or all")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *suite {
	case "all", "kernel", "core", "obs", "cc", "fault":
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q (want kernel, core, obs, cc, fault or all)\n", *suite)
		os.Exit(2)
	}

	if *suite == "all" || *suite == "fault" {
		runs, err := runFaultSuite(*faultSec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fault suite:", err)
			os.Exit(1)
		}
		rep := FaultReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			Runs:        runs,
		}
		if err := writeJSON(*faultOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *suite == "fault" {
		return
	}

	if *suite == "all" || *suite == "cc" {
		rep := CCReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			Micro:       runCCSuite(),
		}
		if err := writeJSON(*ccOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *suite == "cc" {
		return
	}

	if *suite == "all" || *suite == "obs" {
		runs, err := runObsSuite(*obsSec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs suite:", err)
			os.Exit(1)
		}
		rep := ObsReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			Runs:        runs,
		}
		if err := writeJSON(*obsOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *suite == "obs" {
		return
	}

	if *suite == "all" || *suite == "core" {
		runs, err := runCoreSuite(*coreSec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "core suite:", err)
			os.Exit(1)
		}
		rep := CoreReport{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			Runs:        runs,
		}
		if err := writeJSON(*coreOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *suite == "core" {
		return
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EventThroughput", benchEventThroughput},
		{"ProcessSwitch", benchProcessSwitch},
		{"Mailbox", benchMailbox},
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Micro:       make(map[string]MicroResult, len(benches)),
	}

	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		m := micro(r)
		rep.Micro[bm.name] = m
		fmt.Fprintf(os.Stderr, "%-16s %10d iters  %8.1f ns/op  %4d B/op  %3d allocs/op  %12.0f ops/s\n",
			bm.name, m.Iterations, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.OpsPerSecond)
	}

	macro, err := runMacro(*macroSec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macro-benchmark:", err)
		os.Exit(1)
	}
	rep.Macro = macro
	fmt.Fprintf(os.Stderr, "macro %s: %.0f sim-ms in %.0f wall-ms (%.1fx real time), %d events, %.0f events/wall-sec, %.2f tps\n",
		macro.Algorithm, macro.SimMs, macro.WallMs, macro.SimPerWall,
		macro.EventsDispatched, macro.EventsPerWallSec, macro.ThroughputTPS)

	if err := writeJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeJSON marshals v with indentation to path ('-' for stdout).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
	return nil
}
