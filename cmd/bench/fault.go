package main

import (
	"fmt"
	"os"
	"time"

	"ddbm"
)

// FaultResult records one fault-suite benchmark run: the paper's baseline
// machine under 2PL/2PC with logging, run fault-free, with an armed-but-
// idle injector (the cost of the fault seams themselves), under a live
// crash-repair schedule, and under message loss/duplication. The first
// two rows should be indistinguishable — the armed-idle overhead is the
// price every faulty experiment pays before any fault fires — and the
// wall-clock per-commit cost across rows tracks what the fault machinery
// adds to the simulator's trajectory.
type FaultResult struct {
	Mode            string  `json:"mode"`
	SimMs           float64 `json:"sim_ms"`
	WallMs          float64 `json:"wall_ms"`
	Commits         int64   `json:"commits"`
	WallNsPerCommit float64 `json:"wall_ns_per_commit"`
	Crashes         int64   `json:"crashes"`
	MessagesLost    int64   `json:"messages_lost"`
	Availability    float64 `json:"availability"`
	GoodputPerSec   float64 `json:"goodput_per_sec"`
	InDoubtTimeMs   float64 `json:"in_doubt_time_ms"`
	RecoveryTimeMs  float64 `json:"recovery_time_ms"`
}

// FaultReport is the BENCH_fault.json schema.
type FaultReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Runs        []FaultResult `json:"runs"`
}

// faultBaseConfig is the shared machine for every fault-suite row: the
// baseline 8-node machine under 2PL/2PC at a 4-second think time with
// logging modeled (recovery replays the forced log, so every row pays
// the same logging cost and only the fault machinery varies).
func faultBaseConfig(simSeconds float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.ThinkTimeMs = 4000
	cfg.ModelLogging = true
	cfg.SimTimeMs = simSeconds * 1000
	cfg.WarmupMs = cfg.SimTimeMs / 8
	cfg.Seed = 7
	return cfg
}

// runFaultMode runs one row and extracts its metrics.
func runFaultMode(mode string, cfg ddbm.Config) (FaultResult, error) {
	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		return FaultResult{}, err
	}
	start := time.Now()
	res := m.Run()
	wall := time.Since(start)
	out := FaultResult{
		Mode:           mode,
		SimMs:          cfg.SimTimeMs,
		WallMs:         float64(wall.Nanoseconds()) / 1e6,
		Commits:        res.Commits,
		Crashes:        res.Crashes,
		MessagesLost:   res.MessagesLost,
		Availability:   res.Availability,
		GoodputPerSec:  res.GoodputPerSec,
		InDoubtTimeMs:  res.InDoubtTimeMs,
		RecoveryTimeMs: res.RecoveryTimeMs,
	}
	if res.Commits > 0 {
		out.WallNsPerCommit = float64(wall.Nanoseconds()) / float64(res.Commits)
	}
	return out, nil
}

// runFaultSuite benchmarks the fault subsystem's cost ladder: no injector,
// armed-but-idle injector, live node crashes, and message errors.
func runFaultSuite(simSeconds float64) ([]FaultResult, error) {
	disabled := faultBaseConfig(simSeconds)

	armed := faultBaseConfig(simSeconds)
	armed.Faults.Enabled = true
	armed.Faults.NodeMTTFMs = 100 * armed.SimTimeMs
	armed.Faults.FixedInterFailure = true
	armed.Faults.MTTRMs = 1_000
	armed.Faults.DetectMs = 100

	crashes := faultBaseConfig(simSeconds)
	crashes.Faults.Enabled = true
	crashes.Faults.NodeMTTFMs = 30_000
	crashes.Faults.MTTRMs = 2_000
	crashes.Faults.DetectMs = 500

	msgErrors := faultBaseConfig(simSeconds)
	msgErrors.Faults.Enabled = true
	msgErrors.Faults.DropProb = 0.02
	msgErrors.Faults.DupProb = 0.02
	msgErrors.Faults.RetransmitDelayMs = 50

	var runs []FaultResult
	for _, mc := range []struct {
		mode string
		cfg  ddbm.Config
	}{
		{"disabled", disabled},
		{"armed-idle", armed},
		{"crashes", crashes},
		{"msg-errors", msgErrors},
	} {
		r, err := runFaultMode(mc.mode, mc.cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "fault %-10s %8.0f ns/commit  %6d commits  %3d crashes  %5d lost  avail %.3f  recovery %6.0f ms\n",
			r.Mode, r.WallNsPerCommit, r.Commits, r.Crashes, r.MessagesLost, r.Availability, r.RecoveryTimeMs)
		runs = append(runs, r)
	}
	return runs, nil
}
