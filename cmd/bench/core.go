package main

import (
	"fmt"
	"os"
	"time"

	"ddbm"
)

// CoreResult records one transaction-path benchmark run: a full machine
// simulation dominated by either the commit path (no contention to speak
// of) or the abort path (a deliberately overloaded database), for one
// commit protocol. Alongside the wall-clock cost per transaction it keeps
// the per-commit message and forced-log-write counts, so protocol-layer
// regressions show up in the trajectory even when they are too cheap to
// move wall time.
type CoreResult struct {
	Protocol           string  `json:"protocol"`
	Path               string  `json:"path"`
	SimMs              float64 `json:"sim_ms"`
	WallMs             float64 `json:"wall_ms"`
	Commits            int64   `json:"commits"`
	Aborts             int64   `json:"aborts"`
	WallNsPerCommit    float64 `json:"wall_ns_per_commit"`
	MessagesPerCommit  float64 `json:"messages_per_commit"`
	LogForcesPerCommit float64 `json:"log_forces_per_commit"`
	AbortPathLogForces int64   `json:"abort_path_log_forces"`
}

// CoreReport is the BENCH_core.json schema.
type CoreReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	Runs        []CoreResult `json:"runs"`
}

// commitPathConfig is the paper's baseline machine under 2PL at think 0 with
// the large database: essentially every transaction commits, so the run
// exercises the full work → prepare → decide → resolve pipeline.
func commitPathConfig(proto ddbm.CommitProtocol, simSeconds float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.CommitProtocol = proto
	cfg.PagesPerFile = 1200
	cfg.ThinkTimeMs = 0
	cfg.ModelLogging = true
	cfg.SimTimeMs = simSeconds * 1000
	cfg.WarmupMs = cfg.SimTimeMs / 8
	cfg.Seed = 7
	return cfg
}

// abortPathConfig shrinks the database until deadlock aborts are routine, so
// the abort fan-out (and the variants' abort-path logging) dominates.
func abortPathConfig(proto ddbm.CommitProtocol, simSeconds float64) ddbm.Config {
	cfg := commitPathConfig(proto, simSeconds)
	cfg.NumProcNodes = 4
	cfg.NumTerminals = 32
	cfg.PagesPerFile = 40
	return cfg
}

func runCorePath(path string, cfg ddbm.Config) (CoreResult, error) {
	m, err := ddbm.NewMachine(cfg)
	if err != nil {
		return CoreResult{}, err
	}
	start := time.Now()
	res := m.Run()
	wall := time.Since(start)
	out := CoreResult{
		Protocol:           cfg.CommitProtocol.String(),
		Path:               path,
		SimMs:              cfg.SimTimeMs,
		WallMs:             float64(wall.Nanoseconds()) / 1e6,
		Commits:            res.Commits,
		Aborts:             res.Aborts,
		AbortPathLogForces: res.AbortPathLogForces,
	}
	if res.Commits > 0 {
		out.WallNsPerCommit = float64(wall.Nanoseconds()) / float64(res.Commits)
		out.MessagesPerCommit = float64(res.MessagesSent) / float64(res.Commits)
		out.LogForcesPerCommit = float64(res.LogForces) / float64(res.Commits)
	}
	return out, nil
}

// runCoreSuite benchmarks the commit and abort paths of every commit
// protocol and reports the per-transaction costs.
func runCoreSuite(simSeconds float64) ([]CoreResult, error) {
	var runs []CoreResult
	for _, proto := range ddbm.CommitProtocols() {
		for _, pc := range []struct {
			path string
			cfg  ddbm.Config
		}{
			{"commit", commitPathConfig(proto, simSeconds)},
			{"abort", abortPathConfig(proto, simSeconds)},
		} {
			r, err := runCorePath(pc.path, pc.cfg)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "core %-3s %-6s %8.0f ns/commit  %6.2f msgs/commit  %5.2f forces/commit  %6d commits  %6d aborts\n",
				r.Protocol, r.Path, r.WallNsPerCommit, r.MessagesPerCommit, r.LogForcesPerCommit, r.Commits, r.Aborts)
			runs = append(runs, r)
		}
	}
	return runs, nil
}
