package main

import (
	"fmt"
	"os"
	"testing"

	"ddbm/internal/cc"
	"ddbm/internal/db"
)

// CCReport is the BENCH_cc.json schema: microbenchmarks of the lock-manager
// contention hot path — acquire/release, waits-for extraction and deadlock
// victim selection — at the paper's high-contention scale. Allocs/op is the
// headline number: every path here is expected to hold at zero once warm.
type CCReport struct {
	GeneratedAt string                 `json:"generated_at"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	Micro       map[string]MicroResult `json:"micro"`
}

// The benchmark bodies mirror internal/cc/lock_bench_test.go; they live
// here as well because _test.go files cannot be imported.

func ccCohort(id int64) *cc.CohortMeta {
	return &cc.CohortMeta{Txn: &cc.TxnMeta{ID: id, TS: id}}
}

// ccContendedTable builds a lock table at the paper's high-contention
// scale: 128 holder transactions each pinning one exclusively held page
// plus 15 uncontended shared pages, and 128 more transactions queued
// behind the exclusive pages — 256 active transactions, 2176 live locks,
// 128 contended pages, 128 waits-for edges.
func ccContendedTable() *cc.LockTable {
	lt := cc.NewLockTable()
	for i := 0; i < 128; i++ {
		h := ccCohort(int64(i + 1))
		lt.Lock(h, db.PageID{File: i % 8, Page: i / 8}, cc.LockX)
		for j := 0; j < 15; j++ {
			lt.Lock(h, db.PageID{File: i % 8, Page: 40 + (i/8)*15 + j}, cc.LockS)
		}
	}
	for i := 0; i < 128; i++ {
		w := ccCohort(int64(200 + i))
		lt.Lock(w, db.PageID{File: i % 8, Page: i / 8}, cc.LockX)
	}
	return lt
}

func benchCCLockUnlockUncontended(b *testing.B) {
	b.ReportAllocs()
	lt := cc.NewLockTable()
	co := ccCohort(1)
	page := db.PageID{File: 0, Page: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Lock(co, page, cc.LockX)
		lt.ReleaseAll(co)
	}
}

func benchCCLockManyPages(b *testing.B) {
	b.ReportAllocs()
	lt := cc.NewLockTable()
	co := ccCohort(1)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pages {
			lt.Lock(co, p, cc.LockS)
		}
		lt.ReleaseAll(co)
	}
}

func benchCCWaitsForEdges(b *testing.B) {
	b.ReportAllocs()
	lt := ccContendedTable()
	buf := lt.AppendWaitsForEdges(0, nil)
	if len(buf) != 128 {
		b.Fatalf("expected 128 edges, got %d", len(buf))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = lt.AppendWaitsForEdges(0, buf[:0])
	}
}

func benchCCReleaseAll(b *testing.B) {
	b.ReportAllocs()
	lt := ccContendedTable()
	co := ccCohort(999)
	pages := make([]db.PageID, 64)
	for i := range pages {
		pages[i] = db.PageID{File: i % 8, Page: 500 + i/8}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pages {
			lt.Lock(co, p, cc.LockX)
		}
		lt.ReleaseAll(co)
	}
}

func benchCCFindVictims(b *testing.B) {
	b.ReportAllocs()
	txns := make([]*cc.TxnMeta, 32)
	for i := range txns {
		txns[i] = &cc.TxnMeta{ID: int64(i + 1), TS: int64(i + 1)}
	}
	var es []cc.Edge
	for i := 0; i+1 < len(txns); i++ {
		es = append(es, cc.Edge{Waiter: txns[i], Blocker: txns[i+1]})
	}
	es = append(es, cc.Edge{Waiter: txns[len(txns)-1], Blocker: txns[0]})
	var det cc.Detector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range txns {
			t.AbortRequested = false
		}
		det.FindVictims(es)
	}
}

// runCCSuite runs the lock-manager microbenchmarks and reports them.
func runCCSuite() map[string]MicroResult {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"LockUnlockUncontended", benchCCLockUnlockUncontended},
		{"LockManyPages", benchCCLockManyPages},
		{"WaitsForEdges", benchCCWaitsForEdges},
		{"ReleaseAll", benchCCReleaseAll},
		{"FindVictims", benchCCFindVictims},
	}
	out := make(map[string]MicroResult, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		m := micro(r)
		out[bm.name] = m
		fmt.Fprintf(os.Stderr, "cc %-22s %10d iters  %8.1f ns/op  %4d B/op  %3d allocs/op  %12.0f ops/s\n",
			bm.name, m.Iterations, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.OpsPerSecond)
	}
	return out
}
