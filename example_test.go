package ddbm_test

import (
	"fmt"

	"ddbm"
)

// Example runs a small configuration end to end.
func Example() {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.BTO
	cfg.NumProcNodes = 2
	cfg.NumTerminals = 4
	cfg.ThinkTimeMs = 1000
	cfg.SimTimeMs = 30_000
	cfg.WarmupMs = 3_000

	res, err := ddbm.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("committed:", res.Commits > 0)
	fmt.Println("aborts counted:", res.Aborts >= 0)
	// Output:
	// committed: true
	// aborts counted: true
}

// ExampleParseAlgorithm shows name round-tripping.
func ExampleParseAlgorithm() {
	for _, name := range []string{"2PL", "WW", "BTO", "OPT", "NO_DC"} {
		a, err := ddbm.ParseAlgorithm(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(a)
	}
	// Output:
	// 2PL
	// WW
	// BTO
	// OPT
	// NO_DC
}

// ExampleDefaultConfig shows the paper's Table 4 database dimensions.
func ExampleDefaultConfig() {
	cfg := ddbm.DefaultConfig()
	fmt.Println("files:", cfg.NumRelations*cfg.PartsPerRelation)
	fmt.Println("database pages:", cfg.NumRelations*cfg.PartsPerRelation*cfg.PagesPerFile)
	fmt.Println("terminals:", cfg.NumTerminals)
	// Output:
	// files: 64
	// database pages: 19200
	// terminals: 128
}
