#!/usr/bin/env bash
# ci.sh — the checks every PR must pass, in increasing order of cost:
# vet, build, full test suite, a race pass over the experiments package
# (runGrid fans simulations out across host goroutines — real race
# territory), and a short kernel benchmark smoke so a catastrophic
# performance regression fails loudly even without reading numbers.
#
# For the tracked performance numbers, run the trajectory harness instead:
#   go run ./cmd/bench        # rewrites BENCH_kernel.json
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (experiments goroutine fan-out)"
go test -race -count=1 -run 'TestRunGrid|TestCfgKey' ./experiments/

echo "== kernel benchmark smoke"
go test -run '^$' -bench 'BenchmarkEventThroughput|BenchmarkProcessSwitch|BenchmarkMailbox' \
  -benchtime 0.1s -benchmem ./internal/sim/

echo "CI OK"
