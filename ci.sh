#!/usr/bin/env bash
# ci.sh — the checks every PR must pass, in increasing order of cost:
# gofmt, vet, the determinism linter (ddbmlint statically enforces the
# invariants the golden tests can only probe dynamically), build, full
# test suite, a race pass over the whole module (runGrid fans simulations
# out across host goroutines — real race territory; -short skips only the
# marathon paper-shape reproductions, which the Tiny studies cover and
# which would push the race pass past the go test timeout), and a kernel
# benchmark smoke so a catastrophic performance regression fails loudly
# even without reading numbers.
#
# For the tracked performance numbers, run the trajectory harness instead:
#   go run ./cmd/bench        # rewrites BENCH_kernel.json
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== ddbmlint (determinism invariants)"
# The full check suite: the per-file checks plus the interprocedural ones —
# taint-wall-clock and taint-rand (exempt-scope helpers that transitively
# read the host clock or the global rand source are findings at the
# boundary call into simulation scope) and hotpath-alloc (//ddbmlint:hotpath
# functions must be statically allocation-free, transitively).
go run ./cmd/ddbmlint ./...

echo "== ddbmlint fixture harness"
# The // want-comment fixtures under testdata/lint and testdata/interp pin
# every check's exact finding set, including both taint checks and
# hotpath-alloc, plus the output-determinism guarantee and the CLI's -json
# round-trip.
go test -run 'TestFixtures|TestInterprocFixtures|TestLintDeterminism|TestLoaderFailures' ./internal/lint/
go test -run 'TestRunJSONRoundTrip|TestRunExitCodes' ./cmd/ddbmlint/

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== kernel benchmark smoke"
go test -run '^$' -bench 'BenchmarkEventThroughput|BenchmarkProcessSwitch|BenchmarkMailbox' \
  -benchtime 0.1s -benchmem ./internal/sim/

echo "== lock-manager benchmark smoke"
# The contention hot path must stay allocation-free: TestSteadyStateAllocFree
# pins acquire/release, block/promote, waits-for extraction, withdrawal and
# victim selection at 0 allocs/op; the benchmarks catch gross slowdowns.
go test -run 'TestSteadyStateAllocFree' \
  -bench 'BenchmarkWaitsForEdges|BenchmarkReleaseAll|BenchmarkFindVictims' \
  -benchtime 0.1s -benchmem ./internal/cc/

echo "== transaction-path allocation pin"
# The end-to-end transaction path (terminals, plans, attempts, envelopes,
# commit fan-out, locks, CPU/disk queues, metrics) must stay allocation-free
# in steady state across every commit-protocol variant, and the packages it
# spans must keep their hot paths statically auditable by ddbmlint.
go test -run 'TestTxnPathAllocFree' -count=1 ./internal/core/
go run ./cmd/ddbmlint ./internal/core/ ./internal/commit/ ./internal/network/ ./internal/workload/

echo "== commit-protocol sweep smoke"
# All three 2PC variants end-to-end at a tiny time scale: a wedged protocol
# (lost vote, missing ack) deadlocks the simulation and fails loudly here.
go run ./cmd/experiments -fig cps -scale 0.02 -q

echo "== trace smoke"
# A short traced + probed run must export a structurally valid Chrome
# trace: JSON parses, spans nest, cohort/commit-phase spans sit under
# their attempt. tracecheck exits non-zero on any violation.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/ddbsim -simtime 30 -warmup 5 -think 4 \
  -trace-out "$tracedir/smoke.json" -probe-interval 100 >/dev/null
go run ./cmd/tracecheck "$tracedir/smoke.json"

echo "== breakdown smoke"
# Time-breakdown accounting end to end: the reconciliation property pins
# (every committed attempt's phase ledger must sum to its response time
# across all commit-protocol variants, and breakdown on/off must be
# bit-identical), then a short -breakdown report + CSV export and the
# decomposition figure at a tiny scale — a phase attribution that no
# longer telescopes or a broken exporter fails loudly here.
go test -run 'TestBreakdown' -count=1 ./internal/core/
go run ./cmd/ddbsim -simtime 30 -warmup 5 -think 4 \
  -breakdown -breakdown-out "$tracedir/bd.csv" >/dev/null
go run ./cmd/experiments -fig bd -scale 0.02 -q >/dev/null

echo "== fault-tolerance smoke"
# The fault subsystem end to end: a race pass over the injector and the
# recovery machinery, the fault property tests (stream isolation, crash
# recovery under every protocol, cause accounting, golden-trace bit
# identity), then the Ext K mini-grid — a wedged crash path (a coordinator
# parked on a dead cohort, a restart that never rejoins) deadlocks the
# simulation and fails loudly here.
go test -race -count=1 ./internal/fault/ ./internal/recovery/
go test -run 'TestFault' -count=1 ./internal/core/
go run ./cmd/experiments -fig ft -scale 0.02 -q >/dev/null
go run ./cmd/ddbsim -simtime 60 -warmup 10 -think 4 -logging -mttf 20 >/dev/null

echo "CI OK"
