module ddbm

go 1.22
