// Package retention exercises the event-retention check: storing
// *sim.Event in a struct field or package variable outside internal/sim
// violates the free-list dead-handle contract.
package retention

import "ddbm/internal/sim"

type holder struct {
	ev *sim.Event // want "struct field retains"
}

type nested struct {
	evs []*sim.Event // want "struct field retains"
}

var pending *sim.Event // want "package variable retains"

type audited struct {
	//ddbmlint:allow event-retention fixture: nilled before the handle dies
	ev *sim.Event
}

// Locals and return values track a live handle only briefly: clean.
func use(s *sim.Sim) *sim.Event {
	e := s.After(1, func() {})
	return e
}
