package wallclock

import "time"

// _test.go files may use the host clock: harness timing is not
// simulation state, so nothing here is flagged.
func sleepHelper() { time.Sleep(time.Millisecond) }
