// Package wallclock exercises the no-wall-clock check: reading or
// waiting on the host clock is flagged, pure duration arithmetic is not.
package wallclock

import "time"

const tick = 10 * time.Millisecond

func Bad() time.Time {
	time.Sleep(tick)  // want "wall-clock time.Sleep"
	return time.Now() // want "wall-clock time.Now"
}

func AlsoBad(t time.Time) time.Duration {
	return time.Since(t) // want "wall-clock time.Since"
}

func Fine(d time.Duration) float64 { return d.Seconds() }
