// Package fault mirrors the repo's internal/fault package path through
// the default scope table: the injector is simulation code, so the
// wall-clock ban, the global-rand ban and the hot-path allocation audit
// all apply in full — fault schedules must come from the seeded
// substreams on simulated time, and the armed-injector seams that ride
// the transaction path must not allocate.
package fault

import (
	"math/rand"
	"time"
)

// Injector is a shape-alike of the real injector for the checks to bite.
type Injector struct {
	down []bool
}

// scheduleBad draws fault timing from the host: both the clock read and
// the global rand source are flagged — the real injector owns dedicated
// *rand.Rand substreams and advances only on simulated time.
func scheduleBad() float64 {
	_ = time.Now()        // want "wall-clock time.Now"
	return rand.Float64() // want "global math/rand"
}

// Down is consulted on every cross-node send, so it is hot-path audited:
// the map allocation is a finding, the annotated append is not.
//
//ddbmlint:hotpath fixture per-send down check
func (inj *Injector) Down(node int) bool {
	seen := map[int]bool{} // want "hotpath-alloc"
	seen[node] = true
	if node >= len(inj.down) {
		inj.down = append(inj.down, false) //ddbmlint:allow hotpath-alloc fixture cold growth branch
	}
	return inj.down[node]
}

var _ = scheduleBad
