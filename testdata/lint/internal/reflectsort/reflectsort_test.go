// Test files are exempt from no-reflect-sort via the scope table: test
// helpers may sort however is convenient, so nothing here is flagged.
package reflectsort

import (
	"sort"
	"testing"
)

func TestHelperMaySortReflectively(t *testing.T) {
	xs := []int{3, 1, 2}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	if xs[0] != 1 {
		t.Fatal("sorted wrong")
	}
}
