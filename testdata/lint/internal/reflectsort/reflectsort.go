// Package reflectsort exercises the no-reflect-sort check: reflection-based
// sort.Slice/sort.SliceStable are flagged in internal/ library code, while
// the generic slices helpers and interface-based sort.Sort are not.
package reflectsort

import (
	"cmp"
	"slices"
	"sort"
)

func Bad(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "reflection-based sort.Slice"
}

func BadStable(xs []string) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "reflection-based sort.SliceStable"
}

func FineGeneric(xs []int) {
	slices.SortFunc(xs, func(a, b int) int { return cmp.Compare(a, b) })
	slices.Sort(xs)
}

func FineInterface(xs sort.Interface) {
	sort.Sort(xs)
}

// Audited escapes must keep working for this check like any other.
func FineAnnotated(xs []int) {
	//ddbmlint:allow no-reflect-sort exercising the annotation escape for this check
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
