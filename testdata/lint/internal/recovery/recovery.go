// Package recovery mirrors the repo's internal/recovery package path
// through the default scope table: restart and replay are simulation
// code, so the wall-clock ban and the event-retention contract apply —
// recovery waits on simulated delays only, and a restart process may not
// stash *sim.Event handles past their firing.
package recovery

import (
	"time"

	"ddbm/internal/sim"
)

// restart is a shape-alike of the real per-node restart state.
type restart struct {
	repair *sim.Event // want "struct field retains"
}

// replayBad measures replay against the host clock instead of charging
// simulated time; both reads are flagged.
func replayBad(started time.Time) time.Duration {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
	return time.Since(started)   // want "wall-clock time.Since"
}

// replayFine is pure duration arithmetic over simulated quantities.
func replayFine(records int, perRecordMs float64) float64 {
	return float64(records) * perRecordMs
}

var (
	_ = restart{}
	_ = replayBad
	_ = replayFine
)
