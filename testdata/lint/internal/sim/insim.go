// Package insim stands in for the scheduler package: the fixture path
// fixture/internal/sim is exempt from the goroutine and event-retention
// checks, so nothing here is flagged.
package insim

type resumable struct {
	wake chan struct{}
}

func spawn(f func()) {
	go f()
}

var _ = spawn
var _ = resumable{}
