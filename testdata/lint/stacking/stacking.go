// Package stacking exercises annotation stacking: one site flagged by
// two different checks suppresses both, either with two clauses chained
// in one comment or with separate comment lines stacked above the site.
package stacking

import "time"

// twoChecksOneLine hits no-naked-goroutine and no-wall-clock on the same
// line; one chained comment suppresses both.
func twoChecksOneLine() {
	go time.Sleep(1) //ddbmlint:allow no-naked-goroutine fixture audits stacking ddbmlint:allow no-wall-clock fixture audits stacking
}

// stackedLines suppresses the same double finding with two comment lines
// stacked above the site.
func stackedLines() {
	//ddbmlint:allow no-naked-goroutine fixture audits stacked lines
	//ddbmlint:allow no-wall-clock fixture audits stacked lines
	go time.Sleep(1)
}

// halfUsedStack has a stacked annotation that suppresses nothing: the
// goroutine is real, the wall-clock read is not. Each clause is tracked
// independently, so the stale one is still a finding.
func halfUsedStack() {
	//ddbmlint:allow no-wall-clock nothing here reads the clock // want "unused ddbmlint annotation"
	//ddbmlint:allow no-naked-goroutine fixture audits a naked goroutine
	go func() {}()
}

var _ = twoChecksOneLine
var _ = stackedLines
var _ = halfUsedStack
