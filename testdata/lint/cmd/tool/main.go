// Command tool stands in for cmd/...: harnesses measure real work, so
// wall-clock use under fixture/cmd is allowlisted and nothing here is
// flagged.
package main

import "time"

func main() {
	_ = time.Now()
}
