// Command tool stands in for cmd/...: harnesses measure real work, so
// wall-clock use under fixture/cmd is allowlisted and nothing here is
// flagged. Reflection-based sorting is likewise fine off the hot path:
// no-reflect-sort is scoped to fixture/internal only.
package main

import (
	"sort"
	"time"
)

func main() {
	_ = time.Now()
	xs := []int{2, 1}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
