// Package goroutine exercises the no-naked-goroutine check.
package goroutine

func Spawn(f func()) {
	go f() // want "goroutine outside internal/sim"
}

func SpawnAudited(ch chan int) {
	//ddbmlint:allow no-naked-goroutine fixture: the result channel fully synchronizes the handoff
	go func() { ch <- 1 }()
}
