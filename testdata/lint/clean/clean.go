// Package clean holds only legitimate patterns: the harness asserts the
// whole file produces zero diagnostics.
package clean

import (
	"math/rand"
	"sort"
)

func Exists(m map[int]bool) bool {
	for _, v := range m {
		if v {
			return true
		}
	}
	return false
}

func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func Total(m map[string]float64, r *rand.Rand) float64 {
	total := r.Float64()
	for _, v := range m {
		total += v
	}
	return total
}

func OrderedPairs(m map[int]int) [][2]int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pairs := make([][2]int, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, [2]int{k, m[k]})
	}
	return pairs
}
