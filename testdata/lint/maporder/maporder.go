// Package maporder exercises the map-order check: order-sensitive map
// iteration is flagged, the order-insensitive idioms are not.
package maporder

import "sort"

// Pure reads into another map/counter: clean.
func CountValues(m map[string]int) map[int]int {
	hist := make(map[int]int, len(m))
	for _, v := range m {
		hist[v]++
	}
	return hist
}

// Existence checks return constants, so any witness iteration gives the
// same answer: clean.
func HasEmptyKey(m map[string]int) bool {
	for k := range m {
		if k == "" {
			return true
		}
	}
	return false
}

// Collect-then-sort launders map order into a total order: clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deleting while iterating is order-insensitive: clean.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Collected but never sorted: whoever consumes keys sees map order.
func KeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "order-sensitive body"
		keys = append(keys, k)
	}
	return keys
}

// Returns a visited element: which one depends on iteration order.
func AnyKey(m map[string]int) string {
	for k := range m { // want "order-sensitive body"
		return k
	}
	return ""
}

// Calls escape the analysis: flagged unless annotated.
func VisitAll(m map[string]int, f func(string)) {
	for k := range m { // want "order-sensitive body"
		f(k)
	}
}

// The same loop with a stated ordering argument: clean.
func VisitAllAnnotated(m map[string]int, f func(string)) {
	//ddbmlint:ordered fixture: the callback is order-agnostic by contract
	for k := range m {
		f(k)
	}
}
