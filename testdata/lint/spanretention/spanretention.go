// Package spanretention exercises the span-retention check: storing
// *obs.Span in a struct field or package variable outside internal/obs
// violates the tracer's free-list dead-handle contract (spans are reused
// after End). It also pins that no-wall-clock covers obs-consuming code —
// the simulated-time-only discipline has no carve-out outside cmd/.
package spanretention

import (
	"time"

	"ddbm/internal/obs"
)

type holder struct {
	sp *obs.Span // want "struct field retains"
}

type nested struct {
	sps []*obs.Span // want "struct field retains"
}

var open *obs.Span // want "package variable retains"

type audited struct {
	//ddbmlint:allow span-retention fixture: ended and nilled on every exit path
	sp *obs.Span
}

// Locals track a live handle only briefly: clean.
func use(t *obs.Tracer) {
	sp := t.Begin(obs.KindTxn, "attempt", 0, 1, 1)
	sp.End()
}

func wallClock() float64 {
	return float64(time.Now().UnixNano()) // want "wall-clock time.Now"
}
