// Package globalrand exercises the no-global-rand check: the shared,
// host-seeded source is flagged; explicit seeded sources are not.
package globalrand

import "math/rand"

func Bad() int {
	return rand.Intn(10) // want "global math/rand function rand.Intn"
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand function rand.Shuffle"
}

func Fine(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
