// Package annotations exercises annotation hygiene: malformed or stale
// escapes are diagnostics themselves.
package annotations

/*ddbmlint:gibberish something*/ // want "unknown ddbmlint annotation verb"
func a()                         {}

/*ddbmlint:allow no-such-check because*/ // want "unknown check"
func b()                                 {}

/*ddbmlint:ordered*/ // want "without a justification"
func c()             {}

func d(m map[int]int) int {
	n := 0
	/*ddbmlint:ordered this loop was already order-insensitive*/ // want "unused ddbmlint annotation"
	for range m {
		n++
	}
	return n
}

var _ = a
var _ = b
var _ = c
var _ = d
