// Package clockutil stands in for exempt-scope tooling (the cmd/
// harnesses of the real module): the base no-wall-clock check does not
// cover it, so its taint must be caught at the boundary by any caller in
// simulation scope.
package clockutil

import "time"

// Stamp reads the host clock; legal here, tainted for callers.
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed is a transitive wrapper: the taint flows through it.
func Elapsed() int64 { return Stamp() }

// Pure is clock-free; calling it from simulation scope is fine.
func Pure(x int) int { return x + 1 }

// Clock matches simcode.Ticker by method name and signature, so the
// over-approximated interface dispatch reaches its wall-clock read.
type Clock struct{}

// Tick reads the host clock behind an interface.
func (Clock) Tick() int64 { return time.Now().UnixNano() }
