// Package randutil stands in for exempt-scope tooling: the base
// no-global-rand check does not cover it, so a draw from the global
// source here taints every simulation-scope caller.
package randutil

import "math/rand"

// Draw draws from the global source; legal here, tainted for callers.
func Draw(n int) int { return rand.Intn(n) }
