// Package hot exercises hotpath-alloc: //ddbmlint:hotpath functions must
// be statically allocation-free, transitively, with //ddbmlint:allow
// escapes for audited cold branches.
package hot

import "fmt"

type entry struct{ v int }

type table struct {
	scratch []int
	free    []*entry
}

//ddbmlint:hotpath fixture steady-state fill path
func (t *table) fill(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i) // caller-owned buffer: exempt
	}
	t.scratch = append(t.scratch[:0], n) // explicit [:0] reuse: exempt
	return buf
}

//ddbmlint:hotpath fixture free-listed lookup path
func (t *table) lookup(k int) *entry {
	if len(t.free) == 0 {
		return refill(k)
	}
	e := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	e.v = k
	return e
}

// refill is reached from the hot lookup path, so its allocation is a
// finding even though refill itself carries no mark.
func refill(k int) *entry {
	return &entry{v: k} // want "allocation on hot path: composite literal escaping to the heap"
}

//ddbmlint:hotpath fixture enumerates every definite site kind
func sites(t *table, s string, k int) {
	_ = new(entry)                   // want "allocation on hot path: new"
	_ = make([]int, 4)               // want "allocation on hot path: make"
	t.scratch = append(t.scratch, k) // want "allocation on hot path: append growth beyond capacity"
	_ = s + "!"                      // want "allocation on hot path: string concatenation"
	var box any
	box = entry{v: k} // want "interface boxing in assignment"
	_ = box
	f := func() int { return k } // want "function literal"
	_ = f
}

// Ticker2 has no implementation anywhere; the dispatch is opaque anyway.
type Ticker2 interface{ Tick2() }

//ddbmlint:hotpath fixture opaque call kinds
func opaque(tk Ticker2, f func() int) {
	tk.Tick2()        // want "dynamic dispatch through interface method"
	f()               // want "dynamic call through a function value"
	_ = fmt.Sprint(1) // want "call to external function"
}

//ddbmlint:hotpath fixture audited cold branch
func cold(t *table) {
	if cap(t.scratch) == 0 {
		t.scratch = make([]int, 0, 64) //ddbmlint:allow hotpath-alloc fixture cold warmup branch
	}
}

//ddbmlint:hotpath not attached to a declaration // want "not attached to a function declaration"
var Unattached = 0

var _ = (*table).fill
var _ = (*table).lookup
var _ = sites
var _ = opaque
var _ = cold
