// Package simcode stands in for simulation scope: every path by which
// the host clock or the global rand source can reach it must be a
// finding at the boundary call site, with the chain in the hint.
package simcode

import (
	"ddbm/testdata/interp/clockutil"
	"ddbm/testdata/interp/randutil"
)

// Ticker is dispatched over an interface; candidates are matched by
// method name and signature, so clockutil.Clock's wall-clock Tick is
// reachable here even without an explicit conversion.
type Ticker interface {
	Tick() int64
}

func direct() int64 {
	return clockutil.Stamp() // want "reaches wall-clock time outside no-wall-clock scope"
}

func transitive() int64 {
	return clockutil.Elapsed() // want "reaches wall-clock time outside no-wall-clock scope"
}

func viaInterface(t Ticker) int64 {
	return t.Tick() // want "reaches wall-clock time outside no-wall-clock scope"
}

func clean(x int) int {
	return clockutil.Pure(x)
}

func seeded(n int) int {
	return randutil.Draw(n) // want "reaches the global math/rand source outside no-global-rand scope"
}

func audited() int64 {
	return clockutil.Stamp() //ddbmlint:allow taint-wall-clock fixture audits this boundary
}

var _ = direct
var _ = transitive
var _ = viaInterface
var _ = clean
var _ = seeded
var _ = audited
