package experiments

import (
	"fmt"

	"ddbm"
)

// CommitProtocolCosts is the per-message CPU cost sweep (instructions per
// message, both ends) of the commit-protocol study — the §4.4 message-cost
// axis extended around the Table 4 baseline of 1K.
func CommitProtocolCosts() []float64 { return []float64{0, 1000, 2000, 4000, 8000} }

// CommitProtocolStudy holds the grid behind the commit-protocol sweep: the
// 8-node, 8-way-partitioned small-database machine under 2PL with logging
// modeled, swept over per-message CPU cost for each two-phase commit
// variant (centralized, presumed abort, presumed commit). Logging is on so
// the forced-log-write savings of the presumed variants are visible
// alongside their message savings.
type CommitProtocolStudy struct {
	opts    Options
	costs   []float64
	thinkMs float64
	results map[string]ddbm.Result
}

// commitProtocolConfig builds the configuration for one grid point.
func (o Options) commitProtocolConfig(proto ddbm.CommitProtocol, instPerMsg, thinkMs float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.PartitionWays = 8
	cfg.PagesPerFile = SmallDB
	cfg.ThinkTimeMs = thinkMs
	cfg.InstPerMsg = instPerMsg
	cfg.ModelLogging = true
	cfg.CommitProtocol = proto
	o.apply(&cfg)
	return cfg
}

// RunCommitProtocolStudy runs the sweep over the default cost axis.
func RunCommitProtocolStudy(opts Options, thinkMs float64) (*CommitProtocolStudy, error) {
	return RunCommitProtocolStudyCosts(opts, thinkMs, CommitProtocolCosts())
}

// RunCommitProtocolStudyCosts runs the sweep over an arbitrary cost axis.
func RunCommitProtocolStudyCosts(opts Options, thinkMs float64, costs []float64) (*CommitProtocolStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, c := range costs {
		for _, p := range ddbm.CommitProtocols() {
			cfgs = append(cfgs, o.commitProtocolConfig(p, c, thinkMs))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &CommitProtocolStudy{opts: o, costs: costs, thinkMs: thinkMs, results: results}, nil
}

// Result returns one grid point.
func (st *CommitProtocolStudy) Result(proto ddbm.CommitProtocol, instPerMsg float64) ddbm.Result {
	return st.results[cfgKey(st.opts.commitProtocolConfig(proto, instPerMsg, st.thinkMs))]
}

// ResponseFigure is the headline sweep: mean response time vs per-message
// cost, one series per commit protocol. As messages get more expensive the
// acknowledgement and read-only-path savings of the presumed variants
// separate the curves.
func (st *CommitProtocolStudy) ResponseFigure() *Figure {
	fig := &Figure{
		ID:     "Ext J",
		Title:  fmt.Sprintf("Response time vs message cost by commit protocol (2PL, 8-way, logging, think %g s)", st.thinkMs/1000),
		XLabel: "inst/msg(K)",
		YLabel: "response time (s)",
	}
	for _, p := range ddbm.CommitProtocols() {
		s := Series{Label: p.String()}
		for _, c := range st.costs {
			s.Points = append(s.Points, Point{X: c / 1000, Y: st.Result(p, c).MeanResponseMs / 1000})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// MessagesPerCommitFigure shows where the response savings come from:
// inter-node messages per committed transaction, per protocol, vs message
// cost.
func (st *CommitProtocolStudy) MessagesPerCommitFigure() *Figure {
	fig := &Figure{
		ID:     "Ext J msgs",
		Title:  fmt.Sprintf("Messages per commit by commit protocol (2PL, 8-way, logging, think %g s)", st.thinkMs/1000),
		XLabel: "inst/msg(K)",
		YLabel: "messages/commit",
	}
	for _, p := range ddbm.CommitProtocols() {
		s := Series{Label: p.String()}
		for _, c := range st.costs {
			r := st.Result(p, c)
			y := 0.0
			if r.Commits > 0 {
				y = float64(r.MessagesSent) / float64(r.Commits)
			}
			s.Points = append(s.Points, Point{X: c / 1000, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// CommitProtocolSweep runs the commit-protocol study and returns the
// response-time figure: the Fig. 4.6-style message-cost sensitivity with
// all three two-phase commit variants side by side.
func CommitProtocolSweep(opts Options, thinkMs float64) (*Figure, error) {
	st, err := RunCommitProtocolStudy(opts, thinkMs)
	if err != nil {
		return nil, err
	}
	return st.ResponseFigure(), nil
}
