package experiments

import (
	"fmt"

	"ddbm"
)

// FaultToleranceMTTFs is the default failure-rate axis of the fault study:
// mean time to failure per processing node, milliseconds. The low end puts
// a node crash somewhere in the machine every few seconds; the high end
// gives each node roughly one outage per publication-length run.
func FaultToleranceMTTFs() []float64 { return []float64{20_000, 40_000, 80_000, 160_000} }

// FaultToleranceStudy holds the grid behind the fault-tolerance sweep
// (Ext K): the 8-node, 8-way-partitioned small-database machine under 2PL
// with logging modeled, crash-stop node failures swept over MTTF for each
// two-phase commit variant. The write probability is lowered to 0.1 so a
// good fraction of cohorts are read-only — exactly the cohorts whose
// in-doubt exposure the presumed variants eliminate by short-circuiting
// phase one, and centralized 2PC does not.
type FaultToleranceStudy struct {
	opts    Options
	mttfs   []float64
	thinkMs float64
	results map[string]ddbm.Result
}

// faultToleranceConfig builds the configuration for one grid point. All
// protocols at one MTTF share the seed and the dedicated fault substreams,
// so they face the same fault schedule.
func (o Options) faultToleranceConfig(proto ddbm.CommitProtocol, mttfMs, thinkMs float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = ddbm.TwoPL
	cfg.PartitionWays = 8
	cfg.PagesPerFile = SmallDB
	cfg.ThinkTimeMs = thinkMs
	cfg.WriteProb = 0.1
	cfg.ModelLogging = true
	cfg.CommitProtocol = proto
	cfg.Faults.Enabled = true
	cfg.Faults.NodeMTTFMs = mttfMs
	cfg.Faults.MTTRMs = 2_000
	cfg.Faults.DetectMs = 500
	o.apply(&cfg)
	return cfg
}

// RunFaultToleranceStudy runs the sweep over the default MTTF axis.
func RunFaultToleranceStudy(opts Options, thinkMs float64) (*FaultToleranceStudy, error) {
	return RunFaultToleranceStudyMTTFs(opts, thinkMs, FaultToleranceMTTFs())
}

// RunFaultToleranceStudyMTTFs runs the sweep over an arbitrary MTTF axis.
func RunFaultToleranceStudyMTTFs(opts Options, thinkMs float64, mttfs []float64) (*FaultToleranceStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, mttf := range mttfs {
		for _, p := range ddbm.CommitProtocols() {
			cfgs = append(cfgs, o.faultToleranceConfig(p, mttf, thinkMs))
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &FaultToleranceStudy{opts: o, mttfs: mttfs, thinkMs: thinkMs, results: results}, nil
}

// Result returns one grid point.
func (st *FaultToleranceStudy) Result(proto ddbm.CommitProtocol, mttfMs float64) ddbm.Result {
	return st.results[cfgKey(st.opts.faultToleranceConfig(proto, mttfMs, st.thinkMs))]
}

// InDoubtFigure is the headline comparison: mean in-doubt time per
// committed transaction — milliseconds of cohort yes-vote-to-outcome
// exposure, the window in which a coordinator crash strands the cohort's
// locks — one series per commit protocol, vs MTTF. Centralized 2PC runs
// every cohort through the full two phases; presumed abort and presumed
// commit short-circuit read-only cohorts past phase one, so their curves
// sit strictly below it at every failure rate.
func (st *FaultToleranceStudy) InDoubtFigure() *Figure {
	fig := &Figure{
		ID: "Ext K",
		Title: fmt.Sprintf("In-doubt exposure vs node MTTF by commit protocol (2PL, 8-way, crashes, think %g s)",
			st.thinkMs/1000),
		XLabel: "MTTF(s)",
		YLabel: "in-doubt ms/commit",
	}
	for _, p := range ddbm.CommitProtocols() {
		s := Series{Label: p.String()}
		for _, mttf := range st.mttfs {
			r := st.Result(p, mttf)
			y := 0.0
			if r.Commits > 0 {
				y = r.InDoubtTimeMs / float64(r.Commits)
			}
			s.Points = append(s.Points, Point{X: mttf / 1000, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// GoodputFigure shows the recovery economics: commits per second of
// available machine time, per protocol, vs MTTF. Raw throughput conflates
// outage time with protocol cost; goodput divides it out so the curves
// isolate what each protocol loses to crash handling itself.
func (st *FaultToleranceStudy) GoodputFigure() *Figure {
	fig := &Figure{
		ID: "Ext K goodput",
		Title: fmt.Sprintf("Goodput vs node MTTF by commit protocol (2PL, 8-way, crashes, think %g s)",
			st.thinkMs/1000),
		XLabel: "MTTF(s)",
		YLabel: "goodput (txns/s)",
	}
	for _, p := range ddbm.CommitProtocols() {
		s := Series{Label: p.String()}
		for _, mttf := range st.mttfs {
			s.Points = append(s.Points, Point{X: mttf / 1000, Y: st.Result(p, mttf).GoodputPerSec})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// FaultTolerance runs the fault-tolerance study and returns the in-doubt
// exposure figure: the 2PC blocking penalty against the presumed variants
// as the failure rate climbs.
func FaultTolerance(opts Options, thinkMs float64) (*Figure, error) {
	st, err := RunFaultToleranceStudy(opts, thinkMs)
	if err != nil {
		return nil, err
	}
	return st.InDoubtFigure(), nil
}
