package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"ddbm"
)

// TestCfgKeyCoversEveryField perturbs each Config field reflectively and
// requires the hand-rolled cfgKey to change. This is the guard that keeps
// the non-reflective key builder honest when Config grows a field: a new
// field that cfgKey ignores fails here with the field's name.
func TestCfgKeyCoversEveryField(t *testing.T) {
	base := ddbm.DefaultConfig()
	baseKey := cfgKey(base)

	// perturb flips one field in place; struct-kinded fields (e.g. Faults)
	// recurse so each leaf gets its own perturbation and error name.
	var perturb func(t *testing.T, name string, v reflect.Value, check func(field string))
	perturb = func(t *testing.T, name string, v reflect.Value, check func(field string)) {
		switch v.Kind() {
		case reflect.Bool:
			orig := v.Bool()
			v.SetBool(!orig)
			check(name)
			v.SetBool(orig)
		case reflect.Int, reflect.Int64:
			orig := v.Int()
			v.SetInt(orig + 1)
			check(name)
			v.SetInt(orig)
		case reflect.Float64:
			orig := v.Float()
			v.SetFloat(orig + 0.421875)
			check(name)
			v.SetFloat(orig)
		case reflect.Slice:
			orig := v.Interface()
			v.Set(reflect.ValueOf([]ddbm.TxnClass{{Frac: 1, AvgPagesPerPartition: 3, WriteProb: 0.5, InstPerPage: 100}}))
			check(name)
			v.Set(reflect.ValueOf(orig))
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				perturb(t, name+"."+v.Type().Field(i).Name, v.Field(i), check)
			}
		default:
			t.Fatalf("Config.%s has kind %v that this test (and likely cfgKey) does not handle", name, v.Kind())
		}
	}

	cfg := base
	root := reflect.ValueOf(&cfg).Elem()
	for i := 0; i < root.NumField(); i++ {
		perturb(t, root.Type().Field(i).Name, root.Field(i), func(field string) {
			if got := cfgKey(cfg); got == baseKey {
				t.Errorf("changing Config.%s did not change cfgKey — grid dedup would merge distinct configurations", field)
			}
		})
	}
}

// TestCfgKeyClassBoundaries checks that the per-class encoding cannot be
// confused with the trailing scalar fields or with a different class split.
func TestCfgKeyClassBoundaries(t *testing.T) {
	a := ddbm.DefaultConfig()
	a.Classes = []ddbm.TxnClass{{Frac: 0.5, FileCount: 1}, {Frac: 0.5, FileCount: 2}}
	b := ddbm.DefaultConfig()
	b.Classes = []ddbm.TxnClass{{Frac: 0.5, FileCount: 1}}
	c := ddbm.DefaultConfig()
	c.Classes = []ddbm.TxnClass{{Frac: 0.5, FileCount: 2}, {Frac: 0.5, FileCount: 1}}
	keys := map[string]string{"a": cfgKey(a), "b": cfgKey(b), "c": cfgKey(c)}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("configs %s and %s share key %q", prev, name, k)
		}
		seen[k] = name
	}
}

// TestCfgKeyDeterministic ensures repeated calls yield the same key (the
// grid uses it both to dedupe and to look results back up).
func TestCfgKeyDeterministic(t *testing.T) {
	cfg := ddbm.DefaultConfig()
	cfg.Classes = []ddbm.TxnClass{{Frac: 1}}
	if cfgKey(cfg) != cfgKey(cfg) {
		t.Fatal("cfgKey is not deterministic")
	}
}

// TestRunGridStopsLaunchingAfterError replaces the simulation entry point
// and checks that a failing run halts the launch loop instead of burning
// the rest of the grid.
func TestRunGridStopsLaunchingAfterError(t *testing.T) {
	orig := runSim
	defer func() { runSim = orig }()

	var calls atomic.Int64
	boom := errors.New("boom")
	runSim = func(cfg ddbm.Config) (ddbm.Result, error) {
		calls.Add(1)
		return ddbm.Result{}, boom
	}

	const n = 64
	cfgs := make([]ddbm.Config, n)
	for i := range cfgs {
		cfgs[i] = ddbm.DefaultConfig()
		cfgs[i].NumTerminals = i + 1
	}
	o := Options{Workers: 1}.withDefaults()
	_, err := runGrid(o, cfgs)
	if !errors.Is(err, boom) {
		t.Fatalf("runGrid error = %v, want %v", err, boom)
	}
	// With one worker, at most the in-flight run plus one more that was
	// launched before the failure was recorded can execute.
	if got := calls.Load(); got > 2 {
		t.Errorf("runGrid launched %d runs after a failure; want at most 2 of %d", got, n)
	}
}

// TestRunGridConcurrentWorkers drives the fan-out with many workers and a
// mocked simulation so the scheduling path (semaphore, shared accumulator,
// first-error latch) gets exercised under -race. Instead of sleep-based
// jitter, a gate goroutine collects the in-flight runs and releases each
// full batch in reverse arrival order: pure channel synchronization (no
// wall-clock), deterministic in protocol, and it still forces completions
// out of launch order so the accumulator sees shuffled writes.
func TestRunGridConcurrentWorkers(t *testing.T) {
	orig := runSim
	defer func() { runSim = orig }()

	const (
		n          = 40
		workers    = 8
		replicates = 2
		total      = n * replicates
	)

	// The semaphore in runGrid admits exactly `workers` runs at once and
	// none of them return before release, so every batch fills (the
	// released == total guard covers a non-divisible tail).
	gate := make(chan chan struct{}, total)
	go func() {
		released := 0
		var batch []chan struct{}
		for released < total {
			batch = append(batch, <-gate)
			released++
			if len(batch) == workers || released == total {
				for i := len(batch) - 1; i >= 0; i-- {
					close(batch[i])
				}
				batch = batch[:0]
			}
		}
	}()

	var calls atomic.Int64
	runSim = func(cfg ddbm.Config) (ddbm.Result, error) {
		calls.Add(1)
		release := make(chan struct{})
		gate <- release
		<-release
		return ddbm.Result{Config: cfg, ThroughputTPS: float64(cfg.NumTerminals)}, nil
	}

	cfgs := make([]ddbm.Config, n)
	for i := range cfgs {
		cfgs[i] = ddbm.DefaultConfig()
		cfgs[i].NumTerminals = i + 1
	}
	o := Options{Workers: workers, Replicates: replicates}.withDefaults()
	results, err := runGrid(o, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	if got := calls.Load(); got != n*2 {
		t.Fatalf("ran %d simulations, want %d", got, n*2)
	}
	for i := range cfgs {
		res, ok := results[cfgKey(cfgs[i])]
		if !ok {
			t.Fatalf("missing result for config %d", i)
		}
		if res.ThroughputTPS != float64(i+1) {
			t.Errorf("config %d: tps %v, want %v", i, res.ThroughputTPS, float64(i+1))
		}
	}
}

// BenchmarkCfgKey tracks the cost of the grid's key builder (the old
// fmt.Sprintf("%+v") reflective version ran at ~20x this cost).
func BenchmarkCfgKey(b *testing.B) {
	cfg := ddbm.DefaultConfig()
	cfg.Classes = []ddbm.TxnClass{{Frac: 0.75}, {Frac: 0.25, FileCount: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cfgKey(cfg) == "" {
			b.Fatal("empty key")
		}
	}
}
