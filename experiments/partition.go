package experiments

import (
	"fmt"

	"ddbm"
)

// PartitioningStudy holds the grid behind Figures 8-13 (paper §4.3): the
// 8-node machine with 1-way vs 8-way partitioning, both database sizes,
// all algorithms, over the think-time sweep.
type PartitioningStudy struct {
	opts    Options
	results map[string]ddbm.Result
}

// SmallDB and LargeDB are the two partition sizes of the paper (§4.1).
const (
	SmallDB = 300  // pages per file -> 19,200-page database
	LargeDB = 1200 // pages per file -> 76,800-page database
)

// partitionConfig builds the §4.3 configuration for one point.
func (o Options) partitionConfig(alg ddbm.Algorithm, ways, pagesPerFile int, thinkMs float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = 8
	cfg.PartitionWays = ways
	cfg.PagesPerFile = pagesPerFile
	cfg.ThinkTimeMs = thinkMs
	o.apply(&cfg)
	return cfg
}

// RunPartitioningStudy runs the §4.3 sweep.
func RunPartitioningStudy(opts Options) (*PartitioningStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, size := range []int{SmallDB, LargeDB} {
		for _, ways := range []int{1, 8} {
			for _, a := range o.Algorithms {
				for _, tt := range o.ThinkTimesMs {
					cfgs = append(cfgs, o.partitionConfig(a, ways, size, tt))
				}
			}
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &PartitioningStudy{opts: o, results: results}, nil
}

// Result returns one grid point.
func (st *PartitioningStudy) Result(alg ddbm.Algorithm, ways, pagesPerFile int, thinkMs float64) ddbm.Result {
	return st.results[cfgKey(st.opts.partitionConfig(alg, ways, pagesPerFile, thinkMs))]
}

// improvement builds the Figure 8/9 shape: response time of the 1-way
// (sequential) layout divided by the 8-way (parallel) layout, per
// algorithm, vs think time.
func (st *PartitioningStudy) improvement(id string, pagesPerFile int) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Response-time improvement of 8-way over 1-way partitioning (%d-page files)", pagesPerFile),
		XLabel: "think(s)",
		YLabel: "response speedup (1-way / 8-way)",
	}
	for _, a := range st.opts.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, tt := range st.opts.ThinkTimesMs {
			seq := st.Result(a, 1, pagesPerFile, tt)
			par := st.Result(a, 8, pagesPerFile, tt)
			y := 0.0
			if par.MeanResponseMs > 0 {
				y = seq.MeanResponseMs / par.MeanResponseMs
			}
			s.Points = append(s.Points, Point{X: tt / 1000, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// degradation builds the Figure 10/11 shape: percentage response-time loss
// relative to NO_DC, per algorithm, vs think time.
func (st *PartitioningStudy) degradation(id string, ways int) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Response-time degradation vs NO_DC, %d-way partitioning (small DB)", ways),
		XLabel: "think(s)",
		YLabel: "degradation (%)",
	}
	for _, a := range st.opts.Algorithms {
		if a == ddbm.NoDC {
			continue
		}
		s := Series{Label: algoLabel(a)}
		for _, tt := range st.opts.ThinkTimesMs {
			alg := st.Result(a, ways, SmallDB, tt)
			base := st.Result(ddbm.NoDC, ways, SmallDB, tt)
			y := 0.0
			if base.MeanResponseMs > 0 {
				y = 100 * (alg.MeanResponseMs - base.MeanResponseMs) / base.MeanResponseMs
			}
			s.Points = append(s.Points, Point{X: tt / 1000, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// abortRatio builds the Figure 12/13 shape.
func (st *PartitioningStudy) abortRatio(id string, ways int) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Abort ratio, %d-way partitioning (small DB)", ways),
		XLabel: "think(s)",
		YLabel: "aborts per commit",
	}
	for _, a := range st.opts.Algorithms {
		if a == ddbm.NoDC {
			continue
		}
		s := Series{Label: algoLabel(a)}
		for _, tt := range st.opts.ThinkTimesMs {
			s.Points = append(s.Points, Point{X: tt / 1000, Y: st.Result(a, ways, SmallDB, tt).AbortRatio})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure8 returns the large-DB partitioning improvement.
func (st *PartitioningStudy) Figure8() *Figure { return st.improvement("Figure 8", LargeDB) }

// Figure9 returns the small-DB partitioning improvement.
func (st *PartitioningStudy) Figure9() *Figure { return st.improvement("Figure 9", SmallDB) }

// Figure10 returns the 8-way degradation vs NO_DC.
func (st *PartitioningStudy) Figure10() *Figure { return st.degradation("Figure 10", 8) }

// Figure11 returns the 1-way degradation vs NO_DC.
func (st *PartitioningStudy) Figure11() *Figure { return st.degradation("Figure 11", 1) }

// Figure12 returns 8-way abort ratios.
func (st *PartitioningStudy) Figure12() *Figure { return st.abortRatio("Figure 12", 8) }

// Figure13 returns 1-way abort ratios.
func (st *PartitioningStudy) Figure13() *Figure { return st.abortRatio("Figure 13", 1) }

// Figure8 runs the partitioning study and returns the large-DB improvement (§4.3).
func Figure8(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure8) }

// Figure9 runs the partitioning study and returns the small-DB improvement (§4.3).
func Figure9(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure9) }

// Figure10 runs the partitioning study and returns 8-way degradations (§4.3).
func Figure10(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure10) }

// Figure11 runs the partitioning study and returns 1-way degradations (§4.3).
func Figure11(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure11) }

// Figure12 runs the partitioning study and returns 8-way abort ratios (§4.3).
func Figure12(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure12) }

// Figure13 runs the partitioning study and returns 1-way abort ratios (§4.3).
func Figure13(opts Options) (*Figure, error) { return partFig(opts, (*PartitioningStudy).Figure13) }

func partFig(opts Options, f func(*PartitioningStudy) *Figure) (*Figure, error) {
	st, err := RunPartitioningStudy(opts)
	if err != nil {
		return nil, err
	}
	return f(st), nil
}
