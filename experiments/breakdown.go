package experiments

import (
	"fmt"

	"ddbm"
)

// BreakdownStudy holds the grid behind the response-time decomposition
// figure: the baseline 8-node machine with breakdown accounting enabled,
// one algorithm, over the think-time load sweep (the paper's
// multiprogramming-level knob: shorter think times push more concurrent
// transactions into the machine).
type BreakdownStudy struct {
	opts    Options
	alg     ddbm.Algorithm
	results map[string]ddbm.Result
}

// breakdownConfig builds the decomposition configuration for one point.
func (o Options) breakdownConfig(alg ddbm.Algorithm, thinkMs float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = alg
	cfg.ThinkTimeMs = thinkMs
	cfg.Breakdown = true
	o.apply(&cfg)
	return cfg
}

// RunBreakdownStudy runs the decomposition sweep for one algorithm.
func RunBreakdownStudy(opts Options, alg ddbm.Algorithm) (*BreakdownStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, tt := range o.ThinkTimesMs {
		cfgs = append(cfgs, o.breakdownConfig(alg, tt))
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &BreakdownStudy{opts: o, alg: alg, results: results}, nil
}

// Result returns one grid point.
func (st *BreakdownStudy) Result(thinkMs float64) ddbm.Result {
	return st.results[cfgKey(st.opts.breakdownConfig(st.alg, thinkMs))]
}

// Figure returns the "where the milliseconds go" decomposition: one
// series per phase, giving the mean milliseconds a committed transaction
// spends in that phase at each load level. By the reconciliation
// invariant the series sum to the mean response time at every X, so the
// figure reads as a stacked decomposition of the response-time curve —
// it shows which phase (queueing, blocking, restarts, commit protocol)
// the response time goes to as the machine saturates.
func (st *BreakdownStudy) Figure() *Figure {
	fig := &Figure{
		ID:     "Ext BD",
		Title:  fmt.Sprintf("Response-time decomposition, %s (8 nodes, small DB)", algoLabel(st.alg)),
		XLabel: "think(s)",
		YLabel: "mean ms in phase",
	}
	for _, name := range ddbm.PhaseNames() {
		s := Series{Label: name}
		for _, tt := range st.opts.ThinkTimesMs {
			s.Points = append(s.Points, Point{X: tt / 1000, Y: st.Result(tt).PhaseMeanMs[name]})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// BreakdownDecomposition runs the study and returns the decomposition
// figure for one algorithm (the tentpole observability extension; not a
// paper figure).
func BreakdownDecomposition(opts Options, alg ddbm.Algorithm) (*Figure, error) {
	st, err := RunBreakdownStudy(opts, alg)
	if err != nil {
		return nil, err
	}
	return st.Figure(), nil
}
