package experiments

import (
	"fmt"

	"ddbm"
)

// MachineSizeStudy holds the grid behind Figures 2-7 (paper §4.2): the
// small database, machine sizes 1 and 8 (plus any extras), all algorithms,
// over the think-time sweep.
type MachineSizeStudy struct {
	opts    Options
	sizes   []int
	results map[string]ddbm.Result
}

// machineSizeConfig builds the §4.2 configuration for one point.
func (o Options) machineSizeConfig(alg ddbm.Algorithm, nodes int, thinkMs float64) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = nodes
	cfg.PartitionWays = 0 // scaled placement: relations spread over all nodes
	cfg.PagesPerFile = 300
	cfg.ThinkTimeMs = thinkMs
	o.apply(&cfg)
	return cfg
}

// RunMachineSizeStudy runs the §4.2 sweep for machine sizes 1 and 8.
func RunMachineSizeStudy(opts Options) (*MachineSizeStudy, error) {
	return RunMachineSizeStudySizes(opts, []int{1, 8})
}

// RunMachineSizeStudySizes runs the §4.2 sweep for arbitrary machine sizes
// (the paper's footnote 7 also ran 16 and 32 nodes).
func RunMachineSizeStudySizes(opts Options, sizes []int) (*MachineSizeStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, n := range sizes {
		for _, a := range o.Algorithms {
			for _, tt := range o.ThinkTimesMs {
				cfgs = append(cfgs, o.machineSizeConfig(a, n, tt))
			}
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &MachineSizeStudy{opts: o, sizes: sizes, results: results}, nil
}

// Result returns one grid point.
func (st *MachineSizeStudy) Result(alg ddbm.Algorithm, nodes int, thinkMs float64) ddbm.Result {
	return st.results[cfgKey(st.opts.machineSizeConfig(alg, nodes, thinkMs))]
}

// metric builds a figure with one series per (algorithm, machine size).
func (st *MachineSizeStudy) metric(id, title, ylabel string, f func(ddbm.Result) float64) *Figure {
	fig := &Figure{ID: id, Title: title, XLabel: "think(s)", YLabel: ylabel}
	for _, n := range st.sizes {
		for _, a := range st.opts.Algorithms {
			s := Series{Label: fmt.Sprintf("%s/%dn", algoLabel(a), n)}
			for _, tt := range st.opts.ThinkTimesMs {
				s.Points = append(s.Points, Point{X: tt / 1000, Y: f(st.Result(a, n, tt))})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}

// speedup builds a figure of per-algorithm ratios between the largest and
// the 1-node machine.
func (st *MachineSizeStudy) speedup(id, title, ylabel string, big int, ratio func(one, eight ddbm.Result) float64) *Figure {
	fig := &Figure{ID: id, Title: title, XLabel: "think(s)", YLabel: ylabel}
	for _, a := range st.opts.Algorithms {
		s := Series{Label: algoLabel(a)}
		for _, tt := range st.opts.ThinkTimesMs {
			one := st.Result(a, 1, tt)
			eight := st.Result(a, big, tt)
			s.Points = append(s.Points, Point{X: tt / 1000, Y: ratio(one, eight)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure2 returns throughput vs think time for the 1- and 8-node machines.
func (st *MachineSizeStudy) Figure2() *Figure {
	return st.metric("Figure 2", "Throughput, 1-node and 8-node machines (small DB)",
		"throughput (txns/s)", func(r ddbm.Result) float64 { return r.ThroughputTPS })
}

// Figure3 returns response time vs think time for both machines.
func (st *MachineSizeStudy) Figure3() *Figure {
	return st.metric("Figure 3", "Response time, 1-node and 8-node machines (small DB)",
		"response time (s)", func(r ddbm.Result) float64 { return r.MeanResponseMs / 1000 })
}

// Figure4 returns the 8-node/1-node throughput speedup per algorithm.
func (st *MachineSizeStudy) Figure4() *Figure {
	return st.speedup("Figure 4", "Throughput speedup (8-node / 1-node)", "speedup", st.largest(),
		func(one, eight ddbm.Result) float64 {
			if one.ThroughputTPS == 0 {
				return 0
			}
			return eight.ThroughputTPS / one.ThroughputTPS
		})
}

// Figure5 returns the 1-node/8-node response-time speedup per algorithm.
func (st *MachineSizeStudy) Figure5() *Figure {
	return st.speedup("Figure 5", "Response time speedup (1-node / 8-node)", "speedup", st.largest(),
		func(one, eight ddbm.Result) float64 {
			if eight.MeanResponseMs == 0 {
				return 0
			}
			return one.MeanResponseMs / eight.MeanResponseMs
		})
}

// Figure6 returns disk utilization for both machines.
func (st *MachineSizeStudy) Figure6() *Figure {
	return st.metric("Figure 6", "Disk utilization, 1-node and 8-node machines",
		"disk utilization", func(r ddbm.Result) float64 { return r.ProcDiskUtil })
}

// Figure7 returns CPU utilization for both machines.
func (st *MachineSizeStudy) Figure7() *Figure {
	return st.metric("Figure 7", "CPU utilization, 1-node and 8-node machines",
		"CPU utilization", func(r ddbm.Result) float64 { return r.ProcCPUUtil })
}

func (st *MachineSizeStudy) largest() int {
	max := st.sizes[0]
	for _, n := range st.sizes {
		if n > max {
			max = n
		}
	}
	return max
}

// Figure2 runs the study and returns throughput vs think time (§4.2).
func Figure2(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure2) }

// Figure3 runs the study and returns response time vs think time (§4.2).
func Figure3(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure3) }

// Figure4 runs the study and returns throughput speedups (§4.2).
func Figure4(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure4) }

// Figure5 runs the study and returns response-time speedups (§4.2).
func Figure5(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure5) }

// Figure6 runs the study and returns disk utilizations (§4.2).
func Figure6(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure6) }

// Figure7 runs the study and returns CPU utilizations (§4.2).
func Figure7(opts Options) (*Figure, error) { return machFig(opts, (*MachineSizeStudy).Figure7) }

func machFig(opts Options, f func(*MachineSizeStudy) *Figure) (*Figure, error) {
	st, err := RunMachineSizeStudy(opts)
	if err != nil {
		return nil, err
	}
	return f(st), nil
}
