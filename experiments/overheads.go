package experiments

import (
	"fmt"

	"ddbm"
)

// OverheadSetting is one (InstPerStartup, InstPerMsg) point of §4.4.
type OverheadSetting struct {
	InstPerStartup float64
	InstPerMsg     float64
}

// The overhead settings studied in §4.4.
var (
	// NoOverheads: free messages and free process startup (Figs 14, 15).
	NoOverheads = OverheadSetting{0, 0}
	// ExpensiveMessages: 4K-instruction messages (Figs 16, 17).
	ExpensiveMessages = OverheadSetting{0, 4000}
	// ExpensiveStartup: 20K-instruction process initiation (the paper's
	// "results very close to Figures 16 and 17" variant).
	ExpensiveStartup = OverheadSetting{20000, 0}
	// BaselineOverheads: the Table 4 values used in the other experiments.
	BaselineOverheads = OverheadSetting{2000, 1000}
)

// PartitionWaysSweep is the x-axis of the §4.4 figures.
func PartitionWaysSweep() []int { return []int{1, 2, 4, 8} }

// OverheadStudy holds the grid behind Figures 14-17 (paper §4.4): the
// 8-node machine, small database, partitioning degree 1/2/4/8, think times
// 0 and 8 s, under the overhead settings of interest.
type OverheadStudy struct {
	opts     Options
	settings []OverheadSetting
	thinks   []float64
	results  map[string]ddbm.Result
}

// overheadConfig builds the §4.4 configuration for one point.
func (o Options) overheadConfig(alg ddbm.Algorithm, ways int, thinkMs float64, set OverheadSetting) ddbm.Config {
	cfg := ddbm.DefaultConfig()
	cfg.Algorithm = alg
	cfg.NumProcNodes = 8
	cfg.PartitionWays = ways
	cfg.PagesPerFile = SmallDB
	cfg.ThinkTimeMs = thinkMs
	cfg.InstPerStartup = set.InstPerStartup
	cfg.InstPerMsg = set.InstPerMsg
	o.apply(&cfg)
	return cfg
}

// RunOverheadStudy runs the §4.4 sweep for the no-overhead and
// expensive-message settings at think times 0 and 8 s.
func RunOverheadStudy(opts Options) (*OverheadStudy, error) {
	return RunOverheadStudySettings(opts, []OverheadSetting{NoOverheads, ExpensiveMessages}, []float64{0, 8000})
}

// RunOverheadStudySettings runs the §4.4 sweep for arbitrary overhead
// settings and think times.
func RunOverheadStudySettings(opts Options, settings []OverheadSetting, thinksMs []float64) (*OverheadStudy, error) {
	o := opts.withDefaults()
	var cfgs []ddbm.Config
	for _, set := range settings {
		for _, tt := range thinksMs {
			for _, ways := range PartitionWaysSweep() {
				for _, a := range o.Algorithms {
					cfgs = append(cfgs, o.overheadConfig(a, ways, tt, set))
				}
			}
		}
	}
	results, err := runGrid(o, cfgs)
	if err != nil {
		return nil, err
	}
	return &OverheadStudy{opts: o, settings: settings, thinks: thinksMs, results: results}, nil
}

// Result returns one grid point.
func (st *OverheadStudy) Result(alg ddbm.Algorithm, ways int, thinkMs float64, set OverheadSetting) ddbm.Result {
	return st.results[cfgKey(st.opts.overheadConfig(alg, ways, thinkMs, set))]
}

// speedupVsWays builds the §4.4 figure shape: response-time speedup of
// k-way partitioning relative to 1-way, per algorithm, vs k.
func (st *OverheadStudy) speedupVsWays(id string, thinkMs float64, set OverheadSetting) *Figure {
	fig := &Figure{
		ID: id,
		Title: fmt.Sprintf("Response speedup vs partitioning degree (think %g s, startup %gK, msg %gK)",
			thinkMs/1000, set.InstPerStartup/1000, set.InstPerMsg/1000),
		XLabel: "ways",
		YLabel: "response speedup (vs 1-way)",
	}
	for _, a := range st.opts.Algorithms {
		s := Series{Label: algoLabel(a)}
		base := st.Result(a, 1, thinkMs, set)
		for _, ways := range PartitionWaysSweep() {
			r := st.Result(a, ways, thinkMs, set)
			y := 0.0
			if r.MeanResponseMs > 0 {
				y = base.MeanResponseMs / r.MeanResponseMs
			}
			s.Points = append(s.Points, Point{X: float64(ways), Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure14 returns zero-overhead speedups at think time 0.
func (st *OverheadStudy) Figure14() *Figure {
	return st.speedupVsWays("Figure 14", 0, NoOverheads)
}

// Figure15 returns zero-overhead speedups at think time 8 s.
func (st *OverheadStudy) Figure15() *Figure {
	return st.speedupVsWays("Figure 15", 8000, NoOverheads)
}

// Figure16 returns expensive-message speedups at think time 0.
func (st *OverheadStudy) Figure16() *Figure {
	return st.speedupVsWays("Figure 16", 0, ExpensiveMessages)
}

// Figure17 returns expensive-message speedups at think time 8 s.
func (st *OverheadStudy) Figure17() *Figure {
	return st.speedupVsWays("Figure 17", 8000, ExpensiveMessages)
}

// Figure14 runs the overhead study and returns zero-overhead speedups at think 0 (§4.4).
func Figure14(opts Options) (*Figure, error) { return ovFig(opts, (*OverheadStudy).Figure14) }

// Figure15 runs the overhead study and returns zero-overhead speedups at think 8 s (§4.4).
func Figure15(opts Options) (*Figure, error) { return ovFig(opts, (*OverheadStudy).Figure15) }

// Figure16 runs the overhead study and returns 4K-message speedups at think 0 (§4.4).
func Figure16(opts Options) (*Figure, error) { return ovFig(opts, (*OverheadStudy).Figure16) }

// Figure17 runs the overhead study and returns 4K-message speedups at think 8 s (§4.4).
func Figure17(opts Options) (*Figure, error) { return ovFig(opts, (*OverheadStudy).Figure17) }

func ovFig(opts Options, f func(*OverheadStudy) *Figure) (*Figure, error) {
	st, err := RunOverheadStudy(opts)
	if err != nil {
		return nil, err
	}
	return f(st), nil
}
