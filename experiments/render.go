package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CSV writes the figure as comma-separated values: a header row with the
// x-label and series labels, then one row per x value. Missing points are
// empty cells.
func (f *Figure) CSV(w io.Writer) {
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, x := range f.xValues() {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := lookup(s.Points, x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

func (f *Figure) xValues() []float64 {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	return sorted
}

// Chart renders a crude ASCII chart of the figure (y vs x, one letter per
// series) — enough to eyeball curve shapes in a terminal. width and height
// are the plot area in characters; sensible minimums are enforced.
func (f *Figure) Chart(w io.Writer, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xs := f.xValues()
	if len(xs) == 0 || len(f.Series) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", f.ID)
		return
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if minY == maxY {
		maxY = minY + 1
	}
	if minX == maxX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "abcdefghijklmnopqrstuvwxyz"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			if grid[row][cx] == ' ' {
				grid[row][cx] = mark
			} else {
				grid[row][cx] = '*' // overlapping series
			}
		}
	}

	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%10.3g +%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(w, "%10s |%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(w, "%10.3g +%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(w, "%10s  %-*g%*g\n", "", width/2, minX, width-width/2, maxX)
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Label))
	}
	fmt.Fprintf(w, "%10s  %s  (* = overlap)\n\n", "", strings.Join(legend, " "))
}
