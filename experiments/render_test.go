package experiments

import (
	"strings"
	"testing"
)

func demoFigure() *Figure {
	return &Figure{
		ID: "Figure T", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "up", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 10}}},
			{Label: "down", Points: []Point{{X: 0, Y: 10}, {X: 2, Y: 0}}},
		},
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	demoFigure().CSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,up,down" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "0,0,10" {
		t.Errorf("row 0: %q", lines[1])
	}
	// Missing point (down at x=1) renders as an empty cell.
	if lines[2] != "1,5," {
		t.Errorf("row 1: %q", lines[2])
	}
	if lines[3] != "2,10,0" {
		t.Errorf("row 2: %q", lines[3])
	}
}

func TestCSVTrimsTrailingZeros(t *testing.T) {
	if got := trimFloat(1.5); got != "1.5" {
		t.Errorf("trimFloat(1.5) = %q", got)
	}
	if got := trimFloat(2.0); got != "2" {
		t.Errorf("trimFloat(2) = %q", got)
	}
	if got := trimFloat(0.333333); got != "0.333333" {
		t.Errorf("trimFloat = %q", got)
	}
}

func TestChartRenders(t *testing.T) {
	var sb strings.Builder
	demoFigure().Chart(&sb, 40, 10)
	out := sb.String()
	for _, want := range []string{"Figure T", "a=up", "b=down", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Extremes are labelled.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Errorf("chart missing axis labels:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	var sb strings.Builder
	(&Figure{ID: "Figure E"}).Chart(&sb, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty figure should say so")
	}
	// Flat series (minY == maxY) must not divide by zero.
	flat := &Figure{ID: "F", Series: []Series{{Label: "c", Points: []Point{{X: 0, Y: 5}, {X: 1, Y: 5}}}}}
	var sb2 strings.Builder
	flat.Chart(&sb2, 5, 2) // also exercises the minimum-size clamps
	if !strings.Contains(sb2.String(), "a=c") {
		t.Error("flat chart missing legend")
	}
}

func TestChartOverlapMarker(t *testing.T) {
	f := &Figure{
		ID: "O",
		Series: []Series{
			{Label: "one", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 1}}},
			{Label: "two", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}},
		},
	}
	var sb strings.Builder
	f.Chart(&sb, 30, 8)
	if !strings.Contains(sb.String(), "*") {
		t.Error("overlapping points not marked")
	}
}
