package experiments

import (
	"strings"
	"testing"

	"ddbm"
)

// tinyOpts returns options that make sweeps run in a couple of seconds:
// truncated simulated time and a minimal think-time grid. Values are noisy
// at this scale, so tests assert structure and basic sanity, not shapes.
func tinyOpts() Options {
	return Options{
		TimeScale:    0.03,
		ThinkTimesMs: []float64{0, 8000},
		Algorithms:   []ddbm.Algorithm{ddbm.TwoPL, ddbm.NoDC},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TimeScale != 1 || o.Seed != 1 {
		t.Errorf("defaults: scale %v seed %d", o.TimeScale, o.Seed)
	}
	if len(o.ThinkTimesMs) == 0 || len(o.Algorithms) != 5 || o.Workers < 1 {
		t.Error("defaults incomplete")
	}
}

func TestDurationScalesWithMachine(t *testing.T) {
	o := Options{}.withDefaults()
	s1, w1 := o.duration(1)
	s8, w8 := o.duration(8)
	if s1 <= s8 {
		t.Error("1-node runs must be longer than 8-node runs (minute-scale response times)")
	}
	if w1 >= s1 || w8 >= s8 {
		t.Error("warmup must be shorter than the run")
	}
}

func TestDefaultThinkTimesSpanPaperRange(t *testing.T) {
	tt := DefaultThinkTimesMs()
	if tt[0] != 0 || tt[len(tt)-1] != 120000 {
		t.Errorf("think sweep %v must span 0..120 s", tt)
	}
	for i := 1; i < len(tt); i++ {
		if tt[i] <= tt[i-1] {
			t.Error("think sweep not increasing")
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "Figure X", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Label: "b", Points: []Point{{X: 1, Y: 30}}},
		},
	}
	out := fig.String()
	for _, want := range []string{"Figure X", "demo", "a", "b", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// Missing point renders as '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing point not rendered as dash")
	}
}

func TestSeriesByLabel(t *testing.T) {
	fig := &Figure{Series: []Series{{Label: "x"}, {Label: "y"}}}
	if fig.SeriesByLabel("y") == nil || fig.SeriesByLabel("zz") != nil {
		t.Error("SeriesByLabel lookup broken")
	}
}

func TestMachineSizeStudyTiny(t *testing.T) {
	st, err := RunMachineSizeStudy(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []*Figure{
		st.Figure2(), st.Figure3(), st.Figure4(), st.Figure5(), st.Figure6(), st.Figure7(),
	} {
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series", fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) != 2 {
				t.Fatalf("%s %s: %d points, want 2", fig.ID, s.Label, len(s.Points))
			}
		}
	}
	// Figures 2/3/6/7 have per-size series; figures 4/5 per-algorithm.
	if n := len(st.Figure2().Series); n != 4 { // 2 algos x 2 sizes
		t.Errorf("Figure 2 has %d series, want 4", n)
	}
	if n := len(st.Figure4().Series); n != 2 {
		t.Errorf("Figure 4 has %d series, want 2", n)
	}
}

func TestMachineSizeThroughputOrdering(t *testing.T) {
	// At a scale long enough for steady state, 8 nodes outperform 1 node
	// at think time 0.
	o := Options{
		TimeScale:    0.15,
		ThinkTimesMs: []float64{0},
		Algorithms:   []ddbm.Algorithm{ddbm.NoDC},
	}
	st, err := RunMachineSizeStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	r1 := st.Result(ddbm.NoDC, 1, 0)
	r8 := st.Result(ddbm.NoDC, 8, 0)
	if r1.Commits == 0 || r8.Commits == 0 {
		t.Fatalf("no commits: 1n=%d 8n=%d", r1.Commits, r8.Commits)
	}
	if r8.ThroughputTPS <= r1.ThroughputTPS {
		t.Errorf("8-node throughput %v not above 1-node %v", r8.ThroughputTPS, r1.ThroughputTPS)
	}
}

func TestPartitioningStudyTiny(t *testing.T) {
	o := tinyOpts()
	st, err := RunPartitioningStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []*Figure{
		st.Figure8(), st.Figure9(), st.Figure10(), st.Figure11(), st.Figure12(), st.Figure13(),
	} {
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series", fig.ID)
		}
	}
	// NO_DC is excluded from degradation/abort figures.
	if st.Figure10().SeriesByLabel("NO_DC") != nil {
		t.Error("Figure 10 contains NO_DC degradation (always zero)")
	}
	if st.Figure12().SeriesByLabel("NO_DC") != nil {
		t.Error("Figure 12 contains NO_DC abort ratio")
	}
}

func TestOverheadStudyTiny(t *testing.T) {
	o := tinyOpts()
	st, err := RunOverheadStudySettings(o, []OverheadSetting{NoOverheads}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	fig := st.Figure14()
	if len(fig.Series) != 2 {
		t.Fatalf("Figure 14: %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 4 {
			t.Fatalf("Figure 14 %s: %d points, want 4 (ways 1/2/4/8)", s.Label, len(s.Points))
		}
		// Speedup at ways=1 is 1 by construction.
		if s.Points[0].X != 1 || s.Points[0].Y != 1 {
			t.Errorf("Figure 14 %s: baseline point %+v, want (1,1)", s.Label, s.Points[0])
		}
	}
}

func TestRunGridDedupes(t *testing.T) {
	o := tinyOpts().withDefaults()
	cfg := o.machineSizeConfig(ddbm.NoDC, 8, 0)
	res, err := runGrid(o, []ddbm.Config{cfg, cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("grid kept %d entries for identical configs", len(res))
	}
}

func TestRunGridReplicates(t *testing.T) {
	o := tinyOpts().withDefaults()
	o.Replicates = 3
	cfg := o.machineSizeConfig(ddbm.NoDC, 8, 0)
	res, err := runGrid(o, []ddbm.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d entries, want 1 averaged entry", len(res))
	}
	merged := res[cfgKey(cfg)]
	// Commits are summed across 3 replicate runs; a single run of this
	// config commits > 0, so the sum must exceed any single run's typical
	// count — at minimum it must be positive and the config echo intact.
	if merged.Commits == 0 {
		t.Fatal("no commits across replicates")
	}
	single, err := runGrid(tinyOpts().withDefaults(), []ddbm.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Commits <= single[cfgKey(cfg)].Commits {
		t.Errorf("replicated commits %d not above single-run %d",
			merged.Commits, single[cfgKey(cfg)].Commits)
	}
}

func TestAverageResults(t *testing.T) {
	a := ddbm.Result{Commits: 10, ThroughputTPS: 2, MeanResponseMs: 100, MaxResponseMs: 300, AbortRatio: 0.2}
	b := ddbm.Result{Commits: 20, ThroughputTPS: 4, MeanResponseMs: 200, MaxResponseMs: 250, AbortRatio: 0.4}
	m := averageResults([]ddbm.Result{a, b})
	if m.Commits != 30 {
		t.Errorf("commits %d, want summed 30", m.Commits)
	}
	if m.ThroughputTPS != 3 || m.MeanResponseMs != 150 || m.AbortRatio != 0.30000000000000004 && m.AbortRatio != 0.3 {
		t.Errorf("averages wrong: %+v", m)
	}
	if m.MaxResponseMs != 300 {
		t.Errorf("max %v, want 300", m.MaxResponseMs)
	}
	if one := averageResults([]ddbm.Result{a}); one.Commits != 10 {
		t.Error("single-result average must be identity")
	}
}

func TestRunGridPropagatesErrors(t *testing.T) {
	o := tinyOpts().withDefaults()
	bad := o.machineSizeConfig(ddbm.NoDC, 8, 0)
	bad.NumTerminals = 0
	if _, err := runGrid(o, []ddbm.Config{bad}); err == nil {
		t.Error("invalid config did not surface an error")
	}
}

func TestExtensionSweepsTiny(t *testing.T) {
	o := tinyOpts()
	fig, err := TransactionSizeSweep(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("transaction-size sweep: %d series", len(fig.Series))
	}
	fig2, err := SnoopIntervalAblation(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Series) != 2 {
		t.Fatalf("snoop ablation: %d series", len(fig2.Series))
	}
	fig3, err := TimeoutVsDetection(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Series) != 3 {
		t.Fatalf("timeout-vs-detection: %d series", len(fig3.Series))
	}
	fig4, err := ReplicationStudy(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Series) != 4 {
		t.Fatalf("replication study: %d series", len(fig4.Series))
	}
	for _, s := range fig4.Series {
		if len(s.Points) != 3 {
			t.Fatalf("replication study %s: %d points", s.Label, len(s.Points))
		}
	}
}

func TestO2PLSweepTiny(t *testing.T) {
	o := tinyOpts()
	fig, err := O2PLSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("O2PL sweep: %d series", len(fig.Series))
	}
	if fig.SeriesByLabel("O2PL") == nil {
		t.Fatal("missing O2PL series")
	}
}

func TestMixedWorkloadSweepTiny(t *testing.T) {
	o := tinyOpts()
	fig, err := MixedWorkloadSweep(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.Points) != 5 {
			t.Fatalf("mixed workload %s: %d points, want 5 fractions", s.Label, len(s.Points))
		}
	}
}

func TestOverheadSettingsNamed(t *testing.T) {
	if NoOverheads.InstPerMsg != 0 || ExpensiveMessages.InstPerMsg != 4000 ||
		ExpensiveStartup.InstPerStartup != 20000 || BaselineOverheads.InstPerMsg != 1000 {
		t.Error("overhead settings do not match §4.4")
	}
	ws := PartitionWaysSweep()
	if len(ws) != 4 || ws[0] != 1 || ws[3] != 8 {
		t.Errorf("ways sweep %v", ws)
	}
}
